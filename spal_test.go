package spal

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestFacadePartitionAndLookup(t *testing.T) {
	tbl := SynthesizeTable(2000, 3)
	p := Partition(tbl, 4)
	if got := len(p.Bits); got != 2 {
		t.Fatalf("bits = %v", p.Bits)
	}
	engines := Engines()
	if len(engines) != 10 {
		t.Fatalf("Engines() has %d entries", len(engines))
	}
	if names := EngineNames(); len(names) != len(engines) {
		t.Fatalf("EngineNames() has %d entries, Engines() %d", len(names), len(engines))
	}
	build := engines["lulea"]
	e := build(p.Table(p.HomeLC(0x0a000001)))
	if e.Name() != "lulea" {
		t.Errorf("engine name = %s", e.Name())
	}
}

func TestFacadeSimulate(t *testing.T) {
	tbl := SynthesizeTable(2000, 5)
	cfg := DefaultSimConfig(tbl)
	cfg.NumLCs = 2
	cfg.PacketsPerLC = 500
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketsCompleted != 1000 {
		t.Fatalf("completed = %d", res.PacketsCompleted)
	}
}

func TestFacadeRouter(t *testing.T) {
	tbl := SynthesizeTable(1000, 7)
	r, err := NewRouter(tbl, WithLCs(2), WithRouterCache(DefaultCacheConfig()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	a, err := ParseAddr("10.1.2.3")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Lookup(0, a); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeBatchLookup(t *testing.T) {
	tbl := SynthesizeTable(1000, 7)
	r, err := NewRouter(tbl, WithLCs(2), WithDefaultRouterCache(),
		WithRouterEngineName("flat"), WithRouterCacheShards(4),
		WithRouterBatchCoalescing(true))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	addrs := make([]Addr, 32)
	for i := range addrs {
		addrs[i] = Addr(0x0a000000 + uint32(i)*9973)
	}
	out, err := r.LookupBatch(0, addrs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v.Addr != addrs[i] {
			t.Fatalf("out[%d].Addr = %v, want %v", i, v.Addr, addrs[i])
		}
	}
	if _, err := NewRouter(tbl, WithRouterEngineName("no-such-engine")); err == nil {
		t.Fatal("unknown engine name accepted")
	}
}

func TestFacadeParsersAndPresets(t *testing.T) {
	p, err := ParsePrefix("10.0.0.0/8")
	if err != nil || p.Len != 8 {
		t.Fatalf("ParsePrefix: %v %v", p, err)
	}
	if len(TracePresets()) != 5 {
		t.Errorf("presets = %v", TracePresets())
	}
	tbl := NewTable([]Route{{Prefix: p, NextHop: 3}})
	if tbl.Len() != 1 {
		t.Error("NewTable lost the route")
	}
	if got := len(SelectBits(tbl, 2)); got != 2 {
		t.Errorf("SelectBits returned %d bits", got)
	}
}

func TestFacadeFaultInjection(t *testing.T) {
	tbl := SynthesizeTable(1000, 9)
	r, err := NewRouter(tbl, WithLCs(2), WithDefaultRouterCache(),
		WithRouterFaultInjector(SeededFaults(FaultConfig{Seed: 7, DropRate: 0.2})),
		WithRouterRequestTimeout(2*time.Millisecond),
		WithRouterMaxRetries(1))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	for i := 0; i < 50; i++ {
		a := Addr(0x0a000000 + uint32(i)*9973)
		if _, err := r.Lookup(i%2, a); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := r.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"spal_router_retries_total", "spal_router_fallbacks_total", "spal_router_deadline_expired_total"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("metrics text missing %s", name)
		}
	}
}
