// Benchmark harness: one benchmark per table/figure of the paper (the
// Benchmark*Fig*/Benchmark*Sec* functions regenerate and log the figure's
// rows at bench scale) plus microbenchmarks of the substrates.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Regenerate the figures at full paper scale instead with:
//
//	go run ./cmd/spal-bench -exp all -scale full
package spal_test

import (
	"testing"

	"spal"
	"spal/internal/cache"
	"spal/internal/experiments"
	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/lpm/bintrie"
	"spal/internal/lpm/dptrie"
	"spal/internal/lpm/lctrie"
	"spal/internal/lpm/lulea"
	"spal/internal/lpm/multibit"
	"spal/internal/lpm/rangebs"
	"spal/internal/lpm/stride24"
	"spal/internal/lpm/wbs"
	"spal/internal/partition"
	"spal/internal/router"
	"spal/internal/rtable"
	"spal/internal/sim"
	"spal/internal/stats"
	"spal/internal/trace"
)

// benchScale keeps the full figure matrix tractable under testing.B while
// preserving the paper's qualitative shapes.
var benchScale = experiments.Scale{TableN: 12000, PacketsPerLC: 12000, Name: "bench"}

// --- Figure/table regeneration benches (one per paper artifact) ---

// BenchmarkPartitionBits regenerates the Sec. 4 bit-selection table.
func BenchmarkPartitionBits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.PartitionBits(benchScale)
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkFig3StorageSizes regenerates Fig. 3 (total SRAM per trie).
func BenchmarkFig3StorageSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.Fig3Storage(benchScale)
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkMemoryAccesses regenerates the Sec. 5.1 access-count table.
func BenchmarkMemoryAccesses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.MemoryAccesses(benchScale)
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkFig4MixValue regenerates Fig. 4 (mean lookup vs γ).
func BenchmarkFig4MixValue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig4Mix(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkFig5CacheSize regenerates Fig. 5 (mean lookup vs β).
func BenchmarkFig5CacheSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig5CacheSize(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkFig6NumLCs regenerates Fig. 6 (mean lookup vs ψ).
func BenchmarkFig6NumLCs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig6NumLCs(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkHeadlineSpeedup regenerates the 4.2x headline comparison.
func BenchmarkHeadlineSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Headline(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkAblation regenerates the design-choice ablation table.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Ablation(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkUpdateFlush regenerates the route-update flush table.
func BenchmarkUpdateFlush(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.UpdateFlush(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkSpeedsMatrix regenerates the Sec. 5.2 speed/lookup-time cases.
func BenchmarkSpeedsMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Speeds(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkWorstCase regenerates the worst-case lookup-accesses table.
func BenchmarkWorstCase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.WorstCase(benchScale)
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkCoverage regenerates the hit-rate-vs-psi coverage table.
func BenchmarkCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Coverage(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkRebuild regenerates the engine build-time table.
func BenchmarkRebuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.Rebuild(benchScale)
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkSurvey regenerates the all-structures comparison.
func BenchmarkSurvey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.Survey(benchScale)
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkIPv6Storage regenerates the IPv6 SRAM comparison.
func BenchmarkIPv6Storage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.IPv6Storage(benchScale)
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkHotspot regenerates the home-LC load-balance table.
func BenchmarkHotspot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Hotspot(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkDrift regenerates the locality-drift table.
func BenchmarkDrift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Drift(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkLatencyDistribution regenerates the latency-shape table.
func BenchmarkLatencyDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.LatencyDistribution(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkWarmup regenerates the cold-start warmup curve.
func BenchmarkWarmup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Warmup(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkComparatorPartitioning regenerates the Sec. 2.3 comparison.
func BenchmarkComparatorPartitioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.LengthPartitionComparison(benchScale)
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// --- Substrate microbenchmarks ---

func benchTable() *rtable.Table { return rtable.Small(40000, 3) }

func benchAddrs(tbl *rtable.Table, n int) []ip.Addr {
	rng := stats.NewRNG(7)
	addrs := make([]ip.Addr, n)
	for i := range addrs {
		addrs[i] = tbl.RandomMatchedAddr(rng)
	}
	return addrs
}

func benchLookup(b *testing.B, build lpm.Builder) {
	tbl := benchTable()
	addrs := benchAddrs(tbl, 1<<14)
	e := build(tbl)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Lookup(addrs[i&(len(addrs)-1)])
	}
}

func BenchmarkLookupLulea(b *testing.B)    { benchLookup(b, lulea.NewEngine) }
func BenchmarkLookupDPTrie(b *testing.B)   { benchLookup(b, dptrie.NewEngine) }
func BenchmarkLookupLCTrie(b *testing.B)   { benchLookup(b, lctrie.NewEngine) }
func BenchmarkLookupBinTrie(b *testing.B)  { benchLookup(b, bintrie.NewEngine) }
func BenchmarkLookupStride24(b *testing.B) { benchLookup(b, stride24.NewEngine) }
func BenchmarkLookupMultibit(b *testing.B) { benchLookup(b, multibit.NewEngine) }
func BenchmarkLookupWBS(b *testing.B)      { benchLookup(b, wbs.NewEngine) }
func BenchmarkLookupRangeBS(b *testing.B)  { benchLookup(b, rangebs.NewEngine) }
func BenchmarkLookupOracle(b *testing.B)   { benchLookup(b, lpm.NewReferenceEngine) }

func benchBuild(b *testing.B, build lpm.Builder) {
	tbl := benchTable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		build(tbl)
	}
}

func BenchmarkBuildLulea(b *testing.B)  { benchBuild(b, lulea.NewEngine) }
func BenchmarkBuildDPTrie(b *testing.B) { benchBuild(b, dptrie.NewEngine) }
func BenchmarkBuildLCTrie(b *testing.B) { benchBuild(b, lctrie.NewEngine) }

// BenchmarkPartitionSelect measures the Sec. 3.1 bit-selection algorithm.
func BenchmarkPartitionSelect(b *testing.B) {
	tbl := benchTable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		partition.Partition(tbl, 16)
	}
}

// BenchmarkCacheProbeHit measures the LR-cache hot path.
func BenchmarkCacheProbeHit(b *testing.B) {
	c := cache.New(cache.DefaultConfig())
	addrs := make([]ip.Addr, 1024)
	rng := stats.NewRNG(3)
	for i := range addrs {
		addrs[i] = rng.Uint32()
		c.RecordMiss(addrs[i], cache.LOC, 0)
		c.Fill(addrs[i], 1, cache.LOC)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Probe(addrs[i&1023])
	}
}

// BenchmarkSimulatorCycles measures raw simulator speed (simulated packets
// per wall second at the headline configuration).
func BenchmarkSimulatorCycles(b *testing.B) {
	tbl := benchTable()
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(tbl)
		cfg.NumLCs = 16
		cfg.PacketsPerLC = 5000
		r, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.PacketsCompleted), "packets/op")
	}
}

// BenchmarkRouterLookup measures the concurrent forwarding plane
// end-to-end (channel round trip + cache + occasional FE).
func BenchmarkRouterLookup(b *testing.B) {
	tbl := benchTable()
	r, err := router.New(tbl, router.WithLCs(4), router.WithCache(cache.DefaultConfig()))
	if err != nil {
		b.Fatal(err)
	}
	defer r.Stop()
	addrs := benchAddrs(tbl, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Lookup(i&3, addrs[i&1023]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceGeneration measures the synthetic trace stream.
func BenchmarkTraceGeneration(b *testing.B) {
	tbl := benchTable()
	cfg := trace.PresetConfig(trace.D75)
	pool := trace.NewPool(tbl, cfg)
	src := trace.NewSynthetic(pool, cfg, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Next()
	}
}

// BenchmarkFacadeSimulate exercises the public API end to end.
func BenchmarkFacadeSimulate(b *testing.B) {
	tbl := spal.SynthesizeTable(8000, 5)
	for i := 0; i < b.N; i++ {
		cfg := spal.DefaultSimConfig(tbl)
		cfg.NumLCs = 4
		cfg.PacketsPerLC = 4000
		if _, err := spal.Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
