// Command spal-router runs the concurrent goroutine-per-LC SPAL
// forwarding plane and drives it with destination addresses — from a
// trace file, from a synthetic generator, or interactively from stdin —
// printing verdicts and per-LC statistics.
//
// With -metrics ADDR it also serves Prometheus text on /metrics, a
// lifecycle-aware liveness probe on /healthz (503 while any LC is Down
// or Draining), the completed-trace journal on /debug/spal/traces, and
// the standard pprof profiles under /debug/pprof/ while the router runs,
// and stays up after a batch drive finishes (Ctrl-C to exit) so the
// endpoints can be scraped.
//
// Examples:
//
//	spal-router -psi 8 -n 100000              # synthetic load, print stats
//	spal-router -trace d75.trace              # replay a stored trace
//	echo 10.1.2.3 | spal-router -i            # interactive lookups
//	spal-router -metrics :9090 -n 1000000     # drive load, then serve /metrics
//	spal-router -batch 64 -n 1000000          # batched submission, coalesced fabric messages
//	spal-router -engine flat -cache-shards 8  # flat cache-line engine, sharded LR-caches
//	spal-router -fault-rate 0.1 -n 100000     # chaos mode: drop 10% of fabric messages
//	spal-router -kill-lc 2 -n 500000          # crash LC 2 mid-drive, watch the re-homing
//	spal-router -drain-after 50ms -n 500000   # drain LC 0 mid-drive, restore after
//	spal-router -trace-rate 0.01 -n 100000 -trace-dump 3  # sample 1% of lookups, dump the last 3 traces
//	spal-router -trace-rate 1 -fault-rate 0.1 -trace-log -n 10000  # full tracing + JSON log per lookup
//	spal-router -overload-depth 256 -shed-mode drop-newest -n 1000000  # bounded inboxes, shed on overflow
//	spal-router -churn-rate 1000 -n 1000000   # absorb 1000 route updates/s while forwarding
//	spal-router -corrupt-rate 0.001 -scrub-interval 20ms -n 1000000  # inject state corruption, scrub and self-heal
//	spal-router -slow-lc 1 -slow-factor 20 -n 1000000  # brown out LC 1, watch detection, hedging and ejection
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spal"
	"spal/internal/cache"
	"spal/internal/ip"
	"spal/internal/metrics"
	"spal/internal/router"
	"spal/internal/rtable"
	"spal/internal/trace"
	"spal/internal/tracing"
)

func main() {
	psi := flag.Int("psi", 8, "number of line cards")
	tableN := flag.Int("table", 41709, "synthetic routing table size")
	beta := flag.Int("beta", 4096, "LR-cache blocks")
	gamma := flag.Int("gamma", 50, "mix value %")
	n := flag.Int("n", 100000, "packets for synthetic load")
	preset := flag.String("preset", "D_75", "synthetic trace preset")
	tracePath := flag.String("trace", "", "replay a trace file instead of synthetic load")
	interactive := flag.Bool("i", false, "read addresses from stdin, print verdicts")
	noCache := flag.Bool("no-cache", false, "disable LR-caches")
	engineName := flag.String("engine", "lulea", "matching engine: "+strings.Join(spal.EngineNames(), "|"))
	cacheShards := flag.Int("cache-shards", 0, "split each LR-cache into this many line-padded shards (power of two, 0 = unsharded)")
	batchSize := flag.Int("batch", 0, "drive load through the batched data plane in batches of this size (0 = per-address lookups)")
	metricsAddr := flag.String("metrics", "", "serve /metrics and /healthz on this address (e.g. :9090)")
	faultRate := flag.Float64("fault-rate", 0, "drop this fraction of fabric messages (chaos mode, 0..1)")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for the deterministic fault injector")
	timeout := flag.Duration("timeout", 0, "per-attempt fabric request deadline (0 = default 50ms)")
	retries := flag.Int("retries", 0, "fabric request retries before falling back (0 = default 3, negative = none)")
	killLC := flag.Int("kill-lc", -1, "crash this line card shortly into the drive (lifecycle demo)")
	drainAfter := flag.Duration("drain-after", 0, "drain LC 0 this long into the drive, restore when it ends")
	traceRate := flag.Float64("trace-rate", -1, "per-lookup trace sampling rate 0..1 (negative = tracing off)")
	traceDump := flag.Int("trace-dump", 0, "print the last N completed traces after the drive (implies tracing)")
	traceLog := flag.Bool("trace-log", false, "emit one structured log line per finished trace (implies tracing)")
	overloadDepth := flag.Int("overload-depth", 0, "bound each LC inbox to this many messages and shed on overflow (0 = legacy unbounded)")
	shedMode := flag.String("shed-mode", "drop-newest", "shed policy under overload: drop-newest|drop-remote-first|block")
	churnRate := flag.Float64("churn-rate", 0, "stream BGP-style route updates at this rate (events/s) through ApplyUpdates while driving load (0 = off)")
	corruptRate := flag.Float64("corrupt-rate", 0, "inject state corruption at this rate: engine verdict flips, wrong cache fills, dropped invalidations (0 = off)")
	corruptSeed := flag.Uint64("corrupt-seed", 1, "seed for the deterministic corruption injector")
	scrubInterval := flag.Duration("scrub-interval", 0, "run the online integrity scrubber this often, quarantining and rebuilding corrupted LCs (0 = off)")
	processMetrics := flag.Bool("process-metrics", false, "also export Go process gauges (goroutines, heap bytes, GC pause) on /metrics")
	slowLC := flag.Int("slow-lc", -1, "brown out this line card: its fabric links run at 1/slow-factor speed while heartbeats stay clean (gray-failure demo; enables detection+hedging)")
	slowFactor := flag.Float64("slow-factor", 10, "brownout severity for -slow-lc: fabric links at 1/factor of clean speed")
	hedgeAfter := flag.Duration("hedge-after", 0, "hedge remote lookups outstanding this long from the fallback engine (0 = adaptive from fleet p99; enables the gray-failure plane)")
	flag.Parse()

	tbl := rtable.Synthesize(rtable.SynthConfig{N: *tableN, NextHops: 16, NestProb: 0.35, Seed: 0x5e3d_0001})
	opts := []router.Option{
		router.WithLCs(*psi),
		router.WithEngineName(*engineName),
		router.WithCache(cache.Config{Blocks: *beta, Assoc: 4, VictimBlocks: 8, MixPercent: *gamma, Policy: cache.LRU}),
	}
	if *cacheShards > 0 {
		opts = append(opts, router.WithCacheShards(*cacheShards))
	}
	if *noCache {
		opts = append(opts, router.WithoutCache())
	}
	if *faultRate > 0 && *slowLC >= 0 {
		fmt.Fprintln(os.Stderr, "-fault-rate and -slow-lc both install a fault injector; pick one")
		os.Exit(2)
	}
	if *faultRate > 0 {
		opts = append(opts, router.WithFaultInjector(router.SeededFaults(router.FaultConfig{
			Seed: *faultSeed, DropRate: *faultRate,
		})))
	}
	grayOn := *slowLC >= 0 || *hedgeAfter > 0
	if *slowLC >= 0 {
		if *slowLC >= *psi {
			fmt.Fprintf(os.Stderr, "-slow-lc %d outside [0,%d)\n", *slowLC, *psi)
			os.Exit(2)
		}
		if *slowFactor <= 1 {
			fmt.Fprintln(os.Stderr, "-slow-factor must be > 1")
			os.Exit(2)
		}
		lf := router.NewLinkFaults(*faultSeed)
		lf.SlowLC(*slowLC, *slowFactor)
		opts = append(opts, router.WithFaultInjector(lf.Injector()))
	}
	if grayOn {
		gp := router.DefaultGrayPolicy()
		gp.HedgeAfter = *hedgeAfter
		opts = append(opts, router.WithGray(gp))
	}
	if *timeout != 0 {
		opts = append(opts, router.WithRequestTimeout(*timeout))
	}
	if *retries != 0 {
		opts = append(opts, router.WithMaxRetries(*retries))
	}
	if *traceRate >= 0 || *traceDump > 0 || *traceLog {
		rate := *traceRate
		if rate < 0 {
			rate = 0 // dump/log without -trace-rate: interesting lookups only
		}
		opts = append(opts, router.WithTraceSampling(rate))
	}
	if *traceLog {
		opts = append(opts, router.WithLogger(slog.New(slog.NewJSONHandler(os.Stderr, nil))))
	}
	if *corruptRate > 0 {
		opts = append(opts, router.WithCorruption(router.CorruptionPolicy{
			Enabled:            true,
			Seed:               *corruptSeed,
			EngineFlipRate:     *corruptRate,
			WrongFillRate:      *corruptRate,
			DropInvalidateRate: *corruptRate,
		}))
	}
	if *scrubInterval > 0 {
		p := router.DefaultScrubPolicy()
		p.Interval = *scrubInterval
		opts = append(opts, router.WithScrub(p))
	}
	if *overloadDepth > 0 {
		mode, err := router.ParseShedMode(*shedMode)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opts = append(opts, router.WithOverload(router.OverloadPolicy{QueueDepth: *overloadDepth, Mode: mode}))
	}
	r, err := router.New(tbl, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer r.Stop()
	fmt.Printf("router up: psi=%d, table=%d prefixes, control bits %v, engine=%s\n",
		*psi, tbl.Len(), r.PartitionBits(), *engineName)

	if *metricsAddr != "" {
		if err := serveMetrics(*metricsAddr, r, *processMetrics); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *churnRate > 0 {
		churnStop := make(chan struct{})
		go runChurn(r, tbl, *churnRate, churnStop)
		defer func() {
			close(churnStop)
			s := r.Metrics()
			fmt.Printf("route churn: %.0f batches / %.0f events applied, %.0f rebalances, %.0f stale replies guarded, %.0f range invalidations\n",
				s.Sum(router.MetricUpdateBatches), s.Sum(router.MetricUpdateEvents),
				s.Sum(router.MetricRebalances), s.Sum(router.MetricStaleGen),
				s.Sum(cache.MetricRangeInv))
		}()
	}

	switch {
	case *interactive:
		runInteractive(r)
	case *tracePath != "":
		f, err := os.Open(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fs, err := trace.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		addrs := trace.Slice(fs, fs.Len())
		drive(r, *psi, addrs, *batchSize, *killLC, *drainAfter)
	default:
		tc := trace.PresetConfig(trace.Preset(*preset))
		pool := trace.NewPool(tbl, tc)
		addrs := trace.Slice(trace.NewSynthetic(pool, tc, 0), *n)
		drive(r, *psi, addrs, *batchSize, *killLC, *drainAfter)
	}

	if *corruptRate > 0 || *scrubInterval > 0 {
		rep := r.Integrity()
		fmt.Printf("integrity: %d scrub cycles, %d quarantines, %d rebuilds; injected %d engine flips, %d wrong fills, %d dropped invalidations\n",
			rep.ScrubCycles, rep.Quarantines, rep.Rebuilds,
			rep.EngineFlips, rep.WrongFills, rep.DroppedInvalidations)
		for _, l := range rep.LCs {
			if l.EngineMismatches+l.CacheMismatches > 0 {
				fmt.Printf("  LC%-2d state=%s samples=%d engine-mismatches=%d cache-mismatches=%d repaired=%d score=%.4f\n",
					l.LC, l.State, l.Samples, l.EngineMismatches, l.CacheMismatches, l.CacheRepairs, l.Score)
			}
		}
	}

	if grayOn {
		g := r.Gray()
		fmt.Printf("gray failures: %d degrades / %d recoveries, %d ejections (%d restored); hedges: %d fired, %d eject-served, %d primary-late, %d primary-lost, %d budget-denied; hedge delay %v\n",
			g.Degrades, g.Recovers, g.Ejections, g.Restores,
			g.Hedges, g.EjectServed, g.HedgePrimaryLate, g.HedgePrimaryLost, g.HedgeBudgetDenied, g.HedgeDelay)
		for _, l := range g.LCs {
			if l.Degraded || l.Ejected || l.Samples > 0 {
				fmt.Printf("  LC%-2d degraded=%v ejected=%v rtt-samples=%d p50=%v p99=%v ewma=%v\n",
					l.LC, l.Degraded, l.Ejected, l.Samples, l.RTTp50, l.RTTp99, l.EWMA)
			}
		}
	}

	if *traceDump > 0 {
		ts := r.Traces()
		if len(ts) > *traceDump {
			ts = ts[len(ts)-*traceDump:]
		}
		fmt.Printf("last %d of %d journaled traces:\n", len(ts), len(r.Traces()))
		tracing.WriteJSON(os.Stdout, ts)
	}

	if *metricsAddr != "" && !*interactive {
		fmt.Printf("serving /metrics and /healthz on %s — Ctrl-C to exit\n", *metricsAddr)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
	}
}

// serveMetrics starts the observability endpoint in the background,
// failing fast when the address cannot be bound. /healthz reflects the
// lifecycle state machine (503 while any LC is Down or Draining),
// /debug/spal/traces serves the completed-trace journal, and the
// standard pprof profiles hang under /debug/pprof/. withProcess opts the
// scrape into the Go process gauges; the default snapshot stays exactly
// the router's own metric families.
func serveMetrics(addr string, r *router.Router, withProcess bool) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	src := r.Metrics
	if withProcess {
		src = metrics.WithProcess(src)
	}
	mux := metrics.NewMux(src, r.Healthy)
	mux.Handle("/debug/spal/traces", tracing.Handler(r.Traces))
	metrics.RegisterPprof(mux)
	go http.Serve(ln, mux)
	return nil
}

// drive spreads the addresses across LCs round-robin with one goroutine
// per LC and reports aggregate throughput and per-LC counters. batch > 0
// submits through the coalesced batch plane in batches of that size
// instead of per-address Lookup calls. killLC >= 0 crashes that LC
// shortly into the drive; drainAfter > 0 drains LC 0 mid-drive and
// restores it once the drive ends — both exercise the lifecycle
// subsystem under real load.
func drive(r *router.Router, psi int, addrs []ip.Addr, batch, killLC int, drainAfter time.Duration) {
	if killLC >= 0 {
		time.AfterFunc(10*time.Millisecond, func() {
			if err := r.KillLC(killLC); err != nil {
				fmt.Fprintln(os.Stderr, "kill-lc:", err)
				return
			}
			fmt.Printf("crashed LC %d mid-drive\n", killLC)
		})
	}
	var drained chan error
	if drainAfter > 0 {
		drained = make(chan error, 1)
		time.AfterFunc(drainAfter, func() {
			fmt.Println("draining LC 0 mid-drive")
			t0 := time.Now()
			err := r.DrainLC(0)
			if err == nil {
				fmt.Printf("drained LC 0 in %v\n", time.Since(t0))
			}
			drained <- err
		})
	}
	before := r.Metrics()
	start := time.Now()
	var shed atomic.Int64
	var wg sync.WaitGroup
	for lc := 0; lc < psi; lc++ {
		wg.Add(1)
		go func(lc int) {
			defer wg.Done()
			if batch > 0 {
				buf := make([]ip.Addr, 0, batch)
				out := make([]router.Verdict, batch)
				ctx := context.Background()
				flush := func() bool {
					if len(buf) == 0 {
						return true
					}
					err := r.LookupBatchInto(ctx, lc, buf, out)
					if errors.Is(err, router.ErrOverloaded) {
						// Admission sheds whole batches; count every address.
						shed.Add(int64(len(buf)))
					} else if err != nil {
						fmt.Fprintln(os.Stderr, err)
						return false
					}
					buf = buf[:0]
					return true
				}
				for i := lc; i < len(addrs); i += psi {
					if buf = append(buf, addrs[i]); len(buf) == batch {
						if !flush() {
							return
						}
					}
				}
				flush()
				return
			}
			for i := lc; i < len(addrs); i += psi {
				if _, err := r.Lookup(lc, addrs[i]); err != nil {
					// Under overload control ErrOverloaded is the
					// expected per-lookup outcome, not a drive failure.
					if errors.Is(err, router.ErrOverloaded) {
						shed.Add(1)
						continue
					}
					fmt.Fprintln(os.Stderr, err)
					return
				}
			}
		}(lc)
	}
	wg.Wait()
	elapsed := time.Since(start)
	served := int64(len(addrs)) - shed.Load()
	fmt.Printf("forwarded %d packets in %.2fs (%.2f Mpps software)\n",
		len(addrs), elapsed.Seconds(), float64(len(addrs))/elapsed.Seconds()/1e6)
	if shed.Load() > 0 {
		fmt.Printf("overload: shed %d of %d lookups (%.2f%%), goodput %.2f Mpps\n",
			shed.Load(), len(addrs), 100*float64(shed.Load())/float64(len(addrs)),
			float64(served)/elapsed.Seconds()/1e6)
	}
	fmt.Printf("%-4s %10s %10s %8s %9s %9s %10s %12s\n",
		"LC", "lookups", "hits", "FE", "reqSent", "repSent", "coalesced", "p95 cache")
	delta := r.Metrics().Delta(before)
	for lc := 0; lc < r.NumLCs(); lc++ {
		lbl := metrics.L("lc", fmt.Sprint(lc))
		lookups, _ := delta.Value(router.MetricLookups, lbl)
		hits, _ := delta.Value(router.MetricCacheHits, lbl)
		fe, _ := delta.Value(router.MetricFEExecs, lbl)
		req, _ := delta.Value(router.MetricFabricRequests, lbl)
		rep, _ := delta.Value(router.MetricFabricReplies, lbl)
		coal, _ := delta.Value(router.MetricCoalesced, lbl)
		var p95 time.Duration
		if h, ok := delta.HistValue(router.MetricLatency, lbl, metrics.L("served_by", "cache")); ok {
			p95 = time.Duration(h.Quantile(0.95))
		}
		fmt.Printf("%-4d %10.0f %10.0f %8.0f %9.0f %9.0f %10.0f %12v\n",
			lc, lookups, hits, fe, req, rep, coal, p95)
	}
	// Robustness summary: only interesting when something actually went
	// wrong on the fabric (chaos mode or a genuinely slow peer).
	retries := delta.Sum(router.MetricRetries)
	fallbacks := delta.Sum(router.MetricFallbacks)
	expired := delta.Sum(router.MetricDeadlineExpired)
	forwarded := delta.Sum(router.MetricForwarded)
	if retries+fallbacks+expired+forwarded > 0 {
		fmt.Printf("fabric faults survived: %.0f retries, %.0f deadline expiries, %.0f fallback verdicts, %.0f forwarded requests\n",
			retries, expired, fallbacks, forwarded)
	}
	sheds := delta.Sum(router.MetricShed)
	shorts := delta.Sum(router.MetricBreakerShorts)
	exhausted := delta.Sum(router.MetricBudgetExhausted)
	if sheds+shorts+exhausted > 0 {
		fmt.Printf("overload control: %.0f sheds, %.0f breaker short-circuits, %.0f budget-exhausted retries\n",
			sheds, shorts, exhausted)
	}

	// Lifecycle summary: admin drain completion, crash re-homings, and the
	// final per-LC states when anything left Healthy.
	if drained != nil {
		if err := <-drained; err != nil {
			fmt.Fprintln(os.Stderr, "drain:", err)
		} else if err := r.RestoreLC(0); err != nil {
			fmt.Fprintln(os.Stderr, "restore:", err)
		} else {
			fmt.Println("restored LC 0")
		}
	}
	after := r.Metrics()
	rehomes := after.Sum(router.MetricRehomes)
	replayed := after.Sum(router.MetricReplayed)
	if rehomes > 0 {
		fmt.Printf("lifecycle: %.0f partition re-homings, %.0f parked lookups replayed\n", rehomes, replayed)
	}
	states := r.LCStates()
	allHealthy := true
	for _, s := range states {
		allHealthy = allHealthy && s == router.LCHealthy
	}
	if !allHealthy {
		parts := make([]string, len(states))
		for i, s := range states {
			parts[i] = fmt.Sprintf("%d=%s", i, s)
		}
		fmt.Printf("lc states: %s\n", strings.Join(parts, " "))
	}
}

// runChurn streams seeded BGP-style route updates into the live router
// at approximately rate events per second, applying one incremental
// batch (router.ApplyUpdates: no barrier, targeted cache invalidation)
// per 50 ms tick until stop closes.
func runChurn(r *router.Router, tbl *rtable.Table, rate float64, stop <-chan struct{}) {
	const tick = 50 * time.Millisecond
	const cycleNS = 5.0
	cur := tbl
	seed := uint64(0xc1124)
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		batch := rtable.GenerateUpdates(cur, rtable.UpdateStreamConfig{
			RatePerSecond: rate,
			CycleNS:       cycleNS,
			Duration:      int64(tick.Seconds() * 1e9 / cycleNS),
			WithdrawProb:  0.3,
			NewPrefixProb: 0.2,
			Seed:          seed,
		})
		seed++
		if len(batch) == 0 {
			continue
		}
		next := cur.ApplyAll(batch)
		if next.Len() == 0 {
			continue
		}
		if err := r.ApplyUpdates(batch); err != nil {
			return // router stopping
		}
		cur = next
	}
}

// runInteractive reads one address per line and prints the verdict.
func runInteractive(r *router.Router) {
	sc := bufio.NewScanner(os.Stdin)
	lc := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		a, err := ip.ParseAddr(line)
		if err != nil {
			fmt.Printf("%s: %v\n", line, err)
			continue
		}
		v, err := r.Lookup(lc, a)
		if err != nil {
			fmt.Println(err)
			return
		}
		if v.OK {
			fmt.Printf("%s -> next hop %d (home LC %d, served by %s)\n",
				line, v.NextHop, r.HomeLC(a), v.ServedBy)
		} else {
			fmt.Printf("%s -> no route\n", line)
		}
		lc = (lc + 1) % r.NumLCs()
	}
}
