// Command spal-router runs the concurrent goroutine-per-LC SPAL
// forwarding plane and drives it with destination addresses — from a
// trace file, from a synthetic generator, or interactively from stdin —
// printing verdicts and per-LC statistics.
//
// Examples:
//
//	spal-router -psi 8 -n 100000            # synthetic load, print stats
//	spal-router -trace d75.trace            # replay a stored trace
//	echo 10.1.2.3 | spal-router -i          # interactive lookups
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"spal"
	"spal/internal/cache"
	"spal/internal/ip"
	"spal/internal/router"
	"spal/internal/rtable"
	"spal/internal/trace"
)

func main() {
	psi := flag.Int("psi", 8, "number of line cards")
	tableN := flag.Int("table", 41709, "synthetic routing table size")
	beta := flag.Int("beta", 4096, "LR-cache blocks")
	gamma := flag.Int("gamma", 50, "mix value %")
	n := flag.Int("n", 100000, "packets for synthetic load")
	preset := flag.String("preset", "D_75", "synthetic trace preset")
	tracePath := flag.String("trace", "", "replay a trace file instead of synthetic load")
	interactive := flag.Bool("i", false, "read addresses from stdin, print verdicts")
	noCache := flag.Bool("no-cache", false, "disable LR-caches")
	engineName := flag.String("engine", "lulea", "matching engine: reference|bintrie|dptrie|lctrie|lulea|multibit|stride24")
	flag.Parse()

	tbl := rtable.Synthesize(rtable.SynthConfig{N: *tableN, NextHops: 16, NestProb: 0.35, Seed: 0x5e3d_0001})
	cfg := router.Config{
		NumLCs:       *psi,
		Table:        tbl,
		Cache:        cache.Config{Blocks: *beta, Assoc: 4, VictimBlocks: 8, MixPercent: *gamma, Policy: cache.LRU},
		CacheEnabled: !*noCache,
	}
	builder, ok := spal.Engines()[*engineName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown engine %q\n", *engineName)
		os.Exit(2)
	}
	cfg.Engine = builder

	r, err := router.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer r.Stop()
	fmt.Printf("router up: psi=%d, table=%d prefixes, control bits %v, engine=%s\n",
		*psi, tbl.Len(), r.PartitionBits(), *engineName)

	switch {
	case *interactive:
		runInteractive(r)
	case *tracePath != "":
		f, err := os.Open(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fs, err := trace.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		addrs := trace.Slice(fs, fs.Len())
		drive(r, *psi, addrs)
	default:
		tc := trace.PresetConfig(trace.Preset(*preset))
		pool := trace.NewPool(tbl, tc)
		addrs := trace.Slice(trace.NewSynthetic(pool, tc, 0), *n)
		drive(r, *psi, addrs)
	}
}

// drive spreads the addresses across LCs round-robin with one goroutine
// per LC and reports aggregate throughput and per-LC counters.
func drive(r *router.Router, psi int, addrs []ip.Addr) {
	start := time.Now()
	var wg sync.WaitGroup
	for lc := 0; lc < psi; lc++ {
		wg.Add(1)
		go func(lc int) {
			defer wg.Done()
			for i := lc; i < len(addrs); i += psi {
				if _, err := r.Lookup(lc, addrs[i]); err != nil {
					fmt.Fprintln(os.Stderr, err)
					return
				}
			}
		}(lc)
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("forwarded %d packets in %.2fs (%.2f Mpps software)\n",
		len(addrs), elapsed.Seconds(), float64(len(addrs))/elapsed.Seconds()/1e6)
	fmt.Printf("%-4s %10s %10s %8s %9s %9s %10s\n",
		"LC", "lookups", "hits", "FE", "reqSent", "repSent", "coalesced")
	for lc, s := range r.Stats() {
		fmt.Printf("%-4d %10d %10d %8d %9d %9d %10d\n",
			lc, s.Lookups.Load(), s.CacheHits.Load(), s.FEExecs.Load(),
			s.RequestsSent.Load(), s.RepliesSent.Load(), s.Coalesced.Load())
	}
}

// runInteractive reads one address per line and prints the verdict.
func runInteractive(r *router.Router) {
	sc := bufio.NewScanner(os.Stdin)
	lc := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		a, err := ip.ParseAddr(line)
		if err != nil {
			fmt.Printf("%s: %v\n", line, err)
			continue
		}
		v, err := r.Lookup(lc, a)
		if err != nil {
			fmt.Println(err)
			return
		}
		if v.OK {
			fmt.Printf("%s -> next hop %d (home LC %d, served by %s)\n",
				line, v.NextHop, r.HomeLC(a), v.ServedBy)
		} else {
			fmt.Printf("%s -> no route\n", line)
		}
		lc = (lc + 1) % r.NumLCs()
	}
}
