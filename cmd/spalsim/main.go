// Command spalsim runs one trace-driven cycle simulation of a SPAL router
// and prints the result, mirroring the paper's Sec. 5 methodology.
//
// Examples:
//
//	spalsim -psi 16 -beta 4096 -packets 300000 -trace D_75
//	spalsim -psi 1 -no-partition -no-cache          # conventional router
//	spalsim -speed 10 -lookup 62                    # 10 Gbps, DP-trie FE
//	spalsim -stages -packets 50000                  # per-stage latency breakdown
//	spalsim -corrupt-rate 1e-4 -scrub-every 50000   # inject fill corruption, scrub it back out
//	spalsim -slow-lc 3 -slow-factor 10              # brown out LC 3, measure the latency skew
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"spal/internal/cache"
	"spal/internal/lpm/engines"
	"spal/internal/rtable"
	"spal/internal/sim"
	"spal/internal/trace"
)

func main() {
	psi := flag.Int("psi", 16, "number of line cards")
	beta := flag.Int("beta", 4096, "LR-cache blocks")
	gamma := flag.Int("gamma", 50, "mix value: % of blocks for REM results")
	assoc := flag.Int("assoc", 4, "cache set associativity")
	victim := flag.Int("victim", 8, "victim cache blocks")
	lookup := flag.Int("lookup", 40, "FE lookup time in cycles (40=Lulea, 62=DP)")
	engineName := flag.String("engine", "", "matching engine for the simulated FEs ("+strings.Join(engines.Names(), "|")+"; empty = reference)")
	packets := flag.Int("packets", 300000, "packets per LC")
	speed := flag.Int("speed", 40, "LC speed in Gbps (10 or 40)")
	traceName := flag.String("trace", "D_75", "trace preset: D_75 D_81 L_92-0 L_92-1 B_L")
	tableN := flag.Int("table", 140838, "synthetic routing table size (prefixes)")
	seed := flag.Uint64("seed", 42, "random seed")
	noCache := flag.Bool("no-cache", false, "disable LR-caches")
	noPart := flag.Bool("no-partition", false, "keep the full table at every LC")
	flushMS := flag.Float64("flush-ms", 0, "flush caches every N milliseconds (0 = never)")
	updatesPS := flag.Float64("updates-per-sec", 0, "stream BGP-style route updates at this rate, applied incrementally with targeted cache invalidation (0 = no churn)")
	updateFlush := flag.Bool("update-full-flush", false, "flush every cache on each update batch instead of targeted range invalidation")
	corruptRate := flag.Float64("corrupt-rate", 0, "corrupt each cache fill with this probability (bit-flipped next hop, 0 = off)")
	corruptSeed := flag.Uint64("corrupt-seed", 0, "seed for the corruption injector (0 = derive from -seed)")
	scrubEvery := flag.Int64("scrub-every", 0, "audit every LR-cache against the oracle every N cycles, evicting mismatches (0 = off)")
	offered := flag.Float64("offered-load", 1.0, "scale every LC's packet rate (2.0 = twice nominal)")
	admitCap := flag.Int("admit-cap", 0, "shed arrivals when the LC arrival queue holds this many packets (0 = unbounded)")
	slowLC := flag.Int("slow-lc", -1, "brown out this line card: fabric messages touching it pay slow-factor x latency (gray-failure exposure baseline)")
	slowFactor := flag.Float64("slow-factor", 10, "brownout severity for -slow-lc")
	perLC := flag.Bool("per-lc", false, "print per-LC statistics")
	stages := flag.Bool("stages", false, "print the per-stage lookup latency breakdown")
	configPath := flag.String("config", "", "JSON config file (flags for table size still apply)")
	promPath := flag.String("prom", "", "write the run's metrics in Prometheus text format to this file (\"-\" for stdout)")
	jsonPath := flag.String("json", "", "write the full machine-readable Result as JSON to this file (\"-\" for stdout, replacing the human report)")
	flag.Parse()

	tbl := rtable.Synthesize(rtable.SynthConfig{N: *tableN, NextHops: 16, NestProb: 0.35, Seed: 0x5e3d_0002})
	var cfg sim.Config
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg, err = sim.LoadConfig(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.Table = tbl
	} else {
		cfg = sim.DefaultConfig(tbl)
		cfg.NumLCs = *psi
		cfg.LookupCycles = *lookup
		cfg.Cache = cache.Config{Blocks: *beta, Assoc: *assoc, VictimBlocks: *victim, MixPercent: *gamma, Policy: cache.LRU}
		cfg.CacheEnabled = !*noCache
		cfg.PartitionEnabled = !*noPart
		cfg.PacketsPerLC = *packets
		cfg.Trace = trace.Preset(*traceName)
		cfg.Seed = *seed
		switch *speed {
		case 40:
			cfg.GapMin, cfg.GapMax = sim.Gaps40Gbps()
		case 10:
			cfg.GapMin, cfg.GapMax = sim.Gaps10Gbps()
		default:
			fmt.Fprintln(os.Stderr, "speed must be 10 or 40")
			os.Exit(2)
		}
		if *flushMS > 0 {
			cfg.FlushEveryCycles = int64(*flushMS * 1e6 / 5) // 5 ns cycles
		}
		cfg.OfferedLoad = *offered
		cfg.AdmissionCap = *admitCap
		cfg.UpdatesPerSecond = *updatesPS
		cfg.UpdateFullFlush = *updateFlush
		cfg.CorruptRate = *corruptRate
		cfg.CorruptSeed = *corruptSeed
		cfg.ScrubEveryCycles = *scrubEvery
		// With corruption on, verification is what turns a bad verdict
		// into a counter instead of silence.
		if *corruptRate > 0 {
			cfg.VerifyNextHops = true
		}
		if *slowLC >= 0 {
			cfg.SlowLC = *slowLC
			cfg.SlowFactor = *slowFactor
		}
	}

	if *engineName != "" {
		b, err := engines.Lookup(*engineName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Engine = b
	}

	cfg.StageAccounting = cfg.StageAccounting || *stages
	r, err := sim.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := r.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *jsonPath != "-" {
		fmt.Print(res.String())
	}
	if *jsonPath != "" {
		out := os.Stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := res.WriteJSON(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *promPath != "" {
		out := os.Stdout
		if *promPath != "-" {
			f, err := os.Create(*promPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := res.Snapshot().WritePrometheus(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *stages {
		fmt.Print(res.StageTable())
	}
	if *perLC {
		fmt.Println("per-LC:")
		for i, l := range res.PerLC {
			fmt.Printf("  LC%-2d gen=%d shed=%d hitLOC=%d hitREM=%d miss=%d reqSent=%d feLookups=%d feUtil=%.3f part=%d\n",
				i, l.Generated, l.Shed, l.HitLoc, l.HitRem, l.MissLocal, l.RequestsSent,
				l.FELookups, l.FEUtilization, l.PartitionSize)
		}
	}
}
