// Command spal-partition fragments a routing table per SPAL's criteria and
// reports the chosen control bits, partition sizes, replication, and the
// per-LC trie storage for each matching structure (the Sec. 4 analysis).
//
// Examples:
//
//	spal-partition -n 140838 -psi 16
//	spal-partition -table routes.txt -psi 4 -tries
package main

import (
	"flag"
	"fmt"
	"os"

	"spal/internal/lpm"
	"spal/internal/lpm/bintrie"
	"spal/internal/lpm/dptrie"
	"spal/internal/lpm/lctrie"
	"spal/internal/lpm/lulea"
	"spal/internal/partition"
	"spal/internal/rtable"
)

func main() {
	psi := flag.Int("psi", 4, "number of line cards (any integer >= 1)")
	n := flag.Int("n", 41709, "synthetic table size when -table is not given")
	seed := flag.Uint64("seed", 0x5e3d0001, "synthetic table seed")
	tablePath := flag.String("table", "", "routing table file (prefix nexthop per line)")
	format := flag.String("format", "plain", "table file format: plain or showbgp (Cisco 'show ip bgp' dump)")
	tries := flag.Bool("tries", true, "report per-trie storage sizes")
	flag.Parse()

	var tbl *rtable.Table
	if *tablePath != "" {
		f, err := os.Open(*tablePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		switch *format {
		case "plain":
			tbl, err = rtable.Read(f)
		case "showbgp":
			tbl, err = rtable.ReadShowBGP(f, 16)
		default:
			err = fmt.Errorf("unknown format %q", *format)
		}
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		tbl = rtable.Synthesize(rtable.SynthConfig{N: *n, NextHops: 16, NestProb: 0.35, Seed: *seed})
	}

	p := partition.Partition(tbl, *psi)
	st := p.Stats()
	fmt.Printf("table: %d prefixes, psi=%d\n", tbl.Len(), *psi)
	fmt.Printf("control bits: %v\n", p.Bits)
	fmt.Printf("partition sizes: %v\n", st.Sizes)
	fmt.Printf("min=%d max=%d replication=%.3f\n", st.Min, st.Max, st.Replication)

	if *tries {
		builders := []struct {
			name  string
			build lpm.Builder
		}{
			{"lulea", lulea.NewEngine},
			{"dptrie", dptrie.NewEngine},
			{"lctrie", lctrie.NewEngine},
			{"bintrie", bintrie.NewEngine},
		}
		fmt.Println("\ntrie storage (KB):")
		fmt.Printf("%-8s  %10s  %12s  %12s\n", "trie", "whole", "max per-LC", "saving/LC")
		for _, b := range builders {
			whole := b.build(tbl).MemoryBytes()
			maxLC := 0
			for lc := 0; lc < *psi; lc++ {
				if m := b.build(p.Table(lc)).MemoryBytes(); m > maxLC {
					maxLC = m
				}
			}
			fmt.Printf("%-8s  %10.0f  %12.0f  %12.0f\n",
				b.name, float64(whole)/1024, float64(maxLC)/1024, float64(whole-maxLC)/1024)
		}
	}
}
