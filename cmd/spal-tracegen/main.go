// Command spal-tracegen generates a synthetic destination trace (or
// inspects an existing one) and reports its locality metrics.
//
// Examples:
//
//	spal-tracegen -preset D_75 -n 300000 -o d75.trace
//	spal-tracegen -inspect d75.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"spal/internal/rtable"
	"spal/internal/trace"
)

func report(addrs []uint32) {
	fmt.Printf("packets: %d\n", len(addrs))
	for _, d := range []int{1024, 4096, 8192} {
		fmt.Printf("LRU stack hit ratio @%d: %.4f\n", d, trace.StackHitRatio(addrs, d))
	}
	fmt.Printf("working set (per 10k window): %.0f\n", trace.WorkingSet(addrs, 10000))
	fmt.Printf("top-1000 destination share: %.3f\n", trace.TopShare(addrs, 1000))
}

func main() {
	preset := flag.String("preset", "D_75", "trace preset: D_75 D_81 L_92-0 L_92-1 B_L")
	n := flag.Int("n", 300000, "packets to generate")
	tableN := flag.Int("table", 140838, "synthetic routing table size")
	salt := flag.Uint64("salt", 0, "per-stream salt (one per LC)")
	out := flag.String("o", "", "output file (default stdout)")
	binaryFmt := flag.Bool("binary", false, "write/read the compact binary format instead of text")
	inspect := flag.String("inspect", "", "inspect an existing trace file instead of generating")
	flag.Parse()

	if *inspect != "" {
		f, err := os.Open(*inspect)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		var fs *trace.FileSource
		if *binaryFmt {
			fs, err = trace.ReadBinary(f)
		} else {
			fs, err = trace.Read(f)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		report(trace.Slice(fs, fs.Len()))
		return
	}

	tbl := rtable.Synthesize(rtable.SynthConfig{N: *tableN, NextHops: 16, NestProb: 0.35, Seed: 0x5e3d_0002})
	cfg := trace.PresetConfig(trace.Preset(*preset))
	pool := trace.NewPool(tbl, cfg)
	addrs := trace.Slice(trace.NewSynthetic(pool, cfg, *salt), *n)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	var werr error
	if *binaryFmt {
		werr = trace.WriteBinary(w, addrs)
	} else {
		werr = trace.Write(w, addrs)
	}
	if werr != nil {
		fmt.Fprintln(os.Stderr, werr)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Printf("wrote %d destinations to %s\n", len(addrs), *out)
		report(addrs)
	}
}
