// Command spal-bench regenerates the paper's tables and figures, runs
// declarative experiment grids, and compares BENCH_*.json snapshots.
//
// Usage:
//
//	spal-bench -exp all -scale quick                     # paper tables
//	spal-bench -exp fig5 -scale full
//	spal-bench -grid scripts/paper/grid_quick.json \
//	           -grid-out bench-grid -profiles \
//	           -snapshot BENCH_9.json -pr 9              # experiment grid
//	spal-bench -compare BENCH_7.json BENCH_9.json        # regression gate
//	spal-bench -compare -fields BENCH_9.json fresh.json  # freshness gate
//
// The grid runner executes every cell of the JSON spec (router and
// simulator experiments across engine/ψ/batch/shard/churn/corruption
// axes, with warmup and measured repeats), writes records.csv,
// summary.csv, cells.json, per-cell pprof profiles, and regenerated
// figure CSVs under -grid-out, and optionally emits a BENCH snapshot.
// Compare mode exits 1 when any shared benchmark's latency metric
// regresses beyond the ratio ceiling (or, with -fields, when the two
// snapshots' benchmark names or field sets disagree).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"spal/internal/bench"
	"spal/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: "+strings.Join(experiments.Names(), "|")+"|all")
	scaleName := flag.String("scale", "quick", "quick or full")
	format := flag.String("format", "table", "table or csv")
	outDir := flag.String("o", "", "also write each experiment as <dir>/<name>.csv")

	gridPath := flag.String("grid", "", "run the experiment grid described by this JSON spec instead of -exp")
	gridOut := flag.String("grid-out", "bench-grid", "output directory for grid records, figures, and profiles")
	profiles := flag.Bool("profiles", false, "capture per-cell CPU and heap pprof profiles under <grid-out>/profiles")
	slowdownNS := flag.Int64("slowdown-ns", 0, "inject this many ns of sleep into every timed router op (synthetic regression for gate testing)")
	snapshotPath := flag.String("snapshot", "", "write the grid results as a BENCH snapshot to this file")
	pr := flag.Int("pr", 0, "pr number recorded in the snapshot")
	title := flag.String("title", "", "snapshot title")
	desc := flag.String("desc", "", "snapshot description")

	compare := flag.Bool("compare", false, "compare two snapshots: spal-bench -compare OLD.json NEW.json")
	fields := flag.Bool("fields", false, "with -compare: check names and field sets instead of values (machine-independent freshness gate)")
	ceiling := flag.Float64("ceiling", 2.0, "with -compare: fail when new/old exceeds this ratio on any latency metric")
	metricCeilings := flag.String("metric-ceilings", "", "with -compare: per-metric overrides, e.g. p99_ns=3.0,ns_per_op=2.5")
	flag.Parse()

	switch {
	case *compare:
		runCompare(flag.Args(), *fields, *ceiling, *metricCeilings)
	case *gridPath != "":
		runGrid(*gridPath, *gridOut, *profiles, *slowdownNS, *snapshotPath, *pr, *title, *desc)
	default:
		runTables(*exp, *scaleName, *format, *outDir)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func runCompare(args []string, fields bool, ceiling float64, metricCeilings string) {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: spal-bench -compare [-fields] [-ceiling R] OLD.json NEW.json")
		os.Exit(2)
	}
	oldS, err := bench.LoadSnapshot(args[0])
	if err != nil {
		fatal(err)
	}
	newS, err := bench.LoadSnapshot(args[1])
	if err != nil {
		fatal(err)
	}

	if fields {
		problems := bench.CompareFields(oldS, newS)
		if len(problems) > 0 {
			fmt.Fprintf(os.Stderr, "snapshot schemas disagree (%s vs %s):\n", args[0], args[1])
			for _, p := range problems {
				fmt.Fprintln(os.Stderr, "  "+p)
			}
			os.Exit(1)
		}
		fmt.Printf("%s and %s agree on benchmark names and fields\n", args[0], args[1])
		return
	}

	perMetric := map[string]float64{}
	if metricCeilings != "" {
		for _, kv := range strings.Split(metricCeilings, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				fatal(fmt.Errorf("bad -metric-ceilings entry %q (want metric=ratio)", kv))
			}
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				fatal(fmt.Errorf("bad -metric-ceilings entry %q: %w", kv, err))
			}
			perMetric[k] = f
		}
	}
	rep, err := bench.Compare(oldS, newS, ceiling, perMetric)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("comparing %s (pr %d) -> %s (pr %d), default ceiling %.2f\n",
		args[0], oldS.PR, args[1], newS.PR, ceiling)
	fmt.Print(rep.String())
	if len(rep.Regressions) > 0 {
		os.Exit(1)
	}
}

func runGrid(specPath, outDir string, profiles bool, slowdownNS int64, snapshotPath string, pr int, title, desc string) {
	spec, err := bench.LoadSpecFile(specPath)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	res, err := bench.Run(bench.Options{
		Spec:       spec,
		OutDir:     outDir,
		Profiles:   profiles,
		SlowdownNS: slowdownNS,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("grid %s: %d cells in %.1fs -> %s\n", spec.Name, len(res.Cells), time.Since(start).Seconds(), outDir)

	if snapshotPath != "" {
		if title == "" {
			title = "Perf grid snapshot: " + spec.Name
		}
		cmd := fmt.Sprintf("spal-bench -grid %s -grid-out %s -snapshot %s -pr %d", specPath, outDir, snapshotPath, pr)
		snap := bench.BuildSnapshot(res, pr, title, desc, cmd, time.Now().UTC().Format("2006-01-02"))
		if err := snap.Write(snapshotPath); err != nil {
			fatal(err)
		}
		fmt.Printf("snapshot -> %s\n", snapshotPath)
	}
}

func runTables(exp, scaleName, format, outDir string) {
	if format != "table" && format != "csv" {
		fmt.Fprintf(os.Stderr, "unknown format %q\n", format)
		os.Exit(2)
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			fatal(err)
		}
	}

	var scale experiments.Scale
	switch scaleName {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", scaleName)
		os.Exit(2)
	}

	selected := experiments.Names()
	if exp != "all" {
		if _, ok := experiments.Get(exp); !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", exp)
			os.Exit(2)
		}
		selected = []string{exp}
	}

	fmt.Printf("spal-bench: scale=%s\n\n", scale.Name)
	for _, name := range selected {
		run, _ := experiments.Get(name)
		start := time.Now()
		tbl, err := run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		if format == "csv" {
			fmt.Printf("# %s\n%s\n", tbl.Title, tbl.CSV())
		} else {
			fmt.Print(tbl.String())
			fmt.Printf("(%s in %.1fs)\n\n", name, time.Since(start).Seconds())
		}
		if outDir != "" {
			path := filepath.Join(outDir, name+".csv")
			if err := os.WriteFile(path, []byte("# "+tbl.Title+"\n"+tbl.CSV()), 0o644); err != nil {
				fatal(err)
			}
		}
	}
}
