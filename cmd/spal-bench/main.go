// Command spal-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	spal-bench -exp all -scale quick
//	spal-bench -exp fig5 -scale full
//
// Experiments: bits, fig3, access, fig4, fig5, fig6, headline, ablation,
// updates, comparator, all. Scale "full" uses the paper's parameters
// (RT_1/RT_2-sized tables, 300k packets per LC) and takes minutes; "quick"
// preserves every qualitative shape in seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"spal/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: bits|fig3|access|fig4|fig5|fig6|headline|speeds|ablation|updates|coverage|worstcase|rebuild|drift|latency|warmup|comparator|all")
	scaleName := flag.String("scale", "quick", "quick or full")
	format := flag.String("format", "table", "table or csv")
	outDir := flag.String("o", "", "also write each experiment as <dir>/<name>.csv")
	flag.Parse()
	if *format != "table" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	type runner struct {
		name string
		run  func() (*experiments.Table, error)
	}
	wrap := func(f func(experiments.Scale) *experiments.Table) func() (*experiments.Table, error) {
		return func() (*experiments.Table, error) { return f(scale), nil }
	}
	wrapE := func(f func(experiments.Scale) (*experiments.Table, error)) func() (*experiments.Table, error) {
		return func() (*experiments.Table, error) { return f(scale) }
	}
	all := []runner{
		{"bits", wrap(experiments.PartitionBits)},
		{"fig3", wrap(experiments.Fig3Storage)},
		{"access", wrap(experiments.MemoryAccesses)},
		{"fig4", wrapE(experiments.Fig4Mix)},
		{"fig5", wrapE(experiments.Fig5CacheSize)},
		{"fig6", wrapE(experiments.Fig6NumLCs)},
		{"headline", wrapE(experiments.Headline)},
		{"speeds", wrapE(experiments.Speeds)},
		{"ablation", wrapE(experiments.Ablation)},
		{"updates", wrapE(experiments.UpdateFlush)},
		{"coverage", wrapE(experiments.Coverage)},
		{"worstcase", wrap(experiments.WorstCase)},
		{"rebuild", wrap(experiments.Rebuild)},
		{"survey", wrap(experiments.Survey)},
		{"ipv6", wrap(experiments.IPv6Storage)},
		{"drift", wrapE(experiments.Drift)},
		{"hotspot", wrapE(experiments.Hotspot)},
		{"latency", wrapE(experiments.LatencyDistribution)},
		{"warmup", wrapE(experiments.Warmup)},
		{"comparator", wrap(experiments.LengthPartitionComparison)},
	}

	selected := all
	if *exp != "all" {
		selected = nil
		for _, r := range all {
			if r.name == *exp {
				selected = []runner{r}
			}
		}
		if selected == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			os.Exit(2)
		}
	}

	fmt.Printf("spal-bench: scale=%s\n\n", scale.Name)
	for _, r := range selected {
		start := time.Now()
		tbl, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			os.Exit(1)
		}
		if *format == "csv" {
			fmt.Printf("# %s\n%s\n", tbl.Title, tbl.CSV())
		} else {
			fmt.Print(tbl.String())
			fmt.Printf("(%s in %.1fs)\n\n", r.name, time.Since(start).Seconds())
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, r.name+".csv")
			if err := os.WriteFile(path, []byte("# "+tbl.Title+"\n"+tbl.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}
