package tracing

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"spal/internal/ip"
)

// The JSON wire format of a trace. Field order is fixed by struct
// declaration (encoding/json preserves it), so the encoding is
// golden-file stable. All durations are integer nanoseconds — the unit
// is spelled in the field names (*_ns) rather than implied.
type jsonTrace struct {
	TraceID    string      `json:"trace_id"` // zero-padded hex, 16 digits
	Addr       string      `json:"addr"`
	ArrivalLC  int         `json:"arrival_lc"`
	Start      string      `json:"start"` // RFC 3339 with nanoseconds, UTC
	LatencyNS  int64       `json:"latency_ns"`
	ServedBy   string      `json:"served_by"`
	OK         bool        `json:"ok"`
	Flags      []string    `json:"flags"`
	DroppedEvs int         `json:"dropped_events"`
	Events     []jsonEvent `json:"events"`
}

type jsonEvent struct {
	Kind string `json:"kind"`
	AtNS int64  `json:"at_ns"`
	A    int64  `json:"a"`
	B    int64  `json:"b"`
}

type jsonDoc struct {
	Count  int         `json:"count"`
	Traces []jsonTrace `json:"traces"`
}

func toJSONTrace(t *LookupTrace) jsonTrace {
	out := jsonTrace{
		TraceID:    fmt.Sprintf("%016x", t.ID),
		Addr:       ip.FormatAddr(t.Addr),
		ArrivalLC:  t.ArrivalLC,
		Start:      t.Start.UTC().Format(time.RFC3339Nano),
		LatencyNS:  t.LatencyNS,
		ServedBy:   t.ServedBy,
		OK:         t.OK,
		Flags:      t.Flags.Strings(),
		DroppedEvs: t.Dropped,
		Events:     make([]jsonEvent, 0, t.EventCount),
	}
	for _, e := range t.EventSlice() {
		out.Events = append(out.Events, jsonEvent{Kind: e.Kind.String(), AtNS: e.At, A: e.A, B: e.B})
	}
	return out
}

// WriteJSON encodes traces as an indented JSON document:
// {"count": N, "traces": [...]}. The field order and units are stable —
// see jsonTrace — and covered by a golden-file test.
func WriteJSON(w io.Writer, traces []LookupTrace) error {
	doc := jsonDoc{Count: len(traces), Traces: make([]jsonTrace, 0, len(traces))}
	for i := range traces {
		doc.Traces = append(doc.Traces, toJSONTrace(&traces[i]))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Handler serves the trace journal as JSON (the /debug/spal/traces
// endpoint). src is called per request (Router.Traces fits). Query
// parameters filter the result:
//
//	served_by=cache|fe|remote|fallback   keep one verdict origin
//	min_latency_ns=N                     keep traces at least this slow
//	interesting=1                        keep retried/re-homed/fallback/expired
//	limit=N                              keep only the newest N after filtering
func Handler(src func() []LookupTrace) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		traces := src()
		q := req.URL.Query()
		if sb := q.Get("served_by"); sb != "" {
			traces = filter(traces, func(t *LookupTrace) bool { return t.ServedBy == sb })
		}
		if v := q.Get("min_latency_ns"); v != "" {
			min, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				http.Error(w, "bad min_latency_ns: "+err.Error(), http.StatusBadRequest)
				return
			}
			traces = filter(traces, func(t *LookupTrace) bool { return t.LatencyNS >= min })
		}
		if q.Get("interesting") == "1" {
			traces = filter(traces, func(t *LookupTrace) bool { return t.Flags.Interesting() })
		}
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			if n < len(traces) {
				traces = traces[len(traces)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		WriteJSON(w, traces)
	})
}

func filter(ts []LookupTrace, keep func(*LookupTrace) bool) []LookupTrace {
	out := ts[:0:0]
	for i := range ts {
		if keep(&ts[i]) {
			out = append(out, ts[i])
		}
	}
	return out
}
