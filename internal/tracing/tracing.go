// Package tracing is the per-lookup distributed-tracing substrate of the
// concurrent router: a low-overhead span recorder that follows one lookup
// end-to-end — arrival, LR-cache probe, waiter coalescing, fabric
// send/receive, home-FE execution, retry/fallback/deadline, cache fill,
// verdict — as a single flat LookupTrace of fixed-size SpanEvents.
//
// The design constraints come from the router's concurrency model (one
// goroutine per line card, no shared mutable state on the hot path):
//
//   - A trace is owned by exactly one goroutine at a time. It is created
//     at the arrival LC, rides the lookup message to that LC's goroutine,
//     and every Record happens on the current owner. Home-LC detail
//     (forward-hop count, FE execution time) travels back inside the
//     reply message as plain integers, never as a shared pointer.
//   - No allocation when tracing is disabled: a nil *Recorder and a nil
//     *LookupTrace are both valid receivers for every method, so the hot
//     path pays one pointer test and nothing else.
//   - Events append into a fixed array (MaxEvents); overflow increments
//     Dropped but per-kind Counts stay exact, so metric reconciliation
//     survives event loss.
//   - Finish publishes the trace into a bounded lock-free ring journal
//     and optionally emits one structured log record. After Finish a
//     trace is immutable; Snapshot copies it by value.
package tracing

import (
	"fmt"
	"time"

	"spal/internal/ip"
)

// EventKind identifies one lifecycle point inside a lookup. The A and B
// arguments of a SpanEvent are kind-specific; DESIGN.md §10 holds the
// full schema table.
type EventKind uint8

// Span event kinds, in rough lifecycle order.
const (
	// EvArrival: lookup submitted. A = arrival LC.
	EvArrival EventKind = iota
	// EvProbe: LR-cache probe at the arrival LC. A = probe outcome
	// (cache.ProbeKind numbering: 0 miss, 1 hit, 2 hit-waiting, 3
	// victim hit), B = origin class of the entry hit (0 LOC, 1 REM).
	EvProbe
	// EvCoalesce: this lookup parked onto an in-flight miss for the same
	// address. A = waiters already parked.
	EvCoalesce
	// EvBypass: the miss could not reserve a W block (set fully waiting);
	// the lookup rides the pending waitlist without early recording.
	EvBypass
	// EvFabricSend: request sent toward the home LC. A = home LC,
	// B = attempt number (1 = first send).
	EvFabricSend
	// EvFabricRecv: reply received from the home LC. A = replying LC,
	// B = forward hops the request survived (see router.maxForwardHops).
	EvFabricRecv
	// EvFEExec: a forwarding-engine execution resolved this address.
	// A = execution time in nanoseconds, B = executing LC.
	EvFEExec
	// EvRetry: the fabric request deadline expired and the request was
	// re-sent. A = attempt that expired, B = next backoff in nanoseconds.
	EvRetry
	// EvDeadline: the retry budget ran out. A = attempts spent.
	EvDeadline
	// EvFallback: the verdict came from the router-wide full-table
	// fallback engine. A = arrival LC.
	EvFallback
	// EvRehome: the lookup was parked at a crashed LC and replayed at the
	// reborn slot. A = the dead LC.
	EvRehome
	// EvRedrive: a table swap re-drove this parked lookup against the new
	// partitioning. A = the LC re-driving.
	EvRedrive
	// EvFill: the result entered the arrival LC's cache and released the
	// waitlist. A = origin class filled (0 LOC, 1 REM), B = ServedBy code.
	EvFill
	// EvVerdict: the verdict was delivered. A = 1 when a route matched.
	EvVerdict
	// EvShed: overload control refused or abandoned this lookup. A = shed
	// reason code (router shed-reason numbering), B = the LC that shed.
	EvShed
	// EvBreaker: an open per-home-LC circuit breaker short-circuited the
	// fabric send; the verdict came from the full-table fallback engine
	// without ever touching the fabric. A = the home LC whose breaker was
	// open, B = breaker state observed (1 open, 2 half-open).
	EvBreaker
	// EvHedge: the fabric request outlived the hedge delay and the
	// waiters were answered from the full-table fallback engine while the
	// primary stayed tracked for duplicate suppression (see the router's
	// gray.go). A = the home LC being hedged against, B = attempt number
	// of the outstanding request.
	EvHedge
	// EvEject: the lookup's home LC was ejected (browned out) and the
	// verdict came from the fallback engine at dispatch time; the fabric
	// request was still sent to keep round-trip samples flowing. A = the
	// ejected home LC.
	EvEject
)

// NumEventKinds sizes per-kind count arrays.
const NumEventKinds = int(EvEject) + 1

var kindNames = [NumEventKinds]string{
	"arrival", "probe", "coalesce", "bypass", "fabric_send", "fabric_recv",
	"fe_exec", "retry", "deadline", "fallback", "rehome", "redrive",
	"fill", "verdict", "shed", "breaker_short_circuit", "hedge", "eject",
}

// String returns the stable wire name used by logs and the JSON export.
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Flag is a bit in a trace's summary bitmask. Flags are set by Record as
// a side effect of the matching event kind, so filtering "interesting"
// traces never needs to walk the event array.
type Flag uint16

// Trace flags.
const (
	// FlagSampled: the trace was head-sampled at arrival.
	FlagSampled Flag = 1 << iota
	// FlagLate: allocated mid-flight when the lookup turned interesting
	// (retry, deadline, re-home) without having been head-sampled. Late
	// traces miss the arrival-side events that preceded their creation.
	FlagLate
	// FlagCoalesced through FlagRedriven mirror the matching EventKind.
	FlagCoalesced
	FlagRetried
	FlagDeadline
	FlagFallback
	FlagRehomed
	FlagRedriven
	// FlagShed and FlagBreaker mirror EvShed and EvBreaker (overload
	// control; see the router's overload.go).
	FlagShed
	FlagBreaker
	// FlagHedged and FlagEjected mirror EvHedge and EvEject (gray-failure
	// mitigation; see the router's gray.go).
	FlagHedged
	FlagEjected
)

// kindFlag maps an event kind to the flag Record sets for it.
var kindFlag = [NumEventKinds]Flag{
	EvCoalesce: FlagCoalesced,
	EvRetry:    FlagRetried,
	EvDeadline: FlagDeadline,
	EvFallback: FlagFallback,
	EvRehome:   FlagRehomed,
	EvRedrive:  FlagRedriven,
	EvShed:     FlagShed,
	EvBreaker:  FlagBreaker,
	EvHedge:    FlagHedged,
	EvEject:    FlagEjected,
}

var flagNames = []struct {
	f    Flag
	name string
}{
	{FlagSampled, "sampled"},
	{FlagLate, "late"},
	{FlagCoalesced, "coalesced"},
	{FlagRetried, "retried"},
	{FlagDeadline, "deadline"},
	{FlagFallback, "fallback"},
	{FlagRehomed, "rehomed"},
	{FlagRedriven, "redriven"},
	{FlagShed, "shed"},
	{FlagBreaker, "breaker"},
	{FlagHedged, "hedged"},
	{FlagEjected, "ejected"},
}

// Strings returns the set flag names in declaration order.
func (f Flag) Strings() []string {
	var out []string
	for _, fn := range flagNames {
		if f&fn.f != 0 {
			out = append(out, fn.name)
		}
	}
	return out
}

// Interesting reports whether the trace hit the always-capture criteria:
// retried, deadline-expired, fallback-served, re-homed, shed,
// breaker-short-circuited, hedged, or eject-served.
func (f Flag) Interesting() bool {
	return f&(FlagRetried|FlagDeadline|FlagFallback|FlagRehomed|FlagShed|FlagBreaker|FlagHedged|FlagEjected) != 0
}

// SpanEvent is one fixed-size lifecycle event. At is the offset from the
// trace's Start in nanoseconds; A and B are kind-specific arguments (see
// the EventKind constants).
type SpanEvent struct {
	Kind EventKind
	At   int64
	A, B int64
}

// MaxEvents bounds the per-trace event array. A worst-case lookup —
// probe, coalesce, several retries across a re-homing, fallback — fits;
// pathological retry storms overflow into Dropped while Counts stay
// exact.
const MaxEvents = 24

// LookupTrace is the flat, fixed-size record of one lookup. It is built
// by exactly one goroutine at a time (see the package comment) and
// becomes immutable once Finish publishes it.
type LookupTrace struct {
	// ID is the router-unique trace id (also the histogram exemplar key).
	ID uint64
	// Addr is the destination looked up; ArrivalLC the submitting LC.
	Addr      ip.Addr
	ArrivalLC int
	// Start anchors every event's At offset.
	Start time.Time
	// LatencyNS, ServedBy and OK are set by Finish.
	LatencyNS int64
	ServedBy  string
	OK        bool
	Flags     Flag
	// Counts holds exact per-kind event totals, maintained even when the
	// event array overflows — the reconciliation contract with the
	// router's retry/fallback/re-home counters depends on this.
	Counts [NumEventKinds]uint16
	// Dropped counts events lost to the MaxEvents cap.
	Dropped int
	// Events[:EventCount] are the recorded events in append order.
	EventCount int
	Events     [MaxEvents]SpanEvent
}

// Record appends an event. Nil receivers are no-ops, so call sites stay
// branchless beyond the pointer test the compiler inserts anyway.
func (t *LookupTrace) Record(k EventKind, a, b int64) {
	if t == nil {
		return
	}
	t.Counts[k]++
	t.Flags |= kindFlag[k]
	if t.EventCount >= MaxEvents {
		t.Dropped++
		return
	}
	t.Events[t.EventCount] = SpanEvent{Kind: k, At: time.Since(t.Start).Nanoseconds(), A: a, B: b}
	t.EventCount++
}

// EventSlice returns the recorded events.
func (t *LookupTrace) EventSlice() []SpanEvent { return t.Events[:t.EventCount] }

// CountKind returns the exact number of times kind k was recorded,
// including events dropped by the MaxEvents cap.
func (t *LookupTrace) CountKind(k EventKind) int { return int(t.Counts[k]) }
