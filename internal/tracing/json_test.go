package tracing

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenTraces builds a fully deterministic pair of traces: timestamps
// pinned, events written directly into the array (Record would stamp
// wall-clock offsets).
func goldenTraces() []LookupTrace {
	t0 := time.Date(2026, 8, 5, 12, 0, 0, 123456789, time.UTC)
	hit := LookupTrace{
		ID:        1,
		Addr:      0x0a010203, // 10.1.2.3
		ArrivalLC: 0,
		Start:     t0,
		LatencyNS: 1500,
		ServedBy:  "cache",
		OK:        true,
		Flags:     FlagSampled,
	}
	for _, e := range []SpanEvent{
		{Kind: EvArrival, At: 0, A: 0},
		{Kind: EvProbe, At: 400, A: 1, B: 0},
		{Kind: EvVerdict, At: 1400, A: 1},
	} {
		hit.Events[hit.EventCount] = e
		hit.EventCount++
		hit.Counts[e.Kind]++
	}
	miss := LookupTrace{
		ID:        2,
		Addr:      0xc0a80001, // 192.168.0.1
		ArrivalLC: 3,
		Start:     t0.Add(2 * time.Millisecond),
		LatencyNS: 84000,
		ServedBy:  "remote",
		OK:        true,
		Flags:     FlagSampled | FlagRetried,
		Dropped:   1,
	}
	for _, e := range []SpanEvent{
		{Kind: EvArrival, At: 0, A: 3},
		{Kind: EvProbe, At: 300, A: 0, B: 0},
		{Kind: EvFabricSend, At: 900, A: 1, B: 1},
		{Kind: EvRetry, At: 50000, A: 1, B: 100000},
		{Kind: EvFabricSend, At: 50400, A: 1, B: 2},
		{Kind: EvFabricRecv, At: 80000, A: 1, B: 0},
		{Kind: EvFEExec, At: 80100, A: 61000, B: 1},
		{Kind: EvFill, At: 82000, A: 1, B: 3},
		{Kind: EvVerdict, At: 83500, A: 1},
	} {
		miss.Events[miss.EventCount] = e
		miss.EventCount++
		miss.Counts[e.Kind]++
	}
	return []LookupTrace{hit, miss}
}

// TestWriteJSONGolden pins the /debug/spal/traces wire format: field
// order, the zero-padded hex trace ids, RFC 3339 nanosecond timestamps,
// and the *_ns duration units.
func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, goldenTraces()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON encoding drifted from %s\ngot:\n%s\nwant:\n%s", path, buf.Bytes(), want)
	}
}
