package tracing

import (
	"context"
	"log/slog"
	"math"
	"sync/atomic"
	"time"

	"spal/internal/ip"
)

// Config parameterizes a Recorder.
type Config struct {
	// SampleRate is the head-sampling probability in [0, 1]: the fraction
	// of lookups that get a trace allocated at arrival. 0 disables head
	// sampling (interesting lookups are still captured late); >= 1 traces
	// everything.
	SampleRate float64
	// JournalSize bounds the completed-trace ring; <= 0 selects the
	// default (1024). Sizing it above the expected lookup volume of a
	// debugging window makes Snapshot lossless for that window.
	JournalSize int
	// Logger, when non-nil, receives one structured record per completed
	// trace.
	Logger *slog.Logger
}

const defaultJournalSize = 1024

// Recorder owns trace-id allocation, head sampling, the completed-trace
// journal, and the structured-log sink. All methods are safe for
// concurrent use from every LC goroutine; a nil *Recorder is a valid
// receiver that records nothing (the tracing-disabled fast path).
type Recorder struct {
	threshold uint64 // sampling cut on a splitmix64 hash; 0 = head sampling off
	seq       atomic.Uint64
	ids       atomic.Uint64
	logger    *slog.Logger
	journal   journal
}

// New builds a Recorder from cfg.
func New(cfg Config) *Recorder {
	r := &Recorder{logger: cfg.Logger}
	switch {
	case cfg.SampleRate >= 1:
		r.threshold = math.MaxUint64
	case cfg.SampleRate <= 0:
		r.threshold = 0
	default:
		r.threshold = uint64(cfg.SampleRate * float64(math.MaxUint64))
	}
	size := cfg.JournalSize
	if size <= 0 {
		size = defaultJournalSize
	}
	r.journal.slots = make([]atomic.Pointer[LookupTrace], size)
	return r
}

// splitmix64 is the finalizer of the splitmix64 generator: a cheap
// counter-keyed hash whose output is uniform over uint64, matching the
// router's fault injector so sampled runs stay deterministic per seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Sample decides head sampling for one arriving lookup, returning a new
// trace or nil. The decision is one atomic increment plus one hash — no
// allocation on the unsampled path.
func (r *Recorder) Sample(lc int, addr ip.Addr, start time.Time) *LookupTrace {
	if r == nil || r.threshold == 0 {
		return nil
	}
	if r.threshold != math.MaxUint64 && splitmix64(r.seq.Add(1)) > r.threshold {
		return nil
	}
	return &LookupTrace{
		ID:        r.ids.Add(1),
		Addr:      addr,
		ArrivalLC: lc,
		Start:     start,
		Flags:     FlagSampled,
	}
}

// Late allocates a trace mid-flight for a lookup that just turned
// interesting (first retry, deadline expiry, re-homing) without having
// been head-sampled. It runs off the hot path by construction — only
// deadline and lifecycle machinery call it.
func (r *Recorder) Late(lc int, addr ip.Addr) *LookupTrace {
	if r == nil {
		return nil
	}
	return &LookupTrace{
		ID:        r.ids.Add(1),
		Addr:      addr,
		ArrivalLC: lc,
		Start:     time.Now(),
		Flags:     FlagLate,
	}
}

// Finish seals a trace — verdict, latency, the closing EvVerdict event —
// publishes it to the journal and emits the structured log record. The
// trace must not be touched after Finish; Snapshot readers copy it
// concurrently.
func (r *Recorder) Finish(t *LookupTrace, servedBy string, ok bool) {
	if r == nil || t == nil {
		return
	}
	okA := int64(0)
	if ok {
		okA = 1
	}
	t.Record(EvVerdict, okA, 0)
	t.LatencyNS = time.Since(t.Start).Nanoseconds()
	t.ServedBy = servedBy
	t.OK = ok
	r.journal.put(t)
	if r.logger != nil {
		r.logger.LogAttrs(context.Background(), slog.LevelInfo, "lookup trace",
			slog.Uint64("trace_id", t.ID),
			slog.String("addr", ip.FormatAddr(t.Addr)),
			slog.Int("arrival_lc", t.ArrivalLC),
			slog.String("served_by", servedBy),
			slog.Bool("ok", ok),
			slog.Int64("latency_ns", t.LatencyNS),
			slog.Int("events", t.EventCount),
			slog.Int("dropped_events", t.Dropped),
			slog.Any("flags", t.Flags.Strings()),
		)
	}
}

// Snapshot copies the journal's completed traces, oldest first. The copy
// is near-consistent: a writer lapping the ring mid-read can surface a
// newer trace out of order, never a torn one (traces are immutable after
// publication).
func (r *Recorder) Snapshot() []LookupTrace {
	if r == nil {
		return nil
	}
	return r.journal.snapshot()
}

// journal is a bounded lock-free ring of completed traces: writers claim
// slots with one atomic add and publish with one atomic store.
type journal struct {
	slots []atomic.Pointer[LookupTrace]
	next  atomic.Uint64
}

func (j *journal) put(t *LookupTrace) {
	idx := j.next.Add(1) - 1
	j.slots[idx%uint64(len(j.slots))].Store(t)
}

func (j *journal) snapshot() []LookupTrace {
	n := j.next.Load()
	size := uint64(len(j.slots))
	start := uint64(0)
	if n > size {
		start = n - size
	}
	out := make([]LookupTrace, 0, n-start)
	for i := start; i < n; i++ {
		if p := j.slots[i%size].Load(); p != nil {
			out = append(out, *p)
		}
	}
	return out
}
