package tracing

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRecordNilReceiver(t *testing.T) {
	var tr *LookupTrace
	tr.Record(EvArrival, 0, 0) // must not panic
}

func TestRecordCountsSurviveOverflow(t *testing.T) {
	tr := &LookupTrace{Start: time.Now()}
	for i := 0; i < MaxEvents+10; i++ {
		tr.Record(EvRetry, int64(i), 0)
	}
	if tr.EventCount != MaxEvents {
		t.Errorf("EventCount = %d, want %d", tr.EventCount, MaxEvents)
	}
	if tr.Dropped != 10 {
		t.Errorf("Dropped = %d, want 10", tr.Dropped)
	}
	if got := tr.CountKind(EvRetry); got != MaxEvents+10 {
		t.Errorf("CountKind(EvRetry) = %d, want %d", got, MaxEvents+10)
	}
	if tr.Flags&FlagRetried == 0 {
		t.Error("FlagRetried not set by Record(EvRetry)")
	}
}

func TestFlagsFromKinds(t *testing.T) {
	tr := &LookupTrace{Start: time.Now()}
	tr.Record(EvProbe, 0, 0)
	if tr.Flags != 0 {
		t.Errorf("EvProbe set flags %v, want none", tr.Flags.Strings())
	}
	if tr.Flags.Interesting() {
		t.Error("probe-only trace reported interesting")
	}
	tr.Record(EvRehome, 2, 0)
	if tr.Flags&FlagRehomed == 0 || !tr.Flags.Interesting() {
		t.Errorf("EvRehome: flags %v, interesting=%v", tr.Flags.Strings(), tr.Flags.Interesting())
	}
}

func TestFlagStrings(t *testing.T) {
	f := FlagSampled | FlagRetried | FlagFallback
	got := strings.Join(f.Strings(), ",")
	if got != "sampled,retried,fallback" {
		t.Errorf("Strings = %q", got)
	}
}

func TestEventKindNames(t *testing.T) {
	for k := EventKind(0); int(k) < NumEventKinds; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "EventKind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if s := EventKind(200).String(); s != "EventKind(200)" {
		t.Errorf("out-of-range kind = %q", s)
	}
}

func TestSampleRateZeroAndNil(t *testing.T) {
	var nilRec *Recorder
	if tr := nilRec.Sample(0, 1, time.Now()); tr != nil {
		t.Error("nil recorder sampled")
	}
	if got := nilRec.Snapshot(); got != nil {
		t.Errorf("nil recorder snapshot = %v", got)
	}
	nilRec.Finish(nil, "cache", true) // must not panic

	rec := New(Config{SampleRate: 0})
	for i := 0; i < 1000; i++ {
		if tr := rec.Sample(0, 1, time.Now()); tr != nil {
			t.Fatal("rate-0 recorder head-sampled a lookup")
		}
	}
	// Late capture still works at rate 0.
	if tr := rec.Late(3, 42); tr == nil || tr.Flags&FlagLate == 0 {
		t.Error("Late capture broken at rate 0")
	}
}

func TestSampleRateOne(t *testing.T) {
	rec := New(Config{SampleRate: 1})
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		tr := rec.Sample(2, 7, time.Now())
		if tr == nil {
			t.Fatal("rate-1 recorder skipped a lookup")
		}
		if tr.Flags&FlagSampled == 0 {
			t.Fatal("sampled trace missing FlagSampled")
		}
		if seen[tr.ID] {
			t.Fatalf("duplicate trace id %d", tr.ID)
		}
		seen[tr.ID] = true
	}
}

func TestSampleRateFractionBounds(t *testing.T) {
	rec := New(Config{SampleRate: 0.5})
	n, hits := 20000, 0
	for i := 0; i < n; i++ {
		if rec.Sample(0, 1, time.Now()) != nil {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.5) > 0.05 {
		t.Errorf("sampled fraction %.3f, want ~0.5", frac)
	}
}

func TestJournalWrap(t *testing.T) {
	rec := New(Config{SampleRate: 1, JournalSize: 8})
	for i := 0; i < 20; i++ {
		tr := rec.Sample(0, 1, time.Now())
		rec.Finish(tr, "cache", true)
	}
	got := rec.Snapshot()
	if len(got) != 8 {
		t.Fatalf("snapshot length %d, want 8 (journal size)", len(got))
	}
	// Oldest-first: the surviving traces are ids 13..20.
	for i, tr := range got {
		if want := uint64(13 + i); tr.ID != want {
			t.Errorf("snapshot[%d].ID = %d, want %d", i, tr.ID, want)
		}
	}
}

func TestFinishSealsAndLogs(t *testing.T) {
	var buf bytes.Buffer
	rec := New(Config{SampleRate: 1, Logger: slog.New(slog.NewJSONHandler(&buf, nil))})
	tr := rec.Sample(1, 0x0a000001, time.Now())
	tr.Record(EvProbe, 0, 0)
	rec.Finish(tr, "fe", true)

	if tr.ServedBy != "fe" || !tr.OK || tr.LatencyNS <= 0 {
		t.Errorf("Finish left served_by=%q ok=%v latency=%d", tr.ServedBy, tr.OK, tr.LatencyNS)
	}
	if tr.CountKind(EvVerdict) != 1 {
		t.Error("Finish did not record EvVerdict")
	}
	var rec2 map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec2); err != nil {
		t.Fatalf("log line not JSON: %v (%q)", err, buf.String())
	}
	for _, key := range []string{"trace_id", "addr", "arrival_lc", "served_by", "ok", "latency_ns", "events", "flags"} {
		if _, present := rec2[key]; !present {
			t.Errorf("log record missing %q: %s", key, buf.String())
		}
	}
	if rec2["addr"] != "10.0.0.1" {
		t.Errorf("log addr = %v, want 10.0.0.1", rec2["addr"])
	}

	snap := rec.Snapshot()
	if len(snap) != 1 || snap[0].ID != tr.ID {
		t.Errorf("journal snapshot %v, want the finished trace", snap)
	}
}

func TestHandlerFilters(t *testing.T) {
	mk := func(id uint64, servedBy string, latency int64, flags Flag) LookupTrace {
		return LookupTrace{ID: id, ServedBy: servedBy, LatencyNS: latency, Flags: flags, Start: time.Unix(0, 0)}
	}
	traces := []LookupTrace{
		mk(1, "cache", 100, FlagSampled),
		mk(2, "remote", 5000, FlagSampled|FlagRetried),
		mk(3, "fallback", 9000, FlagLate|FlagFallback),
		mk(4, "cache", 200, FlagSampled),
	}
	h := Handler(func() []LookupTrace { return traces })

	get := func(url string) (int, jsonDoc) {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
		var doc jsonDoc
		if rr.Code == 200 {
			if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
				t.Fatalf("%s: bad JSON: %v", url, err)
			}
		}
		return rr.Code, doc
	}

	if code, doc := get("/debug/spal/traces"); code != 200 || doc.Count != 4 {
		t.Errorf("unfiltered: code=%d count=%d", code, doc.Count)
	}
	if _, doc := get("/debug/spal/traces?served_by=cache"); doc.Count != 2 {
		t.Errorf("served_by=cache count=%d, want 2", doc.Count)
	}
	if _, doc := get("/debug/spal/traces?min_latency_ns=1000"); doc.Count != 2 {
		t.Errorf("min_latency_ns=1000 count=%d, want 2", doc.Count)
	}
	if _, doc := get("/debug/spal/traces?interesting=1"); doc.Count != 2 {
		t.Errorf("interesting count=%d, want 2", doc.Count)
	}
	if _, doc := get("/debug/spal/traces?limit=1"); doc.Count != 1 || doc.Traces[0].TraceID != "0000000000000004" {
		t.Errorf("limit=1 kept %+v, want newest (id 4)", doc.Traces)
	}
	if code, _ := get("/debug/spal/traces?min_latency_ns=zzz"); code != 400 {
		t.Errorf("bad min_latency_ns: code=%d, want 400", code)
	}
	if code, _ := get("/debug/spal/traces?limit=-1"); code != 400 {
		t.Errorf("bad limit: code=%d, want 400", code)
	}
}
