package router

import (
	"context"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
	"time"

	"spal/internal/cache"
	"spal/internal/metrics"
	"spal/internal/stats"
)

// TestMetricsReconcileWithLCStats is the acceptance check of the
// observability redesign: the immutable Metrics snapshot (and its Delta)
// must agree exactly with the legacy live LCStats counters.
func TestMetricsReconcileWithLCStats(t *testing.T) {
	r, tbl := newTestRouter(t, 4, true)
	rng := stats.NewRNG(41)
	for i := 0; i < 300; i++ {
		if _, err := r.Lookup(i%4, tbl.RandomMatchedAddr(rng)); err != nil {
			t.Fatal(err)
		}
	}
	before := r.Metrics()
	for i := 0; i < 500; i++ {
		if _, err := r.Lookup(i%4, tbl.RandomMatchedAddr(rng)); err != nil {
			t.Fatal(err)
		}
	}
	after := r.Metrics()
	delta := after.Delta(before)

	legacy := r.Stats()
	for lc := 0; lc < 4; lc++ {
		lbl := metrics.L("lc", strconv.Itoa(lc))
		checks := []struct {
			name string
			want int64
		}{
			{MetricLookups, legacy[lc].Lookups.Load()},
			{MetricCacheHits, legacy[lc].CacheHits.Load()},
			{MetricFEExecs, legacy[lc].FEExecs.Load()},
			{MetricFabricRequests, legacy[lc].RequestsSent.Load()},
			{MetricFabricReplies, legacy[lc].RepliesSent.Load()},
			{MetricCoalesced, legacy[lc].Coalesced.Load()},
			{MetricStaleReplies, legacy[lc].StaleReplies.Load()},
			{MetricRetries, legacy[lc].Retries.Load()},
			{MetricFallbacks, legacy[lc].Fallbacks.Load()},
			{MetricDeadlineExpired, legacy[lc].DeadlineExpired.Load()},
			{MetricForwarded, legacy[lc].ForwardedRequests.Load()},
		}
		for _, c := range checks {
			got, ok := after.Value(c.name, lbl)
			if !ok || int64(got) != c.want {
				t.Errorf("LC %d %s = %v (ok=%v), legacy %d", lc, c.name, got, ok, c.want)
			}
		}
	}
	if got := delta.Sum(MetricLookups); got != 500 {
		t.Errorf("delta lookups = %v, want 500", got)
	}
	if after.Sum(MetricLookups) != 800 {
		t.Errorf("total lookups = %v, want 800", after.Sum(MetricLookups))
	}
	// Latency histograms must account for every lookup exactly once.
	var latCount uint64
	for lc := 0; lc < 4; lc++ {
		lbl := metrics.L("lc", strconv.Itoa(lc))
		for _, class := range []string{"cache", "fe", "remote"} {
			h, ok := after.HistValue(MetricLatency, lbl, metrics.L("served_by", class))
			if !ok {
				t.Fatalf("missing latency histogram lc=%d served_by=%s", lc, class)
			}
			latCount += h.Count
		}
	}
	if latCount != 800 {
		t.Errorf("latency samples = %d, want 800 (one per lookup)", latCount)
	}
}

func TestMetricsIncludeCacheOccupancy(t *testing.T) {
	r, tbl := newTestRouter(t, 2, true)
	rng := stats.NewRNG(43)
	for i := 0; i < 400; i++ {
		if _, err := r.Lookup(i%2, tbl.RandomMatchedAddr(rng)); err != nil {
			t.Fatal(err)
		}
	}
	s := r.Metrics()
	var occ float64
	for _, origin := range []string{"loc", "rem", "waiting"} {
		for lc := 0; lc < 2; lc++ {
			v, ok := s.Value(cache.MetricOccupancy, metrics.L("lc", strconv.Itoa(lc)), metrics.L("origin", origin))
			if !ok {
				t.Fatalf("missing occupancy lc=%d origin=%s", lc, origin)
			}
			occ += v
		}
	}
	if occ == 0 {
		t.Error("no cache occupancy after 400 lookups")
	}
	if probes := s.Sum(cache.MetricProbes); probes == 0 {
		t.Error("no cache probes recorded")
	}
	if _, ok := s.Value(MetricHitRatio); !ok {
		t.Error("missing router-wide hit ratio")
	}
	// The snapshot must render to valid non-empty Prometheus text.
	text := s.PrometheusText()
	if !strings.Contains(text, "# TYPE "+MetricLatency+" histogram") {
		t.Error("Prometheus text missing latency histogram family")
	}
	if !strings.Contains(text, cache.MetricOccupancy) {
		t.Error("Prometheus text missing cache occupancy")
	}
}

func TestMetricsAfterStop(t *testing.T) {
	r, tbl := newTestRouter(t, 2, true)
	rng := stats.NewRNG(47)
	for i := 0; i < 50; i++ {
		if _, err := r.Lookup(i%2, tbl.RandomMatchedAddr(rng)); err != nil {
			t.Fatal(err)
		}
	}
	r.Stop()
	done := make(chan *metrics.Snapshot, 1)
	go func() { done <- r.Metrics() }()
	select {
	case s := <-done:
		if s.Sum(MetricLookups) != 50 {
			t.Errorf("post-stop lookups = %v, want 50", s.Sum(MetricLookups))
		}
		// Cache internals are unreachable once LC goroutines exit; the
		// snapshot simply omits them rather than blocking.
		if _, ok := s.Value(cache.MetricProbes, metrics.L("lc", "0")); ok {
			t.Log("note: cache counters present post-stop (send won a race); acceptable")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Metrics() hung on a stopped router")
	}
}

func TestLookupCtx(t *testing.T) {
	r, tbl := newTestRouter(t, 2, true)
	rng := stats.NewRNG(53)
	a := tbl.RandomMatchedAddr(rng)

	v, err := r.LookupCtx(context.Background(), 0, a)
	if err != nil || !v.OK {
		t.Fatalf("LookupCtx = %+v, %v", v, err)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.LookupCtx(cancelled, 0, a); err != context.Canceled {
		t.Errorf("cancelled ctx err = %v, want context.Canceled", err)
	}

	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := r.LookupCtx(expired, 0, a); err != context.DeadlineExceeded {
		t.Errorf("expired ctx err = %v, want context.DeadlineExceeded", err)
	}

	if _, err := r.LookupCtx(context.Background(), 99, a); err == nil {
		t.Error("invalid LC must fail")
	}

	r.Stop()
	if _, err := r.LookupCtx(context.Background(), 0, a); err != ErrStopped {
		t.Errorf("post-stop err = %v, want ErrStopped", err)
	}
}

func TestServedByStringAndText(t *testing.T) {
	cases := []struct {
		s    ServedBy
		want string
	}{
		{ServedByUnknown, "unknown"},
		{ServedByCache, "cache"},
		{ServedByFE, "fe"},
		{ServedByRemote, "remote"},
		{ServedByFallback, "fallback"},
	}
	for _, c := range cases {
		if c.s.String() != c.want {
			t.Errorf("%d.String() = %q", c.s, c.s.String())
		}
		b, err := c.s.MarshalText()
		if err != nil || string(b) != c.want {
			t.Errorf("MarshalText(%v) = %q, %v", c.s, b, err)
		}
		var back ServedBy
		if err := back.UnmarshalText(b); err != nil || back != c.s {
			t.Errorf("UnmarshalText(%q) = %v, %v", b, back, err)
		}
	}
	var s ServedBy
	if err := s.UnmarshalText([]byte("bogus")); err == nil {
		t.Error("bogus name must fail")
	}
	if got := ServedBy(200).String(); got != "ServedBy(200)" {
		t.Errorf("out-of-range String = %q", got)
	}
}

func TestWaitlistDepthGauge(t *testing.T) {
	r, tbl := newTestRouter(t, 2, true)
	rng := stats.NewRNG(59)
	for i := 0; i < 100; i++ {
		if _, err := r.Lookup(i%2, tbl.RandomMatchedAddr(rng)); err != nil {
			t.Fatal(err)
		}
	}
	// Quiesced router: nothing may remain parked.
	s := r.Metrics()
	for lc := 0; lc < 2; lc++ {
		if v, ok := s.Value(MetricWaitlistDepth, metrics.L("lc", strconv.Itoa(lc))); !ok || v != 0 {
			t.Errorf("idle waitlist depth lc=%d = %v (ok=%v), want 0", lc, v, ok)
		}
	}
}

func TestVerdictJSONStable(t *testing.T) {
	// The enum migration must not change the JSON wire form of Verdict.
	v := Verdict{Addr: 0x0a010203, NextHop: 7, OK: true, ServedBy: ServedByCache}
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"ServedBy":"cache"`) {
		t.Errorf("JSON = %s, want ServedBy encoded as \"cache\"", b)
	}
}
