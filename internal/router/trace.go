// Router-side tracing glue: construction options, the Traces snapshot
// API, and the Healthy predicate the observability endpoint serves.
//
// Ownership protocol (the reason tracing adds no locks): a LookupTrace
// is created at the arrival LC and only ever appended to by whichever
// goroutine currently owns the lookup's state — the LC goroutine holding
// the message or waitlist, or the health monitor between a crash and the
// slot's rebirth (the same happens-before edge that makes waitlist
// adoption race-free, see lifecycle.go). Home-LC detail returns inside
// the reply message as plain integers (hops, FE nanoseconds), never as a
// shared pointer.
//
// Per-address events (fabric send, retry, deadline, fill) are recorded
// on the waitlist's trace — the earliest traced lookup parked on the
// address; lookups that coalesce onto it later keep their own traces
// with just the arrival/probe/coalesce/verdict story.
package router

import (
	"log/slog"
	"time"

	"spal/internal/ip"
	"spal/internal/tracing"
)

// WithTraceSampling enables per-lookup tracing with head-based
// probabilistic sampling: rate is the fraction of lookups traced from
// arrival (0 ≤ rate ≤ 1). Interesting lookups — retried, re-homed,
// fallback-served, deadline-expired — are always captured, even at rate
// 0, via late allocation off the hot path. With tracing enabled but a
// lookup unsampled, the hot path pays a nil check and one atomic
// counter increment; with tracing disabled entirely (no trace option
// given), it pays the nil check alone.
func WithTraceSampling(rate float64) Option {
	return func(c *Config) {
		c.TracingEnabled = true
		c.TraceSampleRate = rate
	}
}

// WithLogger installs a structured-log sink for completed traces: one
// slog record per finished sampled trace (fields: trace_id, addr,
// arrival_lc, served_by, ok, latency_ns, events, flags). Implies
// tracing.
func WithLogger(l *slog.Logger) Option {
	return func(c *Config) {
		c.TracingEnabled = true
		c.TraceLogger = l
	}
}

// WithTraceJournal sizes the bounded ring of completed traces behind
// Router.Traces (default 1024). Implies tracing.
func WithTraceJournal(size int) Option {
	return func(c *Config) {
		c.TracingEnabled = true
		c.TraceJournal = size
	}
}

// Traces returns a copy of the completed-trace journal, oldest first.
// Nil when tracing is disabled. Safe to call concurrently with traffic;
// see tracing.Recorder.Snapshot for the consistency contract.
func (r *Router) Traces() []tracing.LookupTrace {
	return r.tracer.Snapshot()
}

// Healthy reports whether every line card currently owns its share of
// the partition with trustworthy state: true iff no LC is Down,
// Draining, or Quarantined (Suspect still serves — fabric loss can fake
// it; a Quarantined LC also serves, but its forwarding state failed an
// integrity check and is awaiting rebuild, so the router is degraded)
// and the router is not stopped. This is the predicate behind /healthz.
func (r *Router) Healthy() bool {
	if r.stopped.Load() {
		return false
	}
	for _, l := range r.life {
		if st := l.state.Load(); st == LCDown || st == LCDraining || st == LCQuarantined {
			return false
		}
	}
	return true
}

// finishTrace seals a trace with its verdict and publishes it.
func (r *Router) finishTrace(t *tracing.LookupTrace, servedBy ServedBy, ok bool) {
	if t != nil {
		r.tracer.Finish(t, servedBy.String(), ok)
	}
}

// traceID returns a trace's id, or 0 for nil (the no-exemplar marker).
func traceID(t *tracing.LookupTrace) uint64 {
	if t == nil {
		return 0
	}
	return t.ID
}

// lateTrace captures an untraced lookup that just turned interesting:
// nil unless tracing is enabled. Runs only on cold paths (deadline
// sweep, re-homing).
func (r *Router) lateTrace(lc int, addr ip.Addr) *tracing.LookupTrace {
	if r.tracer == nil {
		return nil
	}
	return r.tracer.Late(lc, addr)
}

// feTimer starts an FE-execution timer when tracing is on; zero
// otherwise, which elapsedNS maps to 0 so untraced runs report no
// timing.
func (r *Router) feTimer() time.Time {
	if r.tracer == nil {
		return time.Time{}
	}
	return time.Now()
}

// elapsedNS converts a feTimer start into nanoseconds (minimum 1 so a
// measured execution is distinguishable from "not measured").
func elapsedNS(t0 time.Time) int64 {
	if t0.IsZero() {
		return 0
	}
	d := time.Since(t0).Nanoseconds()
	if d < 1 {
		d = 1
	}
	return d
}
