package router

import (
	"sync"
	"testing"

	"spal/internal/cache"
	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/lpm/lulea"
	"spal/internal/rtable"
	"spal/internal/stats"
)

func newTestRouter(t *testing.T, numLCs int, cacheOn bool) (*Router, *rtable.Table) {
	t.Helper()
	tbl := rtable.Small(2000, 7)
	opts := []Option{WithLCs(numLCs)}
	if cacheOn {
		opts = append(opts, WithCache(cache.DefaultConfig()))
	}
	r, err := New(tbl, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)
	return r, tbl
}

func TestLookupMatchesOracle(t *testing.T) {
	r, tbl := newTestRouter(t, 4, true)
	oracle := lpm.NewReference(tbl)
	rng := stats.NewRNG(3)
	for i := 0; i < 2000; i++ {
		var a ip.Addr
		if i%2 == 0 {
			a = tbl.RandomMatchedAddr(rng)
		} else {
			a = rng.Uint32()
		}
		lc := rng.Intn(4)
		v, err := r.Lookup(lc, a)
		if err != nil {
			t.Fatal(err)
		}
		wantNH, _, wantOK := oracle.Lookup(a)
		if v.OK != wantOK || (wantOK && v.NextHop != wantNH) {
			t.Fatalf("Lookup(%d, %s) = (%d,%v), want (%d,%v)",
				lc, ip.FormatAddr(a), v.NextHop, v.OK, wantNH, wantOK)
		}
	}
}

func TestConcurrentLookupsAllLCs(t *testing.T) {
	r, tbl := newTestRouter(t, 8, true)
	oracle := lpm.NewReference(tbl)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for lc := 0; lc < 8; lc++ {
		wg.Add(1)
		go func(lc int) {
			defer wg.Done()
			rng := stats.NewRNG(uint64(lc) + 11)
			for i := 0; i < 1500; i++ {
				a := tbl.RandomMatchedAddr(rng)
				v, err := r.Lookup(lc, a)
				if err != nil {
					errs <- err.Error()
					return
				}
				wantNH, _, _ := oracle.Lookup(a)
				if !v.OK || v.NextHop != wantNH {
					errs <- "wrong verdict for " + ip.FormatAddr(a)
					return
				}
			}
		}(lc)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestServedByClassification(t *testing.T) {
	r, tbl := newTestRouter(t, 4, true)
	rng := stats.NewRNG(5)
	a := tbl.RandomMatchedAddr(rng)
	home := r.HomeLC(a)
	remoteLC := (home + 1) % 4

	// First lookup at the home LC executes the FE.
	v, err := r.Lookup(home, a)
	if err != nil {
		t.Fatal(err)
	}
	if v.ServedBy != ServedByFE {
		t.Errorf("first home lookup ServedBy = %s, want fe", v.ServedBy)
	}
	// Second lookup at the home LC hits the LOC entry.
	v, _ = r.Lookup(home, a)
	if v.ServedBy != ServedByCache {
		t.Errorf("second home lookup ServedBy = %s, want cache", v.ServedBy)
	}
	// Remote lookup is answered by the home LC's cache via the fabric.
	v, _ = r.Lookup(remoteLC, a)
	if v.ServedBy != ServedByRemote {
		t.Errorf("remote lookup ServedBy = %s, want remote", v.ServedBy)
	}
	// And is now cached as REM locally.
	v, _ = r.Lookup(remoteLC, a)
	if v.ServedBy != ServedByCache {
		t.Errorf("repeat remote lookup ServedBy = %s, want cache", v.ServedBy)
	}
}

func TestCoalescingSingleFEExec(t *testing.T) {
	r, tbl := newTestRouter(t, 2, true)
	rng := stats.NewRNG(9)
	// Hammer one address from both LCs concurrently; the FE must run far
	// fewer times than the number of lookups.
	a := tbl.RandomMatchedAddr(rng)
	var wg sync.WaitGroup
	const n = 500
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(lc int) {
			defer wg.Done()
			if _, err := r.Lookup(lc, a); err != nil {
				t.Error(err)
			}
		}(i % 2)
	}
	wg.Wait()
	var fe int64
	for _, s := range r.Stats() {
		fe += s.FEExecs.Load()
	}
	if fe == 0 || fe > n/10 {
		t.Errorf("FE executions = %d for %d identical lookups, want heavy coalescing", fe, n)
	}
}

func TestNoCacheMode(t *testing.T) {
	r, tbl := newTestRouter(t, 4, false)
	oracle := lpm.NewReference(tbl)
	rng := stats.NewRNG(13)
	for i := 0; i < 500; i++ {
		a := tbl.RandomMatchedAddr(rng)
		v, err := r.Lookup(rng.Intn(4), a)
		if err != nil {
			t.Fatal(err)
		}
		wantNH, _, _ := oracle.Lookup(a)
		if !v.OK || v.NextHop != wantNH {
			t.Fatalf("no-cache wrong verdict for %s", ip.FormatAddr(a))
		}
		if v.ServedBy == ServedByCache {
			t.Fatal("cache hit with caches disabled")
		}
	}
}

func TestUpdateTableChangesResults(t *testing.T) {
	r, _ := newTestRouter(t, 4, true)
	// A fresh table with one known route.
	newTbl := rtable.New([]rtable.Route{
		{Prefix: ip.MustPrefix("10.0.0.0/8"), NextHop: 42},
	})
	if err := r.UpdateTable(newTbl); err != nil {
		t.Fatal(err)
	}
	v, err := r.Lookup(2, 0x0a010203)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK || v.NextHop != 42 {
		t.Fatalf("post-update verdict = %+v, want nh 42", v)
	}
	if v, _ = r.Lookup(1, 0x0b000001); v.OK {
		t.Fatal("address outside the new table must miss")
	}
}

func TestUpdateTableUnderLoad(t *testing.T) {
	r, tbl := newTestRouter(t, 4, true)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for lc := 0; lc < 4; lc++ {
		wg.Add(1)
		go func(lc int) {
			defer wg.Done()
			rng := stats.NewRNG(uint64(lc) * 7)
			for {
				select {
				case <-stop:
					return
				default:
				}
				a := tbl.RandomMatchedAddr(rng)
				if _, err := r.Lookup(lc, a); err != nil {
					return
				}
			}
		}(lc)
	}
	// Swap between the same logical table built twice and a variant.
	for i := 0; i < 5; i++ {
		if err := r.UpdateTable(tbl); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	// After the dust settles, results must match the (unchanged) table.
	oracle := lpm.NewReference(tbl)
	rng := stats.NewRNG(99)
	for i := 0; i < 300; i++ {
		a := tbl.RandomMatchedAddr(rng)
		v, err := r.Lookup(i%4, a)
		if err != nil {
			t.Fatal(err)
		}
		wantNH, _, _ := oracle.Lookup(a)
		if !v.OK || v.NextHop != wantNH {
			t.Fatalf("post-churn wrong verdict for %s", ip.FormatAddr(a))
		}
	}
}

func TestFlushCachesKeepsCorrectness(t *testing.T) {
	r, tbl := newTestRouter(t, 4, true)
	rng := stats.NewRNG(21)
	a := tbl.RandomMatchedAddr(rng)
	v1, _ := r.Lookup(0, a)
	r.FlushCaches()
	v2, err := r.Lookup(0, a)
	if err != nil {
		t.Fatal(err)
	}
	if v1.NextHop != v2.NextHop {
		t.Fatal("flush changed the lookup result")
	}
}

func TestStopAndErrStopped(t *testing.T) {
	r, _ := newTestRouter(t, 2, true)
	r.Stop()
	r.Stop() // idempotent
	if _, err := r.Lookup(0, 1); err != ErrStopped {
		t.Errorf("err = %v, want ErrStopped", err)
	}
	if err := r.UpdateTable(rtable.Small(10, 1)); err != ErrStopped {
		t.Errorf("UpdateTable err = %v, want ErrStopped", err)
	}
}

func TestInvalidConfigs(t *testing.T) {
	tbl := rtable.Small(10, 1)
	if _, err := New(tbl, WithLCs(0)); err == nil {
		t.Error("NumLCs 0 should fail")
	}
	if _, err := New(nil, WithLCs(2)); err == nil {
		t.Error("nil table should fail")
	}
	if _, err := New(rtable.New(nil), WithLCs(2)); err == nil {
		t.Error("empty table should fail")
	}
	if _, err := NewWithConfig(Config{NumLCs: 0, Table: tbl}); err == nil {
		t.Error("legacy constructor: NumLCs 0 should fail")
	}
}

func TestLookupInvalidLC(t *testing.T) {
	r, _ := newTestRouter(t, 2, true)
	if _, err := r.Lookup(5, 1); err == nil {
		t.Error("out-of-range LC should fail")
	}
	if _, err := r.Lookup(-1, 1); err == nil {
		t.Error("negative LC should fail")
	}
}

func TestPartitionBitsExposed(t *testing.T) {
	r, _ := newTestRouter(t, 4, true)
	bits := r.PartitionBits()
	if len(bits) != 2 {
		t.Errorf("bits = %v, want 2 for psi=4", bits)
	}
	if r.NumLCs() != 4 {
		t.Errorf("NumLCs = %d", r.NumLCs())
	}
}

func TestStatsAccumulate(t *testing.T) {
	r, tbl := newTestRouter(t, 4, true)
	rng := stats.NewRNG(31)
	hot := make([]ip.Addr, 20)
	for i := range hot {
		hot[i] = tbl.RandomMatchedAddr(rng)
	}
	for i := 0; i < 400; i++ {
		if _, err := r.Lookup(i%4, hot[rng.Intn(len(hot))]); err != nil {
			t.Fatal(err)
		}
	}
	var lookups, hits int64
	for _, s := range r.Stats() {
		lookups += s.Lookups.Load()
		hits += s.CacheHits.Load()
	}
	if lookups != 400 {
		t.Errorf("lookups = %d", lookups)
	}
	if hits == 0 {
		t.Error("expected some cache hits on a 2000-route pool with repeats")
	}
}

func TestLookupBatchOrderAndCorrectness(t *testing.T) {
	r, tbl := newTestRouter(t, 4, true)
	oracle := lpm.NewReference(tbl)
	rng := stats.NewRNG(17)
	addrs := make([]ip.Addr, 500)
	for i := range addrs {
		addrs[i] = tbl.RandomMatchedAddr(rng)
	}
	out, err := r.LookupBatch(2, addrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(addrs) {
		t.Fatalf("got %d verdicts", len(out))
	}
	for i, v := range out {
		if v.Addr != addrs[i] {
			t.Fatalf("verdict %d out of order: %v", i, v.Addr)
		}
		wantNH, _, _ := oracle.Lookup(addrs[i])
		if !v.OK || v.NextHop != wantNH {
			t.Fatalf("verdict %d wrong", i)
		}
	}
}

func TestLookupAsyncManyInFlight(t *testing.T) {
	r, tbl := newTestRouter(t, 2, true)
	rng := stats.NewRNG(19)
	var chans []<-chan Verdict
	for i := 0; i < 200; i++ {
		ch, err := r.LookupAsync(i%2, tbl.RandomMatchedAddr(rng))
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for _, ch := range chans {
		if v := <-ch; v.Addr == 0 && !v.OK && v.ServedBy == ServedByUnknown {
			t.Fatal("empty verdict")
		}
	}
}

func TestLookupAsyncInvalidLC(t *testing.T) {
	r, _ := newTestRouter(t, 2, true)
	if _, err := r.LookupAsync(7, 1); err == nil {
		t.Error("want error")
	}
}

// The router with a real (non-oracle) engine: integration of lulea tries
// behind the concurrent plane.
func TestRouterWithLuleaEngine(t *testing.T) {
	tbl := rtable.Small(3000, 61)
	r, err := New(tbl, WithLCs(4), WithEngine(lulea.NewEngine), WithDefaultCache())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	oracle := lpm.NewReference(tbl)
	rng := stats.NewRNG(7)
	for i := 0; i < 1000; i++ {
		a := tbl.RandomMatchedAddr(rng)
		v, err := r.Lookup(i%4, a)
		if err != nil {
			t.Fatal(err)
		}
		wantNH, _, _ := oracle.Lookup(a)
		if !v.OK || v.NextHop != wantNH {
			t.Fatalf("lulea-backed router wrong for %s", ip.FormatAddr(a))
		}
	}
}

func TestUpdateTableRejectsEmpty(t *testing.T) {
	r, _ := newTestRouter(t, 2, true)
	if err := r.UpdateTable(nil); err == nil {
		t.Error("nil table should fail")
	}
	if err := r.UpdateTable(rtable.New(nil)); err == nil {
		t.Error("empty table should fail")
	}
}
