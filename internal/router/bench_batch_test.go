// Batch data-plane benchmarks. CI's bench-guard job runs the LookupBatch
// benches with -benchmem and gates on the allocs/op column (must be 0);
// BENCH_6.json commits representative numbers, including the same-home
// burst where the coalesced plane's O(ψ) fabric messaging shows up as
// the headline speedup over per-address submission.
package router

import (
	"context"
	"testing"
	"time"

	"spal/internal/ip"
	"spal/internal/rtable"
	"spal/internal/stats"
)

const benchBatchLen = 64

func benchAddrs(b *testing.B, tbl *rtable.Table, seed uint64) []ip.Addr {
	b.Helper()
	rng := stats.NewRNG(seed)
	addrs := make([]ip.Addr, benchBatchLen)
	for i := range addrs {
		addrs[i] = tbl.RandomMatchedAddr(rng)
	}
	return addrs
}

func benchRouter(b *testing.B, tbl *rtable.Table, opts ...Option) *Router {
	b.Helper()
	base := []Option{WithRequestTimeout(time.Second)}
	r, err := New(tbl, append(base, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(r.Stop)
	return r
}

// BenchmarkLookupSingleCacheHit is the per-address baseline: one warmed
// cache-hit lookup per iteration (allocates its reply channel every time).
func BenchmarkLookupSingleCacheHit(b *testing.B) {
	tbl := rtable.Small(2000, 7)
	r := benchRouter(b, tbl, WithLCs(1), WithDefaultCache())
	addrs := benchAddrs(b, tbl, 3)
	if _, err := r.LookupBatch(0, addrs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Lookup(0, addrs[i%len(addrs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLookupBatchCacheHit: a 64-address batch served entirely from
// the warmed LR-cache. Must report 0 allocs/op (CI gates on it).
func BenchmarkLookupBatchCacheHit(b *testing.B) {
	tbl := rtable.Small(2000, 7)
	r := benchRouter(b, tbl, WithLCs(1), WithDefaultCache())
	addrs := benchAddrs(b, tbl, 3)
	out := make([]Verdict, len(addrs))
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := r.LookupBatchInto(ctx, 0, addrs, out); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.LookupBatchInto(ctx, 0, addrs, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLookupBatchCacheHitGray: the same warmed cache-hit batch with
// the gray-failure subsystem enabled — detection/hedging bookkeeping on
// the hit path must stay free: 0 allocs/op (CI gates on it alongside the
// plain cache-hit bench).
func BenchmarkLookupBatchCacheHitGray(b *testing.B) {
	tbl := rtable.Small(2000, 7)
	r := benchRouter(b, tbl, WithLCs(1), WithDefaultCache(), WithGray(DefaultGrayPolicy()))
	addrs := benchAddrs(b, tbl, 3)
	out := make([]Verdict, len(addrs))
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := r.LookupBatchInto(ctx, 0, addrs, out); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.LookupBatchInto(ctx, 0, addrs, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLookupBatchLocalHome: a 64-address batch resolved by the
// local home's batched FE sweep (no cache), per engine. Must report
// 0 allocs/op (CI gates on the flat case).
func BenchmarkLookupBatchLocalHome(b *testing.B) {
	tbl := rtable.Small(2000, 7)
	for _, engine := range []string{"reference", "lulea", "stride24", "flat"} {
		b.Run("engine="+engine, func(b *testing.B) {
			r := benchRouter(b, tbl, WithLCs(1), WithoutCache(), WithEngineName(engine))
			addrs := benchAddrs(b, tbl, 5)
			out := make([]Verdict, len(addrs))
			ctx := context.Background()
			for i := 0; i < 5; i++ {
				if err := r.LookupBatchInto(ctx, 0, addrs, out); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.LookupBatchInto(ctx, 0, addrs, out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// sameHomeBurst builds a burst of addresses all homed at LC 1 of a
// 2-LC router, submitted at LC 0: every one crosses the fabric, which
// is where coalescing (1 request + 1 reply per batch, vs 64 + 64)
// changes the message count asymptotically.
func sameHomeBurst(b *testing.B, r *Router, tbl *rtable.Table) []ip.Addr {
	b.Helper()
	rng := stats.NewRNG(11)
	addrs := make([]ip.Addr, 0, benchBatchLen)
	for len(addrs) < benchBatchLen {
		a := tbl.RandomMatchedAddr(rng)
		if r.HomeLC(a) == 1 {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

// BenchmarkLookupSingleSameHomeBurst: the burst as sequential
// per-address LookupCtx calls (the pre-batch API), each paying a full
// fabric round trip.
func BenchmarkLookupSingleSameHomeBurst(b *testing.B) {
	tbl := rtable.Small(2000, 7)
	r := benchRouter(b, tbl, WithLCs(2), WithoutCache())
	addrs := sameHomeBurst(b, r, tbl)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range addrs {
			if _, err := r.LookupCtx(ctx, 0, a); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkLookupBatchSameHomeBurst: the same burst as one coalesced
// batch — one fabric request and one reply regardless of burst size.
func BenchmarkLookupBatchSameHomeBurst(b *testing.B) {
	tbl := rtable.Small(2000, 7)
	r := benchRouter(b, tbl, WithLCs(2), WithoutCache())
	addrs := sameHomeBurst(b, r, tbl)
	out := make([]Verdict, len(addrs))
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := r.LookupBatchInto(ctx, 0, addrs, out); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.LookupBatchInto(ctx, 0, addrs, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLookupBatchSinglesSameHomeBurst: the same burst through the
// legacy per-address batch plane (BatchCoalescing off) — pipelined but
// one fabric message per address.
func BenchmarkLookupBatchSinglesSameHomeBurst(b *testing.B) {
	tbl := rtable.Small(2000, 7)
	r := benchRouter(b, tbl, WithLCs(2), WithoutCache(), WithBatchCoalescing(false))
	addrs := sameHomeBurst(b, r, tbl)
	out := make([]Verdict, len(addrs))
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := r.LookupBatchInto(ctx, 0, addrs, out); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.LookupBatchInto(ctx, 0, addrs, out); err != nil {
			b.Fatal(err)
		}
	}
}
