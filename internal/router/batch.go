// The batched data plane: one pooled descriptor per LookupBatch call
// instead of N messages and N reply channels, and one coalesced fabric
// message per destination home LC per batch instead of one per address.
//
// Submission: LookupBatchInto copies the addresses into a batchDesc
// drawn from a sync.Pool and sends a single mBatch message at the
// arrival LC. The descriptor carries a verdict array indexed by
// submission position and an atomic countdown of unresolved slots;
// whoever resolves the last slot signals the (buffered) done channel.
// Steady state this path allocates nothing: the descriptor, its arrays,
// the LC's scratch space and the fabric queue's ring all recycle.
//
// Inside the arrival LC, handleBatch classifies every address in one
// pass: cache hits resolve inline; addresses with an in-flight miss
// coalesce onto the existing waitlist as batch waiters (a localWaiter
// whose bd/slot point back into the descriptor); same-home misses are
// collected and resolved with one batched engine sweep after the scan —
// no waitlist, no RecordMiss, no allocation; remote misses park exactly
// like single lookups (same deadline/retry/fallback/re-home machinery)
// but their fabric requests accumulate into one fabricBatch per home LC,
// sent as a single mBatchRequest when the scan ends. That turns the
// fabric cost of a ψ-way scattered batch from O(addresses) messages into
// O(ψ), which is the tentpole win: the per-message constant (channel
// send, select wakeup, injector call) is paid once per home instead of
// once per address.
//
// Cancellation: the old batch path leaked one buffered channel per
// outstanding address when the caller's context fired. Here the caller
// flips the descriptor's state to abandoned and walks away; the last
// in-flight sub-lookup to land observes the state and returns the
// descriptor to the pool itself (Router.batchRecycled counts these).
package router

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"spal/internal/cache"
	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/rtable"
	"spal/internal/tracing"
)

// batchDesc lifecycle states.
const (
	bdRunning   int32 = iota
	bdDone            // all slots resolved; done was signalled
	bdAbandoned       // caller left (ctx/quit); last resolver recycles
)

// batchDesc is one in-flight LookupBatch call: the submitted addresses,
// the positional verdict array, and the synchronization that hands the
// finished batch (or the abandoned descriptor) to exactly one owner.
type batchDesc struct {
	addrs   []ip.Addr
	out     []Verdict
	pending atomic.Int32 // unresolved slots
	state   atomic.Int32 // bdRunning / bdDone / bdAbandoned
	done    chan struct{}
	start   time.Time // submission time, shared by every slot's latency
}

var batchPool = sync.Pool{New: func() any { return &batchDesc{done: make(chan struct{}, 1)} }}

// getBatchDesc draws a descriptor and loads it. The addresses are copied
// (the caller may reuse its slice immediately); out is sized but not
// cleared — every slot is written exactly once before it is read.
func getBatchDesc(addrs []ip.Addr) *batchDesc {
	bd := batchPool.Get().(*batchDesc)
	bd.addrs = append(bd.addrs[:0], addrs...)
	if cap(bd.out) < len(addrs) {
		bd.out = make([]Verdict, len(addrs))
	} else {
		bd.out = bd.out[:len(addrs)]
	}
	bd.state.Store(bdRunning)
	bd.pending.Store(int32(len(addrs)))
	bd.start = time.Now()
	return bd
}

func putBatchDesc(bd *batchDesc) {
	// Verdicts and addresses hold no pointers, so truncating (keeping the
	// capacity, which is the point of pooling) pins nothing.
	bd.addrs = bd.addrs[:0]
	bd.out = bd.out[:0]
	batchPool.Put(bd)
}

// bdResolve retires one slot of a batch. The goroutine that retires the
// last slot either wakes the waiting caller or — when the caller
// abandoned the batch — recycles the descriptor on its behalf. The
// atomic countdown orders every slot write before the final signal, so
// the caller reads a fully written out array.
func (r *Router) bdResolve(bd *batchDesc) {
	if bd.pending.Add(-1) != 0 {
		return
	}
	if bd.state.CompareAndSwap(bdRunning, bdDone) {
		bd.done <- struct{}{}
		return
	}
	r.batchRecycled.Add(1)
	putBatchDesc(bd)
}

// abandonBatch detaches a cancelled caller from its descriptor. If the
// batch completed concurrently, the done signal is already buffered:
// drain it and recycle here instead.
func (r *Router) abandonBatch(bd *batchDesc) {
	if bd.state.CompareAndSwap(bdRunning, bdAbandoned) {
		return
	}
	<-bd.done
	putBatchDesc(bd)
}

// deliver answers one lookup message's submitter: the descriptor slot
// when the lookup rides a batch, the buffered reply channel otherwise.
func (r *Router) deliver(m message, v Verdict) {
	if m.bd != nil {
		m.bd.out[m.slot] = v
		r.bdResolve(m.bd)
		return
	}
	m.resp <- v
}

// fabricBatch is a coalesced fabric payload: parallel arrays of
// addresses and (on replies) their verdicts. It is allocated fresh per
// send and never mutated afterwards, so an injector-duplicated message
// can share it safely.
type fabricBatch struct {
	addrs []ip.Addr
	nhs   []rtable.NextHop
	oks   []bool
}

// lcScratch is a line card's private batch workspace, reused across
// batches so the steady-state path allocates nothing once warm: the
// pending local-FE sweep (addrs/slots/trs/res) and the per-home fabric
// accumulators (byHome, indexed by LC id; homes lists the active ones).
type lcScratch struct {
	addrs  []ip.Addr
	slots  []int32
	trs    []*tracing.LookupTrace
	res    []lpm.Result
	byHome []*fabricBatch
	homes  []int
}

func newLCScratch(numLCs int) *lcScratch {
	return &lcScratch{byHome: make([]*fabricBatch, numLCs)}
}

// resetSweep clears the local-FE collection arrays, dropping trace
// pointers so the scratch pins nothing between batches.
func (sc *lcScratch) resetSweep() {
	sc.addrs = sc.addrs[:0]
	sc.slots = sc.slots[:0]
	clear(sc.trs)
	sc.trs = sc.trs[:0]
}

// LookupBatch pipelines a whole slice of destinations at one line card
// and returns the verdicts in submission order; see LookupBatchCtx for
// the ordering guarantee.
func (r *Router) LookupBatch(lc int, addrs []ip.Addr) ([]Verdict, error) {
	return r.LookupBatchCtx(context.Background(), lc, addrs)
}

// LookupBatchInto is LookupBatchCtx writing into a caller-provided
// verdict slice (len(out) >= len(addrs)); with BatchCoalescing on, the
// steady-state cache-hit and local-home paths allocate nothing. On error
// the contents of out are unspecified. The positional guarantee is the
// same: on success out[i] answers addrs[i].
func (r *Router) LookupBatchInto(ctx context.Context, lc int, addrs []ip.Addr, out []Verdict) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if lc < 0 || lc >= r.cfg.NumLCs {
		return fmt.Errorf("router: no such LC %d", lc)
	}
	if len(out) < len(addrs) {
		return fmt.Errorf("router: out holds %d verdicts, batch has %d addresses", len(out), len(addrs))
	}
	if len(addrs) == 0 {
		return nil
	}
	if !r.cfg.BatchCoalescing {
		return r.lookupBatchSingles(ctx, lc, addrs, out)
	}
	bd := getBatchDesc(addrs)
	m := message{kind: mBatch, bd: bd}
	if r.ov.Enabled {
		if err := r.admitBatch(lc, m); err != nil {
			putBatchDesc(bd)
			return err
		}
	} else if !r.send(lc, m) {
		putBatchDesc(bd)
		return ErrStopped
	}
	select {
	case <-bd.done:
		copy(out, bd.out)
		putBatchDesc(bd)
		return nil
	case <-ctx.Done():
		r.abandonBatch(bd)
		return ctx.Err()
	case <-r.quit:
		r.abandonBatch(bd)
		return ErrStopped
	}
}

// admitBatch is the admission layer for a whole batch: one inbox slot
// carries the descriptor, and a full inbox refuses the entire batch (the
// per-address shed verdicts only apply after admission).
func (r *Router) admitBatch(lc int, m message) error {
	if r.ov.Mode == ShedBlock {
		select {
		case r.inboxes[lc] <- m:
			return nil
		case <-r.quit:
			return ErrStopped
		}
	}
	select {
	case r.inboxes[lc] <- m:
		return nil
	case <-r.quit:
		return ErrStopped
	default:
	}
	r.shedCount(lc, shedInboxFull)
	return ErrOverloaded
}

// handleBatch classifies a batch at its arrival LC: inline cache hits,
// waitlist coalescing, a single batched FE sweep for same-home misses,
// and one accumulated fabric request per remote home LC.
func (r *Router) handleBatch(lc *lineCard, m message) {
	bd := m.bd
	sc := lc.scratch
	lc.stats.Lookups.Add(int64(len(bd.addrs)))
	lc.stats.Batches.Add(1)
	now := time.Now()
	for i, addr := range bd.addrs {
		slot := int32(i)
		var tr *tracing.LookupTrace
		if r.tracer != nil {
			if tr = r.tracer.Sample(lc.id, addr, bd.start); tr != nil {
				tr.Record(tracing.EvArrival, int64(lc.id), 0)
			}
		}
		probeKind := cache.Miss
		if lc.cache != nil {
			res := lc.cache.Probe(addr)
			probeKind = res.Kind
			switch res.Kind {
			case cache.Hit, cache.HitVictim:
				lc.stats.CacheHits.Add(1)
				ok := res.NextHop != rtable.NoNextHop
				if tr != nil {
					tr.Record(tracing.EvProbe, int64(res.Kind), int64(res.Origin))
					r.finishTrace(tr, ServedByCache, ok)
				}
				lc.lat.observe(ServedByCache, bd.start, traceID(tr))
				bd.out[slot] = Verdict{Addr: addr, NextHop: res.NextHop, OK: ok, ServedBy: ServedByCache}
				r.bdResolve(bd)
				continue
			}
		}
		// Coalesce onto an in-flight miss (covers both HitWaiting and the
		// cache-bypass case, exactly like handleLookup).
		if wl, ok := lc.pending[addr]; ok {
			if wl.hedged {
				// The waitlist was already answered by a hedge; parking here
				// would strand this slot (see hedgeAnswerLocal).
				r.hedgeAnswerLocal(lc, message{addr: addr, bd: bd, slot: slot, start: bd.start, tr: tr})
				continue
			}
			if r.waitlistFull(wl) {
				r.shedLocal(lc.id, message{addr: addr, bd: bd, slot: slot, tr: tr}, shedWaitlistOverflow)
				continue
			}
			lc.stats.Coalesced.Add(1)
			if tr != nil {
				tr.Record(tracing.EvProbe, int64(probeKind), 0)
				tr.Record(tracing.EvCoalesce, int64(len(wl.locals)+len(wl.remotes)), 0)
				if wl.tr == nil {
					wl.tr = tr
				}
			}
			wl.locals = append(wl.locals, localWaiter{bd: bd, slot: slot, start: bd.start, tr: tr, gen: lc.gen})
			lc.waiters.Add(1)
			continue
		}
		home := lc.homeOf(addr)
		if home == lc.id {
			// Same-home miss: no park, no RecordMiss — the batched FE
			// sweep below answers it within this handler, so there is no
			// in-flight window for anything to coalesce into. (Duplicates
			// inside the batch simply run the engine twice.)
			if tr != nil && lc.cache != nil {
				tr.Record(tracing.EvProbe, int64(probeKind), int64(cache.LOC))
			}
			sc.addrs = append(sc.addrs, addr)
			sc.slots = append(sc.slots, slot)
			sc.trs = append(sc.trs, tr)
			continue
		}
		// Remote miss: park a waitlist with the usual deadline/retry arming
		// so the shared robustness machinery (checkDeadlines, re-homing,
		// breakers) treats batch sub-lookups like any single lookup — only
		// the fabric send is deferred into the per-home accumulator.
		if lc.cache != nil {
			recorded := lc.cache.RecordMiss(addr, cache.REM, 0)
			if tr != nil {
				tr.Record(tracing.EvProbe, int64(probeKind), int64(cache.REM))
				if !recorded {
					tr.Record(tracing.EvBypass, 0, 0)
				}
			}
		}
		wl := r.park(lc, addr)
		wl.tr = tr
		wl.locals = append(wl.locals, localWaiter{bd: bd, slot: slot, start: bd.start, tr: tr, gen: lc.gen})
		lc.waiters.Add(1)
		if r.ov.Enabled && !r.breakerAllows(lc, home) {
			lc.ov.breakerShorts.Add(1)
			lc.stats.Fallbacks.Add(1)
			wl.tr.Record(tracing.EvBreaker, int64(home), int64(lc.ov.breakers[home].state.Load()))
			wl.tr.Record(tracing.EvFallback, int64(lc.id), 0)
			nh, _, ok := r.fallback.Load().eng.Lookup(addr)
			if !ok {
				nh = rtable.NoNextHop
			}
			r.fillAndRelease(lc, addr, nh, ok, cache.REM, ServedByFallback)
			continue
		}
		wl.attempts = 1
		wl.sentAt = now
		wl.deadline = now.Add(r.timeout)
		wl.tr.Record(tracing.EvFabricSend, int64(home), 1)
		fb := sc.byHome[home]
		if fb == nil {
			fb = &fabricBatch{}
			sc.byHome[home] = fb
			sc.homes = append(sc.homes, home)
		}
		fb.addrs = append(fb.addrs, addr)
		if r.grayPol.Eject && r.gray[home].ejected.Load() {
			// Ejected home: answer this slot from the fallback engine now
			// (same contract as dispatch — the accumulated request still
			// goes out and its reply lands as a suppressed hedged primary).
			wl.tr.Record(tracing.EvEject, int64(home), 0)
			r.ejectServed.Add(1)
			r.hedgeResolve(lc, addr, wl)
		}
	}
	// One engine sweep answers every same-home miss (BatchEngine engines
	// run it level-synchronously; others fall back per key).
	if n := len(sc.addrs); n > 0 {
		lc.stats.FEExecs.Add(int64(n))
		t0 := r.feTimer()
		if cap(sc.res) < n {
			sc.res = make([]lpm.Result, n)
		}
		res := sc.res[:n]
		lpm.LookupAll(lc.engine, sc.addrs, res)
		feNS := elapsedNS(t0) // batch-granular; per-address splits aren't measured
		for k := 0; k < n; k++ {
			addr, ok := sc.addrs[k], res[k].OK
			nh := res[k].NextHop
			if !ok {
				nh = rtable.NoNextHop
			}
			if lc.cache != nil {
				lc.cache.Fill(addr, nh, cache.LOC)
			}
			if tr := sc.trs[k]; tr != nil {
				tr.Record(tracing.EvFEExec, feNS, int64(lc.id))
				tr.Record(tracing.EvFill, int64(cache.LOC), int64(ServedByFE))
				r.finishTrace(tr, ServedByFE, ok)
			}
			lc.lat.observe(ServedByFE, bd.start, traceID(sc.trs[k]))
			bd.out[sc.slots[k]] = Verdict{Addr: addr, NextHop: nh, OK: ok, ServedBy: ServedByFE}
			r.bdResolve(bd)
		}
		sc.resetSweep()
	}
	// One fabric message per remote home with misses in this batch.
	for _, home := range sc.homes {
		fb := sc.byHome[home]
		sc.byHome[home] = nil
		lc.stats.RequestsSent.Add(1)
		lc.stats.BatchRequestsSent.Add(1)
		r.sendFabric(home, message{kind: mBatchRequest, from: lc.id, epoch: lc.epoch, fb: fb, addr: fb.addrs[0]})
	}
	sc.homes = sc.homes[:0]
}

// handleBatchRequest serves a coalesced request at the home LC: cache
// hits and freshly computed results accumulate into one reply batch;
// addresses already in flight coalesce as remote waiters and ride
// individual replies instead (their resolution happens later, outside
// this handler). Re-homed addresses are forwarded as individual requests
// exactly like handleRequest would.
func (r *Router) handleBatchRequest(lc *lineCard, m message) {
	sc := lc.scratch
	var rb *fabricBatch
	for _, addr := range m.fb.addrs {
		if home := lc.homeOf(addr); home != lc.id {
			// Re-homed while in flight: hand off per address with one
			// forward hop consumed, preserving handleRequest's ping-pong
			// cap via the individual-request path.
			lc.stats.ForwardedRequests.Add(1)
			r.sendFabric(home, message{kind: mRequest, addr: addr, from: m.from, epoch: m.epoch, hops: 1})
			continue
		}
		rw := remoteWaiter{from: m.from, epoch: m.epoch, gen: lc.gen}
		if lc.cache != nil {
			switch res := lc.cache.Probe(addr); res.Kind {
			case cache.Hit, cache.HitVictim:
				if rb == nil {
					rb = &fabricBatch{}
				}
				rb.addrs = append(rb.addrs, addr)
				rb.nhs = append(rb.nhs, res.NextHop)
				rb.oks = append(rb.oks, res.NextHop != rtable.NoNextHop)
				continue
			case cache.HitWaiting:
				wl := r.park(lc, addr)
				if wl.hedged {
					r.hedgeAnswerRemote(lc, rw, addr)
					continue
				}
				if r.waitlistFull(wl) {
					r.shedCount(lc.id, shedWaitlistOverflow)
					continue
				}
				lc.stats.Coalesced.Add(1)
				wl.remotes = append(wl.remotes, rw)
				lc.waiters.Add(1)
				continue
			default:
				lc.cache.RecordMiss(addr, cache.LOC, 0)
			}
		}
		if wl, ok := lc.pending[addr]; ok {
			if wl.hedged {
				r.hedgeAnswerRemote(lc, rw, addr)
				continue
			}
			if r.waitlistFull(wl) {
				r.shedCount(lc.id, shedWaitlistOverflow)
				continue
			}
			lc.stats.Coalesced.Add(1)
			wl.remotes = append(wl.remotes, rw)
			lc.waiters.Add(1)
			continue
		}
		// Fresh miss: collect for the batched FE sweep. Park an empty
		// waitlist so a duplicate of addr later in this same batch (or a
		// W-block probe) coalesces instead of double-dispatching; the
		// sweep's fillAndRelease clears it again.
		r.park(lc, addr)
		sc.addrs = append(sc.addrs, addr)
	}
	if n := len(sc.addrs); n > 0 {
		lc.stats.FEExecs.Add(int64(n))
		if cap(sc.res) < n {
			sc.res = make([]lpm.Result, n)
		}
		res := sc.res[:n]
		lpm.LookupAll(lc.engine, sc.addrs, res)
		for k := 0; k < n; k++ {
			addr, ok := sc.addrs[k], res[k].OK
			nh := res[k].NextHop
			if !ok {
				nh = rtable.NoNextHop
			}
			r.fillAndRelease(lc, addr, nh, ok, cache.LOC, ServedByFE)
			if rb == nil {
				rb = &fabricBatch{}
			}
			rb.addrs = append(rb.addrs, addr)
			rb.nhs = append(rb.nhs, nh)
			rb.oks = append(rb.oks, ok)
		}
		sc.addrs = sc.addrs[:0]
	}
	if rb != nil {
		lc.stats.RepliesSent.Add(1)
		lc.stats.BatchRepliesSent.Add(1)
		// Batch replies carry no per-address FE timing (feNS stays 0) —
		// the home-side split isn't measured on this path.
		r.sendFabric(m.from, message{kind: mBatchReply, from: lc.id, epoch: m.epoch, gen: lc.gen, fb: rb, addr: rb.addrs[0]})
	}
}

// handleBatchReply scatters a coalesced reply back into the requester's
// waitlists positionally. The epoch guard is per message: the whole
// batch predates a table swap or none of it does.
func (r *Router) handleBatchReply(lc *lineCard, m message) {
	fb := m.fb
	if m.epoch != lc.epoch {
		lc.stats.StaleReplies.Add(int64(len(fb.addrs)))
		return
	}
	if r.grayPol.Enabled && !r.gray[lc.id].degraded.Load() {
		// One fabric message, one round-trip sample: the first address's
		// waitlist carries the send timestamp for the whole batch. A
		// degraded requester abstains — see the mirror site in router.go.
		if wl, ok := lc.pending[fb.addrs[0]]; ok && wl.attempts == 1 && !wl.sentAt.IsZero() {
			r.rtt[m.from].observe(time.Since(wl.sentAt).Nanoseconds())
		}
	}
	if r.ov.Enabled {
		// One successful fabric round trip, one breaker/budget credit —
		// the batch is a single message on the wire.
		r.breakerSuccess(lc, m.from)
		r.budgetRefill(lc)
	}
	if r.grayPol.Hedge {
		r.refillHedge(lc)
	}
	// The gen guard is per message too: the whole batch was computed
	// against one table generation at the home LC. A quarantined (or
	// ejected) responder never catches up until rebuilt or restored, so
	// its stale replies are final — delivered, not re-driven (see
	// fillStaleRelease).
	stale := m.gen < lc.gen
	final := stale && r.genPinned(m.from)
	for k, addr := range fb.addrs {
		wl, parked := lc.pending[addr]
		if parked && wl.hedged {
			// A hedge (or eject dispatch) already answered this address;
			// the batch carries its suppressed primary.
			r.hedgePrimaryLate.Add(1)
			r.dropHedged(lc, addr)
			continue
		}
		if r.tracer != nil && parked && wl.tr != nil {
			wl.tr.Record(tracing.EvFabricRecv, int64(m.from), 0)
		}
		if stale {
			r.fillStaleRelease(lc, addr, fb.nhs[k], fb.oks[k], cache.REM, ServedByRemote, m.gen, final)
		} else {
			r.fillAndRelease(lc, addr, fb.nhs[k], fb.oks[k], cache.REM, ServedByRemote)
		}
	}
}
