// Gray-failure immunity: brownout detection, hedged remote lookups, and
// outlier ejection.
//
// The failure model here is the one the lifecycle and integrity planes
// cannot see: a line card (or the fabric path to it) that is alive,
// heartbeating, and answering *correctly* — just slowly. No deadline
// necessarily fires (the brownout may sit well under RequestTimeout), no
// scrub mismatch appears, yet every remote lookup homed on the browned
// element drags the router-wide tail. Three mechanisms close the gap:
//
//   - Detection: every fabric reply whose request was sent exactly once
//     carries an unambiguous round-trip sample, attributed to the home LC
//     that answered. A per-home ring of recent samples (EWMA for the
//     trend, windowed quantiles for decisions) is scored on the health
//     ticker against the fleet median: an LC whose windowed p50 exceeds
//     DegradeFactor × the fleet median (and an absolute floor, so
//     microsecond jitter never trips it) for DegradeAfter consecutive
//     cycles is marked degraded. The ratio-to-fleet comparison is what
//     keeps global overload from faking a brownout: when every LC slows
//     down together, the median moves with them and nobody is an outlier.
//     Degraded is a health *signal*, orthogonal to the lifecycle states —
//     a degraded LC is never demoted toward Down by this plane.
//
//   - Hedging: a remote lookup still unanswered after the hedge delay
//     (operator-fixed, or adaptively derived each cycle from the fleet's
//     median p99) is answered immediately from the router-wide full-table
//     fallback engine — the same always-current authority the
//     deadline/retry plane already trusts — while the fabric request
//     stays tracked. The waitlist flips to hedged: waiters are gone, but
//     the entry remains so the primary reply is recognized when it lands
//     (counted primary_late and suppressed — the duplicate-suppression
//     rule the batch descriptors use: exactly one owner answers) or
//     counted primary_lost when it never does. Hedges spend a per-LC
//     token bucket refilled by successful fabric round trips, mirroring
//     the retry budget: a fabric already in trouble cannot be melted by
//     its own mitigation.
//
//   - Ejection: when detection marks an LC degraded (and Eject is on),
//     the router steers cacheable traffic off it using the machinery
//     quarantine already proved: the router generation advances and every
//     *other* LC adopts it, pinning the ejected LC's replies out of peer
//     caches, while new remote lookups homed on it are answered from the
//     fallback engine at dispatch time (the request is still sent, so
//     round-trip samples keep flowing and recovery stays observable).
//     When the LC's score recovers for RecoverAfter consecutive cycles it
//     is restored: the flag clears and a generation catch-up message
//     lifts the pin. No partition moves in either direction — ejection is
//     deliberately cheaper and more reversible than re-homing.
package router

import (
	"context"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spal/internal/cache"
	"spal/internal/ip"
	"spal/internal/rtable"
	"spal/internal/tracing"
)

// GrayPolicy configures the gray-failure subsystem. The zero value
// disables it entirely: no round-trip sampling, no scorer work on the
// health ticker, no hedging, no new metric families.
type GrayPolicy struct {
	// Enabled turns on round-trip sampling and the per-home latency
	// scorer (the degraded signal and the RTT metrics). Hedge and Eject
	// are gated on it too.
	Enabled bool
	// Window is the per-home ring of retained round-trip samples the
	// windowed quantiles are computed over. <= 0 selects the default (64).
	Window int
	// MinSamples is how many samples a home LC's window must hold before
	// it is scored at all; fewer and the LC is skipped this cycle. <= 0
	// selects the default (8).
	MinSamples int
	// DegradeFactor: an LC is "over" when its windowed p50 exceeds this
	// multiple of the fleet median p50. <= 1 selects the default (3).
	DegradeFactor float64
	// MinRTT is the absolute degradation floor: an LC whose p50 is below
	// it is never marked degraded no matter the ratio, so microsecond
	// jitter between healthy in-process LCs cannot trip the scorer. <= 0
	// selects the default (200µs).
	MinRTT time.Duration
	// DegradeAfter / RecoverAfter are the consecutive scorer cycles an LC
	// must be over (resp. back under) the threshold before the degraded
	// signal sets (resp. clears). <= 0 selects the defaults (3 and 3).
	DegradeAfter int
	RecoverAfter int
	// Hedge enables hedged remote lookups.
	Hedge bool
	// HedgeAfter is the fixed hedge delay; 0 derives it adaptively each
	// scorer cycle as HedgeMultiplier × the fleet median p99, clamped to
	// [MinRTT, RequestTimeout]. Until the first adaptive value exists the
	// delay sits at RequestTimeout, i.e. hedging is effectively off.
	HedgeAfter time.Duration
	// HedgeMultiplier scales the adaptive hedge delay. <= 0 selects the
	// default (2).
	HedgeMultiplier float64
	// HedgeBudgetRatio is how many hedge tokens a successful fabric round
	// trip refills (the retry-budget pattern: mitigation is paid for by
	// evidence the fabric still works). <= 0 selects the default (0.5).
	HedgeBudgetRatio float64
	// HedgeBudgetBurst caps the per-LC hedge token bucket. <= 0 selects
	// the default (32).
	HedgeBudgetBurst float64
	// Eject enables outlier ejection of degraded home LCs.
	Eject bool
}

// DefaultGrayPolicy enables detection, hedging, and ejection with the
// default thresholds.
func DefaultGrayPolicy() GrayPolicy {
	return GrayPolicy{Enabled: true, Hedge: true, Eject: true}
}

func normalizeGray(p GrayPolicy) GrayPolicy {
	if !p.Enabled {
		return GrayPolicy{}
	}
	if p.Window <= 0 {
		p.Window = 64
	}
	if p.MinSamples <= 0 {
		p.MinSamples = 8
	}
	if p.MinSamples > p.Window {
		p.MinSamples = p.Window
	}
	if p.DegradeFactor <= 1 {
		p.DegradeFactor = 3
	}
	if p.MinRTT <= 0 {
		p.MinRTT = 200 * time.Microsecond
	}
	if p.DegradeAfter <= 0 {
		p.DegradeAfter = 3
	}
	if p.RecoverAfter <= 0 {
		p.RecoverAfter = 3
	}
	if p.HedgeMultiplier <= 0 {
		p.HedgeMultiplier = 2
	}
	if p.HedgeBudgetRatio <= 0 {
		p.HedgeBudgetRatio = 0.5
	}
	if p.HedgeBudgetBurst <= 0 {
		p.HedgeBudgetBurst = 32
	}
	return p
}

// WithGray configures the gray-failure subsystem: per-home round-trip
// scoring with a fleet-relative degraded signal, hedged remote lookups
// against the full-table fallback engine, and outlier ejection of
// browned-out home LCs. Pass DefaultGrayPolicy() for the defaults. See
// gray.go.
func WithGray(p GrayPolicy) Option {
	return func(c *Config) { c.Gray = p }
}

// lcRTT holds one home LC's fabric round-trip samples. observe is called
// by requester LC goroutines (any of them — the mutex is the arbitration
// between ψ−1 writers and the monitor's reader); the quantile gauges are
// atomics so Metrics reads them without the lock.
type lcRTT struct {
	mu   sync.Mutex
	ring []int64
	n    int64 // total samples ever observed
	idx  int

	ewma atomic.Int64 // ns, α = 1/8
	p50  atomic.Int64 // last windowed quantiles, computed by the scorer
	p99  atomic.Int64
}

// observe records one unambiguous round trip (request sent exactly once).
func (s *lcRTT) observe(ns int64) {
	s.mu.Lock()
	s.ring[s.idx] = ns
	s.idx = (s.idx + 1) % len(s.ring)
	s.n++
	s.mu.Unlock()
	for {
		old := s.ewma.Load()
		nv := ns
		if old != 0 {
			nv = old + (ns-old)/8
		}
		if s.ewma.CompareAndSwap(old, nv) {
			return
		}
	}
}

// window copies the live samples into buf (cold monitor path).
func (s *lcRTT) window(buf []int64) []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := int(s.n)
	if k > len(s.ring) {
		k = len(s.ring)
	}
	return append(buf[:0], s.ring[:k]...)
}

// lcGray is one home LC's gray-failure state. degraded/ejected are
// atomics (set by the monitor, read by dispatch paths and Metrics); the
// streaks are monitor-only under r.mu.
type lcGray struct {
	degraded    atomic.Bool
	ejected     atomic.Bool
	overStreak  int
	underStreak int
}

// quantileNS picks the q-quantile of a sorted sample window.
func quantileNS(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// maybeGrayLocked is the health ticker's gray-failure hook: recompute
// every home LC's windowed quantiles, rescore them against the fleet
// median, drive the degraded signal and its eject/restore side effects,
// and refresh the adaptive hedge delay. r.mu must be held.
func (r *Router) maybeGrayLocked(now time.Time) {
	if !r.grayPol.Enabled {
		return
	}
	type scored struct {
		i        int
		p50, p99 int64
	}
	var valid []scored
	buf := make([]int64, 0, r.grayPol.Window)
	for i := range r.lcs {
		buf = r.rtt[i].window(buf)
		if len(buf) == 0 {
			continue
		}
		sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
		p50, p99 := quantileNS(buf, 0.50), quantileNS(buf, 0.99)
		r.rtt[i].p50.Store(p50)
		r.rtt[i].p99.Store(p99)
		if len(buf) < r.grayPol.MinSamples {
			continue
		}
		if st := r.life[i].state.Load(); st == LCDown || st == LCDraining {
			continue
		}
		valid = append(valid, scored{i, p50, p99})
	}
	if len(valid) < 2 {
		// With fewer than two scored homes there is no fleet to compare
		// against; a single slow LC is indistinguishable from a slow
		// fabric, so the scorer abstains rather than guess.
		return
	}
	meds := make([]int64, len(valid))
	for k, v := range valid {
		meds[k] = v.p50
	}
	sort.Slice(meds, func(a, b int) bool { return meds[a] < meds[b] })
	fleetP50 := quantileNS(meds, 0.5)
	for k, v := range valid {
		meds[k] = v.p99
	}
	sort.Slice(meds, func(a, b int) bool { return meds[a] < meds[b] })
	fleetP99 := quantileNS(meds, 0.5)

	if r.grayPol.Hedge && r.grayPol.HedgeAfter <= 0 {
		hd := int64(r.grayPol.HedgeMultiplier * float64(fleetP99))
		if min := int64(r.grayPol.MinRTT); hd < min {
			hd = min
		}
		if max := int64(r.timeout); hd > max {
			hd = max
		}
		r.hedgeDelayNS.Store(hd)
	}

	for _, v := range valid {
		g := r.gray[v.i]
		over := float64(v.p50) > r.grayPol.DegradeFactor*float64(fleetP50) &&
			v.p50 >= int64(r.grayPol.MinRTT)
		if over {
			g.overStreak++
			g.underStreak = 0
			if !g.degraded.Load() && g.overStreak >= r.grayPol.DegradeAfter {
				g.degraded.Store(true)
				r.grayDegrades.Add(1)
				r.grayLog("degraded", slog.Int("lc", v.i),
					slog.Int64("p50_ns", v.p50), slog.Int64("fleet_p50_ns", fleetP50))
				if r.grayPol.Eject && !g.ejected.Load() {
					r.ejectLocked(v.i)
				}
			}
		} else {
			g.underStreak++
			g.overStreak = 0
			if g.degraded.Load() && g.underStreak >= r.grayPol.RecoverAfter {
				g.degraded.Store(false)
				r.grayRecovers.Add(1)
				r.grayLog("recovered", slog.Int("lc", v.i), slog.Int64("p50_ns", v.p50))
				if g.ejected.Load() {
					r.restoreEjectedLocked(v.i)
				}
			}
		}
	}
}

// ejectLocked steers cacheable traffic off a browned-out home LC by
// reusing the quarantine generation pin: the router generation advances
// and every *other* LC adopts it via an empty mApplyUpdates, while the
// ejected LC's generation stays pinned (see handleApplyUpdates), so its
// replies remain deliverable but never enter a peer cache. Dispatch-time
// steering (the fallback answer for lookups homed on it) keys off the
// ejected flag directly. r.mu must be held.
func (r *Router) ejectLocked(i int) {
	r.gray[i].ejected.Store(true)
	r.ejections.Add(1)
	r.grayLog("eject", slog.Int("lc", i))
	r.gen++
	dones := make([]chan struct{}, r.cfg.NumLCs)
	for j := 0; j < r.cfg.NumLCs; j++ {
		if j == i {
			continue
		}
		dones[j] = make(chan struct{})
		if !r.sendCtrlSwap(j, message{kind: mApplyUpdates, gen: r.gen, swapDone: dones[j]}) {
			return
		}
	}
	for j, d := range dones {
		if d == nil {
			continue
		}
		select {
		case <-d:
		case <-r.life[j].exited:
			// Crashed; the reborn slot adopts the current generation.
		case <-r.quit:
			return
		}
	}
}

// restoreEjectedLocked lifts an ejection: the flag clears first (so the
// generation catch-up below is not refused by the pin), then the LC
// adopts the current router generation via an empty mApplyUpdates —
// after which its replies are cacheable again and dispatch stops
// steering around it. r.mu must be held.
func (r *Router) restoreEjectedLocked(i int) {
	r.gray[i].ejected.Store(false)
	r.restores.Add(1)
	r.grayLog("restore", slog.Int("lc", i))
	done := make(chan struct{})
	if !r.sendCtrlSwap(i, message{kind: mApplyUpdates, gen: r.gen, swapDone: done}) {
		return
	}
	select {
	case <-done:
	case <-r.life[i].exited:
		// Crashed; rehoming rebuilds the slot at the current generation.
	case <-r.quit:
	}
}

// genPinned reports whether LC id's table generation is pinned behind the
// router's: quarantined (integrity) or ejected (gray failure). A pinned
// LC's replies carry a trailing generation, which is exactly how peers
// keep them out of their caches; pinned replies are also final — the
// trailing state will not resolve by re-driving (see fillStaleRelease).
func (r *Router) genPinned(id int) bool {
	if r.life[id].state.Load() == LCQuarantined {
		return true
	}
	return r.grayPol.Enabled && r.gray[id].ejected.Load()
}

// hedgeDelay is the current delay after which an unanswered remote
// lookup is hedged.
func (r *Router) hedgeDelay() time.Duration {
	return time.Duration(r.hedgeDelayNS.Load())
}

// takeHedgeToken spends one hedge token from the LC's private bucket.
func (r *Router) takeHedgeToken(lc *lineCard) bool {
	if lc.hedgeTokens < 1 {
		return false
	}
	lc.hedgeTokens--
	return true
}

// refillHedge credits the hedge bucket for one successful fabric round
// trip, mirroring budgetRefill's evidence-based pacing.
func (r *Router) refillHedge(lc *lineCard) {
	if lc.hedgeTokens += r.grayPol.HedgeBudgetRatio; lc.hedgeTokens > r.grayPol.HedgeBudgetBurst {
		lc.hedgeTokens = r.grayPol.HedgeBudgetBurst
	}
}

// hedgeResolve answers every waiter parked on addr from the full-table
// fallback engine and flips the waitlist to hedged: waiters are emptied
// (each delivered a ServedByHedge verdict) but the entry stays pending
// with its deadline armed, so the primary fabric reply is recognized and
// suppressed when it lands — or counted lost when the deadline passes
// first. The fallback engine always reflects the current generation
// (UpdateTable and ApplyUpdates both refresh it before returning), so
// the verdict is correct under churn.
func (r *Router) hedgeResolve(lc *lineCard, addr ip.Addr, wl *waitlist) {
	nh, _, ok := r.fallback.Load().eng.Lookup(addr)
	if !ok {
		nh = rtable.NoNextHop
	}
	if lc.cache != nil {
		lc.cache.Fill(addr, nh, cache.REM)
	}
	lc.waiters.Add(-int64(len(wl.locals) + len(wl.remotes)))
	wl.tr.Record(tracing.EvFill, int64(cache.REM), int64(ServedByHedge))
	v := Verdict{Addr: addr, NextHop: nh, OK: ok, ServedBy: ServedByHedge}
	for _, w := range wl.locals {
		lc.lat.observe(ServedByHedge, w.start, traceID(w.tr))
		r.finishTrace(w.tr, ServedByHedge, ok)
		if w.bd != nil {
			w.bd.out[w.slot] = v
			r.bdResolve(w.bd)
		} else {
			w.ch <- v
		}
	}
	if wl.trLate {
		r.finishTrace(wl.tr, ServedByHedge, ok)
	}
	for _, rw := range wl.remotes {
		r.sendReply(lc, rw, addr, nh, ok, 0, lc.gen)
	}
	wl.locals = wl.locals[:0]
	wl.remotes = wl.remotes[:0]
	wl.tr = nil
	wl.trLate = false
	wl.hedged = true
}

// dropHedged retires a hedged pending entry once its primary reply
// landed (suppressed) or its deadline passed (lost).
func (r *Router) dropHedged(lc *lineCard, addr ip.Addr) {
	delete(lc.pending, addr)
	lc.pendingDepth.Store(int64(len(lc.pending)))
}

// hedgeAnswerLocal serves a local lookup that coalesced onto a hedged
// waitlist: the waiters were already answered and the entry only tracks
// the primary reply, so parking here would strand the straggler — answer
// it from the fallback engine immediately instead. Rare: the hedge fill
// put the value in the cache, so stragglers normally hit there first.
func (r *Router) hedgeAnswerLocal(lc *lineCard, m message) {
	nh, _, ok := r.fallback.Load().eng.Lookup(m.addr)
	if !ok {
		nh = rtable.NoNextHop
	}
	if m.tr != nil {
		m.tr.Record(tracing.EvFill, int64(cache.REM), int64(ServedByHedge))
		r.finishTrace(m.tr, ServedByHedge, ok)
	}
	lc.lat.observe(ServedByHedge, m.start, traceID(m.tr))
	r.deliver(m, Verdict{Addr: m.addr, NextHop: nh, OK: ok, ServedBy: ServedByHedge})
}

// hedgeAnswerRemote is hedgeAnswerLocal for a remote waiter.
func (r *Router) hedgeAnswerRemote(lc *lineCard, rw remoteWaiter, addr ip.Addr) {
	nh, _, ok := r.fallback.Load().eng.Lookup(addr)
	if !ok {
		nh = rtable.NoNextHop
	}
	r.sendReply(lc, rw, addr, nh, ok, 0, lc.gen)
}

// grayLog emits a gray-failure lifecycle record through the tracing
// plane's structured-log sink when one is installed (WithLogger).
func (r *Router) grayLog(event string, attrs ...slog.Attr) {
	if r.cfg.TraceLogger == nil {
		return
	}
	r.cfg.TraceLogger.LogAttrs(context.Background(), slog.LevelWarn, "spal gray "+event, attrs...)
}

// LCGrayStatus is one home LC's gray-failure record.
type LCGrayStatus struct {
	LC       int
	Degraded bool
	Ejected  bool
	// Samples is how many fabric round trips have been attributed to this
	// home LC; RTTp50/RTTp99 are its latest windowed quantiles and EWMA
	// the smoothed trend.
	Samples int64
	RTTp50  time.Duration
	RTTp99  time.Duration
	EWMA    time.Duration
}

// GrayReport is the router-wide gray-failure snapshot behind the
// spal_router_hedges_total / eject / degraded metrics and the CLI
// summary line.
type GrayReport struct {
	// Degrades / Recovers count degraded-signal transitions; Ejections /
	// Restores count the eject lifecycle (a restore requires a recover,
	// so Restores <= Recovers).
	Degrades  int64
	Recovers  int64
	Ejections int64
	Restores  int64
	// Hedges counts hedge verdicts fired from the deadline ticker;
	// HedgePrimaryLate are primaries that landed after their hedge (the
	// suppressed duplicates), HedgePrimaryLost primaries that never
	// landed, HedgeBudgetDenied hedges refused by the token bucket.
	// EjectServed counts lookups answered at dispatch time because their
	// home LC was ejected.
	Hedges            int64
	HedgePrimaryLate  int64
	HedgePrimaryLost  int64
	HedgeBudgetDenied int64
	EjectServed       int64
	// HedgeDelay is the current (fixed or adaptive) hedge delay.
	HedgeDelay time.Duration
	LCs        []LCGrayStatus
}

// Gray returns the current gray-failure snapshot. Zero-valued when the
// subsystem is disabled.
func (r *Router) Gray() GrayReport {
	rep := GrayReport{}
	if !r.grayPol.Enabled {
		return rep
	}
	rep.Degrades = r.grayDegrades.Load()
	rep.Recovers = r.grayRecovers.Load()
	rep.Ejections = r.ejections.Load()
	rep.Restores = r.restores.Load()
	rep.Hedges = r.hedges.Load()
	rep.HedgePrimaryLate = r.hedgePrimaryLate.Load()
	rep.HedgePrimaryLost = r.hedgePrimaryLost.Load()
	rep.HedgeBudgetDenied = r.hedgeBudgetDenied.Load()
	rep.EjectServed = r.ejectServed.Load()
	rep.HedgeDelay = r.hedgeDelay()
	for i := range r.lcs {
		st := r.rtt[i]
		rep.LCs = append(rep.LCs, LCGrayStatus{
			LC:       i,
			Degraded: r.gray[i].degraded.Load(),
			Ejected:  r.gray[i].ejected.Load(),
			Samples:  func() int64 { st.mu.Lock(); defer st.mu.Unlock(); return st.n }(),
			RTTp50:   time.Duration(st.p50.Load()),
			RTTp99:   time.Duration(st.p99.Load()),
			EWMA:     time.Duration(st.ewma.Load()),
		})
	}
	return rep
}
