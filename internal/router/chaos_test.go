// Chaos tests: the forwarding plane must produce a correct verdict for
// every lookup even when the fabric drops, delays, or duplicates
// messages, and even while the routing table is being swapped under
// load. CI runs this file under -race with several SPAL_CHAOS_SEED
// values; locally the seed list below is used.
package router

import (
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"spal/internal/cache"
	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/metrics"
	"spal/internal/partition"
	"spal/internal/rtable"
	"spal/internal/stats"
)

// chaosSeeds returns the injector seeds to exercise: the single seed in
// SPAL_CHAOS_SEED when set (the CI chaos job runs a matrix of them), a
// fixed local list otherwise.
func chaosSeeds(t *testing.T) []uint64 {
	if s := os.Getenv("SPAL_CHAOS_SEED"); s != "" {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("bad SPAL_CHAOS_SEED %q: %v", s, err)
		}
		return []uint64{n}
	}
	return []uint64{1, 7, 1337}
}

func verdictMatches(v Verdict, o *lpm.Reference, a ip.Addr) bool {
	nh, _, ok := o.Lookup(a)
	return v.OK == ok && (!ok || v.NextHop == nh)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestChaosDroppedMessagesStillResolve is the headline acceptance check:
// with a seeded injector dropping 10% of fabric messages, every lookup
// still returns the reference-LPM verdict, and the retry/fallback
// counters show the robustness layer actually fired.
func TestChaosDroppedMessagesStillResolve(t *testing.T) {
	tbl := rtable.Small(2000, 7)
	oracle := lpm.NewReference(tbl)
	for _, seed := range chaosSeeds(t) {
		t.Run("seed="+strconv.FormatUint(seed, 10), func(t *testing.T) {
			r, err := New(tbl, WithLCs(4),
				WithFaultInjector(SeededFaults(FaultConfig{Seed: seed, DropRate: 0.10})),
				WithRequestTimeout(2*time.Millisecond), WithMaxRetries(2))
			if err != nil {
				t.Fatal(err)
			}
			defer r.Stop()

			var wg sync.WaitGroup
			errs := make(chan string, 64)
			for lc := 0; lc < 4; lc++ {
				wg.Add(1)
				go func(lc int) {
					defer wg.Done()
					rng := stats.NewRNG(seed + uint64(lc)*101)
					for i := 0; i < 400; i++ {
						var a ip.Addr
						if i%3 == 0 {
							a = rng.Uint32() // may be unmatched
						} else {
							a = tbl.RandomMatchedAddr(rng)
						}
						v, err := r.Lookup(lc, a)
						if err != nil {
							errs <- err.Error()
							return
						}
						if !verdictMatches(v, oracle, a) {
							errs <- "wrong verdict for " + ip.FormatAddr(a) + " served by " + v.ServedBy.String()
							return
						}
					}
				}(lc)
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Fatal(e)
			}

			s := r.Metrics()
			if s.Sum(MetricRetries)+s.Sum(MetricFallbacks) == 0 {
				t.Error("10% drops produced neither retries nor fallbacks")
			}
		})
	}
}

// TestChaosDelayDupDrop mixes all three fault modes over a cached router:
// correctness must survive duplicated replies (duplicate cache fills) and
// reordered delayed messages.
func TestChaosDelayDupDrop(t *testing.T) {
	tbl := rtable.Small(2000, 11)
	oracle := lpm.NewReference(tbl)
	for _, seed := range chaosSeeds(t) {
		t.Run("seed="+strconv.FormatUint(seed, 10), func(t *testing.T) {
			r, err := New(tbl, WithLCs(4), WithDefaultCache(),
				WithFaultInjector(SeededFaults(FaultConfig{
					Seed: seed, DropRate: 0.05, DupRate: 0.10,
					DelayRate: 0.20, MaxDelay: 2 * time.Millisecond,
				})),
				WithRequestTimeout(3*time.Millisecond), WithMaxRetries(2))
			if err != nil {
				t.Fatal(err)
			}
			defer r.Stop()

			var wg sync.WaitGroup
			errs := make(chan string, 64)
			for lc := 0; lc < 4; lc++ {
				wg.Add(1)
				go func(lc int) {
					defer wg.Done()
					rng := stats.NewRNG(seed ^ (uint64(lc) + 29))
					for i := 0; i < 300; i++ {
						a := tbl.RandomMatchedAddr(rng)
						v, err := r.Lookup(lc, a)
						if err != nil {
							errs <- err.Error()
							return
						}
						if !verdictMatches(v, oracle, a) {
							errs <- "wrong verdict for " + ip.FormatAddr(a)
							return
						}
					}
				}(lc)
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Fatal(e)
			}
		})
	}
}

// TestChaosDeadFabricFallback kills every request outright: the home LC
// is unreachable, so after the retry budget each lookup must degrade to
// the full-table fallback engine — still correct, marked
// ServedByFallback, and visible in the metrics.
func TestChaosDeadFabricFallback(t *testing.T) {
	tbl := rtable.Small(2000, 13)
	oracle := lpm.NewReference(tbl)
	dropRequests := func(m FabricMessage) FaultDecision {
		return FaultDecision{Drop: !m.Reply}
	}
	r, err := New(tbl, WithLCs(2), WithDefaultCache(),
		WithFaultInjector(dropRequests),
		WithRequestTimeout(time.Millisecond), WithMaxRetries(1))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	rng := stats.NewRNG(17)
	var remote []ip.Addr
	seen := map[ip.Addr]bool{}
	for len(remote) < 20 {
		a := tbl.RandomMatchedAddr(rng)
		if r.HomeLC(a) == 1 && !seen[a] {
			seen[a] = true
			remote = append(remote, a)
		}
	}
	for _, a := range remote {
		v, err := r.Lookup(0, a)
		if err != nil {
			t.Fatal(err)
		}
		if v.ServedBy != ServedByFallback {
			t.Fatalf("dead fabric: ServedBy = %s, want fallback", v.ServedBy)
		}
		if !verdictMatches(v, oracle, a) {
			t.Fatalf("fallback verdict wrong for %s", ip.FormatAddr(a))
		}
	}
	// Fallback results are cached: a repeat lookup is a plain cache hit.
	if v, _ := r.Lookup(0, remote[0]); v.ServedBy != ServedByCache {
		t.Errorf("repeat after fallback ServedBy = %s, want cache", v.ServedBy)
	}

	s := r.Metrics()
	lbl := metrics.L("lc", "0")
	if got := s.Sum(MetricFallbacks); got != 20 {
		t.Errorf("fallbacks = %v, want 20", got)
	}
	if got := s.Sum(MetricDeadlineExpired); got != 20 {
		t.Errorf("deadline expiries = %v, want 20", got)
	}
	if got := s.Sum(MetricRetries); got != 20 {
		t.Errorf("retries = %v, want 20 (one per lookup)", got)
	}
	if h, ok := s.HistValue(MetricLatency, lbl, metrics.L("served_by", "fallback")); !ok || h.Count != 20 {
		t.Errorf("fallback latency histogram count = %+v (ok=%v), want 20", h.Count, ok)
	}
}

// TestChaosUpdateHammer swaps between two tables while every LC serves
// lookups; each verdict must equal one of the two tables' reference-LPM
// answers (the update-window contract). This catches the whole
// wrong-partition poisoning bug class, not just a single interleaving —
// and the faulty variant stretches the in-flight windows with delayed,
// duplicated and dropped messages.
func TestChaosUpdateHammer(t *testing.T) {
	t1 := rtable.Small(1500, 7)
	t2 := rtable.Small(1500, 8)
	o1, o2 := lpm.NewReference(t1), lpm.NewReference(t2)

	run := func(t *testing.T, extra ...Option) {
		opts := append([]Option{WithLCs(4), WithDefaultCache()}, extra...)
		r, err := New(t1, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Stop()

		// An address pool matched in one table may miss in the other:
		// both outcomes must still agree with that table's oracle.
		rng := stats.NewRNG(23)
		pool := make([]ip.Addr, 0, 200)
		for i := 0; i < 100; i++ {
			pool = append(pool, t1.RandomMatchedAddr(rng), t2.RandomMatchedAddr(rng))
		}

		stop := make(chan struct{})
		errs := make(chan string, 64)
		var wg sync.WaitGroup
		for lc := 0; lc < 4; lc++ {
			wg.Add(1)
			go func(lc int) {
				defer wg.Done()
				rng := stats.NewRNG(uint64(lc)*31 + 5)
				for {
					select {
					case <-stop:
						return
					default:
					}
					a := pool[rng.Intn(len(pool))]
					v, err := r.Lookup(lc, a)
					if err != nil {
						return
					}
					if !verdictMatches(v, o1, a) && !verdictMatches(v, o2, a) {
						select {
						case errs <- "verdict for " + ip.FormatAddr(a) + " matches neither table (served by " + v.ServedBy.String() + ")":
						default:
						}
						return
					}
				}
			}(lc)
		}
		for i := 0; i < 20; i++ {
			next := t2
			if i%2 == 1 {
				next = t1
			}
			if err := r.UpdateTable(next); err != nil {
				t.Fatal(err)
			}
			time.Sleep(time.Millisecond)
		}
		close(stop)
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatal(e)
		}
		// 20 swaps end on t1; once the dust settles every verdict must
		// reflect it.
		for i := 0; i < 200; i++ {
			a := pool[i%len(pool)]
			v, err := r.Lookup(i%4, a)
			if err != nil {
				t.Fatal(err)
			}
			if !verdictMatches(v, o1, a) {
				t.Fatalf("post-churn verdict for %s does not match the final table", ip.FormatAddr(a))
			}
		}
	}

	t.Run("clean", func(t *testing.T) { run(t) })
	t.Run("faulty", func(t *testing.T) {
		run(t,
			WithFaultInjector(SeededFaults(FaultConfig{
				Seed: chaosSeeds(t)[0], DropRate: 0.05, DupRate: 0.05,
				DelayRate: 0.15, MaxDelay: time.Millisecond,
			})),
			WithRequestTimeout(2*time.Millisecond), WithMaxRetries(1))
	})
}

// TestStaleRequestAfterRehomeForwarded is the update-window poisoning
// regression: a request still in flight when UpdateTable re-homes its
// address must be forwarded to the new home, not resolved (and cached)
// at the old one — the old home would run LPM over the wrong partition
// and install the bogus result as a fresh LOC/REM entry that later local
// lookups hit.
func TestStaleRequestAfterRehomeForwarded(t *testing.T) {
	t1 := rtable.Small(2000, 7)
	t2 := rtable.New([]rtable.Route{
		{Prefix: ip.MustPrefix("10.0.0.0/8"), NextHop: 42},
		{Prefix: ip.MustPrefix("10.64.0.0/10"), NextHop: 43},
		{Prefix: ip.MustPrefix("192.168.0.0/16"), NextHop: 44},
		{Prefix: ip.MustPrefix("172.16.0.0/12"), NextHop: 45},
	})
	p1 := partition.Partition(t1, 2)
	p2 := partition.Partition(t2, 2)

	// An address homed at LC 1 under t1 but at LC 0 under t2.
	var addr ip.Addr
	found := false
	rng := stats.NewRNG(3)
	for i := 0; i < 100000 && !found; i++ {
		a := rng.Uint32()
		if p1.HomeLC(a) == 1 && p2.HomeLC(a) == 0 {
			addr, found = a, true
		}
	}
	if !found {
		t.Fatal("no re-homed address between the two partitionings; adjust tables")
	}

	r, err := New(t1, WithLCs(2), WithDefaultCache(), WithRequestTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := r.UpdateTable(t2); err != nil {
		t.Fatal(err)
	}

	// Replay the in-flight request: sent to the old home (LC 1) by LC 0
	// before the update, i.e. with the pre-update epoch 0.
	r.send(1, message{kind: mRequest, addr: addr, from: 0, epoch: 0})

	// LC 1 must forward it to the new home (LC 0), which executes the FE
	// and replies to the original requester; the requester drops the
	// reply as stale (epoch 0 < 1).
	st := r.Stats()
	waitFor(t, "stale reply at LC 0", func() bool { return st[0].StaleReplies.Load() == 1 })
	if got := st[1].ForwardedRequests.Load(); got != 1 {
		t.Errorf("LC 1 forwarded %d requests, want 1", got)
	}
	if got := st[1].FEExecs.Load(); got != 0 {
		t.Errorf("LC 1 ran %d FE executions over the wrong partition, want 0", got)
	}
	if got := st[1].RequestsSent.Load(); got != 0 {
		t.Errorf("LC 1 sent %d requests of its own, want 0 (pure forward)", got)
	}

	// The old home's cache must not hold the address at all.
	probeRes := make(chan cache.ProbeKind, 1)
	r.send(1, message{kind: mExec, do: func(lc *lineCard) { probeRes <- lc.cache.Probe(addr).Kind }})
	if k := <-probeRes; k != cache.Miss {
		t.Errorf("old home cached the re-homed address (probe = %d), want miss", k)
	}

	// And a local lookup at the old home agrees with the new table.
	v, err := r.Lookup(1, addr)
	if err != nil {
		t.Fatal(err)
	}
	if !verdictMatches(v, lpm.NewReference(t2), addr) {
		t.Errorf("post-update lookup at old home wrong: %+v", v)
	}
}

// TestCacheBypassCoalescesSecondLookup is the duplicate-dispatch
// regression: when a miss bypasses a fully waiting set (RecordMiss
// returns false), a second lookup for the same address misses again and
// must coalesce onto the pending dispatch instead of launching a second
// FE execution and fabric request.
func TestCacheBypassCoalescesSecondLookup(t *testing.T) {
	tbl := rtable.Small(2000, 7)
	oracle := lpm.NewReference(tbl)
	// One 4-block set, all of it REM quota: four in-flight remote misses
	// make every block wait, so a fifth address bypasses the cache. The
	// home LC's LOC quota is zero, so its FE results are never cached
	// and each request it receives costs one FE execution.
	cc := cache.Config{Blocks: 4, Assoc: 4, VictimBlocks: 0, MixPercent: 100, Policy: cache.LRU}
	r, err := New(tbl, WithLCs(2), WithCache(cc), WithRequestTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	rng := stats.NewRNG(5)
	var addrs []ip.Addr
	seen := map[ip.Addr]bool{}
	for len(addrs) < 5 {
		a := tbl.RandomMatchedAddr(rng)
		if r.HomeLC(a) == 1 && !seen[a] {
			seen[a] = true
			addrs = append(addrs, a)
		}
	}
	fill, bypass := addrs[:4], addrs[4]

	// Stall the home LC so the waiting blocks stay waiting.
	release := make(chan struct{})
	var once sync.Once
	unstall := func() { once.Do(func() { close(release) }) }
	defer unstall()
	r.send(1, message{kind: mExec, do: func(*lineCard) { <-release }})

	syncLC0 := func() {
		done := make(chan struct{})
		r.send(0, message{kind: mExec, do: func(*lineCard) { close(done) }})
		<-done
	}

	var chans []<-chan Verdict
	lookup := func(a ip.Addr) {
		ch, err := r.LookupAsync(0, a)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for _, a := range fill {
		lookup(a)
	}
	lookup(bypass)
	syncLC0()
	st := r.Stats()
	if got := st[0].RequestsSent.Load(); got != 5 {
		t.Fatalf("after 5 distinct misses, requests sent = %d, want 5", got)
	}

	lookup(bypass) // second miss for the bypassed address
	syncLC0()
	if got := st[0].RequestsSent.Load(); got != 5 {
		t.Errorf("second bypass miss re-dispatched: requests sent = %d, want 5", got)
	}
	if got := st[0].Coalesced.Load(); got != 1 {
		t.Errorf("coalesced = %d, want 1", got)
	}

	unstall()
	for i, ch := range chans {
		v := <-ch
		a := fill[0]
		if i >= 4 {
			a = bypass
		} else {
			a = fill[i]
		}
		if !verdictMatches(v, oracle, a) {
			t.Errorf("verdict %d wrong for %s", i, ip.FormatAddr(a))
		}
	}
	if got := st[1].FEExecs.Load(); got != 5 {
		t.Errorf("home LC FE executions = %d, want 5 (one per distinct address)", got)
	}
}
