// Tracing tests: hot-path allocation neutrality, span content for the
// cache-hit / remote / coalesce paths, propagation across a crash
// re-homing, and the chaos reconciliation contract between trace event
// counts and the router's metrics counters.
package router

import (
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/metrics"
	"spal/internal/rtable"
	"spal/internal/stats"
	"spal/internal/tracing"
)

// routedAddr returns an address the table actually routes, so warmed
// cache hits are hits on a real entry.
func routedAddr(t *testing.T, tbl *rtable.Table) ip.Addr {
	t.Helper()
	oracle := lpm.NewReference(tbl)
	rng := stats.NewRNG(99)
	for i := 0; i < 10000; i++ {
		a := rng.Uint32()
		if _, _, ok := oracle.Lookup(a); ok {
			return a
		}
	}
	t.Fatal("no routed address found")
	return 0
}

// TestLookupTracingDisabledAllocs is the benchmark-regression guard: a
// router with tracing compiled in but disabled (rate 0 or no option at
// all) must allocate exactly as much per hot-path lookup as the seed
// router did — zero additional allocations.
func TestLookupTracingDisabledAllocs(t *testing.T) {
	tbl := rtable.Small(2000, 7)
	addr := routedAddr(t, tbl)
	measure := func(opts ...Option) float64 {
		// A long request timeout quiets the deadline ticker and health
		// monitor so AllocsPerRun sees only the lookup path.
		base := []Option{WithLCs(1), WithDefaultCache(), WithRequestTimeout(time.Second)}
		r, err := New(tbl, append(base, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Stop()
		for i := 0; i < 3; i++ { // warm the cache: steady state is a hit
			if _, err := r.Lookup(0, addr); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(500, func() {
			if _, err := r.Lookup(0, addr); err != nil {
				t.Fatal(err)
			}
		})
	}

	vanilla := measure()
	disabled := measure(WithTraceSampling(0))
	if disabled > vanilla+0.01 {
		t.Errorf("tracing disabled allocates on the hot path: %.2f allocs/lookup vs %.2f vanilla", disabled, vanilla)
	}
	// Sanity: full sampling must actually be doing work (one trace
	// allocation per lookup), or the guard above is testing nothing.
	full := measure(WithTraceSampling(1))
	if full < vanilla+0.5 {
		t.Errorf("rate-1.0 sampling shows no allocation (%.2f vs %.2f): tracing is not recording", full, vanilla)
	}
}

// TestTraceCacheHitAndRemote checks the span story of the two basic
// lookup shapes: a remote miss (probe, fabric send/recv, home FE, fill,
// verdict) and a warmed cache hit (probe, verdict).
func TestTraceCacheHitAndRemote(t *testing.T) {
	tbl := rtable.Small(2000, 7)
	r, err := New(tbl, WithLCs(4), WithDefaultCache(), WithTraceSampling(1))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	addr := routedAddr(t, tbl)
	from := (r.HomeLC(addr) + 1) % 4 // submit away from home: the miss goes remote
	if _, err := r.Lookup(from, addr); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Lookup(from, addr); err != nil {
		t.Fatal(err)
	}

	traces := r.Traces()
	if len(traces) != 2 {
		t.Fatalf("journal has %d traces, want 2", len(traces))
	}
	remote, hit := traces[0], traces[1]

	if remote.ServedBy != ServedByRemote.String() {
		t.Errorf("first lookup served by %q, want remote", remote.ServedBy)
	}
	for _, k := range []tracing.EventKind{tracing.EvArrival, tracing.EvProbe, tracing.EvFabricSend, tracing.EvFabricRecv, tracing.EvFEExec, tracing.EvFill, tracing.EvVerdict} {
		if remote.CountKind(k) == 0 {
			t.Errorf("remote trace missing %s event: %+v", k, remote.EventSlice())
		}
	}
	for _, e := range remote.EventSlice() {
		switch e.Kind {
		case tracing.EvFabricSend:
			if e.A != int64(r.HomeLC(addr)) || e.B != 1 {
				t.Errorf("fabric_send A=%d B=%d, want home=%d attempt=1", e.A, e.B, r.HomeLC(addr))
			}
		case tracing.EvFEExec:
			if e.A <= 0 {
				t.Errorf("fe_exec recorded no execution time: %+v", e)
			}
		}
	}

	if hit.ServedBy != ServedByCache.String() {
		t.Errorf("second lookup served by %q, want cache", hit.ServedBy)
	}
	if hit.CountKind(tracing.EvProbe) != 1 || hit.CountKind(tracing.EvVerdict) != 1 {
		t.Errorf("cache-hit trace events: %+v", hit.EventSlice())
	}
	if hit.CountKind(tracing.EvFabricSend) != 0 {
		t.Error("cache hit recorded a fabric send")
	}
	if hit.ID == remote.ID {
		t.Error("trace ids not unique")
	}
}

// TestTracePropagationAcrossRehome parks a lookup at an LC, crashes
// that LC, and requires the replayed lookup's verdict to carry one
// trace that records the re-homing and a coherent span story.
func TestTracePropagationAcrossRehome(t *testing.T) {
	tbl := rtable.Small(2000, 19)
	oracle := lpm.NewReference(tbl)

	// Gate-controlled fabric: while closed, every lookup message touching
	// LC 1 is dropped (heartbeats pass), so a lookup submitted at LC 1
	// for a remote home stays parked in LC 1's waitlist.
	var gateOpen atomic.Bool
	inj := func(m FabricMessage) FaultDecision {
		if m.Heartbeat || gateOpen.Load() {
			return FaultDecision{}
		}
		if m.From == 1 || m.To == 1 {
			return FaultDecision{Drop: true}
		}
		return FaultDecision{}
	}
	r, err := New(tbl, WithLCs(4),
		WithFaultInjector(inj),
		WithTraceSampling(1), WithTraceJournal(1<<12),
		WithRequestTimeout(5*time.Millisecond), WithMaxRetries(100),
		WithHealthThresholds(4*time.Millisecond, 8*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	addr := routedAddr(t, tbl)
	if r.HomeLC(addr) == 1 {
		t.Fatalf("test address homed at the LC under test") // rtable.Small(…,19) does not do this
	}
	resp, err := r.LookupAsync(1, addr)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "the lookup to park at LC 1", func() bool {
		v, _ := r.Metrics().Value(MetricWaitlistDepth, metrics.L("lc", "1"))
		return v >= 1
	})

	if err := r.KillLC(1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "the parked lookup to be replayed", func() bool {
		return r.Metrics().Sum(MetricReplayed) >= 1
	})
	gateOpen.Store(true)

	var v Verdict
	select {
	case v = <-resp:
	case <-time.After(5 * time.Second):
		t.Fatal("replayed lookup never resolved")
	}
	if !verdictMatches(v, oracle, addr) {
		t.Errorf("replayed verdict %+v disagrees with the oracle", v)
	}

	var got *tracing.LookupTrace
	traces := r.Traces()
	for i := range traces {
		if traces[i].Addr == addr && traces[i].Flags&tracing.FlagRehomed != 0 {
			if got != nil {
				t.Fatalf("two re-homed traces for one lookup: ids %d and %d", got.ID, traces[i].ID)
			}
			got = &traces[i]
		}
	}
	if got == nil {
		t.Fatalf("no trace with FlagRehomed among %d journaled traces", len(traces))
	}
	if got.CountKind(tracing.EvRehome) != 1 {
		t.Errorf("rehome events = %d, want 1", got.CountKind(tracing.EvRehome))
	}
	if got.CountKind(tracing.EvVerdict) != 1 {
		t.Errorf("verdict events = %d, want exactly 1", got.CountKind(tracing.EvVerdict))
	}
	if got.CountKind(tracing.EvFabricSend) < 1 {
		t.Error("re-homed trace never sent a fabric request")
	}
	// The reply's span must agree with the request's forwarding budget.
	for _, e := range got.EventSlice() {
		if e.Kind == tracing.EvFabricRecv && (e.B < 0 || e.B > maxForwardHops) {
			t.Errorf("fabric_recv hop count %d outside [0,%d]", e.B, maxForwardHops)
		}
	}
}

// TestChaosTracesReconcileWithMetrics is the acceptance check for trace
// exactness: at rate 1.0 under seeded faults plus a mid-run LC crash,
// the per-kind event totals across every journaled trace must equal the
// router's own retry/deadline/replay counters for the run. Counts stay
// exact even when a trace's event array overflows, so this holds under
// arbitrarily ugly retry storms.
func TestChaosTracesReconcileWithMetrics(t *testing.T) {
	tbl := rtable.Small(2000, 7)
	oracle := lpm.NewReference(tbl)
	const psi, perLC = 4, 1000
	for _, seed := range chaosSeeds(t) {
		t.Run("seed="+strconv.FormatUint(seed, 10), func(t *testing.T) {
			r, err := New(tbl, WithLCs(psi), WithDefaultCache(),
				WithFaultInjector(SeededFaults(FaultConfig{
					Seed: seed, DropRate: 0.08, DupRate: 0.05, DelayRate: 0.1, MaxDelay: time.Millisecond,
				})),
				WithRequestTimeout(2*time.Millisecond), WithMaxRetries(2),
				WithHealthThresholds(4*time.Millisecond, 8*time.Millisecond),
				WithTraceSampling(1), WithTraceJournal(1<<15))
			if err != nil {
				t.Fatal(err)
			}
			defer r.Stop()

			before := r.Metrics()
			var served atomic.Int64
			var wg sync.WaitGroup
			for lc := 0; lc < psi; lc++ {
				wg.Add(1)
				go func(lc int) {
					defer wg.Done()
					rng := stats.NewRNG(seed ^ uint64(lc))
					for i := 0; i < perLC; i++ {
						a := rng.Uint32()
						v, err := r.Lookup(lc, a)
						if err != nil {
							t.Error(err)
							return
						}
						if v.ServedBy != ServedByFallback && !verdictMatches(v, oracle, a) {
							t.Errorf("lookup %s: verdict %+v disagrees with oracle", ip.FormatAddr(a), v)
							return
						}
						served.Add(1)
					}
				}(lc)
			}

			waitFor(t, "traffic to start", func() bool { return served.Load() > 50 })
			if err := r.KillLC(3); err != nil {
				t.Fatal(err)
			}
			waitFor(t, "LC 3 down", func() bool { return r.LCStates()[3] == LCDown })
			wg.Wait()

			delta := r.Metrics().Delta(before)
			traces := r.Traces()
			var retries, deadlines, rehomes int
			for i := range traces {
				tr := &traces[i]
				retries += tr.CountKind(tracing.EvRetry)
				deadlines += tr.CountKind(tracing.EvDeadline)
				rehomes += tr.CountKind(tracing.EvRehome)
				if tr.CountKind(tracing.EvVerdict) != 1 {
					t.Errorf("trace %d finished with %d verdict events", tr.ID, tr.CountKind(tracing.EvVerdict))
				}
			}
			check := func(what string, got int, metric string) {
				if want := int(delta.Sum(metric)); got != want {
					t.Errorf("%s: traces record %d, counters say %d", what, got, want)
				}
			}
			check("retries", retries, MetricRetries)
			check("deadline expiries", deadlines, MetricDeadlineExpired)
			check("re-homed replays", rehomes, MetricReplayed)
		})
	}
}

// TestHealthy exercises the /healthz predicate across the lifecycle.
func TestHealthy(t *testing.T) {
	r, err := New(rtable.Small(500, 3), WithLCs(2),
		WithRequestTimeout(4*time.Millisecond),
		WithHealthThresholds(4*time.Millisecond, 8*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Healthy() {
		t.Error("fresh router not healthy")
	}
	if err := r.KillLC(1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "LC 1 down", func() bool { return r.LCStates()[1] == LCDown })
	if r.Healthy() {
		t.Error("healthy with LC 1 down")
	}
	if err := r.RestoreLC(1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "LC 1 healthy again", func() bool { return r.Healthy() })
	r.Stop()
	if r.Healthy() {
		t.Error("healthy after Stop")
	}
}

// TestTracesNilWhenDisabled pins the disabled surface: no tracer, no
// journal, no panic.
func TestTracesNilWhenDisabled(t *testing.T) {
	r, _ := newTestRouter(t, 2, true)
	if _, err := r.Lookup(0, 42); err != nil {
		t.Fatal(err)
	}
	if got := r.Traces(); got != nil {
		t.Errorf("Traces() on an untraced router = %v, want nil", got)
	}
}

func benchLookup(b *testing.B, opts ...Option) {
	tbl := rtable.Small(2000, 7)
	base := []Option{WithLCs(1), WithDefaultCache(), WithRequestTimeout(time.Second)}
	r, err := New(tbl, append(base, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Stop()
	rng := stats.NewRNG(5)
	addrs := make([]ip.Addr, 256)
	for i := range addrs {
		addrs[i] = rng.Uint32()
		r.Lookup(0, addrs[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Lookup(0, addrs[i%len(addrs)])
	}
}

func BenchmarkLookupTracingOff(b *testing.B) { benchLookup(b) }
func BenchmarkLookupTracingOn(b *testing.B)  { benchLookup(b, WithTraceSampling(1)) }
