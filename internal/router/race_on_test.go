//go:build race

package router

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation allocates on paths that are
// zero-alloc in production builds.
const raceEnabled = true
