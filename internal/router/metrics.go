package router

import (
	"strconv"
	"time"

	"spal/internal/metrics"
)

// lcLatency is one line card's lookup-latency histograms, split by where
// the result came from. The histograms are lock-free: the LC goroutine
// records, Metrics reads concurrently.
type lcLatency struct {
	cache, fe, remote, fallback, hedge metrics.Histogram
}

// observe records one completed lookup. Zero start times (no submission
// timestamp) are skipped. A non-zero traceID pins the sample's trace as
// the histogram bucket's exemplar, linking /metrics to /debug/spal/traces.
func (l *lcLatency) observe(s ServedBy, start time.Time, traceID uint64) {
	if start.IsZero() {
		return
	}
	h := l.hist(s)
	if h == nil {
		return
	}
	d := time.Since(start).Nanoseconds()
	if traceID != 0 {
		h.ObserveExemplar(d, traceID)
		return
	}
	h.Observe(d)
}

func (l *lcLatency) hist(s ServedBy) *metrics.Histogram {
	switch s {
	case ServedByCache:
		return &l.cache
	case ServedByFE:
		return &l.fe
	case ServedByRemote:
		return &l.remote
	case ServedByFallback:
		return &l.fallback
	case ServedByHedge:
		return &l.hedge
	}
	return nil
}

// Metric names exported by Router.Metrics. DESIGN.md maps these onto the
// paper's tables and figures.
const (
	MetricLookups        = "spal_router_lookups_total"
	MetricCacheHits      = "spal_router_cache_hits_total"
	MetricFEExecs        = "spal_router_fe_execs_total"
	MetricFabricRequests = "spal_router_fabric_requests_total"
	MetricFabricReplies  = "spal_router_fabric_replies_total"
	MetricCoalesced      = "spal_router_coalesced_lookups_total"
	MetricStaleReplies   = "spal_router_stale_replies_total"
	MetricWaitlistDepth  = "spal_router_waitlist_depth"
	MetricHitRatio       = "spal_router_cache_hit_ratio"
	MetricLatency        = "spal_router_lookup_latency_ns"
	// Batch data-plane metrics (see batch.go). RequestsSent/RepliesSent
	// count fabric messages, so the batch counters below tell how many of
	// those were coalesced multi-address batches.
	MetricBatches             = "spal_router_batches_total"
	MetricBatchFabricRequests = "spal_router_batch_fabric_requests_total"
	MetricBatchFabricReplies  = "spal_router_batch_fabric_replies_total"
	// Robustness metrics (failure model; see the package comment).
	MetricRetries         = "spal_router_retries_total"
	MetricFallbacks       = "spal_router_fallbacks_total"
	MetricDeadlineExpired = "spal_router_deadline_expired_total"
	MetricForwarded       = "spal_router_requests_forwarded_total"
	// Incremental-update metrics (see updates.go).
	MetricUpdateBatches  = "spal_router_update_batches_total"
	MetricUpdateEvents   = "spal_router_update_events_total"
	MetricUpdatesApplied = "spal_router_updates_applied_total"
	MetricStaleGen       = "spal_router_stale_gen_replies_total"
	MetricRebalances     = "spal_router_rebalances_total"
	MetricGeneration     = "spal_router_table_generation"
	MetricReplication    = "spal_router_partition_replication"
	// Lifecycle metrics (see lifecycle.go).
	MetricWaiters       = "spal_router_waiters"
	MetricLCState       = "spal_router_lc_state"
	MetricSuspects      = "spal_router_suspect_transitions_total"
	MetricRehomes       = "spal_router_rehomes_total"
	MetricReplayed      = "spal_router_replayed_lookups_total"
	MetricDrains        = "spal_router_drains_total"
	MetricDrainDuration = "spal_router_drain_duration_ns"
	// Overload-control metrics (see overload.go). Only routers built
	// WithOverload emit these, so snapshots of a default router are
	// byte-identical to earlier releases.
	MetricShed             = "spal_router_shed_total"
	MetricWaitlistOverflow = "spal_router_waitlist_overflow_total"
	MetricInboxDepth       = "spal_router_inbox_depth"
	MetricRetryBudget      = "spal_router_retry_budget"
	MetricBudgetExhausted  = "spal_router_retry_budget_exhausted_total"
	MetricBreakerState     = "spal_router_breaker_state"
	MetricBreakerShorts    = "spal_router_breaker_short_circuits_total"
	MetricBreakerOpens     = "spal_router_breaker_opens_total"
	MetricBreakerCloses    = "spal_router_breaker_closes_total"
	// Integrity metrics (see scrub.go / corrupt.go). Emitted only when
	// the scrubber or the corruption injector is enabled, so snapshots of
	// a default router are byte-identical to earlier releases.
	MetricScrubCycles         = "spal_router_scrub_cycles_total"
	MetricScrubSamples        = "spal_router_scrub_samples_total"
	MetricScrubRepairs        = "spal_router_scrub_repairs_total"
	MetricIntegrityMismatches = "spal_router_integrity_mismatches_total"
	MetricIntegrityScore      = "spal_router_integrity_score"
	MetricQuarantines         = "spal_router_quarantines_total"
	MetricRebuilds            = "spal_router_rebuilds_total"
	MetricCorruptions         = "spal_router_corruptions_injected_total"
	// Gray-failure metrics (see gray.go). Emitted only when the gray
	// subsystem is enabled, so snapshots of a default router are
	// byte-identical to earlier releases.
	MetricFabricRTTp50  = "spal_router_fabric_rtt_p50_ns"
	MetricFabricRTTp99  = "spal_router_fabric_rtt_p99_ns"
	MetricLCDegraded    = "spal_router_lc_degraded"
	MetricHedges        = "spal_router_hedges_total"
	MetricEjectServed   = "spal_router_eject_served_total"
	MetricEjections     = "spal_router_ejections_total"
	MetricEjectRestores = "spal_router_eject_restores_total"
	MetricGrayDegrades  = "spal_router_gray_degrades_total"
	MetricGrayRecovers  = "spal_router_gray_recovers_total"
)

// Metrics returns an immutable snapshot of every router metric: the
// per-LC event counters (labeled lc="<id>"), lookup-latency histograms in
// nanoseconds (labeled lc and served_by="cache"|"fe"|"remote"), the live
// waitlist depth, and — while the router is running — each LR-cache's
// counters and per-origin occupancy, collected on the owning LC goroutine
// so no lock is shared with the hot path.
//
// Snapshots support Delta for interval rates and WritePrometheus for
// export; see internal/metrics.
func (r *Router) Metrics() *metrics.Snapshot {
	s := metrics.NewSnapshot()

	// LR-cache state is goroutine-private: collect it by running a closure
	// on each LC. Send to all LCs first, then gather, so collection is
	// parallel. A stopped router skips this (the cache views are frozen
	// anyway) and still reports every atomic counter.
	views := make([]*metrics.Snapshot, r.cfg.NumLCs)
	if !r.stopped.Load() {
		dones := make([]chan struct{}, r.cfg.NumLCs)
		for i := range r.lcs {
			view := metrics.NewSnapshot()
			done := make(chan struct{})
			views[i], dones[i] = view, done
			lbl := metrics.L("lc", strconv.Itoa(i))
			ok := r.sendCtrl(i, message{kind: mExec, do: func(lc *lineCard) {
				if lc.cache != nil {
					lc.cache.MetricsInto(view, lbl)
				}
				close(done)
			}})
			if !ok {
				dones[i] = nil
			}
		}
		for i, done := range dones {
			if done == nil {
				continue
			}
			select {
			case <-done:
			case <-r.quit:
				views[i] = nil
			}
		}
	}

	var hits, probes float64
	for i, lc := range r.lcs {
		lbl := metrics.L("lc", strconv.Itoa(i))
		s.Counter(MetricLookups, "Lookups submitted at this line card.", float64(lc.stats.Lookups.Load()), lbl)
		s.Counter(MetricCacheHits, "Lookups answered by this LC's LR-cache (incl. victim hits).", float64(lc.stats.CacheHits.Load()), lbl)
		s.Counter(MetricFEExecs, "Forwarding-engine executions at this LC.", float64(lc.stats.FEExecs.Load()), lbl)
		s.Counter(MetricFabricRequests, "Lookup requests this LC sent over the fabric.", float64(lc.stats.RequestsSent.Load()), lbl)
		s.Counter(MetricFabricReplies, "Lookup replies this LC sent over the fabric.", float64(lc.stats.RepliesSent.Load()), lbl)
		s.Counter(MetricCoalesced, "Lookups coalesced onto an in-flight miss.", float64(lc.stats.Coalesced.Load()), lbl)
		s.Counter(MetricBatches, "Batch descriptors admitted at this LC.", float64(lc.stats.Batches.Load()), lbl)
		s.Counter(MetricBatchFabricRequests, "Coalesced multi-address fabric requests sent by this LC.", float64(lc.stats.BatchRequestsSent.Load()), lbl)
		s.Counter(MetricBatchFabricReplies, "Coalesced multi-address fabric replies sent by this LC.", float64(lc.stats.BatchRepliesSent.Load()), lbl)
		s.Counter(MetricStaleReplies, "Fabric replies dropped by the table-update epoch guard.", float64(lc.stats.StaleReplies.Load()), lbl)
		s.Counter(MetricRetries, "Fabric requests re-sent after a deadline expiry.", float64(lc.stats.Retries.Load()), lbl)
		s.Counter(MetricFallbacks, "Lookups served by the full-table fallback engine.", float64(lc.stats.Fallbacks.Load()), lbl)
		s.Counter(MetricDeadlineExpired, "Pending lookups whose fabric retry budget ran out.", float64(lc.stats.DeadlineExpired.Load()), lbl)
		s.Counter(MetricForwarded, "In-flight requests forwarded because the address was re-homed.", float64(lc.stats.ForwardedRequests.Load()), lbl)
		s.Counter(MetricUpdatesApplied, "Route updates this LC streamed into its forwarding engine.", float64(lc.stats.UpdatesApplied.Load()), lbl)
		s.Counter(MetricStaleGen, "Fabric replies delivered but kept out of the cache by the generation guard.", float64(lc.stats.StaleGenReplies.Load()), lbl)
		s.Gauge(MetricWaitlistDepth, "Addresses with lookups parked awaiting a result.", float64(lc.pendingDepth.Load()), lbl)
		s.Gauge(MetricWaiters, "Individual lookups (local + remote) parked in this LC's waitlists.", float64(lc.waiters.Load()), lbl)
		s.Gauge(MetricLCState, "Line-card lifecycle state: 0=healthy 1=suspect 2=down 3=draining 4=quarantined.", float64(r.life[i].state.Load()), lbl)
		hits += float64(lc.stats.CacheHits.Load())
		probes += float64(lc.stats.Lookups.Load())

		if r.scrubPol.Enabled || r.corruptPol.Enabled {
			sc := r.scrub[i]
			s.Counter(MetricScrubSamples, "Engine verdicts the integrity scrubber re-verified at this LC.",
				float64(sc.samples.Load()), lbl)
			s.Counter(MetricIntegrityMismatches, "Scrub mismatches against the canonical table, by state kind.",
				float64(sc.engineMism.Load()), lbl, metrics.L("kind", "engine"))
			s.Counter(MetricIntegrityMismatches, "Scrub mismatches against the canonical table, by state kind.",
				float64(sc.cacheMism.Load()), lbl, metrics.L("kind", "cache"))
			s.Counter(MetricScrubRepairs, "Mismatched LR-cache entries evicted by the scrub audit.",
				float64(sc.cacheRepairs.Load()), lbl)
			score := 1.0
			if n := sc.samples.Load(); n > 0 {
				if score = 1 - float64(sc.engineMism.Load())/float64(n); score < 0 {
					score = 0
				}
			}
			s.Gauge(MetricIntegrityScore, "Per-LC integrity score: 1 − engine-mismatch fraction over all scrub samples.",
				score, lbl)
		}

		latHelp := "End-to-end lookup latency in nanoseconds, by result origin."
		s.Hist(MetricLatency, latHelp, lc.lat.cache.Snapshot(), lbl, metrics.L("served_by", "cache"))
		s.Hist(MetricLatency, latHelp, lc.lat.fe.Snapshot(), lbl, metrics.L("served_by", "fe"))
		s.Hist(MetricLatency, latHelp, lc.lat.remote.Snapshot(), lbl, metrics.L("served_by", "remote"))
		s.Hist(MetricLatency, latHelp, lc.lat.fallback.Snapshot(), lbl, metrics.L("served_by", "fallback"))

		if r.grayPol.Enabled {
			s.Hist(MetricLatency, latHelp, lc.lat.hedge.Snapshot(), lbl, metrics.L("served_by", "hedge"))
			s.Gauge(MetricFabricRTTp50, "Windowed p50 fabric round trip to this home LC, nanoseconds.",
				float64(r.rtt[i].p50.Load()), lbl)
			s.Gauge(MetricFabricRTTp99, "Windowed p99 fabric round trip to this home LC, nanoseconds.",
				float64(r.rtt[i].p99.Load()), lbl)
			degraded := 0.0
			if r.gray[i].degraded.Load() {
				degraded = 1
			}
			s.Gauge(MetricLCDegraded, "Gray-failure degraded signal: 1 while this LC's fabric RTT is an outlier.",
				degraded, lbl)
		}

		if r.ov.Enabled {
			for why, name := range shedReasonNames {
				s.Counter(MetricShed, "Messages/lookups shed by overload control, by reason.",
					float64(lc.ov.shed[why].Load()), lbl, metrics.L("reason", name))
			}
			s.Counter(MetricWaitlistOverflow, "Waiters refused because the per-address waitlist hit its cap.",
				float64(lc.ov.shed[shedWaitlistOverflow].Load()), lbl)
			s.Gauge(MetricInboxDepth, "Messages queued in this LC's bounded inbox.",
				float64(len(r.inboxes[i])), lbl)
			s.Gauge(MetricRetryBudget, "Retry tokens currently available at this LC.",
				float64(lc.ov.budgetMilli.Load())/1000, lbl)
			s.Counter(MetricBudgetExhausted, "Retries refused for lack of budget (lookup went straight to fallback).",
				float64(lc.ov.budgetExhausted.Load()), lbl)
			s.Counter(MetricBreakerShorts, "Fabric sends short-circuited to fallback by an open breaker.",
				float64(lc.ov.breakerShorts.Load()), lbl)
			s.Counter(MetricBreakerOpens, "Per-home breaker transitions into open at this LC.",
				float64(lc.ov.breakerOpens.Load()), lbl)
			s.Counter(MetricBreakerCloses, "Per-home breaker transitions back to closed at this LC.",
				float64(lc.ov.breakerCloses.Load()), lbl)
			for h := range lc.ov.breakers {
				if h == i {
					continue
				}
				s.Gauge(MetricBreakerState, "Circuit breaker toward home LC: 0=closed 1=open 2=half-open.",
					float64(lc.ov.breakers[h].state.Load()), lbl, metrics.L("home", strconv.Itoa(h)))
			}
		}
	}
	if probes > 0 {
		s.Gauge(MetricHitRatio, "Router-wide fraction of lookups served by an LR-cache.", hits/probes)
	}
	s.Counter(MetricUpdateBatches, "Incremental update batches applied (ApplyUpdates calls).", float64(r.updateBatches.Load()))
	s.Counter(MetricUpdateEvents, "Individual route announce/withdraw events applied incrementally.", float64(r.updateEvents.Load()))
	s.Counter(MetricRebalances, "Background partition rebalances (drift-triggered bit re-selections).", float64(r.rebalances.Load()))
	r.mu.Lock()
	gen, repl := r.gen, r.part.Stats().Replication
	r.mu.Unlock()
	s.Gauge(MetricGeneration, "Router-wide routing-table generation (update batches + full swaps).", float64(gen))
	s.Gauge(MetricReplication, "Live partitioning replication factor Φ* (Σ partition sizes / table size).", repl)
	s.Counter(MetricSuspects, "Healthy→Suspect demotions by the health monitor.", float64(r.suspects.Load()))
	s.Counter(MetricRehomes, "Partition re-homings after a line-card death.", float64(r.rehomes.Load()))
	s.Counter(MetricReplayed, "Parked lookups replayed after a re-homing.", float64(r.replayed.Load()))
	s.Counter(MetricDrains, "Completed administrative drains.", float64(r.drains.Load()))
	s.Hist(MetricDrainDuration, "DrainLC wall time in nanoseconds, partition swap through quiescence.", r.drainDur.Snapshot())
	if r.scrubPol.Enabled || r.corruptPol.Enabled {
		s.Counter(MetricScrubCycles, "Completed integrity scrub cycles.", float64(r.scrubCycles.Load()))
		s.Counter(MetricQuarantines, "Line cards quarantined by the integrity scrubber.", float64(r.quarantines.Load()))
		s.Counter(MetricRebuilds, "Self-healing LC rebuilds (fresh engine + rekey) after quarantine.", float64(r.rebuilds.Load()))
		var wrongFills, droppedInv float64
		for _, cs := range r.corruptStores {
			wrongFills += float64(cs.WrongFills())
			droppedInv += float64(cs.DroppedInvalidations())
		}
		corrHelp := "Corruptions injected by the chaos injector, by kind."
		s.Counter(MetricCorruptions, corrHelp, float64(r.engineFlips.Load()), metrics.L("kind", "engine_flip"))
		s.Counter(MetricCorruptions, corrHelp, wrongFills, metrics.L("kind", "wrong_fill"))
		s.Counter(MetricCorruptions, corrHelp, droppedInv, metrics.L("kind", "dropped_invalidate"))
	}
	if r.grayPol.Enabled {
		hedgeHelp := "Hedged remote lookups, by outcome."
		s.Counter(MetricHedges, hedgeHelp, float64(r.hedges.Load()), metrics.L("outcome", "fired"))
		s.Counter(MetricHedges, hedgeHelp, float64(r.hedgePrimaryLate.Load()), metrics.L("outcome", "primary_late"))
		s.Counter(MetricHedges, hedgeHelp, float64(r.hedgePrimaryLost.Load()), metrics.L("outcome", "primary_lost"))
		s.Counter(MetricHedges, hedgeHelp, float64(r.hedgeBudgetDenied.Load()), metrics.L("outcome", "budget_denied"))
		s.Counter(MetricEjectServed, "Lookups answered from the fallback engine because their home LC was ejected.",
			float64(r.ejectServed.Load()))
		s.Counter(MetricEjections, "Browned-out LC ejections (gen-pin steering engaged).", float64(r.ejections.Load()))
		s.Counter(MetricEjectRestores, "Ejections lifted after the LC's RTT score recovered.", float64(r.restores.Load()))
		s.Counter(MetricGrayDegrades, "Degraded-signal onsets across all LCs.", float64(r.grayDegrades.Load()))
		s.Counter(MetricGrayRecovers, "Degraded-signal recoveries across all LCs.", float64(r.grayRecovers.Load()))
	}
	for _, v := range views {
		s.Append(v)
	}
	return s
}
