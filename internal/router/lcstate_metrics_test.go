package router

import (
	"fmt"
	"testing"
	"time"

	"spal/internal/metrics"
	"spal/internal/rtable"
)

// lcStateSeries collects every spal_router_lc_state sample keyed by its
// lc label, failing on duplicates — a reborn slot must update its gauge
// in place, never grow a second series.
func lcStateSeries(t *testing.T, s *metrics.Snapshot) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for i := range s.Samples {
		sm := &s.Samples[i]
		if sm.Name != MetricLCState {
			continue
		}
		var lc string
		for _, l := range sm.Labels {
			if l.Key == "lc" {
				lc = l.Value
			}
		}
		if _, dup := out[lc]; dup {
			t.Fatalf("duplicate %s series for lc=%q", MetricLCState, lc)
		}
		out[lc] = sm.Value
	}
	return out
}

// TestLCStateGaugeReconciles pins the lifecycle gauge to the state
// machine through kill, rebirth, drain and restore: exactly ψ series at
// every step, each equal to the matching LCStates entry.
func TestLCStateGaugeReconciles(t *testing.T) {
	const psi = 4
	r, err := New(rtable.Small(1000, 11), WithLCs(psi),
		WithRequestTimeout(4*time.Millisecond),
		WithHealthThresholds(4*time.Millisecond, 8*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	reconcile := func(step string) {
		t.Helper()
		series := lcStateSeries(t, r.Metrics())
		states := r.LCStates()
		if len(series) != psi {
			t.Fatalf("%s: %d lc_state series, want psi=%d: %v", step, len(series), psi, series)
		}
		for i, st := range states {
			got, present := series[fmt.Sprint(i)]
			if !present {
				t.Fatalf("%s: no lc_state series for lc=%d", step, i)
			}
			if got != float64(st) {
				t.Errorf("%s: lc=%d gauge %v, state machine says %v (%s)", step, i, got, float64(st), st)
			}
		}
	}

	reconcile("fresh")

	if err := r.KillLC(2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "LC 2 down", func() bool { return r.LCStates()[2] == LCDown })
	reconcile("after kill")

	if err := r.RestoreLC(2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "LC 2 reborn healthy", func() bool { return r.LCStates()[2] == LCHealthy })
	reconcile("after rebirth")

	if err := r.DrainLC(1); err != nil {
		t.Fatal(err)
	}
	reconcile("while drained")

	if err := r.RestoreLC(1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "LC 1 restored", func() bool { return r.LCStates()[1] == LCHealthy })
	reconcile("after restore")
}
