// Online integrity scrubbing and self-healing rebuild.
//
// The failure model here is silent state corruption (see corrupt.go): a
// forwarding engine or LR-cache entry that answers promptly but wrongly.
// No deadline fires, no retry triggers — the only way to notice is to
// recompute verdicts from the canonical routing table and compare. The
// scrubber does exactly that, riding the health ticker the lifecycle
// monitor already owns:
//
//   - Engine sweep: per cycle, per serving LC, K partition prefixes are
//     selected by a rotating cursor; for each, the authoritative verdict
//     at the prefix's first address is computed from the LC's canonical
//     partition table (rtable.LongestMatch — binary search, no trie
//     build) and compared against the LC's live engine on the owning
//     goroutine. P partition prefixes are therefore fully re-verified
//     every ceil(P/K) cycles, which bounds detection latency for any
//     range-poisoning corruption of a table prefix.
//
//   - Cache audit: the same control message walks every complete entry
//     in the LC's LR-cache (cache.AuditEntries) and compares it against
//     a router-wide full-table authority engine cached per generation.
//     Mismatched entries are evicted on the spot — a wrong or stale
//     cache line needs no rebuild, just removal — and counted.
//
// Both comparisons are generation-exact: the monitor snapshots r.gen
// under r.mu, and the closure skips an LC whose engine reflects a
// different generation (possible only across a crash/rebirth race; the
// next cycle re-samples it).
//
// Self-healing: engine mismatches accumulate per LC since its last
// rebuild; crossing QuarantineThreshold quarantines the LC. Quarantine
// reuses the machinery this repo already trusts instead of inventing a
// parallel path:
//
//   - Uncacheable replies, via the generation guard (updates.go): the
//     router-wide generation advances and every *other* LC adopts it (a
//     pure bump — no route changes, no invalidations), while the
//     quarantined LC keeps its old generation. Every reply it sends now
//     carries gen < the receiver's gen, so the PR-7 guard delivers the
//     value to parked lookups but keeps it out of every peer cache.
//
//   - Rebuild, via the crash-safe two-phase swap (router.go): phase 1
//     installs a freshly built engine from the canonical partition table
//     plus the current homeOf and generation; phase 2 rekeys — epoch
//     bump, cache flush, parked-lookup replay — so no lookup is lost
//     and no pre-rebuild reply can fill the fresh cache. Only the
//     quarantined LC pays a flush; every other cache keeps serving.
//
// A full partitioning swap (UpdateTable, re-home, drain/restore,
// rebalance) rebuilds every engine from the canonical table, so it is
// also an integrity repair: swapPartitioning clears quarantines and
// mismatch streaks when it succeeds.
package router

import (
	"context"
	"log/slog"
	"sync/atomic"
	"time"

	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/rtable"
)

// ScrubPolicy configures the online integrity scrubber. The zero value
// disables it; a disabled scrubber costs nothing anywhere (no wrapper, no
// ticker work, no extra metrics).
type ScrubPolicy struct {
	// Enabled turns the scrubber on.
	Enabled bool
	// Interval is the minimum time between scrub cycles. The scrubber
	// rides the health ticker, so the effective cadence is
	// max(Interval, timeout/4). <= 0 selects the default (4 ticks).
	Interval time.Duration
	// SamplesPerLC is K: how many partition prefixes are re-verified
	// against the canonical table per LC per cycle (rotating cursor, so
	// a table of P prefixes is fully swept every ceil(P/K) cycles).
	// <= 0 selects the default (32).
	SamplesPerLC int
	// QuarantineThreshold is the number of engine mismatches accumulated
	// since the LC's last rebuild that trigger quarantine. <= 0 selects
	// the default (1: any confirmed engine mismatch quarantines).
	QuarantineThreshold int
	// AutoRepair rebuilds a quarantined LC immediately (fresh engine from
	// the canonical table, two-phase swap, parked-lookup replay). False
	// leaves the LC quarantined — still serving, its replies fenced out
	// of peer caches by the generation guard — until RestoreLC or the
	// next full swap repairs it.
	AutoRepair bool
}

// DefaultScrubPolicy enables scrubbing with the default cadence,
// sampling width, single-mismatch quarantine, and automatic repair.
func DefaultScrubPolicy() ScrubPolicy {
	return ScrubPolicy{Enabled: true, AutoRepair: true}
}

func normalizeScrub(p ScrubPolicy, tick time.Duration) ScrubPolicy {
	if !p.Enabled {
		return p
	}
	if p.Interval <= 0 {
		p.Interval = 4 * tick
	}
	if p.SamplesPerLC <= 0 {
		p.SamplesPerLC = 32
	}
	if p.QuarantineThreshold <= 0 {
		p.QuarantineThreshold = 1
	}
	return p
}

// lcScrub is one LC's integrity bookkeeping. The counters are atomic
// (written on the LC goroutine inside the scrub closure, read by
// Metrics/Integrity from anywhere); cursor is monitor-only under r.mu.
type lcScrub struct {
	cursor       int // next partition-prefix index the engine sweep samples
	samples      atomic.Int64
	engineMism   atomic.Int64
	cacheMism    atomic.Int64
	cacheRepairs atomic.Int64
	// streak counts engine mismatches since the last rebuild; crossing
	// the policy threshold quarantines the LC, a rebuild or full swap
	// resets it.
	streak atomic.Int64
}

// scrubAuthorityLocked returns the full-table authority engine the cache
// audit compares against, rebuilt lazily when updates have moved the
// table since the last cycle. r.mu must be held.
func (r *Router) scrubAuthorityLocked(gen uint64) lpm.Engine {
	if r.scrubAuth == nil || r.scrubAuthGen != gen {
		r.scrubAuth = lpm.NewReferenceEngine(r.part.Full())
		r.scrubAuthGen = gen
	}
	return r.scrubAuth
}

// maybeScrubLocked is the health ticker's scrub hook: one cycle samples K
// prefixes per serving LC against the canonical table, audits every
// LR-cache entry against the full-table authority, and quarantines (and,
// under AutoRepair, rebuilds) any LC whose mismatch streak crossed the
// threshold. Runs synchronously — the monitor waits for every LC's
// verification closure (with the same exited/quit escapes the swap
// barrier uses) so quarantine decisions see this cycle's counters. r.mu
// must be held.
func (r *Router) maybeScrubLocked(now time.Time) {
	if !r.scrubPol.Enabled || now.Sub(r.lastScrub) < r.scrubPol.Interval {
		return
	}
	r.lastScrub = now
	r.scrubCycles.Add(1)
	gen := r.gen
	auth := r.scrubAuthorityLocked(gen)
	dones := make([]chan struct{}, r.cfg.NumLCs)
	for i := range r.lcs {
		if st := r.life[i].state.Load(); st == LCDown || st == LCDraining || st == LCQuarantined {
			continue
		}
		tbl := r.part.Table(i)
		n := tbl.Len()
		if n == 0 {
			continue
		}
		k := r.scrubPol.SamplesPerLC
		if k > n {
			k = n
		}
		s := r.scrub[i]
		start := s.cursor
		s.cursor = (s.cursor + k) % n
		// The sample set: each selected prefix's first address, with the
		// authoritative verdict precomputed here from the canonical
		// partition snapshot (allocation is fine — this is the cold
		// monitor path, never a data path).
		addrs := make([]ip.Addr, k)
		want := make([]rtable.NextHop, k)
		routes := tbl.Routes()
		for j := 0; j < k; j++ {
			a := routes[(start+j)%n].Prefix.FirstAddr()
			addrs[j] = a
			nh := rtable.NoNextHop
			if rt, ok := tbl.LongestMatch(a); ok {
				nh = rt.NextHop
			}
			want[j] = nh
		}
		done := make(chan struct{})
		sent := r.sendCtrlSwap(i, message{kind: mExec, do: func(lc *lineCard) {
			defer close(done)
			if lc.gen != gen {
				// The engine reflects another generation (crash/rebirth
				// race); comparing would report phantom mismatches. The
				// next cycle re-samples.
				return
			}
			mism := 0
			for j, a := range addrs {
				nh, _, ok := lc.engine.Lookup(a)
				if !ok {
					nh = rtable.NoNextHop
				}
				if nh != want[j] {
					mism++
				}
			}
			s.samples.Add(int64(len(addrs)))
			if mism > 0 {
				s.engineMism.Add(int64(mism))
				s.streak.Add(int64(mism))
			}
			if lc.cache != nil {
				bad := 0
				repaired := lc.cache.AuditEntries(func(a ip.Addr, nh rtable.NextHop) bool {
					wantNH, _, ok := auth.Lookup(a)
					if !ok {
						wantNH = rtable.NoNextHop
					}
					if nh == wantNH {
						return true
					}
					bad++
					return false // evict: removal is the whole repair
				})
				if bad > 0 {
					s.cacheMism.Add(int64(bad))
					s.cacheRepairs.Add(int64(repaired))
				}
			}
		}})
		if !sent {
			return
		}
		dones[i] = done
	}
	for i, d := range dones {
		if d == nil {
			continue
		}
		select {
		case <-d:
		case <-r.life[i].exited:
			// Crashed mid-scrub; rehoming rebuilds the slot from scratch.
		case <-r.quit:
			return
		}
	}
	thr := int64(r.scrubPol.QuarantineThreshold)
	for i := range r.lcs {
		if st := r.life[i].state.Load(); st != LCHealthy && st != LCSuspect {
			continue
		}
		if r.scrub[i].streak.Load() < thr {
			continue
		}
		r.quarantineLocked(i)
		if r.scrubPol.AutoRepair {
			r.rebuildLocked(i)
		}
	}
}

// quarantineLocked flags LC i as integrity-compromised and fences its
// replies out of every peer cache: the router-wide generation advances
// and every other LC adopts it via an empty mApplyUpdates (a pure
// generation bump — no route changes, no invalidations, no flush), while
// i keeps its old generation until rebuilt. From that point the
// generation guard (m.gen < lc.gen, see updates.go) classifies every
// reply i sends as stale at the receiver: delivered to parked lookups,
// never cached. r.mu must be held.
func (r *Router) quarantineLocked(i int) {
	r.life[i].state.Store(LCQuarantined)
	r.quarantines.Add(1)
	r.scrubLog("quarantine", slog.Int("lc", i), slog.Int64("engine_mismatches", r.scrub[i].streak.Load()))
	r.gen++
	dones := make([]chan struct{}, r.cfg.NumLCs)
	for j := 0; j < r.cfg.NumLCs; j++ {
		if j == i {
			continue
		}
		dones[j] = make(chan struct{})
		if !r.sendCtrlSwap(j, message{kind: mApplyUpdates, gen: r.gen, swapDone: dones[j]}) {
			return
		}
	}
	for j, d := range dones {
		if d == nil {
			continue
		}
		select {
		case <-d:
		case <-r.life[j].exited:
			// Crashed; the reborn slot adopts the current generation.
		case <-r.quit:
			return
		}
	}
}

// rebuildLocked restores a quarantined LC: phase 1 installs a freshly
// built engine from the canonical partition table (with the current
// homeOf and generation) via the same crash-safe swap message
// UpdateTable uses; phase 2 rekeys — epoch bump, cache flush, parked-
// lookup replay — so no lookup is lost and no pre-rebuild reply can
// fill the fresh cache. Only this LC pays the flush. r.mu must be held.
func (r *Router) rebuildLocked(i int) {
	phase := func(m message) bool {
		done := make(chan struct{})
		m.swapDone = done
		if !r.sendCtrlSwap(i, m) {
			return false
		}
		select {
		case <-done:
			return true
		case <-r.life[i].exited:
			// Crashed mid-rebuild: rehomeLocked rebuilds the slot from
			// scratch, an even stronger repair.
			return false
		case <-r.quit:
			return false
		}
	}
	if !phase(message{kind: mSwapEngine, engine: r.buildEngine(r.part.Table(i)), homeOf: r.part.HomeLC, gen: r.gen}) {
		return
	}
	if !phase(message{kind: mRekey}) {
		return
	}
	r.scrub[i].streak.Store(0)
	if r.life[i].state.Load() == LCQuarantined {
		r.life[i].state.Store(LCHealthy)
	}
	r.rebuilds.Add(1)
	r.scrubLog("rebuild", slog.Int("lc", i))
}

// scrubLog emits a scrub lifecycle record through the tracing plane's
// structured-log sink when one is installed (WithLogger).
func (r *Router) scrubLog(event string, attrs ...slog.Attr) {
	if r.cfg.TraceLogger == nil {
		return
	}
	r.cfg.TraceLogger.LogAttrs(context.Background(), slog.LevelWarn, "spal scrub "+event, attrs...)
}

// LCIntegrity is one line card's integrity record.
type LCIntegrity struct {
	LC    int
	State LCState
	// Samples is how many engine verdicts the scrubber has re-verified.
	Samples int64
	// EngineMismatches / CacheMismatches count verdicts and cache entries
	// that disagreed with the canonical table; CacheRepairs counts the
	// mismatched entries the audit evicted.
	EngineMismatches int64
	CacheMismatches  int64
	CacheRepairs     int64
	// Score is 1 − the engine-mismatch fraction over everything sampled
	// so far: 1.0 is a fully clean record, lower means corruption was
	// observed at some point in this LC's history.
	Score float64
}

// IntegrityReport is the router-wide integrity snapshot behind the
// spal_router_scrub_* / integrity metrics.
type IntegrityReport struct {
	ScrubCycles int64
	Quarantines int64
	Rebuilds    int64
	// Injection-side counters (zero unless corruption injection is on).
	EngineFlips          int64
	WrongFills           int64
	DroppedInvalidations int64
	LCs                  []LCIntegrity
}

// Integrity returns the current integrity snapshot: scrub and repair
// counters, injected-corruption counters, and the per-LC records.
func (r *Router) Integrity() IntegrityReport {
	rep := IntegrityReport{
		ScrubCycles: r.scrubCycles.Load(),
		Quarantines: r.quarantines.Load(),
		Rebuilds:    r.rebuilds.Load(),
		EngineFlips: r.engineFlips.Load(),
	}
	for _, cs := range r.corruptStores {
		rep.WrongFills += cs.WrongFills()
		rep.DroppedInvalidations += cs.DroppedInvalidations()
	}
	for i, s := range r.scrub {
		li := LCIntegrity{
			LC:               i,
			State:            r.life[i].state.Load(),
			Samples:          s.samples.Load(),
			EngineMismatches: s.engineMism.Load(),
			CacheMismatches:  s.cacheMism.Load(),
			CacheRepairs:     s.cacheRepairs.Load(),
			Score:            1,
		}
		if li.Samples > 0 {
			li.Score = 1 - float64(li.EngineMismatches)/float64(li.Samples)
			if li.Score < 0 {
				li.Score = 0
			}
		}
		rep.LCs = append(rep.LCs, li)
	}
	return rep
}
