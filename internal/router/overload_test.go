// Overload-control tests: admission shedding, block mode, waitlist caps,
// retry budgets, circuit breakers, Stop under full inboxes, and the
// chaos/soak runs the CI overload job drives. The disabled-by-default
// guarantee (a router without WithOverload behaves exactly as before) is
// covered by every pre-existing test in this package.
package router

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/metrics"
	"spal/internal/rtable"
	"spal/internal/stats"
	"spal/internal/tracing"
)

// gateLC parks an LC's goroutine inside a control closure until the
// returned release func is called (or the router stops), so tests can
// fill its bounded inbox deterministically.
func gateLC(t *testing.T, r *Router, lc int) (release func()) {
	t.Helper()
	gate := make(chan struct{})
	entered := make(chan struct{})
	ok := r.sendCtrl(lc, message{kind: mExec, do: func(*lineCard) {
		close(entered)
		select {
		case <-gate:
		case <-r.quit:
		}
	}})
	if !ok {
		t.Fatal("sendCtrl failed on a running router")
	}
	<-entered
	var once sync.Once
	return func() { once.Do(func() { close(gate) }) }
}

// remoteAddrs returns n distinct table-matched addresses whose home LC is
// home but that are submitted elsewhere (arrival != home exercises the
// fabric path).
func remoteAddrs(t *testing.T, r *Router, tbl *rtable.Table, rng *stats.RNG, home, n int) []ip.Addr {
	t.Helper()
	seen := make(map[ip.Addr]bool)
	var out []ip.Addr
	for tries := 0; len(out) < n && tries < 200000; tries++ {
		a := tbl.RandomMatchedAddr(rng)
		if !seen[a] && r.HomeLC(a) == home {
			seen[a] = true
			out = append(out, a)
		}
	}
	if len(out) < n {
		t.Fatalf("could not find %d addresses homed at LC %d", n, home)
	}
	return out
}

// TestOverloadAdmissionShed: with a gated LC and a tiny bounded inbox,
// admission refuses the overflow synchronously with ErrOverloaded, the
// shed is counted by reason, and every admitted lookup still resolves
// correctly once the LC resumes.
func TestOverloadAdmissionShed(t *testing.T) {
	tbl := rtable.Small(500, 3)
	oracle := lpm.NewReference(tbl)
	r, err := New(tbl, WithLCs(1), WithOverload(OverloadPolicy{QueueDepth: 2}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	release := gateLC(t, r, 0)
	rng := stats.NewRNG(5)
	addrs := []ip.Addr{tbl.RandomMatchedAddr(rng), tbl.RandomMatchedAddr(rng), tbl.RandomMatchedAddr(rng)}
	var chans []<-chan Verdict
	for _, a := range addrs[:2] {
		ch, err := r.LookupAsync(0, a)
		if err != nil {
			t.Fatalf("admission refused with inbox space free: %v", err)
		}
		chans = append(chans, ch)
	}
	if _, err := r.LookupAsync(0, addrs[2]); err != ErrOverloaded {
		t.Fatalf("full inbox: got err %v, want ErrOverloaded", err)
	}
	if _, err := r.Lookup(0, addrs[2]); err != ErrOverloaded {
		t.Fatalf("Lookup on full inbox: got err %v, want ErrOverloaded", err)
	}
	release()
	for i, ch := range chans {
		if v := <-ch; !verdictMatches(v, oracle, addrs[i]) {
			t.Fatalf("admitted lookup %d resolved wrong verdict %+v", i, v)
		}
	}
	s := r.Metrics()
	if got, ok := s.Value(MetricShed, metrics.L("lc", "0"), metrics.L("reason", "inbox_full")); !ok || got != 2 {
		t.Fatalf("inbox_full shed counter = %v (present=%v), want 2", got, ok)
	}
}

// TestOverloadBlockMode: ShedBlock admission parks the caller instead of
// shedding, and the lookup completes once inbox space frees.
func TestOverloadBlockMode(t *testing.T) {
	tbl := rtable.Small(500, 3)
	oracle := lpm.NewReference(tbl)
	r, err := New(tbl, WithLCs(1), WithOverload(OverloadPolicy{QueueDepth: 1, Mode: ShedBlock}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	release := gateLC(t, r, 0)
	rng := stats.NewRNG(9)
	first, second := tbl.RandomMatchedAddr(rng), tbl.RandomMatchedAddr(rng)
	if _, err := r.LookupAsync(0, first); err != nil {
		t.Fatal(err)
	}
	got := make(chan Verdict, 1)
	go func() {
		v, err := r.Lookup(0, second)
		if err != nil {
			t.Errorf("blocked lookup failed: %v", err)
		}
		got <- v
	}()
	select {
	case <-got:
		t.Fatal("ShedBlock lookup completed while the inbox was full")
	case <-time.After(20 * time.Millisecond):
	}
	release()
	select {
	case v := <-got:
		if !verdictMatches(v, oracle, second) {
			t.Fatalf("blocked lookup resolved wrong verdict %+v", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked lookup never completed after release")
	}
	if s := r.Metrics(); s.Sum(MetricShed) != 0 {
		t.Fatalf("block mode shed %v lookups, want 0", s.Sum(MetricShed))
	}
}

// TestWaitlistOverflowSheds: a single-address storm over a dead fabric
// may coalesce only up to WaitlistCap waiters; the overflow sheds with
// ServedByShed/ErrOverloaded and the waitlist-overflow counter
// reconciles exactly with the shed verdicts.
func TestWaitlistOverflowSheds(t *testing.T) {
	tbl := rtable.Small(500, 3)
	oracle := lpm.NewReference(tbl)
	const cap, n = 4, 32
	drop := func(m FabricMessage) FaultDecision { return FaultDecision{Drop: !m.Heartbeat} }
	r, err := New(tbl, WithLCs(2), WithFaultInjector(drop),
		WithRequestTimeout(5*time.Millisecond), WithMaxRetries(-1),
		WithOverload(OverloadPolicy{WaitlistCap: cap, BreakerThreshold: 1 << 20}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	addr := remoteAddrs(t, r, tbl, stats.NewRNG(11), 1, 1)[0]
	chans := make([]<-chan Verdict, n)
	for i := range chans {
		ch, err := r.LookupAsync(0, addr)
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	var shed, served int
	for _, ch := range chans {
		select {
		case v := <-ch:
			if v.ServedBy == ServedByShed {
				shed++
				continue
			}
			served++
			if !verdictMatches(v, oracle, addr) {
				t.Fatalf("admitted lookup resolved wrong verdict %+v", v)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("lookup never terminated")
		}
	}
	if shed == 0 || served == 0 {
		t.Fatalf("shed=%d served=%d, want both nonzero (cap %d, %d submitted)", shed, served, cap, n)
	}
	if served > cap {
		t.Fatalf("%d lookups were parked on one address, cap is %d", served, cap)
	}
	s := r.Metrics()
	if got := s.Sum(MetricWaitlistOverflow); got != float64(shed) {
		t.Fatalf("waitlist overflow counter = %v, want %d (the shed verdicts)", got, shed)
	}
}

// TestStopWithFullInboxes is the Stop-vs-overload regression: with every
// inbox at capacity and callers blocked in ShedBlock admission, Stop
// must return promptly and every pending caller must get a terminal
// verdict or error.
func TestStopWithFullInboxes(t *testing.T) {
	tbl := rtable.Small(500, 3)
	r, err := New(tbl, WithLCs(1), WithOverload(OverloadPolicy{QueueDepth: 1, Mode: ShedBlock}))
	if err != nil {
		t.Fatal(err)
	}
	gateLC(t, r, 0) // never released: quit unblocks the closure
	rng := stats.NewRNG(13)
	if _, err := r.LookupAsync(0, tbl.RandomMatchedAddr(rng)); err != nil {
		t.Fatal(err)
	}
	const callers = 8
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.Lookup(0, tbl.RandomMatchedAddr(stats.NewRNG(uint64(i))))
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let the callers reach admission

	done := make(chan struct{})
	go func() { r.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not return promptly with full inboxes")
	}
	wg.Wait()
	for i, err := range errs {
		if err != ErrStopped && err != ErrOverloaded {
			t.Fatalf("caller %d: got (%v), want ErrStopped or ErrOverloaded", i, err)
		}
	}
}

// TestRetryBudgetExhaustion: with every fabric request dropped and no
// successful replies to refill the bucket, retries stop once the seeded
// burst is spent and subsequent deadline expiries degrade straight to
// the fallback engine.
func TestRetryBudgetExhaustion(t *testing.T) {
	tbl := rtable.Small(500, 3)
	oracle := lpm.NewReference(tbl)
	drop := func(m FabricMessage) FaultDecision { return FaultDecision{Drop: !m.Heartbeat && !m.Reply} }
	r, err := New(tbl, WithLCs(2), WithFaultInjector(drop),
		WithRequestTimeout(2*time.Millisecond), WithMaxRetries(100),
		WithOverload(OverloadPolicy{RetryBudgetBurst: 2, BreakerThreshold: 1 << 20}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	addrs := remoteAddrs(t, r, tbl, stats.NewRNG(17), 1, 6)
	for _, a := range addrs {
		v, err := r.Lookup(0, a)
		if err != nil {
			t.Fatal(err)
		}
		if v.ServedBy != ServedByFallback || !verdictMatches(v, oracle, a) {
			t.Fatalf("dead-fabric lookup: got %+v, want correct fallback verdict", v)
		}
	}
	s := r.Metrics()
	lbl := metrics.L("lc", "0")
	if got, _ := s.Value(MetricBudgetExhausted, lbl); got < float64(len(addrs)-2) {
		t.Fatalf("budget exhausted counter = %v, want >= %d", got, len(addrs)-2)
	}
	if got, _ := s.Value(MetricRetryBudget, lbl); got >= 1 {
		t.Fatalf("retry budget gauge = %v, want < 1 after exhaustion with no refills", got)
	}
	if got, _ := s.Value(MetricRetries, lbl); got != 2 {
		t.Fatalf("retries = %v, want exactly the burst of 2", got)
	}
}

// TestBreakerOpensAndRecovers drives the full breaker state machine:
// consecutive deadline expiries open it, an open breaker short-circuits
// dispatches to the fallback engine without touching the fabric, the
// ticker arms a half-open probe after the cooldown, and a successful
// probe closes the circuit again.
func TestBreakerOpensAndRecovers(t *testing.T) {
	tbl := rtable.Small(500, 3)
	oracle := lpm.NewReference(tbl)
	var failing atomic.Bool
	failing.Store(true)
	inj := func(m FabricMessage) FaultDecision {
		return FaultDecision{Drop: failing.Load() && !m.Heartbeat && !m.Reply && m.To == 1}
	}
	r, err := New(tbl, WithLCs(2), WithFaultInjector(inj),
		WithRequestTimeout(2*time.Millisecond), WithMaxRetries(-1),
		WithTraceSampling(0),
		WithOverload(OverloadPolicy{BreakerThreshold: 3, BreakerCooldown: 5 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	addrs := remoteAddrs(t, r, tbl, stats.NewRNG(23), 1, 8)
	// Three deadline expiries in a row open the breaker toward LC 1.
	for _, a := range addrs[:3] {
		if v, err := r.Lookup(0, a); err != nil || v.ServedBy != ServedByFallback {
			t.Fatalf("dead-fabric lookup: v=%+v err=%v, want fallback", v, err)
		}
	}
	if st := r.BreakerStates(0)[1]; st != breakerOpen {
		t.Fatalf("breaker state after %d failures = %d, want open", 3, st)
	}
	// While open, a dispatch homed at LC 1 short-circuits: fallback
	// verdict without the deadline wait, counted and traced.
	start := time.Now()
	v, err := r.Lookup(0, addrs[3])
	if err != nil || v.ServedBy != ServedByFallback || !verdictMatches(v, oracle, addrs[3]) {
		t.Fatalf("short-circuit lookup: v=%+v err=%v", v, err)
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("short-circuit took %v, should not wait out a deadline", d)
	}
	s := r.Metrics()
	lbl := metrics.L("lc", "0")
	if got, _ := s.Value(MetricBreakerShorts, lbl); got < 1 {
		t.Fatalf("breaker short-circuit counter = %v, want >= 1", got)
	}
	if got, _ := s.Value(MetricBreakerState, lbl, metrics.L("home", "1")); got != float64(breakerOpen) {
		t.Fatalf("breaker state gauge = %v, want open", got)
	}
	if got, _ := s.Value(MetricBreakerOpens, lbl); got < 1 {
		t.Fatalf("breaker opens counter = %v, want >= 1", got)
	}
	var shorts int
	for _, tr := range r.Traces() {
		shorts += tr.CountKind(tracing.EvBreaker)
	}
	if want, _ := s.Value(MetricBreakerShorts, lbl); float64(shorts) != want {
		t.Fatalf("EvBreaker trace events = %d, counter = %v, want equal", shorts, want)
	}

	// Heal the fabric; the cooldown elapses, the ticker arms a half-open
	// probe, and the next lookup's reply closes the breaker.
	failing.Store(false)
	waitFor(t, "breaker half-open", func() bool { return r.BreakerStates(0)[1] == breakerHalfOpen })
	probe := addrs[4]
	if v, err := r.Lookup(0, probe); err != nil || v.ServedBy != ServedByRemote || !verdictMatches(v, oracle, probe) {
		t.Fatalf("probe lookup: v=%+v err=%v, want correct remote verdict", v, err)
	}
	if st := r.BreakerStates(0)[1]; st != breakerClosed {
		t.Fatalf("breaker state after successful probe = %d, want closed", st)
	}
	if got, _ := r.Metrics().Value(MetricBreakerCloses, lbl); got < 1 {
		t.Fatalf("breaker closes counter = %v, want >= 1", got)
	}
}

// TestChaosOverloadKillLC is the satellite chaos scenario: sustained
// overload aimed at one home LC, a lossy fabric, and a mid-run KillLC of
// that same home. Every admitted lookup must resolve to the reference
// verdict, shed+served must reconcile exactly with attempts, and the
// breaker bookkeeping (counters, state gauge, trace events) must agree
// with itself.
func TestChaosOverloadKillLC(t *testing.T) {
	tbl := rtable.Small(2000, 7)
	oracle := lpm.NewReference(tbl)
	for _, seed := range chaosSeeds(t) {
		t.Run("seed="+strconv.FormatUint(seed, 10), func(t *testing.T) {
			r, err := New(tbl, WithLCs(4),
				WithFaultInjector(SeededFaults(FaultConfig{Seed: seed, DropRate: 0.05})),
				WithRequestTimeout(2*time.Millisecond), WithMaxRetries(2),
				WithTraceSampling(0), WithTraceJournal(1<<15),
				WithOverload(OverloadPolicy{QueueDepth: 64, BreakerThreshold: 3, BreakerCooldown: 4 * time.Millisecond}))
			if err != nil {
				t.Fatal(err)
			}
			defer r.Stop()

			const workers, perWorker = 4, 1200
			var attempts, shed, served atomic.Int64
			var wg sync.WaitGroup
			errs := make(chan string, 64)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := stats.NewRNG(seed + uint64(w)*211)
					for i := 0; i < perWorker; i++ {
						if w == 0 && i == perWorker/3 {
							if err := r.KillLC(1); err != nil {
								errs <- "KillLC: " + err.Error()
								return
							}
						}
						a := tbl.RandomMatchedAddr(rng)
						attempts.Add(1)
						v, err := r.Lookup(w, a)
						switch {
						case err == ErrOverloaded:
							shed.Add(1)
						case err != nil:
							errs <- err.Error()
							return
						case !verdictMatches(v, oracle, a):
							errs <- "wrong verdict for " + ip.FormatAddr(a) + " served by " + v.ServedBy.String()
							return
						default:
							served.Add(1)
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Fatal(e)
			}
			if got := shed.Load() + served.Load(); got != attempts.Load() {
				t.Fatalf("shed(%d)+served(%d) = %d, want attempts %d", shed.Load(), served.Load(), got, attempts.Load())
			}

			s := r.Metrics()
			// Breaker reconciliation: every short-circuit left one
			// EvBreaker trace event (sampling rate 0, but breaker traces
			// are always captured late), the state gauge mirrors
			// BreakerStates, and transition counters are consistent with
			// the states the router ended in.
			var evBreaker int
			for _, tr := range r.Traces() {
				evBreaker += tr.CountKind(tracing.EvBreaker)
			}
			if shorts := s.Sum(MetricBreakerShorts); float64(evBreaker) != shorts {
				t.Fatalf("EvBreaker trace events = %d, short-circuit counter = %v, want equal", evBreaker, shorts)
			}
			for lc := 0; lc < 4; lc++ {
				lbl := metrics.L("lc", strconv.Itoa(lc))
				states := r.BreakerStates(lc)
				nonClosed := 0.0
				for home, st := range states {
					if home == lc {
						continue
					}
					if g, ok := s.Value(MetricBreakerState, lbl, metrics.L("home", strconv.Itoa(home))); !ok || g != float64(st) {
						t.Fatalf("lc %d home %d: gauge %v != state %d", lc, home, g, st)
					}
					if st != breakerClosed {
						nonClosed++
					}
				}
				opens, _ := s.Value(MetricBreakerOpens, lbl)
				closes, _ := s.Value(MetricBreakerCloses, lbl)
				if opens < closes+nonClosed {
					t.Fatalf("lc %d: opens %v < closes %v + non-closed %v", lc, opens, closes, nonClosed)
				}
			}
			if s.Sum(MetricRetries)+s.Sum(MetricFallbacks) == 0 {
				t.Error("lossy overloaded run produced neither retries nor fallbacks")
			}
		})
	}
}

// slowEngine throttles an inner engine so a test can offer more load
// than an LC can serve.
type slowEngine struct {
	lpm.Engine
	d time.Duration
}

func (s slowEngine) Lookup(a ip.Addr) (rtable.NextHop, int, bool) {
	time.Sleep(s.d)
	return s.Engine.Lookup(a)
}

// TestOverloadSoak is the CI overload-soak scenario: roughly 2× offered
// load against slowed-down engines for a sustained window. Queues are
// bounded, so heap usage must stay flat while a nonzero, steady shed
// rate absorbs the excess; every served verdict must still be correct.
func TestOverloadSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	tbl := rtable.Small(2000, 7)
	oracle := lpm.NewReference(tbl)
	slow := func(t *rtable.Table) lpm.Engine {
		return slowEngine{Engine: lpm.NewReferenceEngine(t), d: 20 * time.Microsecond}
	}
	r, err := New(tbl, WithLCs(2), WithEngine(slow),
		WithOverload(OverloadPolicy{QueueDepth: 128}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	heap := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}

	// Open-loop drive: per LC, a feeder submits lookups as fast as
	// admission allows while a collector verifies verdicts behind it, so
	// the offered rate is decoupled from the service rate and the
	// bounded inbox is the actual bottleneck.
	const dur = 1500 * time.Millisecond
	type inflight struct {
		addr ip.Addr
		ch   <-chan Verdict
	}
	var attempts, shed [2]atomic.Int64
	var wrong atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for lc := 0; lc < 2; lc++ {
		queue := make(chan inflight, 4096)
		wg.Add(2)
		go func(lc int, queue chan<- inflight) {
			defer wg.Done()
			defer close(queue)
			rng := stats.NewRNG(uint64(lc) * 77)
			for {
				select {
				case <-stop:
					return
				default:
				}
				a := tbl.RandomMatchedAddr(rng)
				attempts[lc].Add(1)
				ch, err := r.LookupAsync(lc, a)
				if err == ErrOverloaded {
					shed[lc].Add(1)
					continue
				}
				if err != nil {
					return
				}
				queue <- inflight{addr: a, ch: ch}
			}
		}(lc, queue)
		go func(queue <-chan inflight) {
			defer wg.Done()
			for f := range queue {
				if v := <-f.ch; v.ServedBy != ServedByShed && !verdictMatches(v, oracle, f.addr) {
					wrong.Add(1) // keep draining: the feeder blocks on a full queue
				}
			}
		}(queue)
	}
	time.Sleep(dur / 3)
	mid := heap()
	time.Sleep(dur - dur/3)
	close(stop)
	wg.Wait()
	end := heap()

	if wrong.Load() != 0 {
		t.Fatalf("%d incorrect verdicts among admitted lookups", wrong.Load())
	}
	totalShed := shed[0].Load() + shed[1].Load()
	totalAttempts := attempts[0].Load() + attempts[1].Load()
	if totalShed == 0 {
		t.Fatalf("2x offered load produced no admission sheds (%d attempts)", totalAttempts)
	}
	if end > mid && end-mid > 16<<20 {
		t.Fatalf("heap grew %d bytes across the soak window; bounded queues should keep it flat", end-mid)
	}
	s := r.Metrics()
	if got := s.Sum(MetricShed); got < float64(totalShed) {
		t.Fatalf("shed counter %v < observed ErrOverloaded count %d", got, totalShed)
	}
	t.Logf("soak: %d attempts, %d shed (%.1f%%), heap mid=%dKB end=%dKB",
		totalAttempts, totalShed, 100*float64(totalShed)/float64(totalAttempts), mid>>10, end>>10)
}
