package router

import "fmt"

// ServedBy identifies where a lookup result came from. It replaces the
// earlier stringly-typed field; the string forms ("cache", "fe",
// "remote") are unchanged, so text output and JSON encodings of Verdict
// are stable across the migration.
type ServedBy uint8

// ServedBy values.
const (
	// ServedByUnknown is the zero value: the verdict carries no origin
	// (e.g. a zero Verdict).
	ServedByUnknown ServedBy = iota
	// ServedByCache: LR-cache hit at the arrival LC.
	ServedByCache
	// ServedByFE: local forwarding-engine execution at the home LC.
	ServedByFE
	// ServedByRemote: reply from the home LC over the fabric.
	ServedByRemote
	// ServedByFallback: fabric retries exhausted; the arrival LC
	// resolved the address against the router-wide read-only full-table
	// engine (the degraded slow path). The verdict is still correct —
	// the fallback engine holds the complete current table — but the
	// lookup paid the deadline/retry latency to get there.
	ServedByFallback
	// ServedByShed: overload control refused or abandoned the lookup
	// after admission (waitlist overflow, replay shed); the verdict
	// carries no route. The synchronous Lookup wrappers convert this to
	// ErrOverloaded; only batch/async callers observe it directly. Only
	// routers built WithOverload ever produce it.
	ServedByShed
	// ServedByHedge: the gray-failure plane answered the lookup from the
	// full-table fallback engine ahead of a slow fabric primary — either
	// a ticker hedge past the hedge delay or a dispatch-time answer for
	// an ejected home LC (see gray.go). Like ServedByFallback the verdict
	// is correct (same engine), but it was taken to *cut* latency rather
	// than after paying the full deadline. Only routers built WithGray
	// ever produce it.
	ServedByHedge
)

// servedByNames are the wire/report names, aligned with the legacy
// string constants.
var servedByNames = [...]string{"unknown", "cache", "fe", "remote", "fallback", "shed", "hedge"}

// String implements fmt.Stringer with the legacy names.
func (s ServedBy) String() string {
	if int(s) < len(servedByNames) {
		return servedByNames[s]
	}
	return fmt.Sprintf("ServedBy(%d)", uint8(s))
}

// MarshalText keeps JSON/text encodings identical to the old string
// field: a verdict served by the cache still encodes as "cache".
func (s ServedBy) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText accepts the legacy names (round-tripping MarshalText).
func (s *ServedBy) UnmarshalText(b []byte) error {
	for i, n := range servedByNames {
		if string(b) == n {
			*s = ServedBy(i)
			return nil
		}
	}
	return fmt.Errorf("router: unknown ServedBy %q", b)
}
