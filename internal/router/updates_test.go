// Tests for the incremental-update plane (updates.go): ApplyUpdates
// equivalence against the full-rebuild oracle, targeted invalidation
// accounting against the full-flush oracle, generation-guard behavior,
// the drift-triggered rebalancer, and the churn chaos / soak scenarios
// CI runs under -race.
package router

import (
	"context"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spal/internal/cache"
	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/rtable"
	"spal/internal/stats"
)

// churnStream draws one seeded update batch over cur (≈10 events).
func churnStream(cur *rtable.Table, seed uint64) []rtable.Update {
	return rtable.GenerateUpdates(cur, rtable.UpdateStreamConfig{
		RatePerSecond: 1000, CycleNS: 5, Duration: 2_000_000,
		WithdrawProb: 0.35, NewPrefixProb: 0.25, Seed: seed,
	})
}

// TestApplyUpdatesEquivalence drives the incremental plane against an
// UpdateTable-per-event oracle router: after every batch, both planes
// must produce element-wise identical verdicts at every LC, for dynamic
// (in-place trie update) and non-dynamic (partition rebuild) engines.
func TestApplyUpdatesEquivalence(t *testing.T) {
	for _, engine := range []string{"bintrie", "flat"} {
		t.Run("engine="+engine, func(t *testing.T) {
			tbl := rtable.Small(1200, 37)
			inc, err := New(tbl, WithLCs(4), WithDefaultCache(), WithEngineName(engine))
			if err != nil {
				t.Fatal(err)
			}
			defer inc.Stop()
			oracle, err := New(tbl, WithLCs(4), WithDefaultCache(), WithEngineName(engine))
			if err != nil {
				t.Fatal(err)
			}
			defer oracle.Stop()

			rng := stats.NewRNG(5)
			cur := tbl
			for round := 0; round < 6; round++ {
				stream := churnStream(cur, rng.Uint64())
				if len(stream) == 0 {
					t.Fatal("empty update stream")
				}
				if err := inc.ApplyUpdates(stream); err != nil {
					t.Fatal(err)
				}
				// The oracle applies the same batch one event at a time,
				// with a full two-phase swap + flush per event.
				for _, u := range stream {
					cur = cur.Apply(u)
					if err := oracle.UpdateTable(cur); err != nil {
						t.Fatal(err)
					}
				}
				ref := lpm.NewReference(cur)
				for lc := 0; lc < 4; lc++ {
					for i := 0; i < 60; i++ {
						var a ip.Addr
						if i%3 == 0 {
							a = rng.Uint32()
						} else {
							a = cur.RandomMatchedAddr(rng)
						}
						vi, err := inc.Lookup(lc, a)
						if err != nil {
							t.Fatal(err)
						}
						vo, err := oracle.Lookup(lc, a)
						if err != nil {
							t.Fatal(err)
						}
						if vi.OK != vo.OK || (vi.OK && vi.NextHop != vo.NextHop) {
							t.Fatalf("round %d lc %d addr %s: incremental %v/%d, oracle %v/%d",
								round, lc, ip.FormatAddr(a), vi.OK, vi.NextHop, vo.OK, vo.NextHop)
						}
						if !verdictMatches(vi, ref, a) {
							t.Fatalf("round %d lc %d addr %s: verdict %v/%d disagrees with reference",
								round, lc, ip.FormatAddr(a), vi.OK, vi.NextHop)
						}
					}
				}
			}
			s := inc.Metrics()
			if got := s.Sum(MetricUpdateBatches); got != 6 {
				t.Fatalf("update batches = %v, want 6", got)
			}
			if s.Sum(MetricUpdatesApplied) == 0 {
				t.Fatal("no per-LC updates applied")
			}
			if got := s.Sum("spal_lrcache_flushes_total"); got != 0 {
				t.Fatalf("incremental plane flushed caches %v times; targeted invalidation must not flush", got)
			}
		})
	}
}

// TestApplyUpdatesEdgeCases: an empty batch is a no-op, and a batch that
// would empty the table is rejected without touching the plane.
func TestApplyUpdatesEdgeCases(t *testing.T) {
	routes := []rtable.Route{
		{Prefix: mustPfx(t, "10.0.0.0/8"), NextHop: 1},
		{Prefix: mustPfx(t, "192.168.0.0/16"), NextHop: 2},
	}
	tbl := rtable.New(routes)
	r, err := New(tbl, WithLCs(2), WithDefaultCache(), WithEngineName("bintrie"))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := r.ApplyUpdates(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	kill := []rtable.Update{
		{Kind: rtable.Withdraw, Route: routes[0]},
		{Kind: rtable.Withdraw, Route: routes[1]},
	}
	if err := r.ApplyUpdates(kill); err == nil {
		t.Fatal("batch emptying the table was accepted")
	}
	if v, err := r.Lookup(0, mustAddr(t, "10.1.2.3")); err != nil || !v.OK || v.NextHop != 1 {
		t.Fatalf("table damaged by rejected batch: %+v, %v", v, err)
	}

	// Duplicate prefixes inside one batch apply in order: the last event
	// for a prefix wins, exactly as if the events had arrived in separate
	// batches.
	p := mustPfx(t, "172.16.0.0/12")
	dup := []rtable.Update{
		{Kind: rtable.Announce, Route: rtable.Route{Prefix: p, NextHop: 7}},
		{Kind: rtable.Announce, Route: rtable.Route{Prefix: p, NextHop: 9}},
	}
	if err := r.ApplyUpdates(dup); err != nil {
		t.Fatalf("duplicate-announce batch: %v", err)
	}
	if v, err := r.Lookup(0, mustAddr(t, "172.16.1.1")); err != nil || !v.OK || v.NextHop != 9 {
		t.Fatalf("duplicate announce: got %+v, %v; want the later next hop 9", v, err)
	}

	// Announce then withdraw of the same prefix in one batch nets out to
	// absence.
	q := mustPfx(t, "172.31.0.0/16")
	upDown := []rtable.Update{
		{Kind: rtable.Announce, Route: rtable.Route{Prefix: q, NextHop: 5}},
		{Kind: rtable.Withdraw, Route: rtable.Route{Prefix: q}},
	}
	if err := r.ApplyUpdates(upDown); err != nil {
		t.Fatalf("announce+withdraw batch: %v", err)
	}
	// 172.31.x falls back to the /12 announced above (now next hop 9).
	if v, err := r.Lookup(1, mustAddr(t, "172.31.2.2")); err != nil || !v.OK || v.NextHop != 9 {
		t.Fatalf("announce+withdraw: got %+v, %v; want the covering /12's 9", v, err)
	}
}

func mustPfx(t *testing.T, s string) ip.Prefix {
	t.Helper()
	p, err := ip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustAddr(t *testing.T, s string) ip.Addr {
	t.Helper()
	a, err := ip.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestTargetedInvalidationAccounting reconciles the invalidation counters
// exactly — every LC cache must see one InvalidateRange call per coalesced
// range per batch, and nothing else — and proves the headline claim:
// across a churn workload, targeted invalidation evicts strictly fewer
// cache entries than the full-flush oracle loses to its flushes.
func TestTargetedInvalidationAccounting(t *testing.T) {
	const numLCs = 4
	tbl := rtable.Small(1500, 53)
	inc, err := New(tbl, WithLCs(numLCs), WithDefaultCache(), WithEngineName("bintrie"))
	if err != nil {
		t.Fatal(err)
	}
	defer inc.Stop()
	fl, err := New(tbl, WithLCs(numLCs), WithDefaultCache(), WithEngineName("bintrie"))
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Stop()

	occupancy := func(r *Router) float64 {
		s := r.Metrics()
		return s.Sum("spal_lrcache_occupancy_blocks")
	}

	rng := stats.NewRNG(99)
	cur := tbl
	var rangeCalls, flushLost float64
	for round := 0; round < 8; round++ {
		// Warm both planes with the identical workload.
		for lc := 0; lc < numLCs; lc++ {
			for i := 0; i < 300; i++ {
				a := cur.RandomMatchedAddr(rng)
				if _, err := inc.Lookup(lc, a); err != nil {
					t.Fatal(err)
				}
				if _, err := fl.Lookup(lc, a); err != nil {
					t.Fatal(err)
				}
			}
		}
		stream := churnStream(cur, rng.Uint64())
		cur = cur.ApplyAll(stream)
		rangeCalls += float64(numLCs * len(rtable.UpdateRanges(stream)))
		// Everything the flush plane holds right now is lost to the flush
		// below (quiescent: no waiting blocks in flight).
		flushLost += occupancy(fl)
		if err := inc.ApplyUpdates(stream); err != nil {
			t.Fatal(err)
		}
		if err := fl.UpdateTable(cur); err != nil {
			t.Fatal(err)
		}
	}

	s := inc.Metrics()
	if got := s.Sum("spal_lrcache_range_invalidations_total"); got != rangeCalls {
		t.Fatalf("range invalidation calls = %v, want exactly %v", got, rangeCalls)
	}
	if got := s.Sum(MetricStaleGen); got != 0 {
		t.Fatalf("quiescent churn produced %v stale-gen replies", got)
	}
	invalidated := s.Sum("spal_lrcache_invalidated_total")
	if flushLost == 0 {
		t.Fatal("flush oracle never held cache entries; test is vacuous")
	}
	if invalidated >= flushLost {
		t.Fatalf("targeted invalidation evicted %v entries, full flush lost %v; want strictly fewer", invalidated, flushLost)
	}
	t.Logf("targeted: %v entries invalidated vs %v lost to flushes (%.1f%%)",
		invalidated, flushLost, 100*invalidated/flushLost)
}

// TestRebalancerTriggersOnDrift floods the incremental plane with new
// prefixes until partition quality drifts past a tight policy, and
// expects the health ticker to run a full bit re-selection — after which
// verdicts must still be correct.
func TestRebalancerTriggersOnDrift(t *testing.T) {
	tbl := rtable.Small(600, 7)
	r, err := New(tbl, WithLCs(4), WithEngineName("bintrie"),
		WithRequestTimeout(4*time.Millisecond),
		WithRebalance(RebalancePolicy{
			Enabled:              true,
			MaxReplicationGrowth: 1.001,
			MaxSkew:              0.05,
			MinInterval:          time.Millisecond,
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	rng := stats.NewRNG(123)
	cur := tbl
	for i := 0; i < 20 && r.Metrics().Sum(MetricRebalances) == 0; i++ {
		stream := rtable.GenerateUpdates(cur, rtable.UpdateStreamConfig{
			RatePerSecond: 4000, CycleNS: 5, Duration: 10_000_000,
			WithdrawProb: 0.1, NewPrefixProb: 0.9, Seed: rng.Uint64(),
		})
		if len(stream) == 0 {
			continue
		}
		cur = cur.ApplyAll(stream)
		if err := r.ApplyUpdates(stream); err != nil {
			t.Fatal(err)
		}
		time.Sleep(3 * time.Millisecond) // let the health ticker observe the drift
	}
	waitFor(t, "a drift-triggered rebalance", func() bool {
		return r.Metrics().Sum(MetricRebalances) > 0
	})
	ref := lpm.NewReference(cur)
	for lc := 0; lc < 4; lc++ {
		for i := 0; i < 50; i++ {
			a := cur.RandomMatchedAddr(rng)
			v, err := r.Lookup(lc, a)
			if err != nil {
				t.Fatal(err)
			}
			if !verdictMatches(v, ref, a) {
				t.Fatalf("post-rebalance wrong verdict for %s", ip.FormatAddr(a))
			}
		}
	}
}

// TestCacheConfigErrors: a mis-sized -cache-shards flag (or a broken cache
// geometry) must surface as a construction error, never a panic.
func TestCacheConfigErrors(t *testing.T) {
	tbl := rtable.Small(100, 3)
	for name, opts := range map[string][]Option{
		"shards not power of two": {WithDefaultCache(), WithCacheShards(3)},
		"per-shard sets not pow2": {WithCache(cache.Config{Blocks: 96, Assoc: 4, MixPercent: 50}), WithCacheShards(8)},
		"blocks not divisible":    {WithCache(cache.Config{Blocks: 100, Assoc: 4, MixPercent: 50}), WithCacheShards(8)},
		"unsharded bad geometry":  {WithCache(cache.Config{Blocks: 1000, Assoc: 3, MixPercent: 50})},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("construction panicked: %v", p)
				}
			}()
			r, err := New(tbl, append([]Option{WithLCs(2)}, opts...)...)
			if err == nil {
				r.Stop()
				t.Fatal("bad cache config accepted")
			}
		})
	}
}

// versionedOracle is the batch-granular table history the churn tests
// check verdicts against: a verdict is correct if it matches any version
// that was current or in flight during the lookup's lifetime.
type versionedOracle struct {
	mu      sync.Mutex
	refs    []*lpm.Reference
	applied int // batches whose ApplyUpdates has returned
}

func newVersionedOracle(tbl *rtable.Table) *versionedOracle {
	return &versionedOracle{refs: []*lpm.Reference{lpm.NewReference(tbl)}}
}

// announce registers the next version; call before ApplyUpdates.
func (o *versionedOracle) announce(tbl *rtable.Table) {
	o.mu.Lock()
	o.refs = append(o.refs, lpm.NewReference(tbl))
	o.mu.Unlock()
}

// settle marks the newest version fully applied; call after ApplyUpdates
// returns.
func (o *versionedOracle) settle() {
	o.mu.Lock()
	o.applied = len(o.refs) - 1
	o.mu.Unlock()
}

// window returns the validity bounds for a lookup submitted now: the
// newest fully-applied version (older values for changed addresses have
// been invalidated everywhere) and the newest announced version.
func (o *versionedOracle) window() (lo, hi int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.applied, len(o.refs) - 1
}

// matches reports whether the verdict agrees with any version in
// [lo, hi] (hi re-read internally: versions announced while the lookup
// was in flight are valid too, capped by the caller's post-completion
// read).
func (o *versionedOracle) matches(v Verdict, a ip.Addr, lo, hi int) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	for i := lo; i <= hi && i < len(o.refs); i++ {
		nh, _, ok := o.refs[i].Lookup(a)
		if v.OK == ok && (!ok || v.NextHop == nh) {
			return true
		}
	}
	return false
}

// TestChaosChurn is the churn acceptance scenario: a seeded
// announce/withdraw stream racing a KillLC/RestoreLC cycle, overload
// shedding, and the coalesced batch data plane. Every non-shed verdict
// must match a table version that was live during its lookup's window —
// zero wrong verdicts — and the stale-generation guard must be the only
// thing keeping cross-window values out of the caches (no flushes on the
// incremental path).
func TestChaosChurn(t *testing.T) {
	tbl := rtable.Small(1500, 71)
	for _, seed := range chaosSeeds(t) {
		t.Run("seed="+strconv.FormatUint(seed, 10), func(t *testing.T) {
			r, err := New(tbl, WithLCs(4), WithDefaultCache(), WithEngineName("bintrie"),
				WithRequestTimeout(5*time.Millisecond),
				WithOverload(OverloadPolicy{QueueDepth: 512}))
			if err != nil {
				t.Fatal(err)
			}
			defer r.Stop()

			oracle := newVersionedOracle(tbl)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			var wrong, served, shed atomic.Int64

			// Churn: seeded batches applied incrementally, as fast as the
			// control plane absorbs them.
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := stats.NewRNG(seed * 31)
				cur := tbl
				for {
					select {
					case <-stop:
						return
					default:
					}
					stream := churnStream(cur, rng.Uint64())
					if len(stream) == 0 {
						continue
					}
					next := cur.ApplyAll(stream)
					if next.Len() == 0 {
						continue
					}
					oracle.announce(next)
					if err := r.ApplyUpdates(stream); err != nil {
						return // stopping
					}
					oracle.settle()
					cur = next
				}
			}()

			// Chaos: kill LC 3 mid-churn, wait for the re-home, restore it.
			wg.Add(1)
			go func() {
				defer wg.Done()
				time.Sleep(30 * time.Millisecond)
				if err := r.KillLC(3); err != nil {
					return
				}
				deadline := time.Now().Add(5 * time.Second)
				for time.Now().Before(deadline) {
					if r.LCStates()[3] == LCDown {
						_ = r.RestoreLC(3)
						return
					}
					time.Sleep(time.Millisecond)
				}
			}()

			// Lookups: the coalesced batch plane at every LC.
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := stats.NewRNG(seed + 1000 + uint64(w)*17)
					addrs := make([]ip.Addr, 64)
					out := make([]Verdict, 64)
					for {
						select {
						case <-stop:
							return
						default:
						}
						for i := range addrs {
							if rng.Intn(4) == 0 {
								addrs[i] = rng.Uint32()
							} else {
								addrs[i] = tbl.RandomMatchedAddr(rng)
							}
						}
						lo, _ := oracle.window()
						err := r.LookupBatchInto(context.Background(), w, addrs, out)
						if err == ErrOverloaded {
							shed.Add(int64(len(addrs)))
							continue
						}
						if err != nil {
							return // stopping
						}
						_, hi := oracle.window()
						for i, v := range out {
							if v.ServedBy == ServedByShed {
								shed.Add(1)
								continue
							}
							served.Add(1)
							if !oracle.matches(v, addrs[i], lo, hi) {
								wrong.Add(1)
							}
						}
					}
				}(w)
			}

			time.Sleep(400 * time.Millisecond)
			close(stop)
			wg.Wait()

			if w := wrong.Load(); w != 0 {
				t.Fatalf("%d wrong verdicts among %d served", w, served.Load())
			}
			if served.Load() == 0 {
				t.Fatal("no lookups served")
			}
			s := r.Metrics()
			if got := s.Sum(MetricUpdateBatches); got == 0 {
				t.Fatal("no update batches applied during the chaos window")
			}
			// The incremental plane must never have flushed a cache itself;
			// the only flushes allowed are the re-home/restore swaps of the
			// KillLC cycle (two swaps × up to 4 LC caches each, plus the
			// adopted corpse's flush).
			if got := s.Sum("spal_lrcache_flushes_total"); got > 9 {
				t.Fatalf("%v cache flushes; incremental churn must not flush", got)
			}
			t.Logf("served=%d shed=%d batches=%v staleGen=%v rangeInv=%v",
				served.Load(), shed.Load(), s.Sum(MetricUpdateBatches),
				s.Sum(MetricStaleGen), s.Sum("spal_lrcache_range_invalidations_total"))
		})
	}
}

// TestUpdateSoak is the CI update-soak scenario: a 30-second sim-time
// stream at 1000 updates/s (30k events) pushed through ApplyUpdates in
// batches while the batch data plane keeps serving, with a flat heap and
// zero wrong verdicts.
func TestUpdateSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	tbl := rtable.Small(2000, 7)
	r, err := New(tbl, WithLCs(4), WithDefaultCache(), WithEngineName("bintrie"))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	// 30 s of simulated time at 1000 updates/s and 5 ns cycles.
	stream := rtable.GenerateUpdates(tbl, rtable.UpdateStreamConfig{
		RatePerSecond: 1000, CycleNS: 5, Duration: 6_000_000_000,
		WithdrawProb: 0.35, NewPrefixProb: 0.2, Seed: 4242,
	})
	if len(stream) < 25_000 {
		t.Fatalf("stream too short for a 30s/1000ups soak: %d events", len(stream))
	}

	heap := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}

	oracle := newVersionedOracle(tbl)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var wrong, served atomic.Int64
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := stats.NewRNG(7 + uint64(w)*13)
			addrs := make([]ip.Addr, 64)
			out := make([]Verdict, 64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range addrs {
					if rng.Intn(4) == 0 {
						addrs[i] = rng.Uint32()
					} else {
						addrs[i] = tbl.RandomMatchedAddr(rng)
					}
				}
				lo, _ := oracle.window()
				if err := r.LookupBatchInto(context.Background(), w%4, addrs, out); err != nil {
					return
				}
				_, hi := oracle.window()
				for i, v := range out {
					served.Add(1)
					if !oracle.matches(v, addrs[i], lo, hi) {
						wrong.Add(1)
					}
				}
			}
		}(w)
	}

	cur := tbl
	var batches int
	var mid uint64
	for off := 0; off < len(stream); off += 100 {
		end := off + 100
		if end > len(stream) {
			end = len(stream)
		}
		batch := stream[off:end]
		next := cur.ApplyAll(batch)
		if next.Len() == 0 {
			continue
		}
		oracle.announce(next)
		if err := r.ApplyUpdates(batch); err != nil {
			t.Fatal(err)
		}
		oracle.settle()
		cur = next
		batches++
		if batches == len(stream)/300 {
			mid = heap()
		}
	}
	close(stop)
	wg.Wait()
	end := heap()

	if w := wrong.Load(); w != 0 {
		t.Fatalf("%d wrong verdicts among %d served", w, served.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no lookups served during the soak")
	}
	if end > mid && end-mid > 16<<20 {
		t.Fatalf("heap grew %d bytes across the soak; incremental updates must not accumulate", end-mid)
	}
	s := r.Metrics()
	if got := s.Sum(MetricUpdateEvents); got < 25_000 {
		t.Fatalf("only %v update events applied", got)
	}
	if got := s.Sum("spal_lrcache_flushes_total"); got != 0 {
		t.Fatalf("%v cache flushes during incremental soak", got)
	}
	t.Logf("soak: %d batches / %v events, served=%d, heap mid=%dKB end=%dKB, staleGen=%v",
		batches, s.Sum(MetricUpdateEvents), served.Load(), mid>>10, end>>10, s.Sum(MetricStaleGen))
}
