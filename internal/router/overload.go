// Overload control for the concurrent forwarding plane: bounded per-LC
// inboxes with an explicit admission layer, load shedding, an adaptive
// per-LC retry budget, and per-home-LC circuit breakers.
//
// The paper sizes SPAL for line rate and treats the home LC's forwarding
// engine as the contended resource; bit selection bounds *table*
// imbalance but nothing bounds *traffic* imbalance. Without overload
// control the router absorbs a hot home LC or a retry storm into
// unbounded inter-LC queues — memory and tail latency grow without
// limit and nothing tells the caller to back off. With WithOverload the
// router defends itself at four points:
//
//   - Admission: each LC's inbox is a bounded channel. A locally
//     submitted lookup that finds it full is refused immediately with
//     ErrOverloaded (shed-at-arrival, mode ShedDropNewest), admitted
//     only once space frees (ShedBlock), or admitted while *fabric*
//     traffic sheds first (ShedDropRemoteFirst: remote requests are
//     refused at 3/4 of the target's depth, reserving headroom for
//     local arrivals).
//   - Fabric: requests and replies are never allowed to block the
//     sending LC — a full target inbox sheds the message and the
//     requester's existing deadline/retry/fallback machinery keeps the
//     lookup terminating. Mutually-full LCs therefore cannot deadlock.
//   - Retry budget: each LC holds a token bucket refilled by successful
//     fabric replies (RetryBudgetRatio tokens per success, the
//     client-side "retry budget" pattern). A deadline-driven retry
//     spends one token; with the bucket empty the lookup goes straight
//     to the full-table fallback engine, so retries cannot amplify an
//     already-overloaded fabric.
//   - Circuit breaker: each LC tracks one breaker per home LC, driven
//     by the deadline ticker. Consecutive deadline expiries from one
//     home open its breaker; while open, dispatches homed there
//     short-circuit to ServedByFallback without touching the fabric.
//     After BreakerCooldown the ticker arms a half-open probe: the next
//     dispatch crosses the fabric, and its success (reply) or failure
//     (another expiry) closes or re-opens the breaker.
//
// Every structure here follows the package's ownership rules: token
// buckets and breakers are mutated only on the owning LC goroutine;
// Metrics reads atomic mirrors. Control messages (cache flush, table
// swap, stats collection) bypass admission entirely on a dedicated
// per-LC control channel, so drain/kill/UpdateTable keep their
// no-lost-lookup guarantees under full data inboxes.
package router

import (
	"errors"
	"sync/atomic"
	"time"

	"spal/internal/tracing"
)

// ctrlDepth sizes the per-LC control channel: the control plane's rate
// is bounded by design (one flush/swap/exec in flight per admin call),
// so a small buffer plus blocking sendCtrl semantics suffice.
const ctrlDepth = 64

// ErrOverloaded is returned by Lookup/LookupCtx (and delivered as a
// ServedByShed verdict on async paths) when overload control refuses a
// lookup: the arrival LC's inbox is full, or its waitlist for the
// address is at capacity. The lookup was not executed; the caller may
// retry later, ideally with backoff. Only routers built WithOverload
// ever return it.
var ErrOverloaded = errors.New("router: overloaded")

// ShedMode selects what the admission layer does with a locally
// submitted lookup when the arrival LC's inbox is full.
type ShedMode uint8

// Shed modes.
const (
	// ShedDropNewest (default): refuse the new lookup with ErrOverloaded.
	ShedDropNewest ShedMode = iota
	// ShedDropRemoteFirst: like ShedDropNewest for local arrivals, but
	// fabric requests are refused already at 3/4 of the target inbox's
	// depth, reserving the remaining headroom for local arrivals — the
	// remote traffic has retry/fallback machinery to absorb the shed,
	// the local caller does not.
	ShedDropRemoteFirst
	// ShedBlock: block the Lookup caller until inbox space frees (or the
	// router stops). Only local admission blocks; the fabric path always
	// sheds, preserving the no-deadlock invariant.
	ShedBlock
)

// shedModeNames are the flag/report names.
var shedModeNames = [...]string{"drop-newest", "drop-remote-first", "block"}

// String implements fmt.Stringer.
func (m ShedMode) String() string {
	if int(m) < len(shedModeNames) {
		return shedModeNames[m]
	}
	return "ShedMode(?)"
}

// ParseShedMode maps a flag string onto a ShedMode.
func ParseShedMode(s string) (ShedMode, error) {
	for i, n := range shedModeNames {
		if s == n {
			return ShedMode(i), nil
		}
	}
	return 0, errors.New("router: unknown shed mode " + s)
}

// OverloadPolicy configures overload control; see WithOverload. The zero
// value of every field selects a default, so WithOverload(OverloadPolicy{})
// enables the subsystem with sane settings.
type OverloadPolicy struct {
	// Enabled turns the subsystem on; WithOverload sets it. When false
	// (the default) the router keeps its original unbounded buffering
	// goroutines and none of the machinery in this file runs.
	Enabled bool
	// QueueDepth bounds each LC's inbox (default 1024 messages).
	QueueDepth int
	// Mode is the admission policy for a full inbox (default
	// ShedDropNewest).
	Mode ShedMode
	// WaitlistCap bounds the waiters (local + remote) coalesced onto one
	// in-flight address (default 256); overflow local lookups shed with
	// ErrOverloaded, overflow remote requests are dropped back onto the
	// requester's retry path. Bounds the W-bit waiting lists so a
	// single-address storm cannot grow state without limit.
	WaitlistCap int
	// RetryBudgetRatio is the token-bucket refill per successful fabric
	// reply (default 0.1: retries may consume 10% of recent successes).
	RetryBudgetRatio float64
	// RetryBudgetBurst caps the bucket and seeds it at construction
	// (default 10 tokens).
	RetryBudgetBurst float64
	// BreakerThreshold is the consecutive deadline-expiry count from one
	// home LC that opens its breaker (default 5).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before the
	// ticker arms a half-open probe (default 4× the request timeout).
	BreakerCooldown time.Duration
}

// Overload defaults.
const (
	defaultQueueDepth       = 1024
	defaultWaitlistCap      = 256
	defaultRetryBudgetRatio = 0.1
	defaultRetryBudgetBurst = 10
	defaultBreakerThreshold = 5
	defaultBreakerCooldown  = 4 // × RequestTimeout
)

// normalizeOverload fills policy defaults; a no-op when disabled.
func normalizeOverload(p OverloadPolicy, timeout time.Duration) OverloadPolicy {
	if !p.Enabled {
		return p
	}
	if p.QueueDepth <= 0 {
		p.QueueDepth = defaultQueueDepth
	}
	if p.WaitlistCap <= 0 {
		p.WaitlistCap = defaultWaitlistCap
	}
	if p.RetryBudgetRatio <= 0 {
		p.RetryBudgetRatio = defaultRetryBudgetRatio
	}
	if p.RetryBudgetBurst <= 0 {
		p.RetryBudgetBurst = defaultRetryBudgetBurst
	}
	if p.BreakerThreshold <= 0 {
		p.BreakerThreshold = defaultBreakerThreshold
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = defaultBreakerCooldown * timeout
	}
	return p
}

// WithOverload enables overload control with the given policy. Zero
// policy fields select defaults; see OverloadPolicy.
func WithOverload(p OverloadPolicy) Option {
	return func(c *Config) {
		p.Enabled = true
		c.Overload = p
	}
}

// shedReason labels why a message or lookup was shed; the wire names
// below are the reason="" label values of spal_router_shed_total.
type shedReason uint8

// Shed reasons.
const (
	// shedInboxFull: a locally submitted lookup found the arrival LC's
	// inbox full (shed-at-arrival; the caller saw ErrOverloaded).
	shedInboxFull shedReason = iota
	// shedRemoteFull: a fabric request was dropped because the home LC's
	// inbox was full. Attributed to the overloaded (target) LC.
	shedRemoteFull
	// shedRemotePressure: ShedDropRemoteFirst refused a fabric request at
	// the 3/4-depth soft limit. Attributed to the target LC.
	shedRemotePressure
	// shedReplyFull: a fabric reply was dropped because the requester's
	// inbox was full; the requester's deadline machinery re-resolves.
	shedReplyFull
	// shedWaitlistOverflow: the per-address waitlist was at WaitlistCap.
	shedWaitlistOverflow
	// shedReplayDropped: a re-homed replay found the reborn slot's inbox
	// full; the parked caller received a ServedByShed verdict.
	shedReplayDropped
	numShedReasons
)

// shedReasonNames are the reason="" label values.
var shedReasonNames = [numShedReasons]string{
	"inbox_full", "remote_inbox_full", "remote_pressure",
	"reply_inbox_full", "waitlist_overflow", "replay_shed",
}

// Breaker states, mirrored into spal_router_breaker_state.
const (
	breakerClosed int32 = iota
	breakerOpen
	breakerHalfOpen
)

// breakerStateNames are the report names for the state gauge docs.
var breakerStateNames = [...]string{"closed", "open", "half_open"}

// breaker is one (arrival LC, home LC) circuit. fails, openedAt and
// probing are owned by the arrival LC goroutine (mutated from lcLoop's
// handle/tick paths only); state is the atomic mirror Metrics and tests
// read.
type breaker struct {
	fails    int       // consecutive deadline expiries from this home
	openedAt time.Time // when the breaker last opened
	probing  bool      // half-open: the single probe is in flight
	state    atomic.Int32
}

// lcOverload is one LC's overload-control state. The atomic counters are
// written from whatever goroutine observes the event (admission runs on
// caller goroutines, fabric sheds on the sending LC's goroutine);
// tokens and breakers are goroutine-private to the owning lcLoop.
type lcOverload struct {
	shed            [numShedReasons]atomic.Int64
	budgetExhausted atomic.Int64
	breakerShorts   atomic.Int64
	breakerOpens    atomic.Int64
	breakerCloses   atomic.Int64
	budgetMilli     atomic.Int64 // retry tokens × 1000, for the gauge

	tokens   float64
	breakers []breaker
}

// newLCOverload builds the per-LC state: a seeded token bucket and one
// closed breaker per peer slot.
func newLCOverload(p OverloadPolicy, numLCs int) *lcOverload {
	ov := &lcOverload{breakers: make([]breaker, numLCs)}
	if p.Enabled {
		ov.tokens = p.RetryBudgetBurst
		ov.budgetMilli.Store(int64(ov.tokens * 1000))
	}
	return ov
}

// shedCount increments one LC's shed counter for a reason.
func (r *Router) shedCount(lc int, why shedReason) {
	r.lcs[lc].ov.shed[why].Add(1)
}

// admitLookup is the admission layer: it delivers a locally submitted
// lookup into the arrival LC's bounded inbox under the configured shed
// mode. Only called when overload control is enabled.
func (r *Router) admitLookup(lc int, m message) error {
	if r.ov.Mode == ShedBlock {
		select {
		case r.inboxes[lc] <- m:
			return nil
		case <-r.quit:
			return ErrStopped
		}
	}
	select {
	case r.inboxes[lc] <- m:
		return nil
	case <-r.quit:
		return ErrStopped
	default:
	}
	r.shedCount(lc, shedInboxFull)
	if m.tr != nil {
		m.tr.Record(tracing.EvShed, int64(shedInboxFull), int64(lc))
		r.finishTrace(m.tr, ServedByShed, false)
	}
	return ErrOverloaded
}

// shedLocal abandons an already-admitted local lookup (waitlist
// overflow, replay shed): the parked caller receives a ServedByShed
// verdict, which the synchronous Lookup wrappers convert to
// ErrOverloaded. A batch sub-lookup keeps its position — the verdict
// lands in its descriptor slot; a single lookup's resp channel is
// buffered — either way this never blocks.
func (r *Router) shedLocal(lc int, m message, why shedReason) {
	r.shedCount(lc, why)
	if m.tr != nil {
		m.tr.Record(tracing.EvShed, int64(why), int64(lc))
		r.finishTrace(m.tr, ServedByShed, false)
	}
	r.deliver(m, Verdict{Addr: m.addr, ServedBy: ServedByShed})
}

// replaySend re-submits a lookup parked at a crashed LC into the reborn
// slot's inbox. It runs on the health monitor with r.mu held, so with
// overload control on it must never block on a full data inbox: instead
// the replay is shed and the parked caller receives a ServedByShed
// verdict — every lookup still terminates, and the monitor stays free to
// keep re-homing.
func (r *Router) replaySend(lc int, m message) {
	if !r.ov.Enabled {
		r.send(lc, m)
		return
	}
	select {
	case r.inboxes[lc] <- m:
	case <-r.quit:
	default:
		r.shedLocal(lc, m, shedReplayDropped)
	}
}

// waitlistFull reports whether one more waiter would push addr's
// coalescing waitlist past the policy cap.
func (r *Router) waitlistFull(wl *waitlist) bool {
	return r.ov.Enabled && len(wl.locals)+len(wl.remotes) >= r.ov.WaitlistCap
}

// budgetRefill credits the retry bucket for a successful fabric reply.
// LC goroutine only.
func (r *Router) budgetRefill(lc *lineCard) {
	ov := lc.ov
	ov.tokens += r.ov.RetryBudgetRatio
	if ov.tokens > r.ov.RetryBudgetBurst {
		ov.tokens = r.ov.RetryBudgetBurst
	}
	ov.budgetMilli.Store(int64(ov.tokens * 1000))
}

// budgetTake spends one retry token; false means the budget is exhausted
// and the caller must degrade to the fallback engine instead of
// retrying. LC goroutine only.
func (r *Router) budgetTake(lc *lineCard) bool {
	ov := lc.ov
	if ov.tokens < 1 {
		ov.budgetExhausted.Add(1)
		return false
	}
	ov.tokens--
	ov.budgetMilli.Store(int64(ov.tokens * 1000))
	return true
}

// breakerFailure records one deadline expiry from home; enough
// consecutive failures (or any failure of a half-open probe) open the
// breaker. LC goroutine only.
func (r *Router) breakerFailure(lc *lineCard, home int, now time.Time) {
	b := &lc.ov.breakers[home]
	switch b.state.Load() {
	case breakerOpen:
		return // already open; the cooldown clock keeps running
	case breakerHalfOpen:
		// The probe failed: re-open with a fresh cooldown.
		b.probing = false
		b.openedAt = now
		b.state.Store(breakerOpen)
		lc.ov.breakerOpens.Add(1)
		return
	}
	b.fails++
	if b.fails >= r.ov.BreakerThreshold {
		b.openedAt = now
		b.state.Store(breakerOpen)
		lc.ov.breakerOpens.Add(1)
	}
}

// breakerSuccess records a fabric reply from home: any success fully
// closes the circuit. LC goroutine only.
func (r *Router) breakerSuccess(lc *lineCard, home int) {
	b := &lc.ov.breakers[home]
	b.fails = 0
	b.probing = false
	if b.state.Load() != breakerClosed {
		b.state.Store(breakerClosed)
		lc.ov.breakerCloses.Add(1)
	}
}

// breakerTick arms half-open probes: an open breaker whose cooldown has
// elapsed transitions to half-open, allowing the next dispatch through
// as the probe. Runs on the LC's deadline ticker. LC goroutine only.
func (r *Router) breakerTick(lc *lineCard, now time.Time) {
	for i := range lc.ov.breakers {
		b := &lc.ov.breakers[i]
		if b.state.Load() == breakerOpen && now.Sub(b.openedAt) >= r.ov.BreakerCooldown {
			b.probing = false
			b.state.Store(breakerHalfOpen)
		}
	}
}

// breakerAllows reports whether a dispatch homed at home may cross the
// fabric right now: closed always may; half-open admits exactly one
// in-flight probe; open admits nothing until the ticker arms a probe.
// LC goroutine only.
func (r *Router) breakerAllows(lc *lineCard, home int) bool {
	b := &lc.ov.breakers[home]
	switch b.state.Load() {
	case breakerClosed:
		return true
	case breakerHalfOpen:
		if !b.probing {
			b.probing = true
			return true
		}
	}
	return false
}

// BreakerStates returns LC lc's per-home breaker states (0 closed,
// 1 open, 2 half-open), indexed by home LC. Nil when overload control is
// disabled. Diagnostic mirror of spal_router_breaker_state.
func (r *Router) BreakerStates(lc int) []int32 {
	if !r.ov.Enabled || lc < 0 || lc >= len(r.lcs) {
		return nil
	}
	out := make([]int32, len(r.lcs[lc].ov.breakers))
	for i := range out {
		out[i] = r.lcs[lc].ov.breakers[i].state.Load()
	}
	return out
}

// deliverData delivers a fabric message (request or reply) into a
// bounded inbox without ever blocking the sender: a full target sheds
// the message, and the requester-side deadline machinery keeps the
// affected lookup terminating. Only called when overload control is
// enabled; the unbounded path goes through Router.send.
func (r *Router) deliverData(to int, m message) bool {
	if (m.kind == mRequest || m.kind == mBatchRequest) && r.ov.Mode == ShedDropRemoteFirst {
		// Soft limit: refuse remote work while headroom remains for
		// local arrivals at the target.
		if len(r.inboxes[to]) >= r.remoteLimit {
			r.shedCount(to, shedRemotePressure)
			return false
		}
	}
	select {
	case r.inboxes[to] <- m:
		return true
	case <-r.quit:
		return false
	default:
	}
	if m.kind == mReply || m.kind == mBatchReply {
		r.shedCount(to, shedReplyFull)
	} else {
		r.shedCount(to, shedRemoteFull)
	}
	return false
}

// sendCtrl delivers a control message (flush, swap, rekey, exec) to an
// LC. Control traffic bypasses admission: with overload control on it
// rides a dedicated bounded channel sized for the control plane's
// bounded rate, and the send blocks (never sheds) so lifecycle and
// update invariants hold even when the data inbox is saturated.
func (r *Router) sendCtrl(lc int, m message) bool {
	if !r.ov.Enabled {
		return r.send(lc, m)
	}
	select {
	case r.ctrls[lc] <- m:
		return true
	case <-r.quit:
		return false
	}
}

// sendCtrlSwap is sendCtrl for the two-phase partitioning swap, which
// runs under r.mu: it additionally bails out when the target LC's
// goroutine has exited (a crashed slot awaiting rebirth), because
// blocking there while holding the mutex would also block the health
// monitor that performs the rebirth. The caller's ack loop already
// treats an exited LC as a skip. r.mu must be held.
func (r *Router) sendCtrlSwap(lc int, m message) bool {
	if !r.ov.Enabled {
		return r.send(lc, m)
	}
	select {
	case r.ctrls[lc] <- m:
		return true
	case <-r.life[lc].exited:
		return true // skip: rehoming will re-install on the reborn slot
	case <-r.quit:
		return false
	}
}
