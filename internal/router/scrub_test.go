// Integrity-plane tests: the scrubber's detection bound, quarantine and
// self-healing rebuild, the generation fence around a quarantined LC, and
// the headline chaos scenario — corruption × route churn × overload —
// ending in a provably clean steady state. CI runs the chaos test under
// -race across a seed matrix (scrub-chaos job).
package router

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/rtable"
	"spal/internal/stats"
)

// fastScrub is the test policy: full sweep every cycle (SamplesPerLC
// larger than any per-LC partition below), 1 ms cadence, quarantine on
// the first confirmed mismatch.
func fastScrub(autoRepair bool) ScrubPolicy {
	return ScrubPolicy{
		Enabled:             true,
		Interval:            time.Millisecond,
		SamplesPerLC:        4096,
		QuarantineThreshold: 1,
		AutoRepair:          autoRepair,
	}
}

// TestScrubCleanNoFalsePositives: with the scrubber on but no injector,
// nothing may ever be flagged — not even under route churn, because churn
// invalidation and the stale-fill guard keep every resident entry
// consistent with the current table. A false positive here would mean
// needless quarantines in production.
func TestScrubCleanNoFalsePositives(t *testing.T) {
	tbl := rtable.Small(1000, 7)
	r, err := New(tbl, WithLCs(4), WithDefaultCache(), WithEngineName("bintrie"),
		WithRequestTimeout(2*time.Millisecond),
		WithScrub(fastScrub(true)))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // mild churn in the background
		defer wg.Done()
		rng := stats.NewRNG(11)
		cur := tbl
		for {
			select {
			case <-stop:
				return
			default:
			}
			batch := churnStream(cur, rng.Uint64())
			next := cur.ApplyAll(batch)
			if len(batch) == 0 || next.Len() == 0 {
				continue
			}
			if err := r.ApplyUpdates(batch); err != nil {
				return
			}
			cur = next
			time.Sleep(time.Millisecond)
		}
	}()
	rng := stats.NewRNG(7)
	for i := 0; i < 4000; i++ {
		if _, err := r.Lookup(i%4, tbl.RandomMatchedAddr(rng)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "10 scrub cycles", func() bool { return r.Integrity().ScrubCycles >= 10 })
	close(stop)
	wg.Wait()

	rep := r.Integrity()
	if rep.Quarantines != 0 || rep.Rebuilds != 0 {
		t.Fatalf("clean router quarantined: %+v", rep)
	}
	for _, l := range rep.LCs {
		if l.EngineMismatches != 0 || l.CacheMismatches != 0 {
			t.Fatalf("false positive on LC %d: %+v", l.LC, l)
		}
		if l.Samples == 0 {
			t.Fatalf("LC %d never sampled", l.LC)
		}
		if l.Score != 1 {
			t.Fatalf("LC %d score %v with no mismatches", l.LC, l.Score)
		}
	}
}

// TestScrubDetectsAndRepairsEngineCorruption: every injected engine flip
// is detected within the sweep bound, quarantined, and healed by a
// rebuild; afterwards every verdict matches the oracle again.
func TestScrubDetectsAndRepairsEngineCorruption(t *testing.T) {
	tbl := rtable.Small(400, 7)
	oracle := lpm.NewReference(tbl)
	r, err := New(tbl, WithLCs(2), WithDefaultCache(), WithEngineName("bintrie"),
		WithRequestTimeout(2*time.Millisecond),
		WithScrub(fastScrub(true)),
		WithCorruption(CorruptionPolicy{
			Enabled: true, Seed: 5, EngineFlipRate: 1, MaxCorruptions: 2,
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	waitFor(t, "engine flips to reach the cap", func() bool {
		return r.Integrity().EngineFlips >= 2
	})
	waitFor(t, "detection and rebuild", func() bool {
		rep := r.Integrity()
		return rep.Rebuilds >= 1 && rep.Quarantines >= 1
	})
	// Steady state: no further corruption can appear (cap), so after the
	// repairs the whole plane must be clean and serving oracle verdicts.
	waitFor(t, "all LCs healthy again", func() bool {
		for _, s := range r.LCStates() {
			if s != LCHealthy {
				return false
			}
		}
		return true
	})
	rng := stats.NewRNG(99)
	for i := 0; i < 2000; i++ {
		a := tbl.RandomMatchedAddr(rng)
		v, err := r.Lookup(i%2, a)
		if err != nil {
			t.Fatal(err)
		}
		if !verdictMatches(v, oracle, a) {
			t.Fatalf("wrong verdict for %s after repair", ip.FormatAddr(a))
		}
	}
	rep := r.Integrity()
	if rep.EngineFlips != 2 {
		t.Fatalf("EngineFlips = %d, want the cap 2", rep.EngineFlips)
	}
	var mism int64
	for _, l := range rep.LCs {
		mism += l.EngineMismatches
	}
	if mism == 0 {
		t.Fatal("flips injected but no engine mismatch recorded")
	}
}

// TestScrubRepairsCacheCorruption: wrong fills and dropped invalidations
// poison only cache entries; the audit finds and evicts every one, with
// no quarantine (the engine is intact).
func TestScrubRepairsCacheCorruption(t *testing.T) {
	tbl := rtable.Small(400, 7)
	oracle := lpm.NewReference(tbl)
	r, err := New(tbl, WithLCs(2), WithDefaultCache(), WithEngineName("bintrie"),
		WithRequestTimeout(2*time.Millisecond),
		WithScrub(fastScrub(true)),
		WithCorruption(CorruptionPolicy{
			Enabled: true, Seed: 5, WrongFillRate: 0.5, MaxCorruptions: 4,
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	rng := stats.NewRNG(123)
	waitFor(t, "every cache store to exhaust its corruption cap", func() bool {
		for i := 0; i < 200; i++ {
			if _, err := r.Lookup(i%2, tbl.RandomMatchedAddr(rng)); err != nil {
				t.Fatal(err)
			}
		}
		return r.CorruptionExhausted()
	})
	waitFor(t, "the audit to repair every corrupted entry", func() bool {
		rep := r.Integrity()
		var mism, rep2 int64
		for _, l := range rep.LCs {
			mism += l.CacheMismatches
			rep2 += l.CacheRepairs
		}
		return mism > 0 && rep2 == mism
	})
	// Two more full audit cycles with the injector dry: the caches are
	// clean, so fresh verdicts must match the oracle everywhere.
	c0 := r.Integrity().ScrubCycles
	waitFor(t, "two post-exhaustion scrub cycles", func() bool {
		return r.Integrity().ScrubCycles >= c0+2
	})
	for i := 0; i < 2000; i++ {
		a := tbl.RandomMatchedAddr(rng)
		v, err := r.Lookup(i%2, a)
		if err != nil {
			t.Fatal(err)
		}
		if !verdictMatches(v, oracle, a) {
			t.Fatalf("wrong verdict for %s after cache repair", ip.FormatAddr(a))
		}
	}
	if q := r.Integrity().Quarantines; q != 0 {
		t.Fatalf("cache-only corruption caused %d quarantines; only engine damage may quarantine", q)
	}
}

// TestQuarantineManualRestore: with AutoRepair off, a corrupted LC stays
// quarantined — Healthy() reports it, its replies are fenced from peer
// caches by the generation guard — until RestoreLC repairs it by full
// swap.
func TestQuarantineManualRestore(t *testing.T) {
	tbl := rtable.Small(400, 7)
	oracle := lpm.NewReference(tbl)
	r, err := New(tbl, WithLCs(4), WithDefaultCache(), WithEngineName("bintrie"),
		WithRequestTimeout(2*time.Millisecond),
		WithScrub(fastScrub(false)),
		WithCorruption(CorruptionPolicy{
			Enabled: true, Seed: 5, EngineFlipRate: 1, MaxCorruptions: 1,
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	var quarantined int
	waitFor(t, "a quarantine", func() bool {
		for i, s := range r.LCStates() {
			if s == LCQuarantined {
				quarantined = i
				return true
			}
		}
		return false
	})
	if r.Healthy() {
		t.Fatal("Healthy() true with a quarantined LC") // the satellite fix
	}
	if rep := r.Integrity(); rep.Rebuilds != 0 {
		t.Fatalf("AutoRepair off but %d rebuilds ran", rep.Rebuilds)
	}

	// The quarantined LC keeps serving, but its replies must not be
	// cached by peers: the generation fence classifies them stale.
	before := r.Metrics().Sum(MetricStaleGen)
	rng := stats.NewRNG(55)
	for i := 0; i < 4000; i++ {
		lc := i % 4
		if lc == quarantined {
			continue
		}
		if _, err := r.Lookup(lc, tbl.RandomMatchedAddr(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if after := r.Metrics().Sum(MetricStaleGen); after <= before {
		t.Fatalf("no stale-generation fences recorded (%v -> %v); quarantined replies were cacheable", before, after)
	}

	if err := r.RestoreLC(quarantined); err != nil {
		t.Fatalf("RestoreLC(%d): %v", quarantined, err)
	}
	waitFor(t, "health restored", func() bool { return r.Healthy() })
	for i := 0; i < 2000; i++ {
		a := tbl.RandomMatchedAddr(rng)
		v, err := r.Lookup(i%4, a)
		if err != nil {
			t.Fatal(err)
		}
		if !verdictMatches(v, oracle, a) {
			t.Fatalf("wrong verdict for %s after manual restore", ip.FormatAddr(a))
		}
	}
}

// TestChaosScrubCorruption is the headline integrity scenario: seeded
// state corruption (engine flips, wrong fills, dropped invalidations) ×
// 1000-updates/s-class route churn × bounded-inbox overload, with the
// scrubber on. During the corruption window wrong verdicts are expected —
// that is the failure being injected — but every corruption is capped, so
// once the injector runs dry the scrubber must converge the plane back to
// a provably clean steady state: zero wrong verdicts against the final
// table, every LC healthy.
func TestChaosScrubCorruption(t *testing.T) {
	tbl := rtable.Small(1500, 71)
	for _, seed := range chaosSeeds(t) {
		t.Run("seed="+strconv.FormatUint(seed, 10), func(t *testing.T) {
			r, err := New(tbl, WithLCs(4), WithDefaultCache(), WithEngineName("bintrie"),
				WithRequestTimeout(5*time.Millisecond),
				WithOverload(OverloadPolicy{QueueDepth: 512}),
				WithScrub(fastScrub(true)),
				WithCorruption(CorruptionPolicy{
					Enabled:            true,
					Seed:               seed,
					EngineFlipRate:     1,
					WrongFillRate:      0.2,
					DropInvalidateRate: 0.2,
					MaxCorruptions:     8,
				}))
			if err != nil {
				t.Fatal(err)
			}
			defer r.Stop()

			oracle := newVersionedOracle(tbl)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			var served, shed, wrongDuring atomic.Int64
			var finalTbl atomic.Pointer[rtable.Table]
			finalTbl.Store(tbl)

			// Churn: incremental batches as fast as the control plane
			// absorbs them.
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := stats.NewRNG(seed * 31)
				cur := tbl
				for {
					select {
					case <-stop:
						return
					default:
					}
					stream := churnStream(cur, rng.Uint64())
					next := cur.ApplyAll(stream)
					if len(stream) == 0 || next.Len() == 0 {
						continue
					}
					oracle.announce(next)
					if err := r.ApplyUpdates(stream); err != nil {
						return
					}
					oracle.settle()
					cur = next
					finalTbl.Store(cur)
				}
			}()

			// Load: the batch plane at every LC. Wrong verdicts are
			// counted, not failed — the corruption window serves them by
			// design; the test's claim is about the steady state after.
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := stats.NewRNG(seed + 1000 + uint64(w)*17)
					addrs := make([]ip.Addr, 64)
					out := make([]Verdict, 64)
					for {
						select {
						case <-stop:
							return
						default:
						}
						for i := range addrs {
							addrs[i] = tbl.RandomMatchedAddr(rng)
						}
						lo, _ := oracle.window()
						err := r.LookupBatchInto(context.Background(), w, addrs, out)
						if err == ErrOverloaded {
							shed.Add(int64(len(addrs)))
							continue
						}
						if err != nil {
							return
						}
						_, hi := oracle.window()
						for i, v := range out {
							if v.ServedBy == ServedByShed {
								shed.Add(1)
								continue
							}
							served.Add(1)
							if !oracle.matches(v, addrs[i], lo, hi) {
								wrongDuring.Add(1)
							}
						}
					}
				}(w)
			}

			// Phase 1: run the full chaos mix until every injection site
			// is dry (the load keeps drawing the fill/invalidate sites).
			waitFor(t, "corruption exhaustion", func() bool { return r.CorruptionExhausted() })
			// Phase 2: stop churn and load, let the scrubber finish: every
			// LC healthy and two further full audit sweeps finding nothing.
			close(stop)
			wg.Wait()
			waitFor(t, "post-exhaustion repair convergence", func() bool {
				for _, s := range r.LCStates() {
					if s != LCHealthy {
						return false
					}
				}
				return true
			})
			c0 := r.Integrity().ScrubCycles
			waitFor(t, "two clean scrub cycles", func() bool {
				return r.Integrity().ScrubCycles >= c0+2
			})

			// Steady state: every verdict matches the final table exactly.
			final := lpm.NewReference(finalTbl.Load())
			rng := stats.NewRNG(seed ^ 0xfeed)
			wrongAfter := 0
			for i := 0; i < 4000; i++ {
				a := finalTbl.Load().RandomMatchedAddr(rng)
				v, err := r.Lookup(i%4, a)
				if err != nil {
					t.Fatal(err)
				}
				if !verdictMatches(v, final, a) {
					wrongAfter++
				}
			}
			if wrongAfter != 0 {
				t.Fatalf("%d wrong verdicts after repair completed; corruption outlived the scrubber", wrongAfter)
			}

			rep := r.Integrity()
			if rep.EngineFlips == 0 || rep.WrongFills == 0 || rep.DroppedInvalidations == 0 {
				t.Fatalf("injector did not exercise all three corruption kinds: %+v", rep)
			}
			if rep.Quarantines == 0 || rep.Rebuilds == 0 {
				t.Fatalf("engine corruption injected but never quarantined/rebuilt: %+v", rep)
			}
			var mism int64
			for _, l := range rep.LCs {
				mism += l.EngineMismatches + l.CacheMismatches
			}
			if mism == 0 {
				t.Fatal("corruption injected but the scrubber detected nothing")
			}
			if served.Load() == 0 {
				t.Fatal("no lookups served during the chaos window")
			}
			t.Logf("served=%d shed=%d wrongDuringWindow=%d flips=%d wrongFills=%d droppedInv=%d mismatches=%d quarantines=%d rebuilds=%d cycles=%d",
				served.Load(), shed.Load(), wrongDuring.Load(), rep.EngineFlips, rep.WrongFills,
				rep.DroppedInvalidations, mism, rep.Quarantines, rep.Rebuilds, rep.ScrubCycles)
		})
	}
}

// TestScrubDisabledZeroAlloc pins the acceptance bound: with the
// integrity plane left at its zero value (the default), the batch hot
// path must stay allocation-free — the scrubber and injector may cost
// nothing when off.
func TestScrubDisabledZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement skipped in -short mode")
	}
	tbl := rtable.Small(2000, 7)
	rng := stats.NewRNG(3)
	addrs := make([]ip.Addr, 64)
	for i := range addrs {
		addrs[i] = tbl.RandomMatchedAddr(rng)
	}
	out := make([]Verdict, len(addrs))
	r, err := New(tbl, WithLCs(1), WithRequestTimeout(time.Second), WithDefaultCache(),
		WithScrub(ScrubPolicy{}), WithCorruption(CorruptionPolicy{}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	for i := 0; i < 5; i++ {
		if err := r.LookupBatchInto(context.Background(), 0, addrs, out); err != nil {
			t.Fatal(err)
		}
	}
	n := testing.AllocsPerRun(200, func() {
		if err := r.LookupBatchInto(context.Background(), 0, addrs, out); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Errorf("disabled integrity plane allocates %.2f/op on the batch path, want 0", n)
	}
}
