// Fault injection for the inter-LC message path. The paper assumes a
// lossless low-latency switching fabric; a production forwarding plane
// cannot. A FaultInjector intercepts every lookup request and reply as it
// enters the fabric and may drop, delay, or duplicate it — the three
// failure modes of a real crossbar under congestion or a flaky backplane
// link. The router's deadline/retry/fallback machinery (see router.go)
// must yield a correct verdict for every lookup no matter what the
// injector does; the chaos tests drive exactly that.
package router

import (
	"sync/atomic"
	"time"

	"spal/internal/ip"
)

// ControlLC is the pseudo line-card id of the chassis control plane, used
// as the To of heartbeat messages seen by a FaultInjector.
const ControlLC = -1

// FabricMessage describes one message about to cross the fabric, as seen
// by a FaultInjector.
type FabricMessage struct {
	// Reply is false for a lookup request travelling to a home LC, true
	// for a result travelling back to the requester.
	Reply bool
	// Heartbeat marks a liveness beat from a line card to the health
	// monitor (To == ControlLC, Addr unused). Dropping heartbeats starves
	// the monitor and pushes the LC toward Suspect; Delay and Duplicate
	// are ignored for beats.
	Heartbeat bool
	// From and To are line-card ids. For a request, From is the
	// requester; for a reply, From is the responding home LC.
	From, To int
	// Addr is the destination address being resolved.
	Addr ip.Addr
}

// FaultDecision is an injector's verdict for one fabric message.
type FaultDecision struct {
	// Drop suppresses the message entirely (takes precedence over the
	// other fields).
	Drop bool
	// Duplicate delivers the message twice.
	Duplicate bool
	// Delay postpones delivery (of every copy) by this much.
	Delay time.Duration
}

// FaultInjector decides the fate of each fabric message. It is called
// from line-card goroutines concurrently and must be safe for concurrent
// use. A nil injector (the default) is a perfect fabric.
type FaultInjector func(FabricMessage) FaultDecision

// FaultConfig parameterizes the deterministic injector built by
// SeededFaults.
type FaultConfig struct {
	// Seed drives the decision stream.
	Seed uint64
	// DropRate, DupRate and DelayRate are per-message probabilities in
	// [0, 1].
	DropRate, DupRate, DelayRate float64
	// MaxDelay bounds injected delays; delayed messages wait a
	// deterministic duration in [0, MaxDelay). Zero disables delays even
	// when DelayRate > 0.
	MaxDelay time.Duration
}

// splitmix64 is the same finalizer stats.RNG uses, stateless so the
// injector can hash a shared counter without locking.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SeededFaults returns an injector whose decision stream is a pure
// function of cfg.Seed: the i-th fabric message (in injector call order)
// always receives the i-th decision. Which message draws which decision
// still depends on goroutine interleaving, but the aggregate fault mix is
// exactly reproducible, which is what the chaos tests and the
// spal-router -fault-rate demo need.
func SeededFaults(cfg FaultConfig) FaultInjector {
	var n atomic.Uint64
	return func(FabricMessage) FaultDecision {
		h := splitmix64(cfg.Seed ^ n.Add(1))
		// Three independent 21-bit draws from one 64-bit hash.
		draw := func(shift uint) float64 {
			return float64((h>>shift)&0x1f_ffff) / float64(1<<21)
		}
		var d FaultDecision
		d.Drop = draw(0) < cfg.DropRate
		d.Duplicate = draw(21) < cfg.DupRate
		if cfg.MaxDelay > 0 && draw(42) < cfg.DelayRate {
			d.Delay = time.Duration(splitmix64(h) % uint64(cfg.MaxDelay))
		}
		return d
	}
}
