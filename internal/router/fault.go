// Fault injection for the inter-LC message path. The paper assumes a
// lossless low-latency switching fabric; a production forwarding plane
// cannot. A FaultInjector intercepts every lookup request and reply as it
// enters the fabric and may drop, delay, or duplicate it — the three
// failure modes of a real crossbar under congestion or a flaky backplane
// link. The router's deadline/retry/fallback machinery (see router.go)
// must yield a correct verdict for every lookup no matter what the
// injector does; the chaos tests drive exactly that.
package router

import (
	"sync"
	"sync/atomic"
	"time"

	"spal/internal/ip"
)

// ControlLC is the pseudo line-card id of the chassis control plane, used
// as the To of heartbeat messages seen by a FaultInjector.
const ControlLC = -1

// FabricMessage describes one message about to cross the fabric, as seen
// by a FaultInjector.
type FabricMessage struct {
	// Reply is false for a lookup request travelling to a home LC, true
	// for a result travelling back to the requester.
	Reply bool
	// Heartbeat marks a liveness beat from a line card to the health
	// monitor (To == ControlLC, Addr unused). Dropping heartbeats starves
	// the monitor and pushes the LC toward Suspect; Delay and Duplicate
	// are ignored for beats.
	Heartbeat bool
	// From and To are line-card ids. For a request, From is the
	// requester; for a reply, From is the responding home LC.
	From, To int
	// Addr is the destination address being resolved.
	Addr ip.Addr
}

// FaultDecision is an injector's verdict for one fabric message.
type FaultDecision struct {
	// Drop suppresses the message entirely (takes precedence over the
	// other fields).
	Drop bool
	// Duplicate delivers the message twice.
	Duplicate bool
	// Delay postpones delivery (of every copy) by this much.
	Delay time.Duration
}

// FaultInjector decides the fate of each fabric message. It is called
// from line-card goroutines concurrently and must be safe for concurrent
// use. A nil injector (the default) is a perfect fabric.
type FaultInjector func(FabricMessage) FaultDecision

// FaultConfig parameterizes the deterministic injector built by
// SeededFaults.
type FaultConfig struct {
	// Seed drives the decision stream.
	Seed uint64
	// DropRate, DupRate and DelayRate are per-message probabilities in
	// [0, 1].
	DropRate, DupRate, DelayRate float64
	// MaxDelay bounds injected delays; delayed messages wait a
	// deterministic duration in [0, MaxDelay). Zero disables delays even
	// when DelayRate > 0.
	MaxDelay time.Duration
}

// splitmix64 is the same finalizer stats.RNG uses, stateless so the
// injector can hash a shared counter without locking.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SeededFaults returns an injector whose decision stream is a pure
// function of cfg.Seed: the i-th fabric message (in injector call order)
// always receives the i-th decision. Which message draws which decision
// still depends on goroutine interleaving, but the aggregate fault mix is
// exactly reproducible, which is what the chaos tests and the
// spal-router -fault-rate demo need.
func SeededFaults(cfg FaultConfig) FaultInjector {
	var n atomic.Uint64
	return func(FabricMessage) FaultDecision {
		h := splitmix64(cfg.Seed ^ n.Add(1))
		// Three independent 21-bit draws from one 64-bit hash.
		draw := func(shift uint) float64 {
			return float64((h>>shift)&0x1f_ffff) / float64(1<<21)
		}
		var d FaultDecision
		d.Drop = draw(0) < cfg.DropRate
		d.Duplicate = draw(21) < cfg.DupRate
		if cfg.MaxDelay > 0 && draw(42) < cfg.DelayRate {
			d.Delay = time.Duration(splitmix64(h) % uint64(cfg.MaxDelay))
		}
		return d
	}
}

// LinkFaultConfig parameterizes one directed fabric link (from → to) of
// a LinkFaults matrix. The zero value is a clean link.
type LinkFaultConfig struct {
	// DropRate, DupRate and DelayRate are per-message probabilities in
	// [0, 1] for messages traversing this directed link.
	DropRate, DupRate, DelayRate float64
	// Delay is the base injected delay when a DelayRate draw fires (or
	// always, when DelayRate is 0 and Delay > 0 — a deterministic slow
	// link). Jitter adds a seeded uniform extra in [0, Jitter).
	Delay, Jitter time.Duration
}

// LinkFaults is a per-directed-link fault matrix: each (from, to) pair
// can carry its own drop/delay/jitter mix, so A→B can be fully
// partitioned or browned out while B→A stays clean — the asymmetric
// gray failures real fabrics exhibit. Decisions are drawn from a
// seeded counter stream like SeededFaults, so a run is replayable in
// aggregate. Safe for concurrent use; links and brownouts may be
// reconfigured while the router is live.
type LinkFaults struct {
	// Nominal is the baseline one-way fabric latency used to scale
	// SlowLC brownouts: a browned-out LC's links add
	// (factor − 1) × Nominal of delay per message, modelling a link
	// running at 1/factor of its clean speed. Defaults to 100µs when
	// left zero at first use.
	Nominal time.Duration

	seed uint64
	n    atomic.Uint64

	mu    sync.RWMutex
	links map[[2]int]LinkFaultConfig
	slow  map[int]float64
}

// NewLinkFaults returns an empty (perfect-fabric) matrix whose decision
// stream is seeded like SeededFaults.
func NewLinkFaults(seed uint64) *LinkFaults {
	return &LinkFaults{seed: seed}
}

// SetLink installs cfg on the directed link from → to, replacing any
// previous configuration. A zero cfg restores the link to clean.
func (lf *LinkFaults) SetLink(from, to int, cfg LinkFaultConfig) {
	lf.mu.Lock()
	defer lf.mu.Unlock()
	if lf.links == nil {
		lf.links = make(map[[2]int]LinkFaultConfig)
	}
	lf.links[[2]int{from, to}] = cfg
}

// SlowLC puts line card i into a sustained brownout: every non-heartbeat
// message to or from it is delayed by (factor − 1) × Nominal, i.e. its
// fabric links run at 1/factor speed in both directions. factor ≤ 1
// clears the brownout. Heartbeats are never slowed — a browned-out LC
// still looks alive to the lifecycle monitor, which is exactly what
// makes the failure "gray".
func (lf *LinkFaults) SlowLC(i int, factor float64) {
	lf.mu.Lock()
	defer lf.mu.Unlock()
	if factor <= 1 {
		delete(lf.slow, i)
		return
	}
	if lf.slow == nil {
		lf.slow = make(map[int]float64)
	}
	lf.slow[i] = factor
}

// Injector returns the FaultInjector view of the matrix, suitable for
// WithFaultInjector. The injector reads the live matrix, so SetLink and
// SlowLC calls take effect on subsequent messages.
func (lf *LinkFaults) Injector() FaultInjector {
	return func(m FabricMessage) FaultDecision {
		var d FaultDecision
		lf.mu.RLock()
		cfg, hasLink := lf.links[[2]int{m.From, m.To}]
		factor := lf.slow[m.From]
		if f := lf.slow[m.To]; f > factor {
			factor = f
		}
		nominal := lf.Nominal
		lf.mu.RUnlock()
		if m.Heartbeat {
			// Brownout spares heartbeats (see SlowLC); explicit link
			// faults still apply so a heartbeat-starving partition
			// remains expressible.
			factor = 0
		}
		if !hasLink && factor == 0 {
			return d
		}
		h := splitmix64(lf.seed ^ lf.n.Add(1))
		draw := func(shift uint) float64 {
			return float64((h>>shift)&0x1f_ffff) / float64(1<<21)
		}
		if hasLink {
			d.Drop = draw(0) < cfg.DropRate
			d.Duplicate = draw(21) < cfg.DupRate
			if cfg.Delay > 0 && (cfg.DelayRate == 0 || draw(42) < cfg.DelayRate) {
				d.Delay = cfg.Delay
				if cfg.Jitter > 0 {
					d.Delay += time.Duration(splitmix64(h) % uint64(cfg.Jitter))
				}
			}
		}
		if factor > 1 {
			if nominal <= 0 {
				nominal = 100 * time.Microsecond
			}
			d.Delay += time.Duration((factor - 1) * float64(nominal))
		}
		return d
	}
}
