// Corruption injection for the data-plane state itself. Where fault.go
// models a lossy fabric (messages that never arrive), this file models
// damaged state: a trie node whose verdict flipped, a cache fill stamped
// with the wrong next hop, a route-update invalidation that never ran.
// None of these failures are visible to the deadline/retry machinery —
// the lookup completes promptly, with a wrong answer — which is exactly
// why the integrity scrubber (scrub.go) exists. The injector is seeded
// and deterministic in the same style as SeededFaults, and capped, so
// chaos tests can assert the system returns to a corruption-free steady
// state after the last repair.
//
// Engine flips are driven from the health ticker rather than from the
// lookup path: each tick, each LC draws against EngineFlipRate; a firing
// draw picks one prefix from that LC's current partition table, computes
// the authoritative verdict at the prefix's first address from the
// canonical table, and poisons the prefix's whole address range in the
// LC's live engine with that verdict XOR 1 (see lpm.Corrupt). Poisoning
// table-derived ranges is what makes the scrubber's detection bound
// provable: the scrub cursor sweeps exactly those prefixes' first
// addresses, so an injected flip is re-sampled within ceil(P/K) cycles.
package router

import (
	"spal/internal/cache"
	"spal/internal/lpm"
	"spal/internal/rtable"
)

// CorruptionPolicy configures the state-corruption injector. The zero
// value disables it entirely; a disabled policy leaves every engine and
// cache unwrapped, so the production hot paths are untouched.
type CorruptionPolicy struct {
	// Enabled turns the injector on.
	Enabled bool
	// Seed drives every injection draw; the same seed always produces the
	// same corruption schedule for the same draw sequence.
	Seed uint64
	// EngineFlipRate is the per-LC, per-health-tick probability of
	// poisoning one randomly chosen prefix range in that LC's live engine
	// with a wrong next hop — the software model of a flipped trie node.
	EngineFlipRate float64
	// WrongFillRate is the per-call probability that an LR-cache fill is
	// stamped with the true next hop XOR 1 (see cache.CorruptStore).
	WrongFillRate float64
	// DropInvalidateRate is the per-call probability that an LR-cache
	// InvalidateRange is silently swallowed, leaving stale entries behind
	// a route update.
	DropInvalidateRate float64
	// MaxCorruptions caps injections per site: the engine flipper as a
	// whole, and each LC's cache store independently. 0 means unlimited.
	// A finite cap lets tests wait for CorruptionExhausted and then
	// assert zero wrong verdicts after the final repair.
	MaxCorruptions int64
}

// buildEngine constructs an LC's forwarding engine from a partition
// table, wrapping it in the corruption overlay when engine-flip injection
// is enabled. Every engine incarnation funnels through here —
// construction, two-phase swap, crash re-home, quarantine rebuild, and
// the non-dynamic ApplyUpdates rebuild — so injected damage stays
// coverable (and a rebuild, which constructs a fresh overlay, implicitly
// clears it, exactly like replacing a damaged SRAM bank).
func (r *Router) buildEngine(tbl *rtable.Table) lpm.Engine {
	e := r.cfg.Engine(tbl)
	if r.corruptPol.Enabled && r.corruptPol.EngineFlipRate > 0 {
		e = lpm.NewCorrupt(e)
	}
	return e
}

// wrapCache wraps an LC's cache store with fill/invalidate corruption
// when the policy asks for it. Construction-time only: caches survive
// crashes and rebuilds (they are flushed, never replaced), so the set of
// corrupt stores is fixed for the router's lifetime.
func (r *Router) wrapCache(i int, s cache.Store) cache.Store {
	p := r.corruptPol
	if !p.Enabled || (p.WrongFillRate <= 0 && p.DropInvalidateRate <= 0) {
		return s
	}
	cs := cache.NewCorrupt(s, cache.CorruptConfig{
		Seed:               splitmix64(p.Seed + uint64(i)),
		WrongFillRate:      p.WrongFillRate,
		DropInvalidateRate: p.DropInvalidateRate,
		MaxEvents:          p.MaxCorruptions,
	})
	r.corruptStores = append(r.corruptStores, cs)
	return cs
}

// maybeInjectLocked is the health ticker's engine-flip hook: one draw per
// serving LC per tick; a firing draw poisons one partition prefix in that
// LC's live engine with the wrong verdict. The poison is applied on the
// owning LC goroutine (the engine is goroutine-private) and the monitor
// waits for it, so the flip counter is exact. r.mu must be held.
func (r *Router) maybeInjectLocked() {
	p := r.corruptPol
	if !p.Enabled || p.EngineFlipRate <= 0 {
		return
	}
	for i := range r.lcs {
		if st := r.life[i].state.Load(); st == LCDown || st == LCDraining || st == LCQuarantined {
			continue
		}
		if p.MaxCorruptions > 0 && r.engineFlips.Load() >= p.MaxCorruptions {
			return
		}
		h := splitmix64(p.Seed ^ r.corruptN.Add(1))
		if float64(h&0x1f_ffff)/float64(1<<21) >= p.EngineFlipRate {
			continue
		}
		tbl := r.part.Table(i)
		n := tbl.Len()
		if n == 0 {
			continue
		}
		pfx := tbl.Routes()[int(splitmix64(h)%uint64(n))].Prefix
		lo, hi := pfx.FirstAddr(), pfx.LastAddr()
		// The poison verdict is the authoritative answer at lo, flipped —
		// guaranteed wrong at lo, which is exactly the address the scrub
		// cursor will re-sample.
		nh := rtable.NextHop(1)
		if rt, ok := tbl.LongestMatch(lo); ok {
			nh = rt.NextHop ^ 1
		}
		done := make(chan struct{})
		sent := r.sendCtrlSwap(i, message{kind: mExec, do: func(lc *lineCard) {
			if c := lpm.AsCorrupt(lc.engine); c != nil {
				c.Poison(lo, hi, nh)
				r.engineFlips.Add(1)
			}
			close(done)
		}})
		if !sent {
			return
		}
		select {
		case <-done:
		case <-r.life[i].exited:
			// Crashed before the poison landed; the reborn slot gets a
			// fresh engine anyway.
		case <-r.quit:
			return
		}
	}
}

// CorruptionExhausted reports whether every injection site has reached
// its MaxCorruptions cap — the point after which no new corruption can
// appear and the scrubber's repairs converge to a clean steady state.
// Always false for an uncapped or disabled policy.
func (r *Router) CorruptionExhausted() bool {
	p := r.corruptPol
	if !p.Enabled || p.MaxCorruptions <= 0 {
		return false
	}
	if p.EngineFlipRate > 0 && r.engineFlips.Load() < p.MaxCorruptions {
		return false
	}
	for _, cs := range r.corruptStores {
		if !cs.Exhausted() {
			return false
		}
	}
	return true
}
