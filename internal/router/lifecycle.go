// Line-card lifecycle: health monitoring, admin drain, crash detection,
// and automatic partition re-homing.
//
// SPAL's premise is that each LC owns one ROT-partition, so a dead or
// wedged line card black-holes every remote lookup homed on it until the
// retry budget burns down into the full-table fallback. The lifecycle
// subsystem turns LC failure and maintenance into first-class events:
//
//	          beats resume
//	    ┌─────────────────────┐
//	    ▼                     │
//	HEALTHY ──beats missed──▶ SUSPECT ──missed ∧ crashed──▶ DOWN
//	    │                         │                          │ ▲
//	    │ DrainLC          DrainLC│        RestoreLC         │ │ KillLC /
//	    ▼                         ▼      ┌───────────────────┘ │ crash
//	DRAINING ◀────────────────────┘      ▼                     │
//	    │        RestoreLC            HEALTHY ─────────────────┘
//	    └────────────────────────────▶
//
// Heartbeats piggyback on the per-LC deadline ticker and cross the
// (virtual) fabric, so an installed FaultInjector can drop them: a few
// consecutive losses demote the LC to Suspect, resumed beats heal it.
// Down is deliberately stricter than Suspect: the health monitor only
// declares an LC dead once its goroutine has provably exited (the
// crash), never on missed beats alone — re-homing a partition away from
// an owner that might still be running would be a split-brain.
//
// When an LC goes Down the router recomputes the partitioning over the
// survivors (partition.Subset, ψ−1 pattern folding), adopts the dead
// LC's waitlists, restarts the slot as an empty shell that forwards its
// arrival traffic, replays the parked lookups against the new homes, and
// runs the same two-phase swap UpdateTable uses so every LC installs the
// new engine + homeOf pair and flushes the now-stale LOC/REM cache
// entries for the moved ranges. DrainLC is the graceful version: the
// partition moves first, then the call blocks until every waitlist that
// existed at drain time has resolved — no lookup is ever dropped or
// expired by an admin drain.
//
// A fifth state, QUARANTINED, is entered from Healthy/Suspect by the
// integrity scrubber rather than by the health monitor: the LC's
// forwarding state disagreed with the canonical table. It leaves via a
// self-healing rebuild, RestoreLC, or any full swap; see scrub.go.
package router

import (
	"fmt"
	"sync/atomic"
	"time"

	"spal/internal/ip"
	"spal/internal/partition"
	"spal/internal/tracing"
)

// atomicLCState is an LCState behind an atomic (monitor writes, Metrics
// and LCStates read).
type atomicLCState struct{ v atomic.Int32 }

func (a *atomicLCState) Load() LCState   { return LCState(a.v.Load()) }
func (a *atomicLCState) Store(s LCState) { a.v.Store(int32(s)) }

// atomicTime is a wall-clock instant behind an atomic (LC goroutines
// write their heartbeat, the monitor reads).
type atomicTime struct{ v atomic.Int64 }

func (a *atomicTime) Load() time.Time   { return time.Unix(0, a.v.Load()) }
func (a *atomicTime) Store(t time.Time) { a.v.Store(t.UnixNano()) }

// LCState is one line card's lifecycle state.
type LCState uint8

// LC lifecycle states.
const (
	// LCHealthy: the LC heartbeats on time and owns its ROT-partition.
	LCHealthy LCState = iota
	// LCSuspect: heartbeats have been missing for at least the suspect
	// window. The LC keeps its partition (fabric loss can fake this);
	// lookups homed on it ride the deadline/retry/fallback machinery.
	LCSuspect
	// LCDown: the LC crashed (its goroutine exited) and its partition has
	// been re-homed onto the survivors. The slot keeps accepting arrival
	// traffic as an empty forwarding shell until RestoreLC.
	LCDown
	// LCDraining: an administrator called DrainLC; the partition has been
	// re-homed and the LC is quiescing (or has quiesced) its waitlists.
	LCDraining
	// LCQuarantined: the integrity scrubber found the LC's forwarding
	// state disagreeing with the canonical table (see scrub.go). The LC
	// keeps its partition and keeps serving — but it holds a stale table
	// generation, so the generation guard keeps every reply it sends out
	// of peer caches. A rebuild (automatic under ScrubPolicy.AutoRepair),
	// RestoreLC, or any full partitioning swap returns it to LCHealthy.
	LCQuarantined
)

// lcStateNames are the wire/report names, used by String and the
// spal_router_lc_state gauge documentation.
var lcStateNames = [...]string{"healthy", "suspect", "down", "draining", "quarantined"}

// String implements fmt.Stringer.
func (s LCState) String() string {
	if int(s) < len(lcStateNames) {
		return lcStateNames[s]
	}
	return fmt.Sprintf("LCState(%d)", uint8(s))
}

// Lifecycle defaults: an LC is Suspect after one request-timeout without
// a heartbeat (the ticker beats every timeout/4, so ~3 missed beats) and
// eligible for Down after two.
const (
	defaultSuspectFactor = 1 // × RequestTimeout
	defaultDownFactor    = 2 // × RequestTimeout
)

// lcLife is the control-plane view of one line-card slot. state and
// lastBeat are atomics (read by Metrics and the health monitor without
// locks); die and exited belong to the current goroutine incarnation and
// are replaced, under Router.mu, when a crashed slot is reborn.
type lcLife struct {
	state    atomicLCState
	lastBeat atomicTime
	die      chan struct{} // closed by KillLC to crash this incarnation
	exited   chan struct{} // closed when this incarnation's goroutine returns
}

// beat records one heartbeat from an LC, routed through the fault
// injector like any other fabric message (To == ControlLC): a dropped
// beat is simply never recorded, and enough consecutive losses push the
// LC to Suspect until beats resume.
func (r *Router) beat(id int, now time.Time) {
	if r.injector != nil {
		if r.injector(FabricMessage{Heartbeat: true, From: id, To: ControlLC}).Drop {
			return
		}
	}
	r.life[id].lastBeat.Store(now)
}

// healthLoop is the router's health monitor: every ticker period it
// sweeps the heartbeat clocks, demotes silent LCs to Suspect, heals
// Suspects whose beats resumed, and re-homes LCs that are both silent
// and provably crashed.
func (r *Router) healthLoop() {
	defer r.wg.Done()
	tick := time.NewTicker(r.tickEvery)
	defer tick.Stop()
	for {
		select {
		case now := <-tick.C:
			r.healthCheck(now)
		case <-r.quit:
			return
		}
	}
}

func (r *Router) healthCheck(now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped.Load() {
		return
	}
	var dead []int
	for i, l := range r.life {
		st := l.state.Load()
		if st == LCDown {
			continue
		}
		crashed := false
		select {
		case <-l.exited:
			crashed = true
		default:
		}
		age := now.Sub(l.lastBeat.Load())
		if age >= r.downAfter && crashed {
			dead = append(dead, i)
			continue
		}
		switch {
		case st == LCHealthy && age >= r.suspectAfter:
			l.state.Store(LCSuspect)
			r.suspects.Add(1)
		case st == LCSuspect && age < r.suspectAfter:
			l.state.Store(LCHealthy)
		}
	}
	for _, i := range dead {
		r.rehomeLocked(i)
	}
	r.maybeInjectLocked()
	r.maybeScrubLocked(now)
	r.maybeRebalanceLocked(now)
	r.maybeGrayLocked(now)
}

// rehomeLocked declares LC dead, re-homes its partition onto the
// survivors, reboots the slot as an empty forwarding shell, and replays
// its parked lookups. r.mu must be held and the LC's goroutine must have
// exited (close(exited) happens-before this call, which is what makes
// adopting its goroutine-private state race-free).
func (r *Router) rehomeLocked(dead int) {
	l := r.life[dead]
	l.state.Store(LCDown)
	alive := r.aliveLCsLocked()
	if len(alive) == 0 {
		// Everything else is down or draining: the reborn shell inherits
		// the whole table rather than leaving the router homeless.
		alive = []int{dead}
	}
	part := partition.Subset(r.part.Full(), r.cfg.NumLCs, alive)

	// Adopt the corpse. The crash lost the LC's engine and cache; give
	// the shell the new (empty, unless it is the sole survivor) partition
	// and bump the epoch so replies computed for the dead incarnation
	// cannot fill the flushed cache.
	lc := r.lcs[dead]
	lc.engine = r.buildEngine(part.Table(dead))
	lc.homeOf = part.HomeLC
	lc.epoch++
	lc.gen = r.gen // the shell's engine is built from the current table
	r.scrub[dead].streak.Store(0)
	if lc.cache != nil {
		lc.cache.Flush()
	}
	pend := lc.pending
	lc.pending = make(map[ip.Addr]*waitlist)
	lc.pendingDepth.Store(0)
	lc.waiters.Store(0)

	// Rebirth: a fresh incarnation of the slot, serving arrival traffic
	// by forwarding to the new homes. healthLoop itself is a member of
	// r.wg, so the counter is provably non-zero here and Add cannot race
	// Stop's Wait.
	l.die = make(chan struct{})
	l.exited = make(chan struct{})
	l.lastBeat.Store(time.Now())
	r.wg.Add(1)
	go r.lcLoop(lc, r.outs[dead], r.ctrls[dead], l.die, l.exited)

	// Replay the lookups that were parked at the dead LC: re-submitted at
	// the reborn slot (FIFO-before the swap messages), they re-dispatch
	// against the new homeOf. Remote waiters need no replay — their
	// requesters hold their own deadline-armed waitlists, which the
	// mRekey phase of the swap below re-drives.
	replayed := 0
	for addr, wl := range pend {
		for _, w := range wl.locals {
			// A re-homed lookup is always interesting: trace it even if
			// head sampling skipped it. Safe off the LC goroutine — the
			// corpse's exit happens-before this adoption, and the trace
			// hands off to the reborn LC inside the replayed message.
			if w.tr == nil {
				w.tr = r.lateTrace(dead, addr)
			}
			w.tr.Record(tracing.EvRehome, int64(dead), 0)
			r.replaySend(dead, message{kind: mLookup, addr: addr, resp: w.ch, bd: w.bd, slot: w.slot, start: w.start, tr: w.tr})
			replayed++
		}
		if wl.trLate {
			// The waitlist's own late trace cannot ride any single
			// replayed waiter; close it out rather than leak it.
			r.finishTrace(wl.tr, ServedByUnknown, false)
		}
	}
	r.rehomes.Add(1)
	r.replayed.Add(int64(replayed))

	if err := r.swapPartitioning(part); err != nil {
		return // stopping; the partial swap no longer matters
	}
	r.part = part
}

// aliveLCsLocked returns the LCs that currently own partitions (Healthy,
// Suspect — a Suspect may just be behind a lossy fabric — or Quarantined,
// which still serves while its replies are fenced out of peer caches).
// r.mu must be held.
func (r *Router) aliveLCsLocked() []int {
	var out []int
	for i, l := range r.life {
		if st := l.state.Load(); st == LCHealthy || st == LCSuspect || st == LCQuarantined {
			out = append(out, i)
		}
	}
	return out
}

// LCStates returns every line card's current lifecycle state, indexed by
// LC id.
func (r *Router) LCStates() []LCState {
	out := make([]LCState, len(r.life))
	for i, l := range r.life {
		out[i] = l.state.Load()
	}
	return out
}

// KillLC crashes line card lc: its goroutine exits mid-stream exactly as
// a hardware fault would stop a real card, losing its engine and cache
// but not the fabric-buffered messages addressed to it. The health
// monitor notices the missing heartbeats, declares the LC Down, re-homes
// its partition onto the survivors and replays its parked lookups; every
// in-flight lookup still terminates with a correct verdict. Chaos-test
// hook first, admin tool second.
func (r *Router) KillLC(lc int) error {
	if lc < 0 || lc >= r.cfg.NumLCs {
		return fmt.Errorf("router: no such LC %d", lc)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped.Load() {
		return ErrStopped
	}
	l := r.life[lc]
	if l.state.Load() == LCDown {
		return fmt.Errorf("router: LC %d is already down", lc)
	}
	select {
	case <-l.die:
	default:
		close(l.die)
	}
	return nil
}

// DrainLC takes line card lc out of service for maintenance: its
// ROT-partition is re-homed onto the remaining LCs with the same
// two-phase swap UpdateTable uses, and the call then blocks until every
// lookup that was parked at the LC when the drain began has resolved.
// The drained LC keeps running — it still accepts arrival traffic and
// serves it via its LR-cache and the fabric — it just owns no partition
// until RestoreLC. A clean drain never expires or drops a lookup.
func (r *Router) DrainLC(lc int) error {
	if lc < 0 || lc >= r.cfg.NumLCs {
		return fmt.Errorf("router: no such LC %d", lc)
	}
	r.mu.Lock()
	if r.stopped.Load() {
		r.mu.Unlock()
		return ErrStopped
	}
	l := r.life[lc]
	switch l.state.Load() {
	case LCDraining:
		r.mu.Unlock()
		return fmt.Errorf("router: LC %d is already draining", lc)
	case LCDown:
		r.mu.Unlock()
		return fmt.Errorf("router: LC %d is down", lc)
	}
	start := time.Now()
	l.state.Store(LCDraining)
	alive := r.aliveLCsLocked()
	if len(alive) == 0 {
		l.state.Store(LCHealthy)
		r.mu.Unlock()
		return fmt.Errorf("router: cannot drain LC %d, it is the last active LC", lc)
	}
	part := partition.Subset(r.part.Full(), r.cfg.NumLCs, alive)
	if err := r.swapPartitioning(part); err != nil {
		r.mu.Unlock()
		return err
	}
	r.part = part
	r.mu.Unlock()

	// Quiesce: the swap's mRekey already re-drove every parked lookup
	// against the new homes; wait until each address that was in the
	// LC's waitlists has resolved at least once. Tracking the snapshot
	// (not the live depth) keeps the drain bounded under continuous
	// arrival traffic.
	remaining, err := r.pendingAddrs(lc)
	if err != nil {
		return err
	}
	for len(remaining) > 0 {
		select {
		case <-r.quit:
			return ErrStopped
		case <-time.After(r.tickEvery):
		}
		cur, err := r.pendingAddrs(lc)
		if err != nil {
			return err
		}
		for a := range remaining {
			if _, still := cur[a]; !still {
				delete(remaining, a)
			}
		}
	}
	r.drains.Add(1)
	r.drainDur.ObserveDuration(time.Since(start))
	return nil
}

// pendingAddrs snapshots the set of addresses with parked lookups at an
// LC, collected on the owning goroutine. Rides the control plane so the
// snapshot lands even when the data inbox is at capacity.
func (r *Router) pendingAddrs(lc int) (map[ip.Addr]struct{}, error) {
	out := make(chan map[ip.Addr]struct{}, 1)
	ok := r.sendCtrl(lc, message{kind: mExec, do: func(lc *lineCard) {
		m := make(map[ip.Addr]struct{}, len(lc.pending))
		for a := range lc.pending {
			m[a] = struct{}{}
		}
		out <- m
	}})
	if !ok {
		return nil, ErrStopped
	}
	select {
	case m := <-out:
		return m, nil
	case <-r.quit:
		return nil, ErrStopped
	}
}

// RestoreLC returns a drained, down, or quarantined line card to
// service: the partitioning is recomputed over the enlarged alive set
// and swapped in two phases, after which the LC owns a ROT-partition
// again. For a Down LC this restores the reborn shell (the slot's
// goroutine keeps running across a crash), so no separate "replace card"
// call is needed. For a Quarantined LC the swap rebuilds its engine from
// the canonical table, which is exactly the manual repair path when
// ScrubPolicy.AutoRepair is off.
func (r *Router) RestoreLC(lc int) error {
	if lc < 0 || lc >= r.cfg.NumLCs {
		return fmt.Errorf("router: no such LC %d", lc)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped.Load() {
		return ErrStopped
	}
	l := r.life[lc]
	if st := l.state.Load(); st == LCHealthy || st == LCSuspect {
		return fmt.Errorf("router: LC %d is %s, nothing to restore", lc, st)
	}
	l.lastBeat.Store(time.Now()) // fresh grace period before suspicion
	l.state.Store(LCHealthy)
	part := partition.Subset(r.part.Full(), r.cfg.NumLCs, r.aliveLCsLocked())
	if err := r.swapPartitioning(part); err != nil {
		return err
	}
	r.part = part
	return nil
}
