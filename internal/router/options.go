package router

import (
	"time"

	"spal/internal/cache"
	"spal/internal/lpm"
)

// Option configures a router at construction time. Options are applied
// in order over the defaults (one line card, reference engine, caches
// off), so later options win.
type Option func(*Config)

// WithLCs sets ψ, the number of line cards.
func WithLCs(n int) Option {
	return func(c *Config) { c.NumLCs = n }
}

// WithEngine sets the matching-structure builder every LC uses. Most
// callers want WithEngineName, which resolves a registry name and is
// validated at construction; WithEngine remains for custom Builders.
func WithEngine(b lpm.Builder) Option {
	return func(c *Config) { c.Engine = b }
}

// WithEngineName selects the per-LC engine by registry name ("flat",
// "lulea", "stride24", ...; see internal/lpm/engines). New fails with an
// error listing the valid names when the name is unknown. A non-empty
// name takes precedence over WithEngine.
func WithEngineName(name string) Option {
	return func(c *Config) { c.EngineName = name }
}

// WithCache enables LR-caches with the given organization.
func WithCache(cc cache.Config) Option {
	return func(c *Config) {
		c.Cache = cc
		c.CacheEnabled = true
	}
}

// WithDefaultCache enables LR-caches with the paper's standard
// organization (4K blocks, 4-way, 8 victim blocks, γ=50%, LRU).
func WithDefaultCache() Option { return WithCache(cache.DefaultConfig()) }

// WithoutCache disables LR-caches (every lookup reaches a forwarding
// engine), the paper's baseline configuration.
func WithoutCache() Option {
	return func(c *Config) { c.CacheEnabled = false }
}

// WithCacheShards splits each LC's LR-cache into n line-padded shards
// selected by the low address bits, keeping total capacity unchanged
// (Cache.Blocks is divided among the shards). n must be a power of two
// that leaves the per-shard geometry valid — New validates and returns
// an error otherwise. 0 and 1 mean unsharded.
func WithCacheShards(n int) Option {
	return func(c *Config) { c.CacheShards = n }
}

// WithBatchCoalescing toggles the pooled-descriptor batch data plane
// (see batch.go). New defaults it on; pass false to force the legacy
// per-address submission path for every batch call — the chaos
// equivalence suite uses exactly that to prove the two planes agree.
func WithBatchCoalescing(on bool) Option {
	return func(c *Config) { c.BatchCoalescing = on }
}

// WithRebalance enables the background partition rebalancer: when
// incremental updates (ApplyUpdates) drift the partitioning's replication
// factor or per-LC size skew past the policy's thresholds, the router
// re-selects control bits over the current table and runs the full
// two-phase swap. Pass DefaultRebalancePolicy() for the default
// thresholds. See updates.go.
func WithRebalance(p RebalancePolicy) Option {
	return func(c *Config) { c.Rebalance = p }
}

// WithFaultInjector installs a chaos hook on the inter-LC message path:
// every fabric request and reply is offered to fi, which may drop, delay,
// or duplicate it (see SeededFaults for a deterministic injector). The
// deadline/retry/fallback machinery guarantees every lookup still
// terminates with a correct verdict.
func WithFaultInjector(fi FaultInjector) Option {
	return func(c *Config) { c.FaultInjector = fi }
}

// WithRequestTimeout sets the per-attempt deadline on fabric lookup
// requests (default 50ms). Expired requests are retried with exponential
// backoff; see WithMaxRetries.
func WithRequestTimeout(d time.Duration) Option {
	return func(c *Config) { c.RequestTimeout = d }
}

// WithMaxRetries bounds how many times a timed-out fabric request is
// re-sent before the lookup degrades to the full-table fallback engine
// (default 3; negative disables retries).
func WithMaxRetries(n int) Option {
	return func(c *Config) { c.MaxRetries = n }
}

// WithScrub enables the online integrity scrubber: per health-ticker
// cycle it re-verifies sampled engine verdicts and every LR-cache entry
// against the canonical routing table, evicts mismatched cache entries,
// and quarantines (and, under AutoRepair, rebuilds) line cards whose
// engines disagree. Pass DefaultScrubPolicy() for the defaults. See
// scrub.go.
func WithScrub(p ScrubPolicy) Option {
	return func(c *Config) { c.Scrub = p }
}

// WithCorruption installs the seeded state-corruption injector: engine
// verdict flips, wrong-value cache fills, and dropped cache
// invalidations, capped by MaxCorruptions. Chaos-test hook for the
// scrubber; see corrupt.go.
func WithCorruption(p CorruptionPolicy) Option {
	return func(c *Config) { c.Corruption = p }
}

// WithHealthThresholds sets the LC lifecycle windows (see lifecycle.go):
// an LC with no recorded heartbeat for suspectAfter is demoted to Suspect,
// and a crashed LC silent for downAfter is declared Down and re-homed.
// Defaults are 1× and 2× the request timeout; downAfter is raised to
// suspectAfter when smaller.
func WithHealthThresholds(suspectAfter, downAfter time.Duration) Option {
	return func(c *Config) {
		c.SuspectAfter = suspectAfter
		c.DownAfter = downAfter
	}
}
