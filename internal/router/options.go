package router

import (
	"time"

	"spal/internal/cache"
	"spal/internal/lpm"
)

// Option configures a router at construction time. Options are applied
// in order over the defaults (one line card, reference engine, caches
// off), so later options win.
type Option func(*Config)

// WithLCs sets ψ, the number of line cards.
func WithLCs(n int) Option {
	return func(c *Config) { c.NumLCs = n }
}

// WithEngine sets the matching-structure builder every LC uses.
func WithEngine(b lpm.Builder) Option {
	return func(c *Config) { c.Engine = b }
}

// WithCache enables LR-caches with the given organization.
func WithCache(cc cache.Config) Option {
	return func(c *Config) {
		c.Cache = cc
		c.CacheEnabled = true
	}
}

// WithDefaultCache enables LR-caches with the paper's standard
// organization (4K blocks, 4-way, 8 victim blocks, γ=50%, LRU).
func WithDefaultCache() Option { return WithCache(cache.DefaultConfig()) }

// WithoutCache disables LR-caches (every lookup reaches a forwarding
// engine), the paper's baseline configuration.
func WithoutCache() Option {
	return func(c *Config) { c.CacheEnabled = false }
}

// WithFaultInjector installs a chaos hook on the inter-LC message path:
// every fabric request and reply is offered to fi, which may drop, delay,
// or duplicate it (see SeededFaults for a deterministic injector). The
// deadline/retry/fallback machinery guarantees every lookup still
// terminates with a correct verdict.
func WithFaultInjector(fi FaultInjector) Option {
	return func(c *Config) { c.FaultInjector = fi }
}

// WithRequestTimeout sets the per-attempt deadline on fabric lookup
// requests (default 50ms). Expired requests are retried with exponential
// backoff; see WithMaxRetries.
func WithRequestTimeout(d time.Duration) Option {
	return func(c *Config) { c.RequestTimeout = d }
}

// WithMaxRetries bounds how many times a timed-out fabric request is
// re-sent before the lookup degrades to the full-table fallback engine
// (default 3; negative disables retries).
func WithMaxRetries(n int) Option {
	return func(c *Config) { c.MaxRetries = n }
}

// WithHealthThresholds sets the LC lifecycle windows (see lifecycle.go):
// an LC with no recorded heartbeat for suspectAfter is demoted to Suspect,
// and a crashed LC silent for downAfter is declared Down and re-homed.
// Defaults are 1× and 2× the request timeout; downAfter is raised to
// suspectAfter when smaller.
func WithHealthThresholds(suspectAfter, downAfter time.Duration) Option {
	return func(c *Config) {
		c.SuspectAfter = suspectAfter
		c.DownAfter = downAfter
	}
}
