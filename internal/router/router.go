// Package router is a working concurrent implementation of a SPAL router:
// one goroutine per line card, each owning its ROT-partition forwarding
// engine and its LR-cache, exchanging lookup requests and replies over
// channels that play the switching fabric's role.
//
// Where package sim models timing (cycles, queues, fabric latency), this
// package provides the functional forwarding plane a downstream user would
// embed: submit a destination address at a line card, receive the next
// hop. All SPAL mechanisms are live — home-LC routing of misses, LOC/REM
// result caching, miss coalescing (concurrent lookups for one address
// trigger a single FE execution), and whole-table updates with cache
// flushes and epoch-guarded replies so stale results never enter a cache
// after a flush.
//
// Observability: every line card keeps atomic event counters and
// lock-free lookup-latency histograms keyed by where the result came from
// (cache / fe / remote). Metrics returns an immutable snapshot of all of
// them in the shared internal/metrics vocabulary, ready for Prometheus
// export; see metrics.go.
//
// Concurrency design, per the repository's Go guides: no shared mutable
// state. Each LC goroutine exclusively owns its cache and engine; all
// communication is message passing. By default inter-LC channels are
// unbounded (a small buffering goroutine per LC) so LCs never deadlock
// on mutual backpressure; WithOverload replaces them with bounded
// inboxes plus an admission layer that sheds — never blocks — on the
// fabric path, preserving the same deadlock freedom while bounding
// memory and tail latency (see overload.go).
//
// Failure model: the paper assumes a lossless fabric; this package does
// not. Every fabric request carries a deadline tracked by a coarse
// per-LC ticker (no extra locks — the deadline state lives in the LC's
// own waitlists). A request unanswered by its deadline is retried with
// exponential backoff up to MaxRetries times; when retries are
// exhausted the arrival LC resolves the address against a router-wide
// read-only full-table engine and the verdict is marked
// ServedByFallback, so every lookup terminates even over a fabric that
// drops, delays, or duplicates messages. WithFaultInjector installs a
// deterministic chaos hook on the fabric path to prove exactly that;
// see fault.go.
package router

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"spal/internal/cache"
	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/lpm/engines"
	"spal/internal/metrics"
	"spal/internal/partition"
	"spal/internal/rtable"
	"spal/internal/tracing"
)

// ErrStopped is returned by calls that cannot complete because the router
// was stopped.
var ErrStopped = errors.New("router: stopped")

// Verdict is the outcome of one lookup.
type Verdict struct {
	Addr    ip.Addr
	NextHop rtable.NextHop
	OK      bool // false: no matching prefix
	// ServedBy tells where the result came from: the arrival LC's
	// LR-cache, a local FE execution at the home LC, or a fabric reply
	// from the home LC.
	ServedBy ServedBy
}

// Config configures a concurrent router. Most callers should use New with
// functional options instead of filling this struct directly; Config
// remains exported for the legacy NewWithConfig path and for
// introspection.
type Config struct {
	// NumLCs is ψ.
	NumLCs int
	// Table is the routing table to partition.
	Table *rtable.Table
	// Engine builds each LC's matching structure; nil uses the hash-based
	// reference engine.
	//
	// Deprecated: prefer EngineName, which resolves through the shared
	// engine registry (internal/lpm/engines) and is validated at
	// construction. Engine remains for callers supplying a custom Builder
	// (the WithEngine option still populates it); a non-empty EngineName
	// takes precedence over this field.
	Engine lpm.Builder
	// EngineName selects the per-LC engine by registry name ("flat",
	// "lulea", "stride24", ...). Empty falls back to Engine (or the
	// reference engine); an unknown name fails construction with an error
	// listing the valid names. See WithEngineName.
	EngineName string
	// Cache is the LR-cache organization, used when CacheEnabled.
	Cache        cache.Config
	CacheEnabled bool
	// CacheShards, when > 1, splits each LC's LR-cache into that many
	// line-padded shards selected by the low address bits (total capacity
	// unchanged: Cache.Blocks is divided among the shards). Must be a
	// power of two that keeps the per-shard geometry valid; 0 and 1 mean
	// unsharded. See WithCacheShards.
	CacheShards int
	// BatchCoalescing selects the pooled-descriptor batch data plane for
	// LookupBatch / LookupBatchCtx / LookupBatchInto: one message per
	// batch, same-home misses coalesced into one fabric message per
	// destination LC, zero steady-state allocations. False keeps the
	// legacy per-address submission path. Routers built with New default
	// it on; the zero Config (legacy NewWithConfig callers) keeps it off.
	BatchCoalescing bool
	// FaultInjector, when non-nil, intercepts every fabric request and
	// reply; see fault.go. Nil is a perfect fabric.
	FaultInjector FaultInjector
	// RequestTimeout is the per-attempt deadline on a fabric lookup
	// request; an unanswered request is retried (with exponential
	// backoff) once the deadline passes. Zero selects the default
	// (50ms); deadlines are checked by a coarse per-LC ticker, so expiry
	// is detected within about a quarter-timeout of the deadline.
	RequestTimeout time.Duration
	// MaxRetries bounds how many times a timed-out request is re-sent
	// before the lookup degrades to the router-wide full-table fallback
	// engine. Zero selects the default (3); negative disables retries
	// (the first expiry goes straight to the fallback).
	MaxRetries int
	// SuspectAfter is how long an LC may go without a recorded heartbeat
	// before the health monitor demotes it to LCSuspect. Zero selects the
	// default (one RequestTimeout, i.e. ~3 missed beats of the
	// timeout/4 ticker).
	SuspectAfter time.Duration
	// DownAfter is how long a *crashed* LC (goroutine exited) may go
	// silent before it is declared LCDown and its partition is re-homed.
	// Zero selects the default (2× RequestTimeout); values below
	// SuspectAfter are raised to it.
	DownAfter time.Duration
	// TracingEnabled turns on the per-lookup span recorder (see
	// trace.go and internal/tracing). The WithTraceSampling /
	// WithLogger / WithTraceJournal options set it implicitly.
	TracingEnabled bool
	// TraceSampleRate is the head-sampling probability in [0, 1];
	// interesting lookups are captured regardless (see
	// WithTraceSampling).
	TraceSampleRate float64
	// TraceJournal bounds the completed-trace ring behind Router.Traces;
	// 0 selects the default (1024).
	TraceJournal int
	// TraceLogger, when non-nil, receives one structured record per
	// completed trace.
	TraceLogger *slog.Logger
	// Overload configures the overload-control subsystem (bounded
	// inboxes, load shedding, retry budgets, circuit breakers; see
	// overload.go). The zero value keeps it disabled: the router runs its
	// original unbounded buffering goroutines and never returns
	// ErrOverloaded.
	Overload OverloadPolicy
	// Rebalance configures the background partition rebalancer that rides
	// the health ticker: when incremental updates (ApplyUpdates) drift the
	// partitioning's replication factor or per-LC load skew past the
	// policy's thresholds, the router re-selects control bits and runs a
	// full two-phase swap. The zero value keeps it disabled. See
	// WithRebalance and updates.go.
	Rebalance RebalancePolicy
	// Scrub configures the online integrity scrubber (engine sweeps,
	// cache audits, quarantine + self-healing rebuild; see scrub.go). The
	// zero value keeps it disabled.
	Scrub ScrubPolicy
	// Corruption configures the state-corruption injector (seeded engine
	// flips and cache fill/invalidate corruption; see corrupt.go). The
	// zero value keeps it disabled and leaves every engine and cache
	// unwrapped.
	Corruption CorruptionPolicy
	// Gray configures the gray-failure subsystem (per-home fabric RTT
	// scoring, the degraded health signal, hedged remote lookups, outlier
	// ejection; see gray.go). The zero value keeps it disabled.
	Gray GrayPolicy
}

// Robustness defaults, chosen so that a healthy in-process fabric (tens
// of microseconds round trip) never triggers them spuriously, while a
// faulty one degrades in well under a second.
const (
	defaultRequestTimeout = 50 * time.Millisecond
	defaultMaxRetries     = 3
)

const (
	mLookup = iota
	mRequest
	mReply
	mFlush
	mSwapEngine   // phase 1 of UpdateTable: install engine + homeOf
	mRekey        // phase 2: bump epoch, flush cache, re-drive pending
	mExec         // run a closure on the LC goroutine (stats collection)
	mBatch        // one pooled batch descriptor of local lookups (batch.go)
	mBatchRequest // coalesced fabric request: many addresses, one home LC
	mBatchReply   // coalesced fabric reply, scattered back positionally
	mApplyUpdates // incremental route-update batch: engine delta + cache invalidation (updates.go)
)

// message is the fabric traffic plus local control.
type message struct {
	kind     uint8
	hops     uint8 // forwards survived (mRequest), echoed back on mReply
	addr     ip.Addr
	nextHop  rtable.NextHop
	ok       bool
	from     int // requester LC (mRequest)
	epoch    uint32
	feNS     int64                // mReply: home-side FE execution time (0 = not measured)
	start    time.Time            // submission time (mLookup), for latency histograms
	resp     chan<- Verdict       // mLookup
	tr       *tracing.LookupTrace // mLookup: the trace riding this lookup, if sampled
	bd       *batchDesc           // mBatch, or an mLookup riding a batch slot
	slot     int32                // index into bd.out when bd != nil
	fb       *fabricBatch         // mBatchRequest / mBatchReply payload
	engine   lpm.Engine           // mSwap
	homeOf   func(ip.Addr) int
	swapDone chan<- struct{}
	do       func(*lineCard) // mExec
	// Incremental-update plumbing (see updates.go). gen rides every
	// mSwapEngine / mApplyUpdates (the generation being installed) and
	// every mReply / mBatchReply (the generation of the table the value
	// was computed against, so the requester can spot values that predate
	// an invalidation it has already run).
	gen     uint64
	updates []rtable.Update // mApplyUpdates: this LC's engine delta
	ranges  []rtable.Range  // mApplyUpdates: coalesced invalidation ranges (whole batch)
	table   *rtable.Table   // mApplyUpdates: rebuilt partition table (non-dynamic engines)
}

// LCStats are per-line-card counters (atomically updated, readable live).
//
// Deprecated: prefer Router.Metrics, which returns an immutable snapshot
// including these counters plus latency histograms and cache occupancy.
// LCStats remains for callers that want zero-allocation live reads.
type LCStats struct {
	Lookups, CacheHits, FEExecs, RequestsSent, RepliesSent, Coalesced, StaleReplies atomic.Int64
	// Batch data-plane counters: batch descriptors admitted, and how many
	// of RequestsSent / RepliesSent were coalesced multi-address fabric
	// messages (RequestsSent counts fabric messages, so a batch request
	// covering 30 addresses increments each by exactly one).
	Batches, BatchRequestsSent, BatchRepliesSent atomic.Int64
	// Robustness counters: fabric requests re-sent after a deadline
	// expiry, lookups answered by the full-table fallback engine,
	// deadlines that exhausted their retry budget, and in-flight
	// requests forwarded because the address was re-homed.
	Retries, Fallbacks, DeadlineExpired, ForwardedRequests atomic.Int64
	// Incremental-update counters (see updates.go): route updates this
	// LC applied to its engine, and fabric replies whose value predated
	// an invalidation this LC had already run (delivered to waiters but
	// kept out of the cache).
	UpdatesApplied, StaleGenReplies atomic.Int64
}

type remoteWaiter struct {
	from  int
	epoch uint32
	hops  uint8 // forwards the request survived, echoed back in the reply
	// gen is the LC's table generation when the waiter parked. A reply
	// whose value predates it must not answer this waiter (the waiter
	// arrived after this LC already applied a newer update batch); release
	// re-drives such waiters instead. See updates.go.
	gen uint64
}

// localWaiter is one parked local lookup: its reply destination plus its
// submission time, so coalesced lookups each record their own latency,
// and its trace, so each traced lookup finishes its own span. The
// destination is either a reply channel (single lookups) or a slot in a
// batch descriptor's verdict array (bd non-nil); see Router.deliver.
type localWaiter struct {
	ch    chan<- Verdict
	bd    *batchDesc
	slot  int32
	start time.Time
	tr    *tracing.LookupTrace
	gen   uint64 // LC generation at park time; see remoteWaiter.gen
}

type waitlist struct {
	locals  []localWaiter
	remotes []remoteWaiter
	// Fabric-request bookkeeping, owned by the LC goroutine like the
	// rest of the waitlist. deadline is zero while no fabric request is
	// outstanding (the address resolved locally); attempts counts
	// requests sent so far, including the first.
	attempts int
	deadline time.Time
	// tr is the per-address span owner: the earliest traced lookup
	// parked here records the shared events (fabric send/recv, retry,
	// deadline, fill). When no parked lookup was head-sampled and the
	// address turns interesting, a late trace is allocated and trLate
	// marks that it is not owned by any localWaiter, so fillAndRelease
	// must finish it separately. feNS is the local FE execution time,
	// measured only while tracing, echoed to remote waiters in replies.
	tr     *tracing.LookupTrace
	trLate bool
	feNS   int64
	// Gray-failure bookkeeping (see gray.go). sentAt is when the first
	// fabric request for this address left (zero when none did, or after
	// a retry made the round trip ambiguous it simply stops being
	// sampled via the attempts==1 guard). hedged means the waiters were
	// already answered from the fallback engine and the entry only
	// persists to recognize — and suppress — the primary reply.
	sentAt time.Time
	hedged bool
}

type lineCard struct {
	id      int
	engine  lpm.Engine
	cache   cache.Store
	pending map[ip.Addr]*waitlist
	homeOf  func(ip.Addr) int
	epoch   uint32
	// gen is the table generation this LC's engine (and the targeted
	// invalidations already run against its cache) reflect; assigned only
	// from mSwapEngine / mApplyUpdates messages, which arrive in send
	// order, so it is monotonic. Goroutine-private like pending.
	gen   uint64
	stats *LCStats
	// scratch is this LC's reusable batch workspace (miss collection,
	// batched FE results, per-home fabric accumulators); goroutine-private
	// like pending, surviving across slot incarnations. See batch.go.
	scratch *lcScratch

	// lat, pendingDepth and waiters are atomic and may be read from
	// outside the LC goroutine (Metrics); everything above is
	// goroutine-private (owned by the current lcLoop incarnation, or by
	// the health monitor between a crash and the slot's rebirth).
	lat          lcLatency
	pendingDepth atomic.Int64
	waiters      atomic.Int64

	// ov is the overload-control state (shed counters, retry bucket,
	// per-home breakers; see overload.go). Always allocated, only
	// exercised when the router's policy is enabled. Its counters are
	// atomic; its token bucket and breaker bookkeeping follow the same
	// ownership rule as pending above.
	ov *lcOverload

	// hedgeTokens is this LC's hedge budget (see gray.go): spent by
	// ticker hedges, refilled by successful fabric round trips.
	// Goroutine-private like pending.
	hedgeTokens float64
}

// fallbackEngine boxes the router-wide read-only full-table engine so it
// can sit behind an atomic.Pointer (lpm.Engine is an interface).
type fallbackEngine struct{ eng lpm.Engine }

// Router is a running SPAL forwarding plane.
type Router struct {
	cfg     Config
	inboxes []chan message
	outs    []chan message // buffer → LC legs, kept for slot rebirth
	ctrls   []chan message // control-plane legs (overload mode; nil entries otherwise)
	quit    chan struct{}
	stopped atomic.Bool
	wg      sync.WaitGroup
	delayWG sync.WaitGroup // goroutines holding injector-delayed messages
	lcs     []*lineCard
	stats   []*LCStats

	// Robustness knobs, fixed at construction.
	injector   FaultInjector
	timeout    time.Duration
	maxRetries int
	tickEvery  time.Duration

	// Overload control (see overload.go): the normalized policy and the
	// ShedDropRemoteFirst soft limit (3/4 of QueueDepth). ov.Enabled
	// false means every structure in overload.go stays inert.
	ov          OverloadPolicy
	remoteLimit int

	// LC lifecycle (see lifecycle.go): per-slot health records, the
	// suspicion/death windows, and the lifecycle event counters.
	life         []*lcLife
	suspectAfter time.Duration
	downAfter    time.Duration
	suspects     atomic.Int64
	rehomes      atomic.Int64
	replayed     atomic.Int64
	drains       atomic.Int64
	drainDur     metrics.Histogram

	// batchRecycled counts batch descriptors abandoned by a cancelled
	// caller and returned to the pool by their last in-flight sub-lookup
	// (the fix for the per-address channel leak the old batch path had).
	batchRecycled atomic.Int64

	// tracer is the per-lookup span recorder; nil when tracing is
	// disabled, which is the only cost the hot path pays (see trace.go).
	tracer *tracing.Recorder

	// fallback is the degraded slow path: a full-table engine every LC
	// may consult read-only once fabric retries are exhausted. Swapped
	// wholesale by UpdateTable.
	fallback atomic.Pointer[fallbackEngine]

	mu   sync.Mutex // guards part + lifecycle transitions, serializes swaps
	part *partition.Partitioning

	// Incremental-update plane (see updates.go). gen is the router-wide
	// table generation, advanced under mu by ApplyUpdates and UpdateTable;
	// the rebalancer fields track partition-quality drift against the
	// baseline captured at the last full bit re-selection.
	gen           uint64
	rebalance     RebalancePolicy
	baselineRepl  float64
	lastRebalance time.Time
	updateBatches atomic.Int64
	updateEvents  atomic.Int64
	rebalances    atomic.Int64

	// Integrity plane (see scrub.go / corrupt.go): the normalized scrub
	// and corruption policies, per-LC scrub bookkeeping, the corruption
	// injector's draw counter and per-kind totals, and the cached
	// full-table authority the cache audit compares against (rebuilt per
	// generation, under mu like lastScrub).
	scrubPol      ScrubPolicy
	corruptPol    CorruptionPolicy
	scrub         []*lcScrub
	corruptStores []*cache.CorruptStore
	corruptN      atomic.Uint64
	engineFlips   atomic.Int64
	scrubCycles   atomic.Int64
	quarantines   atomic.Int64
	rebuilds      atomic.Int64
	lastScrub     time.Time
	scrubAuth     lpm.Engine
	scrubAuthGen  uint64

	// Gray-failure plane (see gray.go): the normalized policy, per-home
	// round-trip sample windows, per-LC degraded/ejected state, the
	// current hedge delay, and the hedge/eject counters.
	grayPol           GrayPolicy
	rtt               []*lcRTT
	gray              []*lcGray
	hedgeDelayNS      atomic.Int64
	hedges            atomic.Int64
	hedgePrimaryLate  atomic.Int64
	hedgePrimaryLost  atomic.Int64
	hedgeBudgetDenied atomic.Int64
	ejectServed       atomic.Int64
	grayDegrades      atomic.Int64
	grayRecovers      atomic.Int64
	ejections         atomic.Int64
	restores          atomic.Int64
}

// New builds and starts a router over tbl. Defaults: one line card, the
// hash-based reference engine, LR-caches off. A paper-standard 16-LC
// cached router is
//
//	router.New(tbl, router.WithLCs(16), router.WithDefaultCache())
func New(tbl *rtable.Table, opts ...Option) (*Router, error) {
	cfg := Config{NumLCs: 1, Table: tbl, BatchCoalescing: true}
	for _, o := range opts {
		o(&cfg)
	}
	return NewWithConfig(cfg)
}

// NewWithConfig builds and starts a router from an explicit Config.
//
// Deprecated: this is the compatibility constructor for pre-option
// callers; new code should use New with functional options.
func NewWithConfig(cfg Config) (*Router, error) {
	if cfg.NumLCs < 1 {
		return nil, fmt.Errorf("router: NumLCs must be >= 1, got %d", cfg.NumLCs)
	}
	if cfg.Table == nil || cfg.Table.Len() == 0 {
		return nil, errors.New("router: empty routing table")
	}
	if cfg.EngineName != "" {
		b, err := engines.Lookup(cfg.EngineName)
		if err != nil {
			return nil, fmt.Errorf("router: %w", err)
		}
		cfg.Engine = b
	}
	if cfg.Engine == nil {
		cfg.Engine = lpm.NewReferenceEngine
	}
	if n := cfg.CacheShards; n > 1 && n&(n-1) != 0 {
		return nil, fmt.Errorf("router: CacheShards must be a power of two, got %d", n)
	}
	r := &Router{cfg: cfg, quit: make(chan struct{})}
	r.injector = cfg.FaultInjector
	r.timeout = cfg.RequestTimeout
	if r.timeout <= 0 {
		r.timeout = defaultRequestTimeout
	}
	switch {
	case cfg.MaxRetries == 0:
		r.maxRetries = defaultMaxRetries
	case cfg.MaxRetries < 0:
		r.maxRetries = 0
	default:
		r.maxRetries = cfg.MaxRetries
	}
	if r.tickEvery = r.timeout / 4; r.tickEvery < 500*time.Microsecond {
		r.tickEvery = 500 * time.Microsecond
	}
	if r.suspectAfter = cfg.SuspectAfter; r.suspectAfter <= 0 {
		r.suspectAfter = defaultSuspectFactor * r.timeout
	}
	if r.downAfter = cfg.DownAfter; r.downAfter <= 0 {
		r.downAfter = defaultDownFactor * r.timeout
	}
	if r.downAfter < r.suspectAfter {
		r.downAfter = r.suspectAfter
	}
	if cfg.TracingEnabled {
		r.tracer = tracing.New(tracing.Config{
			SampleRate:  cfg.TraceSampleRate,
			JournalSize: cfg.TraceJournal,
			Logger:      cfg.TraceLogger,
		})
	}
	r.ov = normalizeOverload(cfg.Overload, r.timeout)
	if r.ov.Enabled {
		if r.remoteLimit = r.ov.QueueDepth * 3 / 4; r.remoteLimit < 1 {
			r.remoteLimit = 1
		}
	}
	// The fallback engine is deliberately never corruption-wrapped: it is
	// the degraded-path and repair authority, and must stay correct no
	// matter what the injector does to the per-LC state.
	r.fallback.Store(&fallbackEngine{eng: cfg.Engine(cfg.Table)})
	r.part = partition.Partition(cfg.Table, cfg.NumLCs)
	r.rebalance = normalizeRebalance(cfg.Rebalance)
	r.scrubPol = normalizeScrub(cfg.Scrub, r.tickEvery)
	r.corruptPol = cfg.Corruption
	r.grayPol = normalizeGray(cfg.Gray)
	if r.grayPol.Hedge {
		// The fixed delay applies immediately; the adaptive one starts at
		// the timeout (effectively no hedging) until the scorer has a
		// fleet p99 to derive it from.
		if r.grayPol.HedgeAfter > 0 {
			r.hedgeDelayNS.Store(int64(r.grayPol.HedgeAfter))
		} else {
			r.hedgeDelayNS.Store(int64(r.timeout))
		}
	}
	r.baselineRepl = r.part.Stats().Replication
	r.lastRebalance = time.Now()
	// Build every per-LC structure before starting any goroutine: the LC
	// loops index r.life/r.outs from their first tick, so the slices must
	// never be appended to (reallocated) once a goroutine is running.
	now := time.Now()
	for i := 0; i < cfg.NumLCs; i++ {
		lc := &lineCard{
			id:      i,
			engine:  r.buildEngine(r.part.Table(i)),
			pending: make(map[ip.Addr]*waitlist),
			homeOf:  r.part.HomeLC,
			stats:   &LCStats{},
		}
		lc.scratch = newLCScratch(cfg.NumLCs)
		if cfg.CacheEnabled {
			// The error-returning constructors turn a mis-sized cache or
			// shard geometry (an operator flag) into a construction error
			// instead of a panic; no goroutine is running yet, so bailing
			// out here leaks nothing.
			cc := cfg.Cache
			cc.Seed += uint64(i) * 31
			if cfg.CacheShards > 1 {
				sh, err := cache.NewShardedErr(cc, cfg.CacheShards)
				if err != nil {
					return nil, fmt.Errorf("router: %w", err)
				}
				lc.cache = r.wrapCache(i, sh)
			} else {
				c, err := cache.NewErr(cc)
				if err != nil {
					return nil, fmt.Errorf("router: %w", err)
				}
				lc.cache = r.wrapCache(i, c)
			}
		}
		lc.ov = newLCOverload(r.ov, cfg.NumLCs)
		lc.hedgeTokens = r.grayPol.HedgeBudgetBurst
		r.scrub = append(r.scrub, &lcScrub{})
		r.rtt = append(r.rtt, &lcRTT{ring: make([]int64, max(r.grayPol.Window, 1))})
		r.gray = append(r.gray, &lcGray{})
		life := &lcLife{die: make(chan struct{}), exited: make(chan struct{})}
		life.lastBeat.Store(now)
		if r.ov.Enabled {
			// Bounded mode: the inbox IS the LC's queue (no buffering
			// goroutine; outs aliases it so slot rebirth stays uniform),
			// and control traffic rides its own channel so lifecycle and
			// update messages never contend with data admission.
			in := make(chan message, r.ov.QueueDepth)
			r.inboxes = append(r.inboxes, in)
			r.outs = append(r.outs, in)
			r.ctrls = append(r.ctrls, make(chan message, ctrlDepth))
		} else {
			r.inboxes = append(r.inboxes, make(chan message, 64))
			r.outs = append(r.outs, make(chan message, 64))
			r.ctrls = append(r.ctrls, nil)
		}
		r.lcs = append(r.lcs, lc)
		r.stats = append(r.stats, lc.stats)
		r.life = append(r.life, life)
	}
	for i := 0; i < cfg.NumLCs; i++ {
		if r.ov.Enabled {
			r.wg.Add(1)
		} else {
			r.wg.Add(2)
			go r.buffer(r.inboxes[i], r.outs[i])
		}
		go r.lcLoop(r.lcs[i], r.outs[i], r.ctrls[i], r.life[i].die, r.life[i].exited)
	}
	r.wg.Add(1)
	go r.healthLoop()
	return r, nil
}

// buffer is the unbounded queue between senders and an LC: it never blocks
// a sender, which rules out inter-LC deadlock by construction. The queue
// is a grow-only slice drained by a cursor and rewound whenever it runs
// empty, so steady-state traffic recycles the same backing array instead
// of allocating on every append the way the old q = q[1:] loop did — a
// requirement of the batch data plane's zero-allocation budget.
func (r *Router) buffer(in <-chan message, out chan<- message) {
	defer r.wg.Done()
	var q []message
	head := 0
	for {
		var send chan<- message
		var first message
		if head < len(q) {
			send = out
			first = q[head]
		} else if len(q) > 0 {
			q = q[:0]
			head = 0
		}
		select {
		case m := <-in:
			q = append(q, m)
		case send <- first:
			// Zero the drained element: a parked message can hold a batch
			// descriptor, trace, or reply channel the queue must not pin.
			q[head] = message{}
			head++
		case <-r.quit:
			return
		}
	}
}

// send delivers a message to an LC's unbounded inbox.
func (r *Router) send(lc int, m message) bool {
	select {
	case r.inboxes[lc] <- m:
		return true
	case <-r.quit:
		return false
	}
}

// sendFabric delivers a request or reply across the (virtual) fabric,
// routing it through the fault injector when one is installed. Control
// messages never pass through here — only mRequest/mReply and their
// batched forms can be dropped, delayed, or duplicated. A batch message
// is one fabric unit: the injector sees its first address and a verdict
// applies to the whole batch (a dropped batch request is re-driven
// per-address by the requesters' deadline machinery).
func (r *Router) sendFabric(to int, m message) {
	if r.injector == nil {
		r.fabricDeliver(to, m)
		return
	}
	d := r.injector(FabricMessage{Reply: m.kind == mReply || m.kind == mBatchReply, From: m.from, To: to, Addr: m.addr})
	if d.Drop {
		return
	}
	copies := 1
	if d.Duplicate {
		copies = 2
	}
	for i := 0; i < copies; i++ {
		if d.Delay <= 0 {
			r.fabricDeliver(to, m)
			continue
		}
		// Delayed copies ride a helper goroutine; Stop waits for these
		// after the LC goroutines exit, and send itself bails out on
		// quit, so a delayed message can never outlive the router.
		r.delayWG.Add(1)
		go func() {
			defer r.delayWG.Done()
			t := time.NewTimer(d.Delay)
			defer t.Stop()
			select {
			case <-t.C:
				r.fabricDeliver(to, m)
			case <-r.quit:
			}
		}()
	}
}

// fabricDeliver is the final hop of a fabric send: the unbounded inbox
// when overload control is off, the shedding bounded path when it is on.
// Either way the sending LC never blocks on a full peer.
func (r *Router) fabricDeliver(to int, m message) {
	if r.ov.Enabled {
		r.deliverData(to, m)
	} else {
		r.send(to, m)
	}
}

// lcLoop is one incarnation of one line card: the exclusive owner of
// its engine and cache until it returns. The ticker is both the
// deadline clock for this LC's outstanding fabric requests and its
// heartbeat generator — coarse (a quarter of the request timeout) so
// the idle cost is negligible, and entirely lock-free: all deadline
// state lives in the waitlists this goroutine already owns. die is the
// crash switch (KillLC); exited announces this incarnation's death to
// the health monitor, which may then adopt the lineCard and start a
// successor incarnation (see lifecycle.go). ctrl is the control-plane
// leg when overload control is enabled (nil otherwise — a nil channel
// case simply never fires).
func (r *Router) lcLoop(lc *lineCard, inbox, ctrl <-chan message, die, exited chan struct{}) {
	defer r.wg.Done()
	defer close(exited)
	tick := time.NewTicker(r.tickEvery)
	defer tick.Stop()
	for {
		select {
		case m := <-inbox:
			r.handle(lc, m)
		case m := <-ctrl:
			r.handle(lc, m)
		case now := <-tick.C:
			r.beat(lc.id, now)
			if r.ov.Enabled {
				r.breakerTick(lc, now)
			}
			r.checkDeadlines(lc, now)
		case <-die:
			return
		case <-r.quit:
			return
		}
	}
}

// checkDeadlines retries or degrades every pending lookup whose fabric
// request went unanswered past its deadline. Retries re-derive the home
// LC (the address may have been re-homed by a table update) and back off
// exponentially; once the retry budget is spent, the lookup is answered
// from the router-wide full-table fallback engine so it terminates no
// matter what the fabric lost.
func (r *Router) checkDeadlines(lc *lineCard, now time.Time) {
	for addr, wl := range lc.pending {
		if wl.hedged {
			// The waiters were already answered by a hedge (or an eject
			// dispatch); the entry only tracks the primary reply. Past the
			// deadline the primary is declared lost and the entry retired —
			// hedged lookups are never retried, that is the point of them.
			if !wl.deadline.IsZero() && !now.Before(wl.deadline) {
				r.hedgePrimaryLost.Add(1)
				r.dropHedged(lc, addr)
			}
			continue
		}
		if r.grayPol.Hedge && !wl.deadline.IsZero() && now.Before(wl.deadline) &&
			wl.attempts >= 1 && !wl.sentAt.IsZero() && now.Sub(wl.sentAt) >= r.hedgeDelay() {
			if home := lc.homeOf(addr); home != lc.id {
				// The request has been in flight past the hedge delay:
				// answer the waiters from the fallback engine now and keep
				// tracking the primary — token-budgeted so hedges cannot
				// melt a fabric that is merely overloaded.
				if !r.takeHedgeToken(lc) {
					r.hedgeBudgetDenied.Add(1)
				} else {
					if wl.tr == nil && r.tracer != nil {
						wl.tr = r.lateTrace(lc.id, addr)
						wl.trLate = wl.tr != nil
					}
					wl.tr.Record(tracing.EvHedge, int64(home), int64(wl.attempts))
					r.hedges.Add(1)
					r.hedgeResolve(lc, addr, wl)
				}
				continue
			}
		}
		if wl.deadline.IsZero() || now.Before(wl.deadline) {
			continue
		}
		// A lookup that reaches the deadline sweep is "interesting": if
		// tracing is on but nothing parked here was head-sampled, capture
		// it late — this path is already cold, so the allocation is free
		// relative to the timeout just paid.
		if wl.tr == nil && r.tracer != nil {
			wl.tr = r.lateTrace(lc.id, addr)
			wl.trLate = wl.tr != nil
		}
		home := lc.homeOf(addr)
		if r.ov.Enabled && home != lc.id {
			// A deadline expiry is the breaker's failure signal for this
			// home; enough of them in a row open the circuit.
			r.breakerFailure(lc, home, now)
		}
		retry := wl.attempts <= r.maxRetries
		if retry && r.ov.Enabled && home != lc.id {
			// An open breaker or an exhausted retry budget sends the
			// lookup straight to the fallback engine: retries must not
			// amplify load on a fabric that is already failing.
			if lc.ov.breakers[home].state.Load() == breakerOpen {
				retry = false
				lc.ov.breakerShorts.Add(1)
				wl.tr.Record(tracing.EvBreaker, int64(home), int64(breakerOpen))
			} else if !r.budgetTake(lc) {
				retry = false
			}
		}
		if retry {
			lc.stats.Retries.Add(1)
			shift := wl.attempts
			if shift > 16 {
				shift = 16 // cap the backoff at timeout<<16
			}
			backoff := r.timeout << uint(shift)
			wl.tr.Record(tracing.EvRetry, int64(wl.attempts), int64(backoff))
			wl.deadline = now.Add(backoff)
			wl.attempts++
			if home == lc.id {
				// Re-homed onto this LC while the request was in
				// flight: resolve locally against our own partition.
				t0 := r.feTimer()
				nh, _, ok := lc.engine.Lookup(addr)
				lc.stats.FEExecs.Add(1)
				if !ok {
					nh = rtable.NoNextHop
				}
				wl.feNS = elapsedNS(t0)
				wl.tr.Record(tracing.EvFEExec, wl.feNS, int64(lc.id))
				r.fillAndRelease(lc, addr, nh, ok, cache.LOC, ServedByFE)
				continue
			}
			lc.stats.RequestsSent.Add(1)
			wl.tr.Record(tracing.EvFabricSend, int64(home), int64(wl.attempts))
			r.sendFabric(home, message{kind: mRequest, addr: addr, from: lc.id, epoch: lc.epoch})
			continue
		}
		if wl.attempts > r.maxRetries {
			// The classic path: every retry was spent. Budget- and
			// breaker-stopped lookups keep their own counters instead.
			lc.stats.DeadlineExpired.Add(1)
			wl.tr.Record(tracing.EvDeadline, int64(wl.attempts), 0)
		}
		lc.stats.Fallbacks.Add(1)
		wl.tr.Record(tracing.EvFallback, int64(lc.id), 0)
		nh, _, ok := r.fallback.Load().eng.Lookup(addr)
		if !ok {
			nh = rtable.NoNextHop
		}
		origin := cache.REM
		if home == lc.id {
			origin = cache.LOC
		}
		r.fillAndRelease(lc, addr, nh, ok, origin, ServedByFallback)
	}
}

func (r *Router) handle(lc *lineCard, m message) {
	switch m.kind {
	case mLookup:
		r.handleLookup(lc, m)
	case mBatch:
		r.handleBatch(lc, m)
	case mBatchRequest:
		r.handleBatchRequest(lc, m)
	case mBatchReply:
		r.handleBatchReply(lc, m)
	case mRequest:
		r.handleRequest(lc, m)
	case mReply:
		if m.epoch != lc.epoch {
			// A reply computed before a table swap must not poison the
			// freshly flushed cache; the swap already re-drove the
			// lookups it was answering.
			lc.stats.StaleReplies.Add(1)
			return
		}
		wl, pending := lc.pending[m.addr]
		if r.grayPol.Enabled && pending && wl.attempts == 1 && !wl.sentAt.IsZero() &&
			!r.gray[lc.id].degraded.Load() {
			// Exactly one request went out, so this round trip is
			// unambiguous: attribute it to the responding home LC. Sampled
			// before the generation and hedge guards so an ejected LC's
			// recovery stays observable. A requester that is itself marked
			// degraded abstains: its round trips ride its own browned-out
			// links, so charging them to the responding home would drag
			// every clean ring toward the brownout and mask the true
			// outlier (its recovery is judged by other requesters' samples
			// of it, not by its own observations).
			r.rtt[m.from].observe(time.Since(wl.sentAt).Nanoseconds())
		}
		if r.tracer != nil && pending && wl.tr != nil {
			wl.tr.Record(tracing.EvFabricRecv, int64(m.from), int64(m.hops))
			if m.feNS > 0 {
				wl.tr.Record(tracing.EvFEExec, m.feNS, int64(m.from))
			}
		}
		if r.ov.Enabled {
			// A successful fabric round trip closes the responder's
			// breaker and refills the retry bucket (RetryBudgetRatio
			// tokens per success).
			r.breakerSuccess(lc, m.from)
			r.budgetRefill(lc)
		}
		if r.grayPol.Hedge {
			r.refillHedge(lc)
		}
		if pending && wl.hedged {
			// The hedge already answered every waiter; this primary is the
			// suppressed duplicate (exactly one owner delivers a verdict —
			// the batch-descriptor rule applied to hedging).
			r.hedgePrimaryLate.Add(1)
			r.dropHedged(lc, m.addr)
			return
		}
		if m.gen < lc.gen {
			// The responder computed this value before applying an update
			// batch we have already applied (and invalidated for): the
			// parked lookups may still observe it — they were in flight
			// during the update window — but it must not survive as a
			// cache entry. A quarantined (or ejected) responder stays
			// behind until it is rebuilt or restored, so its replies are
			// final: delivered to every waiter rather than re-driven back
			// at it.
			r.fillStaleRelease(lc, m.addr, m.nextHop, m.ok, cache.REM, ServedByRemote, m.gen, r.genPinned(m.from))
			return
		}
		r.fillAndRelease(lc, m.addr, m.nextHop, m.ok, cache.REM, ServedByRemote)
	case mFlush:
		if lc.cache != nil {
			lc.cache.Flush()
		}
	case mSwapEngine:
		lc.engine = m.engine
		lc.homeOf = m.homeOf
		lc.gen = m.gen
		close(m.swapDone)
	case mApplyUpdates:
		r.handleApplyUpdates(lc, m)
	case mRekey:
		lc.epoch++
		if lc.cache != nil {
			lc.cache.Flush()
		}
		// Re-drive pending lookups against the new table so nothing
		// strands across the swap.
		pend := lc.pending
		lc.pending = make(map[ip.Addr]*waitlist)
		lc.pendingDepth.Store(0)
		lc.waiters.Store(0) // the re-drive below re-registers every waiter
		for addr, wl := range pend {
			for _, w := range wl.locals {
				w.tr.Record(tracing.EvRedrive, int64(lc.id), 0)
				r.handleLookup(lc, message{kind: mLookup, addr: addr, resp: w.ch, bd: w.bd, slot: w.slot, start: w.start, tr: w.tr})
			}
			for _, rw := range wl.remotes {
				r.handleRequest(lc, message{kind: mRequest, addr: addr, from: rw.from, epoch: rw.epoch, hops: rw.hops})
			}
			if wl.trLate {
				// A late trace rides the waitlist, not a waiter; the
				// re-drive builds fresh waitlists, so close it out here
				// rather than leak it unfinished.
				wl.tr.Record(tracing.EvRedrive, int64(lc.id), 0)
				r.finishTrace(wl.tr, ServedByUnknown, false)
			}
		}
		close(m.swapDone)
	case mExec:
		m.do(lc)
	}
}

// handleLookup serves a locally submitted packet.
func (r *Router) handleLookup(lc *lineCard, m message) {
	lc.stats.Lookups.Add(1)
	if lc.cache != nil {
		switch res := lc.cache.Probe(m.addr); res.Kind {
		case cache.Hit, cache.HitVictim:
			lc.stats.CacheHits.Add(1)
			ok := res.NextHop != rtable.NoNextHop
			if m.tr != nil {
				m.tr.Record(tracing.EvProbe, int64(res.Kind), int64(res.Origin))
				// Finish before delivering the verdict so a caller that
				// waits on the reply always finds its trace published.
				r.finishTrace(m.tr, ServedByCache, ok)
			}
			lc.lat.observe(ServedByCache, m.start, traceID(m.tr))
			r.deliver(m, Verdict{Addr: m.addr, NextHop: res.NextHop, OK: ok, ServedBy: ServedByCache})
			return
		case cache.HitWaiting:
			wl := r.park(lc, m.addr)
			if wl.hedged {
				// The waitlist was already answered by a hedge and only
				// tracks the primary reply; parking here would strand this
				// straggler, so answer it directly (see hedgeAnswerLocal).
				r.hedgeAnswerLocal(lc, m)
				return
			}
			if r.waitlistFull(wl) {
				r.shedLocal(lc.id, m, shedWaitlistOverflow)
				return
			}
			lc.stats.Coalesced.Add(1)
			if m.tr != nil {
				m.tr.Record(tracing.EvProbe, int64(res.Kind), int64(res.Origin))
				m.tr.Record(tracing.EvCoalesce, int64(len(wl.locals)+len(wl.remotes)), 0)
				if wl.tr == nil {
					wl.tr = m.tr
				}
			}
			wl.locals = append(wl.locals, localWaiter{ch: m.resp, bd: m.bd, slot: m.slot, start: m.start, tr: m.tr, gen: lc.gen})
			lc.waiters.Add(1)
			return
		default:
			origin := cache.REM
			if lc.homeOf(m.addr) == lc.id {
				origin = cache.LOC
			}
			recorded := lc.cache.RecordMiss(m.addr, origin, 0)
			if m.tr != nil {
				m.tr.Record(tracing.EvProbe, int64(res.Kind), int64(origin))
				if !recorded {
					m.tr.Record(tracing.EvBypass, 0, 0)
				}
			}
		}
	}
	// Coalesce onto an in-flight miss. With caches on this is the bypass
	// case: the set was fully waiting, so there is no W block to hit,
	// but a dispatch for this address is already outstanding — a second
	// dispatch would duplicate the FE execution and the fabric request.
	if wl, ok := lc.pending[m.addr]; ok {
		if wl.hedged {
			r.hedgeAnswerLocal(lc, m)
			return
		}
		if r.waitlistFull(wl) {
			r.shedLocal(lc.id, m, shedWaitlistOverflow)
			return
		}
		lc.stats.Coalesced.Add(1)
		if m.tr != nil {
			m.tr.Record(tracing.EvCoalesce, int64(len(wl.locals)+len(wl.remotes)), 0)
			if wl.tr == nil {
				wl.tr = m.tr
			}
		}
		wl.locals = append(wl.locals, localWaiter{ch: m.resp, bd: m.bd, slot: m.slot, start: m.start, tr: m.tr, gen: lc.gen})
		lc.waiters.Add(1)
		return
	}
	wl := r.park(lc, m.addr)
	wl.tr = m.tr
	wl.locals = append(wl.locals, localWaiter{ch: m.resp, bd: m.bd, slot: m.slot, start: m.start, tr: m.tr, gen: lc.gen})
	lc.waiters.Add(1)
	r.dispatch(lc, m.addr, wl)
}

// maxForwardHops bounds how often a request may be re-forwarded inside a
// partitioning-swap window. Two LCs holding different homeOf functions
// (one pre-swap, one post-swap) can bounce a request between them until
// the trailing LC drains the swap message through its inbox backlog; the
// cap breaks that ping-pong by resolving against the full-table fallback
// engine, which is always current.
const maxForwardHops = 4

// handleRequest serves a lookup request from a remote arrival LC.
func (r *Router) handleRequest(lc *lineCard, m message) {
	if home := lc.homeOf(m.addr); home != lc.id {
		// The address was re-homed while this request was in flight (a
		// table update swapped the partitioning under it). Running LPM
		// here would consult the wrong partition and could cache a bogus
		// verdict — e.g. NoNextHop — as a LOC entry that later local
		// lookups hit. Forward to the current home instead; the reply
		// still carries the original requester and epoch.
		if m.hops >= maxForwardHops {
			lc.stats.Fallbacks.Add(1)
			nh, _, ok := r.fallback.Load().eng.Lookup(m.addr)
			if !ok {
				nh = rtable.NoNextHop
			}
			// Answer from here without caching: this LC is not home, so
			// the result must not enter its LOC quota.
			r.sendReply(lc, remoteWaiter{from: m.from, epoch: m.epoch, hops: m.hops}, m.addr, nh, ok, 0, lc.gen)
			return
		}
		m.hops++
		lc.stats.ForwardedRequests.Add(1)
		r.sendFabric(home, m)
		return
	}
	rw := remoteWaiter{from: m.from, epoch: m.epoch, hops: m.hops, gen: lc.gen}
	if lc.cache != nil {
		switch res := lc.cache.Probe(m.addr); res.Kind {
		case cache.Hit, cache.HitVictim:
			r.sendReply(lc, rw, m.addr, res.NextHop, res.NextHop != rtable.NoNextHop, 0, lc.gen)
			return
		case cache.HitWaiting:
			wl := r.park(lc, m.addr)
			if wl.hedged {
				r.hedgeAnswerRemote(lc, rw, m.addr)
				return
			}
			if r.waitlistFull(wl) {
				// Drop the remote waiter: the requester's deadline
				// machinery retries or degrades, so the lookup still
				// terminates without this waitlist growing.
				r.shedCount(lc.id, shedWaitlistOverflow)
				return
			}
			lc.stats.Coalesced.Add(1)
			wl.remotes = append(wl.remotes, rw)
			lc.waiters.Add(1)
			return
		default:
			lc.cache.RecordMiss(m.addr, cache.LOC, 0)
		}
	}
	// Same bypass coalescing as handleLookup: never dispatch twice for
	// one in-flight address.
	if wl, ok := lc.pending[m.addr]; ok {
		if wl.hedged {
			r.hedgeAnswerRemote(lc, rw, m.addr)
			return
		}
		if r.waitlistFull(wl) {
			r.shedCount(lc.id, shedWaitlistOverflow)
			return
		}
		lc.stats.Coalesced.Add(1)
		wl.remotes = append(wl.remotes, rw)
		lc.waiters.Add(1)
		return
	}
	wl := r.park(lc, m.addr)
	wl.remotes = append(wl.remotes, rw)
	lc.waiters.Add(1)
	r.dispatch(lc, m.addr, wl)
}

// park returns (creating) the waitlist for addr.
func (r *Router) park(lc *lineCard, addr ip.Addr) *waitlist {
	wl, ok := lc.pending[addr]
	if !ok {
		wl = &waitlist{}
		lc.pending[addr] = wl
		lc.pendingDepth.Store(int64(len(lc.pending)))
	}
	return wl
}

// dispatch resolves a miss: local FE execution when this LC is home,
// otherwise a request over the fabric with a retry deadline armed on wl.
func (r *Router) dispatch(lc *lineCard, addr ip.Addr, wl *waitlist) {
	home := lc.homeOf(addr)
	if home == lc.id {
		t0 := r.feTimer()
		nh, _, ok := lc.engine.Lookup(addr)
		lc.stats.FEExecs.Add(1)
		if !ok {
			nh = rtable.NoNextHop
		}
		wl.feNS = elapsedNS(t0)
		wl.tr.Record(tracing.EvFEExec, wl.feNS, int64(lc.id))
		r.fillAndRelease(lc, addr, nh, ok, cache.LOC, ServedByFE)
		return
	}
	if r.ov.Enabled && !r.breakerAllows(lc, home) {
		// The breaker for this home is open: the fabric send is doomed,
		// so short-circuit to the fallback engine without touching the
		// fabric. Breaker short-circuits are always interesting — capture
		// a late trace if nothing parked here was head-sampled.
		lc.ov.breakerShorts.Add(1)
		lc.stats.Fallbacks.Add(1)
		if wl.tr == nil && r.tracer != nil {
			wl.tr = r.lateTrace(lc.id, addr)
			wl.trLate = wl.tr != nil
		}
		wl.tr.Record(tracing.EvBreaker, int64(home), int64(lc.ov.breakers[home].state.Load()))
		wl.tr.Record(tracing.EvFallback, int64(lc.id), 0)
		nh, _, ok := r.fallback.Load().eng.Lookup(addr)
		if !ok {
			nh = rtable.NoNextHop
		}
		r.fillAndRelease(lc, addr, nh, ok, cache.REM, ServedByFallback)
		return
	}
	lc.stats.RequestsSent.Add(1)
	wl.attempts = 1
	wl.sentAt = time.Now()
	wl.deadline = wl.sentAt.Add(r.timeout)
	wl.tr.Record(tracing.EvFabricSend, int64(home), 1)
	r.sendFabric(home, message{kind: mRequest, addr: addr, from: lc.id, epoch: lc.epoch})
	if r.grayPol.Eject && r.gray[home].ejected.Load() {
		// The home is ejected: answer the waiters from the fallback engine
		// right now instead of paying its browned-out round trip. The
		// request above still went out — its reply keeps RTT samples
		// flowing so recovery stays observable, and arrives as a suppressed
		// hedged primary. No hedge token is spent: ejection is a scorer
		// decision, not a per-lookup gamble.
		wl.tr.Record(tracing.EvEject, int64(home), 0)
		r.ejectServed.Add(1)
		r.hedgeResolve(lc, addr, wl)
	}
}

// fillAndRelease installs a result and answers everything parked on it.
func (r *Router) fillAndRelease(lc *lineCard, addr ip.Addr, nh rtable.NextHop, ok bool, origin cache.Origin, servedBy ServedBy) {
	if lc.cache != nil {
		lc.cache.Fill(addr, nh, origin)
	}
	r.release(lc, addr, nh, ok, origin, servedBy, lc.gen, false)
}

// fillStaleRelease handles a fabric reply whose value was computed against
// a table generation older than the one this LC has already applied and
// invalidated for. The parked lookups were in flight across the update
// window, so delivering the older verdict to them is within the documented
// window semantics — but the value must not outlive the window as a cache
// entry, because the targeted invalidation covering it has already run
// here. Fill still runs (it is what clears the W block so later probes
// re-dispatch instead of parking forever); the point invalidation right
// after drops the entry again. Remote waiters are answered with the
// value's true generation, so the next hop applies the same rule.
//
// final marks staleness that will not resolve by waiting: the responder is
// quarantined, pinned behind the current generation until it is rebuilt.
// Re-driving such a lookup would park it, forward it to the same
// quarantined home, and draw another stale reply — forever — so final
// replies answer every waiter, new-generation ones included. That is the
// documented quarantine contract: the damaged LC keeps serving, its
// verdicts just never enter a cache.
func (r *Router) fillStaleRelease(lc *lineCard, addr ip.Addr, nh rtable.NextHop, ok bool, origin cache.Origin, servedBy ServedBy, valueGen uint64, final bool) {
	lc.stats.StaleGenReplies.Add(1)
	if lc.cache != nil {
		lc.cache.Fill(addr, nh, origin)
		lc.cache.InvalidateRange(addr, addr)
	}
	r.release(lc, addr, nh, ok, origin, servedBy, valueGen, final)
}

// release answers everything parked on addr with the verdict. valueGen is
// the table generation the value reflects, echoed to remote waiters.
// final suppresses the stale-value re-drive (see fillStaleRelease).
func (r *Router) release(lc *lineCard, addr ip.Addr, nh rtable.NextHop, ok bool, origin cache.Origin, servedBy ServedBy, valueGen uint64, final bool) {
	wl, present := lc.pending[addr]
	if !present {
		return
	}
	delete(lc.pending, addr)
	lc.pendingDepth.Store(int64(len(lc.pending)))
	lc.waiters.Add(-int64(len(wl.locals) + len(wl.remotes)))
	if valueGen < lc.gen && !final {
		// A generationally stale value may only answer waiters that
		// parked before this LC applied the newer batch; later waiters
		// were promised the updated table (ApplyUpdates had returned
		// before they were submitted), so they are re-driven against the
		// current engine instead. The pending entry is already cleared,
		// so the re-drive parks a fresh waitlist and dispatches anew.
		keepL, keepR := wl.locals[:0], wl.remotes[:0]
		var redriveL []localWaiter
		var redriveR []remoteWaiter
		for _, w := range wl.locals {
			if w.gen > valueGen {
				redriveL = append(redriveL, w)
			} else {
				keepL = append(keepL, w)
			}
		}
		for _, rw := range wl.remotes {
			if rw.gen > valueGen {
				redriveR = append(redriveR, rw)
			} else {
				keepR = append(keepR, rw)
			}
		}
		wl.locals, wl.remotes = keepL, keepR
		defer func() {
			for _, w := range redriveL {
				w.tr.Record(tracing.EvRedrive, int64(lc.id), 0)
				r.handleLookup(lc, message{kind: mLookup, addr: addr, resp: w.ch, bd: w.bd, slot: w.slot, start: w.start, tr: w.tr})
			}
			for _, rw := range redriveR {
				r.handleRequest(lc, message{kind: mRequest, addr: addr, from: rw.from, epoch: rw.epoch, hops: rw.hops})
			}
		}()
	}
	wl.tr.Record(tracing.EvFill, int64(origin), int64(servedBy))
	v := Verdict{Addr: addr, NextHop: nh, OK: ok, ServedBy: servedBy}
	for _, w := range wl.locals {
		lc.lat.observe(servedBy, w.start, traceID(w.tr))
		// Finish before delivering: a caller that waits on the verdict
		// must find its trace already published.
		r.finishTrace(w.tr, servedBy, ok)
		if w.bd != nil {
			w.bd.out[w.slot] = v
			r.bdResolve(w.bd)
		} else {
			w.ch <- v
		}
	}
	if wl.trLate {
		// The late trace belongs to the address, not to any waiter;
		// close it with the same verdict.
		r.finishTrace(wl.tr, servedBy, ok)
	}
	for _, rw := range wl.remotes {
		r.sendReply(lc, rw, addr, nh, ok, wl.feNS, valueGen)
	}
}

// sendReply answers a remote waiter. gen is the table generation the value
// was computed against (usually lc.gen; older when relaying a stale-gen
// fill), letting the requester keep generationally stale values out of its
// cache.
func (r *Router) sendReply(lc *lineCard, rw remoteWaiter, addr ip.Addr, nh rtable.NextHop, ok bool, feNS int64, gen uint64) {
	lc.stats.RepliesSent.Add(1)
	r.sendFabric(rw.from, message{kind: mReply, addr: addr, nextHop: nh, ok: ok, from: lc.id, epoch: rw.epoch, hops: rw.hops, feNS: feNS, gen: gen})
}

// Lookup submits a destination address at line card lc and waits for the
// verdict. On a router built WithOverload it returns ErrOverloaded when
// the lookup is shed — refused at admission (full inbox) or abandoned
// mid-flight (waitlist overflow, replay shed).
func (r *Router) Lookup(lc int, addr ip.Addr) (Verdict, error) {
	ch, err := r.LookupAsync(lc, addr)
	if err != nil {
		return Verdict{}, err
	}
	select {
	case v := <-ch:
		if v.ServedBy == ServedByShed {
			return Verdict{}, ErrOverloaded
		}
		return v, nil
	case <-r.quit:
		return Verdict{}, ErrStopped
	}
}

// LookupCtx is Lookup honoring a context: it returns ctx.Err() as soon as
// the context is cancelled or its deadline passes. The lookup itself is
// not recalled from the forwarding plane — its result is discarded (the
// reply channel is buffered, so the LC never blocks on an abandoned
// caller).
func (r *Router) LookupCtx(ctx context.Context, lc int, addr ip.Addr) (Verdict, error) {
	if err := ctx.Err(); err != nil {
		return Verdict{}, err
	}
	ch, err := r.LookupAsync(lc, addr)
	if err != nil {
		return Verdict{}, err
	}
	select {
	case v := <-ch:
		if v.ServedBy == ServedByShed {
			return Verdict{}, ErrOverloaded
		}
		return v, nil
	case <-ctx.Done():
		return Verdict{}, ctx.Err()
	case <-r.quit:
		return Verdict{}, ErrStopped
	}
}

// LookupAsync submits a lookup and returns immediately with the channel
// its verdict will arrive on (buffered; the router never blocks on it).
// Use it to keep many lookups in flight from one caller — the pattern a
// real ingress pipeline uses.
//
// On a router built WithOverload, admission happens here: a full inbox
// returns ErrOverloaded synchronously (drop modes) or blocks until space
// frees (ShedBlock). A lookup shed after admission — waitlist overflow,
// replay shed — delivers a ServedByShed verdict on the channel; the
// synchronous wrappers convert it to ErrOverloaded.
func (r *Router) LookupAsync(lc int, addr ip.Addr) (<-chan Verdict, error) {
	if lc < 0 || lc >= r.cfg.NumLCs {
		return nil, fmt.Errorf("router: no such LC %d", lc)
	}
	resp := make(chan Verdict, 1)
	start := time.Now()
	var tr *tracing.LookupTrace
	if r.tracer != nil {
		if tr = r.tracer.Sample(lc, addr, start); tr != nil {
			tr.Record(tracing.EvArrival, int64(lc), 0)
		}
	}
	m := message{kind: mLookup, addr: addr, resp: resp, start: start, tr: tr}
	if r.ov.Enabled {
		if err := r.admitLookup(lc, m); err != nil {
			return nil, err
		}
		return resp, nil
	}
	if !r.send(lc, m) {
		return nil, ErrStopped
	}
	return resp, nil
}

// LookupBatchCtx pipelines a whole slice of destinations at one line card
// and collects their verdicts, honoring a context.
//
// Ordering guarantee: on success, out[i] is the verdict for addrs[i] —
// positional, regardless of the order the forwarding plane resolves them
// in (coalescing, retries and re-homing can complete lookups in any
// internal order). Duplicate addresses each get their own verdict.
//
// On a router built WithOverload, admission refusal (full inbox) fails
// the whole batch with ErrOverloaded; a lookup shed after admission
// (waitlist overflow, replay shed) keeps its position and reports as a
// Verdict with ServedBy == ServedByShed and OK == false.
//
// On cancellation (or deadline expiry) the call returns ctx.Err() and a
// nil slice. Lookups already submitted are not recalled from the
// forwarding plane: they run to completion inside the router and their
// results are discarded; the last one to land returns the batch
// descriptor to its pool, so an abandoned batch costs nothing lasting.
func (r *Router) LookupBatchCtx(ctx context.Context, lc int, addrs []ip.Addr) ([]Verdict, error) {
	out := make([]Verdict, len(addrs))
	if err := r.LookupBatchInto(ctx, lc, addrs, out); err != nil {
		return nil, err
	}
	return out, nil
}

// lookupBatchSingles is the legacy batch path (BatchCoalescing off): N
// independent submissions, N buffered reply channels, collected in order.
func (r *Router) lookupBatchSingles(ctx context.Context, lc int, addrs []ip.Addr, out []Verdict) error {
	chans := make([]<-chan Verdict, len(addrs))
	for i, a := range addrs {
		ch, err := r.LookupAsync(lc, a)
		if err != nil {
			return err
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		select {
		case out[i] = <-ch:
		case <-ctx.Done():
			return ctx.Err()
		case <-r.quit:
			return ErrStopped
		}
	}
	return nil
}

// HomeLC exposes the partitioning decision for an address.
func (r *Router) HomeLC(addr ip.Addr) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.part.HomeLC(addr)
}

// PartitionBits returns the control-bit positions in use.
func (r *Router) PartitionBits() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.part.Bits...)
}

// NumLCs returns ψ.
func (r *Router) NumLCs() int { return r.cfg.NumLCs }

// Stats returns the live per-LC counters.
//
// Deprecated: use Metrics, which returns an immutable snapshot covering
// these counters plus latency histograms and LR-cache occupancy, and
// supports Delta for interval rates. Stats remains for zero-allocation
// live reads.
func (r *Router) Stats() []*LCStats { return r.stats }

// FlushCaches invalidates every LR-cache (the paper's response to a
// routing-table update). Flushes ride the control plane, so they land
// even when every data inbox is at capacity.
func (r *Router) FlushCaches() {
	for i := range r.inboxes {
		r.sendCtrl(i, message{kind: mFlush})
	}
}

// UpdateTable swaps in a new routing table in two barrier-separated
// phases: first every LC installs its new engine and home function, then
// every LC bumps its reply epoch, flushes its LR-cache and re-drives its
// pending lookups. The epoch guard drops replies computed before the
// update, so once UpdateTable returns, every subsequent lookup (and every
// cache fill) reflects the new table. Lookups concurrent with the update
// window itself may observe either table.
//
// The new partitioning is computed over the currently alive LCs (see
// lifecycle.go): drained and down slots stay out of service across an
// update. UpdateTable fails if no LC is alive.
func (r *Router) UpdateTable(tbl *rtable.Table) error {
	if tbl == nil || tbl.Len() == 0 {
		return errors.New("router: empty routing table")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped.Load() {
		return ErrStopped
	}
	alive := r.aliveLCsLocked()
	if len(alive) == 0 {
		return errors.New("router: no active line cards")
	}
	part := partition.Subset(tbl, r.cfg.NumLCs, alive)

	// Swap the degraded-path engine first: from here on a fallback
	// resolution may observe either table, which is within the documented
	// update-window semantics, and once UpdateTable returns it is
	// guaranteed to be the new one.
	r.fallback.Store(&fallbackEngine{eng: r.cfg.Engine(tbl)})
	r.gen++

	if err := r.swapPartitioning(part); err != nil {
		return err
	}
	r.part = part
	return nil
}

// swapPartitioning runs the two-phase engine/homeOf + rekey swap against
// every LC. r.mu must be held. A slot whose goroutine has exited (crashed
// but not yet adopted by the health monitor) is skipped rather than
// awaited — its barrier ack would never come; the adoption that follows
// installs the then-current partitioning, so the skip cannot leave a
// stale engine serving.
func (r *Router) swapPartitioning(part *partition.Partitioning) error {
	if r.stopped.Load() {
		return ErrStopped
	}
	phase := func(mk func(i int) message) error {
		dones := make([]chan struct{}, r.cfg.NumLCs)
		for i := 0; i < r.cfg.NumLCs; i++ {
			dones[i] = make(chan struct{})
			m := mk(i)
			m.swapDone = dones[i]
			if !r.sendCtrlSwap(i, m) {
				return ErrStopped
			}
		}
		for i, d := range dones {
			select {
			case <-d:
			case <-r.life[i].exited:
				// Crashed mid-swap; rehomeLocked will re-install.
			case <-r.quit:
				return ErrStopped
			}
		}
		return nil
	}

	if err := phase(func(i int) message {
		return message{kind: mSwapEngine, engine: r.buildEngine(part.Table(i)), homeOf: part.HomeLC, gen: r.gen}
	}); err != nil {
		return err
	}
	if err := phase(func(int) message { return message{kind: mRekey} }); err != nil {
		return err
	}
	// After Stop every exited channel is closed, so the phases above can
	// degenerate to all-skips; never report such a swap as a success.
	if r.stopped.Load() {
		return ErrStopped
	}
	// A successful full swap re-selected control bits over the current
	// table, so it is the rebalancer's new quality baseline.
	r.baselineRepl = part.Stats().Replication
	r.lastRebalance = time.Now()
	// It also rebuilt every LC's engine from the canonical table, which
	// makes it an integrity repair: quarantines lift and mismatch streaks
	// reset (see scrub.go).
	for i, l := range r.life {
		r.scrub[i].streak.Store(0)
		if l.state.Load() == LCQuarantined {
			l.state.Store(LCHealthy)
		}
	}
	return nil
}

// Stop shuts the router down and waits for every line-card goroutine to
// exit. It is idempotent: the first call tears the router down, every
// subsequent call is a no-op that returns after the teardown completes.
// In-flight and future Lookup/LookupCtx/LookupBatch/UpdateTable calls
// return ErrStopped; Metrics keeps returning the final counter values.
func (r *Router) Stop() {
	if r.stopped.Swap(true) {
		r.wg.Wait()
		r.delayWG.Wait()
		return
	}
	close(r.quit)
	r.wg.Wait()
	// Delayed fabric messages are only spawned from LC goroutines, all of
	// which have exited by now, so this wait is race-free; the helpers
	// bail out as soon as quit closes.
	r.delayWG.Wait()
}
