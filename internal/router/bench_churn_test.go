package router

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"spal/internal/rtable"
	"spal/internal/stats"
)

// BenchmarkLookupUnderChurn measures client-observed single-lookup
// latency while a background goroutine streams route updates through
// ApplyUpdates at a fixed rate — the BENCH_7 experiment: churn must not
// move the data plane's tail. Reports exact p50/p99 over the timed
// lookups via ReportMetric; run with a fixed -benchtime (e.g. 50000x)
// so the percentile sample size is stable.
func BenchmarkLookupUnderChurn(b *testing.B) {
	for _, rate := range []float64{0, 20, 1000} {
		b.Run(fmt.Sprintf("rate=%v", rate), func(b *testing.B) {
			tbl := rtable.Small(20000, 7)
			r, err := New(tbl, WithLCs(4), WithDefaultCache(), WithEngineName("bintrie"))
			if err != nil {
				b.Fatal(err)
			}
			defer r.Stop()

			stop := make(chan struct{})
			var wg sync.WaitGroup
			if rate > 0 {
				// One stream covering the whole run (120 wall seconds at 5 ns
				// cycles), dispensed by elapsed time so the applied rate
				// matches the nominal one even when a tick carries < 1 event.
				const cycleNS = 5.0
				stream := rtable.GenerateUpdates(tbl, rtable.UpdateStreamConfig{
					RatePerSecond: rate,
					CycleNS:       cycleNS,
					Duration:      int64(120 * 1e9 / cycleNS),
					WithdrawProb:  0.35,
					NewPrefixProb: 0.2,
					Seed:          1,
				})
				wg.Add(1)
				go func() {
					defer wg.Done()
					cur := tbl
					next := 0
					start := time.Now()
					t := time.NewTicker(10 * time.Millisecond)
					defer t.Stop()
					for {
						select {
						case <-stop:
							return
						case <-t.C:
						}
						due := int64(float64(time.Since(start).Nanoseconds()) / cycleNS)
						lo := next
						for next < len(stream) && stream[next].AtCycle <= due {
							next++
						}
						if next == lo {
							continue
						}
						batch := stream[lo:next]
						nt := cur.ApplyAll(batch)
						if nt.Len() == 0 {
							continue
						}
						if r.ApplyUpdates(batch) != nil {
							return
						}
						cur = nt
					}
				}()
			}

			rng := stats.NewRNG(3)
			// Warm the caches so the benchmark measures steady state, not
			// the cold-start miss storm.
			for i := 0; i < 20000; i++ {
				if _, err := r.Lookup(i%4, tbl.RandomMatchedAddr(rng)); err != nil {
					b.Fatal(err)
				}
			}
			lat := make([]int64, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := tbl.RandomMatchedAddr(rng)
				t0 := time.Now()
				if _, err := r.Lookup(i%4, a); err != nil {
					b.Fatal(err)
				}
				lat[i] = int64(time.Since(t0))
			}
			b.StopTimer()
			close(stop)
			wg.Wait()

			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			b.ReportMetric(float64(lat[len(lat)*50/100]), "p50-ns")
			b.ReportMetric(float64(lat[len(lat)*99/100]), "p99-ns")
			if rate > 0 {
				b.ReportMetric(r.Metrics().Sum(MetricUpdateEvents), "updates")
			}
		})
	}
}
