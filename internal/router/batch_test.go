// Batch data-plane tests: the coalesced plane must be observationally
// equivalent to the per-address plane (same verdicts, same positional
// ordering) under fabric chaos and LC crashes, recycle abandoned
// descriptors instead of leaking, and hold the zero-allocation budget on
// its steady-state paths. The Chaos* tests here ride the CI chaos matrix
// (they honor SPAL_CHAOS_SEED).
package router

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spal/internal/cache"
	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/rtable"
	"spal/internal/stats"
)

// cacheConfigBlocks is the default cache organization with a different
// total block count (for shard-geometry error cases).
func cacheConfigBlocks(n int) cache.Config {
	c := cache.DefaultConfig()
	c.Blocks = n
	return c
}

// batchAddrs builds one batch worth of addresses: matched, random (maybe
// unmatched), and deliberate duplicates, the three shapes the positional
// guarantee has to hold for.
func batchAddrs(tbl *rtable.Table, rng *stats.RNG, n int) []ip.Addr {
	addrs := make([]ip.Addr, n)
	for i := range addrs {
		switch {
		case i%5 == 4 && i > 1:
			addrs[i] = addrs[i/2] // duplicate of an earlier entry
		case i%3 == 0:
			addrs[i] = rng.Uint32() // may be unmatched
		default:
			addrs[i] = tbl.RandomMatchedAddr(rng)
		}
	}
	return addrs
}

// checkBatch asserts the positional guarantee and oracle correctness of
// one batch result.
func checkBatch(addrs []ip.Addr, out []Verdict, oracle *lpm.Reference) string {
	if len(out) != len(addrs) {
		return "verdict count " + strconv.Itoa(len(out)) + " != batch size " + strconv.Itoa(len(addrs))
	}
	for i, a := range addrs {
		if out[i].Addr != a {
			return "out[" + strconv.Itoa(i) + "] answers " + ip.FormatAddr(out[i].Addr) + ", not " + ip.FormatAddr(a)
		}
		if !verdictMatches(out[i], oracle, a) {
			return "wrong verdict for " + ip.FormatAddr(a) + " served by " + out[i].ServedBy.String()
		}
	}
	return ""
}

// TestChaosBatchEquivalence drives the identical batched workload through
// a coalescing router and a legacy per-address router under the same
// seeded fault schedule: every batch from either plane must be
// positionally ordered and oracle-correct, which makes the two planes'
// (addr, nexthop, ok) outputs element-for-element identical.
func TestChaosBatchEquivalence(t *testing.T) {
	tbl := rtable.Small(2000, 23)
	oracle := lpm.NewReference(tbl)
	for _, seed := range chaosSeeds(t) {
		t.Run("seed="+strconv.FormatUint(seed, 10), func(t *testing.T) {
			planes := make(map[bool][][]Verdict, 2)
			for _, coalesce := range []bool{true, false} {
				r, err := New(tbl, WithLCs(4), WithDefaultCache(),
					WithBatchCoalescing(coalesce),
					WithFaultInjector(SeededFaults(FaultConfig{
						Seed: seed, DropRate: 0.05, DupRate: 0.10,
						DelayRate: 0.10, MaxDelay: 2 * time.Millisecond,
					})),
					WithRequestTimeout(3*time.Millisecond), WithMaxRetries(2))
				if err != nil {
					t.Fatal(err)
				}
				const perLC, batchLen = 25, 48
				results := make([][]Verdict, 4*perLC)
				var wg sync.WaitGroup
				errs := make(chan string, 64)
				for lc := 0; lc < 4; lc++ {
					wg.Add(1)
					go func(lc int) {
						defer wg.Done()
						rng := stats.NewRNG(seed + uint64(lc)*977)
						for i := 0; i < perLC; i++ {
							addrs := batchAddrs(tbl, rng, batchLen)
							out, err := r.LookupBatch(lc, addrs)
							if err != nil {
								errs <- err.Error()
								return
							}
							if msg := checkBatch(addrs, out, oracle); msg != "" {
								errs <- msg
								return
							}
							results[lc*perLC+i] = out
						}
					}(lc)
				}
				wg.Wait()
				close(errs)
				for e := range errs {
					t.Fatal(e)
				}
				if coalesce {
					s := r.Metrics()
					if s.Sum(MetricBatches) != 4*perLC {
						t.Errorf("batches metric = %v, want %d", s.Sum(MetricBatches), 4*perLC)
					}
					if s.Sum(MetricBatchFabricRequests) == 0 {
						t.Error("coalescing plane sent no batched fabric requests")
					}
				}
				r.Stop()
				planes[coalesce] = results
			}
			// Both planes passed the oracle check with the same address
			// sequences, so this comparison can only fail if one of them
			// broke positional ordering on an unmatched (ok=false) verdict.
			for i := range planes[true] {
				for j := range planes[true][i] {
					a, b := planes[true][i][j], planes[false][i][j]
					if a.Addr != b.Addr || a.OK != b.OK || (a.OK && a.NextHop != b.NextHop) {
						t.Fatalf("batch %d slot %d diverges: coalesced %+v, singles %+v", i, j, a, b)
					}
				}
			}
		})
	}
}

// TestChaosKillLCBatchEquivalence crashes a line card in the middle of a
// batched storm over a lossy fabric: every batch — including ones whose
// sub-lookups were parked at the dead LC and re-homed, or submitted at
// the dead slot before its rebirth — must stay positionally ordered and
// oracle-correct, with none lost.
func TestChaosKillLCBatchEquivalence(t *testing.T) {
	tbl := rtable.Small(2000, 7)
	oracle := lpm.NewReference(tbl)
	for _, seed := range chaosSeeds(t) {
		t.Run("seed="+strconv.FormatUint(seed, 10), func(t *testing.T) {
			r, err := New(tbl, WithLCs(4), WithDefaultCache(),
				WithFaultInjector(SeededFaults(FaultConfig{Seed: seed, DropRate: 0.10})),
				WithRequestTimeout(2*time.Millisecond), WithMaxRetries(2),
				WithHealthThresholds(4*time.Millisecond, 8*time.Millisecond))
			if err != nil {
				t.Fatal(err)
			}
			defer r.Stop()

			var wg sync.WaitGroup
			var served atomic.Int64
			errs := make(chan string, 64)
			const perLC, batchLen = 30, 32
			for lc := 0; lc < 4; lc++ {
				wg.Add(1)
				go func(lc int) {
					defer wg.Done()
					rng := stats.NewRNG(seed + uint64(lc)*101)
					for i := 0; i < perLC; i++ {
						addrs := batchAddrs(tbl, rng, batchLen)
						out, err := r.LookupBatch(lc, addrs)
						if err != nil {
							errs <- err.Error()
							return
						}
						if msg := checkBatch(addrs, out, oracle); msg != "" {
							errs <- msg
							return
						}
						served.Add(int64(len(out)))
					}
				}(lc)
			}

			waitFor(t, "traffic to start", func() bool { return served.Load() > 100 })
			if err := r.KillLC(2); err != nil {
				t.Fatal(err)
			}
			waitFor(t, "LC 2 to be declared down", func() bool {
				return r.LCStates()[2] == LCDown
			})

			wg.Wait()
			close(errs)
			for e := range errs {
				t.Fatal(e)
			}
			if got := served.Load(); got != 4*perLC*batchLen {
				t.Fatalf("served %d sub-lookups, want %d (none may be lost)", got, 4*perLC*batchLen)
			}
			if s := r.Metrics(); s.Sum(MetricRehomes) < 1 {
				t.Error("no re-homing recorded after the LC death")
			}
		})
	}
}

// TestLookupBatchCancelRecyclesDescriptor is the regression test for the
// old batch path's cancellation leak: a caller that abandons a batch
// mid-flight must leave nothing behind — the last in-flight sub-lookup
// returns the descriptor to the pool, observable via batchRecycled.
func TestLookupBatchCancelRecyclesDescriptor(t *testing.T) {
	tbl := rtable.Small(2000, 41)
	// A fabric that drops everything plus disabled retries: remote misses
	// hang for one full request timeout, then resolve via fallback —
	// comfortably after the caller's context has fired.
	r, err := New(tbl, WithLCs(2),
		WithFaultInjector(SeededFaults(FaultConfig{Seed: 1, DropRate: 1})),
		WithRequestTimeout(20*time.Millisecond), WithMaxRetries(-1))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	// All-remote addresses so no sub-lookup can resolve inline.
	rng := stats.NewRNG(9)
	var addrs []ip.Addr
	for len(addrs) < 16 {
		a := tbl.RandomMatchedAddr(rng)
		if r.HomeLC(a) != 0 {
			addrs = append(addrs, a)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Millisecond)
	defer cancel()
	if err := r.LookupBatchInto(ctx, 0, addrs, make([]Verdict, len(addrs))); err != context.DeadlineExceeded {
		t.Fatalf("LookupBatchInto = %v, want context.DeadlineExceeded", err)
	}
	waitFor(t, "abandoned descriptor to be recycled", func() bool {
		return r.batchRecycled.Load() >= 1
	})
}

// TestLookupBatchSteadyStateAllocs is the tentpole's budget: once warm,
// a batch served entirely from the LR-cache, and a batch resolved
// entirely by the local home's batched FE sweep, must allocate nothing.
func TestLookupBatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the zero-alloc gate runs in the non-race CI jobs")
	}
	tbl := rtable.Small(2000, 7)
	rng := stats.NewRNG(3)
	addrs := make([]ip.Addr, 64)
	for i := range addrs {
		addrs[i] = tbl.RandomMatchedAddr(rng)
	}
	out := make([]Verdict, len(addrs))

	measure := func(t *testing.T, opts ...Option) float64 {
		t.Helper()
		// The long timeout quiets the deadline ticker and health monitor
		// so AllocsPerRun sees only the batch path.
		base := []Option{WithLCs(1), WithRequestTimeout(time.Second)}
		r, err := New(tbl, append(base, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Stop()
		for i := 0; i < 5; i++ { // warm: pool, scratch, fabric ring, cache
			if err := r.LookupBatchInto(context.Background(), 0, addrs, out); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(200, func() {
			if err := r.LookupBatchInto(context.Background(), 0, addrs, out); err != nil {
				t.Fatal(err)
			}
		})
	}

	t.Run("cache-hit", func(t *testing.T) {
		if n := measure(t, WithDefaultCache()); n != 0 {
			t.Errorf("warmed cache-hit batch allocates %.2f/op, want 0", n)
		}
	})
	t.Run("local-home", func(t *testing.T) {
		if n := measure(t, WithoutCache(), WithEngineName("flat")); n != 0 {
			t.Errorf("local-home batch allocates %.2f/op, want 0", n)
		}
	})
}

// TestLookupBatchShedKeepsPositions: sub-lookups shed after admission
// (waitlist overflow) must keep their batch positions as ServedByShed
// verdicts while the rest of the batch resolves normally.
func TestLookupBatchShedKeepsPositions(t *testing.T) {
	tbl := rtable.Small(2000, 13)
	oracle := lpm.NewReference(tbl)
	r, err := New(tbl, WithLCs(2),
		WithOverload(OverloadPolicy{WaitlistCap: 4}),
		WithFaultInjector(SeededFaults(FaultConfig{Seed: 5, DropRate: 1})),
		WithRequestTimeout(5*time.Millisecond), WithMaxRetries(-1))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	// One remote-homed address repeated far past the waitlist cap: the
	// first copy parks and dispatches, copies 2..cap coalesce, the rest
	// shed. The dead fabric forces the parked copies through fallback.
	rng := stats.NewRNG(17)
	var hot ip.Addr
	for {
		hot = tbl.RandomMatchedAddr(rng)
		if r.HomeLC(hot) == 1 {
			break
		}
	}
	addrs := make([]ip.Addr, 12)
	for i := range addrs {
		addrs[i] = hot
	}
	out, err := r.LookupBatch(0, addrs)
	if err != nil {
		t.Fatal(err)
	}
	shed := 0
	for i, v := range out {
		if v.Addr != hot {
			t.Fatalf("out[%d] answers %s, not the submitted address", i, ip.FormatAddr(v.Addr))
		}
		if v.ServedBy == ServedByShed {
			shed++
			continue
		}
		if !verdictMatches(v, oracle, hot) {
			t.Fatalf("out[%d] wrong verdict, served by %s", i, v.ServedBy)
		}
	}
	if shed == 0 || shed == len(addrs) {
		t.Fatalf("shed %d of %d sub-lookups, want some shed and some served", shed, len(addrs))
	}
}

// TestLookupBatchDuringUpdateTable hammers table swaps under batched
// traffic: every verdict must match one of the two tables' oracles (the
// documented update-window semantics), and stay positional throughout.
func TestLookupBatchDuringUpdateTable(t *testing.T) {
	t1 := rtable.Small(2000, 7)
	t2 := rtable.Small(2000, 8)
	o1, o2 := lpm.NewReference(t1), lpm.NewReference(t2)
	r, err := New(t1, WithLCs(4), WithDefaultCache(), WithRequestTimeout(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for lc := 0; lc < 4; lc++ {
		wg.Add(1)
		go func(lc int) {
			defer wg.Done()
			rng := stats.NewRNG(uint64(lc)*7 + 3)
			for {
				select {
				case <-stop:
					return
				default:
				}
				addrs := make([]ip.Addr, 32)
				for i := range addrs {
					addrs[i] = t1.RandomMatchedAddr(rng)
				}
				out, err := r.LookupBatch(lc, addrs)
				if err != nil {
					errs <- err.Error()
					return
				}
				for i, a := range addrs {
					if out[i].Addr != a {
						errs <- "positional ordering broken at slot " + strconv.Itoa(i)
						return
					}
					if !verdictMatches(out[i], o1, a) && !verdictMatches(out[i], o2, a) {
						errs <- "verdict for " + ip.FormatAddr(a) + " matches neither table"
						return
					}
				}
			}
		}(lc)
	}
	for i := 0; i < 6; i++ {
		tbl := t2
		if i%2 == 1 {
			tbl = t1
		}
		if err := r.UpdateTable(tbl); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestWithEngineNameAndCacheShards covers the new construction surface:
// registry-name resolution (including the error listing valid names) and
// cache-shard geometry validation.
func TestWithEngineNameAndCacheShards(t *testing.T) {
	tbl := rtable.Small(2000, 7)
	oracle := lpm.NewReference(tbl)

	r, err := New(tbl, WithLCs(2), WithEngineName("flat"), WithCacheShards(8), WithDefaultCache())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	rng := stats.NewRNG(21)
	addrs := batchAddrs(tbl, rng, 64)
	out, err := r.LookupBatch(0, addrs)
	if err != nil {
		t.Fatal(err)
	}
	if msg := checkBatch(addrs, out, oracle); msg != "" {
		t.Fatal(msg)
	}
	// Re-submit: the sharded cache must now serve hits.
	if _, err := r.LookupBatch(0, addrs); err != nil {
		t.Fatal(err)
	}
	if s := r.Metrics(); s.Sum(MetricCacheHits) == 0 {
		t.Error("sharded cache served no hits on a repeated batch")
	}

	if _, err := New(tbl, WithEngineName("no-such-engine")); err == nil ||
		!strings.Contains(err.Error(), "unknown engine") || !strings.Contains(err.Error(), "flat") {
		t.Errorf("unknown engine name: err = %v, want the valid-name listing", err)
	}
	if _, err := New(tbl, WithDefaultCache(), WithCacheShards(3)); err == nil {
		t.Error("CacheShards=3 accepted, want power-of-two error")
	}
	if _, err := New(tbl, WithCache(cacheConfigBlocks(4100)), WithCacheShards(8)); err == nil {
		t.Error("indivisible Cache.Blocks accepted with CacheShards=8")
	}
}

// TestLookupBatchIntoValidation pins the argument contract.
func TestLookupBatchIntoValidation(t *testing.T) {
	tbl := rtable.Small(200, 3)
	r, err := New(tbl)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	ctx := context.Background()
	addrs := []ip.Addr{1, 2, 3}
	if err := r.LookupBatchInto(ctx, 0, addrs, make([]Verdict, 2)); err == nil {
		t.Error("short out slice accepted")
	}
	if err := r.LookupBatchInto(ctx, 5, addrs, make([]Verdict, 3)); err == nil {
		t.Error("out-of-range LC accepted")
	}
	if err := r.LookupBatchInto(ctx, 0, nil, nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
	if out, err := r.LookupBatch(0, nil); err != nil || len(out) != 0 {
		t.Errorf("empty LookupBatch = (%v, %v)", out, err)
	}
}
