// Gray-failure chaos tests: a line card that is alive, heartbeating and
// answering correctly — just slowly — must be detected by the RTT
// scorer, mitigated by hedged lookups and outlier ejection, and must
// never be confused with a dead LC (lifecycle) or a corrupted one
// (integrity). CI's gray-chaos job runs this file under -race across the
// SPAL_CHAOS_SEED matrix.
package router

import (
	"context"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/rtable"
	"spal/internal/stats"
	"spal/internal/tracing"
)

// TestGrayAsymmetricPartition: the 0→1 directed link drops everything
// while 1→0 stays clean — the classic one-way fiber fault. Every lookup
// must still resolve to the oracle verdict (retry → fallback, or a hedge
// ahead of the lost primary), and because heartbeats ride the control
// plane, neither endpoint may be demoted out of Healthy.
func TestGrayAsymmetricPartition(t *testing.T) {
	tbl := rtable.Small(2000, 7)
	oracle := lpm.NewReference(tbl)
	for _, seed := range chaosSeeds(t) {
		t.Run("seed="+strconv.FormatUint(seed, 10), func(t *testing.T) {
			lf := NewLinkFaults(seed)
			lf.SetLink(0, 1, LinkFaultConfig{DropRate: 1})
			r, err := New(tbl, WithLCs(4), WithDefaultCache(),
				WithFaultInjector(lf.Injector()),
				WithRequestTimeout(2*time.Millisecond), WithMaxRetries(1),
				WithGray(DefaultGrayPolicy()))
			if err != nil {
				t.Fatal(err)
			}
			defer r.Stop()

			var wg sync.WaitGroup
			errs := make(chan string, 64)
			for lc := 0; lc < 4; lc++ {
				wg.Add(1)
				go func(lc int) {
					defer wg.Done()
					rng := stats.NewRNG(seed + uint64(lc)*131)
					for i := 0; i < 400; i++ {
						var a ip.Addr
						if i%3 == 0 {
							a = rng.Uint32()
						} else {
							a = tbl.RandomMatchedAddr(rng)
						}
						v, err := r.Lookup(lc, a)
						if err != nil {
							errs <- err.Error()
							return
						}
						if !verdictMatches(v, oracle, a) {
							errs <- "wrong verdict for " + ip.FormatAddr(a) + " served by " + v.ServedBy.String()
							return
						}
					}
				}(lc)
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Fatal(e)
			}

			// The partition must have been survivable without demoting
			// either endpoint: requests 0→1 (and replies 0→1) vanished,
			// but both cards kept heartbeating over the control plane.
			for i, st := range r.LCStates() {
				if st != LCHealthy {
					t.Errorf("LC %d left Healthy (%s) under a data-plane-only partition", i, st)
				}
			}
			g := r.Gray()
			s := r.Metrics()
			if g.HedgePrimaryLost == 0 && s.Sum(MetricFallbacks) == 0 {
				t.Error("100% 0→1 drops produced neither lost hedged primaries nor fallbacks")
			}
		})
	}
}

// TestGrayBrownoutHeadline is the acceptance scenario of the gray-failure
// plane: LC 1 browned out to 10x fabric latency while route churn and
// overload-bounded inboxes run — the detector must flag it within a
// bounded number of ticker cycles, the lifecycle monitor must NOT mark it
// (or anything else) Down, and every non-shed verdict must match a table
// version live during its lookup window.
func TestGrayBrownoutHeadline(t *testing.T) {
	tbl := rtable.Small(1500, 71)
	for _, seed := range chaosSeeds(t) {
		t.Run("seed="+strconv.FormatUint(seed, 10), func(t *testing.T) {
			lf := NewLinkFaults(seed)
			// Batched round trips include the home's 64-address FE sweep,
			// so the clean baseline is hundreds of microseconds (more
			// under -race); scale the 10x brownout against a matching
			// nominal so the contrast survives the instrumented build,
			// while keeping the browned RTT (~2x nominal x factor plus
			// baseline) under RequestTimeout — a first-attempt reply must
			// beat the deadline retry or it never yields an RTT sample.
			lf.Nominal = 300 * time.Microsecond
			lf.SlowLC(1, 10)
			r, err := New(tbl, WithLCs(4), WithDefaultCache(), WithEngineName("bintrie"),
				WithFaultInjector(lf.Injector()),
				WithRequestTimeout(15*time.Millisecond),
				WithOverload(OverloadPolicy{QueueDepth: 512}),
				WithGray(DefaultGrayPolicy()))
			if err != nil {
				t.Fatal(err)
			}
			defer r.Stop()

			oracle := newVersionedOracle(tbl)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			var wrong, served, shed atomic.Int64
			var sawDown atomic.Bool

			// Churn: seeded incremental batches, paced — an unpaced
			// ApplyUpdates loop keeps every LC goroutine busy swapping
			// (engine rebuilds, two-phase barriers), which under -race
			// inflates every home's RTT uniformly and hides the outlier.
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := stats.NewRNG(seed * 31)
				cur := tbl
				for {
					select {
					case <-stop:
						return
					case <-time.After(2 * time.Millisecond):
					}
					stream := churnStream(cur, rng.Uint64())
					if len(stream) == 0 {
						continue
					}
					next := cur.ApplyAll(stream)
					if next.Len() == 0 {
						continue
					}
					oracle.announce(next)
					if err := r.ApplyUpdates(stream); err != nil {
						return // stopping
					}
					oracle.settle()
					cur = next
				}
			}()

			// Lifecycle watchdog: a brownout must never read as a crash.
			// Only Down counts — Suspect is the monitor's documented
			// transient for late beats (a -race scheduler stall can fake
			// one) and heals itself when beats resume; Down requires a
			// provably exited goroutine, which a browned-out LC never is.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					for _, st := range r.LCStates() {
						if st == LCDown {
							sawDown.Store(true)
						}
					}
					time.Sleep(time.Millisecond)
				}
			}()

			// Lookups: the coalesced batch plane at every LC.
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := stats.NewRNG(seed + 1000 + uint64(w)*17)
					addrs := make([]ip.Addr, 64)
					out := make([]Verdict, 64)
					for {
						select {
						case <-stop:
							return
						default:
						}
						for i := range addrs {
							if rng.Intn(4) == 0 {
								addrs[i] = rng.Uint32()
							} else {
								addrs[i] = tbl.RandomMatchedAddr(rng)
							}
						}
						// Pace the load: an unthrottled 4x64 flood saturates
						// the bounded inboxes and queueing delay swamps the
						// fabric RTT *uniformly* — which the ratio scorer
						// correctly refuses to call a gray failure (that is
						// TestGrayGlobalOverloadNoFalsePositive's scenario).
						// This test measures the brownout, so stay below
						// saturation.
						time.Sleep(500 * time.Microsecond)
						lo, _ := oracle.window()
						err := r.LookupBatchInto(context.Background(), w, addrs, out)
						if err == ErrOverloaded {
							shed.Add(int64(len(addrs)))
							continue
						}
						if err != nil {
							return // stopping
						}
						_, hi := oracle.window()
						for i, v := range out {
							if v.ServedBy == ServedByShed {
								shed.Add(1)
								continue
							}
							served.Add(1)
							if !oracle.matches(v, addrs[i], lo, hi) {
								wrong.Add(1)
							}
						}
					}
				}(w)
			}

			// Detection bound: the scorer ticks with the deadline sweep
			// (timeout/4 = 2ms), needs MinSamples per window and
			// DegradeAfter consecutive over-threshold ticks — well under
			// a second of sustained traffic.
			detected := func() bool { return r.Gray().Degrades > 0 }
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) && !detected() {
				time.Sleep(2 * time.Millisecond)
			}
			time.Sleep(100 * time.Millisecond) // let mitigation serve a while
			close(stop)
			wg.Wait()

			if w := wrong.Load(); w != 0 {
				t.Fatalf("%d wrong verdicts among %d served", w, served.Load())
			}
			if served.Load() == 0 {
				t.Fatal("no lookups served")
			}
			g := r.Gray()
			if g.Degrades == 0 {
				for _, l := range g.LCs {
					t.Logf("LC%d degraded=%v ejected=%v samples=%d p50=%v p99=%v ewma=%v",
						l.LC, l.Degraded, l.Ejected, l.Samples, l.RTTp50, l.RTTp99, l.EWMA)
				}
				t.Fatal("browned-out LC 1 was never flagged degraded")
			}
			if sawDown.Load() {
				t.Error("a browned-out (alive, correct) LC was demoted to Down")
			}
			if g.Hedges+g.EjectServed == 0 {
				t.Error("detection fired but no hedge or eject-served mitigation did")
			}
			t.Logf("served=%d shed=%d degrades=%d ejections=%d hedges=%d ejectServed=%d hedgeDelay=%v",
				served.Load(), shed.Load(), g.Degrades, g.Ejections, g.Hedges, g.EjectServed, g.HedgeDelay)
		})
	}
}

// TestGrayHedgeTraceReconciliation pins the observability contract: at
// trace rate 1.0 with a journal large enough to hold every lookup, the
// hedge and eject events recorded across all journaled traces must equal
// the router's own counters exactly — Counts survive event-array
// overflow, so this holds under retry storms too.
func TestGrayHedgeTraceReconciliation(t *testing.T) {
	tbl := rtable.Small(2000, 7)
	oracle := lpm.NewReference(tbl)
	for _, seed := range chaosSeeds(t) {
		t.Run("seed="+strconv.FormatUint(seed, 10), func(t *testing.T) {
			lf := NewLinkFaults(seed)
			lf.SlowLC(1, 10)
			r, err := New(tbl, WithLCs(4), WithDefaultCache(),
				WithFaultInjector(lf.Injector()),
				WithRequestTimeout(8*time.Millisecond),
				WithGray(DefaultGrayPolicy()),
				WithTraceSampling(1), WithTraceJournal(1<<15))
			if err != nil {
				t.Fatal(err)
			}
			defer r.Stop()

			var wg sync.WaitGroup
			for lc := 0; lc < 4; lc++ {
				wg.Add(1)
				go func(lc int) {
					defer wg.Done()
					rng := stats.NewRNG(seed ^ uint64(lc)*977)
					for i := 0; i < 500; i++ {
						a := tbl.RandomMatchedAddr(rng)
						v, err := r.Lookup(lc, a)
						if err != nil {
							t.Error(err)
							return
						}
						if !verdictMatches(v, oracle, a) {
							t.Errorf("wrong verdict for %s served by %s", ip.FormatAddr(a), v.ServedBy)
							return
						}
					}
				}(lc)
			}
			wg.Wait()

			g := r.Gray()
			var hedges, ejects int
			for _, tr := range r.Traces() {
				hedges += tr.CountKind(tracing.EvHedge)
				ejects += tr.CountKind(tracing.EvEject)
			}
			if int64(hedges) != g.Hedges {
				t.Errorf("traces record %d hedge events, counter says %d", hedges, g.Hedges)
			}
			if int64(ejects) != g.EjectServed {
				t.Errorf("traces record %d eject events, counter says %d", ejects, g.EjectServed)
			}
			if g.Hedges+g.EjectServed == 0 {
				t.Error("brownout produced no hedges or eject-serves; reconciliation is vacuous")
			}
		})
	}
}

// TestGrayGlobalOverloadNoFalsePositive: when EVERY directed link is
// equally slow (a router-wide overload, not a gray failure), the
// ratio-to-fleet-median scorer must abstain — no LC is an outlier, so no
// degrade, no ejection, no steering away from healthy cards.
func TestGrayGlobalOverloadNoFalsePositive(t *testing.T) {
	tbl := rtable.Small(2000, 7)
	seed := chaosSeeds(t)[0]
	lf := NewLinkFaults(seed)
	for from := 0; from < 4; from++ {
		for to := 0; to < 4; to++ {
			if from != to {
				lf.SetLink(from, to, LinkFaultConfig{Delay: time.Millisecond})
			}
		}
	}
	r, err := New(tbl, WithLCs(4), WithoutCache(),
		WithFaultInjector(lf.Injector()),
		WithRequestTimeout(10*time.Millisecond),
		WithGray(DefaultGrayPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	var wg sync.WaitGroup
	for lc := 0; lc < 4; lc++ {
		wg.Add(1)
		go func(lc int) {
			defer wg.Done()
			rng := stats.NewRNG(seed + uint64(lc)*11)
			for i := 0; i < 200; i++ {
				if _, err := r.Lookup(lc, tbl.RandomMatchedAddr(rng)); err != nil {
					t.Error(err)
					return
				}
			}
		}(lc)
	}
	wg.Wait()

	g := r.Gray()
	var sampled int64
	for _, l := range g.LCs {
		sampled += l.Samples
	}
	if sampled == 0 {
		t.Fatal("no RTT samples accumulated; test is vacuous")
	}
	if g.Degrades != 0 || g.Ejections != 0 {
		t.Errorf("uniform slowness flagged degrades=%d ejections=%d; global overload must not read as a gray failure",
			g.Degrades, g.Ejections)
	}
}

// TestGrayEjectRestoreLifecycle drives a full brownout round trip:
// detect → eject → brownout lifts → recover → restore, with traffic from
// the other LCs keeping LC 1's round-trip rings fresh throughout (a
// recovering card is judged by its peers' samples of it).
func TestGrayEjectRestoreLifecycle(t *testing.T) {
	tbl := rtable.Small(2000, 7)
	seed := chaosSeeds(t)[0]
	lf := NewLinkFaults(seed)
	lf.SlowLC(1, 10)
	gp := DefaultGrayPolicy()
	r, err := New(tbl, WithLCs(4), WithoutCache(),
		WithFaultInjector(lf.Injector()),
		WithRequestTimeout(8*time.Millisecond),
		WithGray(gp))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for lc := 0; lc < 4; lc++ {
		wg.Add(1)
		go func(lc int) {
			defer wg.Done()
			rng := stats.NewRNG(seed + uint64(lc)*101)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := r.Lookup(lc, tbl.RandomMatchedAddr(rng)); err != nil {
					return
				}
			}
		}(lc)
	}

	waitFor(t, "LC 1 ejected", func() bool { return r.Gray().LCs[1].Ejected })
	lf.SlowLC(1, 1) // brownout lifts
	waitFor(t, "LC 1 restored", func() bool {
		g := r.Gray()
		return !g.LCs[1].Ejected && g.Restores > 0
	})
	close(stop)
	wg.Wait()

	g := r.Gray()
	if g.Degrades == 0 || g.Recovers == 0 || g.Ejections == 0 || g.Restores == 0 {
		t.Errorf("incomplete lifecycle: %+v", g)
	}
	for i, st := range r.LCStates() {
		if st != LCHealthy {
			t.Errorf("LC %d left Healthy (%s) across an eject/restore cycle", i, st)
		}
	}
}

// TestGrayMetricsFamiliesGolden pins the /metrics surface: the family set
// of a default (gray-disabled) router must match the committed golden
// list exactly — proving the gray subsystem adds nothing when off — and a
// gray-enabled router must add exactly the documented new families. Set
// SPAL_UPDATE_GOLDEN=1 to regenerate.
func TestGrayMetricsFamiliesGolden(t *testing.T) {
	families := func(opts ...Option) []string {
		tbl := rtable.Small(500, 3)
		r, err := New(tbl, append([]Option{WithLCs(2), WithDefaultCache()}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Stop()
		if _, err := r.Lookup(0, tbl.RandomMatchedAddr(stats.NewRNG(1))); err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, ln := range strings.Split(r.Metrics().PrometheusText(), "\n") {
			if name, ok := strings.CutPrefix(ln, "# HELP "); ok {
				seen[strings.Fields(name)[0]] = true
			}
		}
		out := make([]string, 0, len(seen))
		for f := range seen {
			out = append(out, f)
		}
		sort.Strings(out)
		return out
	}

	def := families()
	goldenPath := filepath.Join("testdata", "metric_families_default.golden")
	if os.Getenv("SPAL_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(strings.Join(def, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with SPAL_UPDATE_GOLDEN=1)", err)
	}
	if got := strings.Join(def, "\n") + "\n"; got != string(want) {
		t.Errorf("default metric families drifted from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
	for _, f := range def {
		if strings.Contains(f, "rtt") || strings.Contains(f, "hedge") || strings.Contains(f, "eject") || strings.Contains(f, "gray") || strings.Contains(f, "degraded") {
			t.Errorf("gray family %q leaked into the default snapshot", f)
		}
	}

	grayOnly := map[string]bool{}
	for _, f := range families(WithGray(DefaultGrayPolicy())) {
		grayOnly[f] = true
	}
	for _, f := range def {
		delete(grayOnly, f)
	}
	for _, f := range []string{MetricFabricRTTp50, MetricFabricRTTp99, MetricLCDegraded,
		MetricHedges, MetricEjectServed, MetricEjections, MetricEjectRestores,
		MetricGrayDegrades, MetricGrayRecovers} {
		if !grayOnly[f] {
			t.Errorf("gray-enabled snapshot is missing family %q", f)
		}
		delete(grayOnly, f)
	}
	for f := range grayOnly {
		t.Errorf("gray-enabled snapshot added undocumented family %q", f)
	}
}
