// Lifecycle tests: LC health monitoring, crash re-homing, admin drain,
// and the Stop/UpdateTable interleaving contract. The ChaosKillLC test is
// part of the CI chaos matrix (it honors SPAL_CHAOS_SEED).
package router

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/rtable"
	"spal/internal/stats"
)

// TestChaosKillLCUnderFaults is the lifecycle acceptance check: a line
// card is crashed mid-traffic while a seeded injector drops 10% of fabric
// messages (heartbeats included). Every lookup — submitted before, during
// and after the crash, at every LC including the dead one — must still
// return the reference-LPM verdict; none may be lost. Afterwards the
// partition must be re-homed onto the survivors.
func TestChaosKillLCUnderFaults(t *testing.T) {
	tbl := rtable.Small(2000, 7)
	oracle := lpm.NewReference(tbl)
	for _, seed := range chaosSeeds(t) {
		t.Run("seed="+strconv.FormatUint(seed, 10), func(t *testing.T) {
			r, err := New(tbl, WithLCs(4), WithDefaultCache(),
				WithFaultInjector(SeededFaults(FaultConfig{Seed: seed, DropRate: 0.10})),
				WithRequestTimeout(2*time.Millisecond), WithMaxRetries(2),
				WithHealthThresholds(4*time.Millisecond, 8*time.Millisecond))
			if err != nil {
				t.Fatal(err)
			}
			defer r.Stop()

			var wg sync.WaitGroup
			var served atomic.Int64
			errs := make(chan string, 64)
			const perLC = 400
			for lc := 0; lc < 4; lc++ {
				wg.Add(1)
				go func(lc int) {
					defer wg.Done()
					rng := stats.NewRNG(seed + uint64(lc)*101)
					for i := 0; i < perLC; i++ {
						var a ip.Addr
						if i%3 == 0 {
							a = rng.Uint32() // may be unmatched
						} else {
							a = tbl.RandomMatchedAddr(rng)
						}
						v, err := r.Lookup(lc, a)
						if err != nil {
							errs <- err.Error()
							return
						}
						if !verdictMatches(v, oracle, a) {
							errs <- "wrong verdict for " + ip.FormatAddr(a) + " served by " + v.ServedBy.String()
							return
						}
						served.Add(1)
					}
				}(lc)
			}

			// Crash LC 2 once traffic is rolling.
			waitFor(t, "traffic to start", func() bool { return served.Load() > 50 })
			if err := r.KillLC(2); err != nil {
				t.Fatal(err)
			}
			waitFor(t, "LC 2 to be declared down", func() bool {
				return r.LCStates()[2] == LCDown
			})

			wg.Wait()
			close(errs)
			for e := range errs {
				t.Fatal(e)
			}
			if got := served.Load(); got != 4*perLC {
				t.Fatalf("served %d lookups, want %d (none may be lost)", got, 4*perLC)
			}

			// Re-homed: no address may be homed on the dead LC, and every
			// home must still answer with the oracle verdict.
			rng := stats.NewRNG(seed ^ 0xdead)
			for i := 0; i < 300; i++ {
				a := rng.Uint32()
				if home := r.HomeLC(a); home == 2 {
					t.Fatalf("HomeLC(%s) = 2 after its death", ip.FormatAddr(a))
				}
			}
			s := r.Metrics()
			if s.Sum(MetricRehomes) < 1 {
				t.Error("no re-homing recorded after an LC death")
			}
		})
	}
}

// TestKillLCRehomeProperty is the re-homing correctness property on a
// clean fabric: after an LC dies, every address is homed on a survivor
// and its lookup verdict (asked at every LC, the dead shell included)
// still equals the full-table oracle.
func TestKillLCRehomeProperty(t *testing.T) {
	tbl := rtable.Small(2000, 19)
	oracle := lpm.NewReference(tbl)
	r, err := New(tbl, WithLCs(4),
		WithRequestTimeout(4*time.Millisecond),
		WithHealthThresholds(4*time.Millisecond, 8*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	if err := r.KillLC(1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "LC 1 down", func() bool { return r.LCStates()[1] == LCDown })

	rng := stats.NewRNG(31)
	for i := 0; i < 250; i++ {
		var a ip.Addr
		if i%2 == 0 {
			a = tbl.RandomMatchedAddr(rng)
		} else {
			a = rng.Uint32()
		}
		if home := r.HomeLC(a); home == 1 {
			t.Fatalf("HomeLC(%s) = 1, the dead LC", ip.FormatAddr(a))
		}
		v, err := r.Lookup(i%4, a) // i%4 == 1 exercises the reborn shell
		if err != nil {
			t.Fatal(err)
		}
		if !verdictMatches(v, oracle, a) {
			t.Fatalf("verdict for %s at LC %d wrong after re-homing", ip.FormatAddr(a), i%4)
		}
	}

	// RestoreLC brings the slot back into the partitioning.
	if err := r.RestoreLC(1); err != nil {
		t.Fatal(err)
	}
	if st := r.LCStates()[1]; st != LCHealthy {
		t.Fatalf("restored LC state = %s, want healthy", st)
	}
	foundHome := false
	for i := 0; i < 2000 && !foundHome; i++ {
		foundHome = r.HomeLC(rng.Uint32()) == 1
	}
	if !foundHome {
		t.Error("restored LC owns no pattern")
	}
	for i := 0; i < 100; i++ {
		a := tbl.RandomMatchedAddr(rng)
		v, err := r.Lookup(i%4, a)
		if err != nil {
			t.Fatal(err)
		}
		if !verdictMatches(v, oracle, a) {
			t.Fatalf("verdict for %s wrong after restore", ip.FormatAddr(a))
		}
	}
}

// TestDrainLCGraceful drains a loaded LC mid-traffic: the drain must
// complete, no lookup may expire its retry budget (zero
// deadline_expired), every verdict stays correct, and RestoreLC returns
// the LC to service.
func TestDrainLCGraceful(t *testing.T) {
	tbl := rtable.Small(2000, 23)
	oracle := lpm.NewReference(tbl)
	// A generous timeout: any deadline expiry during the drain would be a
	// dropped-lookup bug, not fabric loss.
	r, err := New(tbl, WithLCs(4), WithDefaultCache(), WithRequestTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	var wg sync.WaitGroup
	var served atomic.Int64
	errs := make(chan string, 64)
	for lc := 0; lc < 4; lc++ {
		wg.Add(1)
		go func(lc int) {
			defer wg.Done()
			rng := stats.NewRNG(uint64(lc)*7 + 3)
			for i := 0; i < 300; i++ {
				a := tbl.RandomMatchedAddr(rng)
				v, err := r.Lookup(lc, a)
				if err != nil {
					errs <- err.Error()
					return
				}
				if !verdictMatches(v, oracle, a) {
					errs <- "wrong verdict for " + ip.FormatAddr(a)
					return
				}
				served.Add(1)
			}
		}(lc)
	}

	waitFor(t, "traffic to start", func() bool { return served.Load() > 50 })
	if err := r.DrainLC(1); err != nil {
		t.Fatal(err)
	}
	if st := r.LCStates()[1]; st != LCDraining {
		t.Fatalf("state after drain = %s, want draining", st)
	}
	if _, err := r.Lookup(1, tbl.RandomMatchedAddr(stats.NewRNG(9))); err != nil {
		t.Fatalf("drained LC must keep serving arrival traffic: %v", err)
	}
	rng := stats.NewRNG(13)
	for i := 0; i < 300; i++ {
		if r.HomeLC(rng.Uint32()) == 1 {
			t.Fatal("drained LC still owns part of the partition")
		}
	}

	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	s := r.Metrics()
	if got := s.Sum(MetricDeadlineExpired); got != 0 {
		t.Errorf("deadline expiries during a clean drain = %v, want 0", got)
	}
	if got := s.Sum(MetricDrains); got != 1 {
		t.Errorf("drains = %v, want 1", got)
	}
	if h, ok := s.HistValue(MetricDrainDuration); !ok || h.Count != 1 {
		t.Errorf("drain duration histogram count = %+v (ok=%v), want 1", h, ok)
	}

	if err := r.RestoreLC(1); err != nil {
		t.Fatal(err)
	}
	if st := r.LCStates()[1]; st != LCHealthy {
		t.Fatalf("state after restore = %s, want healthy", st)
	}
}

// TestLifecycleAdminErrors pins the admin API's error contract.
func TestLifecycleAdminErrors(t *testing.T) {
	tbl := rtable.Small(500, 3)
	r, err := New(tbl, WithLCs(2), WithRequestTimeout(4*time.Millisecond),
		WithHealthThresholds(4*time.Millisecond, 8*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	if err := r.KillLC(7); err == nil {
		t.Error("KillLC out of range must fail")
	}
	if err := r.DrainLC(-1); err == nil {
		t.Error("DrainLC out of range must fail")
	}
	if err := r.RestoreLC(0); err == nil {
		t.Error("RestoreLC of a healthy LC must fail")
	}
	if err := r.DrainLC(0); err != nil {
		t.Fatal(err)
	}
	if err := r.DrainLC(0); err == nil {
		t.Error("double drain must fail")
	}
	if err := r.DrainLC(1); err == nil {
		t.Error("draining the last active LC must fail")
	}
	if err := r.RestoreLC(0); err != nil {
		t.Fatal(err)
	}

	if err := r.KillLC(1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "LC 1 down", func() bool { return r.LCStates()[1] == LCDown })
	if err := r.KillLC(1); err == nil {
		t.Error("killing a down LC must fail")
	}
	if err := r.DrainLC(1); err == nil {
		t.Error("draining a down LC must fail")
	}
}

// TestHeartbeatLossSuspectsButNeverDowns: a fabric that eats every
// heartbeat pushes a *running* LC to Suspect — and no further, because
// Down additionally requires the goroutine to have exited. Resumed beats
// heal the LC.
func TestHeartbeatLossSuspectsButNeverDowns(t *testing.T) {
	var eatBeats atomic.Bool
	eatBeats.Store(true)
	inj := func(m FabricMessage) FaultDecision {
		return FaultDecision{Drop: m.Heartbeat && eatBeats.Load()}
	}
	tbl := rtable.Small(500, 5)
	r, err := New(tbl, WithLCs(2), WithFaultInjector(inj),
		WithRequestTimeout(4*time.Millisecond),
		WithHealthThresholds(4*time.Millisecond, 8*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	waitFor(t, "both LCs suspect", func() bool {
		st := r.LCStates()
		return st[0] == LCSuspect && st[1] == LCSuspect
	})
	// Starved long past downAfter, still only Suspect: lookups keep
	// resolving and nothing is re-homed.
	time.Sleep(20 * time.Millisecond)
	for _, st := range r.LCStates() {
		if st == LCDown {
			t.Fatal("heartbeat loss alone must never declare an LC down")
		}
	}
	if v, err := r.Lookup(0, tbl.RandomMatchedAddr(stats.NewRNG(1))); err != nil || !v.OK {
		t.Fatalf("suspect router lost a lookup: %+v, %v", v, err)
	}

	eatBeats.Store(false)
	waitFor(t, "both LCs healed", func() bool {
		st := r.LCStates()
		return st[0] == LCHealthy && st[1] == LCHealthy
	})
	s := r.Metrics()
	if s.Sum(MetricSuspects) < 2 {
		t.Errorf("suspect transitions = %v, want >= 2", s.Sum(MetricSuspects))
	}
	if s.Sum(MetricRehomes) != 0 {
		t.Errorf("rehomes = %v, want 0", s.Sum(MetricRehomes))
	}
}

// TestStopUpdateTableInterleaving is the shutdown-contract regression
// test: UpdateTable racing Stop must always return nil or ErrStopped —
// never a partial swap, never a deadlock. The whole test runs under a
// watchdog so a deadlock fails fast instead of hanging the suite.
func TestStopUpdateTableInterleaving(t *testing.T) {
	t1 := rtable.Small(800, 7)
	t2 := rtable.Small(800, 8)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for iter := 0; iter < 30; iter++ {
			r, err := New(t1, WithLCs(4), WithDefaultCache())
			if err != nil {
				t.Error(err)
				return
			}
			var wg sync.WaitGroup
			for u := 0; u < 3; u++ {
				wg.Add(1)
				go func(u int) {
					defer wg.Done()
					for i := 0; ; i++ {
						next := t2
						if (i+u)%2 == 1 {
							next = t1
						}
						if err := r.UpdateTable(next); err != nil {
							if !errors.Is(err, ErrStopped) {
								t.Errorf("UpdateTable returned %v, want nil or ErrStopped", err)
							}
							return
						}
					}
				}(u)
			}
			// Let the updaters get going, then tear down under them.
			time.Sleep(time.Duration(iter%3) * 100 * time.Microsecond)
			r.Stop()
			wg.Wait()
			// Post-Stop calls observe a stopped router immediately.
			if err := r.UpdateTable(t2); !errors.Is(err, ErrStopped) {
				t.Errorf("UpdateTable after Stop = %v, want ErrStopped", err)
			}
			if _, err := r.Lookup(0, 1); !errors.Is(err, ErrStopped) {
				t.Errorf("Lookup after Stop = %v, want ErrStopped", err)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Stop/UpdateTable interleaving deadlocked")
	}
}

// TestLookupBatchCtxOrdering pins the documented guarantee: out[i] is the
// verdict for addrs[i], duplicates included, regardless of internal
// completion order.
func TestLookupBatchCtxOrdering(t *testing.T) {
	tbl := rtable.Small(2000, 7)
	oracle := lpm.NewReference(tbl)
	r, err := New(tbl, WithLCs(4), WithDefaultCache())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	rng := stats.NewRNG(77)
	addrs := make([]ip.Addr, 0, 120)
	for i := 0; i < 100; i++ {
		addrs = append(addrs, tbl.RandomMatchedAddr(rng))
	}
	for i := 0; i < 20; i++ { // duplicates exercise coalescing
		addrs = append(addrs, addrs[rng.Intn(50)])
	}
	out, err := r.LookupBatchCtx(context.Background(), 1, addrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(addrs) {
		t.Fatalf("got %d verdicts for %d addrs", len(out), len(addrs))
	}
	for i, v := range out {
		if v.Addr != addrs[i] {
			t.Fatalf("out[%d].Addr = %s, want %s (positional guarantee)",
				i, ip.FormatAddr(v.Addr), ip.FormatAddr(addrs[i]))
		}
		if !verdictMatches(v, oracle, addrs[i]) {
			t.Fatalf("out[%d] wrong for %s", i, ip.FormatAddr(addrs[i]))
		}
	}
}

// TestLookupBatchCtxCancel: a cancelled context aborts the wait with
// ctx.Err() while the in-flight lookups drain harmlessly inside the
// router.
func TestLookupBatchCtxCancel(t *testing.T) {
	tbl := rtable.Small(2000, 7)
	r, err := New(tbl, WithLCs(2), WithRequestTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	// A batch aimed at a stalled home LC cannot complete until released.
	release := make(chan struct{})
	defer close(release)
	r.send(1, message{kind: mExec, do: func(*lineCard) { <-release }})

	rng := stats.NewRNG(5)
	var addrs []ip.Addr
	for len(addrs) < 8 {
		if a := tbl.RandomMatchedAddr(rng); r.HomeLC(a) == 1 {
			addrs = append(addrs, a)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := r.LookupBatchCtx(ctx, 0, addrs)
		got <- err
	}()
	cancel()
	select {
	case err := <-got:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled batch returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled batch did not return")
	}

	// Pre-cancelled context: fail before submitting anything.
	if _, err := r.LookupBatchCtx(ctx, 0, addrs); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled batch returned %v, want context.Canceled", err)
	}
}

// TestWaitersGauge: parked lookups are visible in spal_router_waiters and
// the gauge returns to zero once they resolve.
func TestWaitersGauge(t *testing.T) {
	tbl := rtable.Small(2000, 7)
	r, err := New(tbl, WithLCs(2), WithRequestTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	release := make(chan struct{})
	r.send(1, message{kind: mExec, do: func(*lineCard) { <-release }})

	rng := stats.NewRNG(41)
	var addrs []ip.Addr
	for len(addrs) < 6 {
		if a := tbl.RandomMatchedAddr(rng); r.HomeLC(a) == 1 {
			addrs = append(addrs, a)
		}
	}
	var chans []<-chan Verdict
	for _, a := range addrs {
		ch, err := r.LookupAsync(0, a)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	waitFor(t, "waiters to park", func() bool {
		return r.lcs[0].waiters.Load() == int64(len(addrs))
	})
	close(release)
	for _, ch := range chans {
		<-ch
	}
	waitFor(t, "waiters to clear", func() bool {
		w0, w1 := r.lcs[0].waiters.Load(), r.lcs[1].waiters.Load()
		return w0 == 0 && w1 == 0
	})
}
