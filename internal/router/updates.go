// Incremental route updates: the churn-absorption plane.
//
// UpdateTable is the paper's answer to a routing-table change — rebuild
// every partition, swap in two barrier phases, flush every LR-cache. That
// is the right tool for a wholesale table replacement, but BGP churn is
// not wholesale: a session flap touches a handful of prefixes per batch,
// and paying a global barrier plus a full cache flush per batch collapses
// the hit rate the LR-caches exist to provide.
//
// ApplyUpdates is the incremental path. The partitioning applies the
// batch in place (same control bits, same pattern→LC folding; see
// partition.ApplyUpdates), each LC receives exactly its own sub-batch to
// stream into its engine — in place for lpm.DynamicEngine implementations
// (the tries), by rebuilding only its own partition otherwise — and cache
// coherence comes from targeted invalidation instead of a flush: a change
// to prefix p can only affect verdicts for addresses in
// [p.FirstAddr(), p.LastAddr()], so each LC invalidates the batch's
// coalesced address ranges (rtable.UpdateRanges) in its LR-cache, LOC and
// REM entries alike, and every other entry keeps serving.
//
// There is no barrier and the reply epoch does not move. Instead,
// correctness across the propagation window rests on a generation guard:
// every update batch advances the router-wide generation (r.gen, under
// r.mu); each LC records the generation its engine reflects (lc.gen);
// every fabric reply carries the generation its value was computed
// against. A requester that has already applied generation N — and
// therefore already ran N's invalidations — refuses to cache a reply
// value older than N (see fillStaleRelease): the value is still delivered
// to the parked lookups, which were in flight across the window and may
// legally observe either table, but it cannot outlive the window in a
// cache. Once ApplyUpdates returns, every alive LC has applied the batch
// and invalidated its ranges, so every subsequent lookup reflects the
// updated table.
//
// Incremental updates preserve the partitioning's control bits, so
// sustained churn slowly drifts the partition quality the bits were
// selected for: replication (Φ*) creeps as new prefixes fold into more
// patterns than SelectBits would now choose, and per-LC load skews. The
// background rebalancer rides the health ticker, compares the live
// partition stats against the baseline captured at the last full bit
// re-selection, and triggers the existing two-phase swap — full
// SelectBits, barrier, flush — only when drift crosses the policy's
// thresholds. Steady churn therefore costs targeted invalidations only,
// with an occasional amortized re-selection when the table has genuinely
// changed shape.
package router

import (
	"errors"
	"time"

	"spal/internal/lpm"
	"spal/internal/partition"
	"spal/internal/rtable"
)

// RebalancePolicy configures the background partition rebalancer (see the
// package comment above). The zero value disables it; DefaultRebalancePolicy
// returns sensible thresholds.
type RebalancePolicy struct {
	// Enabled turns the rebalancer on.
	Enabled bool
	// MaxReplicationGrowth triggers a rebalance when the partitioning's
	// live replication factor exceeds baseline × this. <= 1 selects the
	// default (1.15, i.e. 15% Φ* growth since the last bit selection).
	MaxReplicationGrowth float64
	// MaxSkew triggers a rebalance when (max − min) partition size exceeds
	// this fraction of the mean partition size. <= 0 selects the default
	// (1.0).
	MaxSkew float64
	// MinInterval rate-limits rebalances (and is also reset by any full
	// swap: UpdateTable, re-homing, drain/restore). <= 0 selects the
	// default (1s).
	MinInterval time.Duration
}

// DefaultRebalancePolicy enables rebalancing with the default thresholds.
func DefaultRebalancePolicy() RebalancePolicy {
	return RebalancePolicy{Enabled: true}
}

func normalizeRebalance(p RebalancePolicy) RebalancePolicy {
	if !p.Enabled {
		return p
	}
	if p.MaxReplicationGrowth <= 1 {
		p.MaxReplicationGrowth = 1.15
	}
	if p.MaxSkew <= 0 {
		p.MaxSkew = 1.0
	}
	if p.MinInterval <= 0 {
		p.MinInterval = time.Second
	}
	return p
}

// ApplyUpdates streams a batch of route announcements and withdrawals
// into the running forwarding plane without a global barrier and without
// flushing the LR-caches: each LC applies only its own partition's
// sub-batch to its engine and invalidates only the batch's address ranges
// in its cache. Lookups keep flowing throughout; ones concurrent with the
// call may observe the table before or after the batch (never a torn
// mix of per-LC states for a single verdict), and once ApplyUpdates
// returns every subsequent lookup reflects the updated table.
//
// The batch is applied atomically with respect to other control-plane
// calls (UpdateTable, lifecycle transitions) and other ApplyUpdates
// calls. An empty batch is a no-op. A batch that would empty the routing
// table entirely is rejected, mirroring UpdateTable's refusal of an empty
// table.
func (r *Router) ApplyUpdates(batch []rtable.Update) error {
	if len(batch) == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped.Load() {
		return ErrStopped
	}
	np, sub := r.part.ApplyUpdates(batch)
	if np.Full().Len() == 0 {
		return errors.New("router: update batch would empty the routing table")
	}
	ranges := rtable.UpdateRanges(batch)
	r.gen++
	r.updateBatches.Add(1)
	r.updateEvents.Add(int64(len(batch)))
	// Swap the degraded path first, mirroring UpdateTable: a fallback
	// resolution may observe either table inside the window, and is
	// guaranteed the new one once the call returns.
	r.fallback.Store(&fallbackEngine{eng: r.cfg.Engine(np.Full())})
	r.part = np

	// One control message per LC — including LCs with an empty sub-batch
	// (a drained or distant LC still holds REM cache entries for the
	// changed ranges) — acked individually, no cross-LC barrier: an LC
	// resumes serving the moment its own delta is in.
	dones := make([]chan struct{}, r.cfg.NumLCs)
	for i := 0; i < r.cfg.NumLCs; i++ {
		dones[i] = make(chan struct{})
		m := message{kind: mApplyUpdates, gen: r.gen, updates: sub[i], ranges: ranges, swapDone: dones[i]}
		if len(sub[i]) > 0 {
			m.table = np.Table(i) // rebuild path for non-dynamic engines
		}
		if !r.sendCtrlSwap(i, m) {
			return ErrStopped
		}
	}
	for i, d := range dones {
		select {
		case <-d:
		case <-r.life[i].exited:
			// Crashed mid-update; rehomeLocked rebuilds the reborn shell
			// from r.part, which already reflects this batch.
		case <-r.quit:
			return ErrStopped
		}
	}
	if r.stopped.Load() {
		return ErrStopped
	}
	return nil
}

// handleApplyUpdates applies one update batch on the owning LC goroutine:
// engine delta (in place when the engine is dynamic, partition rebuild
// otherwise), generation bump, targeted cache invalidation, ack.
func (r *Router) handleApplyUpdates(lc *lineCard, m message) {
	if len(m.updates) > 0 {
		if de, ok := lc.engine.(lpm.DynamicEngine); ok {
			for _, u := range m.updates {
				if u.Kind == rtable.Withdraw {
					de.Delete(u.Route.Prefix)
				} else {
					de.Insert(u.Route.Prefix, u.Route.NextHop)
				}
			}
		} else if m.table != nil {
			lc.engine = r.buildEngine(m.table)
		}
		lc.stats.UpdatesApplied.Add(int64(len(m.updates)))
	}
	if !r.genPinned(lc.id) {
		// The quarantine/ejection fence is the generation gap itself:
		// peers keep a pinned LC's replies out of their caches because its
		// gen trails theirs. Advancing it here would silently re-arm
		// caching of a known-damaged (or browned-out — see gray.go)
		// engine's verdicts on the next routine batch, so a pinned LC's
		// gen stays put — the engine delta and cache invalidation still
		// land, keeping served verdicts as fresh as possible — and catches
		// up only through the rebuild swap (mSwapEngine) or the ejection
		// restore's catch-up message.
		lc.gen = m.gen
	}
	if lc.cache != nil {
		for _, rg := range m.ranges {
			lc.cache.InvalidateRange(rg.Lo, rg.Hi)
		}
	}
	close(m.swapDone)
}

// maybeRebalanceLocked is the health ticker's rebalance hook: when the
// incremental plane has drifted the partition quality past the policy's
// thresholds, re-select control bits over the current table and run the
// full two-phase swap. r.mu must be held.
func (r *Router) maybeRebalanceLocked(now time.Time) {
	if !r.rebalance.Enabled || now.Sub(r.lastRebalance) < r.rebalance.MinInterval {
		return
	}
	st := r.part.Stats()
	alive := r.aliveLCsLocked()
	if len(alive) == 0 {
		return
	}
	// Skew is measured across the LCs that own partitions: a down or
	// draining slot's empty table is policy, not drift.
	sum, min, max := 0, -1, 0
	for _, i := range alive {
		n := st.Sizes[i]
		sum += n
		if min < 0 || n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	mean := float64(sum) / float64(len(alive))
	skewed := mean > 0 && float64(max-min) > r.rebalance.MaxSkew*mean
	replicated := st.Replication > r.baselineRepl*r.rebalance.MaxReplicationGrowth
	if !skewed && !replicated {
		return
	}
	part := partition.Subset(r.part.Full(), r.cfg.NumLCs, alive)
	if err := r.swapPartitioning(part); err != nil {
		return // stopping; the partial swap no longer matters
	}
	r.part = part
	r.rebalances.Add(1)
}
