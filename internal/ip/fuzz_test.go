package ip

import "testing"

// FuzzParsePrefix checks that the parser never panics and that every
// accepted input round-trips through String.
func FuzzParsePrefix(f *testing.F) {
	for _, seed := range []string{
		"10.0.0.0/8", "0.0.0.0/0", "255.255.255.255/32", "1.2.3.4",
		"256.1.1.1/8", "1.2.3.4/33", "", "/", "a.b.c.d/x", "1.2.3.4/08",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrefix(s)
		if err != nil {
			return
		}
		q, err := ParsePrefix(p.String())
		if err != nil || q != p {
			t.Fatalf("round trip of %q -> %v failed: %v", s, p, err)
		}
	})
}

// FuzzParsePrefix6 is the 128-bit counterpart.
func FuzzParsePrefix6(f *testing.F) {
	f.Add("2001:0db8:0000:0000:0000:0000:0000:0000/32")
	f.Add("ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff/128")
	f.Add("::1/128")
	f.Add("x:y:z/8")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrefix6(s)
		if err != nil {
			return
		}
		q, err := ParsePrefix6(p.String())
		if err != nil || q != p {
			t.Fatalf("round trip of %q -> %v failed: %v", s, p, err)
		}
	})
}
