package ip

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr6 is a 128-bit IPv6 address, Hi holding bits b0..b63 (b0 = MSB of Hi).
type Addr6 struct {
	Hi, Lo uint64
}

// Prefix6 is an IPv6 prefix of Len bits, left-aligned in Value.
// It exists to demonstrate the paper's claim that SPAL "is feasibly
// applicable to IPv6": the partitioner and the binary trie accept it.
type Prefix6 struct {
	Value Addr6
	Len   uint8 // 0..128
}

// Mask6 returns the netmask of an l-bit IPv6 prefix.
func Mask6(l uint8) Addr6 {
	switch {
	case l == 0:
		return Addr6{}
	case l <= 64:
		return Addr6{Hi: ^uint64(0) << (64 - l)}
	case l >= 128:
		return Addr6{Hi: ^uint64(0), Lo: ^uint64(0)}
	default:
		return Addr6{Hi: ^uint64(0), Lo: ^uint64(0) << (128 - l)}
	}
}

// And returns the bitwise AND of two 128-bit values.
func (a Addr6) And(b Addr6) Addr6 { return Addr6{Hi: a.Hi & b.Hi, Lo: a.Lo & b.Lo} }

// Canon returns p with don't-care bits cleared.
func (p Prefix6) Canon() Prefix6 {
	p.Value = p.Value.And(Mask6(p.Len))
	return p
}

// Bit reports bit pos (b0 = MSB) of p; known is false when pos >= Len.
func (p Prefix6) Bit(pos int) (bit uint64, known bool) {
	if pos < 0 || pos >= int(p.Len) {
		return 0, false
	}
	return Addr6Bit(p.Value, pos), true
}

// Addr6Bit returns bit pos (b0 = MSB) of a 128-bit address.
func Addr6Bit(a Addr6, pos int) uint64 {
	if pos < 64 {
		return (a.Hi >> (63 - uint(pos))) & 1
	}
	return (a.Lo >> (127 - uint(pos))) & 1
}

// Matches reports whether address a falls inside prefix p.
func (p Prefix6) Matches(a Addr6) bool {
	return a.And(Mask6(p.Len)) == p.Value
}

// Contains reports whether p covers q.
func (p Prefix6) Contains(q Prefix6) bool {
	return p.Len <= q.Len && q.Value.And(Mask6(p.Len)) == p.Value
}

// String renders p as full (uncompressed) hex groups plus length.
func (p Prefix6) String() string {
	return FormatAddr6(p.Value) + "/" + strconv.Itoa(int(p.Len))
}

// FormatAddr6 renders a as eight uncompressed hex groups.
func FormatAddr6(a Addr6) string {
	groups := make([]string, 8)
	for i := 0; i < 4; i++ {
		groups[i] = fmt.Sprintf("%04x", uint16(a.Hi>>uint(48-16*i)))
		groups[i+4] = fmt.Sprintf("%04x", uint16(a.Lo>>uint(48-16*i)))
	}
	return strings.Join(groups, ":")
}

// ParsePrefix6 parses "h:h:h:h:h:h:h:h/len" with all eight groups present
// (no "::" compression; this is a simulation input format, not a general
// IPv6 parser).
func ParsePrefix6(s string) (Prefix6, error) {
	addr := s
	length := 128
	if i := strings.IndexByte(s, '/'); i >= 0 {
		addr = s[:i]
		v, err := strconv.Atoi(s[i+1:])
		if err != nil || v < 0 || v > 128 {
			return Prefix6{}, fmt.Errorf("ip: bad prefix6 length in %q", s)
		}
		length = v
	}
	groups := strings.Split(addr, ":")
	if len(groups) != 8 {
		return Prefix6{}, fmt.Errorf("ip: want 8 groups in %q", s)
	}
	var a Addr6
	for i, g := range groups {
		v, err := strconv.ParseUint(g, 16, 16)
		if err != nil {
			return Prefix6{}, fmt.Errorf("ip: bad group %q in %q", g, s)
		}
		if i < 4 {
			a.Hi = a.Hi<<16 | v
		} else {
			a.Lo = a.Lo<<16 | v
		}
	}
	return Prefix6{Value: a, Len: uint8(length)}.Canon(), nil
}
