package ip

import (
	"testing"
	"testing/quick"
)

func TestMask(t *testing.T) {
	cases := []struct {
		l    uint8
		want uint32
	}{
		{0, 0x00000000},
		{1, 0x80000000},
		{8, 0xff000000},
		{16, 0xffff0000},
		{24, 0xffffff00},
		{31, 0xfffffffe},
		{32, 0xffffffff},
	}
	for _, c := range cases {
		if got := Mask(c.l); got != c.want {
			t.Errorf("Mask(%d) = %#x, want %#x", c.l, got, c.want)
		}
	}
}

func TestParseFormatAddr(t *testing.T) {
	cases := []struct {
		s string
		a Addr
	}{
		{"0.0.0.0", 0},
		{"255.255.255.255", 0xffffffff},
		{"10.1.2.3", 0x0a010203},
		{"192.168.0.1", 0xc0a80001},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.s)
		if err != nil {
			t.Fatalf("ParseAddr(%q): %v", c.s, err)
		}
		if got != c.a {
			t.Errorf("ParseAddr(%q) = %#x, want %#x", c.s, got, c.a)
		}
		if back := FormatAddr(c.a); back != c.s {
			t.Errorf("FormatAddr(%#x) = %q, want %q", c.a, back, c.s)
		}
	}
}

func TestParseAddrErrors(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3"} {
		if _, err := ParseAddr(s); err == nil {
			t.Errorf("ParseAddr(%q): want error", s)
		}
	}
}

func TestParsePrefix(t *testing.T) {
	p, err := ParsePrefix("10.1.0.0/16")
	if err != nil {
		t.Fatal(err)
	}
	if p.Value != 0x0a010000 || p.Len != 16 {
		t.Errorf("got %v", p)
	}
	// Non-canonical input gets masked.
	p, err = ParsePrefix("10.1.2.3/16")
	if err != nil {
		t.Fatal(err)
	}
	if p.Value != 0x0a010000 {
		t.Errorf("ParsePrefix did not canonicalize: %v", p)
	}
	// Missing length = host route.
	p, err = ParsePrefix("1.2.3.4")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len != 32 {
		t.Errorf("want /32, got %v", p)
	}
	for _, s := range []string{"10.0.0.0/33", "10.0.0.0/-1", "10.0.0.0/x", "300.0.0.0/8"} {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q): want error", s)
		}
	}
}

func TestPrefixString(t *testing.T) {
	if got := MustPrefix("10.1.0.0/16").String(); got != "10.1.0.0/16" {
		t.Errorf("String = %q", got)
	}
}

func TestBit(t *testing.T) {
	p := MustPrefix("160.0.0.0/4") // 1010...
	wantBits := []uint32{1, 0, 1, 0}
	for i, w := range wantBits {
		b, known := p.Bit(i)
		if !known || b != w {
			t.Errorf("Bit(%d) = (%d,%v), want (%d,true)", i, b, known, w)
		}
	}
	if _, known := p.Bit(4); known {
		t.Error("Bit(4) should be don't-care")
	}
	if _, known := p.Bit(-1); known {
		t.Error("Bit(-1) should be don't-care")
	}
	if _, known := p.Bit(32); known {
		t.Error("Bit(32) should be don't-care")
	}
}

func TestAddrBit(t *testing.T) {
	a := Addr(0x80000001)
	if AddrBit(a, 0) != 1 || AddrBit(a, 1) != 0 || AddrBit(a, 31) != 1 {
		t.Errorf("AddrBit wrong for %#x", a)
	}
}

func TestMatchesContains(t *testing.T) {
	p := MustPrefix("10.0.0.0/8")
	q := MustPrefix("10.1.0.0/16")
	if !p.Matches(0x0a123456) {
		t.Error("10/8 should match 10.18.52.86")
	}
	if p.Matches(0x0b000000) {
		t.Error("10/8 should not match 11.0.0.0")
	}
	if !p.Contains(q) {
		t.Error("10/8 should contain 10.1/16")
	}
	if q.Contains(p) {
		t.Error("10.1/16 should not contain 10/8")
	}
	if !p.Contains(p) {
		t.Error("prefix should contain itself")
	}
	def := Prefix{}
	if !def.Matches(0xffffffff) || !def.Matches(0) {
		t.Error("default route should match everything")
	}
}

func TestFirstLastAddr(t *testing.T) {
	p := MustPrefix("10.1.0.0/16")
	if p.FirstAddr() != 0x0a010000 {
		t.Errorf("FirstAddr = %#x", p.FirstAddr())
	}
	if p.LastAddr() != 0x0a01ffff {
		t.Errorf("LastAddr = %#x", p.LastAddr())
	}
	host := MustPrefix("1.2.3.4/32")
	if host.FirstAddr() != host.LastAddr() {
		t.Error("host route should span one address")
	}
}

func TestDedup(t *testing.T) {
	ps := []Prefix{
		MustPrefix("10.0.0.0/8"),
		MustPrefix("10.0.0.0/16"),
		MustPrefix("10.0.0.0/8"),
		MustPrefix("9.0.0.0/8"),
	}
	out := Dedup(ps)
	if len(out) != 3 {
		t.Fatalf("Dedup kept %d, want 3", len(out))
	}
	for i := 1; i < len(out); i++ {
		if !out[i-1].Less(out[i]) {
			t.Errorf("not sorted at %d: %v %v", i, out[i-1], out[i])
		}
	}
}

// Property: address matches prefix iff masking the address with the prefix
// mask yields the prefix value — and Bit/AddrBit agree inside the length.
func TestPrefixProperties(t *testing.T) {
	f := func(v uint32, lenSeed uint8, a uint32) bool {
		l := uint8(int(lenSeed) % 33)
		p := Prefix{Value: v, Len: l}.Canon()
		if p.Matches(a) != ((a & Mask(l)) == p.Value) {
			return false
		}
		for pos := 0; pos < int(l); pos++ {
			b, known := p.Bit(pos)
			if !known || b != AddrBit(p.Value, pos) {
				return false
			}
		}
		// Round-trip through string form.
		q, err := ParsePrefix(p.String())
		return err == nil && q == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Contains is consistent with Matches over the covered range
// endpoints.
func TestContainsProperty(t *testing.T) {
	f := func(v1, v2 uint32, l1, l2 uint8) bool {
		p := Prefix{Value: v1, Len: uint8(int(l1) % 33)}.Canon()
		q := Prefix{Value: v2, Len: uint8(int(l2) % 33)}.Canon()
		if p.Contains(q) {
			return p.Matches(q.FirstAddr()) && p.Matches(q.LastAddr())
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
