// Package ip provides IPv4 (and 128-bit IPv6) prefix types and the bit
// utilities the SPAL partitioner and the longest-prefix-matching engines are
// built on.
//
// A Prefix is stored left-aligned: bit b0 of the paper (the most significant
// address bit) is bit 31 of Value. Bits at positions >= Len are "don't care"
// and must be zero in Value so that prefixes compare canonically.
package ip

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host order (b0 is the MSB).
type Addr = uint32

// Prefix is an IPv4 prefix of Len bits, left-aligned in Value.
// The zero value is the default prefix 0.0.0.0/0.
type Prefix struct {
	Value uint32 // left-aligned; bits below (32-Len) are zero
	Len   uint8  // 0..32
}

// Mask returns the netmask of a prefix of length l (l in 0..32).
func Mask(l uint8) uint32 {
	if l == 0 {
		return 0
	}
	return ^uint32(0) << (32 - l)
}

// Canon returns p with don't-care bits cleared. All constructors in this
// package return canonical prefixes; Canon is for data read from outside.
func (p Prefix) Canon() Prefix {
	p.Value &= Mask(p.Len)
	return p
}

// Bit reports the value of bit position pos (paper notation: b0 is the
// leftmost/most significant bit). The second result is false when pos is at
// or beyond the prefix length, i.e. the bit is "*" (don't care).
func (p Prefix) Bit(pos int) (bit uint32, known bool) {
	if pos < 0 || pos >= int(p.Len) {
		return 0, false
	}
	return (p.Value >> (31 - uint(pos))) & 1, true
}

// AddrBit returns bit pos (b0 = MSB) of an address.
func AddrBit(a Addr, pos int) uint32 {
	return (a >> (31 - uint(pos))) & 1
}

// Matches reports whether address a falls inside prefix p.
func (p Prefix) Matches(a Addr) bool {
	return (a & Mask(p.Len)) == p.Value
}

// Contains reports whether p covers q, i.e. every address matched by q is
// matched by p. A prefix covers itself.
func (p Prefix) Contains(q Prefix) bool {
	return p.Len <= q.Len && (q.Value&Mask(p.Len)) == p.Value
}

// FirstAddr returns the lowest address covered by p.
func (p Prefix) FirstAddr() Addr { return p.Value }

// LastAddr returns the highest address covered by p.
func (p Prefix) LastAddr() Addr { return p.Value | ^Mask(p.Len) }

// String formats p in CIDR notation, e.g. "10.1.0.0/16".
func (p Prefix) String() string {
	return FormatAddr(p.Value) + "/" + strconv.Itoa(int(p.Len))
}

// FormatAddr renders a as dotted-quad.
func FormatAddr(a Addr) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("ip: bad address %q", s)
	}
	var a uint32
	for _, part := range parts {
		v, err := strconv.ParseUint(part, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("ip: bad address %q: %v", s, err)
		}
		a = a<<8 | uint32(v)
	}
	return a, nil
}

// ParsePrefix parses CIDR notation ("a.b.c.d/len"). A missing "/len" is
// treated as a host route (/32).
func ParsePrefix(s string) (Prefix, error) {
	addr := s
	length := 32
	if i := strings.IndexByte(s, '/'); i >= 0 {
		addr = s[:i]
		v, err := strconv.Atoi(s[i+1:])
		if err != nil || v < 0 || v > 32 {
			return Prefix{}, fmt.Errorf("ip: bad prefix length in %q", s)
		}
		length = v
	}
	a, err := ParseAddr(addr)
	if err != nil {
		return Prefix{}, err
	}
	return Prefix{Value: a, Len: uint8(length)}.Canon(), nil
}

// MustPrefix is ParsePrefix for constants in tests and examples; it panics
// on malformed input.
func MustPrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Less orders prefixes by value, then by length (shorter first). It is a
// strict weak ordering suitable for sort.Slice and binary search.
func (p Prefix) Less(q Prefix) bool {
	if p.Value != q.Value {
		return p.Value < q.Value
	}
	return p.Len < q.Len
}

// Sort sorts prefixes in (value, length) order in place.
func Sort(ps []Prefix) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Less(ps[j]) })
}

// Dedup sorts ps and removes exact duplicates in place, returning the
// shortened slice.
func Dedup(ps []Prefix) []Prefix {
	Sort(ps)
	out := ps[:0]
	for i, p := range ps {
		if i == 0 || p != ps[i-1] {
			out = append(out, p)
		}
	}
	return out
}
