package ip

import (
	"testing"
	"testing/quick"
)

func mustP6(t *testing.T, s string) Prefix6 {
	t.Helper()
	p, err := ParsePrefix6(s)
	if err != nil {
		t.Fatalf("ParsePrefix6(%q): %v", s, err)
	}
	return p
}

func TestMask6(t *testing.T) {
	cases := []struct {
		l    uint8
		want Addr6
	}{
		{0, Addr6{}},
		{1, Addr6{Hi: 1 << 63}},
		{64, Addr6{Hi: ^uint64(0)}},
		{65, Addr6{Hi: ^uint64(0), Lo: 1 << 63}},
		{128, Addr6{Hi: ^uint64(0), Lo: ^uint64(0)}},
	}
	for _, c := range cases {
		if got := Mask6(c.l); got != c.want {
			t.Errorf("Mask6(%d) = %+v, want %+v", c.l, got, c.want)
		}
	}
}

func TestParsePrefix6(t *testing.T) {
	p := mustP6(t, "2001:0db8:0000:0000:0000:0000:0000:0000/32")
	if p.Value.Hi != 0x20010db800000000 || p.Value.Lo != 0 || p.Len != 32 {
		t.Errorf("got %+v", p)
	}
	// Canonicalization clears don't-care bits.
	p = mustP6(t, "2001:0db8:ffff:ffff:ffff:ffff:ffff:ffff/32")
	if p.Value.Hi != 0x20010db800000000 || p.Value.Lo != 0 {
		t.Errorf("not canonical: %+v", p)
	}
	for _, bad := range []string{"", "1:2:3/16", "2001:db8:0:0:0:0:0:0/129", "xyzw:0:0:0:0:0:0:0/8"} {
		if _, err := ParsePrefix6(bad); err == nil {
			t.Errorf("ParsePrefix6(%q): want error", bad)
		}
	}
}

func TestPrefix6MatchContains(t *testing.T) {
	p := mustP6(t, "2001:0db8:0000:0000:0000:0000:0000:0000/32")
	q := mustP6(t, "2001:0db8:0001:0000:0000:0000:0000:0000/48")
	if !p.Contains(q) || q.Contains(p) {
		t.Error("containment wrong")
	}
	if !p.Matches(q.Value) {
		t.Error("p should match q's base address")
	}
	other := Addr6{Hi: 0x20020db800000000}
	if p.Matches(other) {
		t.Error("p should not match 2002:db8::")
	}
}

func TestPrefix6Bits(t *testing.T) {
	p := mustP6(t, "8000:0000:0000:0000:0000:0000:0000:0001/128")
	if b, known := p.Bit(0); !known || b != 1 {
		t.Errorf("Bit(0) = %d,%v", b, known)
	}
	if b, known := p.Bit(127); !known || b != 1 {
		t.Errorf("Bit(127) = %d,%v", b, known)
	}
	if b, known := p.Bit(64); !known || b != 0 {
		t.Errorf("Bit(64) = %d,%v", b, known)
	}
	short := mustP6(t, "8000:0000:0000:0000:0000:0000:0000:0000/1")
	if _, known := short.Bit(1); known {
		t.Error("Bit(1) of /1 should be don't-care")
	}
}

func TestPrefix6RoundTrip(t *testing.T) {
	f := func(hi, lo uint64, lenSeed uint8) bool {
		l := uint8(int(lenSeed) % 129)
		p := Prefix6{Value: Addr6{Hi: hi, Lo: lo}, Len: l}.Canon()
		q, err := ParsePrefix6(p.String())
		return err == nil && q == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: a /l prefix matches exactly the addresses it canonically equals
// under the mask.
func TestPrefix6MatchProperty(t *testing.T) {
	f := func(hi, lo, ahi, alo uint64, lenSeed uint8) bool {
		l := uint8(int(lenSeed) % 129)
		p := Prefix6{Value: Addr6{Hi: hi, Lo: lo}, Len: l}.Canon()
		a := Addr6{Hi: ahi, Lo: alo}
		return p.Matches(a) == (a.And(Mask6(l)) == p.Value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
