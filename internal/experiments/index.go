package experiments

// Runner regenerates one experiment at the given scale. Experiments that
// cannot fail wrap their Table in a nil error.
type Runner func(Scale) (*Table, error)

// wrapInfallible adapts the experiments that return a bare Table.
func wrapInfallible(f func(Scale) *Table) Runner {
	return func(s Scale) (*Table, error) { return f(s), nil }
}

// index is the canonical experiment registry in presentation order.
// cmd/spal-bench and the perf-grid harness (internal/bench) both resolve
// experiment names here, so a new experiment only needs one registration
// to be runnable, plottable, and grid-schedulable.
var index = []struct {
	name string
	run  Runner
}{
	{"bits", wrapInfallible(PartitionBits)},
	{"fig3", wrapInfallible(Fig3Storage)},
	{"access", wrapInfallible(MemoryAccesses)},
	{"fig4", Fig4Mix},
	{"fig5", Fig5CacheSize},
	{"fig6", Fig6NumLCs},
	{"headline", Headline},
	{"speeds", Speeds},
	{"ablation", Ablation},
	{"updates", UpdateFlush},
	{"coverage", Coverage},
	{"worstcase", wrapInfallible(WorstCase)},
	{"rebuild", wrapInfallible(Rebuild)},
	{"survey", wrapInfallible(Survey)},
	{"ipv6", wrapInfallible(IPv6Storage)},
	{"drift", Drift},
	{"hotspot", Hotspot},
	{"latency", LatencyDistribution},
	{"warmup", Warmup},
	{"comparator", wrapInfallible(LengthPartitionComparison)},
}

// Names lists every registered experiment in presentation order.
func Names() []string {
	out := make([]string, len(index))
	for i, e := range index {
		out[i] = e.name
	}
	return out
}

// Get resolves an experiment name, reporting whether it exists.
func Get(name string) (Runner, bool) {
	for _, e := range index {
		if e.name == name {
			return e.run, true
		}
	}
	return nil, false
}
