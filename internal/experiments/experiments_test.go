package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// cell parses a numeric table cell.
func cell(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(tbl.Rows[row][col], "x"), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, tbl.Rows[row][col], err)
	}
	return v
}

// tiny is an even smaller scale than Quick so the full matrix of
// experiments stays fast in unit tests.
var tiny = Scale{TableN: 6000, PacketsPerLC: 6000, Name: "tiny"}

func TestPartitionBitsShape(t *testing.T) {
	tbl := PartitionBits(tiny)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for i, row := range tbl.Rows {
		rep := cell(t, tbl, i, 5)
		if rep < 1.0 || rep > 3.0 {
			t.Errorf("row %d replication = %v", i, rep)
		}
		if !strings.HasPrefix(row[2], "[") {
			t.Errorf("bits cell = %q", row[2])
		}
	}
	if tbl.String() == "" {
		t.Error("empty render")
	}
}

func TestFig3PartitioningShrinksTries(t *testing.T) {
	tbl := Fig3Storage(tiny)
	// Every row: per-LC partitioned max must be well below the whole trie,
	// and the saving must be positive.
	for i := range tbl.Rows {
		whole := cell(t, tbl, i, 2)
		maxLC := cell(t, tbl, i, 3)
		saving := cell(t, tbl, i, 5)
		if maxLC >= whole {
			t.Errorf("row %v: partitioned %v >= whole %v", tbl.Rows[i][0:2], maxLC, whole)
		}
		if saving <= 0 {
			t.Errorf("row %v: non-positive saving", tbl.Rows[i][0:2])
		}
	}
	// Lulea must be the smallest structure on the whole table (paper:
	// "whose storage requirement is often the lowest").
	byTrie := map[string]float64{}
	for i, row := range tbl.Rows {
		if row[0] == "psi=4,RT_2" {
			byTrie[row[1]] = cell(t, tbl, i, 2)
		}
	}
	if byTrie["LL"] >= byTrie["DP"] || byTrie["LL"] >= byTrie["BIN"] {
		t.Errorf("Lulea should be smallest: %v", byTrie)
	}
}

func TestMemoryAccessRegimes(t *testing.T) {
	tbl := MemoryAccesses(tiny)
	for i := range tbl.Rows {
		ll := cell(t, tbl, i, 1)
		dp := cell(t, tbl, i, 2)
		if ll < 4 || ll > 12 {
			t.Errorf("lulea accesses = %v", ll)
		}
		if dp < 8 || dp > 30 {
			t.Errorf("dptrie accesses = %v", dp)
		}
		if ll >= dp {
			t.Errorf("lulea (%v) should beat dptrie (%v)", ll, dp)
		}
	}
}

func TestFig5LargerCacheNeverMuchWorse(t *testing.T) {
	tbl, err := Fig5CacheSize(tiny)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tbl.Rows {
		c1k := cell(t, tbl, i, 1)
		c8k := cell(t, tbl, i, 4)
		if c8k > c1k*1.05 {
			t.Errorf("%s: 8K (%v) worse than 1K (%v)", tbl.Rows[i][0], c8k, c1k)
		}
	}
}

func TestFig6MoreLCsHelp(t *testing.T) {
	tbl, err := Fig6NumLCs(tiny)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tbl.Rows {
		psi1 := cell(t, tbl, i, 1)
		psi16 := cell(t, tbl, i, 6)
		if psi16 >= psi1 {
			t.Errorf("%s: psi=16 (%v) not better than psi=1 (%v)", tbl.Rows[i][0], psi16, psi1)
		}
	}
}

func TestHeadlineSpeedup(t *testing.T) {
	tbl, err := Headline(tiny)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tbl.Rows {
		speedup := cell(t, tbl, i, 5)
		if speedup < 2 {
			t.Errorf("%s: speedup %vx, want >= 2x even at tiny scale", tbl.Rows[i][0], speedup)
		}
	}
}

func TestSpeedsMatrix(t *testing.T) {
	tbl, err := Speeds(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		if m := cell(t, tbl, i, 1); m < 1 {
			t.Errorf("row %d mean = %v", i, m)
		}
		if hr := cell(t, tbl, i, 2); hr < 0.5 {
			t.Errorf("row %d hit rate = %v", i, hr)
		}
	}
}

func TestWorstCasePartitionNeverWorse(t *testing.T) {
	// The paper claims partitioning "may possibly shorten" the worst
	// case. For single-bit tries (DP, BIN) the worst case is monotone in
	// the prefix set, so it must not grow; compressed structures (LL, LC)
	// can reshape, so allow a small slack.
	tbl := WorstCase(tiny)
	for i := range tbl.Rows {
		name := tbl.Rows[i][0]
		whole := cell(t, tbl, i, 1)
		part := cell(t, tbl, i, 2)
		slack := 0.0
		if name == "LL" || name == "LC" {
			slack = 2
		}
		if part > whole+slack {
			t.Errorf("%s: partition worst case %v exceeds whole %v",
				name, part, whole)
		}
		// For single-bit tries the mean must improve too. Level-compressed
		// structures can go the other way: LC-trie branches wider on
		// bigger tables, so its per-partition mean may exceed the whole-
		// table mean (recorded in the experiment notes, not asserted).
		if name == "DP" || name == "BIN" {
			if mw, mp := cell(t, tbl, i, 3), cell(t, tbl, i, 4); mp > mw*1.05 {
				t.Errorf("%s: partition mean %v exceeds whole mean %v", name, mp, mw)
			}
		}
	}
}

func TestCoverageImprovesWithPsi(t *testing.T) {
	tbl, err := Coverage(tiny)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tbl.Rows {
		h1 := cell(t, tbl, i, 1)  // psi=1
		h16 := cell(t, tbl, i, 5) // psi=16
		if h16 < h1 {
			t.Errorf("%s: hit rate psi=16 (%v) below psi=1 (%v)", tbl.Rows[i][0], h16, h1)
		}
	}
}

func TestRebuildReportsTimes(t *testing.T) {
	tbl := Rebuild(tiny)
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		if ms := cell(t, tbl, i, 2); ms < 0 {
			t.Errorf("row %d build ms = %v", i, ms)
		}
	}
}

func TestSurveyShapes(t *testing.T) {
	tbl := Survey(tiny)
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	get := func(name string, col int) float64 {
		for i, row := range tbl.Rows {
			if row[0] == name {
				return cell(t, tbl, i, col)
			}
		}
		t.Fatalf("row %q missing", name)
		return 0
	}
	// The canonical trade-offs: stride24 is the fastest and largest;
	// rangebs is compact but logarithmic; lulea beats dptrie on both axes.
	if get("stride24", 2) > 2 {
		t.Error("stride24 should average <= 2 accesses")
	}
	if get("stride24", 1) < 32*1024 {
		t.Error("stride24 should cost >= 32 MB")
	}
	if get("lulea", 1) >= get("dptrie", 1) || get("lulea", 2) >= get("dptrie", 2) {
		t.Error("lulea should beat dptrie on size and accesses")
	}
	if get("wbs", 3) > 6 {
		t.Error("wbs worst case should be <= 6 probes")
	}
}

func TestIPv6StorageSeveralTimesHigher(t *testing.T) {
	tbl := IPv6Storage(tiny)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	ratio := cell(t, tbl, 1, 4)
	if ratio < 2 || ratio > 8 {
		t.Errorf("IPv6/IPv4 ratio = %v, want 'several times higher'", ratio)
	}
	// Partitioning shrinks both families by roughly psi.
	for i := range tbl.Rows {
		whole := cell(t, tbl, i, 2)
		perLC := cell(t, tbl, i, 3)
		if perLC > whole/4 {
			t.Errorf("%s: per-LC %v not a small fraction of %v", tbl.Rows[i][0], perLC, whole)
		}
	}
}

func TestHotspotBalance(t *testing.T) {
	tbl, err := Hotspot(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// FE utilization stays far from saturation in both regimes.
	for i := range tbl.Rows {
		if util := cell(t, tbl, i, 2); util > 0.9 {
			t.Errorf("%s: max FE utilization %v", tbl.Rows[i][0], util)
		}
	}
}

func TestDriftDegradesHitRate(t *testing.T) {
	tbl, err := Drift(tiny)
	if err != nil {
		t.Fatal(err)
	}
	none := cell(t, tbl, 0, 2)
	fastest := cell(t, tbl, len(tbl.Rows)-1, 2)
	if fastest >= none {
		t.Errorf("fast drift hit rate %v should be below no-drift %v", fastest, none)
	}
}

func TestLatencyDistributionOrdering(t *testing.T) {
	tbl, err := LatencyDistribution(tiny)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tbl.Rows {
		p50 := cell(t, tbl, i, 2)
		p90 := cell(t, tbl, i, 3)
		p99 := cell(t, tbl, i, 4)
		worst := cell(t, tbl, i, 5)
		if p50 > p90 || p90 > p99 || p99 > worst {
			t.Errorf("%s: percentiles out of order: %v %v %v %v",
				tbl.Rows[i][0], p50, p90, p99, worst)
		}
	}
	// SPAL p50 must be the 1-cycle cache hit.
	if p50 := cell(t, tbl, 0, 2); p50 > 2 {
		t.Errorf("SPAL p50 = %v, want ~1 (cache hit)", p50)
	}
}

func TestWarmupCurveFalls(t *testing.T) {
	tbl, err := Warmup(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 3 {
		t.Fatalf("rows = %d, want a few windows", len(tbl.Rows))
	}
	first := cell(t, tbl, 0, 2)
	last := cell(t, tbl, len(tbl.Rows)-1, 2)
	if last >= first {
		t.Errorf("cold window mean %v should exceed warmed window mean %v", first, last)
	}
}

func TestCSVRendering(t *testing.T) {
	tbl := &Table{
		Title:   "x",
		Headers: []string{"a", "b"},
		Rows:    [][]string{{"1", "has,comma"}, {"2", `has"quote`}},
		Notes:   []string{"n1"},
	}
	got := tbl.CSV()
	want := "a,b\n1,\"has,comma\"\n2,\"has\"\"quote\"\n# n1\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestLengthPartitionComparison(t *testing.T) {
	tbl := LengthPartitionComparison(tiny)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	comparatorShare := cell(t, tbl, 0, 3)
	spal16Share := cell(t, tbl, 2, 3)
	if comparatorShare < 0.40 {
		t.Errorf("comparator largest share = %v, want /24 dominance", comparatorShare)
	}
	if spal16Share >= comparatorShare/2 {
		t.Errorf("SPAL psi=16 share %v should be far below comparator %v", spal16Share, comparatorShare)
	}
}
