// Package experiments regenerates every table and figure of the paper's
// evaluation (Secs. 4-5). Each experiment returns a Table of printable
// rows; cmd/spal-bench renders them to stdout and the root benchmark suite
// drives the same functions under testing.B.
//
// The experiment index lives in DESIGN.md; EXPERIMENTS.md records
// paper-versus-measured values for each figure.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"spal/internal/cache"
	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/lpm/bintrie"
	"spal/internal/lpm/bintrie6"
	"spal/internal/lpm/dptrie"
	"spal/internal/lpm/lctrie"
	"spal/internal/lpm/lulea"
	"spal/internal/lpm/multibit"
	"spal/internal/lpm/rangebs"
	"spal/internal/lpm/stride24"
	"spal/internal/lpm/wbs"
	"spal/internal/partition"
	"spal/internal/rtable"
	"spal/internal/sim"
	"spal/internal/stats"
	"spal/internal/trace"
)

// Table is a printable experiment result.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header row first,
// notes as trailing '#' comment lines) for plotting pipelines.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// Scale selects experiment fidelity: Full matches the paper's parameters
// (RT_1/RT_2-sized tables, 300k packets per LC); Quick shrinks both for CI
// and unit tests while preserving every qualitative shape.
type Scale struct {
	TableN       int // prefixes in the synthetic table (0 = paper size)
	PacketsPerLC int
	Name         string
}

// Quick is the test/CI scale.
var Quick = Scale{TableN: 20000, PacketsPerLC: 20000, Name: "quick"}

// Full is the paper scale.
var Full = Scale{TableN: 0, PacketsPerLC: 300000, Name: "full"}

// tableRT1 returns the RT_1 stand-in at the given scale.
func tableRT1(s Scale) *rtable.Table {
	if s.TableN == 0 {
		return rtable.RT1()
	}
	return rtable.Synthesize(rtable.SynthConfig{N: s.TableN, NextHops: 16, NestProb: 0.35, Seed: 0x5e3d_0001})
}

// tableRT2 returns the RT_2 stand-in at the given scale.
func tableRT2(s Scale) *rtable.Table {
	if s.TableN == 0 {
		return rtable.RT2()
	}
	n := s.TableN * 3 // keep RT_2 ~3.4x RT_1, as in the paper
	return rtable.Synthesize(rtable.SynthConfig{N: n, NextHops: 16, NestProb: 0.35, Seed: 0x5e3d_0002})
}

// PartitionBits reproduces the Sec. 4 bit-selection table: the control
// bits chosen for RT_1 and RT_2 at ψ = 4 and ψ = 16, with the resulting
// partition size ranges and replication factors.
func PartitionBits(s Scale) *Table {
	out := &Table{
		Title:   "Sec. 4: partitioning bit positions and ROT-partition quality",
		Headers: []string{"table", "psi", "bits", "min", "max", "replication"},
		Notes: []string{
			"paper (real RT_1): psi=4 -> bits 12,14; psi=16 -> 12,14,15,16",
			"paper (real RT_2): psi=4 -> bits 8,14; psi=16 -> 11,13,14,16",
			"synthetic tables reproduce the criteria scores, not the exact positions",
		},
	}
	for _, tc := range []struct {
		name string
		tbl  *rtable.Table
	}{{"RT_1", tableRT1(s)}, {"RT_2", tableRT2(s)}} {
		for _, psi := range []int{4, 16} {
			p := partition.Partition(tc.tbl, psi)
			st := p.Stats()
			out.Rows = append(out.Rows, []string{
				tc.name, fmt.Sprint(psi), fmt.Sprint(p.Bits),
				fmt.Sprint(st.Min), fmt.Sprint(st.Max),
				fmt.Sprintf("%.3f", st.Replication),
			})
		}
	}
	return out
}

// engineSpecs lists the three paper tries plus the binary-trie reference.
var engineSpecs = []struct {
	label string
	build lpm.Builder
}{
	{"DP", dptrie.NewEngine},
	{"LL", lulea.NewEngine},
	{"LC", lctrie.NewEngine},
	{"BIN", bintrie.NewEngine},
}

// Fig3Storage reproduces Fig. 3: total SRAM (KB) required per trie, with
// partitioning (_S: the largest per-LC partition trie, and the sum over
// LCs) and without (_W: the full-table trie per LC).
func Fig3Storage(s Scale) *Table {
	out := &Table{
		Title:   "Fig. 3: total SRAM (KB) per trie, partitioned (S) vs whole (W)",
		Headers: []string{"config", "trie", "W per-LC KB", "S max-LC KB", "S total KB", "saving/LC KB"},
		Notes: []string{
			"paper, Lulea RT_2 psi=4: ~822 KB whole vs 342-361 KB per LC",
			"paper, DP RT_1 psi=4: 859 KB whole vs 209-220 KB per LC",
		},
	}
	for _, tc := range []struct {
		name string
		tbl  *rtable.Table
	}{{"RT_1", tableRT1(s)}, {"RT_2", tableRT2(s)}} {
		for _, psi := range []int{4, 16} {
			p := partition.Partition(tc.tbl, psi)
			for _, es := range engineSpecs {
				whole := es.build(tc.tbl).MemoryBytes()
				maxLC, total := 0, 0
				for lc := 0; lc < psi; lc++ {
					m := es.build(p.Table(lc)).MemoryBytes()
					total += m
					if m > maxLC {
						maxLC = m
					}
				}
				out.Rows = append(out.Rows, []string{
					fmt.Sprintf("psi=%d,%s", psi, tc.name), es.label,
					fmt.Sprintf("%.0f", float64(whole)/1024),
					fmt.Sprintf("%.0f", float64(maxLC)/1024),
					fmt.Sprintf("%.0f", float64(total)/1024),
					fmt.Sprintf("%.0f", float64(whole-maxLC)/1024),
				})
			}
		}
	}
	return out
}

// MemoryAccesses reproduces the Sec. 5.1 measurement: mean memory accesses
// per lookup for the Lulea trie (paper: 6.2 / 6.6) and the DP trie
// (paper: ~16), measured over addresses drawn from the tables.
func MemoryAccesses(s Scale) *Table {
	out := &Table{
		Title:   "Sec. 5.1: mean memory accesses per lookup",
		Headers: []string{"table", "lulea", "dptrie", "lctrie", "bintrie"},
		Notes:   []string{"paper: Lulea 6.2 (RT_1) / 6.6 (RT_2); DP ~16 for both"},
	}
	for _, tc := range []struct {
		name string
		tbl  *rtable.Table
	}{{"RT_1", tableRT1(s)}, {"RT_2", tableRT2(s)}} {
		rng := stats.NewRNG(7)
		addrs := make([]ip.Addr, 20000)
		for i := range addrs {
			addrs[i] = tc.tbl.RandomMatchedAddr(rng)
		}
		row := []string{tc.name}
		for _, b := range []lpm.Builder{lulea.NewEngine, dptrie.NewEngine, lctrie.NewEngine, bintrie.NewEngine} {
			row = append(row, fmt.Sprintf("%.1f", lpm.MeanAccesses(b(tc.tbl), addrs)))
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// simBase is the shared Fig. 4-6 configuration: 40 Gbps LCs, 40-cycle
// lookups, RT_2 (the paper presents RT_2 results).
func simBase(s Scale, preset trace.Preset) sim.Config {
	cfg := sim.DefaultConfig(tableRT2(s))
	cfg.PacketsPerLC = s.PacketsPerLC
	cfg.Trace = preset
	cfg.Seed = 42
	return cfg
}

// meanCell extracts the figure metric (mean lookup cycles) from a run.
func meanCell(r *sim.Result) string { return fmt.Sprintf("%.2f", r.MeanLookupCycles) }

// sweep runs one simulation per (trace, column) cell concurrently and
// fills a table whose rows are the five paper traces. mutate configures
// the cell's simulation from its column index; cell extracts the value
// to print (nil = mean lookup cycles).
func sweep(s Scale, title string, colNames []string, notes []string,
	mutate func(cfg *sim.Config, col int), cell func(*sim.Result) string) (*Table, error) {
	if cell == nil {
		cell = meanCell
	}
	out := &Table{Title: title, Headers: append([]string{"trace"}, colNames...), Notes: notes}
	var cfgs []sim.Config
	for _, preset := range trace.Presets {
		for col := range colNames {
			cfg := simBase(s, preset)
			mutate(&cfg, col)
			cfgs = append(cfgs, cfg)
		}
	}
	results, errs := sim.RunMany(cfgs)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	i := 0
	for _, preset := range trace.Presets {
		row := []string{string(preset)}
		for range colNames {
			row = append(row, cell(results[i]))
			i++
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Fig4Mix reproduces Fig. 4: mean lookup time (cycles) versus the mix
// value γ for ψ = 4 and β = 4K, across the five traces.
func Fig4Mix(s Scale) (*Table, error) {
	gammas := []int{0, 25, 50, 75}
	cols := make([]string, len(gammas))
	for i, g := range gammas {
		cols[i] = fmt.Sprintf("gamma=%d%%", g)
	}
	return sweep(s,
		"Fig. 4: mean lookup time (cycles) vs mix value, psi=4, beta=4K",
		cols,
		[]string{"paper: gamma=50% is best or nearly best for every trace"},
		func(cfg *sim.Config, col int) {
			cfg.NumLCs = 4
			cfg.Cache.MixPercent = gammas[col]
		}, nil)
}

// Fig5CacheSize reproduces Fig. 5: mean lookup time versus LR-cache size
// β for ψ = 16 (γ = 50%, or 25% at β = 1K, as the paper prescribes).
func Fig5CacheSize(s Scale) (*Table, error) {
	sizes := []int{1024, 2048, 4096, 8192}
	return sweep(s,
		"Fig. 5: mean lookup time (cycles) vs LR-cache size, psi=16",
		[]string{"1K", "2K", "4K", "8K"},
		[]string{
			"paper: all traces below 9.2 cycles at beta=4K (>21 Mpps per LC)",
			"gamma = 25% at beta=1K, 50% otherwise (Sec. 5.2)",
		},
		func(cfg *sim.Config, col int) {
			cfg.NumLCs = 16
			cfg.Cache.Blocks = sizes[col]
			if sizes[col] == 1024 {
				cfg.Cache.MixPercent = 25
			}
		}, nil)
}

// Fig6NumLCs reproduces Fig. 6: mean lookup time versus ψ with β = 4K and
// γ = 50%, plus the cache-without-partitioning baseline the paper
// discusses (whose mean is ψ-independent and equals the ψ=1 point).
func Fig6NumLCs(s Scale) (*Table, error) {
	psis := []int{1, 2, 3, 4, 8, 16}
	cols := make([]string, len(psis))
	for i, psi := range psis {
		cols[i] = fmt.Sprintf("psi=%d", psi)
	}
	return sweep(s,
		"Fig. 6: mean lookup time (cycles) vs number of LCs, beta=4K, gamma=50%",
		cols,
		[]string{
			"paper: larger psi consistently lowers the mean (L_92-0: >6 at psi=1 to <3 at psi=16)",
			"a cache without partitioning is psi-independent: equal to the psi=1 column",
		},
		func(cfg *sim.Config, col int) {
			cfg.NumLCs = psis[col]
		}, nil)
}

// Headline reproduces the paper's headline comparison: a ψ=16 SPAL router
// versus a conventional router (full table per LC, no LR-caches) under
// 40-cycle lookups, reporting derived throughput and the speedup factor.
func Headline(s Scale) (*Table, error) {
	out := &Table{
		Title:   "Headline: SPAL psi=16 beta=4K vs conventional router",
		Headers: []string{"trace", "spal cycles", "conv cycles", "spal Mpps/router", "conv Mpps/router", "speedup"},
		Notes: []string{
			"paper: >336 Mpps vs 5 Mpps/LC x 16 = 80 Mpps -> 4.2x",
			"conventional throughput uses the paper's optimistic no-queueing 40-cycle figure",
		},
	}
	const convCycles = 40.0
	for _, preset := range trace.Presets {
		cfg := simBase(s, preset)
		cfg.NumLCs = 16
		r, err := sim.New(cfg)
		if err != nil {
			return nil, err
		}
		res, err := r.Run()
		if err != nil {
			return nil, err
		}
		convMpps := 1e3 / (convCycles * 5) * 16 // 5 Mpps/LC x 16
		out.Rows = append(out.Rows, []string{
			string(preset),
			fmt.Sprintf("%.2f", res.MeanLookupCycles),
			fmt.Sprintf("%.0f", convCycles),
			fmt.Sprintf("%.0f", res.DerivedMppsRouter),
			fmt.Sprintf("%.0f", convMpps),
			fmt.Sprintf("%.1fx", convCycles/res.MeanLookupCycles),
		})
	}
	return out, nil
}

// Ablation evaluates the design choices DESIGN.md calls out, on one trace
// at the Fig. 5 configuration: victim cache on/off, replacement policy,
// associativity, and early W-recording is exercised implicitly by every
// run (disabling it is not a cache-config knob; coalescing is structural).
func Ablation(s Scale) (*Table, error) {
	out := &Table{
		Title:   "Ablations: psi=16, beta=4K, trace D_75",
		Headers: []string{"variant", "mean cycles", "hit rate"},
	}
	type variant struct {
		name   string
		mutate func(*sim.Config)
	}
	variants := []variant{
		{"baseline (4-way, LRU, victim=8, gamma=50)", func(*sim.Config) {}},
		{"no victim cache", func(c *sim.Config) { c.Cache.VictimBlocks = 0 }},
		{"no early W-recording", func(c *sim.Config) { c.DisableEarlyRecording = true }},
		{"fabric output contention", func(c *sim.Config) { c.FabricContention = true }},
		{"FIFO replacement", func(c *sim.Config) { c.Cache.Policy = cache.FIFO }},
		{"random replacement", func(c *sim.Config) { c.Cache.Policy = cache.Random }},
		// A direct-mapped set cannot hold a LOC/REM mix at all (the hard
		// γ allocation needs >= 2 blocks); γ=0 keeps it LOC-only, which
		// is the best a 1-way LR-cache can do.
		{"direct-mapped (assoc=1, LOC-only)", func(c *sim.Config) { c.Cache.Assoc = 1; c.Cache.MixPercent = 0 }},
		{"2-way", func(c *sim.Config) { c.Cache.Assoc = 2 }},
		{"8-way", func(c *sim.Config) { c.Cache.Assoc = 8 }},
		{"no partitioning (cache only)", func(c *sim.Config) { c.PartitionEnabled = false }},
		{"no cache (partition only)", func(c *sim.Config) { c.CacheEnabled = false }},
	}
	for _, v := range variants {
		cfg := simBase(s, trace.D75)
		cfg.NumLCs = 16
		v.mutate(&cfg)
		r, err := sim.New(cfg)
		if err != nil {
			return nil, err
		}
		res, err := r.Run()
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, []string{
			v.name,
			fmt.Sprintf("%.2f", res.MeanLookupCycles),
			fmt.Sprintf("%.4f", res.HitRate),
		})
	}
	return out, nil
}

// UpdateFlush evaluates the route-update model (Sec. 3.2): mean lookup
// time as the cache-flush interval shrinks from none to every ~1 ms.
func UpdateFlush(s Scale) (*Table, error) {
	out := &Table{
		Title:   "Route updates: mean lookup time vs cache-flush interval (psi=16, D_75)",
		Headers: []string{"flush interval", "mean cycles", "hit rate"},
		Notes:   []string{"paper models ~20 updates/s (50 ms apart); each flushes all LR-caches"},
	}
	for _, iv := range []struct {
		label  string
		cycles int64
	}{
		{"none", 0},
		{"50 ms (20/s)", 10_000_000},
		{"10 ms (100/s)", 2_000_000},
		{"1 ms", 200_000},
	} {
		cfg := simBase(s, trace.D75)
		cfg.NumLCs = 16
		cfg.FlushEveryCycles = iv.cycles
		r, err := sim.New(cfg)
		if err != nil {
			return nil, err
		}
		res, err := r.Run()
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, []string{
			iv.label,
			fmt.Sprintf("%.2f", res.MeanLookupCycles),
			fmt.Sprintf("%.4f", res.HitRate),
		})
	}
	return out, nil
}

// Speeds reproduces the Sec. 5.2 case matrix: the paper simulated
// {10, 40 Gbps} x {40-cycle (Lulea), 62-cycle (DP)} and reports that all
// cases follow the same trend; this regenerates all four on one trace at
// the Fig. 5 configuration.
func Speeds(s Scale) (*Table, error) {
	out := &Table{
		Title:   "Sec. 5.2 cases: LC speed x FE lookup time (psi=16, beta=4K, D_75)",
		Headers: []string{"case", "mean cycles", "hit rate", "Mpps/LC"},
		Notes:   []string{"paper: all four cases follow a similar trend; 40 Gbps & 40 cycles shown in its figures"},
	}
	for _, cs := range []struct {
		label  string
		gbps   int
		cycles int
	}{
		{"10 Gbps, 40-cycle lookup", 10, 40},
		{"10 Gbps, 62-cycle lookup", 10, 62},
		{"40 Gbps, 40-cycle lookup", 40, 40},
		{"40 Gbps, 62-cycle lookup", 40, 62},
	} {
		cfg := simBase(s, trace.D75)
		cfg.NumLCs = 16
		cfg.LookupCycles = cs.cycles
		if cs.gbps == 10 {
			cfg.GapMin, cfg.GapMax = sim.Gaps10Gbps()
		}
		r, err := sim.New(cfg)
		if err != nil {
			return nil, err
		}
		res, err := r.Run()
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, []string{
			cs.label,
			fmt.Sprintf("%.2f", res.MeanLookupCycles),
			fmt.Sprintf("%.4f", res.HitRate),
			fmt.Sprintf("%.1f", res.DerivedMppsPerLC),
		})
	}
	return out, nil
}

// WorstCase supports the paper's "possibly shortens the worst-case lookup
// time" claim: the maximum memory accesses observed per engine on the
// whole table versus the worst per-LC partition at ψ=16.
func WorstCase(s Scale) *Table {
	out := &Table{
		Title:   "Worst-case lookup accesses: whole table vs psi=16 partitions (RT_2)",
		Headers: []string{"trie", "whole max", "partition max", "mean whole", "mean partition"},
		Notes: []string{
			"fewer prefixes per partition -> shallower single-bit searches, hence the paper's claim",
			"level-compressed tries can go the other way: LC-trie branches wider on bigger tables",
		},
	}
	tbl := tableRT2(s)
	p := partition.Partition(tbl, 16)
	rng := stats.NewRNG(11)
	addrs := make([]ip.Addr, 20000)
	for i := range addrs {
		addrs[i] = tbl.RandomMatchedAddr(rng)
	}
	for _, es := range engineSpecs {
		whole := es.build(tbl)
		var lcs []lpm.Engine
		for lc := 0; lc < 16; lc++ {
			lcs = append(lcs, es.build(p.Table(lc)))
		}
		wMax, wSum, pMax, pSum := 0, 0, 0, 0
		for _, a := range addrs {
			_, acc, _ := whole.Lookup(a)
			wSum += acc
			if acc > wMax {
				wMax = acc
			}
			_, acc, _ = lcs[p.HomeLC(a)].Lookup(a)
			pSum += acc
			if acc > pMax {
				pMax = acc
			}
		}
		n := float64(len(addrs))
		out.Rows = append(out.Rows, []string{
			es.label,
			fmt.Sprint(wMax), fmt.Sprint(pMax),
			fmt.Sprintf("%.1f", float64(wSum)/n),
			fmt.Sprintf("%.1f", float64(pSum)/n),
		})
	}
	return out
}

// Coverage quantifies the paper's address-space-coverage argument ("for a
// given cache size, the larger a SPAL-based router is, the higher lookup
// performance"): aggregate LR-cache hit rate versus ψ at β=4K.
func Coverage(s Scale) (*Table, error) {
	psis := []int{1, 2, 4, 8, 16}
	cols := make([]string, len(psis))
	for i, psi := range psis {
		cols[i] = fmt.Sprintf("psi=%d", psi)
	}
	return sweep(s,
		"LR-cache hit rate vs psi (beta=4K, gamma=50%)",
		cols,
		[]string{"finer fragmentation -> each cache covers a smaller address fraction -> higher hit rate"},
		func(cfg *sim.Config, col int) { cfg.NumLCs = psis[col] },
		func(r *sim.Result) string { return fmt.Sprintf("%.4f", r.HitRate) })
}

// Rebuild measures forwarding-table construction time per engine — the
// cost a route update pays under SPAL's rebuild-and-flush model, and the
// motivation for the incremental Insert/Delete the binary and DP tries
// also support.
func Rebuild(s Scale) *Table {
	out := &Table{
		Title:   "Engine build time (route-update rebuild cost)",
		Headers: []string{"table", "trie", "build ms", "prefixes"},
	}
	for _, tc := range []struct {
		name string
		tbl  *rtable.Table
	}{{"RT_1", tableRT1(s)}, {"RT_2", tableRT2(s)}} {
		for _, es := range engineSpecs {
			start := time.Now()
			es.build(tc.tbl)
			ms := float64(time.Since(start).Microseconds()) / 1000
			out.Rows = append(out.Rows, []string{
				tc.name, es.label, fmt.Sprintf("%.1f", ms), fmt.Sprint(tc.tbl.Len()),
			})
		}
	}
	return out
}

// IPv6Storage supports the paper's IPv6 motivation ("the SRAM amount
// needed is likely to be several times higher") and its closing claim
// that SPAL applies to IPv6: binary-trie sizes for an IPv6 table, whole
// versus partitioned, next to the equally sized IPv4 table.
func IPv6Storage(s Scale) *Table {
	out := &Table{
		Title:   "IPv6: binary-trie SRAM, whole vs psi=16 partitions",
		Headers: []string{"table", "prefixes", "whole KB", "max per-LC KB", "ratio v4"},
	}
	n := s.TableN
	if n == 0 {
		n = 41709 // RT_1-sized comparison
	}
	// IPv4 baseline.
	t4 := rtable.Synthesize(rtable.SynthConfig{N: n, NextHops: 16, NestProb: 0.35, Seed: 0x5e3d_0001})
	p4 := partition.Partition(t4, 16)
	whole4 := bintrie.New(t4).MemoryBytes()
	max4 := 0
	for lc := 0; lc < 16; lc++ {
		if m := bintrie.New(p4.Table(lc)).MemoryBytes(); m > max4 {
			max4 = m
		}
	}
	out.Rows = append(out.Rows, []string{
		"IPv4", fmt.Sprint(n),
		fmt.Sprintf("%.0f", float64(whole4)/1024),
		fmt.Sprintf("%.0f", float64(max4)/1024),
		"1.0",
	})

	// IPv6 table of the same size.
	rng := stats.NewRNG(0x6666)
	routes6 := make([]partition.Route6, n)
	for i := range routes6 {
		l := uint8(16 + rng.Intn(49))
		v := ip.Addr6{Hi: 0x2000000000000000 | rng.Uint64()>>3, Lo: rng.Uint64()}
		routes6[i] = partition.Route6{
			Prefix:  ip.Prefix6{Value: v, Len: l}.Canon(),
			NextHop: uint16(rng.Intn(16)),
		}
	}
	toTrie := func(rs []partition.Route6) []bintrie6.Route {
		out := make([]bintrie6.Route, len(rs))
		for i, r := range rs {
			out[i] = bintrie6.Route{Prefix: r.Prefix, NextHop: r.NextHop}
		}
		return out
	}
	whole6 := bintrie6.New(toTrie(routes6)).MemoryBytes()
	p6 := partition.Partition6(routes6, 16)
	max6 := 0
	for lc := 0; lc < 16; lc++ {
		if m := bintrie6.New(toTrie(p6.Routes(lc))).MemoryBytes(); m > max6 {
			max6 = m
		}
	}
	out.Rows = append(out.Rows, []string{
		"IPv6", fmt.Sprint(n),
		fmt.Sprintf("%.0f", float64(whole6)/1024),
		fmt.Sprintf("%.0f", float64(max6)/1024),
		fmt.Sprintf("%.1f", float64(whole6)/float64(whole4)),
	})
	out.Notes = append(out.Notes,
		"the IPv6/IPv4 whole-trie ratio is the paper's 'several times higher' SRAM pressure",
		"partitioning recovers the same ~psi x saving in both families")
	return out
}

// Survey compares every implemented lookup structure on RT_2 — storage
// and mean/worst accesses — extending the paper's three tries with the
// other classics from the Ruiz-Sanchez survey it cites.
func Survey(s Scale) *Table {
	out := &Table{
		Title:   "Survey: all lookup structures on RT_2",
		Headers: []string{"structure", "KB", "mean acc", "worst acc"},
		Notes:   []string{"wbs = binary search on prefix lengths; rangebs = binary search on ranges; stride24 = Gupta 24/8"},
	}
	tbl := tableRT2(s)
	rng := stats.NewRNG(13)
	addrs := make([]ip.Addr, 20000)
	for i := range addrs {
		addrs[i] = tbl.RandomMatchedAddr(rng)
	}
	for _, es := range []struct {
		label string
		build lpm.Builder
	}{
		{"lulea", lulea.NewEngine},
		{"dptrie", dptrie.NewEngine},
		{"lctrie", lctrie.NewEngine},
		{"bintrie", bintrie.NewEngine},
		{"multibit 16/8/8", multibit.NewEngine},
		{"wbs", wbs.NewEngine},
		{"rangebs", rangebs.NewEngine},
		{"stride24", stride24.NewEngine},
	} {
		e := es.build(tbl)
		sum, worst := 0, 0
		for _, a := range addrs {
			_, acc, _ := e.Lookup(a)
			sum += acc
			if acc > worst {
				worst = acc
			}
		}
		out.Rows = append(out.Rows, []string{
			es.label,
			fmt.Sprintf("%.0f", float64(e.MemoryBytes())/1024),
			fmt.Sprintf("%.1f", float64(sum)/float64(len(addrs))),
			fmt.Sprint(worst),
		})
	}
	return out
}

// Drift stresses the paper's locality premise: the popularity ranking
// rotates every N packets (flows die, new flows arrive), and the table
// reports how the LR-caches degrade as drift accelerates.
func Drift(s Scale) (*Table, error) {
	out := &Table{
		Title:   "Locality drift: mean lookup time vs popularity-rotation interval (psi=16, beta=4K)",
		Headers: []string{"drift interval (packets)", "mean cycles", "hit rate"},
		Notes: []string{
			"the paper argues Internet locality persisted 1996-2002; this quantifies how much drift the design tolerates",
		},
	}
	// Intervals scale with the run length so the drift count per run is
	// comparable across scales (at full scale: 75k/15k/3.75k packets).
	intervals := []struct {
		label   string
		divisor int
	}{
		{"none", 0},
		{"slow (budget/4)", 4},
		{"medium (budget/20)", 20},
		{"fast (budget/80)", 80},
	}
	for _, iv := range intervals {
		cfg := simBase(s, trace.D75)
		cfg.NumLCs = 16
		// Populate the trace config explicitly: normalize() only fills it
		// from the preset when PoolSize is zero, which would discard the
		// drift fields set below.
		cfg.TraceConfig = trace.PresetConfig(trace.D75)
		if iv.divisor > 0 {
			cfg.TraceConfig.DriftEvery = int64(s.PacketsPerLC / iv.divisor)
			if cfg.TraceConfig.DriftEvery < 1 {
				cfg.TraceConfig.DriftEvery = 1
			}
		}
		cfg.TraceConfig.DriftFraction = 0.3
		r, err := sim.New(cfg)
		if err != nil {
			return nil, err
		}
		res, err := r.Run()
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, []string{
			iv.label,
			fmt.Sprintf("%.2f", res.MeanLookupCycles),
			fmt.Sprintf("%.4f", res.HitRate),
		})
	}
	return out, nil
}

// LatencyDistribution reports the full lookup-latency shape — not just the
// mean the paper plots — for SPAL and its two baselines.
func LatencyDistribution(s Scale) (*Table, error) {
	out := &Table{
		Title:   "Lookup-latency distribution (cycles), psi=16, beta=4K, D_75",
		Headers: []string{"router", "mean", "p50", "p90", "p99", "worst"},
	}
	for _, v := range []struct {
		label           string
		cacheOn, partOn bool
		packetsDivisor  int
	}{
		{"SPAL", true, true, 1},
		{"cache only", true, false, 1},
		{"conventional (saturates)", false, false, 4},
	} {
		cfg := simBase(s, trace.D75)
		cfg.NumLCs = 16
		cfg.CacheEnabled = v.cacheOn
		cfg.PartitionEnabled = v.partOn
		cfg.PacketsPerLC /= v.packetsDivisor
		r, err := sim.New(cfg)
		if err != nil {
			return nil, err
		}
		res, err := r.Run()
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, []string{
			v.label,
			fmt.Sprintf("%.2f", res.MeanLookupCycles),
			fmt.Sprint(res.LatencyPercentile(0.50)),
			fmt.Sprint(res.LatencyPercentile(0.90)),
			fmt.Sprint(res.LatencyPercentile(0.99)),
			fmt.Sprint(res.WorstLookupCycles),
		})
	}
	return out, nil
}

// Warmup plots the cold-start curve the flush policy implies: per-window
// mean lookup time right after all caches start empty (Sec. 3.3 walks
// through exactly this scenario).
func Warmup(s Scale) (*Table, error) {
	cfg := simBase(s, trace.D75)
	cfg.NumLCs = 16
	// ~10 windows across the run (mean inter-arrival is 10 cycles).
	cfg.SampleWindowCycles = int64(s.PacketsPerLC * 10 / 10)
	if cfg.SampleWindowCycles < 1000 {
		cfg.SampleWindowCycles = 1000
	}
	r, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	res, err := r.Run()
	if err != nil {
		return nil, err
	}
	out := &Table{
		Title:   "Cold-start warmup: per-window mean lookup time (psi=16, beta=4K, D_75)",
		Headers: []string{"window end (cycles)", "packets", "mean cycles"},
		Notes:   []string{"every route update restarts this curve (flush-everything policy)"},
	}
	limit := 8
	for i, w := range res.Samples {
		if i >= limit {
			break
		}
		out.Rows = append(out.Rows, []string{
			fmt.Sprint(w.EndCycle), fmt.Sprint(w.Completed), fmt.Sprintf("%.2f", w.MeanCy),
		})
	}
	return out, nil
}

// Hotspot examines a question the paper leaves open: SPAL concentrates
// the lookups for each address at its home LC, so how balanced is the FE
// and request load across LCs — both under uniform ingress and when half
// the line cards carry 3x the traffic?
func Hotspot(s Scale) (*Table, error) {
	out := &Table{
		Title:   "Home-LC load balance (psi=16, beta=4K, D_75)",
		Headers: []string{"ingress", "FE lookups min/max", "FE util max", "requests recv min/max"},
		Notes: []string{
			"partitioning spreads homes by address bits, so FE load stays balanced even under skewed ingress",
			"skewed = LCs 0-7 at 3x the packet rate of LCs 8-15",
		},
	}
	for _, v := range []struct {
		label string
		skew  bool
	}{{"uniform", false}, {"skewed 3:1", true}} {
		cfg := simBase(s, trace.D75)
		cfg.NumLCs = 16
		if v.skew {
			lf := make([]float64, 16)
			for i := range lf {
				if i < 8 {
					lf[i] = 1.5
				} else {
					lf[i] = 0.5
				}
			}
			cfg.LoadFactors = lf
		}
		r, err := sim.New(cfg)
		if err != nil {
			return nil, err
		}
		res, err := r.Run()
		if err != nil {
			return nil, err
		}
		minFE, maxFE := int64(-1), int64(0)
		minRq, maxRq := int64(-1), int64(0)
		maxUtil := 0.0
		for _, l := range res.PerLC {
			if minFE < 0 || l.FELookups < minFE {
				minFE = l.FELookups
			}
			if l.FELookups > maxFE {
				maxFE = l.FELookups
			}
			if minRq < 0 || l.RequestsReceived < minRq {
				minRq = l.RequestsReceived
			}
			if l.RequestsReceived > maxRq {
				maxRq = l.RequestsReceived
			}
			if l.FEUtilization > maxUtil {
				maxUtil = l.FEUtilization
			}
		}
		out.Rows = append(out.Rows, []string{
			v.label,
			fmt.Sprintf("%d / %d", minFE, maxFE),
			fmt.Sprintf("%.3f", maxUtil),
			fmt.Sprintf("%d / %d", minRq, maxRq),
		})
	}
	return out, nil
}

// LengthPartitionComparison contrasts SPAL's criteria-driven partitions
// with the per-length partitioning of the Sec. 2.3 comparator [1]: the
// comparator's largest partition stays ~half the table regardless of how
// many partitions exist, while SPAL's shrink with ψ.
func LengthPartitionComparison(s Scale) *Table {
	tbl := tableRT2(s)
	out := &Table{
		Title:   "Sec. 2.3 comparator: per-length partitioning vs SPAL (RT_2)",
		Headers: []string{"scheme", "partitions", "largest", "largest/table"},
		Notes:   []string{"the comparator searches all partitions at every FE; sizes do not shrink with psi"},
	}
	parts := partition.LengthPartition(tbl)
	maxLen := 0
	for _, p := range parts {
		if p.Len() > maxLen {
			maxLen = p.Len()
		}
	}
	out.Rows = append(out.Rows, []string{
		"per-length [1]", fmt.Sprint(len(parts)), fmt.Sprint(maxLen),
		fmt.Sprintf("%.2f", float64(maxLen)/float64(tbl.Len())),
	})
	for _, psi := range []int{4, 16} {
		st := partition.Partition(tbl, psi).Stats()
		out.Rows = append(out.Rows, []string{
			fmt.Sprintf("SPAL psi=%d", psi), fmt.Sprint(psi), fmt.Sprint(st.Max),
			fmt.Sprintf("%.2f", float64(st.Max)/float64(tbl.Len())),
		})
	}
	return out
}
