package metrics

import (
	"math/bits"
	"strings"
	"testing"
)

func TestObserveExemplar(t *testing.T) {
	var h Histogram
	h.Observe(3)                   // bucket 2, no exemplar
	h.ObserveExemplar(10, 0xbeef)  // bucket 4
	h.ObserveExemplar(12, 0xcafe)  // bucket 4 again: last writer wins
	h.ObserveExemplar(5000, 0xf00) // bucket 13
	h.ObserveExemplar(7, 0)        // id 0 degrades to plain Observe

	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 3+10+12+5000+7 {
		t.Fatalf("count/sum = %d/%d, exemplar observes must still count", s.Count, s.Sum)
	}
	if s.Exemplars == nil {
		t.Fatal("no exemplars in snapshot")
	}
	if len(s.Exemplars) != len(s.Buckets) {
		t.Fatalf("Exemplars len %d must parallel Buckets len %d", len(s.Exemplars), len(s.Buckets))
	}
	if ex := s.Exemplars[bits.Len64(12)]; ex.TraceID != 0xcafe || ex.Value != 12 {
		t.Errorf("bucket 4 exemplar = %+v, want last writer {cafe 12}", ex)
	}
	if ex := s.Exemplars[bits.Len64(5000)]; ex.TraceID != 0xf00 || ex.Value != 5000 {
		t.Errorf("bucket 13 exemplar = %+v", ex)
	}
	for _, b := range []int64{3, 7} {
		if ex := s.Exemplars[bits.Len64(uint64(b))]; ex.TraceID != 0 {
			t.Errorf("bucket of %d has exemplar %+v, want none", b, ex)
		}
	}
}

// TestSnapshotNoExemplarsWithoutTracing pins the zero-cost promise: a
// histogram fed only by plain Observe snapshots with a nil Exemplars
// slice, so untraced routers render byte-identical Prometheus text.
func TestSnapshotNoExemplarsWithoutTracing(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 100} {
		h.Observe(v)
	}
	if ex := h.Snapshot().Exemplars; ex != nil {
		t.Fatalf("plain Observe produced exemplars: %v", ex)
	}
}

func TestExemplarSubAndMerge(t *testing.T) {
	var h Histogram
	h.ObserveExemplar(10, 0xaa)
	before := h.Snapshot()
	h.ObserveExemplar(1000, 0xbb)
	after := h.Snapshot()

	// Exemplars are point samples, not counters: the interval view keeps
	// the current ones rather than differencing them.
	d := after.Sub(before)
	if d.Count != 1 {
		t.Fatalf("delta count = %d", d.Count)
	}
	if ex := d.Exemplars[bits.Len64(1000)]; ex.TraceID != 0xbb {
		t.Errorf("delta lost the new exemplar: %+v", ex)
	}
	if ex := d.Exemplars[bits.Len64(10)]; ex.TraceID != 0xaa {
		t.Errorf("delta lost the old exemplar: %+v", ex)
	}

	// Merge prefers the receiver's exemplar on collision and fills gaps
	// from the other snapshot.
	var g Histogram
	g.ObserveExemplar(9, 0xcc)     // same bucket as value 10
	g.ObserveExemplar(1<<20, 0xdd) // bucket neither h touched
	m := after.Merge(g.Snapshot())
	if m.Count != 4 {
		t.Fatalf("merged count = %d", m.Count)
	}
	if ex := m.Exemplars[bits.Len64(10)]; ex.TraceID != 0xaa {
		t.Errorf("merge collision = %+v, want receiver's 0xaa", ex)
	}
	if ex := m.Exemplars[bits.Len64(1<<20)]; ex.TraceID != 0xdd {
		t.Errorf("merge gap-fill = %+v, want 0xdd", ex)
	}

	// Merging two exemplar-free snapshots must not invent a slice.
	var p, q Histogram
	p.Observe(1)
	q.Observe(2)
	if m := p.Snapshot().Merge(q.Snapshot()); m.Exemplars != nil {
		t.Error("merge of exemplar-free snapshots grew Exemplars")
	}
}

// TestWritePrometheusExemplarSuffix checks the OpenMetrics-style bucket
// suffix: present (with hex trace id and the raw sample value) only on
// buckets that carry an exemplar, absent everywhere else so untraced
// output is unchanged.
func TestWritePrometheusExemplarSuffix(t *testing.T) {
	var h Histogram
	h.Observe(3)
	h.ObserveExemplar(100, 0xabcd)
	s := &Snapshot{}
	s.Hist("spal_test_latency_ns", "Test latency.", h.Snapshot())

	out := s.PrometheusText()
	want := `spal_test_latency_ns_bucket{le="127"} 2 # {trace_id="abcd"} 100`
	if !strings.Contains(out, want) {
		t.Errorf("output missing exemplar line %q:\n%s", want, out)
	}
	if !strings.Contains(out, "spal_test_latency_ns_bucket{le=\"3\"} 1\n") {
		t.Errorf("exemplar-free bucket line altered:\n%s", out)
	}
	if strings.Contains(out, `le="3"} 1 #`) {
		t.Errorf("exemplar suffix leaked onto an exemplar-free bucket:\n%s", out)
	}
	if strings.Contains(out, `+Inf"} 2 #`) {
		t.Errorf("exemplar suffix on the +Inf bucket:\n%s", out)
	}
}
