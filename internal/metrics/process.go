package metrics

import (
	"math"
	"runtime"
	rm "runtime/metrics"
)

// Process-gauge families. They describe the Go process hosting the
// router, not the data plane itself, so they are opt-in: nothing in the
// default Router.Metrics snapshot emits them (golden-file tests pin
// that), and the perf-grid harness samples the same values around each
// benchmark cell so CI artifacts and the /metrics endpoint speak one
// vocabulary.
const (
	MetricProcGoroutines  = "spal_process_goroutines"
	MetricProcHeapBytes   = "spal_process_heap_bytes"
	MetricProcGCPauseNS   = "spal_process_gc_pause_ns_total"
	MetricProcGCCycles    = "spal_process_gc_cycles_total"
	MetricProcTotalAlloc  = "spal_process_allocated_bytes_total"
	MetricProcLiveObjects = "spal_process_live_objects"
)

// procSamples is the fixed runtime/metrics read set. Reading a batch is
// a single runtime call; the slice is rebuilt per read because
// AppendProcess must be safe for concurrent HTTP scrapes.
var procNames = []string{
	"/memory/classes/heap/objects:bytes",
	"/gc/pauses:seconds",
	"/gc/cycles/total:gc-cycles",
	"/gc/heap/allocs:bytes",
	"/gc/heap/objects:objects",
}

// ProcessUsage is one point-in-time reading of the process gauges the
// perf harness records per benchmark repeat.
type ProcessUsage struct {
	Goroutines  int     `json:"goroutines"`
	HeapBytes   uint64  `json:"heap_bytes"`
	GCPauseNS   float64 `json:"gc_pause_ns_total"`
	GCCycles    uint64  `json:"gc_cycles_total"`
	AllocBytes  uint64  `json:"allocated_bytes_total"`
	LiveObjects uint64  `json:"live_objects"`
}

// ReadProcess samples the runtime: goroutine count, live heap bytes and
// objects, cumulative GC pause time and cycle count, and cumulative
// allocated bytes.
func ReadProcess() ProcessUsage {
	samples := make([]rm.Sample, len(procNames))
	for i, n := range procNames {
		samples[i].Name = n
	}
	rm.Read(samples)
	u := ProcessUsage{Goroutines: runtime.NumGoroutine()}
	for _, s := range samples {
		switch s.Name {
		case "/memory/classes/heap/objects:bytes":
			u.HeapBytes = kindUint64(s)
		case "/gc/pauses:seconds":
			if s.Value.Kind() == rm.KindFloat64Histogram {
				if h := s.Value.Float64Histogram(); h != nil {
					u.GCPauseNS = histSumNS(h)
				}
			}
		case "/gc/cycles/total:gc-cycles":
			u.GCCycles = kindUint64(s)
		case "/gc/heap/allocs:bytes":
			u.AllocBytes = kindUint64(s)
		case "/gc/heap/objects:objects":
			u.LiveObjects = kindUint64(s)
		}
	}
	return u
}

func kindUint64(s rm.Sample) uint64 {
	if s.Value.Kind() == rm.KindUint64 {
		return s.Value.Uint64()
	}
	return 0
}

// histSumNS estimates the cumulative pause time from the runtime's pause
// histogram: count x bucket midpoint, in nanoseconds. The runtime only
// exposes the distribution, so this is a lower-noise stand-in for the
// old MemStats.PauseTotalNs with the same monotone-counter semantics.
func histSumNS(h *rm.Float64Histogram) float64 {
	var total float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		// The outermost buckets are unbounded; fall back to the finite
		// edge rather than inventing a midpoint with an infinity.
		mid := (lo + hi) / 2
		switch {
		case math.IsInf(lo, -1):
			mid = hi
		case math.IsInf(hi, 1):
			mid = lo
		}
		total += float64(c) * mid * 1e9
	}
	return total
}

// AppendProcess appends the process gauges to s. Callers opt in
// explicitly — typically by wrapping a snapshot source before handing it
// to Handler/NewMux — because these gauges describe the whole process
// and would pollute per-router golden snapshots.
func AppendProcess(s *Snapshot) {
	u := ReadProcess()
	s.Gauge(MetricProcGoroutines, "Goroutines currently live in the process.", float64(u.Goroutines))
	s.Gauge(MetricProcHeapBytes, "Bytes of live heap objects (runtime/metrics).", float64(u.HeapBytes))
	s.Counter(MetricProcGCPauseNS, "Cumulative stop-the-world GC pause time (ns, from the pause histogram).", u.GCPauseNS)
	s.Counter(MetricProcGCCycles, "Completed GC cycles.", float64(u.GCCycles))
	s.Counter(MetricProcTotalAlloc, "Cumulative bytes allocated on the heap.", float64(u.AllocBytes))
	s.Gauge(MetricProcLiveObjects, "Live heap objects (runtime/metrics).", float64(u.LiveObjects))
}

// WithProcess wraps a snapshot source so every produced snapshot also
// carries the process gauges — the opt-in hook the CLIs expose as
// -process-metrics. A nil source stays nil-safe: the wrapper returns a
// process-only snapshot.
func WithProcess(src func() *Snapshot) func() *Snapshot {
	return func() *Snapshot {
		var s *Snapshot
		if src != nil {
			s = src()
		}
		if s == nil {
			s = NewSnapshot()
		} else {
			// Copy-on-write: the source may hand out a shared snapshot.
			c := &Snapshot{At: s.At}
			c.Samples = append([]Sample(nil), s.Samples...)
			c.Hists = append([]HistSample(nil), s.Hists...)
			s = c
		}
		AppendProcess(s)
		return s
	}
}
