package metrics

import (
	"testing"
)

func buildSnapshot() *Snapshot {
	s := NewSnapshot()
	s.Counter("spal_test_lookups_total", "Lookups.", 100, L("lc", "0"))
	s.Counter("spal_test_lookups_total", "Lookups.", 50, L("lc", "1"))
	s.Gauge("spal_test_depth", "Depth.", 3, L("lc", "0"))
	var h HistogramSnapshot
	h.AddValue(3, 2)
	h.AddValue(100, 1)
	s.Hist("spal_test_latency_ns", "Latency.", h, L("lc", "0"))
	return s
}

func TestValueAndSum(t *testing.T) {
	s := buildSnapshot()
	if v, ok := s.Value("spal_test_lookups_total", L("lc", "1")); !ok || v != 50 {
		t.Errorf("Value = %v,%v", v, ok)
	}
	if _, ok := s.Value("spal_test_lookups_total", L("lc", "9")); ok {
		t.Error("unknown label set should miss")
	}
	if got := s.Sum("spal_test_lookups_total"); got != 150 {
		t.Errorf("Sum = %v", got)
	}
	if h, ok := s.HistValue("spal_test_latency_ns", L("lc", "0")); !ok || h.Count != 3 {
		t.Errorf("HistValue = %+v,%v", h, ok)
	}
}

func TestDelta(t *testing.T) {
	prev := buildSnapshot()
	cur := NewSnapshot()
	cur.Counter("spal_test_lookups_total", "Lookups.", 160, L("lc", "0"))
	cur.Counter("spal_test_lookups_total", "Lookups.", 75, L("lc", "1"))
	cur.Counter("spal_test_new_total", "Appeared after prev.", 9, L("lc", "0"))
	cur.Gauge("spal_test_depth", "Depth.", 7, L("lc", "0"))
	var h HistogramSnapshot
	h.AddValue(3, 5)
	h.AddValue(100, 1)
	cur.Hist("spal_test_latency_ns", "Latency.", h, L("lc", "0"))

	d := cur.Delta(prev)
	if v, _ := d.Value("spal_test_lookups_total", L("lc", "0")); v != 60 {
		t.Errorf("delta lc0 = %v, want 60", v)
	}
	if v, _ := d.Value("spal_test_lookups_total", L("lc", "1")); v != 25 {
		t.Errorf("delta lc1 = %v, want 25", v)
	}
	// Series absent from prev pass through unchanged.
	if v, _ := d.Value("spal_test_new_total", L("lc", "0")); v != 9 {
		t.Errorf("new series delta = %v, want 9", v)
	}
	// Gauges keep the current level.
	if v, _ := d.Value("spal_test_depth", L("lc", "0")); v != 7 {
		t.Errorf("gauge delta = %v, want 7", v)
	}
	// Histograms subtract bucket-wise: 5-2=3 samples of value 3, 0 of 100.
	dh, ok := d.HistValue("spal_test_latency_ns", L("lc", "0"))
	if !ok || dh.Count != 3 || dh.Sum != 9 {
		t.Errorf("hist delta = %+v", dh)
	}
	// Delta against nil is the snapshot itself.
	if v, _ := cur.Delta(nil).Value("spal_test_lookups_total", L("lc", "0")); v != 160 {
		t.Error("Delta(nil) must pass through")
	}
}

func TestDeltaLabelOrderInsensitive(t *testing.T) {
	prev := NewSnapshot()
	prev.Counter("m", "", 10, L("a", "1"), L("b", "2"))
	cur := NewSnapshot()
	cur.Counter("m", "", 25, L("b", "2"), L("a", "1"))
	if v, _ := cur.Delta(prev).Value("m", L("a", "1"), L("b", "2")); v != 15 {
		t.Errorf("delta across label orders = %v, want 15", v)
	}
}

func TestAppend(t *testing.T) {
	s := buildSnapshot()
	o := NewSnapshot()
	o.Counter("spal_test_extra_total", "", 1)
	s.Append(o)
	if _, ok := s.Value("spal_test_extra_total"); !ok {
		t.Error("Append lost the sample")
	}
	s.Append(nil) // must not panic
}
