package metrics

import (
	"sort"
	"strings"
	"time"
)

// Kind classifies a scalar sample for export.
type Kind uint8

// Sample kinds.
const (
	KindCounter Kind = iota // monotonically increasing event count
	KindGauge               // instantaneous level (occupancy, depth)
)

// Label is one name dimension ("lc"="3", "served_by"="cache").
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Sample is one scalar observation: a named counter or gauge plus its
// label set.
type Sample struct {
	Name   string
	Help   string
	Kind   Kind
	Labels []Label
	Value  float64
}

// HistSample is one histogram observation series.
type HistSample struct {
	Name   string
	Help   string
	Labels []Label
	Hist   HistogramSnapshot
}

// Snapshot is an immutable point-in-time collection of samples — the
// value Router.Metrics() returns and the Prometheus encoder consumes.
// Unlike the live atomic counters it is a plain value: safe to retain,
// diff against a later snapshot (Delta), or serialize.
type Snapshot struct {
	At      time.Time
	Samples []Sample
	Hists   []HistSample
}

// NewSnapshot returns an empty snapshot stamped with the current time.
func NewSnapshot() *Snapshot { return &Snapshot{At: time.Now()} }

// Counter appends a monotonic counter sample.
func (s *Snapshot) Counter(name, help string, v float64, labels ...Label) {
	s.Samples = append(s.Samples, Sample{Name: name, Help: help, Kind: KindCounter, Labels: labels, Value: v})
}

// Gauge appends an instantaneous-level sample.
func (s *Snapshot) Gauge(name, help string, v float64, labels ...Label) {
	s.Samples = append(s.Samples, Sample{Name: name, Help: help, Kind: KindGauge, Labels: labels, Value: v})
}

// Hist appends a histogram series.
func (s *Snapshot) Hist(name, help string, h HistogramSnapshot, labels ...Label) {
	s.Hists = append(s.Hists, HistSample{Name: name, Help: help, Labels: labels, Hist: h})
}

// Append moves every sample of o into s (merging per-LC mini-snapshots
// into the router-wide one).
func (s *Snapshot) Append(o *Snapshot) {
	if o == nil {
		return
	}
	s.Samples = append(s.Samples, o.Samples...)
	s.Hists = append(s.Hists, o.Hists...)
}

// labelKey renders a label set into a canonical (sorted) map key.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

func sampleKey(name string, labels []Label) string {
	return name + "\x00" + labelKey(labels)
}

// Value returns the scalar sample with the given name and exact label
// set, reporting whether it exists.
func (s *Snapshot) Value(name string, labels ...Label) (float64, bool) {
	want := sampleKey(name, labels)
	for i := range s.Samples {
		if sampleKey(s.Samples[i].Name, s.Samples[i].Labels) == want {
			return s.Samples[i].Value, true
		}
	}
	return 0, false
}

// Sum adds every sample with the given name across all label sets — the
// router-wide total of a per-LC counter.
func (s *Snapshot) Sum(name string) float64 {
	var total float64
	for i := range s.Samples {
		if s.Samples[i].Name == name {
			total += s.Samples[i].Value
		}
	}
	return total
}

// HistValue returns the histogram series with the given name and exact
// label set, reporting whether it exists.
func (s *Snapshot) HistValue(name string, labels ...Label) (HistogramSnapshot, bool) {
	want := sampleKey(name, labels)
	for i := range s.Hists {
		if sampleKey(s.Hists[i].Name, s.Hists[i].Labels) == want {
			return s.Hists[i].Hist, true
		}
	}
	return HistogramSnapshot{}, false
}

// Delta returns the per-interval view s - prev: counters and histograms
// are subtracted series-by-series (matched on name + label set; a series
// absent from prev passes through unchanged), gauges keep their current
// value. Counters that went backwards clamp to zero.
func (s *Snapshot) Delta(prev *Snapshot) *Snapshot {
	out := &Snapshot{At: s.At}
	if prev == nil {
		out.Samples = append([]Sample(nil), s.Samples...)
		out.Hists = append([]HistSample(nil), s.Hists...)
		return out
	}
	prevScalar := make(map[string]float64, len(prev.Samples))
	for i := range prev.Samples {
		if prev.Samples[i].Kind == KindCounter {
			prevScalar[sampleKey(prev.Samples[i].Name, prev.Samples[i].Labels)] = prev.Samples[i].Value
		}
	}
	for _, sm := range s.Samples {
		if sm.Kind == KindCounter {
			if p, ok := prevScalar[sampleKey(sm.Name, sm.Labels)]; ok {
				sm.Value -= p
				if sm.Value < 0 {
					sm.Value = 0
				}
			}
		}
		out.Samples = append(out.Samples, sm)
	}
	prevHist := make(map[string]HistogramSnapshot, len(prev.Hists))
	for i := range prev.Hists {
		prevHist[sampleKey(prev.Hists[i].Name, prev.Hists[i].Labels)] = prev.Hists[i].Hist
	}
	for _, hs := range s.Hists {
		if p, ok := prevHist[sampleKey(hs.Name, hs.Labels)]; ok {
			hs.Hist = hs.Hist.Sub(p)
		}
		out.Hists = append(out.Hists, hs)
	}
	return out
}
