// Package metrics is the observability substrate shared by the concurrent
// router, the LR-cache and the cycle simulator: a lock-free latency
// histogram, an immutable Snapshot/Delta model over named samples, and a
// Prometheus-text-format encoder with an opt-in HTTP handler.
//
// Everything the paper's evaluation (Sec. 5) measures — hit ratios, FE
// executions, fabric traffic, per-LC imbalance, lookup latency — flows
// through these types, so every layer reports through one vocabulary and
// one export path.
package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of a live Histogram: bucket i holds
// samples v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i). Bucket 0
// holds exact zeros; 64 one-bit-per-bucket ranges cover all of uint64, so
// there is no overflow bin to lose tail samples in.
const NumBuckets = 65

// Histogram is a lock-free histogram with power-of-two bucket boundaries.
// Observe is safe for any number of concurrent writers (one atomic add per
// field); Snapshot is safe concurrently with writers and returns a
// near-consistent view (each counter is monotonic, so a snapshot taken
// mid-Observe is at most one sample torn — fine for monitoring, exact once
// writers quiesce).
//
// The unit is the caller's choice; the router records nanoseconds, the
// simulator records 5 ns cycles.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
	// ex holds the last exemplar observed per bucket (OpenMetrics-style:
	// a trace id pinned to a concrete sample). Plain Observe never
	// touches it, so histograms without tracing carry no exemplars and
	// their Prometheus rendering is unchanged.
	ex [NumBuckets]bucketExemplar
}

// bucketExemplar is one bucket's latest exemplar; id 0 means none.
type bucketExemplar struct{ id, val atomic.Uint64 }

// Observe records one sample. Negative values clamp to zero (latencies
// cannot be negative; clamping keeps the hot path branch-light).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.sum.Add(uint64(v))
	h.count.Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// ObserveExemplar records one sample and attaches traceID as the
// containing bucket's exemplar (last writer wins — the conventional
// exemplar policy). traceID 0 degrades to a plain Observe.
func (h *Histogram) ObserveExemplar(v int64, traceID uint64) {
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	h.buckets[b].Add(1)
	h.sum.Add(uint64(v))
	h.count.Add(1)
	if traceID != 0 {
		h.ex[b].id.Store(traceID)
		h.ex[b].val.Store(uint64(v))
	}
}

// Exemplar pins a trace id to the concrete sample value it was observed
// with, per histogram bucket. TraceID 0 means the bucket has none.
type Exemplar struct {
	TraceID uint64
	Value   uint64
}

// Snapshot captures the current counts. Trailing empty buckets are
// trimmed so snapshots of mostly-idle histograms stay small.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	top := -1
	var raw [NumBuckets]uint64
	for i := range h.buckets {
		raw[i] = h.buckets[i].Load()
		if raw[i] > 0 {
			top = i
		}
	}
	if top >= 0 {
		s.Buckets = append([]uint64(nil), raw[:top+1]...)
		for i := 0; i <= top; i++ {
			if id := h.ex[i].id.Load(); id != 0 {
				if s.Exemplars == nil {
					s.Exemplars = make([]Exemplar, top+1)
				}
				s.Exemplars[i] = Exemplar{TraceID: id, Value: h.ex[i].val.Load()}
			}
		}
	}
	return s
}

// HistogramSnapshot is an immutable point-in-time view of a Histogram:
// Buckets[i] counts samples v with bits.Len64(v) == i (see NumBuckets).
// Exemplars, when non-nil, runs parallel to Buckets (TraceID 0 = none).
type HistogramSnapshot struct {
	Count     uint64
	Sum       uint64
	Buckets   []uint64
	Exemplars []Exemplar
}

// BucketBound returns the inclusive upper bound of bucket i: 0 for bucket
// 0, else 2^i - 1.
func BucketBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// bucketLow returns the inclusive lower bound of bucket i.
func bucketLow(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return 1 << uint(i-1)
}

// AddValue folds count samples of value v into the snapshot — the bridge
// from exact external histograms (e.g. the simulator's unit-bin latency
// histogram) into the shared power-of-two shape.
func (h *HistogramSnapshot) AddValue(v uint64, count uint64) {
	if count == 0 {
		return
	}
	idx := bits.Len64(v)
	for len(h.Buckets) <= idx {
		h.Buckets = append(h.Buckets, 0)
	}
	h.Buckets[idx] += count
	h.Count += count
	h.Sum += v * count
}

// Mean returns Sum/Count (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an estimate of the p-quantile (p in 0..1), linearly
// interpolated within the containing power-of-two bucket.
func (h HistogramSnapshot) Quantile(p float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := uint64(math.Ceil(p * float64(h.Count)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		if cum+c >= target {
			lo, hi := bucketLow(i), BucketBound(i)
			frac := float64(target-cum) / float64(c)
			return float64(lo) + frac*float64(hi-lo)
		}
		cum += c
	}
	return float64(BucketBound(len(h.Buckets) - 1))
}

// Sub returns the bucket-wise difference h - prev, the per-interval view
// of a monotonically growing histogram. Counters that went backwards
// (e.g. across a process restart) clamp to zero.
func (h HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{
		Count: subSat(h.Count, prev.Count),
		Sum:   subSat(h.Sum, prev.Sum),
	}
	if len(h.Buckets) > 0 {
		out.Buckets = make([]uint64, len(h.Buckets))
		for i, c := range h.Buckets {
			var p uint64
			if i < len(prev.Buckets) {
				p = prev.Buckets[i]
			}
			out.Buckets[i] = subSat(c, p)
		}
	}
	// Exemplars are point samples, not counters: the interval view keeps
	// the current ones.
	out.Exemplars = h.Exemplars
	return out
}

// Merge returns the bucket-wise sum of two snapshots (e.g. folding per-LC
// histograms into a router-wide one).
func (h HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	n := len(h.Buckets)
	if len(o.Buckets) > n {
		n = len(o.Buckets)
	}
	out := HistogramSnapshot{Count: h.Count + o.Count, Sum: h.Sum + o.Sum}
	if n > 0 {
		out.Buckets = make([]uint64, n)
		for i := range out.Buckets {
			if i < len(h.Buckets) {
				out.Buckets[i] += h.Buckets[i]
			}
			if i < len(o.Buckets) {
				out.Buckets[i] += o.Buckets[i]
			}
		}
	}
	if h.Exemplars != nil || o.Exemplars != nil {
		out.Exemplars = make([]Exemplar, n)
		for i := range out.Exemplars {
			if i < len(o.Exemplars) && o.Exemplars[i].TraceID != 0 {
				out.Exemplars[i] = o.Exemplars[i]
			}
			if i < len(h.Exemplars) && h.Exemplars[i].TraceID != 0 {
				out.Exemplars[i] = h.Exemplars[i]
			}
		}
	}
	return out
}

func subSat(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}
