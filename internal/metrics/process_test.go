package metrics

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// procFamilies is the exact family set AppendProcess may emit. The test
// pins it so a new gauge cannot sneak into the opt-in set (or, worse,
// into default snapshots) unnoticed.
var procFamilies = []string{
	MetricProcGoroutines,
	MetricProcHeapBytes,
	MetricProcGCPauseNS,
	MetricProcGCCycles,
	MetricProcTotalAlloc,
	MetricProcLiveObjects,
}

func TestReadProcessSane(t *testing.T) {
	u := ReadProcess()
	if u.Goroutines < 1 {
		t.Errorf("goroutines = %d, want >= 1", u.Goroutines)
	}
	if u.HeapBytes == 0 {
		t.Errorf("heap bytes = 0, want > 0")
	}
	if u.AllocBytes < u.HeapBytes {
		t.Errorf("cumulative allocs %d < live heap %d", u.AllocBytes, u.HeapBytes)
	}
	if u.LiveObjects == 0 {
		t.Errorf("live objects = 0, want > 0")
	}
}

func TestReadProcessCountersMonotone(t *testing.T) {
	before := ReadProcess()
	runtime.GC()
	sink := make([][]byte, 256)
	for i := range sink {
		sink[i] = make([]byte, 4096)
	}
	runtime.GC()
	after := ReadProcess()
	_ = sink
	if after.GCCycles <= before.GCCycles {
		t.Errorf("GC cycles did not advance: %d -> %d", before.GCCycles, after.GCCycles)
	}
	if after.AllocBytes <= before.AllocBytes {
		t.Errorf("allocated bytes did not advance: %d -> %d", before.AllocBytes, after.AllocBytes)
	}
	if after.GCPauseNS < before.GCPauseNS {
		t.Errorf("GC pause total went backwards: %v -> %v", before.GCPauseNS, after.GCPauseNS)
	}
}

func TestAppendProcessFamilies(t *testing.T) {
	s := NewSnapshot()
	AppendProcess(s)
	got := map[string]bool{}
	for _, sm := range s.Samples {
		got[sm.Name] = true
	}
	for _, f := range procFamilies {
		if !got[f] {
			t.Errorf("missing process family %s", f)
		}
		delete(got, f)
	}
	for f := range got {
		t.Errorf("unexpected process family %s", f)
	}
	// The counters must be typed as counters, gauges as gauges.
	for _, sm := range s.Samples {
		wantCounter := strings.HasSuffix(sm.Name, "_total")
		if (sm.Kind == KindCounter) != wantCounter {
			t.Errorf("%s: kind %v inconsistent with _total naming", sm.Name, sm.Kind)
		}
	}
}

// TestProcessOptInKeepsDefaultSnapshotsByteIdentical is the golden-file
// guarantee the opt-in promises: the committed golden.prom rendering of a
// default snapshot contains no process family, and wrapping the same
// source with WithProcess is purely additive — the default rendering is
// a byte-identical prefix-preserving subset of the wrapped one.
func TestProcessOptInKeepsDefaultSnapshotsByteIdentical(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "golden.prom"))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	for _, f := range procFamilies {
		if strings.Contains(string(golden), f) {
			t.Errorf("default golden snapshot leaks process family %s", f)
		}
	}

	src := func() *Snapshot { return goldenSnapshot() }
	plain := serveText(t, Handler(src))
	if plain != string(golden) {
		t.Fatalf("default handler output drifted from golden.prom")
	}

	wrapped := serveText(t, Handler(WithProcess(src)))
	for _, f := range procFamilies {
		if !strings.Contains(wrapped, f) {
			t.Errorf("opted-in output missing process family %s", f)
		}
	}
	// Every golden line must survive verbatim: opting in adds families,
	// it never rewrites the default ones.
	for _, ln := range strings.Split(strings.TrimRight(string(golden), "\n"), "\n") {
		if !strings.Contains(wrapped, ln+"\n") {
			t.Errorf("opted-in output lost default line %q", ln)
		}
	}
}

func TestWithProcessNilSource(t *testing.T) {
	s := WithProcess(nil)()
	if s == nil || len(s.Samples) == 0 {
		t.Fatalf("nil source must still produce process gauges")
	}
}

func TestWithProcessDoesNotMutateShared(t *testing.T) {
	shared := goldenSnapshot()
	n := len(shared.Samples)
	_ = WithProcess(func() *Snapshot { return shared })()
	if len(shared.Samples) != n {
		t.Errorf("WithProcess mutated the shared snapshot: %d -> %d samples", n, len(shared.Samples))
	}
}

func serveText(t *testing.T, h http.Handler) string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return string(body)
}
