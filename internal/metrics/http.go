package metrics

import (
	"net/http"
	"net/http/pprof"
)

// textContentType is the Prometheus text exposition format media type.
const textContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves the Prometheus text rendering of whatever snapshot src
// produces at request time. src must be safe for concurrent use (the
// router's Metrics method is).
func Handler(src func() *Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s := src()
		if s == nil {
			http.Error(w, "no snapshot available", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", textContentType)
		s.WritePrometheus(w)
	})
}

// NewMux returns an http.ServeMux exposing the conventional observability
// endpoints: GET /metrics (Prometheus text from src) and GET /healthz
// (200 "ok" while healthy returns true; 503 otherwise; nil means always
// healthy).
func NewMux(src func() *Snapshot, healthy func() bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(src))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if healthy != nil && !healthy() {
			http.Error(w, "unhealthy", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	return mux
}

// RegisterPprof wires the standard net/http/pprof handlers under
// /debug/pprof/ on mux. NewMux builds a private ServeMux, so the
// package's DefaultServeMux side registration never applies; this makes
// the profiles reachable from the same observability listener.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
