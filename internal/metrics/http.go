package metrics

import (
	"net/http"
)

// textContentType is the Prometheus text exposition format media type.
const textContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves the Prometheus text rendering of whatever snapshot src
// produces at request time. src must be safe for concurrent use (the
// router's Metrics method is).
func Handler(src func() *Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s := src()
		if s == nil {
			http.Error(w, "no snapshot available", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", textContentType)
		s.WritePrometheus(w)
	})
}

// NewMux returns an http.ServeMux exposing the conventional observability
// endpoints: GET /metrics (Prometheus text from src) and GET /healthz
// (200 "ok" while healthy returns true; 503 otherwise; nil means always
// healthy).
func NewMux(src func() *Snapshot, healthy func() bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(src))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if healthy != nil && !healthy() {
			http.Error(w, "unhealthy", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	return mux
}
