package metrics

import (
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// goldenSnapshot is a fixed snapshot covering every encoder feature:
// multiple label sets per family, gauges, label escaping, and a
// histogram with elided empty buckets.
func goldenSnapshot() *Snapshot {
	s := NewSnapshot()
	s.Counter("spal_lookups_total", "Lookups submitted per line card.", 1234, L("lc", "0"))
	s.Counter("spal_lookups_total", "Lookups submitted per line card.", 987, L("lc", "1"))
	s.Gauge("spal_waitlist_depth", "Parked addresses.", 2, L("lc", "0"))
	s.Gauge("spal_router_waiters", "Individual lookups parked in waitlists.", 3, L("lc", "0"))
	s.Gauge("spal_router_waiters", "Individual lookups parked in waitlists.", 0, L("lc", "1"))
	s.Gauge("spal_router_lc_state", "Line-card lifecycle state: 0=healthy 1=suspect 2=down 3=draining 4=quarantined.", 0, L("lc", "0"))
	s.Gauge("spal_router_lc_state", "Line-card lifecycle state: 0=healthy 1=suspect 2=down 3=draining 4=quarantined.", 3, L("lc", "1"))
	s.Gauge("spal_router_lc_state", "Line-card lifecycle state: 0=healthy 1=suspect 2=down 3=draining 4=quarantined.", 4, L("lc", "2"))
	s.Gauge("spal_hit_ratio", "Hits over probes.", 0.9375)
	s.Counter("spal_weird_total", "Escapes: backslash \\ and newline\nhandled.", 1, L("path", `C:\tmp`+"\n"))
	var h HistogramSnapshot
	h.AddValue(0, 5)    // bucket 0, le="0"
	h.AddValue(3, 2)    // bucket 2, le="3"
	h.AddValue(900, 7)  // bucket 10, le="1023"
	h.AddValue(1024, 1) // bucket 11, le="2047"
	s.Hist("spal_lookup_latency_ns", "Lookup latency.", h, L("lc", "0"), L("served_by", "cache"))
	return s
}

func TestWritePrometheusGolden(t *testing.T) {
	got := goldenSnapshot().PrometheusText()
	goldenPath := filepath.Join("testdata", "golden.prom")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate from goldenSnapshot().PrometheusText())", err)
	}
	if got != string(want) {
		t.Errorf("Prometheus text drifted from %s.\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

func TestPrometheusValidity(t *testing.T) {
	text := goldenSnapshot().PrometheusText()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	types := map[string]string{}
	var lastFamily string
	for _, ln := range lines {
		switch {
		case strings.HasPrefix(ln, "# TYPE "):
			parts := strings.Fields(ln)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", ln)
			}
			if _, dup := types[parts[2]]; dup {
				t.Errorf("family %s declared twice", parts[2])
			}
			types[parts[2]] = parts[3]
			lastFamily = parts[2]
		case strings.HasPrefix(ln, "# HELP "):
			if strings.Contains(ln, "\n") {
				t.Errorf("unescaped newline in %q", ln)
			}
		default:
			name := ln
			if i := strings.IndexAny(ln, "{ "); i >= 0 {
				name = ln[:i]
			}
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
			if base != lastFamily && name != lastFamily {
				t.Errorf("sample %q outside its family block (last TYPE %s)", ln, lastFamily)
			}
		}
	}
	// Histogram buckets must be cumulative and end with +Inf == count.
	var prev float64 = -1
	infSeen := false
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "spal_lookup_latency_ns_bucket") {
			continue
		}
		v, err := strconv.ParseFloat(ln[strings.LastIndexByte(ln, ' ')+1:], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", ln, err)
		}
		if v < prev {
			t.Errorf("bucket counts not cumulative at %q", ln)
		}
		prev = v
		if strings.Contains(ln, `le="+Inf"`) {
			infSeen = true
			if v != 15 {
				t.Errorf("+Inf bucket = %v, want 15", v)
			}
		}
	}
	if !infSeen {
		t.Error("histogram missing +Inf bucket")
	}
}

func TestMetricsHandler(t *testing.T) {
	mux := NewMux(func() *Snapshot { return goldenSnapshot() }, nil)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(string(body), "spal_lookups_total{lc=\"0\"} 1234") {
		t.Errorf("body missing counter:\n%s", body)
	}

	hz, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hzBody, _ := io.ReadAll(hz.Body)
	hz.Body.Close()
	if hz.StatusCode != 200 || string(hzBody) != "ok\n" {
		t.Errorf("healthz = %d %q", hz.StatusCode, hzBody)
	}

	down := httptest.NewServer(NewMux(func() *Snapshot { return nil }, func() bool { return false }))
	defer down.Close()
	if resp, _ := down.Client().Get(down.URL + "/metrics"); resp.StatusCode != 503 {
		t.Errorf("nil snapshot status = %d, want 503", resp.StatusCode)
	}
	if resp, _ := down.Client().Get(down.URL + "/healthz"); resp.StatusCode != 503 {
		t.Errorf("unhealthy status = %d, want 503", resp.StatusCode)
	}
}
