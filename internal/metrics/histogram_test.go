package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	var h Histogram
	// Exercise every boundary around the powers of two: value v must land
	// in bucket bits.Len64(v), whose inclusive range is [2^(i-1), 2^i).
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1025, 11}, {1 << 40, 41},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	s := h.Snapshot()
	counts := make(map[int]uint64)
	for _, c := range cases {
		counts[c.bucket]++
	}
	for i, got := range s.Buckets {
		if got != counts[i] {
			t.Errorf("bucket %d = %d, want %d", i, got, counts[i])
		}
	}
	if s.Count != uint64(len(cases)) {
		t.Errorf("count = %d, want %d", s.Count, len(cases))
	}
	var wantSum uint64
	for _, c := range cases {
		wantSum += uint64(c.v)
	}
	if s.Sum != wantSum {
		t.Errorf("sum = %d, want %d", s.Sum, wantSum)
	}
	// Negative samples clamp to the zero bucket rather than corrupting
	// state.
	h.Observe(-5)
	if got := h.Snapshot().Buckets[0]; got != counts[0]+1 {
		t.Errorf("negative sample: bucket 0 = %d, want %d", got, counts[0]+1)
	}
}

func TestBucketBound(t *testing.T) {
	for _, c := range []struct {
		i    int
		want uint64
	}{{0, 0}, {1, 1}, {2, 3}, {3, 7}, {10, 1023}, {64, math.MaxUint64}} {
		if got := BucketBound(c.i); got != c.want {
			t.Errorf("BucketBound(%d) = %d, want %d", c.i, got, c.want)
		}
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// run under -race this proves Observe and Snapshot are data-race free,
// and the final counts must be exact since counters are atomic.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(int64(i % 4096))
				if i%1000 == 0 {
					_ = h.Snapshot() // concurrent reader
				}
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", s.Count, workers*perWorker)
	}
	var total uint64
	for _, c := range s.Buckets {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket total = %d, count = %d", total, s.Count)
	}
}

func TestHistogramSubAndMerge(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 100, 100, 5000} {
		h.Observe(v)
	}
	before := h.Snapshot()
	for _, v := range []int64{7, 100, 1 << 20} {
		h.Observe(v)
	}
	after := h.Snapshot()

	d := after.Sub(before)
	if d.Count != 3 {
		t.Errorf("delta count = %d, want 3", d.Count)
	}
	if d.Sum != 7+100+1<<20 {
		t.Errorf("delta sum = %d", d.Sum)
	}
	var want HistogramSnapshot
	for _, v := range []uint64{7, 100, 1 << 20} {
		want.AddValue(v, 1)
	}
	for i := range d.Buckets {
		var w uint64
		if i < len(want.Buckets) {
			w = want.Buckets[i]
		}
		if d.Buckets[i] != w {
			t.Errorf("delta bucket %d = %d, want %d", i, d.Buckets[i], w)
		}
	}

	// before + delta must reproduce after, bucket for bucket.
	m := before.Merge(d)
	if m.Count != after.Count || m.Sum != after.Sum {
		t.Fatalf("merge = {%d %d}, want {%d %d}", m.Count, m.Sum, after.Count, after.Sum)
	}
	for i := range after.Buckets {
		if m.Buckets[i] != after.Buckets[i] {
			t.Errorf("merge bucket %d = %d, want %d", i, m.Buckets[i], after.Buckets[i])
		}
	}

	// Sub against a larger snapshot saturates instead of wrapping.
	z := before.Sub(after)
	if z.Count != 0 || z.Sum != 0 {
		t.Errorf("saturating sub = {%d %d}, want zeros", z.Count, z.Sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if q := h.Snapshot().Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
	// 100 samples of value 10 (bucket [8,15]): every quantile must stay
	// inside the bucket.
	for i := 0; i < 100; i++ {
		h.Observe(10)
	}
	s := h.Snapshot()
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		q := s.Quantile(p)
		if q < 8 || q > 15 {
			t.Errorf("Quantile(%v) = %v, outside [8,15]", p, q)
		}
	}
	// Mixed distribution: the median of 90 small + 10 huge samples must be
	// small, p99 huge.
	var m Histogram
	for i := 0; i < 90; i++ {
		m.Observe(4)
	}
	for i := 0; i < 10; i++ {
		m.Observe(1 << 30)
	}
	ms := m.Snapshot()
	if q := ms.Quantile(0.5); q > 7 {
		t.Errorf("median = %v, want <= 7 (inside the bucket of value 4)", q)
	}
	if q := ms.Quantile(0.99); q < 1<<29 {
		t.Errorf("p99 = %v, want >= 2^29", q)
	}
	if got := ms.Mean(); math.Abs(got-(90*4+10*float64(1<<30))/100) > 1 {
		t.Errorf("mean = %v", got)
	}
}

func TestAddValueGrowsBuckets(t *testing.T) {
	var h HistogramSnapshot
	h.AddValue(0, 2)
	h.AddValue(1<<33, 1)
	if h.Count != 3 || h.Buckets[0] != 2 || h.Buckets[34] != 1 {
		t.Fatalf("AddValue gave %+v", h)
	}
	h.AddValue(5, 0) // zero count is a no-op
	if h.Count != 3 {
		t.Fatal("zero-count AddValue changed the snapshot")
	}
}
