package metrics

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus encodes the snapshot in the Prometheus text exposition
// format (version 0.0.4): one # HELP / # TYPE header per metric family,
// then one line per labeled series. Histograms emit cumulative
// `_bucket{le="..."}` series (power-of-two bounds, empty buckets elided),
// plus `_sum` and `_count`. Families appear in first-use order, so output
// built by deterministic code is byte-stable — golden-file friendly.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	seen := make(map[string]bool)
	for i := range s.Samples {
		name := s.Samples[i].Name
		if seen[name] {
			continue
		}
		seen[name] = true
		writeHeader(bw, name, s.Samples[i].Help, typeName(s.Samples[i].Kind))
		for j := range s.Samples {
			sm := &s.Samples[j]
			if sm.Name != name {
				continue
			}
			bw.WriteString(name)
			writeLabels(bw, sm.Labels, "")
			bw.WriteByte(' ')
			bw.WriteString(formatValue(sm.Value))
			bw.WriteByte('\n')
		}
	}
	for i := range s.Hists {
		name := s.Hists[i].Name
		if seen[name] {
			continue
		}
		seen[name] = true
		writeHeader(bw, name, s.Hists[i].Help, "histogram")
		for j := range s.Hists {
			hs := &s.Hists[j]
			if hs.Name != name {
				continue
			}
			var cum uint64
			for b, c := range hs.Hist.Buckets {
				if c == 0 {
					continue
				}
				cum += c
				bw.WriteString(name)
				bw.WriteString("_bucket")
				writeLabels(bw, hs.Labels, strconv.FormatUint(BucketBound(b), 10))
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatUint(cum, 10))
				// OpenMetrics-style exemplar: a trace id pinned to one
				// concrete sample in this bucket. Emitted only when
				// tracing attached one, so snapshots without exemplars
				// render byte-identically to the classic 0.0.4 format.
				if b < len(hs.Hist.Exemplars) && hs.Hist.Exemplars[b].TraceID != 0 {
					ex := hs.Hist.Exemplars[b]
					bw.WriteString(` # {trace_id="`)
					bw.WriteString(strconv.FormatUint(ex.TraceID, 16))
					bw.WriteString(`"} `)
					bw.WriteString(strconv.FormatUint(ex.Value, 10))
				}
				bw.WriteByte('\n')
			}
			bw.WriteString(name)
			bw.WriteString("_bucket")
			writeLabels(bw, hs.Labels, "+Inf")
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatUint(hs.Hist.Count, 10))
			bw.WriteByte('\n')
			bw.WriteString(name)
			bw.WriteString("_sum")
			writeLabels(bw, hs.Labels, "")
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatUint(hs.Hist.Sum, 10))
			bw.WriteByte('\n')
			bw.WriteString(name)
			bw.WriteString("_count")
			writeLabels(bw, hs.Labels, "")
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatUint(hs.Hist.Count, 10))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// PrometheusText renders the snapshot to a string.
func (s *Snapshot) PrometheusText() string {
	var b strings.Builder
	s.WritePrometheus(&b)
	return b.String()
}

func typeName(k Kind) string {
	if k == KindGauge {
		return "gauge"
	}
	return "counter"
}

func writeHeader(bw *bufio.Writer, name, help, typ string) {
	if help != "" {
		bw.WriteString("# HELP ")
		bw.WriteString(name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(help))
		bw.WriteByte('\n')
	}
	bw.WriteString("# TYPE ")
	bw.WriteString(name)
	bw.WriteByte(' ')
	bw.WriteString(typ)
	bw.WriteByte('\n')
}

// writeLabels renders {k="v",...}; le, when non-empty, is appended as the
// histogram bucket bound label.
func writeLabels(bw *bufio.Writer, labels []Label, le string) {
	if len(labels) == 0 && le == "" {
		return
	}
	bw.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(l.Key)
		bw.WriteString(`="`)
		bw.WriteString(escapeLabel(l.Value))
		bw.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(`le="`)
		bw.WriteString(le)
		bw.WriteByte('"')
	}
	bw.WriteByte('}')
}

func formatValue(v float64) string {
	// Whole numbers (the common case: counters) print without an exponent
	// or trailing fraction.
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
