package partition

import (
	"fmt"

	"spal/internal/ip"
)

// Route6 pairs an IPv6 prefix with its next hop, for the IPv6 partitioning
// demonstration (the paper: "SPAL is feasibly applicable to IPv6").
type Route6 struct {
	Prefix  ip.Prefix6
	NextHop uint16
}

// Partitioning6 fragments an IPv6 prefix set the same way Partitioning
// fragments an IPv4 table: η control bits out of positions 0..127.
type Partitioning6 struct {
	Bits   []int
	NumLCs int

	tables      [][]Route6
	patternToLC []int
}

// Partition6 selects control bits for numLCs line cards over IPv6 routes
// and builds the per-LC partitions.
func Partition6(routes []Route6, numLCs int) *Partitioning6 {
	if numLCs < 1 {
		panic("partition: numLCs must be >= 1")
	}
	eta := ceilLog2(numLCs)
	bits := SelectBits6(routes, eta)
	p := &Partitioning6{Bits: bits, NumLCs: numLCs}
	numPatterns := 1 << eta
	if numPatterns < numLCs {
		panic(fmt.Sprintf("partition: %d bits cannot address %d LCs", eta, numLCs))
	}
	p.patternToLC = make([]int, numPatterns)
	for pat := range p.patternToLC {
		p.patternToLC[pat] = pat % numLCs
	}
	p.tables = make([][]Route6, numLCs)
	for _, r := range routes {
		for _, pat := range compatiblePatterns6(r.Prefix, bits) {
			lc := p.patternToLC[pat]
			p.tables[lc] = append(p.tables[lc], r)
		}
	}
	return p
}

func compatiblePatterns6(pr ip.Prefix6, bits []int) []int {
	pats := []int{0}
	for i, pos := range bits {
		shift := len(bits) - 1 - i
		b, known := pr.Bit(pos)
		if known {
			for j := range pats {
				pats[j] |= int(b) << shift
			}
		} else {
			out := make([]int, 0, 2*len(pats))
			for _, p := range pats {
				out = append(out, p, p|1<<shift)
			}
			pats = out
		}
	}
	return pats
}

// SelectBits6 is SelectBits over 128-bit prefixes.
func SelectBits6(routes []Route6, eta int) []int {
	prefixes := make([]ip.Prefix6, len(routes))
	for i, r := range routes {
		prefixes[i] = r.Prefix
	}
	groups := [][]ip.Prefix6{prefixes}
	var chosen []int
	used := make(map[int]bool)
	for k := 0; k < eta; k++ {
		bestBit, bestTotal, bestSpread := -1, 0, 0
		for pos := 0; pos < 128; pos++ {
			if used[pos] {
				continue
			}
			total, spread := scoreBit6(groups, pos)
			if bestBit < 0 || total < bestTotal ||
				(total == bestTotal && spread < bestSpread) {
				bestBit, bestTotal, bestSpread = pos, total, spread
			}
		}
		chosen = append(chosen, bestBit)
		used[bestBit] = true
		groups = splitGroups6(groups, bestBit)
	}
	return chosen
}

func scoreBit6(groups [][]ip.Prefix6, pos int) (total, spread int) {
	minSz, maxSz := -1, 0
	for _, g := range groups {
		var n0, n1, nStar int
		for _, pr := range g {
			b, known := pr.Bit(pos)
			switch {
			case !known:
				nStar++
			case b == 0:
				n0++
			default:
				n1++
			}
		}
		s0, s1 := n0+nStar, n1+nStar
		total += s0 + s1
		for _, sz := range [2]int{s0, s1} {
			if minSz < 0 || sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
		}
	}
	return total, maxSz - minSz
}

func splitGroups6(groups [][]ip.Prefix6, pos int) [][]ip.Prefix6 {
	out := make([][]ip.Prefix6, 0, 2*len(groups))
	for _, g := range groups {
		var g0, g1 []ip.Prefix6
		for _, pr := range g {
			b, known := pr.Bit(pos)
			switch {
			case !known:
				g0 = append(g0, pr)
				g1 = append(g1, pr)
			case b == 0:
				g0 = append(g0, pr)
			default:
				g1 = append(g1, pr)
			}
		}
		out = append(out, g0, g1)
	}
	return out
}

// PatternOf6 extracts the control-bit pattern of an IPv6 address.
func (p *Partitioning6) PatternOf6(a ip.Addr6) int {
	pat := 0
	for i, pos := range p.Bits {
		pat |= int(ip.Addr6Bit(a, pos)) << (len(p.Bits) - 1 - i)
	}
	return pat
}

// HomeLC returns the home line card of an IPv6 address.
func (p *Partitioning6) HomeLC(a ip.Addr6) int {
	return p.patternToLC[p.PatternOf6(a)]
}

// Routes returns LC lc's partition.
func (p *Partitioning6) Routes(lc int) []Route6 { return p.tables[lc] }

// LookupLinear performs LPM by linear scan over LC lc's partition, the
// demonstration lookup path for IPv6.
func (p *Partitioning6) LookupLinear(lc int, a ip.Addr6) (uint16, bool) {
	bestLen := -1
	var nh uint16
	for _, r := range p.tables[lc] {
		if r.Prefix.Matches(a) && int(r.Prefix.Len) > bestLen {
			bestLen = int(r.Prefix.Len)
			nh = r.NextHop
		}
	}
	return nh, bestLen >= 0
}
