package partition

import (
	"testing"

	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/rtable"
	"spal/internal/stats"
)

// TestSubsetHomeInvariant is the re-homing correctness property: for any
// table, any chassis size, and any non-empty alive subset, every address
// is homed on an alive LC and longest-prefix matching over that LC's
// partition equals matching over the whole table.
func TestSubsetHomeInvariant(t *testing.T) {
	rng := stats.NewRNG(41)
	for _, numLCs := range []int{2, 3, 5, 8, 16} {
		tbl := rtable.Small(1200, 7+uint64(numLCs))
		oracle := lpm.NewReference(tbl)
		// Every subset for small chassis, random subsets for larger ones.
		subsets := [][]int{}
		for mask := 1; mask < 1<<numLCs; mask++ {
			var alive []int
			for lc := 0; lc < numLCs; lc++ {
				if mask&(1<<lc) != 0 {
					alive = append(alive, lc)
				}
			}
			subsets = append(subsets, alive)
		}
		if len(subsets) > 40 {
			picked := subsets[:0]
			for i := 0; i < 40; i++ {
				picked = append(picked, subsets[rng.Intn(len(subsets))])
			}
			subsets = picked
		}
		for _, alive := range subsets {
			p := Subset(tbl, numLCs, alive)
			aliveSet := map[int]bool{}
			for _, lc := range alive {
				aliveSet[lc] = true
			}
			for i := 0; i < 200; i++ {
				var a ip.Addr
				if i%2 == 0 {
					a = tbl.RandomMatchedAddr(rng)
				} else {
					a = rng.Uint32()
				}
				home := p.HomeLC(a)
				if !aliveSet[home] {
					t.Fatalf("psi=%d alive=%v: HomeLC(%s) = %d is not alive",
						numLCs, alive, ip.FormatAddr(a), home)
				}
				wNH, _, wOK := oracle.Lookup(a)
				gNH, gOK := p.Table(home).LookupLinear(a)
				if wOK != gOK || (wOK && wNH != gNH) {
					t.Fatalf("psi=%d alive=%v addr=%s: home (%d,%v) != full (%d,%v)",
						numLCs, alive, ip.FormatAddr(a), gNH, gOK, wNH, wOK)
				}
			}
		}
	}
}

// TestSubsetDeadSlotsEmpty: slots outside the alive set own nothing.
func TestSubsetDeadSlotsEmpty(t *testing.T) {
	tbl := rtable.Small(500, 3)
	p := Subset(tbl, 4, []int{0, 2})
	if n := p.Table(1).Len(); n != 0 {
		t.Errorf("dead slot 1 holds %d prefixes, want 0", n)
	}
	if n := p.Table(3).Len(); n != 0 {
		t.Errorf("dead slot 3 holds %d prefixes, want 0", n)
	}
	if p.Table(0).Len() == 0 || p.Table(2).Len() == 0 {
		t.Error("alive slots must hold the table")
	}
}

// TestSubsetFullSetMatchesPartition: the degenerate subset (everyone
// alive) is byte-for-byte the standard partitioning.
func TestSubsetFullSetMatchesPartition(t *testing.T) {
	tbl := rtable.Small(800, 9)
	std := Partition(tbl, 4)
	sub := Subset(tbl, 4, []int{0, 1, 2, 3})
	if len(std.Bits) != len(sub.Bits) {
		t.Fatalf("bit counts differ: %v vs %v", std.Bits, sub.Bits)
	}
	for i := range std.Bits {
		if std.Bits[i] != sub.Bits[i] {
			t.Fatalf("bits differ: %v vs %v", std.Bits, sub.Bits)
		}
	}
	for lc := 0; lc < 4; lc++ {
		if std.Table(lc).Len() != sub.Table(lc).Len() {
			t.Errorf("LC %d sizes differ: %d vs %d", lc, std.Table(lc).Len(), sub.Table(lc).Len())
		}
	}
	rng := stats.NewRNG(11)
	for i := 0; i < 500; i++ {
		a := rng.Uint32()
		if std.HomeLC(a) != sub.HomeLC(a) {
			t.Fatalf("HomeLC(%s) differs: %d vs %d", ip.FormatAddr(a), std.HomeLC(a), sub.HomeLC(a))
		}
	}
}

// TestSubsetValidation: malformed alive sets must panic loudly rather
// than silently misroute.
func TestSubsetValidation(t *testing.T) {
	tbl := rtable.Small(100, 5)
	for name, fn := range map[string]func(){
		"empty":      func() { Subset(tbl, 4, nil) },
		"outOfRange": func() { Subset(tbl, 4, []int{0, 4}) },
		"duplicate":  func() { Subset(tbl, 4, []int{1, 1}) },
		"unsorted":   func() { Subset(tbl, 4, []int{2, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s alive set did not panic", name)
				}
			}()
			fn()
		}()
	}
}
