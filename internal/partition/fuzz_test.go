package partition

import (
	"encoding/binary"
	"testing"

	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/rtable"
)

// FuzzHomeInvariant fuzzes the core SPAL guarantee: for any table, any ψ
// and any address, longest-prefix matching over the home partition equals
// matching over the whole table.
func FuzzHomeInvariant(f *testing.F) {
	f.Add([]byte{}, uint8(4))
	f.Add([]byte{10, 0, 0, 0, 8, 10, 1, 0, 0, 16, 1, 2, 3, 4}, uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, psiSeed uint8) {
		psi := 1 + int(psiSeed)%16
		var routes []rtable.Route
		i := 0
		for ; i+5 <= len(data) && len(routes) < 48; i += 5 {
			v := binary.BigEndian.Uint32(data[i:])
			routes = append(routes, rtable.Route{
				Prefix:  ip.Prefix{Value: v, Len: uint8(data[i+4]) % 33}.Canon(),
				NextHop: rtable.NextHop(i),
			})
		}
		var addrs []ip.Addr
		for ; i+4 <= len(data) && len(addrs) < 48; i += 4 {
			addrs = append(addrs, binary.BigEndian.Uint32(data[i:]))
		}
		tbl := rtable.New(routes)
		p := Partition(tbl, psi)
		oracle := lpm.NewReference(tbl)
		for _, r := range tbl.Routes() {
			addrs = append(addrs, r.Prefix.FirstAddr(), r.Prefix.LastAddr())
		}
		for _, a := range addrs {
			home := p.HomeLC(a)
			if home < 0 || home >= psi {
				t.Fatalf("HomeLC(%s) = %d out of range", ip.FormatAddr(a), home)
			}
			wNH, _, wOK := oracle.Lookup(a)
			gNH, gOK := p.Table(home).LookupLinear(a)
			if wOK != gOK || (wOK && wNH != gNH) {
				t.Fatalf("psi=%d addr=%s: home (%d,%v) != full (%d,%v)",
					psi, ip.FormatAddr(a), gNH, gOK, wNH, wOK)
			}
		}
	})
}
