// Package partition implements SPAL's routing-table fragmentation (Sec. 3.1
// of the paper): selecting η = ceil(log2 ψ) control-bit positions from the
// prefixes of a routing table and splitting the table into ψ ROT-partitions,
// one forwarding table per line card.
//
// Bit selection follows the paper's two criteria, applied greedily and
// recursively:
//
//	(1) minimize replication: a prefix whose candidate bit is "*" (beyond
//	    its length) must appear in both subsets, so the best bit minimizes
//	    Φ*, the count of don't-care prefixes;
//	(2) minimize imbalance: among prefixes with a concrete candidate bit,
//	    |Φ0 − Φ1| should be smallest.
//
// When choosing the k-th control bit the criteria are evaluated jointly
// over all 2^(k-1) pattern groups produced by the bits chosen so far
// (primary score: total prefix count after the split, which is exactly
// Σ groups (Φ + Φ*); tie-break: resulting max−min group size; final
// tie-break: lowest bit position).
//
// ψ does not have to be a power of two: the 2^η bit patterns are folded
// onto LCs by pattern mod ψ, so some LCs serve two patterns.
//
// The home-LC invariant — longest-prefix matching over an address's home
// partition always equals matching over the whole table — holds by
// construction: every prefix matching address a is compatible with a's
// control-bit pattern (each control bit of the prefix is either "*" or
// equal to a's bit), so it is placed in a's pattern group.
package partition

import (
	"fmt"

	"spal/internal/ip"
	"spal/internal/rtable"
)

// Partitioning is the result of fragmenting a routing table for ψ LCs.
type Partitioning struct {
	// Bits holds the chosen control-bit positions in selection order; the
	// first selected bit is the most significant bit of the pattern.
	Bits []int
	// NumLCs is ψ.
	NumLCs int

	tables      []*rtable.Table // one forwarding table per LC
	patternToLC []int           // 2^η -> LC index
	full        *rtable.Table
}

// ceilLog2 returns the smallest η with 2^η >= n (η = 0 for n <= 1).
func ceilLog2(n int) int {
	e := 0
	for 1<<e < n {
		e++
	}
	return e
}

// Partition fragments t for numLCs line cards, selecting control bits per
// the paper's criteria. numLCs may be any integer >= 1; numLCs == 1
// degenerates to the unpartitioned table.
func Partition(t *rtable.Table, numLCs int) *Partitioning {
	if numLCs < 1 {
		panic("partition: numLCs must be >= 1")
	}
	eta := ceilLog2(numLCs)
	bits := SelectBits(t, eta)
	return WithBits(t, numLCs, bits)
}

// Subset fragments t for a chassis of numLCs slots of which only the
// alive ones currently own ROT-partitions: η = ceil(log2 len(alive))
// control bits are selected per the paper's criteria and the 2^η
// patterns are folded onto the alive slots in order (pattern i →
// alive[i mod len(alive)]). Slots not in alive receive an empty
// forwarding table and are never returned by HomeLC, so the home-LC
// invariant holds over the survivors alone — this is what lets the
// router re-home partitions away from a dead or draining line card
// without touching the routing table itself. alive must be non-empty,
// strictly increasing, and within [0, numLCs). Subset(t, ψ, [0..ψ)) is
// exactly Partition(t, ψ).
func Subset(t *rtable.Table, numLCs int, alive []int) *Partitioning {
	eta := ceilLog2(len(alive))
	bits := SelectBits(t, eta)
	return SubsetWithBits(t, numLCs, alive, bits)
}

// WithBits fragments t using explicitly chosen control bits (η =
// len(bits)); 2^η patterns are folded onto numLCs by pattern mod numLCs.
// It panics when 2^len(bits) < numLCs, which would leave some LC without
// a pattern.
func WithBits(t *rtable.Table, numLCs int, bits []int) *Partitioning {
	alive := make([]int, numLCs)
	for i := range alive {
		alive[i] = i
	}
	return SubsetWithBits(t, numLCs, alive, bits)
}

// SubsetWithBits is Subset with explicitly chosen control bits. It
// panics when 2^len(bits) < len(alive), which would leave some alive LC
// without a pattern, and on a malformed alive set.
func SubsetWithBits(t *rtable.Table, numLCs int, alive []int, bits []int) *Partitioning {
	if numLCs < 1 {
		panic("partition: numLCs must be >= 1")
	}
	if len(alive) == 0 {
		panic("partition: alive set must be non-empty")
	}
	for i, lc := range alive {
		if lc < 0 || lc >= numLCs {
			panic(fmt.Sprintf("partition: alive LC %d outside [0, %d)", lc, numLCs))
		}
		if i > 0 && alive[i-1] >= lc {
			panic("partition: alive set must be strictly increasing")
		}
	}
	if 1<<len(bits) < len(alive) {
		panic(fmt.Sprintf("partition: %d bits cannot address %d LCs", len(bits), len(alive)))
	}
	p := &Partitioning{
		Bits:   append([]int(nil), bits...),
		NumLCs: numLCs,
		full:   t,
	}
	numPatterns := 1 << len(bits)
	p.patternToLC = make([]int, numPatterns)
	perLC := make([][]rtable.Route, numLCs)
	for pat := 0; pat < numPatterns; pat++ {
		p.patternToLC[pat] = alive[pat%len(alive)]
	}
	for _, r := range t.Routes() {
		for _, pat := range compatiblePatterns(r.Prefix, bits) {
			lc := p.patternToLC[pat]
			perLC[lc] = append(perLC[lc], r)
		}
	}
	p.tables = make([]*rtable.Table, numLCs)
	for lc := range p.tables {
		p.tables[lc] = rtable.New(perLC[lc])
	}
	return p
}

// ApplyUpdates returns a new Partitioning with the update batch applied
// under the SAME control bits and pattern→LC folding — the incremental
// path for route churn, where re-selecting bits (and re-homing every
// address) would be a full two-phase swap. The home-LC invariant is
// preserved by construction: an updated prefix lands in exactly the
// pattern groups compatiblePatterns assigns it, the same rule the full
// rebuild uses. The second result is the per-LC sub-batch: update i
// appears in subBatches[lc] iff lc's forwarding table changes under it,
// which is what the router streams into each LC's dynamic trie. LCs with
// an empty sub-batch share the previous table snapshot.
func (p *Partitioning) ApplyUpdates(batch []rtable.Update) (*Partitioning, [][]rtable.Update) {
	perLC := make([][]rtable.Update, p.NumLCs)
	seen := make([]bool, p.NumLCs)
	for _, u := range batch {
		for i := range seen {
			seen[i] = false
		}
		for _, pat := range compatiblePatterns(u.Route.Prefix.Canon(), p.Bits) {
			lc := p.patternToLC[pat]
			if !seen[lc] {
				seen[lc] = true
				perLC[lc] = append(perLC[lc], u)
			}
		}
	}
	np := &Partitioning{
		Bits:        p.Bits,
		NumLCs:      p.NumLCs,
		patternToLC: p.patternToLC,
		full:        p.full.ApplyAll(batch),
		tables:      make([]*rtable.Table, p.NumLCs),
	}
	for lc := range np.tables {
		if len(perLC[lc]) == 0 {
			np.tables[lc] = p.tables[lc]
		} else {
			np.tables[lc] = p.tables[lc].ApplyAll(perLC[lc])
		}
	}
	return np, perLC
}

// compatiblePatterns returns every control-bit pattern the prefix must be
// stored under: a concrete bit pins its pattern position, a "*" bit fans
// out to both values.
func compatiblePatterns(pr ip.Prefix, bits []int) []int {
	pats := []int{0}
	for i, pos := range bits {
		shift := len(bits) - 1 - i
		b, known := pr.Bit(pos)
		if known {
			for j := range pats {
				pats[j] |= int(b) << shift
			}
		} else {
			out := make([]int, 0, 2*len(pats))
			for _, p := range pats {
				out = append(out, p, p|1<<shift)
			}
			pats = out
		}
	}
	return pats
}

// PatternOf extracts the control-bit pattern of an address.
func (p *Partitioning) PatternOf(a ip.Addr) int {
	pat := 0
	for i, pos := range p.Bits {
		pat |= int(ip.AddrBit(a, pos)) << (len(p.Bits) - 1 - i)
	}
	return pat
}

// HomeLC returns the home line card of an address: the LC whose forwarding
// table is guaranteed to contain every prefix matching it.
func (p *Partitioning) HomeLC(a ip.Addr) int {
	return p.patternToLC[p.PatternOf(a)]
}

// Table returns LC lc's forwarding table (its ROT-partition union).
func (p *Partitioning) Table(lc int) *rtable.Table { return p.tables[lc] }

// Full returns the unpartitioned routing table.
func (p *Partitioning) Full() *rtable.Table { return p.full }

// Stats summarizes partition quality.
type Stats struct {
	Sizes       []int   // prefixes per LC
	Min, Max    int     // smallest / largest partition
	Replication float64 // Σ sizes / original size (1.0 = no copies)
}

// Stats computes partition-quality measures.
func (p *Partitioning) Stats() Stats {
	s := Stats{Sizes: make([]int, p.NumLCs)}
	total := 0
	for i, t := range p.tables {
		n := t.Len()
		s.Sizes[i] = n
		total += n
		if i == 0 || n < s.Min {
			s.Min = n
		}
		if n > s.Max {
			s.Max = n
		}
	}
	if p.full.Len() > 0 {
		s.Replication = float64(total) / float64(p.full.Len())
	}
	return s
}

// SelectBits picks eta control bits per the paper's criteria.
func SelectBits(t *rtable.Table, eta int) []int {
	// groups: prefix sets per pattern of the bits chosen so far. Prefixes
	// with "*" at a chosen bit appear in several groups, exactly as they
	// will be replicated across ROT-partitions.
	groups := [][]ip.Prefix{t.Prefixes()}
	var chosen []int
	used := make(map[int]bool)
	for k := 0; k < eta; k++ {
		bestBit := -1
		bestTotal := 0
		bestSpread := 0
		for pos := 0; pos < 32; pos++ {
			if used[pos] {
				continue
			}
			total, spread := scoreBit(groups, pos)
			if bestBit < 0 || total < bestTotal ||
				(total == bestTotal && spread < bestSpread) {
				bestBit, bestTotal, bestSpread = pos, total, spread
			}
		}
		chosen = append(chosen, bestBit)
		used[bestBit] = true
		groups = splitGroups(groups, bestBit)
	}
	return chosen
}

// scoreBit evaluates splitting every current group at bit pos: total is
// the prefix count after the split (criterion 1: Σ (Φ + Φ*)); spread is
// max−min over the resulting subgroup sizes (criterion 2 generalized).
func scoreBit(groups [][]ip.Prefix, pos int) (total, spread int) {
	minSz, maxSz := -1, 0
	for _, g := range groups {
		var n0, n1, nStar int
		for _, pr := range g {
			b, known := pr.Bit(pos)
			switch {
			case !known:
				nStar++
			case b == 0:
				n0++
			default:
				n1++
			}
		}
		s0, s1 := n0+nStar, n1+nStar
		total += s0 + s1
		for _, sz := range [2]int{s0, s1} {
			if minSz < 0 || sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
		}
	}
	return total, maxSz - minSz
}

// splitGroups applies the chosen bit, doubling the group list. The new
// group order keeps the pattern numbering convention: earlier-chosen bits
// are more significant, and within this split bit value 0 precedes 1.
func splitGroups(groups [][]ip.Prefix, pos int) [][]ip.Prefix {
	out := make([][]ip.Prefix, 0, 2*len(groups))
	for _, g := range groups {
		var g0, g1 []ip.Prefix
		for _, pr := range g {
			b, known := pr.Bit(pos)
			switch {
			case !known:
				g0 = append(g0, pr)
				g1 = append(g1, pr)
			case b == 0:
				g0 = append(g0, pr)
			default:
				g1 = append(g1, pr)
			}
		}
		out = append(out, g0, g1)
	}
	// Reorder: splitGroups appends (g0,g1) per group, which makes the new
	// bit the LEAST significant pattern bit — matching PatternOf, where
	// later bits shift less. Pattern p's group is out[...]: for pattern
	// numbering with earlier bits more significant, group order must be
	// g(00), g(01), g(10), g(11): out already is [g0_0, g0_1, g1_0, g1_1]
	// when groups were ordered by earlier bits. That is exactly the
	// convention, so no reorder is needed.
	return out
}

// LengthPartition implements the comparator scheme of Akhbarizadeh &
// Nourani (ICC 2002) the paper contrasts with in Sec. 2.3: one partition
// per distinct prefix length, every partition kept at every FE. It returns
// the partitions ordered by length and is used to demonstrate their size
// imbalance versus SPAL's criteria-driven split.
func LengthPartition(t *rtable.Table) []*rtable.Table {
	byLen := make(map[uint8][]rtable.Route)
	for _, r := range t.Routes() {
		byLen[r.Prefix.Len] = append(byLen[r.Prefix.Len], r)
	}
	var out []*rtable.Table
	for l := 0; l <= 32; l++ {
		if rs, ok := byLen[uint8(l)]; ok {
			out = append(out, rtable.New(rs))
		}
	}
	return out
}
