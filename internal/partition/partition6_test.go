package partition

import (
	"testing"

	"spal/internal/ip"
	"spal/internal/stats"
)

// synth6 generates a small synthetic IPv6 route set with a 2000::/3-style
// global-unicast shape and nested prefixes.
func synth6(n int, seed uint64) []Route6 {
	rng := stats.NewRNG(seed)
	routes := make([]Route6, 0, n)
	for i := 0; i < n; i++ {
		l := uint8(16 + rng.Intn(49)) // /16 .. /64
		v := ip.Addr6{Hi: 0x2000000000000000 | rng.Uint64()>>3, Lo: rng.Uint64()}
		routes = append(routes, Route6{
			Prefix:  ip.Prefix6{Value: v, Len: l}.Canon(),
			NextHop: uint16(rng.Intn(16)),
		})
	}
	return routes
}

func TestPartition6HomeInvariant(t *testing.T) {
	routes := synth6(800, 3)
	for _, psi := range []int{1, 3, 4, 8} {
		p := Partition6(routes, psi)
		rng := stats.NewRNG(uint64(psi) + 100)
		for i := 0; i < 500; i++ {
			// Probe base addresses of random routes plus random noise in
			// the low bits.
			r := routes[rng.Intn(len(routes))]
			a := r.Prefix.Value
			a.Lo |= rng.Uint64() & ^ip.Mask6(r.Prefix.Len).Lo
			home := p.HomeLC(a)
			if home < 0 || home >= psi {
				t.Fatalf("psi=%d: home out of range", psi)
			}
			gotNH, gotOK := p.LookupLinear(home, a)
			wantNH, wantOK := lookupAll6(routes, a)
			if gotOK != wantOK || (gotOK && gotNH != wantNH) {
				t.Fatalf("psi=%d: home LPM (%d,%v) != full (%d,%v)",
					psi, gotNH, gotOK, wantNH, wantOK)
			}
		}
	}
}

func lookupAll6(routes []Route6, a ip.Addr6) (uint16, bool) {
	bestLen := -1
	var nh uint16
	for _, r := range routes {
		if r.Prefix.Matches(a) && int(r.Prefix.Len) > bestLen {
			bestLen = int(r.Prefix.Len)
			nh = r.NextHop
		}
	}
	return nh, bestLen >= 0
}

func TestSelectBits6AvoidsStarPositions(t *testing.T) {
	// All routes /16..(max) under 2000::/3: the first 3 bits are constant
	// (useless for balance) and positions >= 64 are mostly "*"; chosen
	// bits should sit in the early, populated region.
	routes := synth6(500, 9)
	bits := SelectBits6(routes, 3)
	if len(bits) != 3 {
		t.Fatalf("got %d bits", len(bits))
	}
	for _, b := range bits {
		if b >= 64 {
			t.Errorf("bit %d chosen in the sparse tail", b)
		}
	}
}

func TestPartition6SizesBalanced(t *testing.T) {
	routes := synth6(2000, 21)
	p := Partition6(routes, 4)
	minSz, maxSz := -1, 0
	for lc := 0; lc < 4; lc++ {
		n := len(p.Routes(lc))
		if minSz < 0 || n < minSz {
			minSz = n
		}
		if n > maxSz {
			maxSz = n
		}
	}
	if minSz == 0 {
		t.Fatal("empty IPv6 partition")
	}
	if float64(maxSz)/float64(minSz) > 2.5 {
		t.Errorf("imbalance %d..%d", minSz, maxSz)
	}
}

func TestPartition6PanicsOnZeroLCs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	Partition6(nil, 0)
}
