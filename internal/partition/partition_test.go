package partition

import (
	"testing"
	"testing/quick"

	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/rtable"
	"spal/internal/stats"
)

// paperTable builds the 7-prefix example of Sec. 3.1 (8-bit simplified
// prefixes mapped into the top byte of IPv4 space).
func paperTable() *rtable.Table {
	// P1=101*, P2=1011*, P3=01*, P4=001110*, P5=10010011, P6=10011*,
	// P7=011001*.
	mk := func(bits string, nh rtable.NextHop) rtable.Route {
		var v uint32
		for i, c := range bits {
			if c == '1' {
				v |= 1 << (31 - i)
			}
		}
		return rtable.Route{Prefix: ip.Prefix{Value: v, Len: uint8(len(bits))}, NextHop: nh}
	}
	return rtable.New([]rtable.Route{
		mk("101", 1), mk("1011", 2), mk("01", 3), mk("001110", 4),
		mk("10010011", 5), mk("10011", 6), mk("011001", 7),
	})
}

// TestPaperExamplePartitionSizes reproduces the Sec. 3.1 example: using
// bits b0 and b4 gives partitions {P3,P7},{P3,P4},{P1,P2,P5},{P1,P2,P6}
// (each 2-3 prefixes), strictly better than bits b2,b4 whose largest
// partitions have 4 prefixes.
func TestPaperExamplePartitionSizes(t *testing.T) {
	tbl := paperTable()

	good := WithBits(tbl, 4, []int{0, 4})
	gs := good.Stats()
	if gs.Min < 2 || gs.Max > 3 {
		t.Errorf("bits {0,4}: sizes %v, want all in [2,3]", gs.Sizes)
	}

	bad := WithBits(tbl, 4, []int{2, 4})
	bs := bad.Stats()
	if bs.Max != 4 {
		t.Errorf("bits {2,4}: max = %d, want 4 (the paper's inferior split)", bs.Max)
	}

	// The selection algorithm must do at least as well as the paper's good
	// choice on criterion totals.
	auto := Partition(tbl, 4)
	as := auto.Stats()
	sum := func(sz []int) int {
		s := 0
		for _, v := range sz {
			s += v
		}
		return s
	}
	if sum(as.Sizes) > sum(gs.Sizes) {
		t.Errorf("auto bits %v total %d worse than paper's {0,4} total %d",
			auto.Bits, sum(as.Sizes), sum(gs.Sizes))
	}
}

// TestHomeInvariant is invariant 1 of DESIGN.md: home-partition LPM equals
// full-table LPM for every address.
func TestHomeInvariant(t *testing.T) {
	tbl := rtable.Small(3000, 77)
	for _, psi := range []int{1, 2, 3, 4, 5, 7, 8, 16} {
		p := Partition(tbl, psi)
		oracle := lpm.NewReference(tbl)
		engines := make([]*lpm.Reference, psi)
		for lc := 0; lc < psi; lc++ {
			engines[lc] = lpm.NewReference(p.Table(lc))
		}
		rng := stats.NewRNG(uint64(psi))
		for i := 0; i < 3000; i++ {
			var a ip.Addr
			if i%2 == 0 {
				a = tbl.RandomMatchedAddr(rng)
			} else {
				a = rng.Uint32()
			}
			home := p.HomeLC(a)
			if home < 0 || home >= psi {
				t.Fatalf("psi=%d: HomeLC out of range: %d", psi, home)
			}
			wantNH, _, wantOK := oracle.Lookup(a)
			gotNH, _, gotOK := engines[home].Lookup(a)
			if gotOK != wantOK || (gotOK && gotNH != wantNH) {
				t.Fatalf("psi=%d addr=%s: home LPM (%d,%v) != full LPM (%d,%v)",
					psi, ip.FormatAddr(a), gotNH, gotOK, wantNH, wantOK)
			}
		}
	}
}

// Property: the home invariant holds on adversarial quick-generated tables.
func TestHomeInvariantQuick(t *testing.T) {
	f := func(raw []uint64, addrs []uint32, psiSeed uint8) bool {
		psi := 1 + int(psiSeed)%8
		var routes []rtable.Route
		for i, v := range raw {
			if i >= 40 {
				break
			}
			routes = append(routes, rtable.Route{
				Prefix:  ip.Prefix{Value: uint32(v), Len: uint8((v >> 32) % 33)}.Canon(),
				NextHop: rtable.NextHop(i),
			})
		}
		tbl := rtable.New(routes)
		p := Partition(tbl, psi)
		oracle := lpm.NewReference(tbl)
		for _, a := range addrs {
			home := p.HomeLC(a)
			wantNH, _, wantOK := oracle.Lookup(a)
			gotNH, gotOK := p.Table(home).LookupLinear(a)
			if gotOK != wantOK || (gotOK && gotNH != wantNH) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestEveryPrefixInSomePartition(t *testing.T) {
	tbl := rtable.Small(2000, 5)
	p := Partition(tbl, 6)
	seen := make(map[ip.Prefix]bool)
	for lc := 0; lc < 6; lc++ {
		for _, r := range p.Table(lc).Routes() {
			seen[r.Prefix] = true
		}
	}
	for _, r := range tbl.Routes() {
		if !seen[r.Prefix] {
			t.Fatalf("prefix %s lost by partitioning", r.Prefix)
		}
	}
}

func TestStarPrefixReplication(t *testing.T) {
	// A prefix whose control bits are all "*" must be in every pattern's
	// partition (like P3 in the paper's example).
	tbl := rtable.New([]rtable.Route{
		{Prefix: ip.MustPrefix("0.0.0.0/0"), NextHop: 9},
		{Prefix: ip.MustPrefix("10.1.0.0/16"), NextHop: 1},
		{Prefix: ip.MustPrefix("10.2.0.0/16"), NextHop: 2},
		{Prefix: ip.MustPrefix("10.3.0.0/16"), NextHop: 3},
		{Prefix: ip.MustPrefix("192.168.0.0/16"), NextHop: 4},
	})
	p := Partition(tbl, 4)
	for lc := 0; lc < 4; lc++ {
		if nh, ok := p.Table(lc).LookupLinear(0xf0000001); !ok || nh != 9 {
			t.Errorf("LC %d lost the default route", lc)
		}
	}
}

func TestNonPowerOfTwoFolding(t *testing.T) {
	tbl := rtable.Small(1000, 3)
	p := Partition(tbl, 3) // eta = 2, 4 patterns on 3 LCs
	if len(p.Bits) != 2 {
		t.Fatalf("eta = %d, want 2", len(p.Bits))
	}
	// Patterns 0 and 3 share LC 0.
	counts := make(map[int]int)
	for pat := 0; pat < 4; pat++ {
		counts[p.patternToLC[pat]]++
	}
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 1 {
		t.Errorf("pattern folding = %v", counts)
	}
}

func TestPsiOneDegenerate(t *testing.T) {
	tbl := rtable.Small(500, 9)
	p := Partition(tbl, 1)
	if len(p.Bits) != 0 {
		t.Errorf("psi=1 should choose no bits, got %v", p.Bits)
	}
	if p.Table(0).Len() != tbl.Len() {
		t.Errorf("psi=1 partition size = %d, want %d", p.Table(0).Len(), tbl.Len())
	}
	if p.HomeLC(0x12345678) != 0 {
		t.Error("psi=1: everything is home")
	}
}

func TestSelectBitsPrefersLowStar(t *testing.T) {
	// All prefixes are /16: any bit position <= 15 has zero stars; the
	// selector must not choose positions >= 16 (all stars there).
	var routes []rtable.Route
	rng := stats.NewRNG(2)
	for i := 0; i < 200; i++ {
		routes = append(routes, rtable.Route{
			Prefix:  ip.Prefix{Value: rng.Uint32() & 0xffff0000, Len: 16},
			NextHop: 1,
		})
	}
	tbl := rtable.New(routes)
	for _, b := range SelectBits(tbl, 4) {
		if b >= 16 {
			t.Errorf("selected bit %d beyond all prefix lengths", b)
		}
	}
}

// TestFirstBitIsCriteriaOptimal re-scores every candidate position by
// brute force and checks SelectBits' first choice achieves the lexical
// minimum of (criterion 1, criterion 2).
func TestFirstBitIsCriteriaOptimal(t *testing.T) {
	tbl := rtable.Small(4000, 29)
	chosen := SelectBits(tbl, 1)[0]

	score := func(pos int) (total, spread int) {
		var n0, n1, nStar int
		for _, r := range tbl.Routes() {
			b, known := r.Prefix.Bit(pos)
			switch {
			case !known:
				nStar++
			case b == 0:
				n0++
			default:
				n1++
			}
		}
		s0, s1 := n0+nStar, n1+nStar
		total = s0 + s1
		spread = s0 - s1
		if spread < 0 {
			spread = -spread
		}
		return total, spread
	}
	bestT, bestS := score(chosen)
	for pos := 0; pos < 32; pos++ {
		tt, ss := score(pos)
		if tt < bestT || (tt == bestT && ss < bestS) {
			t.Fatalf("bit %d scores (%d,%d), beating chosen bit %d at (%d,%d)",
				pos, tt, ss, chosen, bestT, bestS)
		}
	}
}

func TestPartitionSizesRoughlyBalanced(t *testing.T) {
	tbl := rtable.Small(20000, 41)
	p := Partition(tbl, 16)
	s := p.Stats()
	if s.Min == 0 {
		t.Fatal("empty partition")
	}
	if ratio := float64(s.Max) / float64(s.Min); ratio > 3.0 {
		t.Errorf("max/min partition ratio = %.2f (sizes %v)", ratio, s.Sizes)
	}
	// Each partition must be far smaller than the full table: the paper's
	// headline storage claim.
	if s.Max > tbl.Len()/4 {
		t.Errorf("largest partition %d not a small fraction of %d", s.Max, tbl.Len())
	}
	if s.Replication < 1.0 || s.Replication > 3.0 {
		t.Errorf("replication = %.2f", s.Replication)
	}
}

func TestWithBitsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic when 2^bits < numLCs")
		}
	}()
	WithBits(rtable.Small(10, 1), 4, []int{0})
}

func TestPartitionPanicsOnZeroLCs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for numLCs < 1")
		}
	}()
	Partition(rtable.Small(10, 1), 0)
}

func TestLengthPartition(t *testing.T) {
	tbl := rtable.Small(5000, 13)
	parts := LengthPartition(tbl)
	total := 0
	maxPart := 0
	for _, p := range parts {
		total += p.Len()
		if p.Len() > maxPart {
			maxPart = p.Len()
		}
		// Every partition holds exactly one length.
		h := p.LengthHistogram()
		nonzero := 0
		for _, c := range h {
			if c > 0 {
				nonzero++
			}
		}
		if nonzero != 1 {
			t.Fatalf("length partition mixes %d lengths", nonzero)
		}
	}
	if total != tbl.Len() {
		t.Errorf("length partitions lose prefixes: %d != %d", total, tbl.Len())
	}
	// The comparator's known weakness: /24 dominates, so the largest
	// partition is a large fraction of the table (~46%+ here), unlike
	// SPAL's balanced split.
	if frac := float64(maxPart) / float64(tbl.Len()); frac < 0.40 {
		t.Errorf("expected dominant /24 partition, got fraction %.2f", frac)
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5}
	for n, want := range cases {
		if got := ceilLog2(n); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}
