package partition

import (
	"testing"

	"spal/internal/rtable"
	"spal/internal/stats"
)

// TestApplyUpdatesMatchesRebuild: applying an update batch incrementally
// (same bits, same folding) must give exactly the per-LC tables a full
// rebuild with those bits over the updated table would, for full and
// subset alive sets — so the incremental plane and the two-phase swap can
// never disagree about what an LC stores.
func TestApplyUpdatesMatchesRebuild(t *testing.T) {
	rng := stats.NewRNG(17)
	for _, tc := range []struct {
		numLCs int
		alive  []int
	}{
		{4, []int{0, 1, 2, 3}},
		{5, []int{0, 1, 2, 3, 4}},
		{8, []int{0, 2, 3, 5, 7}},
	} {
		tbl := rtable.Small(900, 11+uint64(tc.numLCs))
		p := Subset(tbl, tc.numLCs, tc.alive)
		cur := tbl
		for round := 0; round < 5; round++ {
			stream := rtable.GenerateUpdates(cur, rtable.UpdateStreamConfig{
				RatePerSecond: 1000, CycleNS: 5, Duration: 8_000_000,
				WithdrawProb: 0.4, NewPrefixProb: 0.2,
				Seed: rng.Uint64(),
			})
			if len(stream) == 0 {
				t.Fatal("empty update stream")
			}
			np, sub := p.ApplyUpdates(stream)
			cur = cur.ApplyAll(stream)
			if got, want := np.Full().Len(), cur.Len(); got != want {
				t.Fatalf("psi=%d round=%d: full table %d entries, want %d", tc.numLCs, round, got, want)
			}
			want := SubsetWithBits(cur, tc.numLCs, tc.alive, p.Bits)
			for lc := 0; lc < tc.numLCs; lc++ {
				g, w := np.Table(lc).Routes(), want.Table(lc).Routes()
				if len(g) != len(w) {
					t.Fatalf("psi=%d round=%d lc=%d: %d routes incremental vs %d rebuilt",
						tc.numLCs, round, lc, len(g), len(w))
				}
				for i := range g {
					if g[i] != w[i] {
						t.Fatalf("psi=%d round=%d lc=%d route %d: %v != %v",
							tc.numLCs, round, lc, i, g[i], w[i])
					}
				}
			}
			// Sub-batches only name LCs whose table can change, and every
			// changed LC got a sub-batch (an empty one shares the snapshot).
			for lc := range sub {
				if len(sub[lc]) == 0 && np.Table(lc) != p.Table(lc) {
					t.Fatalf("lc=%d: table replaced without a sub-batch", lc)
				}
			}
			p = np
		}
	}
}
