package multibit

import (
	"testing"

	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/rtable"
	"spal/internal/stats"
)

func table(cidrs ...string) *rtable.Table {
	var routes []rtable.Route
	for i, c := range cidrs {
		routes = append(routes, rtable.Route{Prefix: ip.MustPrefix(c), NextHop: rtable.NextHop(i + 1)})
	}
	return rtable.New(routes)
}

func TestAgreesWithOracleAcrossStrides(t *testing.T) {
	tbl := rtable.Small(5000, 7)
	oracle := lpm.NewReference(tbl)
	for _, strides := range [][]int{{16, 8, 8}, {8, 8, 8, 8}, {24, 8}, {4, 4, 4, 4, 4, 4, 4, 4}} {
		tr, err := NewWithStrides(tbl, strides)
		if err != nil {
			t.Fatalf("strides %v: %v", strides, err)
		}
		rng := stats.NewRNG(3)
		for i := 0; i < 4000; i++ {
			var a ip.Addr
			if i%2 == 0 {
				a = tbl.RandomMatchedAddr(rng)
			} else {
				a = rng.Uint32()
			}
			wNH, _, wOK := oracle.Lookup(a)
			gNH, _, gOK := tr.Lookup(a)
			if wOK != gOK || (wOK && wNH != gNH) {
				t.Fatalf("strides %v addr %s: (%d,%v) want (%d,%v)",
					strides, ip.FormatAddr(a), gNH, gOK, wNH, wOK)
			}
		}
	}
}

func TestAccessesBoundedByLevels(t *testing.T) {
	tbl := rtable.Small(2000, 9)
	tr := New(tbl)
	if tr.MaxAccesses() != 3 {
		t.Fatalf("MaxAccesses = %d", tr.MaxAccesses())
	}
	rng := stats.NewRNG(5)
	for i := 0; i < 2000; i++ {
		_, acc, _ := tr.Lookup(tbl.RandomMatchedAddr(rng))
		if acc < 1 || acc > 3 {
			t.Fatalf("accesses = %d", acc)
		}
	}
}

func TestShortPrefixSingleLevel(t *testing.T) {
	tr := New(table("10.0.0.0/8"))
	a, _ := ip.ParseAddr("10.9.9.9")
	nh, acc, ok := tr.Lookup(a)
	if !ok || nh != 1 || acc != 1 {
		t.Errorf("Lookup = (%d,%d,%v), want (1,1,true)", nh, acc, ok)
	}
	if tr.Nodes() != 1 {
		t.Errorf("Nodes = %d, want root only", tr.Nodes())
	}
}

func TestNestedPrefixPrecedence(t *testing.T) {
	tr := New(table("10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24", "10.1.2.128/25"))
	cases := []struct {
		addr string
		want rtable.NextHop
	}{
		{"10.1.2.200", 4},
		{"10.1.2.3", 3},
		{"10.1.9.9", 2},
		{"10.200.0.1", 1},
	}
	for _, c := range cases {
		a, _ := ip.ParseAddr(c.addr)
		if nh, _, _ := tr.Lookup(a); nh != c.want {
			t.Errorf("Lookup(%s) = %d, want %d", c.addr, nh, c.want)
		}
	}
}

func TestStrideTradeoff(t *testing.T) {
	// Wider strides: fewer accesses, more memory.
	tbl := rtable.Small(5000, 11)
	wide, err := NewWithStrides(tbl, []int{24, 8})
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := NewWithStrides(tbl, []int{4, 4, 4, 4, 4, 4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if wide.MemoryBytes() <= narrow.MemoryBytes() {
		t.Errorf("24/8 memory (%d) should exceed 4x8 memory (%d)",
			wide.MemoryBytes(), narrow.MemoryBytes())
	}
	rng := stats.NewRNG(13)
	addrs := make([]ip.Addr, 2000)
	for i := range addrs {
		addrs[i] = tbl.RandomMatchedAddr(rng)
	}
	if wa, na := lpm.MeanAccesses(wide, addrs), lpm.MeanAccesses(narrow, addrs); wa >= na {
		t.Errorf("24/8 accesses (%.1f) should beat 4x8 accesses (%.1f)", wa, na)
	}
}

func TestInvalidStrides(t *testing.T) {
	tbl := table("10.0.0.0/24")
	if _, err := NewWithStrides(tbl, []int{16}); err == nil {
		t.Error("want error: /24 exceeds 16-bit depth")
	}
	if _, err := NewWithStrides(tbl, nil); err == nil {
		t.Error("want error: empty strides")
	}
	if _, err := NewWithStrides(tbl, []int{40}); err == nil {
		t.Error("want error: stride > 32")
	}
}

func TestDefaultRoute(t *testing.T) {
	tr := New(table("0.0.0.0/0"))
	if nh, _, ok := tr.Lookup(0xffffffff); !ok || nh != 1 {
		t.Errorf("default route miss: (%d,%v)", nh, ok)
	}
}

func TestEmptyTableAndName(t *testing.T) {
	tr := New(rtable.New(nil))
	if _, _, ok := tr.Lookup(1); ok {
		t.Error("empty trie must miss")
	}
	if tr.Name() != "multibit" {
		t.Error("Name mismatch")
	}
	if got := tr.Strides(); len(got) != 3 || got[0] != 16 {
		t.Errorf("Strides = %v", got)
	}
	if tr.MemoryBytes() != (1<<16)*SlotBytes {
		t.Errorf("root-only memory = %d", tr.MemoryBytes())
	}
}
