// Package multibit implements a fixed-stride multibit trie with controlled
// prefix expansion — the general form of the multiple-bit-inspection
// structures the SPAL paper surveys in Sec. 2.1 (the Lulea trie is a
// compressed 16/8/8 instance; the Gupta 24/8 hardware table is an
// uncompressed 24/8 instance). The stride vector is configurable, making
// the storage-versus-accesses trade directly measurable: each visited
// level costs one memory access, and every slot costs SlotBytes of SRAM.
//
// Construction inserts prefixes in increasing length order, expanding each
// prefix within the node whose boundary first covers it, so longer
// prefixes overwrite the expansions of shorter ones (longest-match
// semantics are exact).
package multibit

import (
	"fmt"

	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/lpm/expand"
	"spal/internal/rtable"
)

// SlotBytes models one slot: a 2-byte next hop plus a 4-byte child
// pointer.
const SlotBytes = 6

// DefaultStrides is the Lulea-shaped 16/8/8 stride vector.
var DefaultStrides = []int{16, 8, 8}

type slot struct {
	nextHop  rtable.NextHop
	hasRoute bool
	child    int32 // node index, -1 when none
}

type node struct {
	slots []slot
}

// Trie is an immutable fixed-stride multibit trie built by New.
type Trie struct {
	strides    []int
	boundaries []int
	nodes      []node // nodes[0] is the root (level 0)
	levelOf    []int  // level of each node
}

var _ lpm.Engine = (*Trie)(nil)

// New builds a trie with DefaultStrides.
func New(t *rtable.Table) *Trie {
	tr, err := NewWithStrides(t, DefaultStrides)
	if err != nil {
		panic(err) // DefaultStrides always validate
	}
	return tr
}

// NewEngine adapts New to the lpm.Builder signature.
func NewEngine(t *rtable.Table) lpm.Engine { return New(t) }

// NewWithStrides builds a trie with an explicit stride vector. The strides
// must be positive and sum to at least the longest prefix length in t
// (and at most 32).
func NewWithStrides(t *rtable.Table, strides []int) (*Trie, error) {
	boundaries, err := expand.Boundaries(strides)
	if err != nil {
		return nil, err
	}
	tr := &Trie{
		strides:    append([]int(nil), strides...),
		boundaries: boundaries,
	}
	tr.newNode(0)
	// Increasing length order: later (longer) prefixes overwrite the
	// expansions of earlier (shorter) ones.
	hist := t.LengthHistogram()
	routes := t.Routes()
	for l := 0; l <= 32; l++ {
		if hist[l] == 0 {
			continue
		}
		if _, ok := expand.RoundUp(boundaries, l); !ok {
			return nil, fmt.Errorf("multibit: /%d prefixes exceed stride depth %d",
				l, boundaries[len(boundaries)-1])
		}
		for _, r := range routes {
			if int(r.Prefix.Len) == l {
				tr.insert(r.Prefix, r.NextHop)
			}
		}
	}
	return tr, nil
}

func (tr *Trie) newNode(level int) int {
	tr.nodes = append(tr.nodes, node{slots: make([]slot, 1<<tr.strides[level])})
	tr.levelOf = append(tr.levelOf, level)
	n := len(tr.nodes) - 1
	for i := range tr.nodes[n].slots {
		tr.nodes[n].slots[i].child = -1
	}
	return n
}

// levelBits extracts the stride-sized slot index for a level from a value.
func (tr *Trie) levelBits(v uint32, level int) int {
	start := 0
	if level > 0 {
		start = tr.boundaries[level-1]
	}
	width := tr.strides[level]
	return int(v << uint(start) >> uint(32-width))
}

func (tr *Trie) insert(p ip.Prefix, nh rtable.NextHop) {
	ni := 0
	for level := 0; ; level++ {
		b := tr.boundaries[level]
		if int(p.Len) <= b {
			// Expand within this node: the prefix covers 2^(b-len) slots.
			base := tr.levelBits(p.Value, level)
			span := 1 << (b - int(p.Len))
			// base already has the don't-care low bits zeroed (canonical
			// prefix), so the covered slots are base..base+span-1.
			for k := 0; k < span; k++ {
				s := &tr.nodes[ni].slots[base+k]
				s.nextHop = nh
				s.hasRoute = true
			}
			return
		}
		idx := tr.levelBits(p.Value, level)
		s := &tr.nodes[ni].slots[idx]
		if s.child < 0 {
			// Appending may grow tr.nodes and invalidate s; recompute.
			child := tr.newNode(level + 1)
			tr.nodes[ni].slots[idx].child = int32(child)
		}
		ni = int(tr.nodes[ni].slots[idx].child)
	}
}

// Lookup walks one level per memory access, remembering the deepest
// route slot passed.
func (tr *Trie) Lookup(a ip.Addr) (rtable.NextHop, int, bool) {
	best := rtable.NoNextHop
	found := false
	accesses := 0
	ni := 0
	for level := 0; ni >= 0 && level < len(tr.strides); level++ {
		accesses++
		s := &tr.nodes[ni].slots[tr.levelBits(a, level)]
		if s.hasRoute {
			best = s.nextHop
			found = true
		}
		ni = int(s.child)
	}
	return best, accesses, found
}

// MemoryBytes reports the modelled footprint (SlotBytes per slot).
func (tr *Trie) MemoryBytes() int {
	total := 0
	for i := range tr.nodes {
		total += len(tr.nodes[i].slots) * SlotBytes
	}
	return total
}

// Name implements lpm.Engine.
func (tr *Trie) Name() string { return "multibit" }

// Nodes returns the trie-node count.
func (tr *Trie) Nodes() int { return len(tr.nodes) }

// Strides returns the stride vector.
func (tr *Trie) Strides() []int { return append([]int(nil), tr.strides...) }

// MaxAccesses returns the worst-case lookup cost (the level count).
func (tr *Trie) MaxAccesses() int { return len(tr.strides) }
