// Package lpm defines the longest-prefix-matching engine interface shared
// by every trie implementation (binary trie, DP trie, Lulea trie, LC-trie,
// and the 24/8 hardware table), plus a hash-based reference oracle used by
// the property tests.
//
// Engines report two things beyond the lookup result itself, because the
// paper's evaluation depends on them:
//
//   - the number of modelled memory accesses each lookup performs (the FE
//     lookup latency in the simulator is derived from this), and
//   - the modelled SRAM footprint of the whole structure (Fig. 3 of the
//     paper plots exactly this).
package lpm

import (
	"spal/internal/ip"
	"spal/internal/rtable"
)

// Engine is a built longest-prefix-matching structure. Implementations are
// immutable after construction (SPAL rebuilds forwarding tables on route
// updates and flushes the LR-caches, per Sec. 3.2 of the paper).
type Engine interface {
	// Lookup returns the next hop of the longest matching prefix, the
	// number of modelled memory accesses the search performed, and whether
	// any prefix matched at all.
	Lookup(a ip.Addr) (nh rtable.NextHop, accesses int, ok bool)

	// MemoryBytes returns the modelled SRAM footprint in bytes.
	MemoryBytes() int

	// Name identifies the algorithm, e.g. "lulea".
	Name() string
}

// DynamicEngine is an Engine that additionally supports in-place
// incremental updates, so a route announce/withdraw can be streamed into
// an already-built structure instead of rebuilding it from a snapshot.
// Implementations must keep Lookup correct after any Insert/Delete
// sequence; they need not be safe for concurrent mutation (the router
// serializes updates on the owning LC goroutine).
type DynamicEngine interface {
	Engine

	// Insert adds or replaces a route in place.
	Insert(p ip.Prefix, nh rtable.NextHop)

	// Delete removes a route in place, reporting whether it was present.
	Delete(p ip.Prefix) bool
}

// Builder constructs an engine from a routing table snapshot.
type Builder func(t *rtable.Table) Engine

// MeanAccesses measures the average number of memory accesses per lookup of
// e over the given addresses (the paper reports 6.2/6.6 for the Lulea trie
// and about 16 for the DP trie).
func MeanAccesses(e Engine, addrs []ip.Addr) float64 {
	if len(addrs) == 0 {
		return 0
	}
	total := 0
	for _, a := range addrs {
		_, acc, _ := e.Lookup(a)
		total += acc
	}
	return float64(total) / float64(len(addrs))
}
