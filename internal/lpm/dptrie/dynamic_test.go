package dptrie

import (
	"testing"
	"testing/quick"

	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/rtable"
	"spal/internal/stats"
)

func TestInsertDeleteRoundTrip(t *testing.T) {
	tr := New(rtable.New(nil))
	p := ip.MustPrefix("10.1.0.0/16")
	tr.Insert(p, 5)
	a, _ := ip.ParseAddr("10.1.2.3")
	if nh, _, ok := tr.Lookup(a); !ok || nh != 5 {
		t.Fatalf("after insert: (%d,%v)", nh, ok)
	}
	if !tr.Delete(p) {
		t.Fatal("Delete returned false")
	}
	if _, _, ok := tr.Lookup(a); ok {
		t.Fatal("route survives delete")
	}
	if tr.Nodes() != 1 {
		t.Errorf("nodes = %d, want 1 (root)", tr.Nodes())
	}
}

func TestDeleteMergesSplitNodes(t *testing.T) {
	// Two /24s create a split node; deleting one should fold the split
	// back into a single compressed edge.
	tr := New(table("10.1.2.0/24", "10.1.3.0/24"))
	before := tr.Nodes() // root + split + 2 leaves = 4
	if !tr.Delete(ip.MustPrefix("10.1.3.0/24")) {
		t.Fatal("delete")
	}
	if tr.Nodes() >= before-1 {
		t.Errorf("nodes = %d (was %d): split node not merged", tr.Nodes(), before)
	}
	a, _ := ip.ParseAddr("10.1.2.9")
	if nh, _, _ := tr.Lookup(a); nh != 1 {
		t.Error("surviving /24 broken by merge")
	}
	a, _ = ip.ParseAddr("10.1.3.9")
	if _, _, ok := tr.Lookup(a); ok {
		t.Error("deleted /24 still matches")
	}
}

func TestDeleteRouteOnBranchNodeKeepsBranch(t *testing.T) {
	// /16 sits on the branch node covering both /24s: deleting it must
	// keep the branch (it still has two children).
	tr := New(table("10.1.0.0/16", "10.1.2.0/24", "10.1.3.0/24"))
	if !tr.Delete(ip.MustPrefix("10.1.0.0/16")) {
		t.Fatal("delete /16")
	}
	for addr, want := range map[string]rtable.NextHop{"10.1.2.1": 2, "10.1.3.1": 3} {
		a, _ := ip.ParseAddr(addr)
		if nh, _, _ := tr.Lookup(a); nh != want {
			t.Errorf("Lookup(%s) = %d, want %d", addr, nh, want)
		}
	}
	a, _ := ip.ParseAddr("10.1.200.1")
	if _, _, ok := tr.Lookup(a); ok {
		t.Error("deleted /16 still matches")
	}
}

func TestDeleteAbsent(t *testing.T) {
	tr := New(table("10.0.0.0/8"))
	for _, s := range []string{"11.0.0.0/8", "10.0.0.0/16", "10.128.0.0/9"} {
		if tr.Delete(ip.MustPrefix(s)) {
			t.Errorf("Delete(%s) on absent prefix reported true", s)
		}
	}
}

// Property: random insert/delete interleavings agree with a shadow oracle.
func TestDynamicMatchesShadow(t *testing.T) {
	f := func(ops []uint64) bool {
		tr := New(rtable.New(nil))
		shadow := map[ip.Prefix]rtable.NextHop{}
		for i, op := range ops {
			p := ip.Prefix{Value: uint32(op), Len: uint8((op >> 32) % 33)}.Canon()
			if op>>40&1 == 0 || len(shadow) == 0 {
				nh := rtable.NextHop(i % 1000)
				tr.Insert(p, nh)
				shadow[p] = nh
			} else {
				delete(shadow, p)
				tr.Delete(p)
			}
		}
		var routes []rtable.Route
		for p, nh := range shadow {
			routes = append(routes, rtable.Route{Prefix: p, NextHop: nh})
		}
		oracle := lpm.NewReference(rtable.New(routes))
		rng := stats.NewRNG(11)
		for i := 0; i < 200; i++ {
			a := rng.Uint32()
			wNH, _, wOK := oracle.Lookup(a)
			gNH, _, gOK := tr.Lookup(a)
			if wOK != gOK || (wOK && wNH != gNH) {
				return false
			}
		}
		for p := range shadow {
			wNH, _, _ := oracle.Lookup(p.FirstAddr())
			gNH, _, gOK := tr.Lookup(p.FirstAddr())
			if !gOK || wNH != gNH {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Deleting everything returns the trie to a single root and node count
// must never leak.
func TestDeleteAllPrunesEverything(t *testing.T) {
	tbl := rtable.Small(500, 17)
	tr := New(tbl)
	for _, r := range tbl.Routes() {
		if !tr.Delete(r.Prefix) {
			t.Fatalf("Delete(%s) failed", r.Prefix)
		}
	}
	if tr.Nodes() != 1 {
		t.Errorf("nodes after deleting all = %d, want 1", tr.Nodes())
	}
	if _, _, ok := tr.Lookup(0x0a000001); ok {
		t.Error("empty trie still matches")
	}
}
