// Package dptrie implements a dynamic prefix trie in the style of
// Doeringer, Karjoth and Nassehi ("Routing on Longest-Matching Prefixes",
// IEEE/ACM ToN 1996): a path-compressed binary trie that stores prefixes at
// internal nodes and inspects a single bit per search step.
//
// Structure: every node represents one bit string (the path from the root).
// A node exists for every stored prefix and for every branching point; path
// compression removes all single-child route-less chain nodes, so search
// touches at most one node per branching decision. Each visited node costs
// one modelled memory access, reproducing the paper's measured ~16 accesses
// per lookup on backbone tables.
//
// Memory model (taken from the SPAL paper's own accounting for the DP
// trie): one byte for the index field plus five 4-byte pointers = 21 bytes
// per node.
package dptrie

import (
	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/rtable"
)

const nodeBytes = 21 // 1-byte index + five 4-byte pointers (paper's model)

type node struct {
	path     ip.Prefix // bit string from the root to this node
	child    [2]*node  // keyed by the bit at position path.Len
	nextHop  rtable.NextHop
	hasRoute bool
}

// Trie is an immutable dynamic prefix trie built by New.
type Trie struct {
	root  *node
	nodes int
}

var (
	_ lpm.Engine        = (*Trie)(nil)
	_ lpm.DynamicEngine = (*Trie)(nil)
)

// New builds the trie from a table snapshot.
func New(t *rtable.Table) *Trie {
	tr := &Trie{root: &node{}, nodes: 1}
	for _, r := range t.Routes() {
		tr.insert(r.Prefix, r.NextHop)
	}
	return tr
}

// NewEngine adapts New to the lpm.Builder signature.
func NewEngine(t *rtable.Table) lpm.Engine { return New(t) }

// commonLen returns the length of the longest common prefix of p and q.
func commonLen(p, q ip.Prefix) uint8 {
	maxL := p.Len
	if q.Len < maxL {
		maxL = q.Len
	}
	x := p.Value ^ q.Value
	if x == 0 {
		return maxL
	}
	// Count equal leading bits.
	var n uint8
	for n = 0; n < maxL; n++ {
		if x&(1<<(31-uint(n))) != 0 {
			break
		}
	}
	return n
}

func (tr *Trie) insert(p ip.Prefix, nh rtable.NextHop) {
	n := tr.root
	for {
		c := commonLen(n.path, p)
		if c < n.path.Len {
			// Diverges inside this node's compressed path: split.
			split := &node{path: ip.Prefix{Value: p.Value & ip.Mask(c), Len: c}.Canon()}
			tr.nodes++
			// Re-hang n under the split node.
			nb, _ := n.path.Bit(int(c))
			// The split node takes n's place; copy n's content into a
			// child. We mutate in place by swapping payloads so parents
			// keep pointing at the same *node.
			moved := *n
			*n = *split
			n.child[nb] = &moved
			if p.Len == c {
				n.nextHop = nh
				n.hasRoute = true
				return
			}
			pb := ip.AddrBit(p.Value, int(c))
			n.child[pb] = &node{path: p, nextHop: nh, hasRoute: true}
			tr.nodes++
			return
		}
		if p.Len == n.path.Len {
			// Exact node: set or replace the route.
			n.nextHop = nh
			n.hasRoute = true
			return
		}
		b := ip.AddrBit(p.Value, int(n.path.Len))
		if n.child[b] == nil {
			n.child[b] = &node{path: p, nextHop: nh, hasRoute: true}
			tr.nodes++
			return
		}
		n = n.child[b]
	}
}

// Lookup walks the compressed trie, verifying each node's skipped bits
// against the address and remembering the deepest matching route. Each node
// visit is one modelled memory access.
func (tr *Trie) Lookup(a ip.Addr) (rtable.NextHop, int, bool) {
	n := tr.root
	best := rtable.NoNextHop
	found := false
	accesses := 0
	for n != nil {
		accesses++
		if !n.path.Matches(a) {
			break
		}
		if n.hasRoute {
			best = n.nextHop
			found = true
		}
		if n.path.Len == 32 {
			break
		}
		n = n.child[ip.AddrBit(a, int(n.path.Len))]
	}
	return best, accesses, found
}

// MemoryBytes reports the modelled footprint (21 bytes per node, the SPAL
// paper's own DP-trie cost model).
func (tr *Trie) MemoryBytes() int { return tr.nodes * nodeBytes }

// Name implements lpm.Engine.
func (tr *Trie) Name() string { return "dptrie" }

// Nodes returns the node count.
func (tr *Trie) Nodes() int { return tr.nodes }
