package dptrie

import (
	"spal/internal/ip"
	"spal/internal/rtable"
)

// Insert adds or replaces a route in place — the "dynamic" in dynamic
// prefix trie: Doeringer et al.'s structure was designed for online
// insertion and deletion.
func (tr *Trie) Insert(p ip.Prefix, nh rtable.NextHop) {
	tr.insert(p.Canon(), nh)
}

// Delete removes a route and re-compresses the path (a routeless node
// with one child merges into it; a routeless leaf disappears). It reports
// whether the prefix was present.
func (tr *Trie) Delete(p ip.Prefix) bool {
	p = p.Canon()
	// Walk down, remembering parents.
	var path []step
	n := tr.root
	for {
		c := commonLen(n.path, p)
		if c < n.path.Len {
			return false // diverges mid-edge: not present
		}
		if n.path.Len == p.Len {
			break
		}
		b := ip.AddrBit(p.Value, int(n.path.Len))
		next := n.child[b]
		if next == nil {
			return false
		}
		path = append(path, step{parent: n, bit: b})
		n = next
	}
	if n.path != p || !n.hasRoute {
		return false
	}
	n.hasRoute = false
	n.nextHop = 0
	tr.compress(n, path)
	return true
}

// compress merges or removes a routeless node, then re-examines its
// parent (removing a child can leave the parent routeless with a single
// child, which path compression must also fold).
func (tr *Trie) compress(n *node, path []step) {
	for {
		if n.hasRoute {
			return
		}
		left, right := n.child[0], n.child[1]
		switch {
		case left != nil && right != nil:
			return // genuine branch point stays
		case left == nil && right == nil:
			// Routeless leaf: detach from parent (the root always stays).
			if len(path) == 0 {
				return
			}
			last := path[len(path)-1]
			last.parent.child[last.bit] = nil
			tr.nodes--
			n = last.parent
			path = path[:len(path)-1]
		default:
			// One child: merge it up, extending this node's edge. The
			// root (path.Len == 0 with no route) also folds this way
			// unless it IS the root sentinel — merging the root would
			// re-root the trie, which parents elsewhere don't reference,
			// so fold the child's payload into the node instead.
			child := left
			if child == nil {
				child = right
			}
			if n == tr.root {
				return // keep the empty root as a stable entry point
			}
			*n = *child
			tr.nodes--
			return
		}
	}
}

// step records one parent-to-child edge on a Delete walk.
type step struct {
	parent *node
	bit    uint32
}
