package dptrie

import (
	"testing"

	"spal/internal/ip"
	"spal/internal/rtable"
)

func table(cidrs ...string) *rtable.Table {
	var routes []rtable.Route
	for i, c := range cidrs {
		routes = append(routes, rtable.Route{Prefix: ip.MustPrefix(c), NextHop: rtable.NextHop(i + 1)})
	}
	return rtable.New(routes)
}

func TestPathCompression(t *testing.T) {
	// Two disjoint /24s: root + split node at the divergence + 2 route
	// nodes = 4 nodes, regardless of the 24-bit depth.
	tr := New(table("10.1.2.0/24", "10.1.3.0/24"))
	if tr.Nodes() != 4 {
		t.Errorf("Nodes = %d, want 4 (path compression)", tr.Nodes())
	}
	a, _ := ip.ParseAddr("10.1.2.9")
	nh, acc, ok := tr.Lookup(a)
	if !ok || nh != 1 {
		t.Fatalf("Lookup = (%d,%v)", nh, ok)
	}
	if acc > 3 {
		t.Errorf("accesses = %d, want <= 3 on a compressed path", acc)
	}
}

func TestSplitKeepsBothRoutes(t *testing.T) {
	tr := New(table("10.1.2.0/24", "10.1.0.0/16", "10.0.0.0/8"))
	cases := []struct {
		addr string
		want rtable.NextHop
	}{
		{"10.1.2.3", 1},
		{"10.1.9.9", 2},
		{"10.9.9.9", 3},
	}
	for _, c := range cases {
		a, _ := ip.ParseAddr(c.addr)
		if nh, _, _ := tr.Lookup(a); nh != c.want {
			t.Errorf("Lookup(%s) = %d, want %d", c.addr, nh, c.want)
		}
	}
}

func TestSplitWhereNewIsPrefixOfEdge(t *testing.T) {
	// Insert the longer one first so the shorter lands mid-edge.
	tr := New(table("10.1.2.0/24")) // nh 1
	tr.insert(ip.MustPrefix("10.0.0.0/8"), 7)
	a, _ := ip.ParseAddr("10.200.0.1")
	if nh, _, ok := tr.Lookup(a); !ok || nh != 7 {
		t.Errorf("mid-edge split lost the short prefix: (%d,%v)", nh, ok)
	}
	a, _ = ip.ParseAddr("10.1.2.3")
	if nh, _, _ := tr.Lookup(a); nh != 1 {
		t.Error("long prefix lost after split")
	}
}

func TestReplaceRoute(t *testing.T) {
	tr := New(table("10.0.0.0/8"))
	before := tr.Nodes()
	tr.insert(ip.MustPrefix("10.0.0.0/8"), 42)
	if tr.Nodes() != before {
		t.Error("replacing a route must not add nodes")
	}
	a, _ := ip.ParseAddr("10.0.0.1")
	if nh, _, _ := tr.Lookup(a); nh != 42 {
		t.Error("replacement next hop not visible")
	}
}

func TestMemoryModel(t *testing.T) {
	tr := New(table("10.1.2.0/24", "10.1.3.0/24"))
	if tr.MemoryBytes() != tr.Nodes()*21 {
		t.Errorf("MemoryBytes = %d, want 21 B/node", tr.MemoryBytes())
	}
	if tr.Name() != "dptrie" {
		t.Error("Name mismatch")
	}
}

func TestCommonLen(t *testing.T) {
	cases := []struct {
		p, q string
		want uint8
	}{
		{"10.0.0.0/8", "10.0.0.0/16", 8},
		{"10.0.0.0/8", "11.0.0.0/8", 7},
		{"0.0.0.0/0", "255.0.0.0/8", 0},
		{"128.0.0.0/1", "255.0.0.0/8", 1},
	}
	for _, c := range cases {
		got := commonLen(ip.MustPrefix(c.p), ip.MustPrefix(c.q))
		if got != c.want {
			t.Errorf("commonLen(%s,%s) = %d, want %d", c.p, c.q, got, c.want)
		}
	}
}

// The paper measures ~16 memory accesses per DP-trie lookup on backbone
// tables; verify our structure is in that regime (10..30) on a synthetic
// 20k-prefix table.
func TestAccessRegime(t *testing.T) {
	tbl := rtable.Small(20000, 17)
	tr := New(tbl)
	total, n := 0, 0
	for i, r := range tbl.Routes() {
		if i%20 != 0 {
			continue
		}
		_, acc, _ := tr.Lookup(r.Prefix.FirstAddr())
		total += acc
		n++
	}
	mean := float64(total) / float64(n)
	if mean < 8 || mean > 30 {
		t.Errorf("mean accesses = %.1f, want in the DP-trie regime [8,30]", mean)
	}
}
