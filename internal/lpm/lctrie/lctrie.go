// Package lctrie implements the level-compressed trie of Nilsson and
// Karlsson ("IP-Address Lookup Using LC-Tries", IEEE JSAC 1999), the third
// matching algorithm the SPAL paper sizes and times.
//
// Construction follows the original:
//
//   - the prefix set is split into a prefix-free *base vector* (prefixes
//     that are not proper prefixes of any other) and a *prefix vector*
//     (the rest); every vector entry carries a chain pointer to its longest
//     proper prefix in the prefix vector;
//   - the trie over the sorted base vector uses path compression (skip) and
//     level compression (branch): the branching factor at a node is the
//     largest k whose 2^k subintervals are filled to at least the fill
//     factor (0.25 in the paper's experiments);
//   - a trie node packs branch, skip and a child/base pointer into 4 bytes;
//   - search walks the node array, lands on a base entry, compares it with
//     the address, and on mismatch rescues through the entry's chain.
//
// Empty subintervals reference the neighbouring entry sharing the longest
// bit pattern, as in Nilsson's code. Because that heuristic (and short base
// strings spanned by a wide branch) can land the search on an entry whose
// chain does not contain the true longest match, Lookup falls back — only
// when both the landed entry and its chain fail — to a binary search for
// the address's predecessor and successor base entries and their chains,
// which is guaranteed to contain any matching prefix. The fallback accesses
// are counted honestly and its activation rate is exposed via Fallbacks.
//
// Memory model: 4 bytes per trie node, 12 bytes per base-vector entry
// (string + length + next hop + chain pointer), 8 bytes per prefix-vector
// entry.
package lctrie

import (
	"sort"

	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/rtable"
)

const (
	trieNodeBytes    = 4
	baseEntryBytes   = 12
	prefixEntryBytes = 8
	// DefaultFillFactor is the paper's fill factor for the SPAL storage
	// comparison (Sec. 4).
	DefaultFillFactor = 0.25
)

// node is one packed trie node. branch == 0 marks a leaf whose adr indexes
// the base vector; otherwise adr is the index of the first of 2^branch
// children in the node array.
type node struct {
	branch uint8
	skip   uint8
	adr    uint32
}

// baseEntry is a prefix-free (maximal) prefix with its route and chain.
type baseEntry struct {
	prefix  ip.Prefix
	nextHop rtable.NextHop
	chain   int32 // index into pre, -1 when none
}

// preEntry is a prefix of some base entry, with its own chain link.
type preEntry struct {
	prefix  ip.Prefix
	nextHop rtable.NextHop
	chain   int32
}

// Trie is an immutable LC-trie built by New.
type Trie struct {
	nodes     []node
	base      []baseEntry
	pre       []preEntry
	fill      float64
	fallbacks int64
}

var _ lpm.Engine = (*Trie)(nil)

// New builds an LC-trie with the paper's default fill factor.
func New(t *rtable.Table) *Trie { return NewWithFill(t, DefaultFillFactor) }

// NewEngine adapts New to the lpm.Builder signature.
func NewEngine(t *rtable.Table) lpm.Engine { return New(t) }

// NewWithFill builds an LC-trie with an explicit fill factor in (0, 1].
func NewWithFill(t *rtable.Table, fill float64) *Trie {
	if fill <= 0 || fill > 1 {
		panic("lctrie: fill factor must be in (0,1]")
	}
	tr := &Trie{fill: fill}
	tr.split(t)
	if len(tr.base) > 0 {
		tr.nodes = append(tr.nodes, node{})
		tr.build(0, 0, len(tr.base), 0)
	}
	return tr
}

// split separates the table into base and prefix vectors and links chains.
// Routes are already sorted in (value, length) order, which puts a covering
// prefix immediately before everything it covers.
func (tr *Trie) split(t *rtable.Table) {
	routes := t.Routes()
	isInternal := make([]bool, len(routes))
	for i := range routes {
		if i+1 < len(routes) && routes[i].Prefix.Contains(routes[i+1].Prefix) {
			isInternal[i] = true
		}
	}
	// Nesting scan: the stack holds the chain of internal prefixes covering
	// the current route.
	type frame struct {
		prefix ip.Prefix
		preIdx int32
	}
	var stack []frame
	for i, r := range routes {
		for len(stack) > 0 && !stack[len(stack)-1].prefix.Contains(r.Prefix) {
			stack = stack[:len(stack)-1]
		}
		chain := int32(-1)
		if len(stack) > 0 {
			chain = stack[len(stack)-1].preIdx
		}
		if isInternal[i] {
			tr.pre = append(tr.pre, preEntry{prefix: r.Prefix, nextHop: r.NextHop, chain: chain})
			stack = append(stack, frame{prefix: r.Prefix, preIdx: int32(len(tr.pre) - 1)})
		} else {
			tr.base = append(tr.base, baseEntry{prefix: r.Prefix, nextHop: r.NextHop, chain: chain})
		}
	}
}

// bitsOf extracts k bits of v starting at bit position pos (b0 = MSB),
// reading zero padding beyond bit 31.
func bitsOf(v uint32, pos, k int) uint32 {
	if pos >= 32 || k == 0 {
		return 0
	}
	w := v << uint(pos) // drop consumed bits
	return w >> uint(32-k)
}

// commonPrefixLen returns the number of leading bits p and q share, capped
// at 32 (padding bits count: base strings are compared as 32-bit values, as
// in the original implementation).
func commonPrefixLen(p, q uint32) int {
	x := p ^ q
	if x == 0 {
		return 32
	}
	n := 0
	for x&0x80000000 == 0 {
		x <<= 1
		n++
	}
	return n
}

// build recursively constructs the subtrie for base[first:first+n] into
// nodes[pos], with "prefix" bits already consumed.
func (tr *Trie) build(pos, first, n, prefix int) {
	if n == 1 {
		tr.nodes[pos] = node{branch: 0, skip: 0, adr: uint32(first)}
		return
	}
	// Path compression: skip the bits all strings share beyond prefix.
	newPrefix := commonPrefixLen(tr.base[first].prefix.Value, tr.base[first+n-1].prefix.Value)
	if newPrefix > 32 {
		newPrefix = 32
	}
	skip := newPrefix - prefix

	// Level compression: grow branch while the fill criterion holds.
	branch := 1
	for {
		b := branch + 1
		if newPrefix+b > 32 || float64(n) < tr.fill*float64(int(1)<<b) {
			break
		}
		cnt := 0
		i := first
		for pat := 0; pat < 1<<b; pat++ {
			found := false
			for i < first+n && bitsOf(tr.base[i].prefix.Value, newPrefix, b) == uint32(pat) {
				i++
				found = true
			}
			if found {
				cnt++
			}
		}
		if float64(cnt) < tr.fill*float64(int(1)<<b) {
			break
		}
		branch = b
	}

	adr := len(tr.nodes)
	for i := 0; i < 1<<branch; i++ {
		tr.nodes = append(tr.nodes, node{})
	}
	tr.nodes[pos] = node{branch: uint8(branch), skip: uint8(skip), adr: uint32(adr)}

	p := first
	for pat := 0; pat < 1<<branch; pat++ {
		k := 0
		for p+k < first+n && bitsOf(tr.base[p+k].prefix.Value, newPrefix, branch) == uint32(pat) {
			k++
		}
		if k == 0 {
			// Empty subinterval: point at the neighbour sharing the longer
			// bit pattern with pat (Nilsson's heuristic).
			idx := p
			if p > first {
				patBits := uint32(pat)
				prevBits := bitsOf(tr.base[p-1].prefix.Value, newPrefix, branch)
				var nextBits uint32
				hasNext := p < first+n
				if hasNext {
					nextBits = bitsOf(tr.base[p].prefix.Value, newPrefix, branch)
				}
				if !hasNext || commonPrefixLen(prevBits<<(32-branch), patBits<<(32-branch)) >=
					commonPrefixLen(nextBits<<(32-branch), patBits<<(32-branch)) {
					idx = p - 1
				}
			}
			if idx >= first+n {
				idx = first + n - 1
			}
			tr.nodes[adr+pat] = node{branch: 0, skip: 0, adr: uint32(idx)}
			continue
		}
		tr.build(adr+pat, p, k, newPrefix+branch)
		p += k
	}
}

// matchChain walks a chain looking for the longest prefix matching a.
func (tr *Trie) matchChain(chain int32, a ip.Addr, accesses *int) (rtable.NextHop, bool) {
	for c := chain; c >= 0; c = tr.pre[c].chain {
		*accesses++
		if tr.pre[c].prefix.Matches(a) {
			return tr.pre[c].nextHop, true
		}
	}
	return rtable.NoNextHop, false
}

// Lookup implements lpm.Engine: trie descent, base-entry comparison, chain
// rescue, and (rarely) the guaranteed predecessor/successor fallback.
func (tr *Trie) Lookup(a ip.Addr) (rtable.NextHop, int, bool) {
	if len(tr.base) == 0 {
		return rtable.NoNextHop, 0, false
	}
	accesses := 0
	n := tr.nodes[0]
	accesses++
	pos := int(n.skip)
	for n.branch != 0 {
		idx := bitsOf(a, pos, int(n.branch))
		pos += int(n.branch)
		n = tr.nodes[int(n.adr)+int(idx)]
		accesses++
		pos += int(n.skip) // child's skip; unused garbage when the child is a leaf
	}
	e := &tr.base[n.adr]
	accesses++ // base-entry fetch
	if e.prefix.Matches(a) {
		return e.nextHop, accesses, true
	}
	if nh, ok := tr.matchChain(e.chain, a, &accesses); ok {
		return nh, accesses, true
	}

	// Guaranteed fallback: any prefix matching a must cover either the
	// predecessor or the successor base entry of a (see package comment).
	tr.fallbacks++
	lo := sort.Search(len(tr.base), func(i int) bool { return tr.base[i].prefix.Value > a })
	accesses += 5 // modelled binary-search cost (log2 of a 32-entry window)
	for _, i := range []int{lo - 1, lo} {
		if i < 0 || i >= len(tr.base) {
			continue
		}
		cand := &tr.base[i]
		accesses++
		if cand.prefix.Matches(a) {
			return cand.nextHop, accesses, true
		}
		if nh, ok := tr.matchChain(cand.chain, a, &accesses); ok {
			return nh, accesses, true
		}
	}
	return rtable.NoNextHop, accesses, false
}

// MemoryBytes reports the modelled footprint: packed trie nodes plus base
// and prefix vectors.
func (tr *Trie) MemoryBytes() int {
	return len(tr.nodes)*trieNodeBytes + len(tr.base)*baseEntryBytes + len(tr.pre)*prefixEntryBytes
}

// Name implements lpm.Engine.
func (tr *Trie) Name() string { return "lctrie" }

// Nodes returns the trie-node count.
func (tr *Trie) Nodes() int { return len(tr.nodes) }

// Vectors returns the base- and prefix-vector sizes.
func (tr *Trie) Vectors() (base, pre int) { return len(tr.base), len(tr.pre) }

// Fallbacks returns how many lookups needed the predecessor/successor
// rescue path since construction.
func (tr *Trie) Fallbacks() int64 { return tr.fallbacks }
