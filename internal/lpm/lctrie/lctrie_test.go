package lctrie

import (
	"testing"

	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/rtable"
	"spal/internal/stats"
)

func table(cidrs ...string) *rtable.Table {
	var routes []rtable.Route
	for i, c := range cidrs {
		routes = append(routes, rtable.Route{Prefix: ip.MustPrefix(c), NextHop: rtable.NextHop(i + 1)})
	}
	return rtable.New(routes)
}

func TestSplitVectors(t *testing.T) {
	// 10/8 covers both /16s -> internal; the /16s are maximal -> base.
	tr := New(table("10.0.0.0/8", "10.1.0.0/16", "10.2.0.0/16"))
	base, pre := tr.Vectors()
	if base != 2 || pre != 1 {
		t.Errorf("vectors = %d/%d, want 2/1", base, pre)
	}
}

func TestChainRescue(t *testing.T) {
	tr := New(table("10.0.0.0/8", "10.1.0.0/16", "10.2.0.0/16"))
	// 10.200.0.1 matches only the internal /8: must be rescued via chain.
	a, _ := ip.ParseAddr("10.200.0.1")
	nh, _, ok := tr.Lookup(a)
	if !ok || nh != 1 {
		t.Errorf("chain rescue failed: (%d,%v)", nh, ok)
	}
}

func TestNestedChains(t *testing.T) {
	tr := New(table("10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24", "10.1.2.128/25", "10.3.0.0/16"))
	cases := []struct {
		addr string
		want rtable.NextHop
	}{
		{"10.1.2.200", 4},
		{"10.1.2.3", 3},
		{"10.1.77.1", 2},
		{"10.99.0.1", 1},
		{"10.3.3.3", 5},
	}
	for _, c := range cases {
		a, _ := ip.ParseAddr(c.addr)
		if nh, _, _ := tr.Lookup(a); nh != c.want {
			t.Errorf("Lookup(%s) = %d, want %d", c.addr, nh, c.want)
		}
	}
}

func TestFillFactorAffectsNodeCount(t *testing.T) {
	tbl := rtable.Small(20000, 31)
	loose := NewWithFill(tbl, 0.25)
	strict := NewWithFill(tbl, 1.0)
	// Lower fill factor -> wider branches -> shallower but larger trie.
	if loose.Nodes() <= strict.Nodes() {
		t.Errorf("fill 0.25 nodes (%d) should exceed fill 1.0 nodes (%d)",
			loose.Nodes(), strict.Nodes())
	}
	// Both must agree with the oracle.
	oracle := lpm.NewReference(tbl)
	rng := stats.NewRNG(5)
	for i := 0; i < 3000; i++ {
		a := tbl.RandomMatchedAddr(rng)
		w, _, _ := oracle.Lookup(a)
		if g, _, _ := loose.Lookup(a); g != w {
			t.Fatalf("fill 0.25 wrong at %s", ip.FormatAddr(a))
		}
		if g, _, _ := strict.Lookup(a); g != w {
			t.Fatalf("fill 1.0 wrong at %s", ip.FormatAddr(a))
		}
	}
}

func TestFillFactorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("fill factor 0 should panic")
		}
	}()
	NewWithFill(rtable.Small(10, 1), 0)
}

func TestBitsOf(t *testing.T) {
	v := uint32(0b10110000_00000000_00000000_00000000)
	if got := bitsOf(v, 0, 4); got != 0b1011 {
		t.Errorf("bitsOf(v,0,4) = %b", got)
	}
	if got := bitsOf(v, 1, 3); got != 0b011 {
		t.Errorf("bitsOf(v,1,3) = %b", got)
	}
	if got := bitsOf(v, 30, 4); got != 0 {
		t.Errorf("padding read: %b", got)
	}
	if got := bitsOf(v, 32, 4); got != 0 {
		t.Errorf("out of range: %b", got)
	}
}

func TestCommonPrefixLen(t *testing.T) {
	if commonPrefixLen(0xff000000, 0xff000000) != 32 {
		t.Error("identical values")
	}
	if commonPrefixLen(0x80000000, 0) != 0 {
		t.Error("MSB differs")
	}
	if commonPrefixLen(0x0a000000, 0x0b000000) != 7 {
		t.Error("10.x vs 11.x should share 7 bits")
	}
}

func TestSingleEntryAndEmpty(t *testing.T) {
	tr := New(table("10.0.0.0/8"))
	a, _ := ip.ParseAddr("10.5.5.5")
	if nh, _, ok := tr.Lookup(a); !ok || nh != 1 {
		t.Errorf("single-entry lookup = (%d,%v)", nh, ok)
	}
	empty := New(rtable.New(nil))
	if _, _, ok := empty.Lookup(a); ok {
		t.Error("empty trie must miss")
	}
}

func TestMemoryModel(t *testing.T) {
	tr := New(table("10.0.0.0/8", "10.1.0.0/16", "10.2.0.0/16"))
	want := tr.Nodes()*4 + 2*12 + 1*8
	if tr.MemoryBytes() != want {
		t.Errorf("MemoryBytes = %d, want %d", tr.MemoryBytes(), want)
	}
	if tr.Name() != "lctrie" {
		t.Error("Name mismatch")
	}
}

// The guaranteed fallback must keep the structure correct even on tables
// engineered to stress empty subintervals and short strings; count how
// often it fires on a realistic table (should be rare).
func TestFallbackRate(t *testing.T) {
	tbl := rtable.Small(20000, 37)
	tr := New(tbl)
	rng := stats.NewRNG(11)
	const n = 20000
	for i := 0; i < n; i++ {
		tr.Lookup(tbl.RandomMatchedAddr(rng))
	}
	if rate := float64(tr.Fallbacks()) / n; rate > 0.05 {
		t.Errorf("fallback rate = %.4f, want <= 0.05", rate)
	}
}
