package lpm_test

import (
	"testing"
	"testing/quick"

	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/lpm/bintrie"
	"spal/internal/lpm/dptrie"
	"spal/internal/lpm/flat"
	"spal/internal/lpm/lctrie"
	"spal/internal/lpm/lulea"
	"spal/internal/lpm/multibit"
	"spal/internal/lpm/rangebs"
	"spal/internal/lpm/stride24"
	"spal/internal/lpm/wbs"
	"spal/internal/rtable"
	"spal/internal/stats"
)

// builders lists every engine under test. stride24 is excluded from the
// high-volume sweeps (each instance allocates 32 MiB) and covered by its
// own cross-check below.
var builders = []lpm.Builder{
	bintrie.NewEngine,
	dptrie.NewEngine,
	lctrie.NewEngine,
	lulea.NewEngine,
	multibit.NewEngine,
	wbs.NewEngine,
	rangebs.NewEngine,
	flat.NewEngine,
}

// checkAgainstOracle verifies that an engine agrees with the hash oracle on
// a mixed workload of matched and uniform-random addresses.
func checkAgainstOracle(t *testing.T, e lpm.Engine, tbl *rtable.Table, n int, seed uint64) {
	t.Helper()
	oracle := lpm.NewReference(tbl)
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		var a ip.Addr
		if i%2 == 0 && tbl.Len() > 0 {
			a = tbl.RandomMatchedAddr(rng)
		} else {
			a = rng.Uint32()
		}
		wantNH, _, wantOK := oracle.Lookup(a)
		gotNH, acc, gotOK := e.Lookup(a)
		if gotOK != wantOK || (gotOK && gotNH != wantNH) {
			t.Fatalf("%s: Lookup(%s) = (%d,%v), oracle says (%d,%v)",
				e.Name(), ip.FormatAddr(a), gotNH, gotOK, wantNH, wantOK)
		}
		if acc < 0 {
			t.Fatalf("%s: negative access count", e.Name())
		}
	}
}

func TestEnginesAgreeWithOracleSynthetic(t *testing.T) {
	sizes := []int{1, 5, 73, 1000, 20000}
	for _, size := range sizes {
		tbl := rtable.Small(size, uint64(size)*13+1)
		for _, build := range builders {
			e := build(tbl)
			checkAgainstOracle(t, e, tbl, 4000, uint64(size))
		}
	}
}

func TestStride24AgreesWithOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates 32 MiB per table")
	}
	tbl := rtable.Small(5000, 99)
	checkAgainstOracle(t, stride24.NewEngine(tbl), tbl, 4000, 7)
}

// TestEnginesAgreeOnAdversarialTables exercises hand-built corner cases:
// default routes, nested chains, adjacent short/long prefixes (the LC-trie
// rescue path), and host routes.
func TestEnginesAgreeOnAdversarialTables(t *testing.T) {
	tables := map[string][]string{
		"default-only": {"0.0.0.0/0"},
		"deep-nest": {
			"0.0.0.0/0", "128.0.0.0/1", "192.0.0.0/2", "224.0.0.0/3",
			"240.0.0.0/4", "248.0.0.0/5", "252.0.0.0/6", "254.0.0.0/7",
			"255.0.0.0/8", "255.255.255.255/32",
		},
		"short-long-siblings": {
			// A short leaf next to a deep cluster: stresses level
			// compression over padded strings.
			"10.128.0.0/9", "10.0.0.0/15", "10.2.0.0/15", "10.4.1.0/24",
			"10.4.2.0/24", "10.4.3.0/24", "10.4.4.0/24", "10.4.5.0/24",
		},
		"host-routes": {
			"1.2.3.4/32", "1.2.3.5/32", "1.2.3.0/24", "1.2.0.0/16",
		},
		"exceptions": {
			"20.0.0.0/8", "20.1.0.0/16", "20.1.1.0/24", "20.1.1.128/25",
			"20.1.1.192/26", "20.1.1.224/27",
		},
	}
	for name, cidrs := range tables {
		var routes []rtable.Route
		for i, c := range cidrs {
			routes = append(routes, rtable.Route{Prefix: ip.MustPrefix(c), NextHop: rtable.NextHop(i + 1)})
		}
		tbl := rtable.New(routes)
		for _, build := range builders {
			e := build(tbl)
			// Exhaustive-ish: probe all boundary addresses of every prefix
			// plus randoms.
			oracle := lpm.NewReference(tbl)
			probe := func(a ip.Addr) {
				wantNH, _, wantOK := oracle.Lookup(a)
				gotNH, _, gotOK := e.Lookup(a)
				if gotOK != wantOK || (gotOK && gotNH != wantNH) {
					t.Errorf("%s/%s: Lookup(%s) = (%d,%v), want (%d,%v)",
						name, e.Name(), ip.FormatAddr(a), gotNH, gotOK, wantNH, wantOK)
				}
			}
			for _, r := range tbl.Routes() {
				probe(r.Prefix.FirstAddr())
				probe(r.Prefix.LastAddr())
				if r.Prefix.Len < 32 {
					probe(r.Prefix.FirstAddr() + 1)
					probe(r.Prefix.LastAddr() - 1)
				}
			}
			rng := stats.NewRNG(3)
			for i := 0; i < 2000; i++ {
				probe(rng.Uint32())
			}
		}
	}
}

func TestEnginesEmptyTable(t *testing.T) {
	tbl := rtable.New(nil)
	all := append(append([]lpm.Builder{}, builders...), stride24.NewEngine)
	if testing.Short() {
		all = builders
	}
	for _, build := range all {
		e := build(tbl)
		if nh, _, ok := e.Lookup(0x01020304); ok || nh != rtable.NoNextHop {
			t.Errorf("%s: empty table lookup should miss, got (%d,%v)", e.Name(), nh, ok)
		}
	}
}

// Property test: random tiny tables generated via quick must agree with
// the oracle at random addresses. This hits degenerate shapes (duplicate
// values, chains, /0, /32) the synthetic generator avoids.
func TestEnginesQuickProperty(t *testing.T) {
	f := func(raw []uint64, addrs []uint32) bool {
		var routes []rtable.Route
		for i, v := range raw {
			if i >= 50 {
				break
			}
			l := uint8((v >> 32) % 33)
			routes = append(routes, rtable.Route{
				Prefix:  ip.Prefix{Value: uint32(v), Len: l}.Canon(),
				NextHop: rtable.NextHop(i),
			})
		}
		tbl := rtable.New(routes)
		oracle := lpm.NewReference(tbl)
		for _, build := range builders {
			e := build(tbl)
			for _, a := range addrs {
				wantNH, _, wantOK := oracle.Lookup(a)
				gotNH, _, gotOK := e.Lookup(a)
				if gotOK != wantOK || (gotOK && gotNH != wantNH) {
					return false
				}
			}
			// Also probe each prefix's own base address.
			for _, r := range tbl.Routes() {
				wantNH, _, wantOK := oracle.Lookup(r.Prefix.FirstAddr())
				gotNH, _, gotOK := e.Lookup(r.Prefix.FirstAddr())
				if gotOK != wantOK || (gotOK && gotNH != wantNH) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestBatchEngineMatchesSingle is the BatchEngine ≡ Engine property: for
// every engine, resolving a slice through lpm.LookupAll (native
// LookupBatch where implemented, the single-key adapter otherwise) must
// yield element-for-element the same (next hop, accesses, ok) triples as
// per-key Lookup calls — including on duplicate addresses and across
// batch-chunk boundaries.
func TestBatchEngineMatchesSingle(t *testing.T) {
	check := func(tbl *rtable.Table, e lpm.Engine, seed uint64) {
		t.Helper()
		rng := stats.NewRNG(seed)
		// 200 addresses: crosses flat's 64-key chunk boundary, mixes
		// matched, random, and duplicated keys.
		addrs := make([]ip.Addr, 200)
		for i := range addrs {
			switch i % 3 {
			case 0:
				addrs[i] = tbl.RandomMatchedAddr(rng)
			case 1:
				addrs[i] = rng.Uint32()
			default:
				addrs[i] = addrs[i/2]
			}
		}
		out := make([]lpm.Result, len(addrs))
		lpm.LookupAll(e, addrs, out)
		for i, a := range addrs {
			nh, acc, ok := e.Lookup(a)
			got := out[i]
			if got.NextHop != nh || got.Accesses != int32(acc) || got.OK != ok {
				t.Fatalf("%s: batch[%d] for %s = (%d,%d,%v), single says (%d,%d,%v)",
					e.Name(), i, ip.FormatAddr(a), got.NextHop, got.Accesses, got.OK, nh, acc, ok)
			}
		}
	}
	all := append(append([]lpm.Builder{}, builders...), lpm.NewReferenceEngine)
	for _, size := range []int{1, 73, 5000} {
		tbl := rtable.Small(size, uint64(size)*17+5)
		for _, build := range all {
			check(tbl, build(tbl), uint64(size)+101)
		}
	}
	if !testing.Short() {
		tbl := rtable.Small(5000, 99) // one 32 MiB stride24 build per run
		check(tbl, stride24.NewEngine(tbl), 7)
	}
}

func TestMeanAccesses(t *testing.T) {
	tbl := rtable.Small(5000, 3)
	e := lulea.New(tbl)
	rng := stats.NewRNG(8)
	addrs := make([]ip.Addr, 2000)
	for i := range addrs {
		addrs[i] = tbl.RandomMatchedAddr(rng)
	}
	m := lpm.MeanAccesses(e, addrs)
	if m < 4 || m > 12 {
		t.Errorf("lulea mean accesses = %.2f, want within [4,12]", m)
	}
	if lpm.MeanAccesses(e, nil) != 0 {
		t.Error("MeanAccesses over no addresses should be 0")
	}
}

func TestReferenceMemoryAndName(t *testing.T) {
	tbl := rtable.Small(10, 2)
	r := lpm.NewReference(tbl)
	if r.Name() != "reference" || r.MemoryBytes() != 70 {
		t.Errorf("got %s/%d", r.Name(), r.MemoryBytes())
	}
}
