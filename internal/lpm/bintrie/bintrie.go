// Package bintrie implements the plain (uncompressed) binary trie. It is
// the simplest single-bit-inspection structure: one node per distinct
// prefix bit-path, search walks one address bit per step.
//
// It serves three roles in this repository: a readable reference structure,
// the upper bound on single-bit search cost that the DP trie improves on,
// and the worst-case-depth datapoint for the storage/latency comparisons.
//
// Memory model: each node holds two child pointers (4 bytes each in the
// modelled 32-bit SRAM layout), a 2-byte next hop, and a 1-byte valid flag:
// 11 bytes per node.
package bintrie

import (
	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/rtable"
)

const nodeBytes = 11

type node struct {
	child    [2]*node
	nextHop  rtable.NextHop
	hasRoute bool
}

// Trie is an immutable binary trie built by New.
type Trie struct {
	root     *node
	nodes    int
	maxDepth int
}

var (
	_ lpm.Engine        = (*Trie)(nil)
	_ lpm.DynamicEngine = (*Trie)(nil)
)

// New builds the trie from a table snapshot.
func New(t *rtable.Table) *Trie {
	tr := &Trie{root: &node{}, nodes: 1}
	for _, r := range t.Routes() {
		tr.insert(r.Prefix, r.NextHop)
	}
	return tr
}

// NewEngine adapts New to the lpm.Builder signature.
func NewEngine(t *rtable.Table) lpm.Engine { return New(t) }

func (tr *Trie) insert(p ip.Prefix, nh rtable.NextHop) {
	n := tr.root
	for d := 0; d < int(p.Len); d++ {
		b := ip.AddrBit(p.Value, d)
		if n.child[b] == nil {
			n.child[b] = &node{}
			tr.nodes++
		}
		n = n.child[b]
	}
	n.nextHop = nh
	n.hasRoute = true
	if int(p.Len) > tr.maxDepth {
		tr.maxDepth = int(p.Len)
	}
}

// Lookup walks one bit per step, remembering the deepest route passed.
// Every node visit is one modelled memory access.
func (tr *Trie) Lookup(a ip.Addr) (rtable.NextHop, int, bool) {
	n := tr.root
	best := rtable.NoNextHop
	found := false
	accesses := 0
	for d := 0; n != nil; d++ {
		accesses++
		if n.hasRoute {
			best = n.nextHop
			found = true
		}
		if d == 32 {
			break
		}
		n = n.child[ip.AddrBit(a, d)]
	}
	return best, accesses, found
}

// MemoryBytes reports the modelled footprint (11 bytes per node).
func (tr *Trie) MemoryBytes() int { return tr.nodes * nodeBytes }

// Name implements lpm.Engine.
func (tr *Trie) Name() string { return "bintrie" }

// Nodes returns the node count (for structure statistics).
func (tr *Trie) Nodes() int { return tr.nodes }

// MaxDepth returns the deepest route length, a lower bound on the
// worst-case access count.
func (tr *Trie) MaxDepth() int { return tr.maxDepth }
