package bintrie

import (
	"testing"
	"testing/quick"

	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/rtable"
	"spal/internal/stats"
)

func TestInsertDeleteRoundTrip(t *testing.T) {
	tr := New(rtable.New(nil))
	p := ip.MustPrefix("10.1.0.0/16")
	tr.Insert(p, 5)
	a, _ := ip.ParseAddr("10.1.2.3")
	if nh, _, ok := tr.Lookup(a); !ok || nh != 5 {
		t.Fatalf("after insert: (%d,%v)", nh, ok)
	}
	if !tr.Delete(p) {
		t.Fatal("Delete returned false")
	}
	if _, _, ok := tr.Lookup(a); ok {
		t.Fatal("route survives delete")
	}
	if tr.Nodes() != 1 {
		t.Errorf("pruning left %d nodes, want 1 (root)", tr.Nodes())
	}
}

func TestDeleteAbsent(t *testing.T) {
	tr := New(table("10.0.0.0/8"))
	if tr.Delete(ip.MustPrefix("11.0.0.0/8")) {
		t.Error("deleting absent prefix should report false")
	}
	if tr.Delete(ip.MustPrefix("10.0.0.0/16")) {
		t.Error("deleting non-route node should report false")
	}
	a, _ := ip.ParseAddr("10.1.1.1")
	if _, _, ok := tr.Lookup(a); !ok {
		t.Error("failed deletes must not damage the trie")
	}
}

func TestDeleteKeepsNestedRoutes(t *testing.T) {
	tr := New(table("10.0.0.0/8", "10.1.0.0/16"))
	if !tr.Delete(ip.MustPrefix("10.0.0.0/8")) {
		t.Fatal("delete /8")
	}
	a, _ := ip.ParseAddr("10.1.2.3")
	if nh, _, _ := tr.Lookup(a); nh != 2 {
		t.Error("/16 must survive deleting its covering /8")
	}
	a, _ = ip.ParseAddr("10.200.0.1")
	if _, _, ok := tr.Lookup(a); ok {
		t.Error("address outside /16 must now miss")
	}
}

// Property: a random interleaving of inserts and deletes leaves the trie
// agreeing with a shadow map-based oracle.
func TestDynamicMatchesShadow(t *testing.T) {
	f := func(ops []uint64) bool {
		tr := New(rtable.New(nil))
		shadow := map[ip.Prefix]rtable.NextHop{}
		for i, op := range ops {
			p := ip.Prefix{Value: uint32(op), Len: uint8((op >> 32) % 33)}.Canon()
			if op>>40&1 == 0 || len(shadow) == 0 {
				nh := rtable.NextHop(i % 1000)
				tr.Insert(p, nh)
				shadow[p] = nh
			} else {
				delete(shadow, p)
				tr.Delete(p)
			}
		}
		// Rebuild the oracle from the shadow and compare lookups.
		var routes []rtable.Route
		for p, nh := range shadow {
			routes = append(routes, rtable.Route{Prefix: p, NextHop: nh})
		}
		oracle := lpm.NewReference(rtable.New(routes))
		rng := stats.NewRNG(9)
		for i := 0; i < 200; i++ {
			a := rng.Uint32()
			wNH, _, wOK := oracle.Lookup(a)
			gNH, _, gOK := tr.Lookup(a)
			if wOK != gOK || (wOK && wNH != gNH) {
				return false
			}
		}
		// Probing each live prefix's base address too.
		for p := range shadow {
			wNH, _, _ := oracle.Lookup(p.FirstAddr())
			gNH, _, gOK := tr.Lookup(p.FirstAddr())
			if !gOK || wNH != gNH {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestDeleteDefaultRoute(t *testing.T) {
	tr := New(table("0.0.0.0/0"))
	if !tr.Delete(ip.Prefix{}) {
		t.Fatal("delete default route")
	}
	if _, _, ok := tr.Lookup(123); ok {
		t.Error("default route survives delete")
	}
	if tr.Nodes() != 1 {
		t.Errorf("nodes = %d", tr.Nodes())
	}
}
