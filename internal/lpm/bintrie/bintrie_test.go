package bintrie

import (
	"testing"

	"spal/internal/ip"
	"spal/internal/rtable"
)

func table(cidrs ...string) *rtable.Table {
	var routes []rtable.Route
	for i, c := range cidrs {
		routes = append(routes, rtable.Route{Prefix: ip.MustPrefix(c), NextHop: rtable.NextHop(i + 1)})
	}
	return rtable.New(routes)
}

func TestNodeCount(t *testing.T) {
	// 10.0.0.0/8 creates 8 new nodes below the root; 10.0.0.0/16 adds 8
	// more along the same path.
	tr := New(table("10.0.0.0/8", "10.0.0.0/16"))
	if tr.Nodes() != 1+16 {
		t.Errorf("Nodes = %d, want 17", tr.Nodes())
	}
	if tr.MemoryBytes() != 17*11 {
		t.Errorf("MemoryBytes = %d", tr.MemoryBytes())
	}
	if tr.MaxDepth() != 16 {
		t.Errorf("MaxDepth = %d", tr.MaxDepth())
	}
}

func TestLookupAccessesBounded(t *testing.T) {
	tr := New(table("10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"))
	a, _ := ip.ParseAddr("10.1.2.3")
	nh, acc, ok := tr.Lookup(a)
	if !ok || nh != 3 {
		t.Fatalf("Lookup = (%d,%v)", nh, ok)
	}
	// Walks at most depth+1 nodes (root..deepest existing node on path).
	if acc < 25 || acc > 33 {
		t.Errorf("accesses = %d, want ~25 (24-bit path + root)", acc)
	}
}

func TestDefaultRoute(t *testing.T) {
	tr := New(table("0.0.0.0/0"))
	nh, acc, ok := tr.Lookup(0xdeadbeef)
	if !ok || nh != 1 {
		t.Fatalf("default route miss: (%d,%v)", nh, ok)
	}
	if acc != 1 {
		t.Errorf("default-only lookup should touch 1 node, got %d", acc)
	}
}

func TestHostRoute(t *testing.T) {
	tr := New(table("1.2.3.4/32", "1.2.3.0/24"))
	a, _ := ip.ParseAddr("1.2.3.4")
	if nh, _, _ := tr.Lookup(a); nh != 1 {
		t.Errorf("host route should win: nh=%d", nh)
	}
	a, _ = ip.ParseAddr("1.2.3.5")
	if nh, _, _ := tr.Lookup(a); nh != 2 {
		t.Errorf("/24 should match neighbour: nh=%d", nh)
	}
}

func TestName(t *testing.T) {
	if New(table()).Name() != "bintrie" {
		t.Error("Name mismatch")
	}
}
