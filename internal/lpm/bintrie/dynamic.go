package bintrie

import (
	"spal/internal/ip"
	"spal/internal/rtable"
)

// Insert adds or replaces a route in place. The binary trie supports
// incremental updates (cf. the paper's Basu/Narlikar citation on
// incremental forwarding-engine updates); SPAL proper rebuilds per-LC
// tables and flushes LR-caches, but a downstream user updating a single
// LC's trie between rebuilds can do so here.
func (tr *Trie) Insert(p ip.Prefix, nh rtable.NextHop) {
	tr.insert(p.Canon(), nh)
}

// Delete removes a route, pruning now-useless nodes along the path. It
// reports whether the prefix was present.
func (tr *Trie) Delete(p ip.Prefix) bool {
	p = p.Canon()
	// Collect the path so pruning can walk back up.
	path := make([]*node, 0, int(p.Len)+1)
	n := tr.root
	for d := 0; d < int(p.Len); d++ {
		path = append(path, n)
		n = n.child[ip.AddrBit(p.Value, d)]
		if n == nil {
			return false
		}
	}
	if !n.hasRoute {
		return false
	}
	n.hasRoute = false
	n.nextHop = 0
	// Prune childless, routeless nodes bottom-up (never the root).
	for d := int(p.Len) - 1; d >= 0; d-- {
		if n.hasRoute || n.child[0] != nil || n.child[1] != nil {
			break
		}
		parent := path[d]
		parent.child[ip.AddrBit(p.Value, d)] = nil
		tr.nodes--
		n = parent
	}
	return true
}
