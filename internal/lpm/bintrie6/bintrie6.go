// Package bintrie6 is the 128-bit counterpart of package bintrie: a plain
// binary trie over IPv6 prefixes. Together with partition.Partition6 it
// makes the paper's closing claim — "SPAL is feasibly applicable to IPv6"
// — executable end to end: fragment an IPv6 table, build one trie per
// line card, and look up at the home LC.
//
// Memory model: 11 bytes per node, as for the IPv4 binary trie (two
// 4-byte child pointers, 2-byte next hop, 1-byte flag). IPv6 tries are
// deeper, which is exactly the SRAM pressure the paper argues SPAL
// relieves (Sec. 1: "when IPv6 addressing is dealt with, the SRAM amount
// needed is likely to be several times higher").
package bintrie6

import (
	"spal/internal/ip"
)

const nodeBytes = 11

type node struct {
	child    [2]*node
	nextHop  uint16
	hasRoute bool
}

// Route pairs an IPv6 prefix with a next hop (mirrors partition.Route6).
type Route struct {
	Prefix  ip.Prefix6
	NextHop uint16
}

// Trie is a binary trie over IPv6 prefixes.
type Trie struct {
	root     *node
	nodes    int
	maxDepth int
}

// New builds the trie from routes; later duplicates replace earlier ones.
func New(routes []Route) *Trie {
	tr := &Trie{root: &node{}, nodes: 1}
	for _, r := range routes {
		tr.Insert(r.Prefix, r.NextHop)
	}
	return tr
}

// Insert adds or replaces a route in place.
func (tr *Trie) Insert(p ip.Prefix6, nh uint16) {
	p = p.Canon()
	n := tr.root
	for d := 0; d < int(p.Len); d++ {
		b := ip.Addr6Bit(p.Value, d)
		if n.child[b] == nil {
			n.child[b] = &node{}
			tr.nodes++
		}
		n = n.child[b]
	}
	n.nextHop = nh
	n.hasRoute = true
	if int(p.Len) > tr.maxDepth {
		tr.maxDepth = int(p.Len)
	}
}

// Delete removes a route, pruning dead branches; it reports presence.
func (tr *Trie) Delete(p ip.Prefix6) bool {
	p = p.Canon()
	path := make([]*node, 0, int(p.Len))
	n := tr.root
	for d := 0; d < int(p.Len); d++ {
		path = append(path, n)
		n = n.child[ip.Addr6Bit(p.Value, d)]
		if n == nil {
			return false
		}
	}
	if !n.hasRoute {
		return false
	}
	n.hasRoute = false
	n.nextHop = 0
	for d := int(p.Len) - 1; d >= 0; d-- {
		if n.hasRoute || n.child[0] != nil || n.child[1] != nil {
			break
		}
		parent := path[d]
		parent.child[ip.Addr6Bit(p.Value, d)] = nil
		tr.nodes--
		n = parent
	}
	return true
}

// Lookup walks one address bit per modelled memory access, remembering
// the deepest route passed.
func (tr *Trie) Lookup(a ip.Addr6) (nh uint16, accesses int, ok bool) {
	n := tr.root
	for d := 0; n != nil; d++ {
		accesses++
		if n.hasRoute {
			nh = n.nextHop
			ok = true
		}
		if d == 128 {
			break
		}
		n = n.child[ip.Addr6Bit(a, d)]
	}
	return nh, accesses, ok
}

// MemoryBytes reports the modelled footprint.
func (tr *Trie) MemoryBytes() int { return tr.nodes * nodeBytes }

// Nodes returns the node count.
func (tr *Trie) Nodes() int { return tr.nodes }

// MaxDepth returns the deepest route length.
func (tr *Trie) MaxDepth() int { return tr.maxDepth }

// Name identifies the structure.
func (tr *Trie) Name() string { return "bintrie6" }
