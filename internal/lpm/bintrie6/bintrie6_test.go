package bintrie6

import (
	"testing"
	"testing/quick"

	"spal/internal/ip"
	"spal/internal/stats"
)

func mustP6(t testing.TB, s string) ip.Prefix6 {
	p, err := ip.ParsePrefix6(s)
	if err != nil {
		t.Fatalf("ParsePrefix6(%q): %v", s, err)
	}
	return p
}

// lookupLinear is the oracle.
func lookupLinear(routes []Route, a ip.Addr6) (uint16, bool) {
	bestLen := -1
	var nh uint16
	for _, r := range routes {
		// >= so later duplicates win, matching the trie's replace-on-insert.
		if r.Prefix.Matches(a) && int(r.Prefix.Len) >= bestLen {
			bestLen = int(r.Prefix.Len)
			nh = r.NextHop
		}
	}
	return nh, bestLen >= 0
}

func synth(n int, seed uint64) []Route {
	rng := stats.NewRNG(seed)
	routes := make([]Route, 0, n)
	for i := 0; i < n; i++ {
		l := uint8(8 + rng.Intn(57)) // /8../64
		v := ip.Addr6{Hi: rng.Uint64(), Lo: rng.Uint64()}
		routes = append(routes, Route{
			Prefix:  ip.Prefix6{Value: v, Len: l}.Canon(),
			NextHop: uint16(rng.Intn(64)),
		})
	}
	return routes
}

func TestAgreesWithLinear(t *testing.T) {
	routes := synth(2000, 3)
	tr := New(routes)
	rng := stats.NewRNG(5)
	for i := 0; i < 3000; i++ {
		var a ip.Addr6
		if i%2 == 0 {
			r := routes[rng.Intn(len(routes))]
			a = r.Prefix.Value
			a.Lo |= rng.Uint64() & ^ip.Mask6(r.Prefix.Len).Lo
			a.Hi |= rng.Uint64() & ^ip.Mask6(r.Prefix.Len).Hi
		} else {
			a = ip.Addr6{Hi: rng.Uint64(), Lo: rng.Uint64()}
		}
		wNH, wOK := lookupLinear(routes, a)
		gNH, _, gOK := tr.Lookup(a)
		if wOK != gOK || (wOK && wNH != gNH) {
			t.Fatalf("Lookup(%s) = (%d,%v), want (%d,%v)",
				ip.FormatAddr6(a), gNH, gOK, wNH, wOK)
		}
	}
}

func TestNestedAndHostRoutes(t *testing.T) {
	routes := []Route{
		{Prefix: mustP6(t, "2001:0db8:0000:0000:0000:0000:0000:0000/32"), NextHop: 1},
		{Prefix: mustP6(t, "2001:0db8:0001:0000:0000:0000:0000:0000/48"), NextHop: 2},
		{Prefix: mustP6(t, "2001:0db8:0001:0002:0000:0000:0000:0001/128"), NextHop: 3},
	}
	tr := New(routes)
	cases := []struct {
		addr string
		want uint16
	}{
		{"2001:0db8:0001:0002:0000:0000:0000:0001/128", 3},
		{"2001:0db8:0001:0002:0000:0000:0000:0002/128", 2},
		{"2001:0db8:00ff:0000:0000:0000:0000:0001/128", 1},
	}
	for _, c := range cases {
		a := mustP6(t, c.addr).Value
		if nh, _, _ := tr.Lookup(a); nh != c.want {
			t.Errorf("Lookup(%s) = %d, want %d", c.addr, nh, c.want)
		}
	}
	if _, _, ok := tr.Lookup(ip.Addr6{Hi: 0x3000 << 48}); ok {
		t.Error("unrelated address should miss")
	}
}

func TestInsertDelete(t *testing.T) {
	tr := New(nil)
	p := mustP6(t, "2001:0db8:0000:0000:0000:0000:0000:0000/32")
	tr.Insert(p, 7)
	if nh, _, ok := tr.Lookup(p.Value); !ok || nh != 7 {
		t.Fatal("insert failed")
	}
	if !tr.Delete(p) {
		t.Fatal("delete failed")
	}
	if _, _, ok := tr.Lookup(p.Value); ok {
		t.Fatal("route survives delete")
	}
	if tr.Nodes() != 1 {
		t.Errorf("nodes = %d after prune", tr.Nodes())
	}
	if tr.Delete(p) {
		t.Error("double delete should report false")
	}
}

func TestDepthAndMemory(t *testing.T) {
	routes := synth(500, 9)
	tr := New(routes)
	if tr.MaxDepth() > 64 || tr.MaxDepth() < 8 {
		t.Errorf("MaxDepth = %d", tr.MaxDepth())
	}
	if tr.MemoryBytes() != tr.Nodes()*11 {
		t.Error("memory model mismatch")
	}
	if tr.Name() != "bintrie6" {
		t.Error("Name mismatch")
	}
	// IPv6 tries on equal prefix counts are markedly larger than the
	// table itself — the paper's SRAM-pressure argument.
	if tr.Nodes() < len(routes)*4 {
		t.Errorf("nodes = %d for %d routes: suspiciously compact", tr.Nodes(), len(routes))
	}
}

// Property: insert/delete interleavings agree with a shadow map.
func TestDynamicShadow(t *testing.T) {
	f := func(ops []uint64) bool {
		tr := New(nil)
		shadow := map[ip.Prefix6]uint16{}
		for i, op := range ops {
			p := ip.Prefix6{
				Value: ip.Addr6{Hi: op * 0x9e3779b97f4a7c15, Lo: op},
				Len:   uint8(op % 65),
			}.Canon()
			if op>>40&1 == 0 || len(shadow) == 0 {
				tr.Insert(p, uint16(i))
				shadow[p] = uint16(i)
			} else {
				delete(shadow, p)
				tr.Delete(p)
			}
		}
		var routes []Route
		for p, nh := range shadow {
			routes = append(routes, Route{Prefix: p, NextHop: nh})
		}
		for p := range shadow {
			wNH, _ := lookupLinear(routes, p.Value)
			gNH, _, gOK := tr.Lookup(p.Value)
			if !gOK || wNH != gNH {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
