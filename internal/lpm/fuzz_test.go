package lpm_test

import (
	"encoding/binary"
	"testing"

	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/rtable"
)

// decodeTable derives a routing table and probe addresses from raw fuzz
// bytes: 5 bytes per route (4 value + 1 length), the tail as addresses.
func decodeTable(data []byte) (*rtable.Table, []ip.Addr) {
	var routes []rtable.Route
	i := 0
	for ; i+5 <= len(data) && len(routes) < 64; i += 5 {
		v := binary.BigEndian.Uint32(data[i:])
		l := uint8(data[i+4]) % 33
		routes = append(routes, rtable.Route{
			Prefix:  ip.Prefix{Value: v, Len: l}.Canon(),
			NextHop: rtable.NextHop(i),
		})
	}
	var addrs []ip.Addr
	for ; i+4 <= len(data) && len(addrs) < 64; i += 4 {
		addrs = append(addrs, binary.BigEndian.Uint32(data[i:]))
	}
	return rtable.New(routes), addrs
}

// FuzzEnginesAgree cross-checks every engine against the oracle on
// fuzz-derived tables — the deepest correctness net in the repository.
func FuzzEnginesAgree(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{10, 0, 0, 0, 8, 10, 1, 0, 0, 16, 10, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 0, 0, 255, 255, 255, 255, 32, 1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		tbl, addrs := decodeTable(data)
		oracle := lpm.NewReference(tbl)
		for _, build := range builders {
			e := build(tbl)
			probe := func(a ip.Addr) {
				wNH, _, wOK := oracle.Lookup(a)
				gNH, _, gOK := e.Lookup(a)
				if wOK != gOK || (wOK && wNH != gNH) {
					t.Fatalf("%s: Lookup(%s) = (%d,%v), want (%d,%v)",
						e.Name(), ip.FormatAddr(a), gNH, gOK, wNH, wOK)
				}
			}
			for _, a := range addrs {
				probe(a)
			}
			for _, r := range tbl.Routes() {
				probe(r.Prefix.FirstAddr())
				probe(r.Prefix.LastAddr())
			}
		}
	})
}
