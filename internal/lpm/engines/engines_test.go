package engines

import (
	"testing"

	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/rtable"
)

func pfx(t *testing.T, s string) ip.Prefix {
	t.Helper()
	p, err := ip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func addr(t *testing.T, s string) ip.Addr {
	t.Helper()
	a, err := ip.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestDynamicRegistry keeps the dynamic-capability metadata honest: every
// engine flagged dynamic must actually build to an lpm.DynamicEngine whose
// Insert/Delete keep Lookup correct, and no unflagged engine may
// implement the interface (a new dynamic engine must be registered).
func TestDynamicRegistry(t *testing.T) {
	tbl := rtable.New([]rtable.Route{
		{Prefix: pfx(t, "10.0.0.0/8"), NextHop: 1},
		{Prefix: pfx(t, "10.1.0.0/16"), NextHop: 2},
	})
	for name, build := range registry {
		e := build(tbl)
		de, ok := e.(lpm.DynamicEngine)
		if ok != IsDynamic(name) {
			t.Fatalf("engine %q: implements DynamicEngine=%v but IsDynamic=%v", name, ok, IsDynamic(name))
		}
		if !ok {
			continue
		}
		de.Insert(pfx(t, "10.1.2.0/24"), 7)
		if nh, _, ok := de.Lookup(addr(t, "10.1.2.3")); !ok || nh != 7 {
			t.Fatalf("engine %q: after Insert, got nh=%d ok=%v, want 7", name, nh, ok)
		}
		if !de.Delete(pfx(t, "10.1.0.0/16")) {
			t.Fatalf("engine %q: Delete of present prefix returned false", name)
		}
		if nh, _, ok := de.Lookup(addr(t, "10.1.9.9")); !ok || nh != 1 {
			t.Fatalf("engine %q: after Delete, got nh=%d ok=%v, want ancestor 1", name, nh, ok)
		}
	}
	if got := DynamicNames(); len(got) != len(dynamic) {
		t.Fatalf("DynamicNames() = %v, want %d names", got, len(dynamic))
	}
}
