// Package engines is the name → builder registry for every
// longest-prefix-matching engine in the repository. It exists so the
// router's WithEngineName option, the spal façade, and both CLIs resolve
// engine names through one table instead of each maintaining its own
// copy (which is how a new engine used to miss a frontend).
package engines

import (
	"fmt"
	"sort"
	"strings"

	"spal/internal/lpm"
	"spal/internal/lpm/bintrie"
	"spal/internal/lpm/dptrie"
	"spal/internal/lpm/flat"
	"spal/internal/lpm/lctrie"
	"spal/internal/lpm/lulea"
	"spal/internal/lpm/multibit"
	"spal/internal/lpm/rangebs"
	"spal/internal/lpm/stride24"
	"spal/internal/lpm/wbs"
)

var registry = map[string]lpm.Builder{
	"reference": lpm.NewReferenceEngine,
	"bintrie":   bintrie.NewEngine,
	"dptrie":    dptrie.NewEngine,
	"lctrie":    lctrie.NewEngine,
	"lulea":     lulea.NewEngine,
	"multibit":  multibit.NewEngine,
	"wbs":       wbs.NewEngine,
	"rangebs":   rangebs.NewEngine,
	"stride24":  stride24.NewEngine,
	"flat":      flat.NewEngine,
}

// dynamic names the engines whose built structures implement
// lpm.DynamicEngine (in-place Insert/Delete), so the router's incremental
// update plane can stream announces/withdraws into them instead of
// rebuilding. Kept honest by TestDynamicRegistry, which builds each one
// and type-asserts.
var dynamic = map[string]bool{
	"bintrie": true,
	"dptrie":  true,
}

// IsDynamic reports whether the named engine supports in-place updates.
func IsDynamic(name string) bool { return dynamic[name] }

// DynamicNames returns the names of the dynamic engines, sorted.
func DynamicNames() []string {
	out := make([]string, 0, len(dynamic))
	for k := range dynamic {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Builders returns a fresh copy of the registry (callers may mutate it).
func Builders() map[string]lpm.Builder {
	out := make(map[string]lpm.Builder, len(registry))
	for k, v := range registry {
		out[k] = v
	}
	return out
}

// Lookup resolves an engine name; the error lists every valid name.
func Lookup(name string) (lpm.Builder, error) {
	if b, ok := registry[name]; ok {
		return b, nil
	}
	return nil, fmt.Errorf("unknown engine %q (have %s)", name, strings.Join(Names(), ", "))
}

// Names returns the registered engine names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
