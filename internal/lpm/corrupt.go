// Corruption-injection wrapper: a poison overlay over any Engine, used by
// the router's integrity subsystem to model a bit-flipped trie node. A
// poisoned range serves a fixed wrong verdict until the overlay is cleared
// (which the self-healing rebuild does implicitly by constructing a fresh
// wrapper). The wrapper deliberately does NOT implement BatchEngine: the
// LookupAll adapter then falls back to per-key Lookup calls, so the batch
// data plane sees exactly the same corrupted verdicts as the scalar path.
package lpm

import (
	"sync"

	"spal/internal/ip"
	"spal/internal/rtable"
)

// poisonRange is one corrupted region of the address space: every lookup
// inside [lo, hi] returns nh instead of the engine's answer.
type poisonRange struct {
	lo, hi ip.Addr
	nh     rtable.NextHop
}

// Corrupt wraps an Engine with a mutable poison overlay. Reads and writes
// are mutex-guarded so the injector (router control plane) and the owning
// LC goroutine can touch it from different goroutines; the wrapper only
// exists when corruption injection is enabled, so the lock never sits on a
// production hot path.
type Corrupt struct {
	mu     sync.RWMutex
	inner  Engine
	ranges []poisonRange
}

// NewCorrupt wraps inner in a poison overlay. The returned engine
// implements DynamicEngine when (and only when) inner does, so the
// router's in-place update path keeps its behavior — and corruption then
// survives incremental updates, exactly like real SRAM damage would.
func NewCorrupt(inner Engine) Engine {
	c := &Corrupt{inner: inner}
	if _, ok := inner.(DynamicEngine); ok {
		return &corruptDynamic{c}
	}
	return c
}

// AsCorrupt unwraps an engine produced by NewCorrupt, returning nil when e
// is not corruption-wrapped.
func AsCorrupt(e Engine) *Corrupt {
	switch v := e.(type) {
	case *Corrupt:
		return v
	case *corruptDynamic:
		return v.Corrupt
	}
	return nil
}

// Poison marks [lo, hi] as corrupted: lookups inside it return nh. The
// narrowest containing range wins when poisons nest.
func (c *Corrupt) Poison(lo, hi ip.Addr, nh rtable.NextHop) {
	c.mu.Lock()
	c.ranges = append(c.ranges, poisonRange{lo: lo, hi: hi, nh: nh})
	c.mu.Unlock()
}

// Clear removes every poison range, restoring the inner engine's answers.
func (c *Corrupt) Clear() {
	c.mu.Lock()
	c.ranges = nil
	c.mu.Unlock()
}

// PoisonCount returns the number of live poison ranges.
func (c *Corrupt) PoisonCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.ranges)
}

// Inner returns the wrapped engine.
func (c *Corrupt) Inner() Engine { return c.inner }

// Lookup consults the poison overlay first; clean addresses fall through
// to the inner engine.
func (c *Corrupt) Lookup(a ip.Addr) (rtable.NextHop, int, bool) {
	c.mu.RLock()
	best := -1
	for i, r := range c.ranges {
		if a < r.lo || a > r.hi {
			continue
		}
		if best < 0 || r.hi-r.lo < c.ranges[best].hi-c.ranges[best].lo {
			best = i
		}
	}
	if best >= 0 {
		nh := c.ranges[best].nh
		c.mu.RUnlock()
		return nh, 1, nh != rtable.NoNextHop
	}
	c.mu.RUnlock()
	return c.inner.Lookup(a)
}

// MemoryBytes reports the inner engine's footprint (the overlay models
// damage, not extra memory).
func (c *Corrupt) MemoryBytes() int { return c.inner.MemoryBytes() }

// Name identifies the wrapped algorithm unchanged, so registry-keyed
// metrics and reports stay stable under injection.
func (c *Corrupt) Name() string { return c.inner.Name() }

// corruptDynamic adds the DynamicEngine surface when the inner engine has
// one. In-place updates pass straight through; poison is left in place —
// a damaged node stays damaged until the scrubber forces a rebuild.
type corruptDynamic struct {
	*Corrupt
}

func (c *corruptDynamic) Insert(p ip.Prefix, nh rtable.NextHop) {
	c.inner.(DynamicEngine).Insert(p, nh)
}

func (c *corruptDynamic) Delete(p ip.Prefix) bool {
	return c.inner.(DynamicEngine).Delete(p)
}
