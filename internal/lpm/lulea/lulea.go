// Package lulea implements the Degermark/Brodnik/Carlsson/Pink compressed
// forwarding table ("Small Forwarding Tables for Fast Routing Lookups",
// SIGCOMM 1997) — the "Lulea trie" the SPAL paper adopts for its 40-cycle
// FE lookup model.
//
// The structure has three levels with strides 16, 8 and 8. Each level is a
// conceptual array of slots (2^16 for level 1, 256 per chunk for levels 2
// and 3) compressed with the head/bit-vector scheme:
//
//   - a slot is a *head* when its pointer differs from the previous slot's
//     (slot 0 is always a head), so runs of equal pointers cost one entry;
//   - the bit vector is split into 16-bit masks; a codeword per mask holds
//     the mask plus a 6-bit offset (heads since the enclosing base point);
//   - a base index per four codewords anchors the offsets;
//   - maptable[mask][bit] gives the number of heads in the mask up to a bit
//     position, so pointer index = base + offset + maptable(...) - 1.
//
// Pointers are tagged: a leaf pointer carries the next hop (or "no route"),
// a chunk pointer the index of a next-level chunk. Level 2/3 chunks come in
// the paper's three densities: sparse (<= 8 heads: eight 1-byte offsets +
// pointers, 2 memory accesses), dense (<= 64 heads: codewords without base
// indexes, 3 accesses) and very dense (codewords + base indexes, 4
// accesses, same as level 1).
//
// Fidelity note: genuine Lulea encodes the 16-bit mask as a 10-bit index
// into the table of 678 masks realizable by complete prune expansion; we
// store the mask verbatim (the Go struct is wider) but model MemoryBytes
// with the paper's on-chip sizes: 2-byte codewords, 2-byte base indexes,
// 2-byte pointers, and one shared 5,424-byte maptable. Access counting
// charges the maptable lookup as one memory access, as the original does.
package lulea

import (
	"math/bits"
	"sort"

	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/rtable"
)

// Tagged pointer: bit 31 set means "chunk index at the next level";
// otherwise the payload is a next hop, with noRoute meaning no match.
type pointer uint32

const (
	chunkTag         = pointer(1) << 31
	noRoute          = pointer(0x7fffffff)
	maptableBytes    = 678 * 16 / 2 // 678 masks x 16 positions x 4 bits
	codewordBytes    = 2
	baseIndexBytes   = 2
	pointerBytes     = 2
	chunkHandleBytes = 4 // per-chunk directory entry
	sparseChunkHeads = 8
	denseChunkHeads  = 64
	level1Slots      = 1 << 16
	chunkSlots       = 256
	wordsPerBase     = 4 // one base index anchors four codewords
	slotsPerWord     = 16
)

func leaf(nh rtable.NextHop) pointer { return pointer(nh) }

func (p pointer) isChunk() bool { return p&chunkTag != 0 }

func (p pointer) payload() uint32 { return uint32(p &^ chunkTag) }

// codeword is the genuine 16-bit Lulea codeword: a 10-bit maptable id
// naming the word's head mask (one of the 678 legal masks, see
// maptable.go) plus the 6-bit head count since the enclosing base point.
type codeword struct {
	mask   maskID
	offset uint16
}

// chunkKind selects the chunk encoding by head count.
type chunkKind uint8

const (
	sparse chunkKind = iota
	dense
	veryDense
)

// chunk is a compressed 256-slot array at level 2 or 3.
type chunk struct {
	kind    chunkKind
	offsets []uint8    // sparse: head slot positions, ascending
	code    []codeword // dense/veryDense: 16 codewords
	base    []uint32   // veryDense: 4 base indexes
	ptrs    []pointer
}

// Trie is an immutable Lulea forwarding table built by New.
type Trie struct {
	code     []codeword // 4096 level-1 codewords
	base     []uint32   // 1024 level-1 base indexes
	ptrs     []pointer  // level-1 head pointers
	l2, l3   []chunk
	memBytes int
}

var _ lpm.Engine = (*Trie)(nil)

// NewEngine adapts New to the lpm.Builder signature.
func NewEngine(t *rtable.Table) lpm.Engine { return New(t) }

// New builds the three-level structure from a table snapshot.
func New(t *rtable.Table) *Trie {
	b := builder{}
	b.bucket(t)
	tr := b.build()
	tr.memBytes = tr.computeMemory()
	return tr
}

// builder groups prefixes by level before painting slot arrays.
type builder struct {
	l1 []rtable.Route            // len <= 16
	l2 map[uint32][]rtable.Route // len 17..24, keyed by top 16 bits
	l3 map[uint32][]rtable.Route // len 25..32, keyed by top 24 bits
}

func (b *builder) bucket(t *rtable.Table) {
	b.l2 = make(map[uint32][]rtable.Route)
	b.l3 = make(map[uint32][]rtable.Route)
	for _, r := range t.Routes() {
		switch {
		case r.Prefix.Len <= 16:
			b.l1 = append(b.l1, r)
		case r.Prefix.Len <= 24:
			b.l2[r.Prefix.Value>>16] = append(b.l2[r.Prefix.Value>>16], r)
		default:
			b.l3[r.Prefix.Value>>8] = append(b.l3[r.Prefix.Value>>8], r)
		}
	}
}

// paint writes routes into a slot array in increasing prefix-length order,
// so longer prefixes overwrite shorter ones. levelLen is the address depth
// the level's last slot bit corresponds to (16, 24 or 32); the slot index
// is the address bits ending at levelLen, modulo the array size.
func paint(vals []pointer, routes []rtable.Route, levelLen uint8) {
	sort.SliceStable(routes, func(i, j int) bool {
		return routes[i].Prefix.Len < routes[j].Prefix.Len
	})
	for _, r := range routes {
		span := 1 << (levelLen - r.Prefix.Len)
		start := int(r.Prefix.Value>>(32-levelLen)) & (len(vals) - 1)
		for s := start; s < start+span; s++ {
			vals[s] = leaf(r.NextHop)
		}
	}
}

func (b *builder) build() *Trie {
	tr := &Trie{}

	// Level 1: paint the 2^16 genuine values.
	vals := make([]pointer, level1Slots)
	for i := range vals {
		vals[i] = noRoute
	}
	paint(vals, b.l1, 16)

	// Which /16 slots need a level-2 chunk: any with a 17..24-bit prefix,
	// or with a deeper (25..32) prefix even when no mid-length one exists.
	need2 := make(map[uint32]bool, len(b.l2))
	for k := range b.l2 {
		need2[k] = true
	}
	for k := range b.l3 {
		need2[k>>8] = true
	}
	keys2 := make([]uint32, 0, len(need2))
	for k := range need2 {
		keys2 = append(keys2, k)
	}
	sort.Slice(keys2, func(i, j int) bool { return keys2[i] < keys2[j] })

	for _, s := range keys2 {
		def := vals[s] // genuine <=16 LPM for the whole /16
		cvals := make([]pointer, chunkSlots)
		for i := range cvals {
			cvals[i] = def
		}
		paint(cvals, b.l2[s], 24)

		// Level-3 chunks nested under this /16.
		for u := 0; u < chunkSlots; u++ {
			key3 := s<<8 | uint32(u)
			routes3, ok := b.l3[key3]
			if !ok {
				continue
			}
			def3 := cvals[u]
			c3vals := make([]pointer, chunkSlots)
			for i := range c3vals {
				c3vals[i] = def3
			}
			paint(c3vals, routes3, 32)
			tr.l3 = append(tr.l3, compress(c3vals))
			cvals[u] = chunkTag | pointer(len(tr.l3)-1)
		}

		tr.l2 = append(tr.l2, compress(cvals))
		vals[s] = chunkTag | pointer(len(tr.l2)-1)
	}

	// Compress level 1 into codewords / base indexes / pointers. Heads
	// follow the complete-prune rule (aligned leaves), so every word's
	// mask is one of the 678 legal maptable masks.
	headBits := make([]bool, level1Slots)
	markHeads(vals, headBits, 0, level1Slots)
	tr.code = make([]codeword, level1Slots/slotsPerWord)
	tr.base = make([]uint32, level1Slots/(slotsPerWord*wordsPerBase))
	heads := 0
	for w := 0; w < len(tr.code); w++ {
		if w%wordsPerBase == 0 {
			tr.base[w/wordsPerBase] = uint32(heads)
		}
		var mask uint16
		for i := 0; i < slotsPerWord; i++ {
			s := w*slotsPerWord + i
			if headBits[s] {
				mask |= 1 << (15 - uint(i))
				tr.ptrs = append(tr.ptrs, vals[s])
			}
		}
		tr.code[w] = codeword{mask: idOf(mask), offset: uint16(heads - int(tr.base[w/wordsPerBase]))}
		heads += bits.OnesCount16(mask)
	}
	return tr
}

// compress encodes a 256-slot value array as a chunk, choosing the density
// by head count. Heads follow the complete-prune rule so dense and very
// dense chunks get legal maptable masks.
func compress(vals []pointer) chunk {
	headBits := make([]bool, len(vals))
	markHeads(vals, headBits, 0, len(vals))
	var headPos []uint8
	var ptrs []pointer
	for s := range vals {
		if headBits[s] {
			headPos = append(headPos, uint8(s))
			ptrs = append(ptrs, vals[s])
		}
	}
	switch {
	case len(headPos) <= sparseChunkHeads:
		return chunk{kind: sparse, offsets: headPos, ptrs: ptrs}
	default:
		c := chunk{ptrs: ptrs, code: make([]codeword, chunkSlots/slotsPerWord)}
		heads := 0
		if len(headPos) <= denseChunkHeads {
			c.kind = dense
		} else {
			c.kind = veryDense
			c.base = make([]uint32, len(c.code)/wordsPerBase)
		}
		hi := 0
		for w := 0; w < len(c.code); w++ {
			if c.kind == veryDense && w%wordsPerBase == 0 {
				c.base[w/wordsPerBase] = uint32(heads)
			}
			var mask uint16
			for i := 0; i < slotsPerWord; i++ {
				s := uint8(w*slotsPerWord + i)
				if hi < len(headPos) && headPos[hi] == s {
					mask |= 1 << (15 - uint(i))
					hi++
				}
			}
			off := heads
			if c.kind == veryDense {
				off -= int(c.base[w/wordsPerBase])
			}
			c.code[w] = codeword{mask: idOf(mask), offset: uint16(off)}
			heads += bits.OnesCount16(mask)
		}
		return c
	}
}

// headIndex is the maptable lookup: the number of heads at slot positions
// <= bit within the word named by the mask id. Charged as one memory
// access by the callers, exactly as the hardware maptable access.
func headIndex(id maskID, bit uint32) int {
	return int(headCount[id][bit])
}

// lookup resolves one slot within a chunk, adding its memory accesses.
func (c *chunk) lookup(slot uint8, accesses *int) pointer {
	switch c.kind {
	case sparse:
		// All eight offsets fit one 64-bit word: one access, plus the
		// pointer fetch.
		*accesses += 2
		i := len(c.offsets) - 1
		for i > 0 && c.offsets[i] > slot {
			i--
		}
		return c.ptrs[i]
	case dense:
		*accesses += 3 // codeword + maptable + pointer
		w := slot / slotsPerWord
		cw := c.code[w]
		return c.ptrs[int(cw.offset)+headIndex(cw.mask, uint32(slot%slotsPerWord))-1]
	default: // veryDense
		*accesses += 4 // codeword + base + maptable + pointer
		w := slot / slotsPerWord
		cw := c.code[w]
		base := c.base[w/wordsPerBase]
		return c.ptrs[int(base)+int(cw.offset)+headIndex(cw.mask, uint32(slot%slotsPerWord))-1]
	}
}

// Lookup implements lpm.Engine. Level 1 always costs 4 accesses (codeword,
// base index, maptable, pointer); each deeper level adds its chunk cost.
func (tr *Trie) Lookup(a ip.Addr) (rtable.NextHop, int, bool) {
	accesses := 4
	ix := a >> 16
	cw := tr.code[ix/slotsPerWord]
	base := tr.base[ix/(slotsPerWord*wordsPerBase)]
	p := tr.ptrs[int(base)+int(cw.offset)+headIndex(cw.mask, ix%slotsPerWord)-1]
	if p.isChunk() {
		p = tr.l2[p.payload()].lookup(uint8(a>>8), &accesses)
		if p.isChunk() {
			p = tr.l3[p.payload()].lookup(uint8(a), &accesses)
		}
	}
	if p == noRoute {
		return rtable.NoNextHop, accesses, false
	}
	return rtable.NextHop(p.payload()), accesses, true
}

func (c *chunk) memory() int {
	m := chunkHandleBytes + len(c.ptrs)*pointerBytes
	switch c.kind {
	case sparse:
		m += sparseChunkHeads // eight 1-byte offsets
	case dense:
		m += len(c.code) * codewordBytes
	default:
		m += len(c.code)*codewordBytes + len(c.base)*baseIndexBytes
	}
	return m
}

func (tr *Trie) computeMemory() int {
	m := maptableBytes
	m += len(tr.code)*codewordBytes + len(tr.base)*baseIndexBytes + len(tr.ptrs)*pointerBytes
	for i := range tr.l2 {
		m += tr.l2[i].memory()
	}
	for i := range tr.l3 {
		m += tr.l3[i].memory()
	}
	return m
}

// MemoryBytes reports the modelled on-chip footprint.
func (tr *Trie) MemoryBytes() int { return tr.memBytes }

// Name implements lpm.Engine.
func (tr *Trie) Name() string { return "lulea" }

// Chunks returns the level-2 and level-3 chunk counts (structure stats).
func (tr *Trie) Chunks() (l2, l3 int) { return len(tr.l2), len(tr.l3) }
