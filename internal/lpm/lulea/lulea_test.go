package lulea

import (
	"testing"

	"spal/internal/ip"
	"spal/internal/rtable"
)

func table(cidrs ...string) *rtable.Table {
	var routes []rtable.Route
	for i, c := range cidrs {
		routes = append(routes, rtable.Route{Prefix: ip.MustPrefix(c), NextHop: rtable.NextHop(i + 1)})
	}
	return rtable.New(routes)
}

func TestLevel1OnlyLookup(t *testing.T) {
	tr := New(table("10.0.0.0/8", "10.1.0.0/16"))
	a, _ := ip.ParseAddr("10.1.0.5")
	nh, acc, ok := tr.Lookup(a)
	if !ok || nh != 2 {
		t.Fatalf("Lookup = (%d,%v)", nh, ok)
	}
	if acc != 4 {
		t.Errorf("level-1 lookup must cost exactly 4 accesses, got %d", acc)
	}
	l2, l3 := tr.Chunks()
	if l2 != 0 || l3 != 0 {
		t.Errorf("short prefixes must not allocate chunks: %d/%d", l2, l3)
	}
}

func TestLevel2ChunkCreation(t *testing.T) {
	tr := New(table("10.1.0.0/16", "10.1.2.0/24"))
	l2, l3 := tr.Chunks()
	if l2 != 1 || l3 != 0 {
		t.Fatalf("chunks = %d/%d, want 1/0", l2, l3)
	}
	// Inside the /24.
	a, _ := ip.ParseAddr("10.1.2.9")
	nh, acc, ok := tr.Lookup(a)
	if !ok || nh != 2 {
		t.Fatalf("Lookup = (%d,%v)", nh, ok)
	}
	if acc < 6 || acc > 8 {
		t.Errorf("two-level lookup accesses = %d, want 6..8", acc)
	}
	// Inside the /16 but outside the /24: the chunk default must be the
	// genuine /16 result.
	a, _ = ip.ParseAddr("10.1.99.1")
	if nh, _, _ := tr.Lookup(a); nh != 1 {
		t.Errorf("chunk default = %d, want 1", nh)
	}
}

func TestLevel3ChunkCreation(t *testing.T) {
	tr := New(table("10.1.0.0/16", "10.1.2.0/24", "10.1.2.128/25", "10.1.2.255/32"))
	l2, l3 := tr.Chunks()
	if l2 != 1 || l3 != 1 {
		t.Fatalf("chunks = %d/%d, want 1/1", l2, l3)
	}
	cases := []struct {
		addr string
		want rtable.NextHop
	}{
		{"10.1.2.255", 4}, // /32
		{"10.1.2.200", 3}, // /25
		{"10.1.2.7", 2},   // /24 (level-3 default)
		{"10.1.9.9", 2},   // wait: /24 covers only 10.1.2.x
	}
	cases[3].want = 1 // 10.1.9.9 matches only the /16
	for _, c := range cases {
		a, _ := ip.ParseAddr(c.addr)
		if nh, _, _ := tr.Lookup(a); nh != c.want {
			t.Errorf("Lookup(%s) = %d, want %d", c.addr, nh, c.want)
		}
	}
}

// A /16 containing only a >24-bit prefix (no 17..24 route) must still get
// a level-2 chunk routing into the level-3 chunk.
func TestDeepPrefixWithoutMidLevel(t *testing.T) {
	tr := New(table("10.0.0.0/8", "10.1.2.240/28"))
	l2, l3 := tr.Chunks()
	if l2 != 1 || l3 != 1 {
		t.Fatalf("chunks = %d/%d, want 1/1", l2, l3)
	}
	a, _ := ip.ParseAddr("10.1.2.245")
	if nh, _, _ := tr.Lookup(a); nh != 2 {
		t.Error("/28 not reachable")
	}
	a, _ = ip.ParseAddr("10.1.2.1")
	if nh, _, _ := tr.Lookup(a); nh != 1 {
		t.Error("level-3 default should fall back to /8")
	}
}

func TestNoRoute(t *testing.T) {
	tr := New(table("10.0.0.0/8"))
	a, _ := ip.ParseAddr("11.0.0.1")
	if _, _, ok := tr.Lookup(a); ok {
		t.Error("should miss outside 10/8")
	}
}

func TestChunkDensities(t *testing.T) {
	// Head counts follow the complete-prune (aligned leaf) rule. A /25
	// splitting a /24 chunk in half costs 2 heads -> sparse. n alternating
	// /32s in the first 2n slots cost 2n single-slot heads plus the
	// log-many leaves covering the rest: 16 routes -> 35 heads (dense),
	// 64 routes -> 129 heads (very dense).
	alt := func(n int) *rtable.Table {
		var routes []rtable.Route
		routes = append(routes, rtable.Route{Prefix: ip.MustPrefix("10.1.0.0/16"), NextHop: 1})
		for i := 0; i < n; i++ {
			p := ip.Prefix{Value: 0x0a010200 | uint32(i*2), Len: 32}
			routes = append(routes, rtable.Route{Prefix: p, NextHop: rtable.NextHop(i + 2)})
		}
		return rtable.New(routes)
	}
	sparseT := New(rtable.New([]rtable.Route{
		{Prefix: ip.MustPrefix("10.1.0.0/16"), NextHop: 1},
		{Prefix: ip.MustPrefix("10.1.2.128/25"), NextHop: 2},
	}))
	denseT := New(alt(16))
	vdenseT := New(alt(64))
	if k := sparseT.l3[0].kind; k != sparse {
		t.Errorf("2 host routes: kind = %d, want sparse", k)
	}
	if k := denseT.l3[0].kind; k != dense {
		t.Errorf("32 host routes: kind = %d, want dense", k)
	}
	if k := vdenseT.l3[0].kind; k != veryDense {
		t.Errorf("128 host routes: kind = %d, want veryDense", k)
	}
	// All three must still answer correctly at every slot of the /24.
	for name, tr := range map[string]*Trie{"sparse": sparseT, "dense": denseT, "vdense": vdenseT} {
		for s := 0; s < 256; s++ {
			a := ip.Addr(0x0a010200 | uint32(s))
			nh, _, ok := tr.Lookup(a)
			if !ok {
				t.Fatalf("%s: miss at slot %d", name, s)
			}
			_ = nh
		}
	}
}

func TestHeadIndex(t *testing.T) {
	// mask 1000 0000 1000 0000: two size-8 leaves — a legal complete-prune
	// mask with heads at slots 0 and 8.
	id := idOf(0x8080)
	if headIndex(id, 0) != 1 {
		t.Errorf("headIndex(.,0) = %d", headIndex(id, 0))
	}
	if headIndex(id, 7) != 1 {
		t.Errorf("headIndex(.,7) = %d", headIndex(id, 7))
	}
	if headIndex(id, 8) != 2 {
		t.Errorf("headIndex(.,8) = %d", headIndex(id, 8))
	}
	if headIndex(id, 15) != 2 {
		t.Errorf("headIndex(.,15) = %d", headIndex(id, 15))
	}
}

func TestMaskRegistry(t *testing.T) {
	// The paper's constant: 677 pruned-tree masks plus the zero mask.
	if MaskCount() != 678 {
		t.Fatalf("MaskCount = %d, want 678", MaskCount())
	}
	// Zero mask is id 0 with zero counts.
	if idOf(0) != 0 {
		t.Error("zero mask should be id 0")
	}
	for slot := uint32(0); slot < 16; slot++ {
		if headIndex(0, slot) != 0 {
			t.Error("zero mask must count no heads")
		}
	}
	// An illegal mask (head at slot 3 without one at slot 0) panics.
	defer func() {
		if recover() == nil {
			t.Error("illegal mask should panic")
		}
	}()
	idOf(0x1000)
}

func TestMemoryAccounting(t *testing.T) {
	tr := New(table("10.0.0.0/8"))
	// Base cost: maptable + codewords + base indexes + at least 3 pointers
	// (noroute, 10/8 head, noroute tail).
	min := maptableBytes + 4096*codewordBytes + 1024*baseIndexBytes
	if tr.MemoryBytes() <= min {
		t.Errorf("MemoryBytes = %d, want > %d", tr.MemoryBytes(), min)
	}
	if tr.Name() != "lulea" {
		t.Error("Name mismatch")
	}
}

// Head compression: a table whose /16 slots all share one next hop must
// produce very few level-1 pointers.
func TestRunCompression(t *testing.T) {
	tr := New(table("0.0.0.0/0"))
	if len(tr.ptrs) != 1 {
		t.Errorf("default route should compress to 1 head, got %d", len(tr.ptrs))
	}
}

func TestAccessBounds(t *testing.T) {
	tbl := rtable.Small(20000, 23)
	tr := New(tbl)
	for i, r := range tbl.Routes() {
		if i%50 != 0 {
			continue
		}
		_, acc, _ := tr.Lookup(r.Prefix.FirstAddr())
		if acc < 4 || acc > 12 {
			t.Fatalf("accesses = %d outside [4,12] for %s", acc, r.Prefix)
		}
	}
}
