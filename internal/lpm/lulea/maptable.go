package lulea

import (
	"fmt"
	"math/bits"
	"sort"
)

// The genuine Lulea maptable. Because the bit vector derives from a
// complete prefix tree pruned at depth 4 within each 16-slot word, the
// only non-zero masks that can occur are those describing such pruned
// trees: a(d) = 1 + a(d-1)^2 with a(0) = 1 gives a(4) = 677 masks, plus
// the all-zero mask of a word fully covered by a wider leaf — the
// paper's 678. The codeword therefore needs only 10 bits to name the
// mask, and maptable[id][slot] (4-bit entries) gives the number of heads
// at positions <= slot.
//
// enumerateMasks builds the registry once at package init; the builder
// panics if it ever produces a mask outside it, which would mean the
// head-marking logic lost the complete-tree property.

type maskID uint16

var (
	// maskTable maps each legal mask to its id; ids are assigned in
	// ascending mask order with id 0 reserved for the zero mask.
	maskTable map[uint16]maskID
	// headCount[id][slot] = heads at positions <= slot within the word.
	headCount [][16]uint8
)

// enumerateMasks returns the set of masks of pruned complete binary trees
// over size slots (size a power of two), with slot 0 at the mask's MSB.
func enumerateMasks(size int) []uint64 {
	if size == 1 {
		return []uint64{1} // a single slot: one head
	}
	half := enumerateMasks(size / 2)
	var out []uint64
	// One leaf covering the whole region: head at slot 0 only.
	out = append(out, 1<<uint(size-1))
	// Or a split: any legal left half next to any legal right half.
	for _, l := range half {
		for _, r := range half {
			out = append(out, l<<uint(size/2)|r)
		}
	}
	return out
}

func init() {
	masks := enumerateMasks(16)
	uniq := make(map[uint64]bool, len(masks))
	for _, m := range masks {
		uniq[m] = true
	}
	sorted := make([]uint64, 0, len(uniq))
	for m := range uniq {
		sorted = append(sorted, m)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	maskTable = make(map[uint16]maskID, len(sorted)+1)
	headCount = make([][16]uint8, len(sorted)+1)
	maskTable[0] = 0 // zero mask: word fully covered by a wider leaf
	for i, m := range sorted {
		id := maskID(i + 1)
		maskTable[uint16(m)] = id
		for slot := 0; slot < 16; slot++ {
			headCount[id][slot] = uint8(bits.OnesCount16(uint16(m) >> uint(15-slot)))
		}
	}
}

// MaskCount reports the registry size (678 with the zero mask), exposed
// for the tests that pin the paper's constant.
func MaskCount() int { return len(headCount) }

// idOf returns the maptable id for a mask, panicking on an illegal mask —
// that would mean head marking violated the complete-tree property.
func idOf(mask uint16) maskID {
	id, ok := maskTable[mask]
	if !ok {
		panic(fmt.Sprintf("lulea: mask %016b is not a complete-prune mask", mask))
	}
	return id
}

// markHeads sets the head positions of vals[lo:lo+size] (size a power of
// two) per the complete-prune rule: a region of equal pointers is one
// leaf with a single head at its start; otherwise split in half and
// recurse. heads must be pre-sized to len(vals).
func markHeads(vals []pointer, heads []bool, lo, size int) {
	if size == 1 {
		heads[lo] = true
		return
	}
	uniform := true
	for i := lo + 1; i < lo+size; i++ {
		if vals[i] != vals[lo] {
			uniform = false
			break
		}
	}
	if uniform {
		heads[lo] = true
		return
	}
	markHeads(vals, heads, lo, size/2)
	markHeads(vals, heads, lo+size/2, size/2)
}
