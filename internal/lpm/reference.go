package lpm

import (
	"spal/internal/ip"
	"spal/internal/rtable"
)

// Reference is the correctness oracle: one hash map per prefix length,
// probed from /32 down to /0. It is O(1) per lookup regardless of table
// size, which keeps property tests over RT_2-sized tables fast, but it
// models no hardware structure: Lookup reports zero memory accesses and
// MemoryBytes is the raw map payload.
type Reference struct {
	byLen [33]map[uint32]rtable.NextHop
	n     int
}

// NewReference builds the oracle from a table snapshot.
func NewReference(t *rtable.Table) *Reference {
	r := &Reference{n: t.Len()}
	for _, rt := range t.Routes() {
		l := rt.Prefix.Len
		if r.byLen[l] == nil {
			r.byLen[l] = make(map[uint32]rtable.NextHop)
		}
		r.byLen[l][rt.Prefix.Value] = rt.NextHop
	}
	return r
}

// NewReferenceEngine adapts NewReference to the Builder signature.
func NewReferenceEngine(t *rtable.Table) Engine { return NewReference(t) }

// Lookup probes lengths longest-first and returns on the first hit.
func (r *Reference) Lookup(a ip.Addr) (rtable.NextHop, int, bool) {
	for l := 32; l >= 0; l-- {
		m := r.byLen[l]
		if m == nil {
			continue
		}
		if nh, ok := m[a&ip.Mask(uint8(l))]; ok {
			return nh, 0, true
		}
	}
	return rtable.NoNextHop, 0, false
}

// MemoryBytes reports the raw route payload (prefix + next hop per entry);
// the oracle is not a hardware model.
func (r *Reference) MemoryBytes() int { return r.n * 7 }

// Name implements Engine.
func (r *Reference) Name() string { return "reference" }
