// Package rangebs implements binary search on ranges (Lampson, Srinivasan
// & Varghese, INFOCOM 1998), the other classic scheme from the survey the
// SPAL paper cites: every prefix defines an address interval; the sorted
// interval boundaries partition the address space into segments with a
// constant longest-match answer, precomputed at build time. A lookup is a
// pure binary search over the boundary array — ~log2(2n) memory accesses,
// no pointer chasing.
//
// Memory model: 6 bytes per boundary (4-byte address + 2-byte answer).
package rangebs

import (
	"sort"

	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/rtable"
)

const boundaryBytes = 6

// Table is an immutable range-search structure built by New.
type Table struct {
	bounds []uint32         // segment start addresses, ascending; bounds[0] == 0
	ans    []rtable.NextHop // answer for [bounds[i], bounds[i+1])
	ok     []bool
}

var _ lpm.Engine = (*Table)(nil)

// NewEngine adapts New to the lpm.Builder signature.
func NewEngine(t *rtable.Table) lpm.Engine { return New(t) }

// New collects every prefix's first address and first-after-last address
// as segment boundaries and precomputes each segment's answer with the
// reference oracle.
func New(t *rtable.Table) *Table {
	pointSet := map[uint32]bool{0: true}
	for _, r := range t.Routes() {
		pointSet[r.Prefix.FirstAddr()] = true
		if last := r.Prefix.LastAddr(); last != 0xffffffff {
			pointSet[last+1] = true
		}
	}
	points := make([]uint32, 0, len(pointSet))
	for p := range pointSet {
		points = append(points, p)
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })

	oracle := lpm.NewReference(t)
	tb := &Table{
		bounds: points,
		ans:    make([]rtable.NextHop, len(points)),
		ok:     make([]bool, len(points)),
	}
	for i, p := range points {
		nh, _, ok := oracle.Lookup(p)
		tb.ans[i] = nh
		tb.ok[i] = ok
	}
	return tb
}

// Lookup finds the segment containing a; every probed boundary is one
// modelled memory access (the final answer fetch rides with the last
// probe, as the answers are stored alongside the boundaries).
func (tb *Table) Lookup(a ip.Addr) (rtable.NextHop, int, bool) {
	lo, hi := 0, len(tb.bounds)-1
	accesses := 0
	for lo < hi {
		m := (lo + hi + 1) / 2
		accesses++
		if tb.bounds[m] <= a {
			lo = m
		} else {
			hi = m - 1
		}
	}
	if accesses == 0 {
		accesses = 1 // the single-segment table still reads its answer
	}
	if !tb.ok[lo] {
		return rtable.NoNextHop, accesses, false
	}
	return tb.ans[lo], accesses, true
}

// MemoryBytes reports the modelled footprint.
func (tb *Table) MemoryBytes() int { return len(tb.bounds) * boundaryBytes }

// Name implements lpm.Engine.
func (tb *Table) Name() string { return "rangebs" }

// Segments returns the number of address segments.
func (tb *Table) Segments() int { return len(tb.bounds) }
