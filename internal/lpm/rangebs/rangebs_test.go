package rangebs

import (
	"testing"

	"spal/internal/ip"
	"spal/internal/rtable"
)

func table(cidrs ...string) *rtable.Table {
	var routes []rtable.Route
	for i, c := range cidrs {
		routes = append(routes, rtable.Route{Prefix: ip.MustPrefix(c), NextHop: rtable.NextHop(i + 1)})
	}
	return rtable.New(routes)
}

func TestBasicLookup(t *testing.T) {
	tb := New(table("10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"))
	cases := []struct {
		addr string
		want rtable.NextHop
		ok   bool
	}{
		{"10.1.2.3", 3, true},
		{"10.1.2.255", 3, true},
		{"10.1.3.0", 2, true}, // segment immediately after the /24
		{"10.0.0.0", 1, true},
		{"10.255.255.255", 1, true},
		{"11.0.0.0", 0, false}, // segment immediately after the /8
		{"9.255.255.255", 0, false},
	}
	for _, c := range cases {
		a, _ := ip.ParseAddr(c.addr)
		nh, _, ok := tb.Lookup(a)
		if ok != c.ok || (ok && nh != c.want) {
			t.Errorf("Lookup(%s) = (%d,%v), want (%d,%v)", c.addr, nh, ok, c.want, c.ok)
		}
	}
}

func TestSegmentCount(t *testing.T) {
	// /8 contributes start+end, /16 inside it start+end, plus point 0:
	// {0, 10.0.0.0, 10.1.0.0, 10.2.0.0, 11.0.0.0} = 5 segments.
	tb := New(table("10.0.0.0/8", "10.1.0.0/16"))
	if tb.Segments() != 5 {
		t.Errorf("Segments = %d, want 5", tb.Segments())
	}
	if tb.MemoryBytes() != 5*boundaryBytes {
		t.Errorf("MemoryBytes = %d", tb.MemoryBytes())
	}
}

func TestAddressSpaceEdges(t *testing.T) {
	tb := New(table("255.255.255.0/24", "0.0.0.0/8"))
	a, _ := ip.ParseAddr("255.255.255.255")
	if nh, _, ok := tb.Lookup(a); !ok || nh != 1 {
		t.Errorf("top of space = (%d,%v)", nh, ok)
	}
	if nh, _, ok := tb.Lookup(0); !ok || nh != 2 {
		t.Errorf("bottom of space = (%d,%v)", nh, ok)
	}
}

func TestLogarithmicAccesses(t *testing.T) {
	tb := New(rtable.Small(20000, 5))
	tblR := rtable.Small(20000, 5)
	worst := 0
	for i, r := range tblR.Routes() {
		if i%37 != 0 {
			continue
		}
		_, acc, _ := tb.Lookup(r.Prefix.FirstAddr())
		if acc > worst {
			worst = acc
		}
	}
	// log2(2*20000) ~ 15.3; allow 17.
	if worst > 17 {
		t.Errorf("worst accesses = %d, want ~log2(2n)", worst)
	}
}

func TestDefaultRoute(t *testing.T) {
	tb := New(table("0.0.0.0/0"))
	if nh, acc, ok := tb.Lookup(0xdeadbeef); !ok || nh != 1 || acc < 1 {
		t.Errorf("default route = (%d,%d,%v)", nh, acc, ok)
	}
	if tb.Segments() != 1 {
		t.Errorf("Segments = %d, want 1", tb.Segments())
	}
}

func TestEmptyTableAndName(t *testing.T) {
	tb := New(rtable.New(nil))
	if _, _, ok := tb.Lookup(1); ok {
		t.Error("empty table must miss")
	}
	if tb.Name() != "rangebs" {
		t.Error("Name mismatch")
	}
}
