package lpm

import (
	"testing"

	"spal/internal/ip"
	"spal/internal/rtable"
)

func corruptTestTable(t *testing.T) *rtable.Table {
	t.Helper()
	return rtable.New([]rtable.Route{
		{Prefix: ip.MustPrefix("10.0.0.0/8"), NextHop: 1},
		{Prefix: ip.MustPrefix("10.1.0.0/16"), NextHop: 2},
		{Prefix: ip.MustPrefix("192.168.0.0/16"), NextHop: 3},
	})
}

func TestCorruptPoisonAndClear(t *testing.T) {
	tbl := corruptTestTable(t)
	e := NewCorrupt(NewReferenceEngine(tbl))
	c := AsCorrupt(e)
	if c == nil {
		t.Fatal("AsCorrupt failed on a freshly wrapped engine")
	}
	a, _ := ip.ParseAddr("10.1.2.3")
	if nh, _, ok := e.Lookup(a); !ok || nh != 2 {
		t.Fatalf("clean lookup = (%d,%v), want (2,true)", nh, ok)
	}

	p := ip.MustPrefix("10.1.0.0/16")
	c.Poison(p.FirstAddr(), p.LastAddr(), 9)
	if c.PoisonCount() != 1 {
		t.Fatalf("PoisonCount = %d, want 1", c.PoisonCount())
	}
	if nh, acc, ok := e.Lookup(a); !ok || nh != 9 || acc != 1 {
		t.Fatalf("poisoned lookup = (%d,%d,%v), want (9,1,true)", nh, acc, ok)
	}
	// Addresses outside the poison still fall through to the inner engine.
	b, _ := ip.ParseAddr("192.168.0.1")
	if nh, _, ok := e.Lookup(b); !ok || nh != 3 {
		t.Fatalf("lookup outside poison = (%d,%v), want (3,true)", nh, ok)
	}

	c.Clear()
	if c.PoisonCount() != 0 {
		t.Fatalf("PoisonCount after Clear = %d", c.PoisonCount())
	}
	if nh, _, ok := e.Lookup(a); !ok || nh != 2 {
		t.Fatalf("lookup after Clear = (%d,%v), want (2,true)", nh, ok)
	}
}

func TestCorruptNarrowestRangeWins(t *testing.T) {
	tbl := corruptTestTable(t)
	e := NewCorrupt(NewReferenceEngine(tbl))
	c := AsCorrupt(e)
	wide := ip.MustPrefix("10.0.0.0/8")
	narrow := ip.MustPrefix("10.1.0.0/16")
	c.Poison(wide.FirstAddr(), wide.LastAddr(), 7)
	c.Poison(narrow.FirstAddr(), narrow.LastAddr(), 8)
	a, _ := ip.ParseAddr("10.1.2.3")
	if nh, _, _ := e.Lookup(a); nh != 8 {
		t.Fatalf("nested poisons: got %d, want the narrower range's 8", nh)
	}
	b, _ := ip.ParseAddr("10.9.9.9")
	if nh, _, _ := e.Lookup(b); nh != 7 {
		t.Fatalf("outside the narrow poison: got %d, want 7", nh)
	}
}

// TestCorruptPoisonNoNextHop: poisoning with the no-route sentinel makes
// matching addresses report "no route" — a lost prefix, not a wrong hop.
func TestCorruptPoisonNoNextHop(t *testing.T) {
	tbl := corruptTestTable(t)
	e := NewCorrupt(NewReferenceEngine(tbl))
	p := ip.MustPrefix("10.0.0.0/8")
	AsCorrupt(e).Poison(p.FirstAddr(), p.LastAddr(), rtable.NoNextHop)
	a, _ := ip.ParseAddr("10.1.2.3")
	if nh, _, ok := e.Lookup(a); ok || nh != rtable.NoNextHop {
		t.Fatalf("NoNextHop poison = (%d,%v), want (NoNextHop,false)", nh, ok)
	}
}

func TestAsCorruptOnPlainEngine(t *testing.T) {
	if c := AsCorrupt(NewReferenceEngine(corruptTestTable(t))); c != nil {
		t.Fatalf("AsCorrupt on an unwrapped engine = %v, want nil", c)
	}
}

// TestCorruptDynamicProxy: wrapping a DynamicEngine keeps the dynamic
// surface (in-place updates pass through) while poison survives updates —
// damaged SRAM does not heal because a route changed.
func TestCorruptDynamicProxy(t *testing.T) {
	tbl := corruptTestTable(t)
	inner := mustDynamic(t, tbl)
	e := NewCorrupt(inner)
	de, ok := e.(DynamicEngine)
	if !ok {
		t.Fatal("wrapped dynamic engine lost the DynamicEngine surface")
	}
	if AsCorrupt(e) == nil {
		t.Fatal("AsCorrupt failed on the dynamic wrapper")
	}
	if e.Name() != inner.Name() {
		t.Fatalf("Name = %q, want inner %q", e.Name(), inner.Name())
	}
	if e.MemoryBytes() != inner.MemoryBytes() {
		t.Fatalf("MemoryBytes = %d, want inner %d", e.MemoryBytes(), inner.MemoryBytes())
	}

	p := ip.MustPrefix("10.1.0.0/16")
	AsCorrupt(e).Poison(p.FirstAddr(), p.LastAddr(), 9)
	de.Insert(ip.MustPrefix("10.1.2.0/24"), 5)
	a, _ := ip.ParseAddr("10.1.2.3")
	if nh, _, _ := e.Lookup(a); nh != 9 {
		t.Fatalf("poison did not survive Insert: got %d, want 9", nh)
	}
	if !de.Delete(ip.MustPrefix("10.1.2.0/24")) {
		t.Fatal("Delete of the inserted prefix reported absent")
	}
	b, _ := ip.ParseAddr("192.168.0.1")
	if nh, _, ok := e.Lookup(b); !ok || nh != 3 {
		t.Fatalf("clean lookup after update = (%d,%v), want (3,true)", nh, ok)
	}
}

// TestCorruptBatchFallback: the wrapper deliberately hides any inner
// BatchEngine, so LookupAll degrades to per-key lookups and the batch
// plane observes exactly the poisoned verdicts.
func TestCorruptBatchFallback(t *testing.T) {
	tbl := corruptTestTable(t)
	e := NewCorrupt(NewReferenceEngine(tbl))
	if _, ok := e.(BatchEngine); ok {
		t.Fatal("corruption wrapper must not implement BatchEngine")
	}
	p := ip.MustPrefix("10.1.0.0/16")
	AsCorrupt(e).Poison(p.FirstAddr(), p.LastAddr(), 9)

	a1, _ := ip.ParseAddr("10.1.2.3")
	a2, _ := ip.ParseAddr("192.168.0.1")
	addrs := []ip.Addr{a1, a2}
	out := make([]Result, len(addrs))
	LookupAll(e, addrs, out)
	for i, a := range addrs {
		nh, acc, ok := e.Lookup(a)
		want := Result{NextHop: nh, Accesses: int32(acc), OK: ok}
		if out[i] != want {
			t.Fatalf("LookupAll[%d] = %+v, scalar says %+v", i, out[i], want)
		}
	}
	if out[0].NextHop != 9 || out[1].NextHop != 3 {
		t.Fatalf("batch verdicts = %d,%d, want 9,3", out[0].NextHop, out[1].NextHop)
	}
}

// mustDynamic builds a DynamicEngine for the proxy test. The real dynamic
// tries live in subpackages this package cannot import, so the test uses a
// tiny table-backed adapter that rebuilds its oracle on each mutation —
// correctness is all the proxy test needs.
func mustDynamic(t *testing.T, tbl *rtable.Table) DynamicEngine {
	t.Helper()
	return &dynRef{tbl: tbl, ref: NewReference(tbl)}
}

type dynRef struct {
	tbl *rtable.Table
	ref *Reference
}

func (d *dynRef) Lookup(a ip.Addr) (rtable.NextHop, int, bool) { return d.ref.Lookup(a) }
func (d *dynRef) MemoryBytes() int                             { return d.ref.MemoryBytes() }
func (d *dynRef) Name() string                                 { return "dynref" }

func (d *dynRef) Insert(p ip.Prefix, nh rtable.NextHop) {
	d.tbl = d.tbl.Apply(rtable.Update{Kind: rtable.Announce, Route: rtable.Route{Prefix: p, NextHop: nh}})
	d.ref = NewReference(d.tbl)
}

func (d *dynRef) Delete(p ip.Prefix) bool {
	had := false
	for _, rt := range d.tbl.Routes() {
		if rt.Prefix == p {
			had = true
			break
		}
	}
	d.tbl = d.tbl.Apply(rtable.Update{Kind: rtable.Withdraw, Route: rtable.Route{Prefix: p}})
	d.ref = NewReference(d.tbl)
	return had
}
