// Batch-first engine surface. The per-key Engine interface forces one
// virtual call and one full trie descent per address; engines with flat,
// cache-line-sized nodes (stride24, flat) can do much better when handed
// a whole burst at once — the traversal state of many keys fits in
// registers/L1 and the next level's loads overlap instead of serializing.
//
// BatchEngine is deliberately optional: every existing engine keeps
// working unchanged through the LookupAll adapter, and callers (the
// router's batched data plane, the benchmarks) never type-switch
// themselves.
package lpm

import (
	"spal/internal/ip"
	"spal/internal/rtable"
)

// Result is one element of a batched lookup: the same triple Lookup
// returns, packed into a value so a whole batch can live in one
// caller-owned slice with no per-key allocation.
type Result struct {
	NextHop  rtable.NextHop
	Accesses int32
	OK       bool
}

// BatchEngine is the optional batch interface an Engine may implement.
// LookupBatch must behave exactly like len(addrs) independent Lookup
// calls: out[i] holds the result for addrs[i] (the crosscheck property
// tests enforce this equivalence, accesses included). out is caller-
// owned scratch with len(out) >= len(addrs); implementations must not
// retain it. Engines are immutable after construction, so LookupBatch
// (like Lookup) must be safe for concurrent use from multiple
// goroutines without engine-held mutable scratch.
type BatchEngine interface {
	Engine
	LookupBatch(addrs []ip.Addr, out []Result)
}

// LookupAll resolves every address in addrs into out[:len(addrs)],
// using the engine's native LookupBatch when it implements BatchEngine
// and falling back to per-key Lookup calls otherwise. It is the single
// entry point batch callers should use; it never allocates.
func LookupAll(e Engine, addrs []ip.Addr, out []Result) {
	if len(addrs) == 0 {
		return
	}
	if be, ok := e.(BatchEngine); ok {
		be.LookupBatch(addrs, out[:len(addrs)])
		return
	}
	for i, a := range addrs {
		nh, acc, ok := e.Lookup(a)
		out[i] = Result{NextHop: nh, Accesses: int32(acc), OK: ok}
	}
}
