package flat

import (
	"testing"
	"unsafe"

	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/rtable"
	"spal/internal/stats"
)

// crosscheck verifies Lookup and LookupBatch against the linear-scan
// oracle on matched and random addresses. (The engine is also in the
// shared crosscheck/fuzz builder list one package up; this adds the
// RT1/RT2-calibrated tables those sweeps are too slow for.)
func crosscheck(t *testing.T, tbl *rtable.Table, n int, seed uint64) {
	t.Helper()
	e := New(tbl)
	rng := stats.NewRNG(seed)
	addrs := make([]ip.Addr, n)
	for i := range addrs {
		if i%2 == 0 && tbl.Len() > 0 {
			addrs[i] = tbl.RandomMatchedAddr(rng)
		} else {
			addrs[i] = rng.Uint32()
		}
	}
	out := make([]lpm.Result, n)
	e.LookupBatch(addrs, out)
	for i, a := range addrs {
		wantNH, wantOK := tbl.LookupLinear(a)
		nh, acc, ok := e.Lookup(a)
		if ok != wantOK || (ok && nh != wantNH) {
			t.Fatalf("Lookup(%s) = (%d,%v), oracle says (%d,%v)",
				ip.FormatAddr(a), nh, ok, wantNH, wantOK)
		}
		// Worst case: root + 16 stride-1 levels = 17 fetches.
		if acc < 1 || acc > 17 {
			t.Fatalf("Lookup(%s): implausible access count %d", ip.FormatAddr(a), acc)
		}
		if out[i] != (lpm.Result{NextHop: nh, Accesses: int32(acc), OK: ok}) {
			t.Fatalf("LookupBatch[%d] = %+v, Lookup says (%d,%d,%v)", i, out[i], nh, acc, ok)
		}
	}
}

func TestFlatAgreesWithOracleRT1(t *testing.T) {
	crosscheck(t, rtable.RT1(), 3000, 41)
}

func TestFlatAgreesWithOracleRT2(t *testing.T) {
	if testing.Short() {
		t.Skip("RT2 linear-scan oracle is slow (140k prefixes)")
	}
	crosscheck(t, rtable.RT2(), 600, 140)
}

func TestFlatEmptyAndDefaultTables(t *testing.T) {
	e := New(rtable.New(nil))
	if nh, acc, ok := e.Lookup(0x01020304); ok || nh != rtable.NoNextHop || acc != 1 {
		t.Fatalf("empty table: got (%d,%d,%v)", nh, acc, ok)
	}
	def := New(rtable.New([]rtable.Route{{Prefix: ip.MustPrefix("0.0.0.0/0"), NextHop: 9}}))
	if nh, acc, ok := def.Lookup(0xdeadbeef); !ok || nh != 9 || acc != 1 {
		t.Fatalf("default route: got (%d,%d,%v)", nh, acc, ok)
	}
}

// TestFlatAlignment checks the structural invariants the package name
// promises: the entry array starts on a 64-byte boundary and its length
// is a whole number of 16-entry groups, so no node group straddles an
// extra cache line.
func TestFlatAlignment(t *testing.T) {
	e := New(rtable.RT1())
	if p := uintptr(unsafe.Pointer(unsafe.SliceData(e.entries))); p%64 != 0 {
		t.Fatalf("entry array not 64-byte aligned: %#x", p)
	}
	if len(e.entries)%groupEntries != 0 {
		t.Fatalf("entry array length %d not a multiple of %d", len(e.entries), groupEntries)
	}
	if e.MemoryBytes() != len(e.entries)*4 {
		t.Fatalf("MemoryBytes %d != %d", e.MemoryBytes(), len(e.entries)*4)
	}
	if e.Name() != "flat" {
		t.Fatalf("Name = %q", e.Name())
	}
}

// TestFlatLookupAllocs: both lookup forms must be allocation-free — the
// router's batch data plane budget depends on it.
func TestFlatLookupAllocs(t *testing.T) {
	e := New(rtable.RT1())
	rng := stats.NewRNG(5)
	addrs := make([]ip.Addr, 128)
	for i := range addrs {
		addrs[i] = rng.Uint32()
	}
	out := make([]lpm.Result, len(addrs))
	if n := testing.AllocsPerRun(100, func() {
		for _, a := range addrs {
			e.Lookup(a)
		}
	}); n != 0 {
		t.Fatalf("Lookup allocates %.1f/run", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		lpm.LookupAll(e, addrs, out)
	}); n != 0 {
		t.Fatalf("LookupBatch allocates %.1f/run", n)
	}
}
