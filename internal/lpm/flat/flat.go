// Package flat implements a level-compressed multibit trie packed into a
// single contiguous []uint32, sized and aligned for general-purpose CPU
// cache hierarchies rather than the paper's SRAM model.
//
// The motivation is the cache-aware forwarding-table line of work (see
// PAPERS.md): on a commodity core the dominant lookup cost is DRAM/LLC
// latency, so the structure that wins is not the one with the fewest
// modelled "memory accesses" but the one whose nodes are flat arrays the
// prefetcher can stream. flat therefore trades memory for shape:
//
//   - a fixed 2^16-entry root array indexed by the top 16 address bits
//     (one load resolves every prefix of length <= 16);
//   - below the root, LC-trie-style level compression: each internal
//     node is a 2^s-entry array (s chosen by a fill-factor heuristic,
//     capped at 8) holding either a leaf or a child pointer;
//   - every node group is padded to a multiple of 16 entries (64 bytes)
//     and the whole table is copied into a 64-byte-aligned buffer, so a
//     node never straddles more cache lines than its size requires.
//
// Entry encoding (uint32):
//
//	bit 31      = 0: leaf — low 16 bits are the next hop (0xffff: no route)
//	bit 31      = 1: internal — bits 30..27 hold stride-1, bits 26..0 the
//	                 child group index in 16-entry (64-byte) units
//
// Longest-prefix semantics come from leaf pushing: shorter-prefix results
// are inherited down the trie at build time, so a lookup never needs to
// remember a "best so far" — the first leaf it reaches is the answer.
// Engines are immutable after construction, like every other engine.
package flat

import (
	"unsafe"

	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/rtable"
)

const (
	rootBits     = 16
	maxStride    = 8
	internalBit  = uint32(1) << 31
	strideShift  = 27
	groupMask    = uint32(1)<<strideShift - 1
	groupEntries = 16 // 64 bytes of uint32s: the alignment quantum
	noRoute      = uint16(0xffff)
)

// Engine is the built structure. The only field a lookup touches is the
// flat entry array.
type Engine struct {
	entries []uint32
}

var (
	_ lpm.Engine      = (*Engine)(nil)
	_ lpm.BatchEngine = (*Engine)(nil)
)

// NewEngine adapts New to the lpm.Builder signature.
func NewEngine(t *rtable.Table) lpm.Engine { return New(t) }

// bnode is the throwaway binary trie the builder expands from; hasNH
// marks a prefix ending exactly at this node.
type bnode struct {
	child [2]*bnode
	nh    rtable.NextHop
	hasNH bool
}

type builder struct {
	entries []uint32
}

// New builds the flat trie from a routing table snapshot.
func New(t *rtable.Table) *Engine {
	root := &bnode{}
	for _, r := range t.Routes() {
		n := root
		for pos := 0; pos < int(r.Prefix.Len); pos++ {
			b, _ := r.Prefix.Bit(pos)
			if n.child[b] == nil {
				n.child[b] = &bnode{}
			}
			n = n.child[b]
		}
		n.nh = r.NextHop
		n.hasNH = true
	}

	b := &builder{entries: make([]uint32, 1<<rootBits)}
	eff := noRoute
	if root.hasNH {
		eff = uint16(root.nh)
	}
	for i := 0; i < 1<<rootBits; i++ {
		// The recursive emit may grow (reallocate) b.entries, and Go
		// evaluates the destination slice before the right-hand side —
		// compute into a temporary first, everywhere an emit call feeds
		// an element assignment.
		v := b.emitIndex(root, eff, rootBits, uint32(i), 0)
		b.entries[i] = v
	}

	// Copy into a 64-byte-aligned buffer so each 16-entry group sits on
	// its own cache-line boundary.
	aligned := alignedUint32(len(b.entries))
	copy(aligned, b.entries)
	return &Engine{entries: aligned}
}

// emitIndex resolves one index of a stride-s node rooted at n: it walks
// the s bits of i through the binary trie, inheriting next hops from the
// prefixes it passes, and returns either a leaf entry (path ends early)
// or the entry of the node found at full stride depth.
func (b *builder) emitIndex(n *bnode, inh uint16, s int, i uint32, depth int) uint32 {
	cur := n
	for bit := s - 1; bit >= 0; bit-- {
		next := cur.child[(i>>uint(bit))&1]
		if next == nil {
			return uint32(inh)
		}
		cur = next
		if bit > 0 && cur.hasNH {
			// Passing through a prefix end: it becomes the inherited
			// answer for everything below. At bit == 0 the node's own
			// next hop is applied by emitNode instead.
			inh = uint16(cur.nh)
		}
	}
	return b.emitNode(cur, inh, depth+s)
}

// emitNode encodes the subtree at n (depth bits consumed so far) as a
// single entry, appending child groups as needed.
func (b *builder) emitNode(n *bnode, inh uint16, depth int) uint32 {
	eff := inh
	if n.hasNH {
		eff = uint16(n.nh)
	}
	if n.child[0] == nil && n.child[1] == nil {
		return uint32(eff)
	}
	s := chooseStride(n, depth)
	size := 1 << uint(s)
	base := len(b.entries)
	group := uint32(base / groupEntries)
	b.entries = append(b.entries, make([]uint32, pad16(size))...)
	for i := 0; i < size; i++ {
		v := b.emitIndex(n, eff, s, uint32(i), depth)
		b.entries[base+i] = v
	}
	return internalBit | uint32(s-1)<<strideShift | group
}

// chooseStride grows the stride while at least half of the would-be
// array indexes lead to a real trie node (the LC-trie fill-factor rule
// with fill = 0.5), capped at maxStride and at the remaining address
// bits.
func chooseStride(n *bnode, depth int) int {
	max := 32 - depth
	if max > maxStride {
		max = maxStride
	}
	s := 1
	for s < max && 2*countAt(n, s+1) >= 1<<uint(s+1) {
		s++
	}
	return s
}

// countAt counts binary-trie nodes at exactly relative depth d below n.
func countAt(n *bnode, d int) int {
	if n == nil {
		return 0
	}
	if d == 0 {
		return 1
	}
	return countAt(n.child[0], d-1) + countAt(n.child[1], d-1)
}

func pad16(n int) int { return (n + groupEntries - 1) &^ (groupEntries - 1) }

// alignedUint32 allocates an n-entry []uint32 whose first element sits
// on a 64-byte boundary.
func alignedUint32(n int) []uint32 {
	buf := make([]uint32, n+groupEntries)
	off := 0
	if rem := uintptr(unsafe.Pointer(unsafe.SliceData(buf))) % 64; rem != 0 {
		off = int((64 - rem) / 4)
	}
	return buf[off : off+n : off+n]
}

// Lookup implements lpm.Engine: one root load plus one load per
// compressed level. Accesses counts entry fetches.
func (e *Engine) Lookup(a ip.Addr) (rtable.NextHop, int, bool) {
	ent := e.entries[a>>(32-rootBits)]
	accesses := 1
	pos := uint32(rootBits)
	for ent&internalBit != 0 {
		s := (ent>>strideShift)&0xf + 1
		idx := (uint32(a) << pos) >> (32 - s)
		ent = e.entries[(ent&groupMask)*groupEntries+idx]
		pos += s
		accesses++
	}
	nh := uint16(ent)
	if nh == noRoute {
		return rtable.NoNextHop, accesses, false
	}
	return rtable.NextHop(nh), accesses, true
}

// LookupBatch implements lpm.BatchEngine with a level-synchronous sweep:
// up to 64 keys descend in lockstep, so each round issues up to 64
// independent loads the memory system can overlap, instead of chaining
// one key's levels serially. All traversal state lives in stack arrays —
// no engine-held scratch, so concurrent batches are safe.
func (e *Engine) LookupBatch(addrs []ip.Addr, out []lpm.Result) {
	for len(addrs) > 0 {
		n := len(addrs)
		if n > 64 {
			n = 64
		}
		var ent [64]uint32
		var pos [64]uint32
		var acc [64]int32
		for i := 0; i < n; i++ {
			ent[i] = e.entries[addrs[i]>>(32-rootBits)]
			pos[i] = rootBits
			acc[i] = 1
		}
		for live := true; live; {
			live = false
			for i := 0; i < n; i++ {
				t := ent[i]
				if t&internalBit == 0 {
					continue
				}
				live = true
				s := (t>>strideShift)&0xf + 1
				idx := (uint32(addrs[i]) << pos[i]) >> (32 - s)
				ent[i] = e.entries[(t&groupMask)*groupEntries+idx]
				pos[i] += s
				acc[i]++
			}
		}
		for i := 0; i < n; i++ {
			nh := uint16(ent[i])
			out[i] = lpm.Result{NextHop: rtable.NextHop(nh), Accesses: acc[i], OK: nh != noRoute}
		}
		addrs = addrs[n:]
		out = out[n:]
	}
}

// MemoryBytes reports the flat array's footprint (4 bytes per entry).
func (e *Engine) MemoryBytes() int { return len(e.entries) * 4 }

// Name implements lpm.Engine.
func (e *Engine) Name() string { return "flat" }
