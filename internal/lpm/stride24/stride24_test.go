package stride24

import (
	"testing"

	"spal/internal/ip"
	"spal/internal/rtable"
)

func table(cidrs ...string) *rtable.Table {
	var routes []rtable.Route
	for i, c := range cidrs {
		routes = append(routes, rtable.Route{Prefix: ip.MustPrefix(c), NextHop: rtable.NextHop(i + 1)})
	}
	return rtable.New(routes)
}

func TestShortPrefixSingleAccess(t *testing.T) {
	tb := New(table("10.0.0.0/8", "10.1.0.0/16"))
	a, _ := ip.ParseAddr("10.1.2.3")
	nh, acc, ok := tb.Lookup(a)
	if !ok || nh != 2 || acc != 1 {
		t.Errorf("Lookup = (%d,%d,%v), want (2,1,true)", nh, acc, ok)
	}
	if tb.Chunks() != 0 {
		t.Errorf("no >24 prefixes, chunks = %d", tb.Chunks())
	}
}

func TestLongPrefixTwoAccesses(t *testing.T) {
	tb := New(table("10.1.2.0/24", "10.1.2.128/25"))
	a, _ := ip.ParseAddr("10.1.2.200")
	nh, acc, ok := tb.Lookup(a)
	if !ok || nh != 2 || acc != 2 {
		t.Errorf("Lookup = (%d,%d,%v), want (2,2,true)", nh, acc, ok)
	}
	// The chunk default must be the /24.
	a, _ = ip.ParseAddr("10.1.2.7")
	nh, acc, ok = tb.Lookup(a)
	if !ok || nh != 1 || acc != 2 {
		t.Errorf("chunk default = (%d,%d,%v), want (1,2,true)", nh, acc, ok)
	}
	if tb.Chunks() != 1 {
		t.Errorf("chunks = %d, want 1", tb.Chunks())
	}
}

func TestMiss(t *testing.T) {
	tb := New(table("10.0.0.0/8"))
	a, _ := ip.ParseAddr("11.0.0.1")
	if _, _, ok := tb.Lookup(a); ok {
		t.Error("should miss")
	}
}

func TestMemoryIsHuge(t *testing.T) {
	tb := New(table("10.0.0.0/8"))
	if tb.MemoryBytes() < 32<<20 {
		t.Errorf("MemoryBytes = %d, the paper calls this design > 32 MB", tb.MemoryBytes())
	}
	if tb.Name() != "stride24" {
		t.Error("Name mismatch")
	}
}

func TestPaintOrderLongestWins(t *testing.T) {
	// Insert short after long in table construction order; painting by
	// increasing length must still let the /25 win inside its half.
	tb := New(table("10.1.2.128/25", "10.1.2.0/24", "10.0.0.0/8"))
	a, _ := ip.ParseAddr("10.1.2.129")
	if nh, _, _ := tb.Lookup(a); nh != 1 {
		t.Errorf("nh = %d, want 1 (/25)", nh)
	}
	a, _ = ip.ParseAddr("10.1.2.1")
	if nh, _, _ := tb.Lookup(a); nh != 2 {
		t.Errorf("nh = %d, want 2 (/24)", nh)
	}
	a, _ = ip.ParseAddr("10.7.7.7")
	if nh, _, _ := tb.Lookup(a); nh != 3 {
		t.Errorf("nh = %d, want 3 (/8)", nh)
	}
}
