// Package stride24 implements the Gupta/Lin/McKeown two-level hardware
// lookup table ("Routing Lookups in Hardware at Memory Access Speeds",
// INFOCOM 1998) that the SPAL paper describes as the memory-hungry
// hardware baseline (Sec. 2.1): a first level directly indexed by the top
// 24 address bits (2^24 entries) and second-level chunks of 2^8 entries
// for the prefixes longer than 24 bits.
//
// Every lookup costs one memory access, or two when it continues into a
// second-level chunk. The memory requirement is what the paper calls
// "huge (> 32 Mbytes)": 2^24 two-byte entries plus 512 bytes per chunk.
package stride24

import (
	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/rtable"
)

const (
	entryBytes = 2
	tbl24Size  = 1 << 24
	chunkSize  = 1 << 8
	// Entry encoding: tag bit 15 set -> low 15 bits index TBLlong chunks;
	// otherwise the low 15 bits are a next hop, with noRoute for no match.
	chunkTag = uint16(1) << 15
	noRoute  = uint16(0x7fff)
)

// Table is an immutable 24/8 lookup structure built by New.
type Table struct {
	tbl24   []uint16
	tblLong []uint16 // concatenated 256-entry chunks
}

var (
	_ lpm.Engine      = (*Table)(nil)
	_ lpm.BatchEngine = (*Table)(nil)
)

// NewEngine adapts New to the lpm.Builder signature.
func NewEngine(t *rtable.Table) lpm.Engine { return New(t) }

// New builds the table. Prefixes are painted in increasing length order so
// longer prefixes overwrite shorter ones; /25../32 prefixes allocate a
// chunk per distinct /24 they fall in, seeded with that slot's shorter-
// prefix result.
func New(t *rtable.Table) *Table {
	tb := &Table{tbl24: make([]uint16, tbl24Size)}
	for i := range tb.tbl24 {
		tb.tbl24[i] = noRoute
	}
	routes := t.Routes()
	// Paint lengths 0..24 in increasing order.
	for l := 0; l <= 24; l++ {
		for _, r := range routes {
			if int(r.Prefix.Len) != l {
				continue
			}
			start := r.Prefix.Value >> 8
			span := uint32(1) << (24 - l)
			for s := start; s < start+span; s++ {
				tb.tbl24[s] = uint16(r.NextHop)
			}
		}
	}
	// Longer prefixes: group by /24 slot, allocate chunks.
	chunkOf := make(map[uint32]int)
	for l := 25; l <= 32; l++ {
		for _, r := range routes {
			if int(r.Prefix.Len) != l {
				continue
			}
			slot := r.Prefix.Value >> 8
			ci, ok := chunkOf[slot]
			if !ok {
				ci = len(tb.tblLong) / chunkSize
				chunkOf[slot] = ci
				def := tb.tbl24[slot]
				for i := 0; i < chunkSize; i++ {
					tb.tblLong = append(tb.tblLong, def)
				}
				tb.tbl24[slot] = chunkTag | uint16(ci)
			}
			base := ci * chunkSize
			start := int(r.Prefix.Value & 0xff)
			span := 1 << (32 - l)
			for s := start; s < start+span; s++ {
				tb.tblLong[base+s] = uint16(r.NextHop)
			}
		}
	}
	return tb
}

// Lookup implements lpm.Engine: one access, two when the entry chains into
// a second-level chunk.
func (tb *Table) Lookup(a ip.Addr) (rtable.NextHop, int, bool) {
	e := tb.tbl24[a>>8]
	accesses := 1
	if e&chunkTag != 0 {
		e = tb.tblLong[int(e&^chunkTag)*chunkSize+int(a&0xff)]
		accesses = 2
	}
	if e == noRoute {
		return rtable.NoNextHop, accesses, false
	}
	return rtable.NextHop(e), accesses, true
}

// LookupBatch implements lpm.BatchEngine. The table is at most two flat
// array reads deep, so the batch form is a straight sweep: the first-level
// loads of the whole batch are issued before any second-level load is
// needed, letting the memory system overlap them.
func (tb *Table) LookupBatch(addrs []ip.Addr, out []lpm.Result) {
	for i, a := range addrs {
		e := tb.tbl24[a>>8]
		acc := int32(1)
		if e&chunkTag != 0 {
			e = tb.tblLong[int(e&^chunkTag)*chunkSize+int(a&0xff)]
			acc = 2
		}
		if e == noRoute {
			out[i] = lpm.Result{NextHop: rtable.NoNextHop, Accesses: acc}
		} else {
			out[i] = lpm.Result{NextHop: rtable.NextHop(e), Accesses: acc, OK: true}
		}
	}
}

// MemoryBytes reports the modelled footprint (2 bytes per entry in both
// levels); always at least 32 MiB.
func (tb *Table) MemoryBytes() int {
	return (len(tb.tbl24) + len(tb.tblLong)) * entryBytes
}

// Name implements lpm.Engine.
func (tb *Table) Name() string { return "stride24" }

// Chunks returns the number of second-level chunks.
func (tb *Table) Chunks() int { return len(tb.tblLong) / chunkSize }
