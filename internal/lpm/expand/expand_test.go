package expand

import (
	"testing"

	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/rtable"
	"spal/internal/stats"
)

func table(cidrs ...string) *rtable.Table {
	var routes []rtable.Route
	for i, c := range cidrs {
		routes = append(routes, rtable.Route{Prefix: ip.MustPrefix(c), NextHop: rtable.NextHop(i + 1)})
	}
	return rtable.New(routes)
}

func TestBoundaries(t *testing.T) {
	b, err := Boundaries([]int{16, 8, 8})
	if err != nil || len(b) != 3 || b[0] != 16 || b[1] != 24 || b[2] != 32 {
		t.Fatalf("Boundaries = %v, %v", b, err)
	}
	for _, bad := range [][]int{{}, {0, 8}, {-1}, {16, 17}} {
		if _, err := Boundaries(bad); err == nil {
			t.Errorf("Boundaries(%v): want error", bad)
		}
	}
}

func TestRoundUp(t *testing.T) {
	b, _ := Boundaries([]int{16, 8, 8})
	cases := []struct {
		l, want int
		ok      bool
	}{{0, 16, true}, {16, 16, true}, {17, 24, true}, {24, 24, true}, {32, 32, true}}
	for _, c := range cases {
		got, ok := RoundUp(b, c.l)
		if got != c.want || ok != c.ok {
			t.Errorf("RoundUp(%d) = %d,%v", c.l, got, ok)
		}
	}
	short, _ := Boundaries([]int{16})
	if _, ok := RoundUp(short, 20); ok {
		t.Error("RoundUp beyond deepest boundary should fail")
	}
}

func TestExpandPreservesLPM(t *testing.T) {
	// Note: a single-boundary stride like {32} would expand every short
	// prefix to host routes (a /8 alone becomes 2^24 entries), so the
	// sweep stays on multi-level vectors; {32} is covered by the small
	// fixed table below.
	tbl := rtable.Small(3000, 9)
	for _, strides := range [][]int{{16, 8, 8}, {8, 8, 8, 8}, {24, 8}} {
		ex, err := Expand(tbl, strides)
		if err != nil {
			t.Fatalf("strides %v: %v", strides, err)
		}
		// Every expanded length lies on a boundary.
		b, _ := Boundaries(strides)
		onBoundary := map[int]bool{}
		for _, v := range b {
			onBoundary[v] = true
		}
		for _, r := range ex.Routes() {
			if !onBoundary[int(r.Prefix.Len)] {
				t.Fatalf("strides %v: off-boundary length %d", strides, r.Prefix.Len)
			}
		}
		// LPM is preserved exactly.
		want := lpm.NewReference(tbl)
		got := lpm.NewReference(ex)
		rng := stats.NewRNG(3)
		for i := 0; i < 3000; i++ {
			var a ip.Addr
			if i%2 == 0 {
				a = tbl.RandomMatchedAddr(rng)
			} else {
				a = rng.Uint32()
			}
			wNH, _, wOK := want.Lookup(a)
			gNH, _, gOK := got.Lookup(a)
			if wOK != gOK || (wOK && wNH != gNH) {
				t.Fatalf("strides %v addr %s: (%d,%v) != (%d,%v)",
					strides, ip.FormatAddr(a), gNH, gOK, wNH, wOK)
			}
		}
	}
}

func TestExpandCollisionLongerWins(t *testing.T) {
	// /12 and /14 both expand to /16; inside the /14 the /14 must win.
	tbl := table("10.0.0.0/12", "10.4.0.0/14")
	ex, err := Expand(tbl, []int{16})
	if err != nil {
		t.Fatal(err)
	}
	ref := lpm.NewReference(ex)
	a, _ := ip.ParseAddr("10.5.0.1") // inside the /14
	if nh, _, _ := ref.Lookup(a); nh != 2 {
		t.Errorf("inside /14: nh = %d, want 2", nh)
	}
	a, _ = ip.ParseAddr("10.9.0.1") // inside /12 only
	if nh, _, _ := ref.Lookup(a); nh != 1 {
		t.Errorf("inside /12: nh = %d, want 1", nh)
	}
}

func TestExpandSingleBoundarySmallTable(t *testing.T) {
	tbl := table("1.2.3.0/30", "1.2.3.0/32")
	ex, err := Expand(tbl, []int{32})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Len() != 4 { // /30 covers 4 hosts, one overridden by the /32
		t.Errorf("expanded len = %d, want 4", ex.Len())
	}
	ref := lpm.NewReference(ex)
	if nh, _, _ := ref.Lookup(0x01020300); nh != 2 {
		t.Errorf("host route should win: %d", nh)
	}
	if nh, _, _ := ref.Lookup(0x01020301); nh != 1 {
		t.Errorf("/30 expansion wrong: %d", nh)
	}
}

func TestExpandRefusesExplosion(t *testing.T) {
	tbl := table("10.0.0.0/4")
	if _, err := Expand(tbl, []int{32}); err == nil {
		t.Error("want MaxExpansion error for /4 -> 2^28 host routes")
	}
}

func TestExpandRejectsTooLong(t *testing.T) {
	tbl := table("10.0.0.0/24")
	if _, err := Expand(tbl, []int{16}); err == nil {
		t.Error("want error for /24 with 16-bit boundary")
	}
}

func TestCost(t *testing.T) {
	tbl := table("10.0.0.0/14", "20.0.0.0/16", "30.1.2.0/24")
	c, err := Cost(tbl, []int{16, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	// /14 -> 4 at /16; /16 -> 1; /24 -> 1.
	if c != 6 {
		t.Errorf("Cost = %d, want 6", c)
	}
	if _, err := Cost(table("10.0.0.0/24"), []int{16}); err == nil {
		t.Error("want error")
	}
	if _, err := Cost(tbl, nil); err == nil {
		t.Error("want error for empty strides")
	}
}
