// Package expand implements controlled prefix expansion (Srinivasan &
// Varghese), the transformation behind every fixed-stride multibit trie:
// each prefix whose length falls between two stride boundaries is expanded
// into the set of boundary-length prefixes it covers, with longer original
// prefixes taking precedence over expansions of shorter ones.
//
// The SPAL paper's survey section (Sec. 2.1, citing Ruiz-Sanchez et al.)
// discusses exactly this trade: larger strides buy fewer memory accesses
// with more storage. Package multibit consumes this package.
package expand

import (
	"fmt"
	"sort"

	"spal/internal/ip"
	"spal/internal/rtable"
)

// Boundaries converts a stride vector (e.g. 16,8,8) into cumulative depth
// boundaries (16,24,32). It validates that strides are positive and sum
// to at most 32.
func Boundaries(strides []int) ([]int, error) {
	if len(strides) == 0 {
		return nil, fmt.Errorf("expand: empty stride vector")
	}
	var out []int
	sum := 0
	for _, s := range strides {
		if s <= 0 {
			return nil, fmt.Errorf("expand: non-positive stride %d", s)
		}
		sum += s
		out = append(out, sum)
	}
	if sum > 32 {
		return nil, fmt.Errorf("expand: strides sum to %d > 32", sum)
	}
	return out, nil
}

// RoundUp returns the smallest boundary >= l, and ok=false when l exceeds
// the deepest boundary (the prefix cannot be represented).
func RoundUp(boundaries []int, l int) (int, bool) {
	for _, b := range boundaries {
		if l <= b {
			return b, true
		}
	}
	return 0, false
}

// MaxExpansion bounds the number of expanded prefixes Expand will
// materialize; beyond it the stride vector is considered pathological for
// the table (e.g. a {32} boundary turns every /8 into 2^24 host routes)
// and Expand fails instead of exhausting memory.
const MaxExpansion = 1 << 26

// Expand rewrites the table so every prefix length lies on a boundary.
// A prefix of length l becomes 2^(b-l) prefixes of boundary length b;
// when two expansions collide, the one from the longer original prefix
// wins (longest-match semantics are preserved exactly). The final
// boundary must be >= the longest prefix in the table.
func Expand(t *rtable.Table, strides []int) (*rtable.Table, error) {
	boundaries, err := Boundaries(strides)
	if err != nil {
		return nil, err
	}
	if n, err := Cost(t, strides); err != nil {
		return nil, err
	} else if n > MaxExpansion {
		return nil, fmt.Errorf("expand: %d expanded prefixes exceed MaxExpansion=%d", n, MaxExpansion)
	}
	routes := append([]rtable.Route(nil), t.Routes()...)
	// Shorter originals first so longer ones overwrite on collision.
	sort.SliceStable(routes, func(i, j int) bool {
		return routes[i].Prefix.Len < routes[j].Prefix.Len
	})
	won := make(map[ip.Prefix]rtable.Route)
	for _, r := range routes {
		b, ok := RoundUp(boundaries, int(r.Prefix.Len))
		if !ok {
			return nil, fmt.Errorf("expand: prefix %s longer than deepest boundary", r.Prefix)
		}
		span := 1 << (b - int(r.Prefix.Len))
		for k := 0; k < span; k++ {
			p := ip.Prefix{
				Value: r.Prefix.Value | uint32(k)<<(32-b),
				Len:   uint8(b),
			}
			won[p] = rtable.Route{Prefix: p, NextHop: r.NextHop}
		}
	}
	out := make([]rtable.Route, 0, len(won))
	for _, r := range won {
		out = append(out, r)
	}
	return rtable.New(out), nil
}

// Cost reports the number of boundary-length prefixes Expand would
// produce, without materializing them — the storage side of the stride
// trade-off.
func Cost(t *rtable.Table, strides []int) (int, error) {
	boundaries, err := Boundaries(strides)
	if err != nil {
		return 0, err
	}
	// Expansion collisions make the exact count require the full
	// computation; this returns the pre-dedup count, an upper bound that
	// is exact for tables without nested prefixes.
	total := 0
	for _, r := range t.Routes() {
		b, ok := RoundUp(boundaries, int(r.Prefix.Len))
		if !ok {
			return 0, fmt.Errorf("expand: prefix %s longer than deepest boundary", r.Prefix)
		}
		total += 1 << (b - int(r.Prefix.Len))
	}
	return total, nil
}
