package wbs

import (
	"testing"

	"spal/internal/ip"
	"spal/internal/rtable"
)

func table(cidrs ...string) *rtable.Table {
	var routes []rtable.Route
	for i, c := range cidrs {
		routes = append(routes, rtable.Route{Prefix: ip.MustPrefix(c), NextHop: rtable.NextHop(i + 1)})
	}
	return rtable.New(routes)
}

func TestBasicLookup(t *testing.T) {
	tb := New(table("10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"))
	cases := []struct {
		addr string
		want rtable.NextHop
	}{
		{"10.1.2.3", 3},
		{"10.1.9.9", 2},
		{"10.9.9.9", 1},
	}
	for _, c := range cases {
		a, _ := ip.ParseAddr(c.addr)
		nh, acc, ok := tb.Lookup(a)
		if !ok || nh != c.want {
			t.Errorf("Lookup(%s) = (%d,%v), want %d", c.addr, nh, ok, c.want)
		}
		if acc < 1 || acc > 6 {
			t.Errorf("Lookup(%s) accesses = %d, want <= 6", c.addr, acc)
		}
	}
	a, _ := ip.ParseAddr("11.0.0.1")
	if _, _, ok := tb.Lookup(a); ok {
		t.Error("should miss outside 10/8")
	}
}

func TestAccessBoundIndependentOfSize(t *testing.T) {
	tb := New(rtable.Small(20000, 5))
	tblR := rtable.Small(20000, 5)
	for i, r := range tblR.Routes() {
		if i%37 != 0 {
			continue
		}
		_, acc, _ := tb.Lookup(r.Prefix.FirstAddr())
		if acc > 6 {
			t.Fatalf("accesses = %d for %s, want <= ceil(log2(32))+1", acc, r.Prefix)
		}
	}
}

// The signature marker pathology: a marker exists at the midpoint but no
// longer real prefix matches the address; bmp must rescue the answer.
func TestMarkerDoesNotMislead(t *testing.T) {
	// /24 forces a marker at length 16 for its own path. An address
	// matching the /16 marker key but not the /24 must fall back to the
	// /8, not to "no route".
	tb := New(table("10.0.0.0/8", "10.1.2.0/24"))
	a, _ := ip.ParseAddr("10.1.3.1") // hits the 10.1/16 marker, misses the /24
	nh, _, ok := tb.Lookup(a)
	if !ok || nh != 1 {
		t.Fatalf("marker misled the search: (%d,%v), want (1,true)", nh, ok)
	}
}

func TestDefaultRouteFallback(t *testing.T) {
	tb := New(table("0.0.0.0/0", "10.0.0.0/8"))
	a, _ := ip.ParseAddr("200.0.0.1")
	if nh, _, ok := tb.Lookup(a); !ok || nh != 1 {
		t.Errorf("default fallback = (%d,%v)", nh, ok)
	}
	a, _ = ip.ParseAddr("10.0.0.1")
	if nh, _, _ := tb.Lookup(a); nh != 2 {
		t.Error("/8 should beat default")
	}
}

func TestMarkersCounted(t *testing.T) {
	// A single /24 needs markers at 16 and 24 is real; path: 16(marker),
	// 24(real), plus intermediate mids 20, 22, 23 -> entries > 1.
	tb := New(table("10.1.2.0/24"))
	if tb.Entries() <= 1 {
		t.Errorf("Entries = %d, markers missing", tb.Entries())
	}
	if tb.MemoryBytes() <= tb.Entries()*entryBytes-1 {
		t.Errorf("MemoryBytes = %d lacks hash slack", tb.MemoryBytes())
	}
	if tb.Name() != "wbs" {
		t.Error("Name mismatch")
	}
}

func TestEmptyTable(t *testing.T) {
	tb := New(rtable.New(nil))
	if _, _, ok := tb.Lookup(1); ok {
		t.Error("empty table must miss")
	}
}
