// Package wbs implements binary search on prefix lengths (Waldvogel,
// Varghese, Turner & Plattner, SIGCOMM 1997), one of the classic lookup
// schemes in the survey the SPAL paper cites (Ruiz-Sanchez et al.): a hash
// table per prefix length, probed by binary search over the length range,
// with *markers* guiding the search toward longer matches and
// precomputed best-matching-prefix (bmp) values preventing markers from
// leading the search astray.
//
// A lookup costs at most ceil(log2(32)) = 5 hash probes — each charged as
// one modelled memory access — independent of the table size, trading
// memory (markers) for the trie walk.
//
// Memory model: 8 bytes per stored entry (4-byte key, 2-byte real next
// hop, 2-byte bmp), scaled by 1.5 for hash-table slack.
package wbs

import (
	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/rtable"
)

const (
	entryBytes = 8
	hashSlack  = 1.5
)

type entry struct {
	hasReal bool
	realNH  rtable.NextHop
	hasBMP  bool
	bmpNH   rtable.NextHop
}

// Table is an immutable binary-search-on-lengths structure built by New.
type Table struct {
	byLen      [33]map[uint32]*entry
	entries    int
	hasDefault bool
	defaultNH  rtable.NextHop
}

var _ lpm.Engine = (*Table)(nil)

// NewEngine adapts New to the lpm.Builder signature.
func NewEngine(t *rtable.Table) lpm.Engine { return New(t) }

// New builds the per-length hash tables, inserts markers along each
// prefix's binary-search path, and precomputes marker bmp values.
func New(t *rtable.Table) *Table {
	tb := &Table{}
	get := func(l int, key uint32) *entry {
		if tb.byLen[l] == nil {
			tb.byLen[l] = make(map[uint32]*entry)
		}
		e, ok := tb.byLen[l][key]
		if !ok {
			e = &entry{}
			tb.byLen[l][key] = e
			tb.entries++
		}
		return e
	}

	// Real prefixes. A length-0 default route cannot be reached by a
	// search over lengths 1..32, so it becomes the fallback answer.
	for _, r := range t.Routes() {
		if r.Prefix.Len == 0 {
			tb.hasDefault = true
			tb.defaultNH = r.NextHop
			continue
		}
		e := get(int(r.Prefix.Len), r.Prefix.Value)
		e.hasReal = true
		e.realNH = r.NextHop
	}

	// Markers along each prefix's binary-search path: every midpoint the
	// search must "hit" on its way down to the prefix's length.
	for _, r := range t.Routes() {
		l := int(r.Prefix.Len)
		lo, hi := 1, 32
		for lo <= hi {
			m := (lo + hi) / 2
			switch {
			case m < l:
				get(m, r.Prefix.Value&ip.Mask(uint8(m)))
				lo = m + 1
			case m == l:
				lo = hi + 1 // the real entry anchors this level
			default:
				hi = m - 1
			}
		}
	}

	// Precompute bmp for every entry: the longest real prefix of length
	// <= l matching the entry's key (the entry itself when real).
	for l := 1; l <= 32; l++ {
		for key, e := range tb.byLen[l] {
			if nh, ok := tb.lookupUpTo(key, l); ok {
				e.hasBMP = true
				e.bmpNH = nh
			}
		}
	}
	return tb
}

// lookupUpTo finds the longest real prefix with length <= maxLen matching
// value (build-time helper; not charged as lookup accesses).
func (tb *Table) lookupUpTo(value uint32, maxLen int) (rtable.NextHop, bool) {
	for l := maxLen; l >= 1; l-- {
		if tb.byLen[l] == nil {
			continue
		}
		if e, ok := tb.byLen[l][value&ip.Mask(uint8(l))]; ok && e.hasReal {
			return e.realNH, true
		}
	}
	if tb.hasDefault {
		return tb.defaultNH, true
	}
	return rtable.NoNextHop, false
}

// Lookup binary-searches the length range; every hash probe is one
// modelled memory access. A hit (marker or real) records its bmp and
// sends the search toward longer prefixes; a miss goes shorter.
func (tb *Table) Lookup(a ip.Addr) (rtable.NextHop, int, bool) {
	best := rtable.NoNextHop
	found := false
	if tb.hasDefault {
		best, found = tb.defaultNH, true
	}
	accesses := 0
	lo, hi := 1, 32
	for lo <= hi {
		m := (lo + hi) / 2
		accesses++
		var ent *entry
		if tb.byLen[m] != nil {
			ent = tb.byLen[m][a&ip.Mask(uint8(m))]
		}
		if ent != nil {
			if ent.hasBMP {
				best, found = ent.bmpNH, true
			}
			lo = m + 1
		} else {
			hi = m - 1
		}
	}
	return best, accesses, found
}

// MemoryBytes reports the modelled footprint.
func (tb *Table) MemoryBytes() int {
	return int(float64(tb.entries*entryBytes) * hashSlack)
}

// Name implements lpm.Engine.
func (tb *Table) Name() string { return "wbs" }

// Entries returns the stored entry count (prefixes + markers).
func (tb *Table) Entries() int { return tb.entries }
