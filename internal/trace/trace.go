// Package trace provides the packet-destination streams that drive the
// simulator. The paper uses WorldCup98 request logs (traces D_75, D_81),
// two Abilene-I PMA traces (L_92-0, L_92-1) and the Bell Labs-I trace; none
// of those artifacts ships here, so this package synthesizes streams with
// the property the simulator actually consumes — temporal locality — and
// names five presets after the paper's traces (see DESIGN.md,
// "Substitutions").
//
// The generative model combines the two locality mechanisms the
// measurement literature of the period reports:
//
//   - a Zipf popularity law over a fixed destination pool (a small share of
//     flows carries most packets; the paper cites 9% of AS-pair flows
//     carrying 90% of traffic), and
//   - packet trains: a flow emits several packets back-to-back, so repeats
//     arrive clustered rather than independently.
//
// Destinations are drawn from the routing table under simulation so every
// packet has a longest-prefix match.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"spal/internal/ip"
	"spal/internal/rtable"
	"spal/internal/stats"
)

// Source yields one destination address per packet.
type Source interface {
	// Next returns the next destination. ok is false when the source is
	// exhausted (synthetic sources never are).
	Next() (a ip.Addr, ok bool)
}

// Config shapes a synthetic trace.
type Config struct {
	// PoolSize is the number of distinct destination addresses.
	PoolSize int
	// ZipfS is the Zipf skew parameter (popularity of rank r ∝ r^-s);
	// larger values concentrate traffic on fewer destinations.
	ZipfS float64
	// MeanTrain is the mean packet-train length: the expected number of
	// consecutive packets to the same destination. 1 disables trains.
	MeanTrain float64
	// DriftEvery > 0 rotates the popularity ranking every that many
	// packets: DriftFraction of the ranks are reshuffled, so the hot set
	// slowly migrates (flows die, new flows appear). The rotation is a
	// deterministic function of the stream epoch, so concurrent per-LC
	// streams keep sharing the same hot set.
	DriftEvery int64
	// DriftFraction is the share of ranks reshuffled per drift epoch
	// (default 0.1 when DriftEvery is set).
	DriftFraction float64
	// Seed drives pool construction.
	Seed uint64
}

// Preset names the five paper traces. The parameters differ in pool size,
// skew and train length so the five curves separate in Figs. 4-6, and are
// calibrated so a 4K-block LR-cache reaches the >0.93 hit-rate regime the
// paper reports for such traces.
type Preset string

// The paper's five traces.
const (
	D75  Preset = "D_75"   // WorldCup98, July 9 1998
	D81  Preset = "D_81"   // WorldCup98, July 15 1998
	L920 Preset = "L_92-0" // PMA Abilene-I
	L921 Preset = "L_92-1" // PMA Abilene-I
	BL   Preset = "B_L"    // PMA Bell Labs-I
)

// Presets lists the five paper traces in the order the figures plot them.
var Presets = []Preset{D75, D81, L920, L921, BL}

// PresetConfig returns the generator parameters for a named trace.
func PresetConfig(p Preset) Config {
	switch p {
	case D75:
		return Config{PoolSize: 24000, ZipfS: 1.10, MeanTrain: 4, Seed: 0x75}
	case D81:
		return Config{PoolSize: 32000, ZipfS: 1.05, MeanTrain: 4, Seed: 0x81}
	case L920:
		return Config{PoolSize: 36000, ZipfS: 1.05, MeanTrain: 3, Seed: 0x920}
	case L921:
		return Config{PoolSize: 40000, ZipfS: 1.04, MeanTrain: 3, Seed: 0x921}
	case BL:
		return Config{PoolSize: 16000, ZipfS: 1.20, MeanTrain: 6, Seed: 0xb1}
	default:
		panic(fmt.Sprintf("trace: unknown preset %q", string(p)))
	}
}

// Pool is a shared destination population with Zipf popularity. Multiple
// per-LC streams draw from one pool, so the same hot destinations appear
// at every line card — the property SPAL's remote-result caching exploits.
type Pool struct {
	addrs []ip.Addr
	cdf   []float64
}

// NewPool draws cfg.PoolSize destinations from tbl (each guaranteed to
// match a route) and precomputes the Zipf CDF.
func NewPool(tbl *rtable.Table, cfg Config) *Pool {
	if cfg.PoolSize <= 0 {
		panic("trace: PoolSize must be positive")
	}
	rng := stats.NewRNG(cfg.Seed*0x9e37 + 1)
	p := &Pool{
		addrs: make([]ip.Addr, cfg.PoolSize),
		cdf:   make([]float64, cfg.PoolSize),
	}
	seen := make(map[ip.Addr]bool, cfg.PoolSize)
	for i := range p.addrs {
		a := tbl.RandomMatchedAddr(rng)
		for seen[a] {
			a = tbl.RandomMatchedAddr(rng)
		}
		seen[a] = true
		p.addrs[i] = a
	}
	// Zipf CDF over ranks 1..N. Rank order is the draw order, which is
	// already random, so no extra shuffle is needed.
	sum := 0.0
	for i := range p.cdf {
		sum += math.Pow(float64(i+1), -cfg.ZipfS)
		p.cdf[i] = sum
	}
	for i := range p.cdf {
		p.cdf[i] /= sum
	}
	return p
}

// Size returns the pool population.
func (p *Pool) Size() int { return len(p.addrs) }

// drawIndex samples one popularity rank.
func (p *Pool) drawIndex(rng *stats.RNG) int {
	u := rng.Float64()
	i := sort.SearchFloat64s(p.cdf, u)
	if i >= len(p.addrs) {
		i = len(p.addrs) - 1
	}
	return i
}

// Draw samples one destination by popularity (exposed for custom
// generators built on the pool).
func (p *Pool) Draw(rng *stats.RNG) ip.Addr {
	return p.addrs[p.drawIndex(rng)]
}

// Synthetic is a deterministic, never-ending trace stream over a Pool.
type Synthetic struct {
	pool      *Pool
	cfg       Config
	rng       *stats.RNG
	repeatP   float64
	current   ip.Addr
	started   bool
	generated int64

	// Drift state: remap permutes popularity ranks; rebuilt per epoch.
	remap      []int32
	driftEpoch int64
}

// NewSynthetic creates a per-LC stream. Streams with different salts over
// the same pool are independent but share the hot set.
func NewSynthetic(pool *Pool, cfg Config, salt uint64) *Synthetic {
	repeatP := 0.0
	if cfg.MeanTrain > 1 {
		repeatP = 1 - 1/cfg.MeanTrain
	}
	if cfg.DriftEvery > 0 && cfg.DriftFraction == 0 {
		cfg.DriftFraction = 0.1
	}
	return &Synthetic{
		pool:    pool,
		cfg:     cfg,
		rng:     stats.NewRNG(cfg.Seed ^ (salt+1)*0x9e3779b97f4a7c15),
		repeatP: repeatP,
	}
}

// Next implements Source: continue the current packet train with
// probability 1-1/MeanTrain, otherwise start a new flow by popularity.
func (s *Synthetic) Next() (ip.Addr, bool) {
	s.generated++
	if s.started && s.rng.Float64() < s.repeatP {
		return s.current, true
	}
	i := s.pool.drawIndex(s.rng)
	if s.cfg.DriftEvery > 0 {
		s.maybeDrift()
		i = int(s.remap[i])
	}
	s.current = s.pool.addrs[i]
	s.started = true
	return s.current, true
}

// maybeDrift rebuilds the rank remap when the stream enters a new drift
// epoch. The shuffle depends only on (pool seed, epoch), so all per-LC
// streams agree on the hot set at equal epochs.
func (s *Synthetic) maybeDrift() {
	epoch := s.generated / s.cfg.DriftEvery
	n := s.pool.Size()
	if s.remap == nil {
		s.remap = make([]int32, n)
		for i := range s.remap {
			s.remap[i] = int32(i)
		}
		s.driftEpoch = 0
	}
	// Apply the shuffle of each newly entered epoch incrementally; the
	// shuffle of epoch e depends only on (pool seed, e), so all per-LC
	// streams converge on the same mapping.
	swaps := int(float64(n) * s.cfg.DriftFraction)
	for e := s.driftEpoch + 1; e <= epoch; e++ {
		rng := stats.NewRNG(s.cfg.Seed*0x9e3779b97f4a7c15 + uint64(e))
		for k := 0; k < swaps; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			s.remap[i], s.remap[j] = s.remap[j], s.remap[i]
		}
	}
	s.driftEpoch = epoch
}

// Generated returns how many packets the stream has produced.
func (s *Synthetic) Generated() int64 { return s.generated }

// Slice materializes the next n destinations (testing and file export).
func Slice(src Source, n int) []ip.Addr {
	out := make([]ip.Addr, 0, n)
	for i := 0; i < n; i++ {
		a, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, a)
	}
	return out
}

// Write stores destinations one dotted-quad per line.
func Write(w io.Writer, addrs []ip.Addr) error {
	bw := bufio.NewWriter(w)
	for _, a := range addrs {
		if _, err := fmt.Fprintln(bw, ip.FormatAddr(a)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// FileSource replays a stored trace; Next returns ok=false at the end.
type FileSource struct {
	addrs []ip.Addr
	pos   int
}

// Read parses a trace written by Write. Blank lines and '#' comments are
// skipped.
func Read(r io.Reader) (*FileSource, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	fs := &FileSource{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		a, err := ip.ParseAddr(text)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		fs.addrs = append(fs.addrs, a)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fs, nil
}

// Next implements Source.
func (fs *FileSource) Next() (ip.Addr, bool) {
	if fs.pos >= len(fs.addrs) {
		return 0, false
	}
	a := fs.addrs[fs.pos]
	fs.pos++
	return a, true
}

// Len returns the number of stored destinations.
func (fs *FileSource) Len() int { return len(fs.addrs) }

// Rewind restarts the replay.
func (fs *FileSource) Rewind() { fs.pos = 0 }
