package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"spal/internal/ip"
)

func TestBinaryRoundTrip(t *testing.T) {
	addrs := []ip.Addr{0, 1, 0xffffffff, 0x0a010203}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, addrs); err != nil {
		t.Fatal(err)
	}
	if got := buf.Len(); got != 12+4*len(addrs) {
		t.Errorf("encoded size = %d", got)
	}
	fs, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back := Slice(fs, len(addrs))
	for i := range addrs {
		if back[i] != addrs[i] {
			t.Fatalf("record %d: %#x != %#x", i, back[i], addrs[i])
		}
	}
}

func TestBinaryEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, nil); err != nil {
		t.Fatal(err)
	}
	fs, err := ReadBinary(&buf)
	if err != nil || fs.Len() != 0 {
		t.Fatalf("empty round trip: %v len=%d", err, fs.Len())
	}
}

func TestBinaryErrors(t *testing.T) {
	cases := map[string][]byte{
		"short header":  {1, 2, 3},
		"bad magic":     append([]byte("NOPE"), make([]byte, 8)...),
		"bad version":   append([]byte("SPTR"), 0, 0, 0, 9, 0, 0, 0, 0),
		"truncated":     append([]byte("SPTR"), 0, 0, 0, 1, 0, 0, 0, 5, 1, 2),
		"absurd header": append([]byte("SPTR"), 0, 0, 0, 1, 0xff, 0xff, 0xff, 0xff),
	}
	for name, raw := range cases {
		if _, err := ReadBinary(bytes.NewReader(raw)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

// Property: any address sequence survives a binary round trip intact.
func TestBinaryRoundTripQuick(t *testing.T) {
	f := func(addrs []uint32) bool {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, addrs); err != nil {
			return false
		}
		fs, err := ReadBinary(&buf)
		if err != nil || fs.Len() != len(addrs) {
			return false
		}
		back := Slice(fs, len(addrs))
		for i := range addrs {
			if back[i] != addrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
