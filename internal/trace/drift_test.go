package trace

import (
	"testing"

	"spal/internal/ip"
	"spal/internal/rtable"
)

func TestDriftRotatesHotSet(t *testing.T) {
	tblR := rtable.Small(3000, 7)
	cfg := Config{PoolSize: 2000, ZipfS: 1.2, MeanTrain: 1, Seed: 5,
		DriftEvery: 5000, DriftFraction: 0.5}
	pool := NewPool(tblR, cfg)
	src := NewSynthetic(pool, cfg, 1)

	// Top destinations of the first epoch...
	first := Slice(src, 5000)
	// ...should differ substantially from a much later epoch's.
	for i := 0; i < 20; i++ {
		Slice(src, 5000)
	}
	late := Slice(src, 5000)

	topSet := func(addrs []ip.Addr, k int) map[ip.Addr]bool {
		counts := map[ip.Addr]int{}
		for _, a := range addrs {
			counts[a]++
		}
		out := map[ip.Addr]bool{}
		for len(out) < k && len(counts) > 0 {
			var best ip.Addr
			bestC := -1
			for a, c := range counts {
				if c > bestC {
					best, bestC = a, c
				}
			}
			delete(counts, best)
			out[best] = true
		}
		return out
	}
	a, b := topSet(first, 50), topSet(late, 50)
	overlap := 0
	for x := range a {
		if b[x] {
			overlap++
		}
	}
	if overlap > 40 {
		t.Errorf("top-50 overlap after 20 drift epochs = %d, want substantial rotation", overlap)
	}
}

func TestDriftIsSharedAcrossStreams(t *testing.T) {
	tblR := rtable.Small(3000, 7)
	cfg := Config{PoolSize: 500, ZipfS: 1.3, MeanTrain: 1, Seed: 9,
		DriftEvery: 1000, DriftFraction: 0.3}
	pool := NewPool(tblR, cfg)
	s1 := NewSynthetic(pool, cfg, 1)
	s2 := NewSynthetic(pool, cfg, 2)
	// Advance both into epoch 3 and compare their hot sets: different
	// salts, same epoch -> heavily overlapping top destinations.
	a1 := Slice(s1, 4000)[3000:]
	a2 := Slice(s2, 4000)[3000:]
	c1, c2 := map[ip.Addr]bool{}, map[ip.Addr]bool{}
	for _, a := range a1 {
		c1[a] = true
	}
	for _, a := range a2 {
		c2[a] = true
	}
	overlap := 0
	for a := range c1 {
		if c2[a] {
			overlap++
		}
	}
	if overlap < len(c1)/3 {
		t.Errorf("streams share only %d/%d destinations at equal epoch", overlap, len(c1))
	}
}

func TestNoDriftKeepsRanking(t *testing.T) {
	tblR := rtable.Small(1000, 7)
	cfg := Config{PoolSize: 200, ZipfS: 1.3, MeanTrain: 1, Seed: 9}
	pool := NewPool(tblR, cfg)
	src := NewSynthetic(pool, cfg, 1)
	early := Slice(src, 3000)
	late := Slice(src, 3000)
	top := func(addrs []ip.Addr) ip.Addr {
		counts := map[ip.Addr]int{}
		for _, a := range addrs {
			counts[a]++
		}
		var best ip.Addr
		bestC := -1
		for a, c := range counts {
			if c > bestC {
				best, bestC = a, c
			}
		}
		return best
	}
	if top(early) != top(late) {
		t.Error("without drift the most popular destination must not change")
	}
}
