package trace

import (
	"bytes"
	"strings"
	"testing"

	"spal/internal/ip"
	"spal/internal/rtable"
)

func testPool(t *testing.T, cfg Config) (*Pool, *rtable.Table) {
	t.Helper()
	tbl := rtable.Small(3000, 7)
	return NewPool(tbl, cfg), tbl
}

func TestPoolAddressesMatchTable(t *testing.T) {
	cfg := Config{PoolSize: 500, ZipfS: 1.0, MeanTrain: 2, Seed: 1}
	pool, tbl := testPool(t, cfg)
	if pool.Size() != 500 {
		t.Fatalf("Size = %d", pool.Size())
	}
	for _, a := range pool.addrs {
		if _, ok := tbl.LookupLinear(a); !ok {
			t.Fatalf("pool address %s unmatched", ip.FormatAddr(a))
		}
	}
	// Distinctness.
	seen := make(map[ip.Addr]bool)
	for _, a := range pool.addrs {
		if seen[a] {
			t.Fatal("duplicate pool address")
		}
		seen[a] = true
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	cfg := Config{PoolSize: 100, ZipfS: 1.0, MeanTrain: 3, Seed: 5}
	pool, _ := testPool(t, cfg)
	a := Slice(NewSynthetic(pool, cfg, 2), 1000)
	b := Slice(NewSynthetic(pool, cfg, 2), 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same salt must give identical streams")
		}
	}
	c := Slice(NewSynthetic(pool, cfg, 3), 1000)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different salts should diverge")
	}
}

func TestTrainsProduceRuns(t *testing.T) {
	cfg := Config{PoolSize: 5000, ZipfS: 0.5, MeanTrain: 5, Seed: 9}
	pool, _ := testPool(t, cfg)
	addrs := Slice(NewSynthetic(pool, cfg, 1), 50000)
	repeats := 0
	for i := 1; i < len(addrs); i++ {
		if addrs[i] == addrs[i-1] {
			repeats++
		}
	}
	frac := float64(repeats) / float64(len(addrs)-1)
	// MeanTrain 5 -> repeat probability 0.8 (plus accidental repeats).
	if frac < 0.75 || frac > 0.87 {
		t.Errorf("repeat fraction = %.3f, want ~0.80", frac)
	}
}

func TestMeanTrainOneDisablesRuns(t *testing.T) {
	cfg := Config{PoolSize: 5000, ZipfS: 0.2, MeanTrain: 1, Seed: 9}
	pool, _ := testPool(t, cfg)
	addrs := Slice(NewSynthetic(pool, cfg, 1), 20000)
	repeats := 0
	for i := 1; i < len(addrs); i++ {
		if addrs[i] == addrs[i-1] {
			repeats++
		}
	}
	if frac := float64(repeats) / float64(len(addrs)-1); frac > 0.05 {
		t.Errorf("repeat fraction = %.3f with trains disabled", frac)
	}
}

func TestZipfSkewConcentratesTraffic(t *testing.T) {
	flat := Config{PoolSize: 2000, ZipfS: 0.1, MeanTrain: 1, Seed: 3}
	skew := Config{PoolSize: 2000, ZipfS: 1.3, MeanTrain: 1, Seed: 3}
	poolF, _ := testPool(t, flat)
	poolS, _ := testPool(t, skew)
	aF := Slice(NewSynthetic(poolF, flat, 1), 40000)
	aS := Slice(NewSynthetic(poolS, skew, 1), 40000)
	shareF := TopShare(aF, 200) // top 10%
	shareS := TopShare(aS, 200)
	if shareS <= shareF {
		t.Errorf("skewed TopShare %.3f should exceed flat %.3f", shareS, shareF)
	}
	if shareS < 0.6 {
		t.Errorf("skewed top-10%% share = %.3f, want heavy concentration", shareS)
	}
}

func TestPresetsProduceLocalityRegime(t *testing.T) {
	// The paper's premise: a 4K-entry cache sees hit rates >= 0.93 on
	// these streams. StackHitRatio at depth 4096 is the geometry-free
	// upper-bound analogue; require > 0.90 for every preset.
	tbl := rtable.Small(20000, 4)
	for _, p := range Presets {
		cfg := PresetConfig(p)
		pool := NewPool(tbl, cfg)
		addrs := Slice(NewSynthetic(pool, cfg, 0), 60000)
		r := StackHitRatio(addrs, 4096)
		if r < 0.90 {
			t.Errorf("%s: stack hit ratio %.3f at depth 4096, want >= 0.90", p, r)
		}
	}
}

func TestPresetsAreDistinct(t *testing.T) {
	seen := make(map[int]bool)
	for _, p := range Presets {
		cfg := PresetConfig(p)
		if seen[cfg.PoolSize] {
			t.Errorf("%s: duplicate pool size %d", p, cfg.PoolSize)
		}
		seen[cfg.PoolSize] = true
	}
}

func TestPresetConfigPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	PresetConfig(Preset("nope"))
}

func TestWriteReadRoundTrip(t *testing.T) {
	cfg := Config{PoolSize: 50, ZipfS: 1, MeanTrain: 2, Seed: 2}
	pool, _ := testPool(t, cfg)
	addrs := Slice(NewSynthetic(pool, cfg, 0), 500)
	var buf bytes.Buffer
	if err := Write(&buf, addrs); err != nil {
		t.Fatal(err)
	}
	fs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Len() != len(addrs) {
		t.Fatalf("Len = %d, want %d", fs.Len(), len(addrs))
	}
	back := Slice(fs, len(addrs)+10)
	for i := range addrs {
		if back[i] != addrs[i] {
			t.Fatal("round trip altered addresses")
		}
	}
	// Exhaustion then rewind.
	if _, ok := fs.Next(); ok {
		t.Error("exhausted source should return ok=false")
	}
	fs.Rewind()
	if _, ok := fs.Next(); !ok {
		t.Error("rewind should restart")
	}
}

func TestReadSkipsCommentsAndRejectsGarbage(t *testing.T) {
	fs, err := Read(strings.NewReader("# hi\n\n1.2.3.4\n"))
	if err != nil || fs.Len() != 1 {
		t.Fatalf("Read: %v len=%d", err, fs.Len())
	}
	if _, err := Read(strings.NewReader("not-an-ip\n")); err == nil {
		t.Error("want parse error")
	}
}

func TestStackHitRatio(t *testing.T) {
	// a b a b ... : depth 2 catches every re-reference, depth 1 none.
	addrs := make([]ip.Addr, 100)
	for i := range addrs {
		addrs[i] = ip.Addr(i % 2)
	}
	if r := StackHitRatio(addrs, 2); r != 0.98 {
		t.Errorf("depth 2 ratio = %v, want 0.98 (98 hits / 100)", r)
	}
	if r := StackHitRatio(addrs, 1); r != 0 {
		t.Errorf("depth 1 ratio = %v, want 0", r)
	}
	if StackHitRatio(nil, 4) != 0 || StackHitRatio(addrs, 0) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestStackHitRatioEviction(t *testing.T) {
	// Cyclic scan over 3 addresses with depth 2: every access misses
	// (classic LRU pathological case).
	addrs := make([]ip.Addr, 90)
	for i := range addrs {
		addrs[i] = ip.Addr(i % 3)
	}
	if r := StackHitRatio(addrs, 2); r != 0 {
		t.Errorf("cyclic scan ratio = %v, want 0", r)
	}
	if r := StackHitRatio(addrs, 3); r < 0.95 {
		t.Errorf("depth 3 should capture the cycle: %v", r)
	}
}

func TestWorkingSet(t *testing.T) {
	addrs := []ip.Addr{1, 1, 2, 2, 3, 3, 4, 4}
	if ws := WorkingSet(addrs, 4); ws != 2 {
		t.Errorf("WorkingSet = %v, want 2", ws)
	}
	if WorkingSet(nil, 4) != 0 || WorkingSet(addrs, 0) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestTopShare(t *testing.T) {
	addrs := []ip.Addr{1, 1, 1, 1, 2, 3, 4, 5}
	if s := TopShare(addrs, 1); s != 0.5 {
		t.Errorf("TopShare(1) = %v, want 0.5", s)
	}
	if s := TopShare(addrs, 100); s != 1.0 {
		t.Errorf("TopShare(all) = %v, want 1", s)
	}
	if TopShare(nil, 1) != 0 {
		t.Error("empty TopShare should be 0")
	}
}

func TestNewPoolPanicsOnZeroSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewPool(rtable.Small(10, 1), Config{PoolSize: 0})
}
