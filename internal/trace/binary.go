package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"spal/internal/ip"
)

// Binary trace format: the text format (one dotted quad per line) is
// convenient but ~4x larger than needed at the paper's 300k-packets-per-LC
// scale. The binary format is a fixed 12-byte header — magic "SPTR",
// version, record count — followed by one big-endian uint32 per
// destination.

var binaryMagic = [4]byte{'S', 'P', 'T', 'R'}

const binaryVersion = 1

// WriteBinary stores destinations in the binary trace format.
func WriteBinary(w io.Writer, addrs []ip.Addr) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], binaryVersion)
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(addrs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [4]byte
	for _, a := range addrs {
		binary.BigEndian.PutUint32(rec[:], a)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a binary trace written by WriteBinary.
func ReadBinary(r io.Reader) (*FileSource, error) {
	br := bufio.NewReader(r)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: short binary header: %v", err)
	}
	if [4]byte(hdr[0:4]) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[0:4])
	}
	if v := binary.BigEndian.Uint32(hdr[4:8]); v != binaryVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	n := binary.BigEndian.Uint32(hdr[8:12])
	const maxRecords = 1 << 28 // 1 GiB of records; refuse absurd headers
	if n > maxRecords {
		return nil, fmt.Errorf("trace: header claims %d records", n)
	}
	fs := &FileSource{addrs: make([]ip.Addr, 0, n)}
	var rec [4]byte
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: truncated at record %d: %v", i, err)
		}
		fs.addrs = append(fs.addrs, binary.BigEndian.Uint32(rec[:]))
	}
	return fs, nil
}
