package trace

import (
	"sort"

	"spal/internal/ip"
)

// StackHitRatio computes the fraction of references that hit an LRU stack
// of the given depth — the standard temporal-locality measure for address
// streams, and a cache-geometry-independent predictor of LR-cache hit
// rates. The paper's premise is that IP streams keep enough locality for a
// 4K-entry cache (hit rates above 0.93 on 1998 and 2002 traces).
func StackHitRatio(addrs []ip.Addr, depth int) float64 {
	if len(addrs) == 0 || depth <= 0 {
		return 0
	}
	pos := make(map[ip.Addr]int, depth*2)
	// Doubly linked list over a slice arena for O(1) LRU moves.
	type node struct {
		addr       ip.Addr
		prev, next int
	}
	nodes := make([]node, 0, depth)
	head, tail := -1, -1 // head = most recent
	unlink := func(i int) {
		n := nodes[i]
		if n.prev >= 0 {
			nodes[n.prev].next = n.next
		} else {
			head = n.next
		}
		if n.next >= 0 {
			nodes[n.next].prev = n.prev
		} else {
			tail = n.prev
		}
	}
	pushFront := func(i int) {
		nodes[i].prev = -1
		nodes[i].next = head
		if head >= 0 {
			nodes[head].prev = i
		}
		head = i
		if tail < 0 {
			tail = i
		}
	}
	hits := 0
	for _, a := range addrs {
		if i, ok := pos[a]; ok {
			hits++
			unlink(i)
			pushFront(i)
			continue
		}
		if len(nodes) < depth {
			nodes = append(nodes, node{addr: a})
			pos[a] = len(nodes) - 1
			pushFront(len(nodes) - 1)
			continue
		}
		// Evict LRU, reuse its slot.
		i := tail
		unlink(i)
		delete(pos, nodes[i].addr)
		nodes[i] = node{addr: a}
		pos[a] = i
		pushFront(i)
	}
	return float64(hits) / float64(len(addrs))
}

// WorkingSet returns the mean number of distinct destinations per window
// of the given size (tumbling windows).
func WorkingSet(addrs []ip.Addr, window int) float64 {
	if len(addrs) == 0 || window <= 0 {
		return 0
	}
	totalDistinct := 0
	windows := 0
	for start := 0; start < len(addrs); start += window {
		end := start + window
		if end > len(addrs) {
			end = len(addrs)
		}
		seen := make(map[ip.Addr]bool, end-start)
		for _, a := range addrs[start:end] {
			seen[a] = true
		}
		totalDistinct += len(seen)
		windows++
	}
	return float64(totalDistinct) / float64(windows)
}

// TopShare returns the traffic share of the most popular k destinations —
// the "9% of flows carry 90% of packets" style statistic.
func TopShare(addrs []ip.Addr, k int) float64 {
	if len(addrs) == 0 || k <= 0 {
		return 0
	}
	counts := make(map[ip.Addr]int)
	for _, a := range addrs {
		counts[a]++
	}
	top := make([]int, 0, len(counts))
	for _, c := range counts {
		top = append(top, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(top)))
	if k > len(top) {
		k = len(top)
	}
	sum := 0
	for _, c := range top[:k] {
		sum += c
	}
	return float64(sum) / float64(len(addrs))
}
