// Package stats provides the deterministic random-number generator and the
// light-weight statistics primitives (counters, running means, histograms,
// percentiles) shared by the trace generator, the routing-table synthesizer,
// and the cycle simulator.
//
// All randomness in the repository flows through RNG so that every
// experiment is reproducible from a single seed.
package stats

// RNG is a splitmix64 generator: tiny state, excellent diffusion, and —
// unlike math/rand — trivially forkable so each line card or generator can
// own an independent deterministic stream.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Fork derives an independent child generator. The child's stream is a
// deterministic function of the parent state and the salt, and forking does
// not disturb the parent's own stream beyond one draw.
func (r *RNG) Fork(salt uint64) *RNG {
	return &RNG{state: r.Uint64() ^ (salt * 0x9e3779b97f4a7c15)}
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns 32 uniformly random bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform integer in [lo, hi] inclusive.
func (r *RNG) Range(lo, hi int) int {
	if hi < lo {
		panic("stats: Range with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
