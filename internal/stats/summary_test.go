package stats

import (
	"math"
	"testing"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Std != 0 || s.Min != 0 || s.Max != 0 {
		t.Errorf("empty summary not zero: %+v", s)
	}
	if s.RelStd() != 0 {
		t.Errorf("empty RelStd = %v, want 0", s.RelStd())
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{42.5})
	if s.N != 1 || s.Mean != 42.5 || s.Min != 42.5 || s.Max != 42.5 {
		t.Errorf("single-sample summary wrong: %+v", s)
	}
	if s.Std != 0 || s.RelStd() != 0 {
		t.Errorf("single sample must have zero spread, got std=%v relstd=%v", s.Std, s.RelStd())
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	// Population std of {2, 4, 4, 4, 5, 5, 7, 9} is exactly 2 (mean 5).
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Errorf("summary wrong: %+v", s)
	}
	if math.Abs(s.Std-2) > 1e-12 {
		t.Errorf("std = %v, want 2", s.Std)
	}
	if math.Abs(s.RelStd()-0.4) > 1e-12 {
		t.Errorf("relstd = %v, want 0.4", s.RelStd())
	}
}

func TestSummarizeNegativeMeanRelStd(t *testing.T) {
	s := Summarize([]float64{-4, -6})
	if s.Mean != -5 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if got := s.RelStd(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("relstd with negative mean = %v, want 0.2 (uses |mean|)", got)
	}
}

func TestSummarizeAgreesWithWelford(t *testing.T) {
	rng := NewRNG(99)
	samples := make([]float64, 1000)
	var m Mean
	for i := range samples {
		samples[i] = rng.Float64() * 100
		m.Add(samples[i])
	}
	s := Summarize(samples)
	if math.Abs(s.Mean-m.Mean()) > 1e-9 || math.Abs(s.Std-m.Std()) > 1e-9 {
		t.Errorf("Summarize (%v, %v) disagrees with Mean accumulator (%v, %v)",
			s.Mean, s.Std, m.Mean(), m.Std())
	}
	if s.Min != m.Min() || s.Max != m.Max() {
		t.Errorf("extremes disagree: (%v,%v) vs (%v,%v)", s.Min, s.Max, m.Min(), m.Max())
	}
}

func TestPercentileInt64Empty(t *testing.T) {
	if got := PercentileInt64(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %d, want 0", got)
	}
	out := PercentilesInt64(nil, 0.5, 0.99)
	if out[0] != 0 || out[1] != 0 {
		t.Errorf("empty percentiles = %v, want zeros", out)
	}
}

func TestPercentileInt64Single(t *testing.T) {
	for _, p := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := PercentileInt64([]int64{7}, p); got != 7 {
			t.Errorf("p=%v of single sample = %d, want 7", p, got)
		}
	}
}

func TestPercentileInt64Ties(t *testing.T) {
	// All-equal samples: every quantile is that value.
	ties := []int64{5, 5, 5, 5, 5}
	for _, p := range []float64{0, 0.5, 0.9, 1} {
		if got := PercentileInt64(ties, p); got != 5 {
			t.Errorf("tied p=%v = %d, want 5", p, got)
		}
	}
	// Heavy tie at the low end: 9 of 10 samples are 1.
	skew := []int64{1, 1, 1, 1, 1, 1, 1, 1, 1, 100}
	if got := PercentileInt64(skew, 0.90); got != 1 {
		t.Errorf("p90 of 90%%-tied set = %d, want 1", got)
	}
	if got := PercentileInt64(skew, 0.91); got != 100 {
		t.Errorf("p91 of 90%%-tied set = %d, want 100", got)
	}
}

func TestPercentileInt64CeilRankConvention(t *testing.T) {
	samples := []int64{10, 20, 30, 40} // unsorted input is fine
	cases := []struct {
		p    float64
		want int64
	}{
		{0, 10},    // clamp to minimum
		{0.25, 10}, // ceil(0.25*4)=1st
		{0.26, 20}, // ceil(1.04)=2nd
		{0.5, 20},  // ceil(2)=2nd
		{0.75, 30}, // 3rd
		{0.99, 40}, // ceil(3.96)=4th
		{1, 40},    // maximum
		{1.5, 40},  // clamp above
		{-0.5, 10}, // clamp below
	}
	for _, c := range cases {
		if got := PercentileInt64(samples, c.p); got != c.want {
			t.Errorf("p=%v = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestPercentileMatchesHistConvention(t *testing.T) {
	// The slice-based percentile and the histogram's must agree on any
	// integer sample set that fits the histogram's bins.
	rng := NewRNG(1234)
	samples := make([]int64, 5000)
	h := NewHist(256)
	for i := range samples {
		v := int64(rng.Intn(200))
		samples[i] = v
		h.Add(int(v))
	}
	for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
		want := int64(h.Percentile(p))
		if got := PercentileInt64(samples, p); got != want {
			t.Errorf("p=%v: slice %d vs hist %d", p, got, want)
		}
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	samples := []int64{9, 1, 5, 3}
	_ = PercentilesInt64(samples, 0.5, 0.99)
	if samples[0] != 9 || samples[1] != 1 || samples[2] != 5 || samples[3] != 3 {
		t.Errorf("input mutated: %v", samples)
	}
}

func TestHistPercentileEdges(t *testing.T) {
	h := NewHist(100)
	if got := h.Percentile(0.5); got != 0 {
		t.Errorf("empty hist p50 = %d, want 0", got)
	}
	h.Add(42)
	for _, p := range []float64{0, 0.5, 1} {
		if got := h.Percentile(p); got != 42 {
			t.Errorf("single-sample hist p=%v = %d, want 42", p, got)
		}
	}
	// Overflow samples report the cap.
	h2 := NewHist(10)
	h2.Add(500)
	if got := h2.Percentile(1); got != 10 {
		t.Errorf("overflow percentile = %d, want cap 10", got)
	}
}

func TestSeededDeterminismAcrossHelpers(t *testing.T) {
	// Two independent RNGs with the same seed must drive Summarize and
	// the percentile helpers to byte-identical results — the property the
	// grid harness's reproducibility story rests on.
	run := func(seed uint64) (Summary, []int64) {
		rng := NewRNG(seed)
		f := make([]float64, 100)
		l := make([]int64, 100)
		for i := range f {
			f[i] = rng.Float64()
			l[i] = int64(rng.Intn(1000))
		}
		return Summarize(f), PercentilesInt64(l, 0.5, 0.9, 0.99)
	}
	s1, p1 := run(7)
	s2, p2 := run(7)
	if s1 != s2 {
		t.Errorf("summaries diverged for equal seeds: %+v vs %+v", s1, s2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Errorf("percentiles diverged: %v vs %v", p1, p2)
		}
	}
	s3, _ := run(8)
	if s1 == s3 {
		t.Errorf("different seeds produced identical summaries — RNG not seeding")
	}
}
