package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
	c := NewRNG(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewRNG(42).Fork(1).Uint64() == c.Uint64() {
			continue
		}
		same = false
	}
	if same {
		t.Error("different seeds should diverge")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Fork(1)
	c2 := parent.Fork(2)
	if c1.Uint64() == c2.Uint64() {
		t.Error("forks with different salts should diverge")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Range(5, 9); v < 5 || v > 9 {
			t.Fatalf("Range out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(99)
	const n, buckets = 100000, 16
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Errorf("bucket %d: %d, want ~%.0f", b, c, want)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestMeanBasics(t *testing.T) {
	var m Mean
	for _, x := range []float64{1, 2, 3, 4, 5} {
		m.Add(x)
	}
	if m.N() != 5 || m.Mean() != 3 {
		t.Errorf("mean = %v n = %d", m.Mean(), m.N())
	}
	if m.Min() != 1 || m.Max() != 5 {
		t.Errorf("min/max = %v/%v", m.Min(), m.Max())
	}
	if math.Abs(m.Var()-2) > 1e-12 {
		t.Errorf("var = %v, want 2", m.Var())
	}
	if m.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestMeanEmptyIsZero(t *testing.T) {
	var m Mean
	if m.Mean() != 0 || m.Var() != 0 || m.N() != 0 {
		t.Error("empty accumulator should be all zero")
	}
}

// Property: Welford mean equals naive mean.
func TestMeanMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		var m Mean
		sum := 0.0
		count := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				continue
			}
			m.Add(x)
			sum += x
			count++
		}
		if count == 0 {
			return m.N() == 0
		}
		return math.Abs(m.Mean()-sum/float64(count)) < 1e-6*(1+math.Abs(sum))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHist(t *testing.T) {
	h := NewHist(10)
	for _, v := range []int{0, 1, 1, 2, 3, 100} {
		h.Add(v)
	}
	if h.N() != 6 {
		t.Errorf("N = %d", h.N())
	}
	if h.Overflow() != 1 {
		t.Errorf("Overflow = %d", h.Overflow())
	}
	wantMean := float64(0+1+1+2+3+100) / 6
	if math.Abs(h.Mean()-wantMean) > 1e-12 {
		t.Errorf("Mean = %v, want %v", h.Mean(), wantMean)
	}
	if p := h.Percentile(0.5); p != 1 {
		t.Errorf("p50 = %d, want 1", p)
	}
	if p := h.Percentile(1.0); p != 10 {
		t.Errorf("p100 with overflow = %d, want cap 10", p)
	}
}

func TestHistNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative sample should panic")
		}
	}()
	NewHist(4).Add(-1)
}

func TestCounterSet(t *testing.T) {
	s := NewSet()
	s.Get("hits").Inc()
	s.Get("hits").Inc()
	s.Get("misses").Inc()
	if s.Value("hits") != 2 || s.Value("misses") != 1 || s.Value("absent") != 0 {
		t.Error("counter values wrong")
	}
	if r := s.Ratio("hits", "misses"); r != 2 {
		t.Errorf("Ratio = %v", r)
	}
	if r := s.Ratio("hits", "absent"); r != 0 {
		t.Errorf("Ratio with zero denominator = %v", r)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "hits" || names[1] != "misses" {
		t.Errorf("Names = %v", names)
	}
	sorted := s.SortedNames()
	if sorted[0] != "hits" || sorted[1] != "misses" {
		t.Errorf("SortedNames = %v", sorted)
	}
}
