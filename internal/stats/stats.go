package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean is a running mean/variance accumulator (Welford's algorithm), used
// for per-packet lookup latencies where storing every sample would be
// wasteful.
type Mean struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one sample.
func (m *Mean) Add(x float64) {
	m.n++
	if m.n == 1 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the number of samples recorded.
func (m *Mean) N() int64 { return m.n }

// Mean returns the arithmetic mean of the samples (0 when empty).
func (m *Mean) Mean() float64 { return m.mean }

// Var returns the population variance of the samples.
func (m *Mean) Var() float64 {
	if m.n == 0 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// Std returns the population standard deviation.
func (m *Mean) Std() float64 { return math.Sqrt(m.Var()) }

// Min returns the smallest sample (0 when empty).
func (m *Mean) Min() float64 { return m.min }

// Max returns the largest sample (0 when empty).
func (m *Mean) Max() float64 { return m.max }

// String summarizes the accumulator for log lines.
func (m *Mean) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.0f max=%.0f",
		m.n, m.Mean(), m.Std(), m.min, m.max)
}

// Hist is an integer-valued histogram with unit-width bins up to a cap;
// samples at or above the cap land in the overflow bin. It retains enough
// to compute exact percentiles for bounded metrics such as lookup cycles.
type Hist struct {
	bins     []int64
	overflow int64
	n        int64
	sum      int64
}

// NewHist returns a histogram covering values [0, capValue).
func NewHist(capValue int) *Hist {
	if capValue < 1 {
		capValue = 1
	}
	return &Hist{bins: make([]int64, capValue)}
}

// Add records one sample; negative samples panic (latencies cannot be
// negative — a negative value is a simulator bug we want loudly).
func (h *Hist) Add(v int) {
	if v < 0 {
		panic(fmt.Sprintf("stats: negative histogram sample %d", v))
	}
	if v >= len(h.bins) {
		h.overflow++
	} else {
		h.bins[v]++
	}
	h.n++
	h.sum += int64(v)
}

// N returns the number of samples.
func (h *Hist) N() int64 { return h.n }

// Mean returns the sample mean.
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Percentile returns the smallest value v such that at least p (0..1) of
// the samples are <= v. Overflow samples report the cap.
func (h *Hist) Percentile(p float64) int {
	if h.n == 0 {
		return 0
	}
	target := int64(math.Ceil(p * float64(h.n)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for v, c := range h.bins {
		cum += c
		if cum >= target {
			return v
		}
	}
	return len(h.bins)
}

// Overflow returns the number of samples at or above the cap.
func (h *Hist) Overflow() int64 { return h.overflow }

// Each calls f for every non-empty unit bin (value, count) in ascending
// value order, then once for the overflow bin with value == the cap. It
// lets exporters re-bucket the exact distribution (e.g. into the
// power-of-two metrics histograms) without exposing the bins slice.
func (h *Hist) Each(f func(value int, count int64)) {
	for v, c := range h.bins {
		if c > 0 {
			f(v, c)
		}
	}
	if h.overflow > 0 {
		f(len(h.bins), h.overflow)
	}
}

// Counter is a named monotonically increasing event counter.
type Counter struct {
	Name string
	N    int64
}

// Inc adds one event.
func (c *Counter) Inc() { c.N++ }

// Set is an ordered collection of named counters for report printing.
type Set struct {
	order []string
	m     map[string]*Counter
}

// NewSet returns an empty counter set.
func NewSet() *Set { return &Set{m: make(map[string]*Counter)} }

// Get returns (creating on first use) the counter with the given name.
func (s *Set) Get(name string) *Counter {
	if c, ok := s.m[name]; ok {
		return c
	}
	c := &Counter{Name: name}
	s.m[name] = c
	s.order = append(s.order, name)
	return c
}

// Names returns counter names in first-use order.
func (s *Set) Names() []string { return append([]string(nil), s.order...) }

// Value returns the count for name (0 when absent).
func (s *Set) Value(name string) int64 {
	if c, ok := s.m[name]; ok {
		return c.N
	}
	return 0
}

// Ratio returns Value(num)/Value(den), or 0 when the denominator is zero.
func (s *Set) Ratio(num, den string) float64 {
	d := s.Value(den)
	if d == 0 {
		return 0
	}
	return float64(s.Value(num)) / float64(d)
}

// SortedNames returns counter names alphabetically, for stable reports.
func (s *Set) SortedNames() []string {
	names := s.Names()
	sort.Strings(names)
	return names
}
