package stats

import (
	"math"
	"sort"
)

// Summary condenses a small sample set — typically one metric observed
// across the repeats of a benchmark cell — into the cross-repeat
// statistics the perf harness records: mean, population standard
// deviation, and the extremes. Unlike Mean it is built in one shot from
// the full slice, because repeat counts are tiny and the harness wants
// value semantics it can embed in JSON records.
type Summary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// Summarize computes the cross-repeat summary of samples. An empty slice
// yields the zero Summary (N=0), which callers treat as "no data" rather
// than a measurement of zero.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	s := Summary{N: len(samples), Min: samples[0], Max: samples[0]}
	var sum float64
	for _, x := range samples {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	var m2 float64
	for _, x := range samples {
		d := x - s.Mean
		m2 += d * d
	}
	s.Std = math.Sqrt(m2 / float64(s.N))
	return s
}

// RelStd is the coefficient of variation Std/|Mean| — the harness flags a
// cell whose repeats disagree by more than a configured threshold. A zero
// mean (or no data) reports 0: with nothing measured there is nothing to
// flag.
func (s Summary) RelStd() float64 {
	if s.N == 0 || s.Mean == 0 {
		return 0
	}
	return s.Std / math.Abs(s.Mean)
}

// PercentileInt64 returns the exact p-quantile (p in 0..1) of samples
// under the same convention Hist.Percentile uses: the smallest sample v
// such that at least ceil(p*n) of the samples are <= v. The slice is not
// retained or modified. n=0 returns 0; p <= 0 returns the minimum; p >= 1
// the maximum.
func PercentileInt64(samples []int64, p float64) int64 {
	n := len(samples)
	if n == 0 {
		return 0
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return percentileSorted(sorted, p)
}

// PercentilesInt64 returns the exact quantiles for each p in ps, sorting
// the copied sample set once — the harness asks for p50/p90/p99/min/max
// together on every repeat.
func PercentilesInt64(samples []int64, ps ...float64) []int64 {
	out := make([]int64, len(ps))
	n := len(samples)
	if n == 0 {
		return out
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, p := range ps {
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

// percentileSorted implements the ceil-rank convention on an already
// sorted slice.
func percentileSorted(sorted []int64, p float64) int64 {
	n := len(sorted)
	rank := int(math.Ceil(p * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}
