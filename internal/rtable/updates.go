package rtable

import (
	"spal/internal/ip"
	"spal/internal/stats"
)

// UpdateKind distinguishes BGP announce from withdraw events.
type UpdateKind uint8

// Update kinds.
const (
	Announce UpdateKind = iota // add or replace a route
	Withdraw                   // remove a route
)

// Update is one routing-table change event with its arrival time.
type Update struct {
	Kind    UpdateKind
	Route   Route
	AtCycle int64 // simulation cycle at which the update is applied
}

// UpdateStreamConfig shapes a synthetic BGP update stream. The paper models
// ~20 updates/s on average (up to 100/s), each of which flushes every
// LR-cache in a SPAL router.
type UpdateStreamConfig struct {
	// RatePerSecond is the mean update arrival rate (events per second).
	RatePerSecond float64
	// CycleNS is the simulator cycle length in nanoseconds (paper: 5 ns).
	CycleNS float64
	// Duration is the covered simulated time span in cycles.
	Duration int64
	// WithdrawProb is the probability an event withdraws an existing route
	// rather than announcing one.
	WithdrawProb float64
	// Seed drives randomness.
	Seed uint64
}

// GenerateUpdates produces a time-ordered update stream against table t.
// Announces re-announce existing prefixes with a new next hop (the common
// case in BGP churn); withdraws remove a random existing prefix.
func GenerateUpdates(t *Table, cfg UpdateStreamConfig) []Update {
	if cfg.RatePerSecond <= 0 || cfg.Duration <= 0 {
		return nil
	}
	rng := stats.NewRNG(cfg.Seed)
	// Mean inter-arrival gap in cycles.
	gap := 1e9 / cfg.RatePerSecond / cfg.CycleNS
	routes := t.Routes()
	var out []Update
	// Exponential-ish arrivals via uniform [0.5, 1.5) * gap; BGP churn is
	// bursty but the simulator only cares about the flush points.
	at := int64(gap * (0.5 + rng.Float64()))
	for at < cfg.Duration {
		r := routes[rng.Intn(len(routes))]
		kind := Announce
		if rng.Bool(cfg.WithdrawProb) {
			kind = Withdraw
		} else {
			r.NextHop = NextHop(rng.Intn(64))
		}
		out = append(out, Update{Kind: kind, Route: r, AtCycle: at})
		at += int64(gap * (0.5 + rng.Float64()))
	}
	return out
}

// Apply returns a new table with the update applied. Withdrawing a missing
// prefix and re-announcing an existing one are both no-fail operations,
// mirroring BGP semantics.
func (t *Table) Apply(u Update) *Table {
	routes := make([]Route, 0, len(t.routes)+1)
	target := u.Route.Prefix.Canon()
	replaced := false
	for _, r := range t.routes {
		if r.Prefix == target {
			if u.Kind == Withdraw {
				continue // drop it
			}
			r.NextHop = u.Route.NextHop
			replaced = true
		}
		routes = append(routes, r)
	}
	if u.Kind == Announce && !replaced {
		routes = append(routes, Route{Prefix: target, NextHop: u.Route.NextHop})
	}
	return New(routes)
}

// RandomMatchedAddr draws an address guaranteed to match some route in t,
// for building lookup workloads with a bounded miss (no-route) fraction.
func (t *Table) RandomMatchedAddr(rng *stats.RNG) ip.Addr {
	r := t.routes[rng.Intn(len(t.routes))]
	span := uint64(r.Prefix.LastAddr()-r.Prefix.FirstAddr()) + 1
	return r.Prefix.FirstAddr() + ip.Addr(rng.Uint64()%span)
}
