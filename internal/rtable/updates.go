package rtable

import (
	"sort"

	"spal/internal/ip"
	"spal/internal/stats"
)

// UpdateKind distinguishes BGP announce from withdraw events.
type UpdateKind uint8

// Update kinds.
const (
	Announce UpdateKind = iota // add or replace a route
	Withdraw                   // remove a route
)

// Update is one routing-table change event with its arrival time.
type Update struct {
	Kind    UpdateKind
	Route   Route
	AtCycle int64 // simulation cycle at which the update is applied
}

// UpdateStreamConfig shapes a synthetic BGP update stream. The paper models
// ~20 updates/s on average (up to 100/s), each of which flushes every
// LR-cache in a SPAL router.
type UpdateStreamConfig struct {
	// RatePerSecond is the mean update arrival rate (events per second).
	RatePerSecond float64
	// CycleNS is the simulator cycle length in nanoseconds (paper: 5 ns).
	CycleNS float64
	// Duration is the covered simulated time span in cycles.
	Duration int64
	// WithdrawProb is the probability an event withdraws an existing route
	// rather than announcing one.
	WithdrawProb float64
	// NewPrefixProb is the probability an announce introduces a prefix not
	// currently in the table (drawn from the same length distribution as
	// the synthetic tables) instead of re-announcing an existing one.
	NewPrefixProb float64
	// Seed drives randomness.
	Seed uint64
}

// GenerateUpdates produces a time-ordered update stream against table t.
// The generator tracks the evolving route set: withdraws only remove
// prefixes still present at that point in the stream, re-announces pick
// from the live set, and NewPrefixProb introduces genuinely new prefixes.
// A table that churns down to zero routes only emits announces until
// routes exist again.
func GenerateUpdates(t *Table, cfg UpdateStreamConfig) []Update {
	if cfg.RatePerSecond <= 0 || cfg.Duration <= 0 {
		return nil
	}
	rng := stats.NewRNG(cfg.Seed)
	// Mean inter-arrival gap in cycles.
	gap := 1e9 / cfg.RatePerSecond / cfg.CycleNS
	live := append([]Route(nil), t.Routes()...)
	idx := make(map[ip.Prefix]int, len(live))
	for i, r := range live {
		idx[r.Prefix] = i
	}
	var out []Update
	// Exponential-ish arrivals via uniform [0.5, 1.5) * gap; BGP churn is
	// bursty but the simulator only cares about the invalidation points.
	at := int64(gap * (0.5 + rng.Float64()))
	for at < cfg.Duration {
		var u Update
		switch {
		case len(live) > 0 && rng.Bool(cfg.WithdrawProb):
			i := rng.Intn(len(live))
			r := live[i]
			last := len(live) - 1
			live[i] = live[last]
			idx[live[i].Prefix] = i
			live = live[:last]
			delete(idx, r.Prefix)
			u = Update{Kind: Withdraw, Route: r, AtCycle: at}
		case len(live) == 0 || rng.Bool(cfg.NewPrefixProb):
			p := randomNewPrefix(rng, idx)
			nh := NextHop(rng.Intn(64))
			if j, ok := idx[p]; ok {
				// Retry budget exhausted: announce degrades to a replace.
				live[j].NextHop = nh
			} else {
				idx[p] = len(live)
				live = append(live, Route{Prefix: p, NextHop: nh})
			}
			u = Update{Kind: Announce, Route: Route{Prefix: p, NextHop: nh}, AtCycle: at}
		default:
			i := rng.Intn(len(live))
			live[i].NextHop = NextHop(rng.Intn(64))
			u = Update{Kind: Announce, Route: live[i], AtCycle: at}
		}
		out = append(out, u)
		at += int64(gap * (0.5 + rng.Float64()))
	}
	return out
}

// randomNewPrefix draws a canonical prefix not present in idx, sampling the
// length from the same 2003-era distribution the synthetic tables use. The
// address space at every sampled length dwarfs any real table, so a handful
// of retries suffices; on exhaustion the (existing) candidate is returned
// and the announce degrades to a replace.
func randomNewPrefix(rng *stats.RNG, idx map[ip.Prefix]int) ip.Prefix {
	var p ip.Prefix
	for try := 0; try < 32; try++ {
		r := rng.Intn(1000)
		ln := 24 // distribution mode, also the fallback
		for l, share := range lengthDistribution {
			if r < share {
				ln = l
				break
			}
			r -= share
		}
		p = ip.Prefix{Value: ip.Addr(rng.Uint64()), Len: uint8(ln)}.Canon()
		if _, ok := idx[p]; !ok {
			return p
		}
	}
	return p
}

// ApplyAll returns a new table with the whole batch applied in one pass,
// in order. Withdrawing a missing prefix and re-announcing an existing one
// are both no-fail operations, mirroring BGP semantics; duplicate canonical
// prefixes in the batch resolve to the last event.
func (t *Table) ApplyAll(batch []Update) *Table {
	if len(batch) == 0 {
		return t
	}
	byPrefix := make(map[ip.Prefix]NextHop, len(t.routes)+len(batch))
	for _, r := range t.routes {
		byPrefix[r.Prefix] = r.NextHop
	}
	for _, u := range batch {
		p := u.Route.Prefix.Canon()
		if u.Kind == Withdraw {
			delete(byPrefix, p)
		} else {
			byPrefix[p] = u.Route.NextHop
		}
	}
	ps := make([]ip.Prefix, 0, len(byPrefix))
	for p := range byPrefix {
		ps = append(ps, p)
	}
	ip.Sort(ps)
	routes := make([]Route, len(ps))
	for i, p := range ps {
		routes[i] = Route{Prefix: p, NextHop: byPrefix[p]}
	}
	return &Table{routes: routes}
}

// Apply returns a new table with the single update applied.
func (t *Table) Apply(u Update) *Table {
	return t.ApplyAll([]Update{u})
}

// RandomMatchedAddr draws an address guaranteed to match some route in t,
// for building lookup workloads with a bounded miss (no-route) fraction.
func (t *Table) RandomMatchedAddr(rng *stats.RNG) ip.Addr {
	r := t.routes[rng.Intn(len(t.routes))]
	span := uint64(r.Prefix.LastAddr()-r.Prefix.FirstAddr()) + 1
	return r.Prefix.FirstAddr() + ip.Addr(rng.Uint64()%span)
}

// Range is an inclusive address interval [Lo, Hi].
type Range struct {
	Lo, Hi ip.Addr
}

// Contains reports whether a falls inside the range.
func (r Range) Contains(a ip.Addr) bool { return r.Lo <= a && a <= r.Hi }

// UpdateRanges returns the sorted, coalesced address ranges whose lookup
// verdicts can change when batch is applied. An announce changes verdicts
// only for addresses inside the announced prefix, and a withdraw exposes
// the prefix's ancestors only for addresses inside the withdrawn prefix —
// so each update contributes exactly [FirstAddr, LastAddr] of its prefix,
// and caches need invalidate nothing outside the returned ranges.
func UpdateRanges(batch []Update) []Range {
	if len(batch) == 0 {
		return nil
	}
	rs := make([]Range, len(batch))
	for i, u := range batch {
		p := u.Route.Prefix.Canon()
		rs[i] = Range{Lo: p.FirstAddr(), Hi: p.LastAddr()}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Lo < rs[j].Lo })
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi || (last.Hi != ^ip.Addr(0) && r.Lo == last.Hi+1) {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}
