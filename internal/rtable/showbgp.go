package rtable

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"spal/internal/ip"
)

// ReadShowBGP parses a Cisco "show ip bgp"-style dump — the format of the
// paper's RT_2 source (the bgp.potaroo.net AS1221 snapshot). Lines look
// like:
//
//	*> 3.0.0.0          4.24.1.205        0    0 3356 701 80 i
//	*  3.0.0.0/8        192.205.32.153         0 7018 80 i
//	*>i6.1.0.0/16       203.50.6.13       0  100 0 7474 3549 i
//
// Only best routes ("*>" or "*>i") become table entries. A missing "/len"
// uses the classful default (A:/8, B:/16, C:/24), as the dumps do. The
// next hop is hashed onto nextHops synthetic ports, since this library
// models next hops as line-card numbers rather than IP addresses.
func ReadShowBGP(r io.Reader, nextHops int) (*Table, error) {
	if nextHops < 1 {
		nextHops = 1
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var routes []Route
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		trimmed := strings.TrimSpace(text)
		if !strings.HasPrefix(trimmed, "*>") {
			continue // not a best route (headers, alternates, continuations)
		}
		rest := strings.TrimPrefix(trimmed, "*>")
		rest = strings.TrimPrefix(rest, "i") // iBGP marker
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return nil, fmt.Errorf("rtable: line %d: malformed best route %q", line, text)
		}
		p, err := parseClassfulPrefix(fields[0])
		if err != nil {
			return nil, fmt.Errorf("rtable: line %d: %v", line, err)
		}
		routes = append(routes, Route{
			Prefix:  p,
			NextHop: hashNextHop(fields[1], nextHops),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return New(routes), nil
}

// parseClassfulPrefix parses "a.b.c.d/len", defaulting a missing length to
// the address class as classic BGP dumps do.
func parseClassfulPrefix(s string) (ip.Prefix, error) {
	if strings.ContainsRune(s, '/') {
		return ip.ParsePrefix(s)
	}
	a, err := ip.ParseAddr(s)
	if err != nil {
		return ip.Prefix{}, err
	}
	var l uint8
	switch {
	case a>>31 == 0: // class A
		l = 8
	case a>>30 == 0b10: // class B
		l = 16
	default: // class C and above
		l = 24
	}
	return ip.Prefix{Value: a, Len: l}.Canon(), nil
}

// hashNextHop deterministically maps a next-hop string (an IP address in
// the dump) onto one of n synthetic ports.
func hashNextHop(s string, n int) NextHop {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return NextHop(h % uint32(n))
}

// Diff computes the update stream that transforms table a into table b:
// withdraws for prefixes only in a, announces for prefixes new or
// re-hopped in b. Updates carry AtCycle 0; callers schedule them.
func Diff(a, b *Table) []Update {
	var ups []Update
	am := make(map[ip.Prefix]NextHop, a.Len())
	for _, r := range a.Routes() {
		am[r.Prefix] = r.NextHop
	}
	for _, r := range b.Routes() {
		if nh, ok := am[r.Prefix]; !ok || nh != r.NextHop {
			ups = append(ups, Update{Kind: Announce, Route: r})
		}
		delete(am, r.Prefix)
	}
	for p := range am {
		ups = append(ups, Update{Kind: Withdraw, Route: Route{Prefix: p}})
	}
	// Deterministic order by prefix (announce/withdraw sets are disjoint,
	// so prefix order fully determines the stream).
	sort.Slice(ups, func(i, j int) bool {
		return ups[i].Route.Prefix.Less(ups[j].Route.Prefix)
	})
	return ups
}
