package rtable

import (
	"strings"
	"testing"

	"spal/internal/ip"
)

const sampleShowBGP = `BGP table version is 1, local router ID is 203.50.0.1
   Network          Next Hop            Metric LocPrf Weight Path
*> 3.0.0.0          4.24.1.205               0             0 3356 701 80 i
*  3.0.0.0/8        192.205.32.153           0             0 7018 80 i
*>i6.1.0.0/16       203.50.6.13              0    100      0 7474 3549 i
*> 10.1.2.0/24      203.50.6.9               0             0 1221 i
*  10.1.2.0/24      203.50.6.10              0             0 1239 i
*> 130.10.0.0       203.50.6.13              0             0 701 i
*> 192.168.5.0      203.50.6.13              0             0 701 i

Total number of prefixes 5
`

func TestReadShowBGP(t *testing.T) {
	tbl, err := ReadShowBGP(strings.NewReader(sampleShowBGP), 16)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 5 {
		t.Fatalf("Len = %d, want 5 best routes", tbl.Len())
	}
	wantPrefixes := []string{
		"3.0.0.0/8",      // classful A default
		"6.1.0.0/16",     // explicit, iBGP best
		"10.1.2.0/24",    // explicit
		"130.10.0.0/16",  // classful B
		"192.168.5.0/24", // classful C
	}
	for _, w := range wantPrefixes {
		p := ip.MustPrefix(w)
		found := false
		for _, r := range tbl.Routes() {
			if r.Prefix == p {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("prefix %s missing", w)
		}
	}
	// Next hops land within the synthetic port range.
	for _, r := range tbl.Routes() {
		if r.NextHop >= 16 {
			t.Errorf("next hop %d out of range", r.NextHop)
		}
	}
}

func TestReadShowBGPDeterministicHash(t *testing.T) {
	a, err := ReadShowBGP(strings.NewReader(sampleShowBGP), 16)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ReadShowBGP(strings.NewReader(sampleShowBGP), 16)
	for i := range a.Routes() {
		if a.Routes()[i] != b.Routes()[i] {
			t.Fatal("parsing must be deterministic")
		}
	}
}

func TestReadShowBGPMalformed(t *testing.T) {
	if _, err := ReadShowBGP(strings.NewReader("*> onlyonefield\n"), 4); err == nil {
		t.Error("want error for malformed best route")
	}
	if _, err := ReadShowBGP(strings.NewReader("*> 999.0.0.0/8 1.2.3.4\n"), 4); err == nil {
		t.Error("want error for bad prefix")
	}
	// Non-best lines are skipped silently.
	tbl, err := ReadShowBGP(strings.NewReader("* 10.0.0.0/8 1.2.3.4\ngarbage\n"), 4)
	if err != nil || tbl.Len() != 0 {
		t.Errorf("non-best lines: %v len=%d", err, tbl.Len())
	}
}

func TestDiff(t *testing.T) {
	a := New([]Route{
		{Prefix: ip.MustPrefix("10.0.0.0/8"), NextHop: 1},
		{Prefix: ip.MustPrefix("20.0.0.0/8"), NextHop: 2},
		{Prefix: ip.MustPrefix("30.0.0.0/8"), NextHop: 3},
	})
	b := New([]Route{
		{Prefix: ip.MustPrefix("10.0.0.0/8"), NextHop: 1}, // unchanged
		{Prefix: ip.MustPrefix("20.0.0.0/8"), NextHop: 9}, // re-hopped
		{Prefix: ip.MustPrefix("40.0.0.0/8"), NextHop: 4}, // new
	})
	ups := Diff(a, b)
	if len(ups) != 3 {
		t.Fatalf("updates = %d, want 3 (announce x2 + withdraw)", len(ups))
	}
	// Applying the diff transforms a into b exactly.
	got := a
	for _, u := range ups {
		got = got.Apply(u)
	}
	if got.Len() != b.Len() {
		t.Fatalf("after diff: %d routes, want %d", got.Len(), b.Len())
	}
	for i := range got.Routes() {
		if got.Routes()[i] != b.Routes()[i] {
			t.Fatalf("route %d: %v != %v", i, got.Routes()[i], b.Routes()[i])
		}
	}
}

func TestDiffEmptyAndIdentical(t *testing.T) {
	a := Small(100, 1)
	if ups := Diff(a, a); len(ups) != 0 {
		t.Errorf("identical tables diff = %d updates", len(ups))
	}
	empty := New(nil)
	ups := Diff(empty, a)
	if len(ups) != a.Len() {
		t.Errorf("from empty: %d announces, want %d", len(ups), a.Len())
	}
	ups = Diff(a, empty)
	withdraws := 0
	for _, u := range ups {
		if u.Kind == Withdraw {
			withdraws++
		}
	}
	if withdraws != a.Len() {
		t.Errorf("to empty: %d withdraws, want %d", withdraws, a.Len())
	}
}
