package rtable

import (
	"fmt"

	"spal/internal/ip"
	"spal/internal/stats"
)

// lengthDistribution is the per-length share of prefixes in a 2003-era
// backbone BGP table (per-mille, summing to 1000). It follows the shape
// reported by the measurement literature the paper cites: /24 dominates at
// roughly 55%, more than 83% of prefixes are /24 or shorter at lengths
// concentrated in /16../24, the classful lengths /8 and /16 spike, and a
// small tail of host routes (/25../32, including /32 exceptions) exists.
var lengthDistribution = [33]int{
	8:  3,
	9:  1,
	10: 2,
	11: 4,
	12: 6,
	13: 12,
	14: 18,
	15: 20,
	16: 80,
	17: 25,
	18: 40,
	19: 65,
	20: 55,
	21: 50,
	22: 60,
	23: 60,
	24: 465,
	25: 5,
	26: 6,
	27: 5,
	28: 4,
	29: 5,
	30: 5,
	31: 1,
	32: 3,
}

// SynthConfig controls synthetic table generation.
type SynthConfig struct {
	// N is the exact number of prefixes to generate.
	N int
	// NextHops is the number of distinct next hops to assign (>= 1).
	NextHops int
	// NestProb is the probability that a new prefix is generated inside an
	// already-generated shorter prefix, creating the covering/more-specific
	// pairs ("prefix exceptions") real tables exhibit.
	NestProb float64
	// NextHopLocality is the probability that a prefix takes the next hop
	// shared by its /12 neighbourhood instead of a uniformly random one.
	// Real BGP tables are strongly correlated this way (address blocks
	// aggregate toward the same peer), which is what run-compressing
	// structures like the Lulea trie exploit. Negative disables; zero
	// selects the default of 0.75.
	NextHopLocality float64
	// Seed drives all randomness.
	Seed uint64
}

// Synthesize generates a routing table per cfg. The result has exactly
// cfg.N distinct prefixes with the package's published length distribution.
func Synthesize(cfg SynthConfig) *Table {
	if cfg.N <= 0 {
		panic("rtable: Synthesize with N <= 0")
	}
	if cfg.NextHops < 1 {
		cfg.NextHops = 1
	}
	switch {
	case cfg.NextHopLocality == 0:
		cfg.NextHopLocality = 0.75
	case cfg.NextHopLocality < 0:
		cfg.NextHopLocality = 0
	}
	rng := stats.NewRNG(cfg.Seed)

	// Exact per-length quotas via largest-remainder apportionment, then
	// capped by how many distinct prefixes of each length actually exist
	// under the generator's unicast filter (e.g. only ~223 /8s are
	// available, so a 140k-prefix table cannot hold 3 per mille of /8s);
	// the excess shifts to /24, the dominant length, which has capacity
	// for any realistic table.
	quota := apportion(cfg.N, lengthDistribution[:])
	overflow := 0
	for l := 1; l <= 32; l++ {
		if c := genCapacity(uint8(l)); quota[l] > c {
			overflow += quota[l] - c
			quota[l] = c
		}
	}
	quota[24] += overflow
	if c := genCapacity(24); quota[24] > c {
		panic(fmt.Sprintf("rtable: table of %d prefixes exceeds generator capacity", cfg.N))
	}

	seen := make(map[ip.Prefix]bool, cfg.N)
	// parents holds generated prefixes shorter than the one being generated,
	// bucketed by length, so nesting can pick a random covering prefix.
	var parents [33][]ip.Prefix

	// Allocation blocks: real address space is clumpy — /24-class
	// prefixes concentrate into a limited set of /16 neighbourhoods
	// (allocated blocks) rather than spreading uniformly. Long prefixes
	// mostly land inside one of these blocks.
	numBlocks := cfg.N / 6
	if numBlocks < 1024 {
		numBlocks = 1024
	}
	blocks := make([]uint32, numBlocks)
	for i := range blocks {
		for {
			v := rng.Uint32() & 0xffff0000
			if top := v >> 28; top >= 0xE || v>>24 == 0 {
				continue
			}
			blocks[i] = v
			break
		}
	}

	routes := make([]Route, 0, cfg.N)
	for length := 1; length <= 32; length++ {
		for k := 0; k < quota[length]; k++ {
			p := genPrefix(rng, uint8(length), &parents, cfg.NestProb, seen, blocks)
			seen[p] = true
			parents[length] = append(parents[length], p)
			nh := NextHop(rng.Intn(cfg.NextHops))
			if rng.Bool(cfg.NextHopLocality) {
				nh = regionNextHop(p.Value, cfg.Seed, cfg.NextHops)
			}
			routes = append(routes, Route{Prefix: p, NextHop: nh})
		}
	}
	t := New(routes)
	if t.Len() != cfg.N {
		// New dedups by prefix; seen guarantees uniqueness, so this would be
		// a generator bug worth failing loudly on.
		panic(fmt.Sprintf("rtable: generated %d prefixes, want %d", t.Len(), cfg.N))
	}
	return t
}

// regionNextHop deterministically maps a /12 address block onto a next
// hop, giving neighbouring prefixes the shared egress real aggregation
// produces.
func regionNextHop(v uint32, seed uint64, n int) NextHop {
	h := (uint64(v>>20) + 1) * (seed | 1) * 0x9e3779b97f4a7c15
	return NextHop((h >> 33) % uint64(n))
}

// genCapacity conservatively bounds how many distinct prefixes of a given
// length the random path can produce: 2^len values, scaled by 3/4 for the
// excluded class-D/E and zero-leading-octet space plus collision headroom.
func genCapacity(length uint8) int {
	if length >= 16 {
		return 1 << 30 // effectively unbounded for realistic table sizes
	}
	c := (1 << length) * 3 / 4
	if c < 1 {
		c = 1
	}
	return c
}

// genPrefix draws one new unique prefix of the given length.
func genPrefix(rng *stats.RNG, length uint8, parents *[33][]ip.Prefix, nestProb float64, seen map[ip.Prefix]bool, blocks []uint32) ip.Prefix {
	for attempt := 0; ; attempt++ {
		if attempt > 1<<22 {
			panic(fmt.Sprintf("rtable: cannot find a fresh /%d prefix (capacity exhausted)", length))
		}
		var v uint32
		switch {
		case rng.Bool(nestProb):
			if parent, ok := pickParent(rng, length, parents); ok {
				// Keep the parent's bits, randomize the extension.
				extra := uint(length) - uint(parent.Len)
				v = parent.Value | (rng.Uint32()&((1<<extra)-1))<<(32-uint(length))
			} else {
				v = rng.Uint32() & ip.Mask(length)
			}
		case length >= 16 && rng.Bool(0.85):
			// Land inside an allocation block, clumping the deep prefixes
			// into a bounded set of /16 neighbourhoods.
			block := blocks[rng.Intn(len(blocks))]
			v = block | rng.Uint32()&^ip.Mask(16)&ip.Mask(length)
		default:
			v = rng.Uint32() & ip.Mask(length)
			// Keep unicast-looking space: avoid 0/1, class D/E (top nibble
			// >= 0xE) so addresses resemble routable space.
			if top := v >> 28; top >= 0xE || v>>24 == 0 {
				continue
			}
		}
		p := ip.Prefix{Value: v, Len: length}.Canon()
		if !seen[p] {
			return p
		}
	}
}

// pickParent selects a random already-generated prefix strictly shorter
// than length, preferring nearby lengths (a /24 nests in a /20 more often
// than in a /8, as in real tables).
func pickParent(rng *stats.RNG, length uint8, parents *[33][]ip.Prefix) (ip.Prefix, bool) {
	// Try a handful of draws biased toward longer (closer) parents.
	for attempt := 0; attempt < 8; attempt++ {
		l := int(length) - 1 - rng.Intn(int(length))
		if l < 1 {
			continue
		}
		if n := len(parents[l]); n > 0 {
			return parents[l][rng.Intn(n)], true
		}
	}
	return ip.Prefix{}, false
}

// apportion splits n into integer quotas proportional to weights (largest
// remainder method), skipping zero weights. Quotas sum to exactly n.
func apportion(n int, weights []int) []int {
	total := 0
	for _, w := range weights {
		total += w
	}
	quotas := make([]int, len(weights))
	type frac struct {
		idx int
		rem int
	}
	var fracs []frac
	assigned := 0
	for i, w := range weights {
		if w == 0 {
			continue
		}
		num := n * w
		quotas[i] = num / total
		assigned += quotas[i]
		fracs = append(fracs, frac{idx: i, rem: num % total})
	}
	// Distribute the remainder to the largest fractional parts; ties break
	// toward lower index for determinism.
	for assigned < n {
		best := -1
		for j, f := range fracs {
			if best < 0 || f.rem > fracs[best].rem {
				best = j
			}
		}
		quotas[fracs[best].idx]++
		fracs[best].rem = -1
		assigned++
	}
	return quotas
}

// RT1 synthesizes the stand-in for the paper's RT_1 (FUNET, 41,709
// prefixes). 16 next hops match a mid-size router's port count.
func RT1() *Table {
	return Synthesize(SynthConfig{N: 41709, NextHops: 16, NestProb: 0.35, Seed: 0x5e3d_0001})
}

// RT2 synthesizes the stand-in for the paper's RT_2 (AS1221 snapshot,
// 140,838 prefixes).
func RT2() *Table {
	return Synthesize(SynthConfig{N: 140838, NextHops: 16, NestProb: 0.35, Seed: 0x5e3d_0002})
}

// Small synthesizes a small table for unit tests and examples.
func Small(n int, seed uint64) *Table {
	return Synthesize(SynthConfig{N: n, NextHops: 8, NestProb: 0.35, Seed: seed})
}
