// Package rtable holds BGP-style routing tables: prefix -> next hop, with
// loaders, synthetic table generators matched to published 2003-era prefix
// length distributions, and a route-update stream generator.
//
// The paper evaluates two concrete tables: RT_1, the FUNET table with
// 41,709 prefixes, and RT_2, an AS1221 snapshot with 140,838 prefixes.
// Neither artifact ships with this repository, so RT1() and RT2() synthesize
// tables of exactly those sizes whose length distribution and nesting
// behaviour match what those tables are documented to look like (see
// DESIGN.md, "Substitutions").
package rtable

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"spal/internal/ip"
)

// NextHop identifies the output port / line card a matched packet should be
// forwarded to. The paper's LR-cache stores it as "Next_hop_LC#".
type NextHop uint16

// NoNextHop is returned by lookups that match nothing (no default route).
const NoNextHop = NextHop(0xffff)

// Route is one routing-table entry.
type Route struct {
	Prefix  ip.Prefix
	NextHop NextHop
}

// Table is an immutable snapshot of a routing table. Entries are unique by
// prefix and sorted in (value, length) order.
type Table struct {
	routes []Route
}

// New builds a table from routes. Duplicate prefixes keep the last next hop
// (BGP replace semantics). The input slice is not retained.
func New(routes []Route) *Table {
	byPrefix := make(map[ip.Prefix]NextHop, len(routes))
	for _, r := range routes {
		byPrefix[r.Prefix.Canon()] = r.NextHop
	}
	ps := make([]ip.Prefix, 0, len(byPrefix))
	for p := range byPrefix {
		ps = append(ps, p)
	}
	ip.Sort(ps)
	out := make([]Route, len(ps))
	for i, p := range ps {
		out[i] = Route{Prefix: p, NextHop: byPrefix[p]}
	}
	return &Table{routes: out}
}

// Len returns the number of prefixes in the table.
func (t *Table) Len() int { return len(t.routes) }

// Routes returns the sorted routes. Callers must not modify the slice.
func (t *Table) Routes() []Route { return t.routes }

// Prefixes returns just the prefixes, sorted.
func (t *Table) Prefixes() []ip.Prefix {
	ps := make([]ip.Prefix, len(t.routes))
	for i, r := range t.routes {
		ps[i] = r.Prefix
	}
	return ps
}

// LookupLinear performs longest-prefix matching by linear scan. It is the
// correctness oracle the trie engines are property-tested against, not a
// fast path.
func (t *Table) LookupLinear(a ip.Addr) (NextHop, bool) {
	best := -1
	for i, r := range t.routes {
		if r.Prefix.Matches(a) && (best < 0 || r.Prefix.Len > t.routes[best].Prefix.Len) {
			best = i
		}
	}
	if best < 0 {
		return NoNextHop, false
	}
	return t.routes[best].NextHop, true
}

// LongestMatch returns the longest-prefix-match route for a, exploiting
// the (value, length) sort order: one binary search per candidate length,
// longest first, so at most 33 O(log N) probes. It is exact (agrees with
// LookupLinear everywhere) and fast enough for the integrity scrubber to
// recompute authoritative verdicts against a canonical snapshot without
// building a trie.
func (t *Table) LongestMatch(a ip.Addr) (Route, bool) {
	for l := 32; l >= 0; l-- {
		v := a & ip.Mask(uint8(l))
		i := sort.Search(len(t.routes), func(i int) bool {
			r := t.routes[i].Prefix
			return r.Value > v || (r.Value == v && int(r.Len) >= l)
		})
		if i < len(t.routes) && t.routes[i].Prefix.Value == v && int(t.routes[i].Prefix.Len) == l {
			return t.routes[i], true
		}
	}
	return Route{NextHop: NoNextHop}, false
}

// LengthHistogram returns the count of prefixes at each length 0..32.
func (t *Table) LengthHistogram() [33]int {
	var h [33]int
	for _, r := range t.routes {
		h[r.Prefix.Len]++
	}
	return h
}

// Write stores the table in the text format read by Read: one
// "prefix/len nexthop" pair per line.
func (t *Table) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, r := range t.routes {
		if _, err := fmt.Fprintf(bw, "%s %d\n", r.Prefix, r.NextHop); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the text format written by Write. Blank lines and lines
// starting with '#' are skipped.
func Read(r io.Reader) (*Table, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var routes []Route
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("rtable: line %d: want 'prefix nexthop', got %q", line, text)
		}
		p, err := ip.ParsePrefix(fields[0])
		if err != nil {
			return nil, fmt.Errorf("rtable: line %d: %v", line, err)
		}
		nh, err := strconv.ParseUint(fields[1], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("rtable: line %d: bad next hop %q", line, fields[1])
		}
		routes = append(routes, Route{Prefix: p, NextHop: NextHop(nh)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return New(routes), nil
}
