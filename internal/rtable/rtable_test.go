package rtable

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"spal/internal/ip"
	"spal/internal/stats"
)

func TestNewDedupsAndSorts(t *testing.T) {
	routes := []Route{
		{Prefix: ip.MustPrefix("10.0.0.0/8"), NextHop: 1},
		{Prefix: ip.MustPrefix("10.0.0.0/8"), NextHop: 2}, // replaces
		{Prefix: ip.MustPrefix("9.0.0.0/8"), NextHop: 3},
	}
	tbl := New(routes)
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tbl.Len())
	}
	got := tbl.Routes()
	if got[0].Prefix != ip.MustPrefix("9.0.0.0/8") {
		t.Errorf("not sorted: %v first", got[0].Prefix)
	}
	if got[1].NextHop != 2 {
		t.Errorf("duplicate should keep last next hop, got %d", got[1].NextHop)
	}
}

func TestLookupLinearLongestWins(t *testing.T) {
	tbl := New([]Route{
		{Prefix: ip.MustPrefix("10.0.0.0/8"), NextHop: 1},
		{Prefix: ip.MustPrefix("10.1.0.0/16"), NextHop: 2},
		{Prefix: ip.MustPrefix("10.1.2.0/24"), NextHop: 3},
	})
	cases := []struct {
		addr string
		want NextHop
		ok   bool
	}{
		{"10.1.2.3", 3, true},
		{"10.1.9.9", 2, true},
		{"10.9.9.9", 1, true},
		{"11.0.0.1", NoNextHop, false},
	}
	for _, c := range cases {
		a, _ := ip.ParseAddr(c.addr)
		nh, ok := tbl.LookupLinear(a)
		if nh != c.want || ok != c.ok {
			t.Errorf("Lookup(%s) = (%d,%v), want (%d,%v)", c.addr, nh, ok, c.want, c.ok)
		}
	}
}

// TestLongestMatchAgainstLinear: the binary-search LongestMatch (the
// scrubber's authoritative verdict) must agree with the O(N) linear scan
// on every address — random probes plus every prefix boundary, over
// synthesized tables with nested prefixes.
func TestLongestMatchAgainstLinear(t *testing.T) {
	rng := stats.NewRNG(0xa11d17)
	for _, n := range []int{1, 17, 500, 5000} {
		tbl := Synthesize(SynthConfig{N: n, NextHops: 16, NestProb: 0.5, Seed: uint64(n) + 9})
		check := func(a ip.Addr) {
			t.Helper()
			wantNH, wantOK := tbl.LookupLinear(a)
			rt, ok := tbl.LongestMatch(a)
			if ok != wantOK || (ok && rt.NextHop != wantNH) {
				t.Fatalf("n=%d LongestMatch(%s) = (%+v,%v), linear says (%d,%v)",
					n, ip.FormatAddr(a), rt, ok, wantNH, wantOK)
			}
			if ok && (a < rt.Prefix.FirstAddr() || a > rt.Prefix.LastAddr()) {
				t.Fatalf("n=%d LongestMatch(%s) returned non-containing prefix %v",
					n, ip.FormatAddr(a), rt.Prefix)
			}
		}
		for i := 0; i < 2000; i++ {
			check(ip.Addr(rng.Uint32()))
		}
		// Boundary addresses: first/last covered address of every prefix
		// and their outside neighbours, where off-by-one bugs live.
		for _, rt := range tbl.Routes() {
			lo, hi := rt.Prefix.FirstAddr(), rt.Prefix.LastAddr()
			check(lo)
			check(hi)
			if lo > 0 {
				check(lo - 1)
			}
			if hi < ^ip.Addr(0) {
				check(hi + 1)
			}
		}
	}
}

// TestLongestMatchNoMatch: an address outside every prefix yields the
// explicit no-route sentinel.
func TestLongestMatchNoMatch(t *testing.T) {
	tbl := New([]Route{{Prefix: ip.MustPrefix("10.0.0.0/8"), NextHop: 1}})
	a, _ := ip.ParseAddr("11.0.0.1")
	rt, ok := tbl.LongestMatch(a)
	if ok || rt.NextHop != NoNextHop {
		t.Fatalf("LongestMatch outside table = (%+v,%v), want (NoNextHop,false)", rt, ok)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	tbl := Small(500, 7)
	var buf bytes.Buffer
	if err := tbl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tbl.Len() {
		t.Fatalf("round trip lost entries: %d != %d", back.Len(), tbl.Len())
	}
	for i, r := range back.Routes() {
		if r != tbl.Routes()[i] {
			t.Fatalf("entry %d differs: %v != %v", i, r, tbl.Routes()[i])
		}
	}
}

func TestReadSkipsCommentsAndErrors(t *testing.T) {
	in := "# comment\n\n10.0.0.0/8 3\n"
	tbl, err := Read(strings.NewReader(in))
	if err != nil || tbl.Len() != 1 {
		t.Fatalf("Read: %v len=%d", err, tbl.Len())
	}
	for _, bad := range []string{"10.0.0.0/8", "10.0.0.0/8 x", "zz 1", "10.0.0.0/8 70000"} {
		if _, err := Read(strings.NewReader(bad)); err == nil {
			t.Errorf("Read(%q): want error", bad)
		}
	}
}

func TestSynthesizeExactSizeAndDistribution(t *testing.T) {
	tbl := Small(10000, 11)
	if tbl.Len() != 10000 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	h := tbl.LengthHistogram()
	// /24 must dominate (roughly 46.5% by construction).
	if frac := float64(h[24]) / 10000; frac < 0.40 || frac > 0.55 {
		t.Errorf("/24 fraction = %.3f, want ~0.465", frac)
	}
	// >83% of prefixes at /24 or shorter, per the paper's cited statistic.
	le24 := 0
	for l := 0; l <= 24; l++ {
		le24 += h[l]
	}
	if frac := float64(le24) / 10000; frac < 0.83 {
		t.Errorf("<=24 fraction = %.3f, want >= 0.83", frac)
	}
	// Some host routes exist (minimum range granularity 1, per Sec 2.2).
	if h[32] == 0 {
		t.Error("want some /32 prefixes")
	}
}

// Regression: RT_2-scale tables demand more /8s than exist under the
// unicast filter; the quota must spill into /24 instead of spinning.
func TestSynthesizePaperSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 140k-prefix table")
	}
	t2 := RT2()
	if t2.Len() != 140838 {
		t.Fatalf("RT2 size = %d", t2.Len())
	}
	h := t2.LengthHistogram()
	if h[8] == 0 || h[8] > 192 {
		t.Errorf("/8 count = %d, want within generator capacity", h[8])
	}
	t1 := RT1()
	if t1.Len() != 41709 {
		t.Fatalf("RT1 size = %d", t1.Len())
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a, b := Small(1000, 5), Small(1000, 5)
	for i := range a.Routes() {
		if a.Routes()[i] != b.Routes()[i] {
			t.Fatal("same seed must give same table")
		}
	}
	c := Small(1000, 6)
	diff := false
	for i := range a.Routes() {
		if a.Routes()[i] != c.Routes()[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds should give different tables")
	}
}

func TestSynthesizeNesting(t *testing.T) {
	tbl := Small(5000, 13)
	routes := tbl.Routes()
	nested := 0
	for i, r := range routes {
		// Sorted order puts covering prefixes immediately before their
		// more-specifics; scan a small back-window.
		for j := i - 1; j >= 0 && j >= i-32; j-- {
			if routes[j].Prefix.Contains(r.Prefix) && routes[j].Prefix != r.Prefix {
				nested++
				break
			}
		}
	}
	if frac := float64(nested) / float64(len(routes)); frac < 0.10 {
		t.Errorf("nested fraction = %.3f, want >= 0.10 (prefix exceptions)", frac)
	}
}

func TestApplyUpdate(t *testing.T) {
	tbl := New([]Route{
		{Prefix: ip.MustPrefix("10.0.0.0/8"), NextHop: 1},
	})
	// Announce new.
	t2 := tbl.Apply(Update{Kind: Announce, Route: Route{Prefix: ip.MustPrefix("11.0.0.0/8"), NextHop: 2}})
	if t2.Len() != 2 {
		t.Fatalf("announce new: Len = %d", t2.Len())
	}
	// Re-announce existing changes next hop.
	t3 := t2.Apply(Update{Kind: Announce, Route: Route{Prefix: ip.MustPrefix("10.0.0.0/8"), NextHop: 9}})
	if nh, _ := t3.LookupLinear(0x0a000001); nh != 9 {
		t.Errorf("re-announce: nh = %d", nh)
	}
	if t3.Len() != 2 {
		t.Errorf("re-announce should not grow table")
	}
	// Withdraw.
	t4 := t3.Apply(Update{Kind: Withdraw, Route: Route{Prefix: ip.MustPrefix("10.0.0.0/8")}})
	if t4.Len() != 1 {
		t.Errorf("withdraw: Len = %d", t4.Len())
	}
	// Withdraw missing is a no-op.
	t5 := t4.Apply(Update{Kind: Withdraw, Route: Route{Prefix: ip.MustPrefix("12.0.0.0/8")}})
	if t5.Len() != 1 {
		t.Errorf("withdraw missing: Len = %d", t5.Len())
	}
}

func TestGenerateUpdates(t *testing.T) {
	tbl := Small(200, 3)
	ups := GenerateUpdates(tbl, UpdateStreamConfig{
		RatePerSecond: 20,
		CycleNS:       5,
		Duration:      12_000_000, // 60 ms at 5 ns/cycle
		WithdrawProb:  0.3,
		Seed:          1,
	})
	// ~20/s over 60 ms ≈ 1.2 events; run longer for a stable count.
	ups = GenerateUpdates(tbl, UpdateStreamConfig{
		RatePerSecond: 100,
		CycleNS:       5,
		Duration:      200_000_000, // 1 s
		WithdrawProb:  0.3,
		Seed:          1,
	})
	if len(ups) < 60 || len(ups) > 140 {
		t.Errorf("got %d updates for 100/s over 1 s", len(ups))
	}
	var last int64 = -1
	withdraws := 0
	for _, u := range ups {
		if u.AtCycle <= last {
			t.Fatal("updates must be time-ordered")
		}
		last = u.AtCycle
		if u.Kind == Withdraw {
			withdraws++
		}
	}
	if withdraws == 0 || withdraws == len(ups) {
		t.Errorf("withdraw mix wrong: %d/%d", withdraws, len(ups))
	}
	if got := GenerateUpdates(tbl, UpdateStreamConfig{}); got != nil {
		t.Error("zero config should produce no updates")
	}
}

func TestRandomMatchedAddr(t *testing.T) {
	tbl := Small(300, 9)
	rng := stats.NewRNG(4)
	for i := 0; i < 1000; i++ {
		a := tbl.RandomMatchedAddr(rng)
		if _, ok := tbl.LookupLinear(a); !ok {
			t.Fatalf("RandomMatchedAddr produced unmatched address %s", ip.FormatAddr(a))
		}
	}
}

// Property: Apply(Announce) then LookupLinear on an address inside the
// announced prefix and outside any longer match returns the announced hop.
func TestApplyAnnounceProperty(t *testing.T) {
	base := Small(100, 21)
	f := func(v uint32, lenSeed, nh uint8) bool {
		l := uint8(1 + int(lenSeed)%32)
		p := ip.Prefix{Value: v, Len: l}.Canon()
		t2 := base.Apply(Update{Kind: Announce, Route: Route{Prefix: p, NextHop: NextHop(nh)}})
		got, ok := t2.LookupLinear(p.FirstAddr())
		if !ok {
			return false
		}
		// The announced route wins unless a strictly longer existing prefix
		// matches the same address.
		for _, r := range t2.Routes() {
			if r.Prefix.Len > l && r.Prefix.Matches(p.FirstAddr()) {
				return true // longer match legitimately wins
			}
		}
		return got == NextHop(nh)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
