package sim

import (
	"runtime"
	"sync"
)

// RunMany executes independent simulation configurations concurrently and
// returns their results in input order. Each run is internally
// deterministic (seeded), so the parallelism never changes any result —
// it only shortens the wall time of parameter sweeps like Figs. 4-6.
//
// Concurrency is bounded below NumCPU because a paper-scale run holds
// every packet record in memory (ψ=16 x 300k packets ≈ 250 MB).
func RunMany(cfgs []Config) ([]*Result, []error) {
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	workers := runtime.NumCPU()
	if workers > 4 {
		workers = 4
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				r, err := New(cfgs[i])
				if err != nil {
					errs[i] = err
					continue
				}
				results[i], errs[i] = r.Run()
			}
		}()
	}
	for i := range cfgs {
		work <- i
	}
	close(work)
	wg.Wait()
	return results, errs
}
