package sim

import (
	"encoding/json"
	"io"
)

// JSONResult is the machine-readable rendering of a Result: everything
// the human report prints plus the exact latency percentiles, keyed for
// the perf-grid harness so it never parses the report text. Field names
// are part of the harness's record schema — extend, don't rename.
type JSONResult struct {
	Config struct {
		NumLCs           int     `json:"num_lcs"`
		LookupCycles     int     `json:"lookup_cycles"`
		CacheEnabled     bool    `json:"cache_enabled"`
		CacheBlocks      int     `json:"cache_blocks"`
		CacheMixPercent  int     `json:"cache_mix_percent"`
		PartitionEnabled bool    `json:"partition_enabled"`
		Trace            string  `json:"trace"`
		PacketsPerLC     int     `json:"packets_per_lc"`
		Seed             uint64  `json:"seed"`
		OfferedLoad      float64 `json:"offered_load"`
		AdmissionCap     int     `json:"admission_cap"`
		UpdatesPerSecond float64 `json:"updates_per_sec"`
		UpdateFullFlush  bool    `json:"update_full_flush"`
		CorruptRate      float64 `json:"corrupt_rate"`
		ScrubEveryCycles int64   `json:"scrub_every_cycles"`
	} `json:"config"`

	MeanLookupCycles float64 `json:"mean_lookup_cycles"`
	P50Cycles        int     `json:"p50_cycles"`
	P90Cycles        int     `json:"p90_cycles"`
	P95Cycles        int     `json:"p95_cycles"`
	P99Cycles        int     `json:"p99_cycles"`
	WorstCycles      int     `json:"worst_cycles"`

	Cycles            int64   `json:"cycles"`
	PacketsCompleted  int64   `json:"packets_completed"`
	DerivedMppsPerLC  float64 `json:"derived_mpps_per_lc"`
	DerivedMppsRouter float64 `json:"derived_mpps_router"`
	OfferedMppsRouter float64 `json:"offered_mpps_router"`
	GoodputMppsRouter float64 `json:"goodput_mpps_router"`
	Shed              int64   `json:"shed"`
	ShedFraction      float64 `json:"shed_fraction"`
	HitRate           float64 `json:"hit_rate"`
	FabricMessages    int64   `json:"fabric_messages"`

	ChurnEvents             int64 `json:"churn_events"`
	ChurnRangeInvalidations int64 `json:"churn_range_invalidations"`
	ChurnStaleFills         int64 `json:"churn_stale_fills"`
	CorruptionsInjected     int64 `json:"corruptions_injected"`
	ScrubCycles             int64 `json:"scrub_cycles"`
	ScrubMismatches         int64 `json:"scrub_mismatches"`
	ScrubRepairs            int64 `json:"scrub_repairs"`
	WrongVerdicts           int64 `json:"wrong_verdicts"`

	PerLC   []LCStats      `json:"per_lc"`
	Stages  []StageStats   `json:"stages,omitempty"`
	Windows []WindowSample `json:"windows,omitempty"`
}

// JSONReport assembles the machine-readable snapshot of the run.
func (res *Result) JSONReport() *JSONResult {
	j := &JSONResult{
		MeanLookupCycles:        res.MeanLookupCycles,
		P50Cycles:               res.P50,
		P90Cycles:               res.LatencyPercentile(0.90),
		P95Cycles:               res.P95,
		P99Cycles:               res.LatencyPercentile(0.99),
		WorstCycles:             res.WorstLookupCycles,
		Cycles:                  res.Cycles,
		PacketsCompleted:        res.PacketsCompleted,
		DerivedMppsPerLC:        res.DerivedMppsPerLC,
		DerivedMppsRouter:       res.DerivedMppsRouter,
		OfferedMppsRouter:       res.OfferedMppsRouter,
		GoodputMppsRouter:       res.GoodputMppsRouter,
		Shed:                    res.Shed,
		ShedFraction:            res.ShedFraction,
		HitRate:                 res.HitRate,
		FabricMessages:          res.FabricMessages,
		ChurnEvents:             res.ChurnEvents,
		ChurnRangeInvalidations: res.ChurnRangeInvalidations,
		ChurnStaleFills:         res.ChurnStaleFills,
		CorruptionsInjected:     res.CorruptionsInjected,
		ScrubCycles:             res.ScrubCycles,
		ScrubMismatches:         res.ScrubMismatches,
		ScrubRepairs:            res.ScrubRepairs,
		WrongVerdicts:           res.WrongVerdicts,
		PerLC:                   res.PerLC,
		Stages:                  res.Stages,
		Windows:                 res.Samples,
	}
	j.Config.NumLCs = res.cfg.NumLCs
	j.Config.LookupCycles = res.cfg.LookupCycles
	j.Config.CacheEnabled = res.cfg.CacheEnabled
	j.Config.CacheBlocks = res.cfg.Cache.Blocks
	j.Config.CacheMixPercent = res.cfg.Cache.MixPercent
	j.Config.PartitionEnabled = res.cfg.PartitionEnabled
	j.Config.Trace = string(res.cfg.Trace)
	j.Config.PacketsPerLC = res.cfg.PacketsPerLC
	j.Config.Seed = res.cfg.Seed
	j.Config.OfferedLoad = res.cfg.OfferedLoad
	j.Config.AdmissionCap = res.cfg.AdmissionCap
	j.Config.UpdatesPerSecond = res.cfg.UpdatesPerSecond
	j.Config.UpdateFullFlush = res.cfg.UpdateFullFlush
	j.Config.CorruptRate = res.cfg.CorruptRate
	j.Config.ScrubEveryCycles = res.cfg.ScrubEveryCycles
	return j
}

// WriteJSON writes the indented JSON report followed by a newline.
func (res *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res.JSONReport())
}
