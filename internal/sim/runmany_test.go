package sim

import (
	"testing"

	"spal/internal/rtable"
)

func TestRunManyMatchesSequential(t *testing.T) {
	tbl := rtable.Small(2000, 71)
	var cfgs []Config
	for _, psi := range []int{1, 2, 4, 8} {
		cfg := testConfig(tbl)
		cfg.NumLCs = psi
		cfg.PacketsPerLC = 1500
		cfgs = append(cfgs, cfg)
	}
	parallel, errs := RunMany(cfgs)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
	}
	for i, cfg := range cfgs {
		seq := run(t, cfg)
		if parallel[i].MeanLookupCycles != seq.MeanLookupCycles ||
			parallel[i].Cycles != seq.Cycles ||
			parallel[i].FabricMessages != seq.FabricMessages {
			t.Fatalf("config %d: parallel result differs from sequential", i)
		}
	}
}

func TestRunManyPropagatesErrors(t *testing.T) {
	good := testConfig(rtable.Small(500, 3))
	good.PacketsPerLC = 200
	bad := Config{} // fails validation
	results, errs := RunMany([]Config{good, bad})
	if errs[0] != nil || results[0] == nil {
		t.Errorf("good config failed: %v", errs[0])
	}
	if errs[1] == nil || results[1] != nil {
		t.Error("bad config should error")
	}
}

func TestRunManyEmpty(t *testing.T) {
	results, errs := RunMany(nil)
	if len(results) != 0 || len(errs) != 0 {
		t.Error("empty input should give empty output")
	}
}
