package sim

import (
	"testing"

	"spal/internal/lpm/engines"
	"spal/internal/rtable"
)

// churnConfig enables verified route churn on the fast test configuration.
func churnConfig(tbl *rtable.Table, ups float64) Config {
	cfg := testConfig(tbl)
	cfg.UpdatesPerSecond = ups
	cfg.VerifyNextHops = true
	return cfg
}

// TestChurnVerified runs the simulator under route churn across the mode
// matrix — targeted invalidation vs full flush, partitioned vs full-table,
// rebuild vs in-place dynamic engines — with exact next-hop verification
// (complete() panics on any packet whose served hop disagrees with the
// oracle of the table version its value was computed against).
func TestChurnVerified(t *testing.T) {
	dynamic, err := engines.Lookup("bintrie")
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*Config){
		"targeted":       func(c *Config) {},
		"full-flush":     func(c *Config) { c.UpdateFullFlush = true },
		"no-partition":   func(c *Config) { c.PartitionEnabled = false },
		"dynamic-engine": func(c *Config) { c.Engine = dynamic },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			tbl := rtable.Small(2500, 11)
			cfg := churnConfig(tbl, 50_000) // dense churn over the short run
			mutate(&cfg)
			res := run(t, cfg)
			if res.PacketsCompleted != int64(cfg.NumLCs*cfg.PacketsPerLC) {
				t.Fatalf("completed %d of %d packets", res.PacketsCompleted, cfg.NumLCs*cfg.PacketsPerLC)
			}
			if res.ChurnEvents == 0 {
				t.Fatal("no churn events applied; test is vacuous")
			}
			if !cfg.UpdateFullFlush && res.ChurnRangeInvalidations == 0 {
				t.Fatal("targeted mode issued no range invalidations")
			}
			if cfg.UpdateFullFlush && res.ChurnRangeInvalidations != 0 {
				t.Fatal("full-flush mode issued range invalidations")
			}
			t.Logf("%s: %d events, %d range invalidations, %d stale fills, mean=%.1fcy",
				name, res.ChurnEvents, res.ChurnRangeInvalidations, res.ChurnStaleFills, res.MeanLookupCycles)
		})
	}
}

// TestChurnDeterminism: identical seeds must replay the identical churned
// run, updates included.
func TestChurnDeterminism(t *testing.T) {
	tbl := rtable.Small(2000, 13)
	a := run(t, churnConfig(tbl, 20_000))
	b := run(t, churnConfig(tbl, 20_000))
	if a.MeanLookupCycles != b.MeanLookupCycles || a.Cycles != b.Cycles ||
		a.ChurnEvents != b.ChurnEvents || a.ChurnStaleFills != b.ChurnStaleFills {
		t.Fatalf("same seed diverged under churn: mean %v/%v events %d/%d",
			a.MeanLookupCycles, b.MeanLookupCycles, a.ChurnEvents, b.ChurnEvents)
	}
}

// TestChurnTargetedBeatsFlush: with identical workloads, targeted
// invalidation must keep a higher cache hit rate than flushing every
// cache on every update batch.
func TestChurnTargetedBeatsFlush(t *testing.T) {
	tbl := rtable.Small(2500, 17)
	targeted := run(t, churnConfig(tbl, 50_000))
	cfg := churnConfig(tbl, 50_000)
	cfg.UpdateFullFlush = true
	flushed := run(t, cfg)
	if targeted.HitRate <= flushed.HitRate {
		t.Fatalf("targeted hit rate %.4f not above full-flush %.4f", targeted.HitRate, flushed.HitRate)
	}
	t.Logf("hit rate: targeted %.4f vs full-flush %.4f; mean lookup %.1f vs %.1f cycles",
		targeted.HitRate, flushed.HitRate, targeted.MeanLookupCycles, flushed.MeanLookupCycles)
}
