package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"spal/internal/rtable"
)

// TestResultJSON runs a small churned simulation and checks the JSON
// report is complete and self-consistent — the contract the perf-grid
// harness consumes instead of parsing the human report.
func TestResultJSON(t *testing.T) {
	tbl := rtable.Synthesize(rtable.SynthConfig{N: 3000, NextHops: 8, NestProb: 0.3, Seed: 5})
	cfg := DefaultConfig(tbl)
	cfg.NumLCs = 4
	cfg.PacketsPerLC = 4000
	cfg.UpdatesPerSecond = 5000
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}

	j := res.JSONReport()
	if j.MeanLookupCycles != res.MeanLookupCycles {
		t.Errorf("mean mismatch: %v vs %v", j.MeanLookupCycles, res.MeanLookupCycles)
	}
	if j.P50Cycles != res.P50 || j.P95Cycles != res.P95 || j.WorstCycles != res.WorstLookupCycles {
		t.Errorf("percentile fields disagree with Result: %+v", j)
	}
	if j.P99Cycles != res.LatencyPercentile(0.99) {
		t.Errorf("p99 = %d, want %d", j.P99Cycles, res.LatencyPercentile(0.99))
	}
	if j.P50Cycles > j.P90Cycles || j.P90Cycles > j.P95Cycles || j.P95Cycles > j.P99Cycles || j.P99Cycles > j.WorstCycles {
		t.Errorf("percentiles not monotone: %+v", j)
	}
	if j.Config.NumLCs != 4 || j.Config.Trace == "" || j.Config.UpdatesPerSecond != 5000 {
		t.Errorf("config echo incomplete: %+v", j.Config)
	}
	if len(j.PerLC) != 4 {
		t.Errorf("per-LC breakdown has %d entries, want 4", len(j.PerLC))
	}
	if j.ChurnEvents == 0 {
		t.Errorf("churned run reported zero churn events")
	}
	if j.PacketsCompleted != res.PacketsCompleted || j.PacketsCompleted == 0 {
		t.Errorf("packets completed %d vs %d", j.PacketsCompleted, res.PacketsCompleted)
	}

	// Key harness-facing fields must exist under their wire names.
	for _, key := range []string{
		"config", "mean_lookup_cycles", "p50_cycles", "p99_cycles",
		"worst_cycles", "hit_rate", "derived_mpps_router", "per_lc",
		"churn_events", "packets_completed",
	} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("JSON report missing key %q", key)
		}
	}
}

// TestResultJSONDeterministic pins the reproducibility contract: equal
// seeds produce byte-identical reports.
func TestResultJSONDeterministic(t *testing.T) {
	run := func() []byte {
		tbl := rtable.Synthesize(rtable.SynthConfig{N: 2000, NextHops: 8, NestProb: 0.3, Seed: 5})
		cfg := DefaultConfig(tbl)
		cfg.NumLCs = 2
		cfg.PacketsPerLC = 2000
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(), run()) {
		t.Errorf("equal seeds produced different JSON reports")
	}
}
