// Per-stage latency accounting: the simulator's counterpart of the
// concurrent router's lookup traces. When Config.StageAccounting is set,
// each packet carries first-write-wins cycle stamps at the stage
// boundaries of the Fig. 2 pipeline, and the run report aggregates them
// into a per-stage breakdown table whose stage names align with the
// tracing package's event vocabulary (arrival, probe, fabric_send,
// fabric_recv, fe_exec, verdict).
package sim

import (
	"fmt"
	"strings"
)

// stageStamp holds one packet's stage-boundary cycles; -1 = not reached.
// Kept in a slice parallel to Router.packets so runs without accounting
// pay nothing.
type stageStamp struct {
	probe   int64 // first LR-cache probe at the arrival LC
	reqSend int64 // fabric request pushed toward the home LC
	reqRecv int64 // request popped from the home LC's input queue
	feStart int64 // forwarding engine began the lookup
	feDone  int64 // forwarding engine finished
}

const (
	stProbe = iota
	stReqSend
	stReqRecv
	stFEStart
	stFEDone
)

// stamp records a stage boundary for packet id, first write wins (flush
// reissue can re-run a stage; the breakdown keeps the original pass).
func (r *Router) stamp(id int64, stage int) {
	if r.stages == nil {
		return
	}
	s := &r.stages[id]
	var p *int64
	switch stage {
	case stProbe:
		p = &s.probe
	case stReqSend:
		p = &s.reqSend
	case stReqRecv:
		p = &s.reqRecv
	case stFEStart:
		p = &s.feStart
	case stFEDone:
		p = &s.feDone
	}
	if *p < 0 {
		*p = r.now
	}
}

// StageStats aggregates one pipeline stage over every packet that
// traversed it.
type StageStats struct {
	// Name identifies the interval in the tracing event vocabulary,
	// e.g. "fabric_send→fabric_recv".
	Name string
	// Packets that have both boundary stamps.
	Packets int64
	// MeanCycles is the mean interval length in 5 ns cycles.
	MeanCycles float64
}

// stageDefs enumerates the reported intervals. fe_queue starts at the
// request's arrival at the lookup site: reqRecv for remote lookups,
// probe for local ones.
var stageDefs = []struct {
	name     string
	from, to func(p *packet, s *stageStamp) int64
}{
	{"arrival→probe", func(p *packet, s *stageStamp) int64 { return p.arrivalCycle }, func(p *packet, s *stageStamp) int64 { return s.probe }},
	{"fabric_send→fabric_recv", func(p *packet, s *stageStamp) int64 { return s.reqSend }, func(p *packet, s *stageStamp) int64 { return s.reqRecv }},
	{"fe_queue", func(p *packet, s *stageStamp) int64 {
		if s.reqRecv >= 0 {
			return s.reqRecv
		}
		return s.probe
	}, func(p *packet, s *stageStamp) int64 { return s.feStart }},
	{"fe_exec", func(p *packet, s *stageStamp) int64 { return s.feStart }, func(p *packet, s *stageStamp) int64 { return s.feDone }},
	{"fe_exec→verdict", func(p *packet, s *stageStamp) int64 { return s.feDone }, func(p *packet, s *stageStamp) int64 { return p.completeCycle }},
}

// stageBreakdown folds the stamps into per-stage means.
func (r *Router) stageBreakdown() []StageStats {
	if r.stages == nil {
		return nil
	}
	out := make([]StageStats, len(stageDefs))
	sums := make([]int64, len(stageDefs))
	for i := range r.packets {
		p, s := &r.packets[i], &r.stages[i]
		if p.completeCycle < 0 {
			continue
		}
		for j, d := range stageDefs {
			from, to := d.from(p, s), d.to(p, s)
			if from < 0 || to < 0 {
				continue
			}
			out[j].Packets++
			sums[j] += to - from
		}
	}
	for j := range out {
		out[j].Name = stageDefs[j].name
		if out[j].Packets > 0 {
			out[j].MeanCycles = float64(sums[j]) / float64(out[j].Packets)
		}
	}
	return out
}

// StageTable renders the per-stage latency breakdown (empty string when
// the run had StageAccounting off).
func (res *Result) StageTable() string {
	if len(res.Stages) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("stage                      packets      mean cycles\n")
	for _, st := range res.Stages {
		fmt.Fprintf(&b, "%-26s %8d %16.2f\n", st.Name, st.Packets, st.MeanCycles)
	}
	return b.String()
}
