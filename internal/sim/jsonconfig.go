package sim

import (
	"encoding/json"
	"fmt"
	"io"

	"spal/internal/cache"
	"spal/internal/fabric"
	"spal/internal/trace"
)

// FileConfig is the JSON-serializable subset of Config used by the CLI
// tools (engines and tables are program-level choices; everything the
// paper sweeps is here).
type FileConfig struct {
	NumLCs           int     `json:"num_lcs"`
	LookupCycles     int     `json:"lookup_cycles"`
	DynamicLookup    bool    `json:"dynamic_lookup"`
	CacheBlocks      int     `json:"cache_blocks"`
	CacheAssoc       int     `json:"cache_assoc"`
	VictimBlocks     int     `json:"victim_blocks"`
	MixPercent       int     `json:"mix_percent"`
	CachePolicy      string  `json:"cache_policy"` // lru | fifo | random
	CacheEnabled     *bool   `json:"cache_enabled"`
	PartitionEnabled *bool   `json:"partition_enabled"`
	FabricKind       string  `json:"fabric_kind"` // bus | crossbar | multistage
	FabricLatency    int     `json:"fabric_latency"`
	FabricContention bool    `json:"fabric_contention"`
	SpeedGbps        int     `json:"speed_gbps"` // 10 or 40
	PacketsPerLC     int     `json:"packets_per_lc"`
	Trace            string  `json:"trace"`
	FlushEveryCycles int64   `json:"flush_every_cycles"`
	UpdatesPerSecond float64 `json:"updates_per_second"`
	UpdateFullFlush  bool    `json:"update_full_flush"`
	DisableEarlyRec  bool    `json:"disable_early_recording"`
	Seed             uint64  `json:"seed"`
}

// LoadConfig reads a FileConfig from JSON and converts it to a Config
// (Table and Engine remain to be set by the caller). Unset fields keep
// the paper's defaults.
func LoadConfig(r io.Reader) (Config, error) {
	fc := FileConfig{}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&fc); err != nil {
		return Config{}, fmt.Errorf("sim: bad config: %v", err)
	}
	return fc.ToConfig()
}

// ToConfig converts the file form, validating enumerations.
func (fc FileConfig) ToConfig() (Config, error) {
	cfg := Config{
		NumLCs:           16,
		LookupCycles:     40,
		Cache:            cache.DefaultConfig(),
		CacheEnabled:     true,
		PartitionEnabled: true,
		FabricKind:       fabric.Multistage,
		PacketsPerLC:     300000,
		Trace:            trace.D75,
		Seed:             1,
	}
	cfg.GapMin, cfg.GapMax = Gaps40Gbps()

	if fc.NumLCs > 0 {
		cfg.NumLCs = fc.NumLCs
	}
	if fc.LookupCycles > 0 {
		cfg.LookupCycles = fc.LookupCycles
	}
	cfg.DynamicLookup = fc.DynamicLookup
	if fc.CacheBlocks > 0 {
		cfg.Cache.Blocks = fc.CacheBlocks
	}
	if fc.CacheAssoc > 0 {
		cfg.Cache.Assoc = fc.CacheAssoc
	}
	if fc.VictimBlocks >= 0 && fc.VictimBlocks != 0 {
		cfg.Cache.VictimBlocks = fc.VictimBlocks
	}
	if fc.MixPercent > 0 {
		cfg.Cache.MixPercent = fc.MixPercent
	}
	switch fc.CachePolicy {
	case "", "lru":
		cfg.Cache.Policy = cache.LRU
	case "fifo":
		cfg.Cache.Policy = cache.FIFO
	case "random":
		cfg.Cache.Policy = cache.Random
	default:
		return cfg, fmt.Errorf("sim: unknown cache policy %q", fc.CachePolicy)
	}
	if fc.CacheEnabled != nil {
		cfg.CacheEnabled = *fc.CacheEnabled
	}
	if fc.PartitionEnabled != nil {
		cfg.PartitionEnabled = *fc.PartitionEnabled
	}
	switch fc.FabricKind {
	case "", "multistage":
		cfg.FabricKind = fabric.Multistage
	case "bus":
		cfg.FabricKind = fabric.Bus
	case "crossbar":
		cfg.FabricKind = fabric.Crossbar
	default:
		return cfg, fmt.Errorf("sim: unknown fabric kind %q", fc.FabricKind)
	}
	cfg.FabricLatency = fc.FabricLatency
	cfg.FabricContention = fc.FabricContention
	switch fc.SpeedGbps {
	case 0, 40:
	case 10:
		cfg.GapMin, cfg.GapMax = Gaps10Gbps()
	default:
		return cfg, fmt.Errorf("sim: speed must be 10 or 40, got %d", fc.SpeedGbps)
	}
	if fc.PacketsPerLC > 0 {
		cfg.PacketsPerLC = fc.PacketsPerLC
	}
	if fc.Trace != "" {
		cfg.Trace = trace.Preset(fc.Trace)
	}
	cfg.FlushEveryCycles = fc.FlushEveryCycles
	cfg.UpdatesPerSecond = fc.UpdatesPerSecond
	cfg.UpdateFullFlush = fc.UpdateFullFlush
	cfg.DisableEarlyRecording = fc.DisableEarlyRec
	if fc.Seed != 0 {
		cfg.Seed = fc.Seed
	}
	return cfg, nil
}
