// State-integrity plane of the simulator: seeded fill corruption and the
// online cache scrubber.
//
// CorruptRate flips the next hop of a fill with a fixed per-fill
// probability drawn from an independent splitmix64 stream, so every
// corruption in a run is reproducible from (Seed, CorruptSeed). The
// corrupted value behaves exactly like the concurrent router's CorruptStore
// wrong fill: it is stored in the LR-cache, delivered to the parked
// packets, and keeps serving hits until something removes it — a churn
// invalidation that happens to cover it, capacity eviction, or the
// scrubber.
//
// ScrubEveryCycles audits every LR-cache entry against the oracle of the
// current table version and evicts mismatches. The audit is exhaustive
// (unlike the concurrent router's sampled engine sweep, a cache holds few
// enough entries to walk in full), so a corrupted entry's exposure window
// is bounded by one scrub period. Without corruption the audit must find
// nothing: live entries always agree with the current version because
// churn invalidates affected ranges and stale fills are point-invalidated.
package sim

import (
	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/rtable"
)

// maybeCorrupt applies the seeded fill corruption: with probability
// CorruptRate the next hop is bit-flipped before it reaches the cache and
// the packets parked on it.
func (r *Router) maybeCorrupt(nh rtable.NextHop) rtable.NextHop {
	if r.corruptRNG == nil || !r.corruptRNG.Bool(r.cfg.CorruptRate) {
		return nh
	}
	r.corruptions++
	return nh ^ 1
}

// scrubAuthority returns the oracle for the current table version,
// reusing the verification history when it exists and caching one
// reference per version otherwise.
func (r *Router) scrubAuthority() *lpm.Reference {
	if r.refs != nil {
		return r.refs[r.version]
	}
	if r.scrubAuth == nil || r.scrubAuthVer != r.version {
		r.scrubAuth = lpm.NewReference(r.curTable)
		r.scrubAuthVer = r.version
	}
	return r.scrubAuth
}

// scrubAll audits every LR-cache entry against the current oracle and
// evicts the ones that disagree. Waiting blocks are skipped (their value
// is not yet decided); an evicted address simply misses again.
func (r *Router) scrubAll() {
	auth := r.scrubAuthority()
	for _, l := range r.lcs {
		if l.cache == nil {
			continue
		}
		evicted := l.cache.AuditEntries(func(a ip.Addr, nh rtable.NextHop) bool {
			want, _, ok := auth.Lookup(a)
			if !ok {
				want = rtable.NoNextHop
			}
			if nh == want {
				return true
			}
			r.scrubMismatches++
			return false
		})
		r.scrubRepairs += int64(evicted)
	}
	r.scrubCycles++
}
