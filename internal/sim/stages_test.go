package sim

import (
	"math"
	"strings"
	"testing"

	"spal/internal/rtable"
)

// TestStageAccounting checks the per-stage breakdown against the run's
// known structure: every completed packet crossed the probe boundary,
// the fabric interval equals the configured fabric latency, and the
// fe_exec stage means exactly LookupCycles (the FE is a fixed-cost
// server in the static model).
func TestStageAccounting(t *testing.T) {
	tbl := rtable.Small(3000, 1)
	cfg := testConfig(tbl)
	cfg.StageAccounting = true
	res := run(t, cfg)

	stages := map[string]StageStats{}
	for _, st := range res.Stages {
		stages[st.Name] = st
	}

	if got := stages["arrival→probe"].Packets; got != res.PacketsCompleted {
		t.Errorf("arrival→probe packets = %d, want every completed packet (%d)", got, res.PacketsCompleted)
	}
	fe := stages["fe_exec"]
	if fe.Packets == 0 {
		t.Fatal("no packets crossed the FE")
	}
	if fe.MeanCycles != float64(cfg.LookupCycles) {
		t.Errorf("fe_exec mean = %v cycles, want exactly LookupCycles=%d", fe.MeanCycles, cfg.LookupCycles)
	}
	fab := stages["fabric_send→fabric_recv"]
	if fab.Packets == 0 {
		t.Fatal("no packets crossed the fabric (partitioned run must have remote misses)")
	}
	// Without FabricContention a message injected at cycle c is delivered
	// and popped exactly FabricLatency later (plus at most the one-cycle
	// outQ injection slot), so the mean sits just above the pipe latency.
	lat, _ := normalizeFor(t, cfg)
	if fab.MeanCycles < float64(lat) || fab.MeanCycles > float64(lat)+8 {
		t.Errorf("fabric stage mean %v cycles, want within [%d, %d]", fab.MeanCycles, lat, lat+8)
	}
	if math.Signbit(stages["fe_queue"].MeanCycles) || math.Signbit(stages["fe_exec→verdict"].MeanCycles) {
		t.Error("negative stage mean")
	}

	table := res.StageTable()
	for name := range stages {
		if !strings.Contains(table, name) {
			t.Errorf("StageTable missing stage %q:\n%s", name, table)
		}
	}
}

// normalizeFor exposes the derived fabric latency for assertions.
func normalizeFor(t *testing.T, cfg Config) (int, Config) {
	t.Helper()
	n, err := cfg.normalize()
	if err != nil {
		t.Fatal(err)
	}
	return n.FabricLatency, n
}

// TestStageAccountingOff pins the zero-cost default: no stamps, no
// Stages, empty table.
func TestStageAccountingOff(t *testing.T) {
	tbl := rtable.Small(2000, 2)
	res := run(t, testConfig(tbl))
	if res.Stages != nil {
		t.Errorf("Stages = %v without StageAccounting", res.Stages)
	}
	if res.StageTable() != "" {
		t.Error("StageTable non-empty without StageAccounting")
	}
}

// TestStageAccountingDeterminism: stamps must not perturb the run.
func TestStageAccountingDeterminism(t *testing.T) {
	tbl := rtable.Small(2000, 2)
	plain := run(t, testConfig(tbl))
	cfg := testConfig(tbl)
	cfg.StageAccounting = true
	stamped := run(t, cfg)
	if plain.MeanLookupCycles != stamped.MeanLookupCycles || plain.Cycles != stamped.Cycles {
		t.Errorf("stage accounting changed the run: %v/%v cycles %d/%d",
			plain.MeanLookupCycles, stamped.MeanLookupCycles, plain.Cycles, stamped.Cycles)
	}
}
