package sim

import (
	"testing"

	"spal/internal/rtable"
	"spal/internal/trace"
)

// testConfig returns a small, fast SPAL configuration.
func testConfig(tbl *rtable.Table) Config {
	cfg := DefaultConfig(tbl)
	cfg.NumLCs = 4
	cfg.PacketsPerLC = 3000
	cfg.TraceConfig = trace.Config{PoolSize: 2000, ZipfS: 1.1, MeanTrain: 4, Seed: 3}
	return cfg
}

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConservation(t *testing.T) {
	tbl := rtable.Small(3000, 1)
	res := run(t, testConfig(tbl))
	if res.PacketsCompleted != 4*3000 {
		t.Fatalf("completed = %d, want 12000", res.PacketsCompleted)
	}
	for i, l := range res.PerLC {
		if l.Generated != 3000 {
			t.Errorf("LC %d generated %d", i, l.Generated)
		}
		if l.Completed != 3000 {
			t.Errorf("LC %d completed %d (packets complete at their arrival LC)", i, l.Completed)
		}
	}
	if res.MeanLookupCycles < 1 {
		t.Errorf("mean = %v", res.MeanLookupCycles)
	}
	if res.WorstLookupCycles < res.P95 || res.P95 < res.P50 {
		t.Error("latency percentiles out of order")
	}
}

func TestDeterminism(t *testing.T) {
	tbl := rtable.Small(2000, 2)
	a := run(t, testConfig(tbl))
	b := run(t, testConfig(tbl))
	if a.MeanLookupCycles != b.MeanLookupCycles || a.Cycles != b.Cycles ||
		a.FabricMessages != b.FabricMessages {
		t.Errorf("same seed diverged: %v/%v cycles %d/%d", a.MeanLookupCycles,
			b.MeanLookupCycles, a.Cycles, b.Cycles)
	}
	cfg := testConfig(tbl)
	cfg.Seed = 99
	c := run(t, cfg)
	if c.Cycles == a.Cycles && c.MeanLookupCycles == a.MeanLookupCycles {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

// Invariant 3: every packet's next hop equals full-table LPM, across all
// router modes (the oracle check panics inside the run on violation).
func TestCacheTransparencyAllModes(t *testing.T) {
	tbl := rtable.Small(3000, 5)
	modes := []struct {
		name             string
		cacheEnabled     bool
		partitionEnabled bool
	}{
		{"spal", true, true},
		{"cache-only", true, false},
		{"partition-only", false, true},
		{"conventional", false, false},
	}
	for _, m := range modes {
		cfg := testConfig(tbl)
		cfg.PacketsPerLC = 1200
		cfg.CacheEnabled = m.cacheEnabled
		cfg.PartitionEnabled = m.partitionEnabled
		cfg.VerifyNextHops = true
		res := run(t, cfg)
		if res.PacketsCompleted != int64(cfg.NumLCs*cfg.PacketsPerLC) {
			t.Errorf("%s: completed %d", m.name, res.PacketsCompleted)
		}
	}
}

func TestConventionalBaselineLatency(t *testing.T) {
	tbl := rtable.Small(2000, 7)
	cfg := testConfig(tbl)
	cfg.CacheEnabled = false
	cfg.PartitionEnabled = false
	cfg.PacketsPerLC = 1500
	res := run(t, cfg)
	// Every lookup runs the 40-cycle FE; queueing only adds to that.
	if res.MeanLookupCycles < 40 {
		t.Errorf("conventional mean = %.1f, want >= 40", res.MeanLookupCycles)
	}
	for i, l := range res.PerLC {
		if l.FELookups != l.Generated {
			t.Errorf("LC %d: %d FE lookups for %d packets", i, l.FELookups, l.Generated)
		}
		if l.RequestsSent != 0 || l.RepliesSent != 0 {
			t.Errorf("LC %d: fabric traffic in conventional mode", i)
		}
	}
	if res.FabricMessages != 0 {
		t.Errorf("fabric messages = %d in conventional mode", res.FabricMessages)
	}
}

func TestSPALBeatsConventional(t *testing.T) {
	tbl := rtable.Small(3000, 9)
	spal := run(t, testConfig(tbl))
	conv := testConfig(tbl)
	conv.CacheEnabled = false
	conv.PartitionEnabled = false
	convRes := run(t, conv)
	if spal.MeanLookupCycles >= convRes.MeanLookupCycles {
		t.Errorf("SPAL mean %.1f should beat conventional %.1f",
			spal.MeanLookupCycles, convRes.MeanLookupCycles)
	}
	if spal.HitRate < 0.5 {
		t.Errorf("SPAL hit rate = %.3f, trace should have locality", spal.HitRate)
	}
}

func TestLargerPsiImprovesMean(t *testing.T) {
	tbl := rtable.Small(4000, 11)
	mk := func(psi int) float64 {
		cfg := testConfig(tbl)
		cfg.NumLCs = psi
		cfg.PacketsPerLC = 2500
		return run(t, cfg).MeanLookupCycles
	}
	m1, m16 := mk(1), mk(16)
	if m16 >= m1 {
		t.Errorf("psi=16 mean %.2f should beat psi=1 mean %.2f", m16, m1)
	}
}

func TestWaitingCoalescing(t *testing.T) {
	tbl := rtable.Small(1000, 13)
	cfg := testConfig(tbl)
	// Tiny pool and long trains: many back-to-back packets to the same
	// address force hits on W=1 blocks.
	cfg.TraceConfig = trace.Config{PoolSize: 50, ZipfS: 1.2, MeanTrain: 8, Seed: 5}
	res := run(t, cfg)
	var parked, maxList int64
	for _, l := range res.PerLC {
		parked += l.Parked
		if l.MaxWaitList > maxList {
			maxList = l.MaxWaitList
		}
	}
	if parked == 0 {
		t.Error("long trains over a 50-address pool must park packets on W blocks")
	}
	if maxList < 2 {
		t.Errorf("MaxWaitList = %d, want >= 2", maxList)
	}
	// The mean stays far below the FE cost thanks to coalescing + caching.
	if res.MeanLookupCycles >= 40 {
		t.Errorf("mean %.1f with a 50-address pool; coalescing should crush this", res.MeanLookupCycles)
	}
}

func TestFlushReissue(t *testing.T) {
	tbl := rtable.Small(2000, 17)
	cfg := testConfig(tbl)
	cfg.FlushEveryCycles = 2000
	cfg.VerifyNextHops = true
	res := run(t, cfg)
	if res.PacketsCompleted != int64(cfg.NumLCs*cfg.PacketsPerLC) {
		t.Fatalf("flushes lost packets: %d", res.PacketsCompleted)
	}
	// Flushing must hurt the hit rate versus the flush-free run.
	noFlush := testConfig(tbl)
	base := run(t, noFlush)
	if res.HitRate >= base.HitRate {
		t.Errorf("hit rate with flushes (%.4f) should be below without (%.4f)",
			res.HitRate, base.HitRate)
	}
}

func TestNonPowerOfTwoLCs(t *testing.T) {
	tbl := rtable.Small(2000, 19)
	cfg := testConfig(tbl)
	cfg.NumLCs = 3
	cfg.VerifyNextHops = true
	res := run(t, cfg)
	if res.PacketsCompleted != int64(3*cfg.PacketsPerLC) {
		t.Fatalf("completed = %d", res.PacketsCompleted)
	}
}

func Test10GbpsGaps(t *testing.T) {
	tbl := rtable.Small(2000, 23)
	cfg := testConfig(tbl)
	cfg.GapMin, cfg.GapMax = Gaps10Gbps()
	cfg.PacketsPerLC = 1000
	res := run(t, cfg)
	// Lower load -> completion takes more cycles overall but the mean
	// lookup stays small.
	if res.Cycles < int64(cfg.PacketsPerLC)*6 {
		t.Errorf("cycles = %d, below the minimum generation time", res.Cycles)
	}
}

func TestDynamicLookup(t *testing.T) {
	tbl := rtable.Small(2000, 29)
	cfg := testConfig(tbl)
	cfg.DynamicLookup = true
	cfg.PacketsPerLC = 1000
	cfg.VerifyNextHops = true
	res := run(t, cfg)
	if res.PacketsCompleted != int64(cfg.NumLCs*cfg.PacketsPerLC) {
		t.Fatal("dynamic-lookup run incomplete")
	}
}

func TestMixedHomeCounters(t *testing.T) {
	tbl := rtable.Small(3000, 31)
	res := run(t, testConfig(tbl))
	var reqSent, reqRecv, repSent, repRecv int64
	for _, l := range res.PerLC {
		reqSent += l.RequestsSent
		reqRecv += l.RequestsReceived
		repSent += l.RepliesSent
	}
	repRecv = res.FabricMessages - reqSent // replies injected = total - requests
	if reqSent == 0 {
		t.Fatal("no remote requests with psi=4; partitioning inactive?")
	}
	if reqSent != reqRecv {
		t.Errorf("requests sent %d != received %d", reqSent, reqRecv)
	}
	if repSent != repRecv {
		t.Errorf("replies sent %d != injected %d", repSent, repRecv)
	}
	if repSent > reqSent {
		t.Errorf("more replies (%d) than requests (%d)", repSent, reqSent)
	}
}

func TestQueueOccupancyStats(t *testing.T) {
	tbl := rtable.Small(2000, 47)
	cfg := testConfig(tbl)
	cfg.CacheEnabled = false // all packets hit the FE: queues must grow
	cfg.PartitionEnabled = false
	cfg.PacketsPerLC = 1000
	res := run(t, cfg)
	for i, l := range res.PerLC {
		if l.MaxFEQueue == 0 {
			t.Errorf("LC %d: MaxFEQueue = 0 with a saturated FE", i)
		}
		if l.MeanFEQueue <= 0 {
			t.Errorf("LC %d: MeanFEQueue = %v", i, l.MeanFEQueue)
		}
		if l.MaxFEQueue < int64(l.MeanFEQueue) {
			t.Errorf("LC %d: max %d below mean %.1f", i, l.MaxFEQueue, l.MeanFEQueue)
		}
	}
	// SPAL config keeps queues shallow by comparison.
	spalRes := run(t, testConfig(tbl))
	if spalRes.PerLC[0].MeanFEQueue >= res.PerLC[0].MeanFEQueue {
		t.Error("SPAL mean FE queue should be far below the saturated baseline")
	}
}

// γ=0 makes every REM-class miss bypass the cache entirely — the heaviest
// exercise of the no-reservation resolution path. Conservation and
// next-hop correctness must hold.
func TestGammaZeroBypassPath(t *testing.T) {
	tbl := rtable.Small(2000, 53)
	cfg := testConfig(tbl)
	cfg.Cache.MixPercent = 0
	cfg.VerifyNextHops = true
	res := run(t, cfg)
	if res.PacketsCompleted != int64(cfg.NumLCs*cfg.PacketsPerLC) {
		t.Fatalf("completed = %d", res.PacketsCompleted)
	}
	// Remote repeats can no longer be served locally: fabric traffic must
	// far exceed the γ=50 run's.
	base := run(t, testConfig(tbl))
	if res.FabricMessages <= base.FabricMessages {
		t.Errorf("γ=0 fabric traffic (%d) should exceed γ=50 (%d)",
			res.FabricMessages, base.FabricMessages)
	}
}

func TestDisableEarlyRecording(t *testing.T) {
	tbl := rtable.Small(2000, 41)
	cfg := testConfig(tbl)
	cfg.DisableEarlyRecording = true
	cfg.VerifyNextHops = true
	res := run(t, cfg)
	if res.PacketsCompleted != int64(cfg.NumLCs*cfg.PacketsPerLC) {
		t.Fatal("run incomplete without early recording")
	}
	// No W blocks are ever created, so nothing can park on one.
	for i, l := range res.PerLC {
		_ = i
		_ = l
	}
	base := run(t, testConfig(tbl))
	// Coalescing is the point of early recording: without it the FEs and
	// fabric carry duplicate work.
	if res.FabricMessages <= base.FabricMessages {
		t.Errorf("no-recording fabric traffic (%d) should exceed baseline (%d)",
			res.FabricMessages, base.FabricMessages)
	}
}

func TestFabricContention(t *testing.T) {
	tbl := rtable.Small(2000, 43)
	cfg := testConfig(tbl)
	cfg.FabricContention = true
	cfg.VerifyNextHops = true
	res := run(t, cfg)
	if res.PacketsCompleted != int64(cfg.NumLCs*cfg.PacketsPerLC) {
		t.Fatal("run incomplete under fabric contention")
	}
	base := run(t, testConfig(tbl))
	// Serialized delivery can only add latency, modulo tiny arbitration-
	// order noise from the changed interleaving; allow 2% slack.
	if res.MeanLookupCycles < base.MeanLookupCycles*0.98 {
		t.Errorf("contention (%.3f) should not beat unbounded delivery (%.3f)",
			res.MeanLookupCycles, base.MeanLookupCycles)
	}
}

func TestLoadFactorsSkewArrivals(t *testing.T) {
	tbl := rtable.Small(2000, 59)
	cfg := testConfig(tbl)
	cfg.NumLCs = 2
	cfg.PacketsPerLC = 2000
	cfg.LoadFactors = []float64{2.0, 0.5}
	cfg.VerifyNextHops = true
	res := run(t, cfg)
	if res.PacketsCompleted != 4000 {
		t.Fatalf("completed = %d", res.PacketsCompleted)
	}
	// Both LCs emit the same packet count, but LC 0 finishes generating
	// ~4x sooner, so its generation phase occupies a smaller share of the
	// run. Measure via the last arrival: unavailable directly, so check
	// the FE/request split instead — LC 0 experienced denser arrivals and
	// thus more contention, never fewer total packets.
	if res.PerLC[0].Generated != 2000 || res.PerLC[1].Generated != 2000 {
		t.Error("load factors must not change packet budgets")
	}
	// Validation errors.
	bad := testConfig(tbl)
	bad.LoadFactors = []float64{1.0} // wrong length
	if _, err := New(bad); err == nil {
		t.Error("length mismatch should fail")
	}
	bad = testConfig(tbl)
	bad.LoadFactors = make([]float64, bad.NumLCs) // zeros
	if _, err := New(bad); err == nil {
		t.Error("non-positive factors should fail")
	}
}

func TestConfigValidation(t *testing.T) {
	tbl := rtable.Small(100, 1)
	bad := []Config{
		{},
		{NumLCs: 0, Table: tbl},
		{NumLCs: 2, Table: nil, PacketsPerLC: 10, GapMin: 1, GapMax: 2, LookupCycles: 1},
		{NumLCs: 2, Table: tbl, PacketsPerLC: 0, GapMin: 1, GapMax: 2, LookupCycles: 1},
		{NumLCs: 2, Table: tbl, PacketsPerLC: 10, GapMin: 0, GapMax: 2, LookupCycles: 1},
		{NumLCs: 2, Table: tbl, PacketsPerLC: 10, GapMin: 3, GapMax: 2, LookupCycles: 1},
		{NumLCs: 2, Table: tbl, PacketsPerLC: 10, GapMin: 1, GapMax: 2, LookupCycles: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
}

func TestResultReport(t *testing.T) {
	tbl := rtable.Small(1000, 37)
	cfg := testConfig(tbl)
	cfg.PacketsPerLC = 500
	res := run(t, cfg)
	s := res.String()
	if s == "" {
		t.Error("empty report")
	}
	sizes := res.SortedPartitionSizes()
	if len(sizes) != 4 {
		t.Fatalf("partition sizes = %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] < sizes[i-1] {
			t.Error("sizes not sorted")
		}
	}
	if res.LatencyPercentile(0.5) != res.P50 {
		t.Error("LatencyPercentile mismatch")
	}
	if res.DerivedMppsPerLC <= 0 || res.OfferedMppsRouter <= 0 {
		t.Error("throughput figures missing")
	}
}

// OfferedLoad scales arrivals and AdmissionCap sheds the excess: the run
// terminates, shed+completed conserves the packet budget, admitted
// packets still verify against the oracle, and the report/snapshot carry
// the shed accounting.
func TestOverloadSheddingConservation(t *testing.T) {
	tbl := rtable.Small(3000, 9)
	cfg := testConfig(tbl)
	cfg.CacheEnabled = false // no hits: every packet queues for an FE
	cfg.OfferedLoad = 4
	cfg.AdmissionCap = 8
	cfg.VerifyNextHops = true
	res := run(t, cfg)

	total := int64(cfg.NumLCs * cfg.PacketsPerLC)
	if res.PacketsCompleted+res.Shed != total {
		t.Fatalf("completed %d + shed %d != offered %d", res.PacketsCompleted, res.Shed, total)
	}
	if res.Shed == 0 {
		t.Fatal("4x offered load with a tight admission cap shed nothing")
	}
	if res.PacketsCompleted == 0 {
		t.Fatal("admission control shed everything")
	}
	var perLC int64
	for i, l := range res.PerLC {
		perLC += l.Shed
		if l.Generated+l.Shed == 0 {
			t.Errorf("LC %d saw no arrivals at all", i)
		}
	}
	if perLC != res.Shed {
		t.Errorf("per-LC sheds sum to %d, router-wide %d", perLC, res.Shed)
	}
	want := float64(res.Shed) / float64(total)
	if res.ShedFraction != want {
		t.Errorf("ShedFraction = %v, want %v", res.ShedFraction, want)
	}
	if res.GoodputMppsRouter <= 0 {
		t.Errorf("goodput = %v", res.GoodputMppsRouter)
	}
	s := res.Snapshot()
	if got := s.Sum("spal_sim_shed_total"); int64(got) != res.Shed {
		t.Errorf("snapshot shed total %v, want %d", got, res.Shed)
	}
}

// The overload knobs default off: a config that never sets them behaves
// exactly like before (OfferedLoad treated as 1.0, nothing shed).
func TestOverloadKnobsDefaultOff(t *testing.T) {
	tbl := rtable.Small(2000, 3)
	a := run(t, testConfig(tbl))
	cfg := testConfig(tbl)
	cfg.OfferedLoad = 1.0
	b := run(t, cfg)
	if a.Cycles != b.Cycles || a.MeanLookupCycles != b.MeanLookupCycles {
		t.Errorf("OfferedLoad=1 diverged from default: cycles %d/%d", a.Cycles, b.Cycles)
	}
	if a.Shed != 0 || b.Shed != 0 {
		t.Errorf("shed without admission control: %d/%d", a.Shed, b.Shed)
	}
}
