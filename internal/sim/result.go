package sim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"spal/internal/metrics"
	"spal/internal/stats"
)

// LCStats summarizes one line card after a run.
type LCStats struct {
	Generated, Completed int64
	// Shed counts arrivals refused by AdmissionCap (0 when admission
	// control is off). Shed packets are not in Generated.
	Shed                       int64
	HitLoc, HitRem             int64
	MissLocal                  int64
	RequestsSent, RepliesSent  int64
	RequestsReceived, Reissued int64
	FELookups                  int64
	FEUtilization              float64
	CacheHitRate               float64
	PartitionSize              int
	// Queue occupancy: worst and mean depths of the FE request queue and
	// the fabric input queue, sampled per cycle.
	MaxFEQueue, MaxInputQueue   int64
	MeanFEQueue, MeanInputQueue float64
	// Waiting-list pressure from the LR-cache: packets parked on W
	// blocks and the deepest list one block accumulated.
	Parked, MaxWaitList int64
}

// Result carries everything the experiments report.
type Result struct {
	// MeanLookupCycles is the paper's headline metric: mean per-packet
	// lookup time in 5 ns cycles, from arrival-cycle probe to result.
	MeanLookupCycles float64
	// P50/P95/WorstLookupCycles summarize the latency distribution.
	P50, P95, WorstLookupCycles int
	// Cycles is the total simulated duration.
	Cycles int64
	// PacketsCompleted across all LCs.
	PacketsCompleted int64
	// DerivedMppsPerLC is the paper's throughput conversion: one packet
	// per MeanLookupCycles per LC, in millions of packets per second.
	DerivedMppsPerLC float64
	// DerivedMppsRouter is DerivedMppsPerLC x ψ (the ">336 million
	// packets per second" figure).
	DerivedMppsRouter float64
	// OfferedMppsRouter is the measured completion rate over the run.
	OfferedMppsRouter float64
	// Shed is the router-wide count of arrivals refused by AdmissionCap;
	// ShedFraction is Shed over all offered packets (completed + shed).
	Shed         int64
	ShedFraction float64
	// GoodputMppsRouter is the rate of packets that were admitted AND
	// completed with a verified next hop — under overload this is the
	// useful work, distinct from the offered rate.
	GoodputMppsRouter float64
	// HitRate is the aggregate LR-cache hit rate (0 when caches are off).
	HitRate float64
	// FabricMessages counts every request and reply crossed the fabric.
	FabricMessages int64
	// Route-churn accounting (UpdatesPerSecond > 0): update events
	// applied, targeted range invalidations issued across all caches,
	// and stale fills caught by the version guard.
	ChurnEvents, ChurnRangeInvalidations, ChurnStaleFills int64
	// State-integrity accounting (CorruptRate / ScrubEveryCycles > 0):
	// fills corrupted by the injector, scrub passes run, cache entries
	// the scrubber found disagreeing with the oracle and evicted, and
	// packets that completed with a wrong next hop (only counted when
	// VerifyNextHops is set; without corruption a wrong verdict panics
	// instead).
	CorruptionsInjected, ScrubCycles, ScrubMismatches, ScrubRepairs, WrongVerdicts int64
	// Brownout accounting (SlowFactor > 1): fabric messages that paid
	// the slow-link penalty, the penalty in cycles, and the latency skew
	// the brownout created — mean lookup time of packets homed at the
	// slow LC against the mean over everything else. The skew ratio is
	// the exposure the concurrent router's hedging plane removes.
	SlowDelayedMessages int64
	SlowExtraCycles     int64
	SlowHomeMeanCycles  float64
	CleanHomeMeanCycles float64
	// PerLC holds per-line-card breakdowns.
	PerLC []LCStats
	// Samples is the latency time series (SampleWindowCycles > 0): the
	// warmup/flush-recovery curve.
	Samples []WindowSample
	// Stages is the per-stage latency breakdown (StageAccounting only).
	Stages []StageStats

	cfg Config
	lat *stats.Hist
}

// result assembles the Result after the run loop finishes.
func (r *Router) result() *Result {
	res := &Result{
		MeanLookupCycles:  r.lat.Mean(),
		P50:               r.lat.Percentile(0.50),
		P95:               r.lat.Percentile(0.95),
		WorstLookupCycles: r.lat.Percentile(1.0),
		Cycles:            r.now,
		PacketsCompleted:  r.completed,
		FabricMessages:    r.pipe.Sent(),
		Samples:           r.samples,
		Stages:            r.stageBreakdown(),
		cfg:               r.cfg,
		lat:               r.lat,
	}
	res.ChurnEvents = r.churnEvents
	res.ChurnRangeInvalidations = r.churnRangeInv
	res.ChurnStaleFills = r.churnStaleFills
	res.CorruptionsInjected = r.corruptions
	res.ScrubCycles = r.scrubCycles
	res.ScrubMismatches = r.scrubMismatches
	res.ScrubRepairs = r.scrubRepairs
	res.WrongVerdicts = r.wrongVerdicts
	if r.slowExtra > 0 {
		res.SlowDelayedMessages = r.slowDelayed
		res.SlowExtraCycles = r.slowExtra
		var slowSum, slowN, cleanSum, cleanN int64
		for i := range r.packets {
			p := &r.packets[i]
			if p.completeCycle < 0 {
				continue
			}
			lat := p.completeCycle - p.arrivalCycle + 1
			if int(p.homeLC) == r.cfg.SlowLC {
				slowSum, slowN = slowSum+lat, slowN+1
			} else {
				cleanSum, cleanN = cleanSum+lat, cleanN+1
			}
		}
		if slowN > 0 {
			res.SlowHomeMeanCycles = float64(slowSum) / float64(slowN)
		}
		if cleanN > 0 {
			res.CleanHomeMeanCycles = float64(cleanSum) / float64(cleanN)
		}
	}
	if res.MeanLookupCycles > 0 {
		res.DerivedMppsPerLC = 1e3 / (res.MeanLookupCycles * r.cfg.CycleNS)
		res.DerivedMppsRouter = res.DerivedMppsPerLC * float64(r.cfg.NumLCs)
	}
	if r.now > 0 {
		res.OfferedMppsRouter = float64(r.completed) / (float64(r.now) * r.cfg.CycleNS * 1e-9) / 1e6
		res.GoodputMppsRouter = res.OfferedMppsRouter
	}
	res.Shed = r.shed
	if r.completed+r.shed > 0 {
		res.ShedFraction = float64(r.shed) / float64(r.completed+r.shed)
	}
	var probes, hits int64
	for _, l := range r.lcs {
		ls := LCStats{
			Generated:        l.counters.Value("generated"),
			Completed:        l.counters.Value("completed"),
			Shed:             l.counters.Value("shed"),
			HitLoc:           l.counters.Value("hit.loc"),
			HitRem:           l.counters.Value("hit.rem"),
			MissLocal:        l.counters.Value("miss.local"),
			RequestsSent:     l.counters.Value("request.sent"),
			RepliesSent:      l.counters.Value("reply.sent"),
			RequestsReceived: l.counters.Value("request.received"),
			Reissued:         l.counters.Value("reissued"),
			FELookups:        l.counters.Value("fe.lookups"),
			PartitionSize:    -1,
		}
		if r.now > 0 {
			ls.FEUtilization = float64(l.feBusyCy) / float64(r.now)
			ls.MeanFEQueue = float64(l.sumFEQ) / float64(r.now)
			ls.MeanInputQueue = float64(l.sumInputQ) / float64(r.now)
		}
		ls.MaxFEQueue = l.maxFEQ
		ls.MaxInputQueue = l.maxInputQ
		if l.cache != nil {
			cs := l.cache.Stats()
			ls.CacheHitRate = cs.HitRate()
			ls.Parked = cs.Parked
			ls.MaxWaitList = cs.MaxWaitList
			probes += cs.Probes
			hits += cs.Hits + cs.HitVictims
		}
		if r.part != nil {
			ls.PartitionSize = r.part.Table(l.id).Len()
		}
		res.PerLC = append(res.PerLC, ls)
	}
	if probes > 0 {
		res.HitRate = float64(hits) / float64(probes)
	}
	return res
}

// LatencyPercentile exposes the full distribution (p in 0..1).
func (res *Result) LatencyPercentile(p float64) int { return res.lat.Percentile(p) }

// Snapshot exposes the run's cycle counters through the shared
// observability vocabulary: the same Snapshot type the concurrent
// router's Metrics returns, so simulator output feeds the same
// Prometheus export path and Delta tooling. Per-LC counters carry a
// lc="<id>" label; the lookup-latency distribution is re-bucketed from
// exact unit bins (5 ns cycles) into the power-of-two histogram shape.
func (res *Result) Snapshot() *metrics.Snapshot {
	s := metrics.NewSnapshot()
	s.Counter("spal_sim_cycles_total", "Simulated cycles (5 ns each).", float64(res.Cycles))
	s.Counter("spal_sim_packets_completed_total", "Packets that completed lookup.", float64(res.PacketsCompleted))
	s.Counter("spal_sim_fabric_messages_total", "Requests and replies crossed the fabric.", float64(res.FabricMessages))
	s.Gauge("spal_sim_mean_lookup_cycles", "Mean per-packet lookup time in cycles.", res.MeanLookupCycles)
	s.Gauge("spal_sim_cache_hit_ratio", "Aggregate LR-cache hit rate.", res.HitRate)
	s.Gauge("spal_sim_derived_mpps_router", "Derived router throughput (Mpps).", res.DerivedMppsRouter)
	if res.cfg.AdmissionCap > 0 {
		s.Gauge("spal_sim_shed_fraction", "Shed packets over all offered packets.", res.ShedFraction)
		s.Gauge("spal_sim_goodput_mpps_router", "Completion rate of admitted packets (Mpps).", res.GoodputMppsRouter)
	}
	if res.cfg.UpdatesPerSecond > 0 {
		s.Counter("spal_sim_update_events_total", "Route-update events applied during the run.", float64(res.ChurnEvents))
		s.Counter("spal_sim_range_invalidations_total", "Targeted cache range invalidations from churn.", float64(res.ChurnRangeInvalidations))
		s.Counter("spal_sim_stale_fills_total", "Stale fills point-invalidated by the version guard.", float64(res.ChurnStaleFills))
	}
	if res.cfg.CorruptRate > 0 || res.cfg.ScrubEveryCycles > 0 {
		s.Counter("spal_sim_corruptions_injected_total", "Cache fills corrupted by the injector.", float64(res.CorruptionsInjected))
		s.Counter("spal_sim_scrub_cycles_total", "Full-cache scrub passes run.", float64(res.ScrubCycles))
		s.Counter("spal_sim_scrub_mismatches_total", "Cache entries the scrubber found disagreeing with the oracle.", float64(res.ScrubMismatches))
		s.Counter("spal_sim_scrub_repairs_total", "Mismatched cache entries evicted by the scrubber.", float64(res.ScrubRepairs))
		s.Counter("spal_sim_wrong_verdicts_total", "Packets completed with a next hop the oracle rejects.", float64(res.WrongVerdicts))
	}
	if res.cfg.SlowFactor > 1 {
		s.Counter("spal_sim_slow_messages_total", "Fabric messages that paid the brownout penalty.", float64(res.SlowDelayedMessages))
		s.Gauge("spal_sim_slow_home_mean_cycles", "Mean lookup time of packets homed at the slow LC.", res.SlowHomeMeanCycles)
		s.Gauge("spal_sim_clean_home_mean_cycles", "Mean lookup time of packets homed elsewhere.", res.CleanHomeMeanCycles)
	}
	for i, l := range res.PerLC {
		lbl := metrics.L("lc", strconv.Itoa(i))
		s.Counter("spal_sim_generated_total", "Packets generated at this LC.", float64(l.Generated), lbl)
		s.Counter("spal_sim_completed_total", "Packets completed at this LC.", float64(l.Completed), lbl)
		if res.cfg.AdmissionCap > 0 {
			s.Counter("spal_sim_shed_total", "Arrivals refused by admission control at this LC.", float64(l.Shed), lbl)
		}
		s.Counter("spal_sim_hits_total", "LR-cache hits by origin class.", float64(l.HitLoc), lbl, metrics.L("origin", "loc"))
		s.Counter("spal_sim_hits_total", "LR-cache hits by origin class.", float64(l.HitRem), lbl, metrics.L("origin", "rem"))
		s.Counter("spal_sim_fe_lookups_total", "Forwarding-engine lookups at this LC.", float64(l.FELookups), lbl)
		s.Counter("spal_sim_fabric_requests_total", "Requests this LC sent over the fabric.", float64(l.RequestsSent), lbl)
		s.Counter("spal_sim_fabric_replies_total", "Replies this LC sent over the fabric.", float64(l.RepliesSent), lbl)
		s.Gauge("spal_sim_fe_utilization", "Fraction of cycles the FE was busy.", l.FEUtilization, lbl)
		s.Gauge("spal_sim_partition_prefixes", "ROT-partition size in prefixes.", float64(l.PartitionSize), lbl)
	}
	if res.lat != nil {
		var h metrics.HistogramSnapshot
		res.lat.Each(func(v int, c int64) { h.AddValue(uint64(v), uint64(c)) })
		s.Hist("spal_sim_lookup_latency_cycles", "Per-packet lookup latency in cycles.", h)
	}
	return s
}

// String renders a one-run report.
func (res *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "psi=%d lookup=%dcy cache=%v(beta=%d gamma=%d%%) partition=%v trace=%s\n",
		res.cfg.NumLCs, res.cfg.LookupCycles, res.cfg.CacheEnabled,
		res.cfg.Cache.Blocks, res.cfg.Cache.MixPercent, res.cfg.PartitionEnabled, res.cfg.Trace)
	fmt.Fprintf(&b, "  mean lookup = %.2f cycles (p50=%d p95=%d worst=%d)\n",
		res.MeanLookupCycles, res.P50, res.P95, res.WorstLookupCycles)
	fmt.Fprintf(&b, "  derived throughput = %.1f Mpps/LC, %.1f Mpps/router\n",
		res.DerivedMppsPerLC, res.DerivedMppsRouter)
	fmt.Fprintf(&b, "  cache hit rate = %.4f, fabric messages = %d, cycles = %d\n",
		res.HitRate, res.FabricMessages, res.Cycles)
	if res.cfg.AdmissionCap > 0 || res.Shed > 0 {
		fmt.Fprintf(&b, "  offered load = %.2fx, shed = %d (%.2f%%), goodput = %.1f Mpps/router\n",
			res.cfg.OfferedLoad, res.Shed, res.ShedFraction*100, res.GoodputMppsRouter)
	}
	if res.ChurnEvents > 0 {
		fmt.Fprintf(&b, "  churn = %d updates (%.0f/s), %d range invalidations, %d stale fills guarded\n",
			res.ChurnEvents, res.cfg.UpdatesPerSecond, res.ChurnRangeInvalidations, res.ChurnStaleFills)
	}
	if res.cfg.CorruptRate > 0 || res.cfg.ScrubEveryCycles > 0 {
		fmt.Fprintf(&b, "  integrity = %d fills corrupted, %d scrubs found %d mismatches (%d evicted), %d wrong verdicts served\n",
			res.CorruptionsInjected, res.ScrubCycles, res.ScrubMismatches, res.ScrubRepairs, res.WrongVerdicts)
	}
	if res.cfg.SlowFactor > 1 {
		skew := 0.0
		if res.CleanHomeMeanCycles > 0 {
			skew = res.SlowHomeMeanCycles / res.CleanHomeMeanCycles
		}
		fmt.Fprintf(&b, "  brownout = LC %d at %.1fx fabric latency (+%d cycles/msg), %d messages delayed, home-LC mean %.1f vs %.1f cycles (%.2fx skew)\n",
			res.cfg.SlowLC, res.cfg.SlowFactor, res.SlowExtraCycles, res.SlowDelayedMessages,
			res.SlowHomeMeanCycles, res.CleanHomeMeanCycles, skew)
	}
	return b.String()
}

// SortedPartitionSizes returns partition sizes ascending (report helper).
func (res *Result) SortedPartitionSizes() []int {
	out := make([]int, 0, len(res.PerLC))
	for _, l := range res.PerLC {
		if l.PartitionSize >= 0 {
			out = append(out, l.PartitionSize)
		}
	}
	sort.Ints(out)
	return out
}
