package sim

// fifo is an amortized O(1) queue used for every Fig. 2 queue (input,
// request, outgoing, incoming and the local arrival queue).
type fifo[T any] struct {
	items []T
	head  int
}

func (q *fifo[T]) push(v T) { q.items = append(q.items, v) }

func (q *fifo[T]) pop() (T, bool) {
	var zero T
	if q.head >= len(q.items) {
		return zero, false
	}
	v := q.items[q.head]
	q.items[q.head] = zero // release references
	q.head++
	if q.head > 1024 && q.head*2 > len(q.items) {
		q.items = append(q.items[:0], q.items[q.head:]...)
		q.head = 0
	}
	return v, true
}

func (q *fifo[T]) len() int { return len(q.items) - q.head }
