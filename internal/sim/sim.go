package sim

import (
	"fmt"
	"math"

	"spal/internal/cache"
	"spal/internal/fabric"
	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/partition"
	"spal/internal/rtable"
	"spal/internal/stats"
	"spal/internal/trace"
)

// packet tracks one packet header through the router.
type packet struct {
	addr          ip.Addr
	arrivalLC     int32
	homeLC        int32
	arrivalCycle  int64
	completeCycle int64 // -1 while pending
	nextHop       rtable.NextHop
	// valueVersion is the table version the packet's next hop was
	// computed against (stamped when its FE lookup starts). Under route
	// churn it drives the stale-fill guard and exact verification; it
	// stays 0 when churn is off.
	valueVersion int32
}

// feJob is a lookup in flight at a forwarding engine.
type feJob struct {
	packetID int64
	addr     ip.Addr
	nextHop  rtable.NextHop
	ok       bool
	doneAt   int64
}

// lineCard is the per-LC state of Fig. 2.
type lineCard struct {
	id     int
	cache  *cache.Cache // nil when caches are disabled
	engine lpm.Engine
	src    trace.Source
	rng    *stats.RNG

	nextArrival int64
	toGenerate  int

	localQ fifo[int64]          // freshly arrived local packets
	inputQ fifo[int64]          // remote requests received over the fabric
	replyQ fifo[fabric.Message] // replies received over the fabric
	outQ   fifo[fabric.Message] // messages awaiting fabric injection
	deliQ  fifo[fabric.Message] // fabric arrivals awaiting the output port
	// (used only under FabricContention)

	feQ      fifo[int64]
	feActive feJob
	feBusy   bool
	feBusyCy int64 // cycles the FE spent busy (utilization)

	loadFactor float64 // ingress rate multiplier (1.0 = nominal)

	// Queue-occupancy accounting, sampled once per cycle.
	maxFEQ, sumFEQ       int64
	maxInputQ, sumInputQ int64

	counters *stats.Set
}

// drawGap samples one inter-arrival gap, scaled by the LC's load factor.
func (l *lineCard) drawGap(gmin, gmax int) int64 {
	g := float64(l.rng.Range(gmin, gmax))
	if l.loadFactor != 1.0 {
		g /= l.loadFactor
	}
	if g < 1 {
		g = 1
	}
	return int64(g)
}

// sampleQueues records per-cycle queue depths for the occupancy report.
func (l *lineCard) sampleQueues() {
	fq, iq := int64(l.feQ.len()), int64(l.inputQ.len())
	if fq > l.maxFEQ {
		l.maxFEQ = fq
	}
	if iq > l.maxInputQ {
		l.maxInputQ = iq
	}
	l.sumFEQ += fq
	l.sumInputQ += iq
}

// Router is one simulation instance. Build with New, run with Run.
type Router struct {
	cfg  Config
	part *partition.Partitioning
	lcs  []*lineCard
	pipe *fabric.Pipe
	pool *trace.Pool
	// refs is the table-version history for VerifyNextHops: refs[v] is
	// the reference oracle of version v. Without churn it holds one
	// entry; nil when verification is off.
	refs []*lpm.Reference

	// Route churn (UpdatesPerSecond > 0): the pre-generated update
	// stream, the cursor into it, the evolving table, and the current
	// version number (incremented per applied batch even when
	// verification is off, to drive the stale-fill guard).
	updates    []rtable.Update
	nextUpdate int
	curTable   *rtable.Table
	version    int32

	churnEvents, churnRangeInv, churnStaleFills int64

	// State-integrity plane (see integrity.go): the corruption draw
	// stream, the per-version scrub oracle, and the run counters.
	corruptRNG   *stats.RNG
	scrubAuth    *lpm.Reference
	scrubAuthVer int32

	corruptions, scrubCycles, scrubMismatches, scrubRepairs, wrongVerdicts int64

	// Brownout model (SlowFactor > 1): the extra fabric cycles each
	// message touching SlowLC pays, and how many messages paid it.
	slowExtra   int64
	slowDelayed int64

	packets   []packet
	stages    []stageStamp // parallel to packets; nil unless StageAccounting
	completed int64
	shed      int64 // packets refused at arrival by AdmissionCap
	lat       *stats.Hist
	now       int64

	// Windowed time series (SampleWindowCycles > 0).
	winSum, winN int64
	samples      []WindowSample
}

// WindowSample is one point of the latency time series.
type WindowSample struct {
	EndCycle  int64
	Completed int64
	MeanCy    float64
}

// rollWindow closes the current sampling window if the cycle counter has
// crossed its boundary.
func (r *Router) rollWindow() {
	w := r.cfg.SampleWindowCycles
	if w <= 0 || r.now == 0 || r.now%w != 0 {
		return
	}
	s := WindowSample{EndCycle: r.now, Completed: r.winN}
	if r.winN > 0 {
		s.MeanCy = float64(r.winSum) / float64(r.winN)
	}
	r.samples = append(r.samples, s)
	r.winSum, r.winN = 0, 0
}

// New builds a router per cfg (partitioning the table, constructing
// engines, caches and trace streams).
func New(cfg Config) (*Router, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	r := &Router{
		cfg:  cfg,
		pipe: fabric.NewPipe(cfg.FabricLatency),
		lat:  stats.NewHist(4096),
	}
	if cfg.PartitionEnabled {
		r.part = partition.Partition(cfg.Table, cfg.NumLCs)
	}
	if cfg.VerifyNextHops {
		r.refs = []*lpm.Reference{lpm.NewReference(cfg.Table)}
	}
	r.curTable = cfg.Table
	if cfg.CorruptRate > 0 {
		r.corruptRNG = stats.NewRNG(cfg.CorruptSeed)
	}
	if cfg.UpdatesPerSecond > 0 {
		// The stream covers the packet-generation horizon; updates that
		// would land after the last arrival change nothing observable.
		horizon := int64(cfg.PacketsPerLC) * int64(cfg.GapMax)
		r.updates = rtable.GenerateUpdates(cfg.Table, rtable.UpdateStreamConfig{
			RatePerSecond: cfg.UpdatesPerSecond,
			CycleNS:       cfg.CycleNS,
			Duration:      horizon,
			WithdrawProb:  cfg.UpdateWithdrawProb,
			NewPrefixProb: cfg.UpdateNewPrefixProb,
			Seed:          cfg.Seed ^ 0xc1124,
		})
	}
	if cfg.SlowFactor > 1 {
		r.slowExtra = int64((cfg.SlowFactor - 1) * float64(cfg.FabricLatency))
		if r.slowExtra < 1 {
			r.slowExtra = 1 // a brownout must be observable even on a 1-cycle fabric
		}
	}
	r.pool = trace.NewPool(cfg.Table, cfg.TraceConfig)
	root := stats.NewRNG(cfg.Seed ^ 0x5e3d)
	r.packets = make([]packet, 0, cfg.NumLCs*cfg.PacketsPerLC)
	for i := 0; i < cfg.NumLCs; i++ {
		tbl := cfg.Table
		if r.part != nil {
			tbl = r.part.Table(i)
		}
		l := &lineCard{
			id:         i,
			engine:     cfg.Engine(tbl),
			src:        trace.NewSynthetic(r.pool, cfg.TraceConfig, uint64(i)),
			rng:        root.Fork(uint64(i)),
			toGenerate: cfg.PacketsPerLC,
			counters:   stats.NewSet(),
		}
		if cfg.CacheEnabled {
			cc := cfg.Cache
			cc.Seed = cfg.Seed + uint64(i)*977
			l.cache = cache.New(cc)
		}
		l.loadFactor = 1.0
		if cfg.LoadFactors != nil {
			l.loadFactor = cfg.LoadFactors[i]
		}
		l.loadFactor *= cfg.OfferedLoad
		l.nextArrival = l.drawGap(cfg.GapMin, cfg.GapMax)
		r.lcs = append(r.lcs, l)
	}
	return r, nil
}

// homeOf returns the home LC of an address under the run's mode.
func (r *Router) homeOf(a ip.Addr, arrival int) int {
	if r.part == nil {
		return arrival // no partitioning: every lookup is local
	}
	return r.part.HomeLC(a)
}

// Run executes the simulation to completion and returns the results.
func (r *Router) Run() (*Result, error) {
	total := int64(r.cfg.NumLCs * r.cfg.PacketsPerLC)
	for r.completed+r.shed < total {
		if r.now > r.cfg.MaxCycles {
			return nil, fmt.Errorf("sim: exceeded MaxCycles=%d with %d/%d packets done",
				r.cfg.MaxCycles, r.completed+r.shed, total)
		}
		r.step()
		r.now++
		r.rollWindow()
	}
	return r.result(), nil
}

// step advances one cycle for the whole router.
func (r *Router) step() {
	now := r.now

	// 1. Fabric deliveries land in the destination queues. Under
	// FabricContention each LC's output port admits one message per
	// cycle; otherwise arrivals demux immediately.
	route := func(m fabric.Message) {
		dst := r.lcs[m.Dst]
		switch m.Kind {
		case fabric.Request:
			dst.inputQ.push(m.PacketID)
		default:
			dst.replyQ.push(m)
		}
	}
	if r.cfg.FabricContention {
		for _, m := range r.pipe.Deliver(now) {
			r.lcs[m.Dst].deliQ.push(m)
		}
		for _, l := range r.lcs {
			if m, ok := l.deliQ.pop(); ok {
				route(m)
			}
		}
	} else {
		for _, m := range r.pipe.Deliver(now) {
			route(m)
		}
	}

	// 2. Periodic cache flush (route-update model).
	if r.cfg.FlushEveryCycles > 0 && now > 0 && now%r.cfg.FlushEveryCycles == 0 {
		r.flushAll()
	}

	// 2b. Route churn: apply every update event due this cycle.
	if r.nextUpdate < len(r.updates) {
		r.applyChurn(now)
	}

	// 2c. Online integrity scrub: audit every LR-cache against the
	// current oracle, evicting corrupted entries (see integrity.go).
	if r.cfg.ScrubEveryCycles > 0 && now > 0 && now%r.cfg.ScrubEveryCycles == 0 {
		r.scrubAll()
	}

	for _, l := range r.lcs {
		// 3. Packet arrivals. Under admission control a packet that finds
		// the arrival queue at its cap is shed on the spot: counted, never
		// enqueued, never completed — so everything that IS admitted still
		// resolves to a verified next hop.
		for l.toGenerate > 0 && l.nextArrival <= now {
			a, _ := l.src.Next()
			if r.cfg.AdmissionCap > 0 && l.localQ.len() >= r.cfg.AdmissionCap {
				l.counters.Get("shed").Inc()
				r.shed++
				l.toGenerate--
				l.nextArrival = now + l.drawGap(r.cfg.GapMin, r.cfg.GapMax)
				continue
			}
			id := int64(len(r.packets))
			r.packets = append(r.packets, packet{
				addr:          a,
				arrivalLC:     int32(l.id),
				homeLC:        int32(r.homeOf(a, l.id)),
				arrivalCycle:  now,
				completeCycle: -1,
			})
			if r.cfg.StageAccounting {
				r.stages = append(r.stages, stageStamp{probe: -1, reqSend: -1, reqRecv: -1, feStart: -1, feDone: -1})
			}
			l.localQ.push(id)
			l.counters.Get("generated").Inc()
			l.toGenerate--
			l.nextArrival = now + l.drawGap(r.cfg.GapMin, r.cfg.GapMax)
		}

		// 4. Forwarding engine: finish, then possibly start the next job.
		if l.feBusy {
			l.feBusyCy++
		}
		if l.feBusy && now >= l.feActive.doneAt {
			r.finishFE(l)
		}
		if !l.feBusy {
			if id, ok := l.feQ.pop(); ok {
				r.startFE(l, id)
			}
		}

		// 5. The single cache port: replies first, then remote requests,
		// then fresh local packets.
		r.cachePortAction(l)

		// 6. Occupancy sampling for the queue report.
		l.sampleQueues()
	}

	// 7. Fabric injection: one message per LC per cycle. A browned-out
	// LC (SlowFactor > 1) degrades every directed link touching it —
	// both the requests it receives and the replies it sends — so the
	// slowdown is asymmetric per flow but symmetric per card, matching
	// the router's SlowLC injector.
	for _, l := range r.lcs {
		if m, ok := l.outQ.pop(); ok {
			var extra int64
			if r.slowExtra > 0 && (m.Src == r.cfg.SlowLC || m.Dst == r.cfg.SlowLC) {
				extra = r.slowExtra
				r.slowDelayed++
			}
			r.pipe.SendDelayed(now, extra, m)
			l.counters.Get("fabric.sent").Inc()
		}
	}
}

// startFE begins a lookup: the result and its cost are computed up front,
// the completion is scheduled LookupCycles (or the dynamic cost) later.
func (r *Router) startFE(l *lineCard, id int64) {
	p := &r.packets[id]
	nh, accesses, ok := l.engine.Lookup(p.addr)
	cycles := int64(r.cfg.LookupCycles)
	if r.cfg.DynamicLookup {
		cycles = int64(math.Ceil((float64(accesses)*r.cfg.MemAccessNS + r.cfg.ExecNS) / r.cfg.CycleNS))
		if cycles < 1 {
			cycles = 1
		}
	}
	r.stamp(id, stFEStart)
	p.valueVersion = r.version // the value is bound to the table as of now
	l.feActive = feJob{packetID: id, addr: p.addr, nextHop: nh, ok: ok, doneAt: r.now + cycles}
	if !ok {
		l.feActive.nextHop = rtable.NoNextHop
	}
	l.feBusy = true
	l.counters.Get("fe.lookups").Inc()
}

// finishFE completes the active lookup: fill the LR-cache as LOC, then
// resolve the originator and every parked packet. Under churn a value
// computed against an older table version is still delivered (in-window
// semantics) but immediately point-invalidated so it never serves a later
// probe — the simulator analogue of the router's stale-generation guard.
func (r *Router) finishFE(l *lineCard) {
	job := l.feActive
	l.feBusy = false
	r.stamp(job.packetID, stFEDone)
	v := r.packets[job.packetID].valueVersion
	nh := job.nextHop
	var waiters []int64
	if l.cache != nil {
		nh = r.maybeCorrupt(nh)
		waiters = l.cache.Fill(job.addr, nh, cache.LOC)
		if v < r.version {
			l.cache.InvalidateRange(job.addr, job.addr)
			r.churnStaleFills++
		}
	}
	r.resolveAll(l, job.packetID, waiters, nh, v)
}

// handleReply processes a fabric reply at the arrival LC: fill as REM,
// release the parked packets.
func (r *Router) handleReply(l *lineCard, m fabric.Message) {
	v := r.packets[m.PacketID].valueVersion
	nh := m.NextHop
	var waiters []int64
	if l.cache != nil {
		nh = r.maybeCorrupt(nh)
		waiters = l.cache.Fill(m.Addr, nh, cache.REM)
		if v < r.version {
			l.cache.InvalidateRange(m.Addr, m.Addr)
			r.churnStaleFills++
		}
	}
	l.counters.Get("reply.received").Inc()
	r.resolveAll(l, m.PacketID, waiters, nh, v)
}

// resolveAll routes a lookup result to the originating packet and all
// waiters, exactly once each: local packets complete, remote requests get
// a reply toward their arrival LC. v is the table version the value was
// computed against.
func (r *Router) resolveAll(l *lineCard, origin int64, waiters []int64, nh rtable.NextHop, v int32) {
	seen := false
	for _, id := range waiters {
		if id == origin {
			seen = true
		}
		r.resolve(l, id, nh, v)
	}
	if !seen {
		r.resolve(l, origin, nh, v)
	}
}

func (r *Router) resolve(l *lineCard, id int64, nh rtable.NextHop, v int32) {
	p := &r.packets[id]
	p.valueVersion = v
	if int(p.arrivalLC) == l.id {
		r.complete(l, id, nh, v)
		return
	}
	// A remote request parked at the home LC: answer its arrival LC.
	l.outQ.push(fabric.Message{
		Kind:     fabric.Reply,
		Src:      l.id,
		Dst:      int(p.arrivalLC),
		PacketID: id,
		Addr:     p.addr,
		NextHop:  nh,
	})
	l.counters.Get("reply.sent").Inc()
}

// complete finalizes a packet at its arrival LC; duplicate resolutions
// (possible after a flush reissues an in-flight packet) are ignored.
// Verification is exact even under churn: the served next hop must equal
// the oracle of the table version the value was computed against.
func (r *Router) complete(l *lineCard, id int64, nh rtable.NextHop, v int32) {
	p := &r.packets[id]
	if p.completeCycle >= 0 {
		return
	}
	p.completeCycle = r.now
	p.nextHop = nh
	r.completed++
	l.counters.Get("completed").Inc()
	latency := p.completeCycle - p.arrivalCycle + 1
	r.lat.Add(int(latency))
	r.winSum += latency
	r.winN++
	if r.refs != nil {
		wantNH, _, wantOK := r.refs[v].Lookup(p.addr)
		if wantOK && nh != wantNH || !wantOK && nh != rtable.NoNextHop {
			// With the corruption injector on, wrong verdicts are the
			// phenomenon under measurement, not a simulator bug.
			if r.cfg.CorruptRate > 0 {
				r.wrongVerdicts++
				return
			}
			panic(fmt.Sprintf("sim: packet %d addr %s completed with nh=%d, version-%d oracle says (%d,%v)",
				id, ip.FormatAddr(p.addr), nh, v, wantNH, wantOK))
		}
	}
}

// cachePortAction performs the cycle's single LR-cache access for LC l.
func (r *Router) cachePortAction(l *lineCard) {
	if m, ok := l.replyQ.pop(); ok {
		r.handleReply(l, m)
		return
	}
	if id, ok := l.inputQ.pop(); ok {
		r.probeRemoteRequest(l, id)
		return
	}
	if id, ok := l.localQ.pop(); ok {
		r.probeLocal(l, id)
		return
	}
}

// probeLocal handles a freshly arrived packet at its arrival LC.
func (r *Router) probeLocal(l *lineCard, id int64) {
	p := &r.packets[id]
	r.stamp(id, stProbe)
	if l.cache == nil {
		r.dispatchMiss(l, id)
		return
	}
	res := l.cache.Probe(p.addr)
	switch res.Kind {
	case cache.Hit, cache.HitVictim:
		if res.Origin == cache.LOC {
			l.counters.Get("hit.loc").Inc()
		} else {
			l.counters.Get("hit.rem").Inc()
		}
		// A live (non-waiting) entry always matches the current table:
		// churn invalidates every affected range and stale fills are
		// point-invalidated, so hits verify against the current version.
		r.complete(l, id, res.NextHop, r.version)
	case cache.HitWaiting:
		l.cache.AddWaiter(p.addr, id)
		l.counters.Get("parked").Inc()
	default: // Miss
		if !r.cfg.DisableEarlyRecording {
			origin := cache.REM
			if int(p.homeLC) == l.id {
				origin = cache.LOC
			}
			l.cache.RecordMiss(p.addr, origin, id)
		}
		l.counters.Get("miss.local").Inc()
		r.dispatchMiss(l, id)
	}
}

// dispatchMiss sends a missed packet to its lookup site: the local FE when
// this LC is home, otherwise a fabric request to the home LC.
func (r *Router) dispatchMiss(l *lineCard, id int64) {
	p := &r.packets[id]
	if int(p.homeLC) == l.id {
		l.feQ.push(id)
		return
	}
	r.stamp(id, stReqSend)
	l.outQ.push(fabric.Message{
		Kind:     fabric.Request,
		Src:      l.id,
		Dst:      int(p.homeLC),
		PacketID: id,
		Addr:     p.addr,
	})
	l.counters.Get("request.sent").Inc()
}

// probeRemoteRequest handles a request received from another LC at the
// home LC.
func (r *Router) probeRemoteRequest(l *lineCard, id int64) {
	p := &r.packets[id]
	r.stamp(id, stReqRecv)
	l.counters.Get("request.received").Inc()
	if l.cache == nil {
		l.feQ.push(id)
		return
	}
	res := l.cache.Probe(p.addr)
	switch res.Kind {
	case cache.Hit, cache.HitVictim:
		l.counters.Get("hit.remote-request").Inc()
		r.resolve(l, id, res.NextHop, r.version)
	case cache.HitWaiting:
		l.cache.AddWaiter(p.addr, id)
		l.counters.Get("parked").Inc()
	default:
		if !r.cfg.DisableEarlyRecording {
			l.cache.RecordMiss(p.addr, cache.LOC, id)
		}
		l.counters.Get("miss.remote-request").Inc()
		l.feQ.push(id)
	}
}

// applyChurn applies every pending route update scheduled at or before
// now: the evolving table and the ROT-partitioning advance (control bits
// are preserved, so home-LC assignments of in-flight requests stay
// valid), engines update in place when dynamic, and the LR-caches see
// either targeted range invalidation or — under UpdateFullFlush — a full
// flush.
func (r *Router) applyChurn(now int64) {
	start := r.nextUpdate
	for r.nextUpdate < len(r.updates) && r.updates[r.nextUpdate].AtCycle <= now {
		r.nextUpdate++
	}
	if r.nextUpdate == start {
		return
	}
	batch := r.updates[start:r.nextUpdate]
	next := r.curTable.ApplyAll(batch)
	if next.Len() == 0 {
		return // never let churn empty the table; drop the batch
	}
	r.curTable = next
	r.churnEvents += int64(len(batch))
	if r.part != nil {
		np, sub := r.part.ApplyUpdates(batch)
		r.part = np
		for i, l := range r.lcs {
			if len(sub[i]) > 0 {
				r.updateEngine(l, sub[i], np.Table(i))
			}
		}
	} else {
		for _, l := range r.lcs {
			r.updateEngine(l, batch, next)
		}
	}
	r.version++
	if r.refs != nil {
		r.refs = append(r.refs, lpm.NewReference(next))
	}
	if r.cfg.UpdateFullFlush {
		r.flushAll()
		return
	}
	for _, rg := range rtable.UpdateRanges(batch) {
		for _, l := range r.lcs {
			if l.cache != nil {
				l.cache.InvalidateRange(rg.Lo, rg.Hi)
				r.churnRangeInv++
			}
		}
	}
}

// updateEngine absorbs a sub-batch into one LC's matching structure:
// in place for dynamic engines, by rebuild from the LC's new partition
// otherwise.
func (r *Router) updateEngine(l *lineCard, batch []rtable.Update, tbl *rtable.Table) {
	if de, ok := l.engine.(lpm.DynamicEngine); ok {
		for _, u := range batch {
			if u.Kind == rtable.Withdraw {
				de.Delete(u.Route.Prefix)
			} else {
				de.Insert(u.Route.Prefix, u.Route.NextHop)
			}
		}
		return
	}
	l.engine = r.cfg.Engine(tbl)
}

// flushAll invalidates every LR-cache and reissues the orphaned waiters
// through their original paths.
func (r *Router) flushAll() {
	for _, l := range r.lcs {
		if l.cache == nil {
			continue
		}
		for _, id := range l.cache.Flush() {
			p := &r.packets[id]
			if p.completeCycle >= 0 {
				continue
			}
			if int(p.arrivalLC) == l.id {
				l.localQ.push(id)
			} else {
				l.inputQ.push(id)
			}
			l.counters.Get("reissued").Inc()
		}
	}
}
