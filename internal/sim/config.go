// Package sim is the trace-driven cycle simulator of Sec. 5: a router of
// ψ line cards, each with the Fig. 2 pipeline — LR-cache probed at most
// once per 5 ns cycle, a forwarding engine executing longest-prefix
// matching in a configurable number of cycles, and input/request/outgoing
// queues — interconnected by a fixed-latency switching fabric.
//
// The simulator reproduces the paper's methodology: packets of varying
// length are generated at each LC so the mean offered load matches the LC
// speed (at 40 Gbps one packet every 2..18 cycles, at 10 Gbps every
// 6..74); destinations come from a trace stream; a cache miss triggers
// "early block recording" and either a local FE lookup or a fabric request
// to the home LC; the home LC caches the result as LOC and replies; the
// reply fills the arrival LC's block as REM and releases the packets
// parked on it.
//
// Baselines fall out of two switches: PartitionEnabled=false gives every
// LC the full table (every lookup is local), CacheEnabled=false removes
// the LR-caches. Both false models the conventional router of the paper's
// comparison; cache-only (partition off) models the prior CPU-caching work
// the paper contrasts with in Fig. 6.
package sim

import (
	"fmt"

	"spal/internal/cache"
	"spal/internal/fabric"
	"spal/internal/lpm"
	"spal/internal/rtable"
	"spal/internal/trace"
)

// Config describes one simulation run.
type Config struct {
	// NumLCs is ψ, the number of line cards (any integer >= 1).
	NumLCs int
	// LookupCycles is the FE matching time in cycles (paper: 40 for the
	// Lulea trie, 62 for the DP trie). Ignored when DynamicLookup is set.
	LookupCycles int
	// DynamicLookup derives each lookup's FE time from the engine's
	// reported memory accesses: ceil((accesses*MemAccessNS + ExecNS) /
	// CycleNS), the formula behind the paper's 40-cycle figure
	// (6.5 accesses x 12 ns + 120 ns of code ≈ 200 ns ≈ 40 cycles).
	DynamicLookup bool
	// MemAccessNS, ExecNS, CycleNS parameterize DynamicLookup and the
	// throughput conversion; zero values default to 12, 120 and 5.
	MemAccessNS, ExecNS, CycleNS float64

	// Cache is the LR-cache organization; CacheEnabled false removes the
	// caches entirely.
	Cache        cache.Config
	CacheEnabled bool
	// PartitionEnabled false keeps the full table at every LC.
	PartitionEnabled bool

	// FabricKind and FabricLatency choose the interconnect model;
	// FabricLatency 0 derives the latency from the kind and ψ.
	FabricKind    fabric.Kind
	FabricLatency int

	// GapMin and GapMax bound the per-packet inter-arrival gap in cycles.
	// Use Gaps40Gbps / Gaps10Gbps for the paper's two LC speeds.
	GapMin, GapMax int
	// LoadFactors optionally skews the ingress load: LC i's inter-arrival
	// gaps are divided by LoadFactors[i] (1.0 = nominal, 2.0 = twice the
	// packet rate). The paper assumes uniform ingress; this knob measures
	// SPAL under unbalanced line cards. Nil means uniform.
	LoadFactors []float64
	// OfferedLoad uniformly scales every LC's packet rate on top of
	// LoadFactors (1.0 = nominal, 2.0 = twice the paper's offered load).
	// Zero means 1.0. The overload experiments drive the router past
	// saturation with this knob.
	OfferedLoad float64
	// AdmissionCap > 0 enables admission control: a freshly arrived local
	// packet is shed (counted, never enqueued) when the LC's arrival queue
	// already holds that many packets — the simulator analogue of the
	// concurrent router's bounded inboxes. Remote requests and replies are
	// never shed, so an admitted packet always completes. 0 disables
	// shedding (legacy unbounded queues).
	AdmissionCap int
	// PacketsPerLC is the per-LC packet budget (paper: 300,000).
	PacketsPerLC int

	// Table is the routing table; Trace names the destination workload.
	Table *rtable.Table
	Trace trace.Preset
	// TraceConfig overrides the preset when PoolSize > 0.
	TraceConfig trace.Config

	// Engine builds the per-LC matching structure; nil uses the O(1)
	// reference oracle (the FE cost is modelled by LookupCycles anyway).
	Engine lpm.Builder

	// FlushEveryCycles > 0 flushes every LR-cache periodically, modelling
	// the paper's route-update cache invalidation.
	FlushEveryCycles int64

	// UpdatesPerSecond > 0 streams seeded BGP-style route updates
	// (rtable.GenerateUpdates over the evolving table) through the run:
	// each event mutates the routing table incrementally — dynamic
	// engines are updated in place, others rebuild their partition — and
	// only the affected address ranges are invalidated in the LR-caches.
	// This is the simulator analogue of the concurrent router's
	// ApplyUpdates plane; FlushEveryCycles remains the legacy
	// full-flush-on-a-timer model.
	UpdatesPerSecond float64
	// UpdateWithdrawProb and UpdateNewPrefixProb parameterize the churn
	// stream; zero values default to 0.3 and 0.2.
	UpdateWithdrawProb  float64
	UpdateNewPrefixProb float64
	// UpdateFullFlush switches churn invalidation from targeted ranges
	// to whole-cache flushes — the conservative model the churn
	// experiments compare targeted invalidation against.
	UpdateFullFlush bool

	// CorruptRate > 0 enables the seeded state-corruption injector: each
	// LR-cache fill (LOC and REM alike) is independently corrupted with
	// this probability — the stored and delivered next hop is bit-flipped
	// — modelling soft errors on the fill path. With corruption on,
	// completed packets that disagree with the verification oracle are
	// counted (Result.WrongVerdicts) instead of failing the run, so the
	// scrub experiments can measure exposure rather than crash.
	CorruptRate float64
	// CorruptSeed drives the corruption draws independently of the other
	// random streams; 0 derives a seed from Seed.
	CorruptSeed uint64
	// ScrubEveryCycles > 0 enables the online integrity scrubber: every
	// that many cycles each LR-cache is audited in full against the
	// current table's oracle and mismatched entries are evicted
	// (Result.ScrubMismatches / ScrubRepairs) — the simulator analogue of
	// the concurrent router's scrub plane.
	ScrubEveryCycles int64

	// SlowLC and SlowFactor model a browned-out line card — the gray
	// failure the concurrent router's detection plane (router/gray.go)
	// targets. When SlowFactor > 1, every fabric message to or from
	// SlowLC pays (SlowFactor-1) x FabricLatency extra cycles, so the
	// card stays alive and correct but its remote lookups crawl. The
	// cycle simulator has no hedging; these knobs measure the *exposure*
	// a brownout creates (latency skew for traffic homed at the slow
	// card), the baseline the router's mitigation is judged against.
	// SlowFactor 0 (or 1) disables the model; SlowLC then is ignored.
	SlowLC     int
	SlowFactor float64

	// DisableEarlyRecording turns off the paper's "early cache block
	// recording" (Sec. 3.2): misses no longer reserve a W-bit block, so
	// concurrent lookups for one address each run the full miss path.
	// Ablation knob; the paper argues recording "enhances SPAL
	// performance".
	DisableEarlyRecording bool

	// FabricContention serializes fabric deliveries: each LC accepts at
	// most one arriving message per cycle (modelling a single fabric
	// output port per FIL), instead of the default unbounded delivery.
	FabricContention bool

	// StageAccounting stamps each packet at the pipeline's stage
	// boundaries (probe, fabric send/recv, FE start/done) and reports a
	// per-stage latency breakdown (Result.Stages / StageTable) — the
	// simulator analogue of the concurrent router's lookup traces.
	StageAccounting bool

	// SampleWindowCycles > 0 collects a time series: the mean lookup time
	// of the packets completing in each window of that many cycles. Used
	// for warmup and flush-recovery curves.
	SampleWindowCycles int64

	// Seed drives every random stream in the run.
	Seed uint64
	// MaxCycles caps the run as a safety net; 0 derives a generous bound.
	MaxCycles int64
	// VerifyNextHops cross-checks every completed packet against
	// full-table LPM (invariant 3); meant for tests.
	VerifyNextHops bool
}

// Gaps40Gbps returns the paper's inter-arrival bounds for a 40 Gbps LC
// (one packet every 2..18 cycles of 5 ns).
func Gaps40Gbps() (min, max int) { return 2, 18 }

// Gaps10Gbps returns the bounds for a 10 Gbps LC (6..74 cycles).
func Gaps10Gbps() (min, max int) { return 6, 74 }

// DefaultConfig returns the paper's headline configuration: ψ=16 LCs at
// 40 Gbps, 40-cycle lookups, 4K-block LR-caches with γ=50%, crossbar-class
// fabric, 300k packets per LC.
func DefaultConfig(tbl *rtable.Table) Config {
	gmin, gmax := Gaps40Gbps()
	return Config{
		NumLCs:           16,
		LookupCycles:     40,
		Cache:            cache.DefaultConfig(),
		CacheEnabled:     true,
		PartitionEnabled: true,
		FabricKind:       fabric.Multistage,
		GapMin:           gmin,
		GapMax:           gmax,
		PacketsPerLC:     300000,
		Table:            tbl,
		Trace:            trace.D75,
		Seed:             1,
	}
}

// normalize fills defaults and validates; it returns a copy.
func (c Config) normalize() (Config, error) {
	if c.NumLCs < 1 {
		return c, fmt.Errorf("sim: NumLCs must be >= 1, got %d", c.NumLCs)
	}
	if c.Table == nil || c.Table.Len() == 0 {
		return c, fmt.Errorf("sim: empty routing table")
	}
	if c.PacketsPerLC <= 0 {
		return c, fmt.Errorf("sim: PacketsPerLC must be positive")
	}
	if c.GapMin <= 0 || c.GapMax < c.GapMin {
		return c, fmt.Errorf("sim: bad gap bounds [%d,%d]", c.GapMin, c.GapMax)
	}
	if c.LoadFactors != nil {
		if len(c.LoadFactors) != c.NumLCs {
			return c, fmt.Errorf("sim: %d load factors for %d LCs", len(c.LoadFactors), c.NumLCs)
		}
		for i, f := range c.LoadFactors {
			if f <= 0 {
				return c, fmt.Errorf("sim: non-positive load factor %v at LC %d", f, i)
			}
		}
	}
	if c.OfferedLoad < 0 {
		return c, fmt.Errorf("sim: negative OfferedLoad %v", c.OfferedLoad)
	}
	if c.OfferedLoad == 0 {
		c.OfferedLoad = 1.0
	}
	if c.AdmissionCap < 0 {
		return c, fmt.Errorf("sim: negative AdmissionCap %d", c.AdmissionCap)
	}
	if c.UpdatesPerSecond < 0 {
		return c, fmt.Errorf("sim: negative UpdatesPerSecond %v", c.UpdatesPerSecond)
	}
	if c.UpdatesPerSecond > 0 {
		if c.UpdateWithdrawProb == 0 {
			c.UpdateWithdrawProb = 0.3
		}
		if c.UpdateNewPrefixProb == 0 {
			c.UpdateNewPrefixProb = 0.2
		}
	}
	if c.SlowFactor < 0 {
		return c, fmt.Errorf("sim: negative SlowFactor %v", c.SlowFactor)
	}
	if c.SlowFactor > 1 && (c.SlowLC < 0 || c.SlowLC >= c.NumLCs) {
		return c, fmt.Errorf("sim: SlowLC %d outside [0,%d)", c.SlowLC, c.NumLCs)
	}
	if c.CorruptRate < 0 || c.CorruptRate > 1 {
		return c, fmt.Errorf("sim: CorruptRate %v outside [0,1]", c.CorruptRate)
	}
	if c.ScrubEveryCycles < 0 {
		return c, fmt.Errorf("sim: negative ScrubEveryCycles %d", c.ScrubEveryCycles)
	}
	if c.CorruptRate > 0 && c.CorruptSeed == 0 {
		c.CorruptSeed = c.Seed ^ 0xbadf111
	}
	if !c.DynamicLookup && c.LookupCycles <= 0 {
		return c, fmt.Errorf("sim: LookupCycles must be positive")
	}
	if c.MemAccessNS == 0 {
		c.MemAccessNS = 12
	}
	if c.ExecNS == 0 {
		c.ExecNS = 120
	}
	if c.CycleNS == 0 {
		c.CycleNS = 5
	}
	if c.Engine == nil {
		c.Engine = lpm.NewReferenceEngine
	}
	if c.TraceConfig.PoolSize == 0 {
		c.TraceConfig = trace.PresetConfig(c.Trace)
	}
	if c.FabricLatency == 0 {
		c.FabricLatency = fabric.Latency(c.FabricKind, c.NumLCs)
	}
	if c.MaxCycles == 0 {
		// Generation time plus worst-case FE drain, with headroom.
		gen := int64(c.PacketsPerLC) * int64(c.GapMax)
		feCycles := int64(c.LookupCycles)
		if c.DynamicLookup {
			feCycles = int64((32*c.MemAccessNS + c.ExecNS) / c.CycleNS)
		}
		drain := int64(c.PacketsPerLC) * feCycles * 2
		c.MaxCycles = 4 * (gen + drain + 1_000_000)
	}
	return c, nil
}
