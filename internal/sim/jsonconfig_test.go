package sim

import (
	"strings"
	"testing"

	"spal/internal/cache"
	"spal/internal/rtable"
)

func TestLoadConfigDefaults(t *testing.T) {
	cfg, err := LoadConfig(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumLCs != 16 || cfg.LookupCycles != 40 || cfg.Cache.Blocks != 4096 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	if !cfg.CacheEnabled || !cfg.PartitionEnabled {
		t.Error("SPAL features should default on")
	}
	if cfg.GapMin != 2 || cfg.GapMax != 18 {
		t.Error("default speed should be 40 Gbps")
	}
}

func TestLoadConfigOverrides(t *testing.T) {
	js := `{
		"num_lcs": 4, "lookup_cycles": 62, "cache_blocks": 1024,
		"mix_percent": 25, "cache_policy": "fifo", "speed_gbps": 10,
		"packets_per_lc": 5000, "trace": "B_L", "seed": 7,
		"partition_enabled": false, "fabric_kind": "crossbar"
	}`
	cfg, err := LoadConfig(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumLCs != 4 || cfg.LookupCycles != 62 || cfg.Cache.Blocks != 1024 ||
		cfg.Cache.MixPercent != 25 || cfg.Cache.Policy != cache.FIFO {
		t.Errorf("overrides lost: %+v", cfg)
	}
	if cfg.GapMin != 6 || cfg.GapMax != 74 {
		t.Error("10 Gbps gaps wrong")
	}
	if cfg.PartitionEnabled {
		t.Error("partition_enabled=false lost")
	}
	if string(cfg.Trace) != "B_L" || cfg.Seed != 7 {
		t.Error("trace/seed lost")
	}
	// And it actually runs.
	cfg.Table = rtable.Small(1000, 1)
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadConfigErrors(t *testing.T) {
	bad := []string{
		`{"cache_policy": "mru"}`,
		`{"fabric_kind": "torus"}`,
		`{"speed_gbps": 100}`,
		`{"unknown_field": 1}`,
		`not json`,
	}
	for _, js := range bad {
		if _, err := LoadConfig(strings.NewReader(js)); err == nil {
			t.Errorf("config %q should fail", js)
		}
	}
}
