package sim

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"spal/internal/metrics"
	"spal/internal/rtable"
)

// TestResultSnapshot checks that the simulator's cycle counters round-trip
// into the shared metrics vocabulary and reconcile with the Result fields.
func TestResultSnapshot(t *testing.T) {
	tbl := rtable.Small(3000, 1)
	res := run(t, testConfig(tbl))
	s := res.Snapshot()

	if v, ok := s.Value("spal_sim_packets_completed_total"); !ok || int64(v) != res.PacketsCompleted {
		t.Errorf("completed = %v (ok=%v), want %d", v, ok, res.PacketsCompleted)
	}
	if v, ok := s.Value("spal_sim_cycles_total"); !ok || int64(v) != res.Cycles {
		t.Errorf("cycles = %v (ok=%v), want %d", v, ok, res.Cycles)
	}
	if v, ok := s.Value("spal_sim_cache_hit_ratio"); !ok || v != res.HitRate {
		t.Errorf("hit ratio = %v (ok=%v), want %v", v, ok, res.HitRate)
	}
	var completed float64
	for i := range res.PerLC {
		v, ok := s.Value("spal_sim_completed_total", metrics.L("lc", strconv.Itoa(i)))
		if !ok {
			t.Fatalf("missing per-LC completed for lc=%d", i)
		}
		completed += v
	}
	if int64(completed) != res.PacketsCompleted {
		t.Errorf("per-LC completed sum = %v, want %d", completed, res.PacketsCompleted)
	}

	// The re-bucketed latency histogram must preserve the sample count and
	// mean exactly (unit bins fold losslessly into power-of-two buckets).
	h, ok := s.HistValue("spal_sim_lookup_latency_cycles")
	if !ok {
		t.Fatal("missing latency histogram")
	}
	if int64(h.Count) != res.PacketsCompleted {
		t.Errorf("histogram count = %d, want %d", h.Count, res.PacketsCompleted)
	}
	if math.Abs(h.Mean()-res.MeanLookupCycles) > 1e-9 {
		t.Errorf("histogram mean = %v, Result mean = %v", h.Mean(), res.MeanLookupCycles)
	}

	text := s.PrometheusText()
	if !strings.Contains(text, "# TYPE spal_sim_lookup_latency_cycles histogram") {
		t.Error("Prometheus text missing latency family")
	}
	if !strings.Contains(text, `spal_sim_hits_total{lc="0",origin="loc"}`) {
		t.Error("Prometheus text missing per-origin hit counters")
	}
}
