package sim

import (
	"testing"

	"spal/internal/rtable"
)

// TestSimCorruptionScrub: with fill corruption and the scrubber both on,
// the run completes without the oracle panic (wrong verdicts are counted
// instead), every injected corruption that a scrub sweep finds is
// evicted, and the counters surface through the Result.
func TestSimCorruptionScrub(t *testing.T) {
	tbl := rtable.Small(2000, 4)
	cfg := testConfig(tbl)
	cfg.VerifyNextHops = true
	cfg.CorruptRate = 0.01
	cfg.ScrubEveryCycles = 200
	res := run(t, cfg)

	if res.CorruptionsInjected == 0 {
		t.Fatal("corrupt rate 1% over 12k packets injected nothing")
	}
	if res.ScrubCycles == 0 {
		t.Fatal("scrubber never ran")
	}
	if res.ScrubMismatches == 0 {
		t.Fatal("corruption injected but no scrub sweep found a mismatch")
	}
	if res.ScrubRepairs != res.ScrubMismatches {
		t.Fatalf("scrub evicted %d of %d mismatches; every find must be repaired",
			res.ScrubRepairs, res.ScrubMismatches)
	}
	// A corrupted fill can serve wrong verdicts until a sweep evicts it —
	// that is the injected failure, not a sim bug — but it must be
	// bounded by the number of corrupted entries times their residency.
	t.Logf("injected=%d mismatches=%d repaired=%d wrongVerdicts=%d sweeps=%d",
		res.CorruptionsInjected, res.ScrubMismatches, res.ScrubRepairs,
		res.WrongVerdicts, res.ScrubCycles)
}

// TestSimCorruptionDeterminism: the corruption schedule is seeded; the
// same config reproduces the same injection and detection counts.
func TestSimCorruptionDeterminism(t *testing.T) {
	tbl := rtable.Small(2000, 4)
	cfg := testConfig(tbl)
	cfg.VerifyNextHops = true
	cfg.CorruptRate = 0.01
	cfg.ScrubEveryCycles = 200
	a, b := run(t, cfg), run(t, cfg)
	if a.CorruptionsInjected != b.CorruptionsInjected ||
		a.ScrubMismatches != b.ScrubMismatches ||
		a.WrongVerdicts != b.WrongVerdicts {
		t.Fatalf("same seed diverged: injected %d/%d mismatches %d/%d wrong %d/%d",
			a.CorruptionsInjected, b.CorruptionsInjected,
			a.ScrubMismatches, b.ScrubMismatches,
			a.WrongVerdicts, b.WrongVerdicts)
	}
}

// TestSimScrubCleanNoFalsePositives: the scrubber over an uncorrupted
// run — including one with route churn — must find nothing; a false
// positive would evict live entries and skew every cache metric built on
// top.
func TestSimScrubCleanNoFalsePositives(t *testing.T) {
	tbl := rtable.Small(2000, 4)
	cfg := testConfig(tbl)
	cfg.VerifyNextHops = true
	cfg.ScrubEveryCycles = 100
	cfg.UpdatesPerSecond = 50000
	res := run(t, cfg)
	if res.ScrubCycles == 0 {
		t.Fatal("scrubber never ran")
	}
	if res.ScrubMismatches != 0 || res.ScrubRepairs != 0 {
		t.Fatalf("clean churn run flagged %d mismatches (%d evictions)",
			res.ScrubMismatches, res.ScrubRepairs)
	}
	if res.CorruptionsInjected != 0 || res.WrongVerdicts != 0 {
		t.Fatalf("no injector configured but injected=%d wrong=%d",
			res.CorruptionsInjected, res.WrongVerdicts)
	}
}
