// Sharded LR-cache: the same LR-cache semantics split across 2^k
// independent shards selected by the low address bits, each shard padded
// to its own cache line. A single Cache is single-owner by design, but
// its hot fields (clock, stats, set arrays) still share lines with
// whatever the allocator placed next to them; sharding gives the batch
// data plane a layout where consecutive addresses in a burst touch
// disjoint lines, and leaves the door open to per-shard ownership later
// without changing the router's call sites — which is why the router
// programs against Store, not *Cache.
package cache

import (
	"fmt"

	"spal/internal/ip"
	"spal/internal/metrics"
	"spal/internal/rtable"
)

// Store is the cache surface the router's line cards program against:
// everything a Cache does that the data plane and the metrics collector
// need. Both Cache and Sharded implement it.
type Store interface {
	Probe(a ip.Addr) ProbeResult
	RecordMiss(a ip.Addr, origin Origin, waiter int64) bool
	Fill(a ip.Addr, nh rtable.NextHop, origin Origin) []int64
	Flush() []int64
	InvalidateRange(lo, hi ip.Addr) int
	AuditEntries(visit func(a ip.Addr, nh rtable.NextHop) bool) int
	Stats() Stats
	Occupancy() (loc, rem, waiting int)
	MetricsInto(sn *metrics.Snapshot, labels ...metrics.Label)
}

var (
	_ Store = (*Cache)(nil)
	_ Store = (*Sharded)(nil)
)

// shard embeds its Cache by value and pads it out so two shards never
// share a cache line (the Cache struct itself is larger than a line; the
// pad guards its tail fields against the next shard's head).
type shard struct {
	c Cache
	_ [64]byte
}

// Sharded is a Store of 2^k shards. The shard index is the address's low
// k bits and the inner caches see the address right-shifted by k, so
// every inner set index still draws from low (post-shift) bits and no
// capacity is wasted: the (shard, shifted-address) mapping is injective.
type Sharded struct {
	shards    []shard
	shardBits uint
}

// NewSharded builds a cache of n shards over the given total
// organization: cfg.Blocks is divided evenly among the shards (each
// shard also gets its own cfg.VictimBlocks victim cache). n must be a
// power of two >= 2, and the per-shard geometry must stay valid
// (Blocks/n divisible by Assoc with a power-of-two set count) — New
// panics otherwise, exactly like Cache's constructor. NewShardedErr is
// the error-returning path (used by router.WithCacheShards) so an
// operator-supplied shard count reports a diagnosis instead of crashing.
func NewSharded(cfg Config, n int) *Sharded {
	s, err := NewShardedErr(cfg, n)
	if err != nil {
		panic(err.Error())
	}
	return s
}

// NewShardedErr validates the shard count and the per-shard geometry and
// builds the sharded store, reporting any mis-sizing as an error.
func NewShardedErr(cfg Config, n int) (*Sharded, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("cache: shards=%d not a power of two >= 2", n)
	}
	if cfg.Blocks%n != 0 {
		return nil, fmt.Errorf("cache: blocks=%d not divisible by shards=%d", cfg.Blocks, n)
	}
	s := &Sharded{shards: make([]shard, n)}
	for n > 1 {
		s.shardBits++
		n >>= 1
	}
	per := cfg
	per.Blocks = cfg.Blocks / len(s.shards)
	for i := range s.shards {
		per.Seed = cfg.Seed + uint64(i)*0x9e3779b9
		c, err := NewErr(per)
		if err != nil {
			return nil, fmt.Errorf("%v (per-shard geometry, %d shards over %d blocks)", err, len(s.shards), cfg.Blocks)
		}
		s.shards[i].c = *c
	}
	return s, nil
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

func (s *Sharded) at(a ip.Addr) (*Cache, ip.Addr) {
	return &s.shards[a&(uint32(len(s.shards))-1)].c, a >> s.shardBits
}

// Probe implements Store.
func (s *Sharded) Probe(a ip.Addr) ProbeResult {
	c, sa := s.at(a)
	return c.Probe(sa)
}

// RecordMiss implements Store.
func (s *Sharded) RecordMiss(a ip.Addr, origin Origin, waiter int64) bool {
	c, sa := s.at(a)
	return c.RecordMiss(sa, origin, waiter)
}

// Fill implements Store.
func (s *Sharded) Fill(a ip.Addr, nh rtable.NextHop, origin Origin) []int64 {
	c, sa := s.at(a)
	return c.Fill(sa, nh, origin)
}

// Flush invalidates every shard and concatenates their orphaned waiters.
func (s *Sharded) Flush() []int64 {
	var orphans []int64
	for i := range s.shards {
		orphans = append(orphans, s.shards[i].c.Flush()...)
	}
	return orphans
}

// InvalidateRange drops complete entries for [lo, hi] in every shard.
// Addresses are stored right-shifted by shardBits, so each shard is asked
// to invalidate the shifted range [lo>>k, hi>>k]; the boundary blocks that
// shift into the range from a non-matching shard cost at most one extra
// eviction per end per shard, which is safe (invalidation is always
// conservative) and negligible against a whole-cache flush.
func (s *Sharded) InvalidateRange(lo, hi ip.Addr) int {
	n := 0
	for i := range s.shards {
		n += s.shards[i].c.InvalidateRange(lo>>s.shardBits, hi>>s.shardBits)
	}
	return n
}

// AuditEntries visits every shard's complete entries, reconstructing the
// original address from the shard index and the shifted tag (the
// (shard, shifted-address) mapping is injective, so the reconstruction is
// exact). Returns the number of entries the visitor evicted.
func (s *Sharded) AuditEntries(visit func(a ip.Addr, nh rtable.NextHop) bool) int {
	n := 0
	for i := range s.shards {
		idx := ip.Addr(i)
		n += s.shards[i].c.AuditEntries(func(sa ip.Addr, nh rtable.NextHop) bool {
			return visit(sa<<s.shardBits|idx, nh)
		})
	}
	return n
}

// Stats sums the per-shard counters (MaxWaitList takes the maximum).
func (s *Sharded) Stats() Stats {
	var sum Stats
	for i := range s.shards {
		st := s.shards[i].c.Stats()
		sum.Probes += st.Probes
		sum.Hits += st.Hits
		sum.HitWaitings += st.HitWaitings
		sum.HitVictims += st.HitVictims
		sum.Misses += st.Misses
		sum.Recorded += st.Recorded
		sum.Bypasses += st.Bypasses
		sum.Evictions += st.Evictions
		sum.Fills += st.Fills
		sum.Flushes += st.Flushes
		sum.RangeInvalidations += st.RangeInvalidations
		sum.Invalidated += st.Invalidated
		sum.Parked += st.Parked
		if st.MaxWaitList > sum.MaxWaitList {
			sum.MaxWaitList = st.MaxWaitList
		}
	}
	return sum
}

// Occupancy sums the per-shard class occupancy.
func (s *Sharded) Occupancy() (loc, rem, waiting int) {
	for i := range s.shards {
		l, r, w := s.shards[i].c.Occupancy()
		loc, rem, waiting = loc+l, rem+r, waiting+w
	}
	return loc, rem, waiting
}

// MetricsInto publishes the aggregate under the same metric names a
// single Cache uses, so dashboards are shard-count agnostic.
func (s *Sharded) MetricsInto(sn *metrics.Snapshot, labels ...metrics.Label) {
	loc, rem, waiting := s.Occupancy()
	metricsInto(sn, s.Stats(), loc, rem, waiting, labels...)
}
