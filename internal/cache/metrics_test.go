package cache

import (
	"testing"

	"spal/internal/metrics"
)

func TestMetricsInto(t *testing.T) {
	c := New(Config{Blocks: 64, Assoc: 4, VictimBlocks: 8, MixPercent: 50, Policy: LRU})
	// Fill a few LOC and REM entries, then hit some of them.
	for a := 0; a < 20; a++ {
		addr := uint32(a * 101)
		origin := LOC
		if a%3 == 0 {
			origin = REM
		}
		if c.Probe(addr).Kind == Miss && c.RecordMiss(addr, origin, 0) {
			c.Fill(addr, 5, origin)
		}
	}
	for a := 0; a < 20; a += 2 {
		c.Probe(uint32(a * 101))
	}

	sn := metrics.NewSnapshot()
	lbl := metrics.L("lc", "3")
	c.MetricsInto(sn, lbl)

	st := c.Stats()
	if v, ok := sn.Value(MetricProbes, lbl); !ok || int64(v) != st.Probes {
		t.Errorf("probes sample = %v (ok=%v), want %d", v, ok, st.Probes)
	}
	if v, ok := sn.Value(MetricHits, lbl); !ok || int64(v) != st.Hits {
		t.Errorf("hits sample = %v (ok=%v), want %d", v, ok, st.Hits)
	}
	if v, ok := sn.Value(MetricHitRatio, lbl); !ok || v != st.HitRate() {
		t.Errorf("hit ratio = %v (ok=%v), want %v", v, ok, st.HitRate())
	}
	loc, rem, waiting := c.Occupancy()
	for _, o := range []struct {
		origin string
		want   int
	}{{"loc", loc}, {"rem", rem}, {"waiting", waiting}} {
		v, ok := sn.Value(MetricOccupancy, lbl, metrics.L("origin", o.origin))
		if !ok || int(v) != o.want {
			t.Errorf("occupancy %s = %v (ok=%v), want %d", o.origin, v, ok, o.want)
		}
	}
	if loc == 0 || rem == 0 {
		t.Errorf("expected both classes resident, got loc=%d rem=%d", loc, rem)
	}
}
