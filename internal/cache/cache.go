// Package cache implements the LR-cache of Sec. 3.2: the small on-chip
// set-associative cache each line card uses to hold lookup results
// (<IP address, next-hop>), together with its 8-block fully-associative
// victim cache.
//
// Paper-specific mechanisms:
//
//   - M bit: every entry is tagged LOC (result produced by the local FE)
//     or REM (result obtained from a remote home LC). The γ "mix value"
//     is a hard per-set allocation — γ% of each set's blocks are devoted
//     to REM results, the rest to LOC (the paper: at γ=25% "only one
//     cache block per set is for the REM results"). An insert that would
//     push its class past its share replaces within the class (base
//     policy LRU/FIFO/random picks among the candidates); a class with
//     zero quota is not cached at all.
//   - W bit ("early cache block recording"): a block is reserved the
//     moment a miss occurs, before its result exists. Packets that hit a
//     waiting block are parked on its waiting list and released when the
//     reply fills the block. Waiting blocks are never evicted; when every
//     block of a set is waiting, the requester bypasses the cache
//     (counted in Stats.Bypasses).
//   - Flush: a routing-table update invalidates every block (paper
//     assumption); pending waiters are returned to the caller so the
//     simulator can reissue them.
package cache

import (
	"fmt"

	"spal/internal/ip"
	"spal/internal/metrics"
	"spal/internal/rtable"
	"spal/internal/stats"
)

// Origin is the M status bit: where a cached result was produced.
type Origin uint8

// M bit values.
const (
	LOC Origin = iota // produced by the local forwarding engine
	REM               // produced by a remote home LC
)

// String renders the M bit for reports.
func (o Origin) String() string {
	if o == LOC {
		return "LOC"
	}
	return "REM"
}

// Policy is the base replacement policy applied among eviction candidates.
type Policy uint8

// Replacement policies.
const (
	LRU Policy = iota
	FIFO
	Random
)

// Config specifies an LR-cache organization.
type Config struct {
	// Blocks is β, the total number of blocks (paper range: 1K..8K).
	Blocks int
	// Assoc is the set associativity (paper: 4).
	Assoc int
	// VictimBlocks is the fully-associative victim cache size (paper: 8).
	// Zero disables the victim cache.
	VictimBlocks int
	// MixPercent is γ: the share of each set's blocks devoted to REM
	// results, with the remainder devoted to LOC (paper sweeps
	// 0/25/50/75%; 50% is typically best, 25% for β = 1K). 0 disables
	// REM caching entirely; 100 disables LOC caching.
	MixPercent int
	// Policy is the base replacement policy (paper uses LRU).
	Policy Policy
	// Seed drives the Random policy.
	Seed uint64
}

// DefaultConfig returns the paper's standard organization: 4K blocks,
// 4-way, 8 victim blocks, γ = 50%, LRU.
func DefaultConfig() Config {
	return Config{Blocks: 4096, Assoc: 4, VictimBlocks: 8, MixPercent: 50, Policy: LRU}
}

type entry struct {
	valid   bool
	waiting bool // W bit
	origin  Origin
	addr    ip.Addr
	nextHop rtable.NextHop
	stamp   uint64  // LRU: touch time; FIFO: fill time
	waiters []int64 // packets parked on this waiting block
}

// ProbeKind classifies a Probe outcome.
type ProbeKind uint8

// Probe outcomes.
const (
	Miss       ProbeKind = iota
	Hit                  // complete entry, result available
	HitWaiting           // W=1 entry: caller must park the packet via AddWaiter
	HitVictim            // complete entry found in the victim cache (promoted)
)

// ProbeResult is a Probe outcome plus the result when Kind is Hit or
// HitVictim.
type ProbeResult struct {
	Kind    ProbeKind
	NextHop rtable.NextHop
	Origin  Origin
}

// Stats counts cache events since construction (or the last ResetStats).
type Stats struct {
	Probes, Hits, HitWaitings, HitVictims, Misses int64
	Recorded, Bypasses, Evictions, Fills          int64
	Flushes                                       int64
	// Targeted invalidation: InvalidateRange calls and the complete
	// entries they dropped (waiting blocks are never invalidated).
	RangeInvalidations, Invalidated int64
	// Waiting-list pressure: packets parked on W blocks, and the largest
	// list one block ever accumulated (coalescing depth).
	Parked, MaxWaitList int64
}

// Cache is one LR-cache instance. It is not safe for concurrent use: in
// both the cycle simulator and the concurrent router each LC goroutine
// owns its cache exclusively, mirroring the single cache port of Fig. 2.
type Cache struct {
	cfg    Config
	sets   [][]entry
	victim []entry
	clock  uint64
	rng    *stats.RNG
	stat   Stats
}

// New validates cfg and builds an empty cache. Blocks/Assoc must give a
// power-of-two number of sets so the set index is a bit mask of the
// address, as in hardware. New panics on bad geometry; NewErr is the
// error-returning path for operator-supplied configurations.
func New(cfg Config) *Cache {
	c, err := NewErr(cfg)
	if err != nil {
		panic(err.Error())
	}
	return c
}

// NewErr validates cfg and builds an empty cache, reporting bad geometry
// as an error instead of panicking.
func NewErr(cfg Config) (*Cache, error) {
	if cfg.Assoc < 1 || cfg.Blocks < cfg.Assoc || cfg.Blocks%cfg.Assoc != 0 {
		return nil, fmt.Errorf("cache: bad geometry blocks=%d assoc=%d", cfg.Blocks, cfg.Assoc)
	}
	numSets := cfg.Blocks / cfg.Assoc
	if numSets&(numSets-1) != 0 {
		return nil, fmt.Errorf("cache: sets=%d not a power of two", numSets)
	}
	if cfg.MixPercent < 0 || cfg.MixPercent > 100 {
		return nil, fmt.Errorf("cache: MixPercent %d out of range [0,100]", cfg.MixPercent)
	}
	c := &Cache{cfg: cfg, rng: stats.NewRNG(cfg.Seed ^ 0xcafe)}
	c.sets = make([][]entry, numSets)
	for i := range c.sets {
		c.sets[i] = make([]entry, cfg.Assoc)
	}
	c.victim = make([]entry, cfg.VictimBlocks)
	return c, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) setOf(a ip.Addr) []entry {
	return c.sets[int(a)&(len(c.sets)-1)]
}

func (c *Cache) tick() uint64 {
	c.clock++
	return c.clock
}

// Probe looks an address up in the set and the victim cache (one combined
// access per Fig. 2). A victim hit promotes the block back into its set.
func (c *Cache) Probe(a ip.Addr) ProbeResult {
	c.stat.Probes++
	set := c.setOf(a)
	for i := range set {
		e := &set[i]
		if e.valid && e.addr == a {
			if e.waiting {
				c.stat.HitWaitings++
				return ProbeResult{Kind: HitWaiting}
			}
			c.stat.Hits++
			if c.cfg.Policy == LRU {
				e.stamp = c.tick()
			}
			return ProbeResult{Kind: Hit, NextHop: e.nextHop, Origin: e.origin}
		}
	}
	for i := range c.victim {
		v := &c.victim[i]
		if v.valid && v.addr == a {
			c.stat.HitVictims++
			res := ProbeResult{Kind: HitVictim, NextHop: v.nextHop, Origin: v.origin}
			c.promote(i)
			return res
		}
	}
	c.stat.Misses++
	return ProbeResult{Kind: Miss}
}

// promote swaps victim block vi back into its home set, demoting the
// set's replacement choice into the victim slot.
func (c *Cache) promote(vi int) {
	v := c.victim[vi]
	set := c.setOf(v.addr)
	slot := c.chooseVictim(set, v.origin)
	if slot < 0 {
		// No slot for this class (zero quota or all waiting): leave the
		// entry in the victim cache but refresh its recency.
		c.victim[vi].stamp = c.tick()
		return
	}
	evicted := set[slot]
	v.stamp = c.tick()
	set[slot] = v
	if evicted.valid {
		evicted.stamp = c.tick()
		c.victim[vi] = evicted
	} else {
		c.victim[vi] = entry{}
	}
}

// classCounts tallies valid blocks per M class, counting waiting blocks in
// their tentative class (the caller declared the origin at RecordMiss).
func classCounts(set []entry) (loc, rem int) {
	for i := range set {
		if !set[i].valid {
			continue
		}
		if set[i].origin == LOC {
			loc++
		} else {
			rem++
		}
	}
	return loc, rem
}

// chooseVictim picks the slot for inserting a block of the given class.
// The mix value γ is a hard per-set allocation (the paper: "% of blocks
// devoted for REM results"): an insert that would push its class past its
// share replaces within the class, even when free blocks remain, and a
// class with zero quota is simply not cached. It returns -1 when no slot
// is available (zero quota, or every candidate is waiting).
func (c *Cache) chooseVictim(set []entry, class Origin) int {
	loc, rem := classCounts(set)
	remQuota := c.cfg.Assoc * c.cfg.MixPercent / 100
	locQuota := c.cfg.Assoc - remQuota

	candidate := func(class Origin, restrict bool) int {
		best, seen := -1, 0
		for i := range set {
			e := &set[i]
			if !e.valid || e.waiting || (restrict && e.origin != class) {
				continue
			}
			seen++
			if best < 0 {
				best = i
				continue
			}
			switch c.cfg.Policy {
			case Random:
				// Reservoir sampling: the k-th candidate replaces the
				// choice with probability 1/k, giving a uniform pick.
				if c.rng.Intn(seen) == 0 {
					best = i
				}
			default: // LRU and FIFO both evict the smallest stamp
				if e.stamp < set[best].stamp {
					best = i
				}
			}
		}
		return best
	}

	// Class at (or past) its allocation: replace within the class. With a
	// zero quota there are no candidates and the insert is declined.
	if class == REM && rem >= remQuota {
		return candidate(REM, true)
	}
	if class == LOC && loc >= locQuota {
		return candidate(LOC, true)
	}
	for i := range set {
		if !set[i].valid {
			return i
		}
	}
	// Set full but this class is under quota: the other class must be
	// over its share; evict from it.
	if rem > remQuota {
		if i := candidate(REM, true); i >= 0 {
			return i
		}
	}
	if loc > locQuota {
		if i := candidate(LOC, true); i >= 0 {
			return i
		}
	}
	return candidate(LOC, false)
}

// RecordMiss reserves a waiting block for addr ("early cache block
// recording"): origin is the block's tentative class (LOC when the address
// is homed locally, REM otherwise) and waiter is the packet that caused
// the miss. It reports false — cache bypass — when no block is available
// for the class: its γ allocation is zero, or every candidate block is
// waiting. RecordMiss panics if addr is already present; callers must
// Probe first.
func (c *Cache) RecordMiss(a ip.Addr, origin Origin, waiter int64) bool {
	set := c.setOf(a)
	for i := range set {
		if set[i].valid && set[i].addr == a {
			panic("cache: RecordMiss on a resident address")
		}
	}
	slot := c.chooseVictim(set, origin)
	if slot < 0 {
		c.stat.Bypasses++
		return false
	}
	if set[slot].valid {
		c.evictToVictim(set, slot)
	}
	set[slot] = entry{
		valid:   true,
		waiting: true,
		origin:  origin,
		addr:    a,
		stamp:   c.tick(),
		waiters: []int64{waiter},
	}
	c.stat.Recorded++
	return true
}

// evictToVictim moves a complete block into the victim cache (LRU among
// victim slots).
func (c *Cache) evictToVictim(set []entry, slot int) {
	c.stat.Evictions++
	if len(c.victim) == 0 {
		return
	}
	vslot := 0
	for i := range c.victim {
		if !c.victim[i].valid {
			vslot = i
			break
		}
		if c.victim[i].stamp < c.victim[vslot].stamp {
			vslot = i
		}
	}
	e := set[slot]
	e.stamp = c.tick()
	c.victim[vslot] = e
}

// AddWaiter parks a packet on addr's waiting block (after Probe returned
// HitWaiting). It panics when no waiting block for addr exists.
func (c *Cache) AddWaiter(a ip.Addr, waiter int64) {
	set := c.setOf(a)
	for i := range set {
		if set[i].valid && set[i].addr == a && set[i].waiting {
			set[i].waiters = append(set[i].waiters, waiter)
			c.stat.Parked++
			if n := int64(len(set[i].waiters)); n > c.stat.MaxWaitList {
				c.stat.MaxWaitList = n
			}
			return
		}
	}
	panic("cache: AddWaiter without a waiting block")
}

// Fill completes addr's waiting block with a result, clears its W bit and
// returns the parked packets. origin overrides the tentative class (a
// reply from a remote LC fills as REM, a local FE result as LOC). When no
// waiting block exists — the miss bypassed a fully-waiting set, or a flush
// intervened — the result is inserted as a fresh complete block when
// possible, and no waiters are returned.
func (c *Cache) Fill(a ip.Addr, nh rtable.NextHop, origin Origin) []int64 {
	c.stat.Fills++
	set := c.setOf(a)
	for i := range set {
		e := &set[i]
		if e.valid && e.addr == a {
			if !e.waiting {
				// Duplicate fill (e.g. two LCs resolved the same address);
				// refresh the result and the replacement stamp — without
				// the stamp touch, LRU would treat a just-refreshed entry
				// as the oldest in its set and evict it first.
				e.nextHop = nh
				e.origin = origin
				e.stamp = c.tick()
				return nil
			}
			w := e.waiters
			e.waiting = false
			e.waiters = nil
			e.nextHop = nh
			e.origin = origin
			e.stamp = c.tick()
			return w
		}
	}
	// No reserved block: best-effort insert.
	if slot := c.chooseVictim(set, origin); slot >= 0 {
		if set[slot].valid {
			c.evictToVictim(set, slot)
		}
		set[slot] = entry{valid: true, origin: origin, addr: a, nextHop: nh, stamp: c.tick()}
	}
	return nil
}

// Flush invalidates every block (routing-table update, Sec. 3.2) and
// returns all parked packets so the caller can reissue their lookups.
func (c *Cache) Flush() []int64 {
	c.stat.Flushes++
	var orphans []int64
	for _, set := range c.sets {
		for i := range set {
			orphans = append(orphans, set[i].waiters...)
			set[i] = entry{}
		}
	}
	for i := range c.victim {
		c.victim[i] = entry{}
	}
	return orphans
}

// InvalidateRange drops every complete entry whose address falls in the
// inclusive range [lo, hi] — the targeted alternative to Flush for a
// routing update: only addresses covered by a changed prefix can change
// verdict, so everything else stays hot. Waiting (W-bit) blocks are left
// in place: their result is still in flight and the router's update
// generation guard discards stale fills, so dropping the block would only
// orphan its waiters. Returns the number of entries invalidated.
func (c *Cache) InvalidateRange(lo, hi ip.Addr) int {
	c.stat.RangeInvalidations++
	n := 0
	for _, set := range c.sets {
		for i := range set {
			e := &set[i]
			if e.valid && !e.waiting && e.addr >= lo && e.addr <= hi {
				*e = entry{}
				n++
			}
		}
	}
	for i := range c.victim {
		v := &c.victim[i]
		if v.valid && v.addr >= lo && v.addr <= hi {
			*v = entry{}
			n++
		}
	}
	c.stat.Invalidated += int64(n)
	return n
}

// AuditEntries visits every complete (valid, non-waiting) entry in the
// sets and the victim cache, passing its address and cached next hop.
// Returning false evicts the entry on the spot — the integrity scrubber's
// inline repair for a corrupted or stale value. Waiting blocks are skipped:
// their result is still in flight and owned by the fill path. Returns the
// number of entries evicted.
func (c *Cache) AuditEntries(visit func(a ip.Addr, nh rtable.NextHop) bool) int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			e := &set[i]
			if e.valid && !e.waiting && !visit(e.addr, e.nextHop) {
				*e = entry{}
				n++
			}
		}
	}
	for i := range c.victim {
		v := &c.victim[i]
		if v.valid && !visit(v.addr, v.nextHop) {
			*v = entry{}
			n++
		}
	}
	return n
}

// Stats returns the event counters.
func (c *Cache) Stats() Stats { return c.stat }

// ResetStats zeroes the event counters (e.g. after a warm-up phase).
func (c *Cache) ResetStats() { c.stat = Stats{} }

// HitRate returns (Hits + HitVictims) / Probes.
func (s Stats) HitRate() float64 {
	if s.Probes == 0 {
		return 0
	}
	return float64(s.Hits+s.HitVictims) / float64(s.Probes)
}

// Metric names exported by MetricsInto.
const (
	MetricProbes     = "spal_lrcache_probes_total"
	MetricHits       = "spal_lrcache_hits_total"
	MetricHitWaiting = "spal_lrcache_hit_waiting_total"
	MetricVictimHits = "spal_lrcache_victim_hits_total"
	MetricMisses     = "spal_lrcache_misses_total"
	MetricBypasses   = "spal_lrcache_bypasses_total"
	MetricEvictions  = "spal_lrcache_evictions_total"
	MetricFills      = "spal_lrcache_fills_total"
	MetricFlushes    = "spal_lrcache_flushes_total"
	MetricRangeInv   = "spal_lrcache_range_invalidations_total"
	MetricInvalid    = "spal_lrcache_invalidated_total"
	MetricParked     = "spal_lrcache_parked_total"
	MetricOccupancy  = "spal_lrcache_occupancy_blocks"
	MetricHitRatio   = "spal_lrcache_hit_ratio"
)

// MetricsInto publishes the cache's event counters and per-origin
// occupancy into a metrics snapshot, tagging every sample with the given
// labels (the router adds lc="<id>"). Like every other method it must be
// called from the goroutine owning the cache; the snapshot it fills is a
// plain value the caller may then hand across goroutines.
func (c *Cache) MetricsInto(sn *metrics.Snapshot, labels ...metrics.Label) {
	loc, rem, waiting := c.Occupancy()
	metricsInto(sn, c.stat, loc, rem, waiting, labels...)
}

// metricsInto emits one cache's (or one sharded aggregate's) stats and
// occupancy under the shared metric names, so Cache and Sharded publish
// an identical vocabulary.
func metricsInto(sn *metrics.Snapshot, s Stats, loc, rem, waiting int, labels ...metrics.Label) {
	sn.Counter(MetricProbes, "LR-cache probes.", float64(s.Probes), labels...)
	sn.Counter(MetricHits, "LR-cache set hits (complete entries).", float64(s.Hits), labels...)
	sn.Counter(MetricHitWaiting, "Probes that hit a W-bit (waiting) block.", float64(s.HitWaitings), labels...)
	sn.Counter(MetricVictimHits, "Hits served from the 8-block victim cache.", float64(s.HitVictims), labels...)
	sn.Counter(MetricMisses, "LR-cache misses.", float64(s.Misses), labels...)
	sn.Counter(MetricBypasses, "Misses that bypassed the cache (no block available).", float64(s.Bypasses), labels...)
	sn.Counter(MetricEvictions, "Complete blocks evicted to the victim cache.", float64(s.Evictions), labels...)
	sn.Counter(MetricFills, "Results filled into the cache.", float64(s.Fills), labels...)
	sn.Counter(MetricFlushes, "Whole-cache flushes (routing-table updates).", float64(s.Flushes), labels...)
	sn.Counter(MetricRangeInv, "Targeted InvalidateRange calls (incremental updates).", float64(s.RangeInvalidations), labels...)
	sn.Counter(MetricInvalid, "Complete entries dropped by targeted invalidation.", float64(s.Invalidated), labels...)
	sn.Counter(MetricParked, "Packets parked on waiting blocks.", float64(s.Parked), labels...)
	sn.Gauge(MetricHitRatio, "(Hits + victim hits) / probes since construction.", s.HitRate(), labels...)

	occHelp := "Valid blocks by M-bit origin class (loc/rem) or W-bit waiting state."
	sn.Gauge(MetricOccupancy, occHelp, float64(loc), append(append([]metrics.Label(nil), labels...), metrics.L("origin", "loc"))...)
	sn.Gauge(MetricOccupancy, occHelp, float64(rem), append(append([]metrics.Label(nil), labels...), metrics.L("origin", "rem"))...)
	sn.Gauge(MetricOccupancy, occHelp, float64(waiting), append(append([]metrics.Label(nil), labels...), metrics.L("origin", "waiting"))...)
}

// Occupancy reports the number of valid blocks per class, for mix-policy
// diagnostics.
func (c *Cache) Occupancy() (loc, rem, waiting int) {
	for _, set := range c.sets {
		for i := range set {
			if !set[i].valid {
				continue
			}
			if set[i].waiting {
				waiting++
				continue
			}
			if set[i].origin == LOC {
				loc++
			} else {
				rem++
			}
		}
	}
	return loc, rem, waiting
}
