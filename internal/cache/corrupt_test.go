package cache

import (
	"testing"

	"spal/internal/ip"
	"spal/internal/rtable"
)

// corruptTestConfig is a small, valid cache geometry for the wrapper
// tests.
func corruptTestConfig() Config {
	return Config{Blocks: 64, Assoc: 4, VictimBlocks: 4, MixPercent: 50, Policy: LRU}
}

// TestCorruptStoreWrongFill: a firing draw stores value^1 (and delivers it
// to any waiters — the silent-wrong-verdict failure mode), a quiet draw
// stores the true value. Rate 1 makes every draw fire.
func TestCorruptStoreWrongFill(t *testing.T) {
	s := NewCorrupt(New(corruptTestConfig()), CorruptConfig{Seed: 1, WrongFillRate: 1})
	a := ip.Addr(0x0a000001)
	s.Fill(a, 6, LOC)
	if got := s.Probe(a); got.Kind != Hit || got.NextHop != 7 {
		t.Fatalf("probe after corrupted fill = %+v, want hit with 6^1=7", got)
	}
	if s.WrongFills() != 1 || s.Events() != 1 {
		t.Fatalf("WrongFills=%d Events=%d, want 1,1", s.WrongFills(), s.Events())
	}
}

// TestCorruptStoreDropInvalidate: a dropped InvalidateRange leaves the
// stale entry resident and reports 0 evictions.
func TestCorruptStoreDropInvalidate(t *testing.T) {
	s := NewCorrupt(New(corruptTestConfig()), CorruptConfig{Seed: 1, DropInvalidateRate: 1})
	a := ip.Addr(0x0a000001)
	s.Fill(a, 6, LOC)
	if n := s.InvalidateRange(a, a); n != 0 {
		t.Fatalf("dropped InvalidateRange returned %d evictions", n)
	}
	if got := s.Probe(a); got.Kind != Hit || got.NextHop != 6 {
		t.Fatalf("entry did not survive the dropped invalidation: %+v", got)
	}
	if s.DroppedInvalidations() != 1 {
		t.Fatalf("DroppedInvalidations = %d, want 1", s.DroppedInvalidations())
	}
}

// TestCorruptStoreDeterminism: the same seed and call sequence produce the
// same corruption schedule; a different seed produces a different one
// eventually.
func TestCorruptStoreDeterminism(t *testing.T) {
	run := func(seed uint64) []bool {
		s := NewCorrupt(New(corruptTestConfig()), CorruptConfig{Seed: seed, WrongFillRate: 0.5})
		fired := make([]bool, 64)
		for i := range fired {
			a := ip.Addr(0x0a000000 + uint32(i))
			s.Fill(a, 6, LOC)
			fired[i] = s.Probe(a).NextHop == 7
			s.InvalidateRange(a, a) // keep the cache small; draws only on rates > 0
		}
		return fired
	}
	a1, a2 := run(42), run(42)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same seed diverged at fill %d", i)
		}
	}
	b := run(43)
	same := true
	for i := range a1 {
		if a1[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules over 64 draws")
	}
}

// TestCorruptStoreMaxEvents: the cap bounds total injected corruptions
// across both kinds, Exhausted flips exactly at the cap, and post-cap
// calls pass through uncorrupted.
func TestCorruptStoreMaxEvents(t *testing.T) {
	s := NewCorrupt(New(corruptTestConfig()), CorruptConfig{
		Seed: 7, WrongFillRate: 1, DropInvalidateRate: 1, MaxEvents: 3,
	})
	if s.Exhausted() {
		t.Fatal("exhausted before any draw")
	}
	for i := 0; i < 10; i++ {
		a := ip.Addr(0x0a000000 + uint32(i))
		s.Fill(a, 6, LOC)
		s.InvalidateRange(a, a)
	}
	if s.Events() != 3 {
		t.Fatalf("Events = %d, want the cap 3", s.Events())
	}
	if !s.Exhausted() {
		t.Fatal("cap reached but not Exhausted")
	}
	if s.WrongFills()+s.DroppedInvalidations() != 3 {
		t.Fatalf("per-kind counters %d+%d != cap 3", s.WrongFills(), s.DroppedInvalidations())
	}
	// Past the cap every operation is faithful.
	a := ip.Addr(0x0b000001)
	s.Fill(a, 6, LOC)
	if got := s.Probe(a); got.Kind != Hit || got.NextHop != 6 {
		t.Fatalf("post-cap fill corrupted: %+v", got)
	}
	if n := s.InvalidateRange(a, a); n != 1 {
		t.Fatalf("post-cap InvalidateRange evicted %d, want 1", n)
	}
}

// TestCorruptStoreUncappedNeverExhausted: MaxEvents=0 means unlimited.
func TestCorruptStoreUncappedNeverExhausted(t *testing.T) {
	s := NewCorrupt(New(corruptTestConfig()), CorruptConfig{Seed: 7, WrongFillRate: 1})
	for i := 0; i < 20; i++ {
		s.Fill(ip.Addr(0x0a000000+uint32(i)), 6, LOC)
	}
	if s.Exhausted() {
		t.Fatal("uncapped store reported Exhausted")
	}
	if s.Events() != 20 {
		t.Fatalf("Events = %d, want 20", s.Events())
	}
}

// TestCorruptStoreAuditPassesThrough: AuditEntries must expose the cache
// as it really is — including corrupted values — or the scrubber could
// never find them.
func TestCorruptStoreAuditPassesThrough(t *testing.T) {
	s := NewCorrupt(New(corruptTestConfig()), CorruptConfig{Seed: 1, WrongFillRate: 1})
	a := ip.Addr(0x0a000001)
	s.Fill(a, 6, LOC)
	var sawAddr ip.Addr
	var sawNH rtable.NextHop
	n := s.AuditEntries(func(addr ip.Addr, nh rtable.NextHop) bool {
		sawAddr, sawNH = addr, nh
		return true
	})
	if n != 0 {
		t.Fatalf("audit evicted %d entries with an always-true visitor", n)
	}
	if sawAddr != a || sawNH != 7 {
		t.Fatalf("audit saw (%v,%d), want the corrupted (%v,7)", sawAddr, sawNH, a)
	}
}
