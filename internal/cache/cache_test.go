package cache

import (
	"testing"
	"testing/quick"

	"spal/internal/ip"
	"spal/internal/rtable"
	"spal/internal/stats"
)

// tiny returns a 2-set, 4-way cache so set behaviour is easy to force.
func tiny() *Cache {
	return New(Config{Blocks: 8, Assoc: 4, VictimBlocks: 2, MixPercent: 50, Policy: LRU})
}

// addrInSet produces the i-th distinct address mapping to the given set of
// a cache with numSets sets.
func addrInSet(set, i, numSets int) ip.Addr {
	return ip.Addr(set + i*numSets)
}

func TestMissRecordFillHit(t *testing.T) {
	c := tiny()
	a := ip.Addr(0x0a000001)
	if r := c.Probe(a); r.Kind != Miss {
		t.Fatalf("cold probe = %v", r.Kind)
	}
	if !c.RecordMiss(a, LOC, 1) {
		t.Fatal("RecordMiss refused with free blocks")
	}
	// Second packet for the same address parks.
	if r := c.Probe(a); r.Kind != HitWaiting {
		t.Fatalf("probe during wait = %v", r.Kind)
	}
	c.AddWaiter(a, 2)
	released := c.Fill(a, 7, LOC)
	if len(released) != 2 || released[0] != 1 || released[1] != 2 {
		t.Fatalf("released = %v", released)
	}
	r := c.Probe(a)
	if r.Kind != Hit || r.NextHop != 7 || r.Origin != LOC {
		t.Fatalf("after fill: %+v", r)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 1 || s.HitWaitings != 1 || s.Recorded != 1 || s.Fills != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRecordMissPanicsOnResident(t *testing.T) {
	c := tiny()
	a := ip.Addr(5)
	c.RecordMiss(a, LOC, 1)
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	c.RecordMiss(a, LOC, 2)
}

func TestAddWaiterPanicsWithoutBlock(t *testing.T) {
	c := tiny()
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	c.AddWaiter(9, 1)
}

func TestBypassWhenAllWaiting(t *testing.T) {
	// γ=50 on a 4-way set: two blocks per class. Two waiting LOC blocks
	// exhaust the LOC allocation; a third LOC miss must bypass.
	c := tiny()
	numSets := 2
	for i := 0; i < 2; i++ {
		if !c.RecordMiss(addrInSet(0, i, numSets), LOC, int64(i)) {
			t.Fatalf("RecordMiss %d refused", i)
		}
	}
	if c.RecordMiss(addrInSet(0, 2, numSets), LOC, 99) {
		t.Fatal("expected bypass: LOC allocation full of waiting blocks")
	}
	if c.Stats().Bypasses != 1 {
		t.Errorf("Bypasses = %d", c.Stats().Bypasses)
	}
	// The REM allocation of the same set is independent...
	if !c.RecordMiss(addrInSet(0, 3, numSets), REM, 7) {
		t.Error("REM allocation should still accept")
	}
	// ...and so is the other set.
	if !c.RecordMiss(addrInSet(1, 0, numSets), LOC, 5) {
		t.Error("other set should accept")
	}
}

func TestWaitingBlocksNeverEvicted(t *testing.T) {
	c := tiny()
	numSets := 2
	w := addrInSet(0, 0, numSets)
	c.RecordMiss(w, LOC, 1)
	// Fill the rest of the set with complete entries and force traffic.
	for i := 1; i < 10; i++ {
		a := addrInSet(0, i, numSets)
		if c.Probe(a).Kind == Miss {
			if c.RecordMiss(a, LOC, int64(i)) {
				c.Fill(a, rtable.NextHop(i), LOC)
			}
		}
	}
	if r := c.Probe(w); r.Kind != HitWaiting {
		t.Fatalf("waiting block was evicted: %v", r.Kind)
	}
	// Its waiter is still released by the eventual fill.
	if got := c.Fill(w, 3, LOC); len(got) != 1 || got[0] != 1 {
		t.Fatalf("released = %v", got)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(Config{Blocks: 8, Assoc: 4, VictimBlocks: 0, MixPercent: 100, Policy: LRU})
	numSets := 2
	addrs := make([]ip.Addr, 5)
	for i := range addrs {
		addrs[i] = addrInSet(0, i, numSets)
	}
	for _, a := range addrs[:4] {
		c.RecordMiss(a, REM, 0)
		c.Fill(a, 1, REM)
	}
	// Touch addrs[0] so addrs[1] becomes LRU.
	c.Probe(addrs[0])
	c.RecordMiss(addrs[4], REM, 0)
	c.Fill(addrs[4], 1, REM)
	if c.Probe(addrs[1]).Kind != Miss {
		t.Error("addrs[1] should have been the LRU victim")
	}
	if c.Probe(addrs[0]).Kind != Hit {
		t.Error("addrs[0] was touched and must survive")
	}
}

func TestFIFOIgnoresTouches(t *testing.T) {
	c := New(Config{Blocks: 8, Assoc: 4, VictimBlocks: 0, MixPercent: 100, Policy: FIFO})
	numSets := 2
	addrs := make([]ip.Addr, 5)
	for i := range addrs {
		addrs[i] = addrInSet(0, i, numSets)
	}
	for _, a := range addrs[:4] {
		c.RecordMiss(a, REM, 0)
		c.Fill(a, 1, REM)
	}
	c.Probe(addrs[0]) // FIFO must not refresh
	c.RecordMiss(addrs[4], REM, 0)
	c.Fill(addrs[4], 1, REM)
	if c.Probe(addrs[0]).Kind != Miss {
		t.Error("FIFO should evict the oldest fill (addrs[0])")
	}
}

func TestMixPolicyPrefersOverquotaClass(t *testing.T) {
	// γ=25% of 4 blocks -> REM quota 1. Two REM entries -> REM evicted
	// first even if a LOC entry is older.
	c := New(Config{Blocks: 8, Assoc: 4, VictimBlocks: 0, MixPercent: 25, Policy: LRU})
	numSets := 2
	loc1, loc2 := addrInSet(0, 0, numSets), addrInSet(0, 1, numSets)
	rem1, rem2 := addrInSet(0, 2, numSets), addrInSet(0, 3, numSets)
	for _, x := range []struct {
		a ip.Addr
		o Origin
	}{{loc1, LOC}, {loc2, LOC}, {rem1, REM}, {rem2, REM}} {
		c.RecordMiss(x.a, x.o, 0)
		c.Fill(x.a, 1, x.o)
	}
	// New LOC entry: REM is over quota (2 > 1) -> evict oldest REM (rem1).
	nw := addrInSet(0, 4, numSets)
	c.RecordMiss(nw, LOC, 0)
	c.Fill(nw, 1, LOC)
	if c.Probe(rem1).Kind != Miss {
		t.Error("rem1 should be evicted (REM over quota)")
	}
	if c.Probe(loc1).Kind == Miss {
		t.Error("loc1 must survive despite being oldest overall")
	}
}

func TestMixPolicyZeroPercent(t *testing.T) {
	// γ=0: no blocks are devoted to REM results, so a REM miss bypasses
	// the cache entirely and a REM reply is not inserted.
	c := New(Config{Blocks: 8, Assoc: 4, VictimBlocks: 0, MixPercent: 0, Policy: LRU})
	numSets := 2
	rem := addrInSet(0, 0, numSets)
	if c.RecordMiss(rem, REM, 0) {
		t.Fatal("γ=0 must refuse REM blocks")
	}
	c.Fill(rem, 1, REM) // best-effort insert must also be declined
	if c.Probe(rem).Kind != Miss {
		t.Error("REM result cached despite γ=0")
	}
	// LOC gets the whole set.
	for i := 1; i <= 4; i++ {
		a := addrInSet(0, i, numSets)
		if !c.RecordMiss(a, LOC, 0) {
			t.Fatalf("LOC insert %d refused", i)
		}
		c.Fill(a, 1, LOC)
	}
	for i := 1; i <= 4; i++ {
		if c.Probe(addrInSet(0, i, numSets)).Kind != Hit {
			t.Errorf("LOC entry %d should occupy the set", i)
		}
	}
}

func TestMixPolicyHundredPercent(t *testing.T) {
	// γ=100: the mirror image — LOC results are never cached.
	c := New(Config{Blocks: 8, Assoc: 4, VictimBlocks: 0, MixPercent: 100, Policy: LRU})
	loc := addrInSet(0, 0, 2)
	if c.RecordMiss(loc, LOC, 0) {
		t.Fatal("γ=100 must refuse LOC blocks")
	}
	c.Fill(loc, 1, LOC)
	if c.Probe(loc).Kind != Miss {
		t.Error("LOC result cached despite γ=100")
	}
}

func TestMixHardAllocation(t *testing.T) {
	// γ=50 on a 4-way set: inserting a third REM entry must replace
	// within the REM class even though the set still has free blocks.
	c := New(Config{Blocks: 8, Assoc: 4, VictimBlocks: 0, MixPercent: 50, Policy: LRU})
	numSets := 2
	r0, r1, r2 := addrInSet(0, 0, numSets), addrInSet(0, 1, numSets), addrInSet(0, 2, numSets)
	for _, a := range []ip.Addr{r0, r1} {
		c.RecordMiss(a, REM, 0)
		c.Fill(a, 1, REM)
	}
	c.RecordMiss(r2, REM, 0)
	c.Fill(r2, 1, REM)
	if c.Probe(r0).Kind != Miss {
		t.Error("r0 (LRU REM) should be replaced despite free blocks")
	}
	if c.Probe(r1).Kind != Hit || c.Probe(r2).Kind != Hit {
		t.Error("REM allocation should hold exactly r1 and r2")
	}
	_, rem, _ := c.Occupancy()
	if rem != 2 {
		t.Errorf("REM occupancy = %d, want quota 2", rem)
	}
}

func TestVictimCacheCatchesConflictEvictions(t *testing.T) {
	c := New(Config{Blocks: 8, Assoc: 4, VictimBlocks: 2, MixPercent: 0, Policy: LRU})
	numSets := 2
	addrs := make([]ip.Addr, 6)
	for i := range addrs {
		addrs[i] = addrInSet(0, i, numSets)
	}
	for _, a := range addrs[:5] { // fifth insert evicts addrs[0] to victim
		c.RecordMiss(a, LOC, 0)
		c.Fill(a, rtable.NextHop(a), LOC)
	}
	r := c.Probe(addrs[0])
	if r.Kind != HitVictim || r.NextHop != rtable.NextHop(addrs[0]) {
		t.Fatalf("victim probe = %+v", r)
	}
	// Promotion: the block is back in the main set now.
	if got := c.Probe(addrs[0]); got.Kind != Hit {
		t.Errorf("after promotion kind = %v", got.Kind)
	}
	if c.Stats().HitVictims != 1 {
		t.Errorf("HitVictims = %d", c.Stats().HitVictims)
	}
}

func TestVictimDisabled(t *testing.T) {
	c := New(Config{Blocks: 8, Assoc: 4, VictimBlocks: 0, MixPercent: 50, Policy: LRU})
	numSets := 2
	for i := 0; i < 5; i++ {
		a := addrInSet(0, i, numSets)
		c.RecordMiss(a, LOC, 0)
		c.Fill(a, 1, LOC)
	}
	if c.Probe(addrInSet(0, 0, numSets)).Kind != Miss {
		t.Error("no victim cache: eviction is final")
	}
}

func TestWaitListStats(t *testing.T) {
	c := tiny()
	a := ip.Addr(1)
	c.RecordMiss(a, LOC, 1)
	c.AddWaiter(a, 2)
	c.AddWaiter(a, 3)
	s := c.Stats()
	if s.Parked != 2 {
		t.Errorf("Parked = %d, want 2", s.Parked)
	}
	if s.MaxWaitList != 3 { // first waiter from RecordMiss + two parked
		t.Errorf("MaxWaitList = %d, want 3", s.MaxWaitList)
	}
}

func TestFlushReturnsOrphans(t *testing.T) {
	c := tiny()
	a, b := ip.Addr(1), ip.Addr(2)
	c.RecordMiss(a, LOC, 10)
	c.AddWaiter(a, 11)
	c.RecordMiss(b, REM, 20)
	c.Fill(b, 1, REM)
	orphans := c.Flush()
	if len(orphans) != 2 {
		t.Fatalf("orphans = %v", orphans)
	}
	if c.Probe(a).Kind != Miss || c.Probe(b).Kind != Miss {
		t.Error("flush must invalidate everything")
	}
	loc, rem, waiting := c.Occupancy()
	if loc != 0 || rem != 0 || waiting != 0 {
		t.Errorf("occupancy after flush = %d/%d/%d", loc, rem, waiting)
	}
}

func TestFillWithoutReservationInserts(t *testing.T) {
	c := tiny()
	a := ip.Addr(3)
	if got := c.Fill(a, 9, REM); got != nil {
		t.Fatalf("waiters = %v", got)
	}
	r := c.Probe(a)
	if r.Kind != Hit || r.NextHop != 9 || r.Origin != REM {
		t.Fatalf("best-effort insert failed: %+v", r)
	}
}

func TestDuplicateFillRefreshes(t *testing.T) {
	c := tiny()
	a := ip.Addr(4)
	c.RecordMiss(a, LOC, 1)
	c.Fill(a, 5, LOC)
	if got := c.Fill(a, 6, REM); got != nil {
		t.Fatalf("duplicate fill released %v", got)
	}
	r := c.Probe(a)
	if r.NextHop != 6 || r.Origin != REM {
		t.Fatalf("refresh failed: %+v", r)
	}
}

func TestGeometryValidation(t *testing.T) {
	bad := []Config{
		{Blocks: 0, Assoc: 4},
		{Blocks: 7, Assoc: 4},
		{Blocks: 24, Assoc: 4}, // 6 sets: not a power of two
		{Blocks: 8, Assoc: 4, MixPercent: 101},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Blocks != 4096 || cfg.Assoc != 4 || cfg.VictimBlocks != 8 || cfg.MixPercent != 50 {
		t.Errorf("DefaultConfig = %+v", cfg)
	}
	New(cfg) // must not panic
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("empty HitRate should be 0")
	}
	s = Stats{Probes: 10, Hits: 4, HitVictims: 1}
	if s.HitRate() != 0.5 {
		t.Errorf("HitRate = %v", s.HitRate())
	}
}

func TestOriginString(t *testing.T) {
	if LOC.String() != "LOC" || REM.String() != "REM" {
		t.Error("Origin strings wrong")
	}
}

func TestRandomPolicyStillCorrect(t *testing.T) {
	c := New(Config{Blocks: 8, Assoc: 4, VictimBlocks: 2, MixPercent: 50, Policy: Random, Seed: 1})
	rng := stats.NewRNG(2)
	// Hammer with random addresses; invariants: probe-after-fill hits,
	// occupancy never exceeds capacity.
	for i := 0; i < 5000; i++ {
		a := ip.Addr(rng.Intn(64))
		switch c.Probe(a).Kind {
		case Miss:
			if c.RecordMiss(a, Origin(rng.Intn(2)), int64(i)) {
				c.Fill(a, 1, Origin(rng.Intn(2)))
			}
		case HitWaiting:
			t.Fatal("no waiting blocks should exist: fills are immediate")
		}
		if c.Probe(a).Kind == Miss {
			// Only legal if the insert was bypassed, which cannot happen
			// with immediate fills (no waiting blocks).
			t.Fatal("address vanished immediately after fill")
		}
	}
	loc, rem, waiting := c.Occupancy()
	if loc+rem+waiting > 8 {
		t.Errorf("occupancy exceeds capacity: %d/%d/%d", loc, rem, waiting)
	}
}

// Property: after an arbitrary operation sequence, a filled address that
// was never evicted (tracked shadow) still returns its latest next hop.
func TestShadowConsistencyQuick(t *testing.T) {
	f := func(ops []uint32) bool {
		c := New(Config{Blocks: 16, Assoc: 4, VictimBlocks: 4, MixPercent: 50, Policy: LRU})
		shadow := map[ip.Addr]rtable.NextHop{}
		for _, op := range ops {
			a := ip.Addr(op % 97)
			nh := rtable.NextHop(op % 13)
			switch c.Probe(a).Kind {
			case Miss:
				if c.RecordMiss(a, LOC, 0) {
					c.Fill(a, nh, LOC)
					shadow[a] = nh
				}
			case Hit, HitVictim:
				// Cached value must match the last fill we performed.
				// (Entries may have been evicted and refilled; shadow holds
				// the latest fill, which is the only fill for that addr
				// since fills always use op-derived nh... re-fill paths
				// update shadow too.)
			case HitWaiting:
				return false // impossible: fills are immediate
			}
			if r := c.Probe(a); r.Kind == Hit || r.Kind == HitVictim {
				if want, ok := shadow[a]; ok && r.NextHop != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDuplicateFillRefreshesLRUStamp(t *testing.T) {
	// Regression: the duplicate-fill path updated the result but not the
	// replacement stamp, so under LRU a just-refreshed entry looked like
	// the oldest in its set and was evicted first.
	c := New(Config{Blocks: 4, Assoc: 4, MixPercent: 0, Policy: LRU})
	a, b := ip.Addr(1), ip.Addr(2)
	c.Fill(a, 10, LOC)
	c.Fill(b, 11, LOC)
	c.Fill(ip.Addr(3), 12, LOC)
	c.Fill(ip.Addr(4), 13, LOC)
	c.Fill(a, 20, LOC)          // duplicate fill: a is now the most recent entry
	c.Fill(ip.Addr(5), 14, LOC) // set full: must evict b, the true LRU
	if r := c.Probe(a); r.Kind != Hit || r.NextHop != 20 {
		t.Fatalf("refreshed entry evicted: %+v", r)
	}
	if r := c.Probe(b); r.Kind != Miss {
		t.Fatalf("LRU entry survived: %+v", r)
	}
}
