// Corruption-injection wrapper for the LR-cache: a Store that, on a
// seeded deterministic schedule, stamps a fill with a wrong next hop or
// silently drops an InvalidateRange — the two cache-side failure modes the
// integrity scrubber must catch (a wrong resident value, and a stale value
// that should have been evicted by a route update). Everything else passes
// through unchanged.
package cache

import (
	"sync/atomic"

	"spal/internal/ip"
	"spal/internal/metrics"
	"spal/internal/rtable"
)

// CorruptConfig parameterizes a CorruptStore. Rates are per-call
// probabilities in [0, 1]; the same seed always produces the same
// corruption schedule for the same call sequence.
type CorruptConfig struct {
	Seed uint64
	// WrongFillRate corrupts Fill values: the stored next hop is the true
	// value XOR 1 (always different, never NoNextHop for small next hops).
	WrongFillRate float64
	// DropInvalidateRate silently swallows InvalidateRange calls.
	DropInvalidateRate float64
	// MaxEvents caps the total corruptions injected (both kinds combined);
	// 0 means unlimited. A finite cap lets tests assert that the system
	// reaches a corruption-free steady state after the last repair.
	MaxEvents int64
}

// CorruptStore wraps a Store with seeded fill/invalidate corruption.
type CorruptStore struct {
	inner Store
	cfg   CorruptConfig

	n          atomic.Uint64 // draw counter (schedule position)
	events     atomic.Int64  // corruptions injected so far
	wrongFills atomic.Int64
	droppedInv atomic.Int64
}

// NewCorrupt wraps inner with the given corruption schedule.
func NewCorrupt(inner Store, cfg CorruptConfig) *CorruptStore {
	return &CorruptStore{inner: inner, cfg: cfg}
}

// splitmix64 is the standard SplitMix64 finalizer; one step turns a
// counter into a well-mixed 64-bit value (same generator as the router's
// fault injector, duplicated here to keep the dependency arrow pointing
// from router to cache).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw advances the schedule and reports whether an event with the given
// rate fires, respecting the MaxEvents cap.
func (s *CorruptStore) draw(rate float64) bool {
	if rate <= 0 {
		return false
	}
	h := splitmix64(s.cfg.Seed ^ s.n.Add(1))
	if float64(h&0x1f_ffff)/float64(1<<21) >= rate {
		return false
	}
	if s.cfg.MaxEvents > 0 && s.events.Add(1) > s.cfg.MaxEvents {
		s.events.Add(-1)
		return false
	}
	if s.cfg.MaxEvents == 0 {
		s.events.Add(1)
	}
	return true
}

// WrongFills returns the number of fills stamped with a corrupted value.
func (s *CorruptStore) WrongFills() int64 { return s.wrongFills.Load() }

// DroppedInvalidations returns the number of swallowed InvalidateRange
// calls.
func (s *CorruptStore) DroppedInvalidations() int64 { return s.droppedInv.Load() }

// Events returns the total corruptions injected.
func (s *CorruptStore) Events() int64 { return s.events.Load() }

// Exhausted reports whether the MaxEvents cap has been reached (always
// false for an uncapped store).
func (s *CorruptStore) Exhausted() bool {
	return s.cfg.MaxEvents > 0 && s.events.Load() >= s.cfg.MaxEvents
}

// Inner returns the wrapped store.
func (s *CorruptStore) Inner() Store { return s.inner }

// Probe implements Store.
func (s *CorruptStore) Probe(a ip.Addr) ProbeResult { return s.inner.Probe(a) }

// RecordMiss implements Store.
func (s *CorruptStore) RecordMiss(a ip.Addr, origin Origin, waiter int64) bool {
	return s.inner.RecordMiss(a, origin, waiter)
}

// Fill implements Store, occasionally stamping the block with a wrong
// next hop. Waiters still receive the correct value from the reply path —
// the corruption poisons only what later probes will hit, which is
// exactly the silent-wrong-verdict failure the scrubber exists for.
func (s *CorruptStore) Fill(a ip.Addr, nh rtable.NextHop, origin Origin) []int64 {
	if s.draw(s.cfg.WrongFillRate) {
		s.wrongFills.Add(1)
		nh ^= 1
	}
	return s.inner.Fill(a, nh, origin)
}

// Flush implements Store.
func (s *CorruptStore) Flush() []int64 { return s.inner.Flush() }

// InvalidateRange implements Store, occasionally dropping the call so a
// stale entry survives a route update.
func (s *CorruptStore) InvalidateRange(lo, hi ip.Addr) int {
	if s.draw(s.cfg.DropInvalidateRate) {
		s.droppedInv.Add(1)
		return 0
	}
	return s.inner.InvalidateRange(lo, hi)
}

// AuditEntries implements Store; audits pass through uncorrupted (the
// scrubber must see the cache as it really is).
func (s *CorruptStore) AuditEntries(visit func(a ip.Addr, nh rtable.NextHop) bool) int {
	return s.inner.AuditEntries(visit)
}

// Stats implements Store.
func (s *CorruptStore) Stats() Stats { return s.inner.Stats() }

// Occupancy implements Store.
func (s *CorruptStore) Occupancy() (loc, rem, waiting int) { return s.inner.Occupancy() }

// MetricsInto implements Store.
func (s *CorruptStore) MetricsInto(sn *metrics.Snapshot, labels ...metrics.Label) {
	s.inner.MetricsInto(sn, labels...)
}

var _ Store = (*CorruptStore)(nil)
