package cache

import (
	"testing"

	"spal/internal/ip"
	"spal/internal/rtable"
	"spal/internal/stats"
)

// model is a deliberately naive LR-cache with the same externally visible
// semantics as Cache (LRU policy, hard γ allocation, W blocks, victim
// cache, flush), written with maps and linear scans so its correctness is
// obvious. The random-operation test below drives both implementations in
// lockstep and requires identical observable behaviour — a model-checking
// net over the optimized implementation.
type model struct {
	cfg    Config
	sets   []map[ip.Addr]*mEntry
	order  []ip.Addr // global LRU order, most recent last (addresses unique)
	victim []mVictim
	clock  int
}

type mEntry struct {
	waiting bool
	origin  Origin
	nextHop rtable.NextHop
	waiters []int64
	touched int
}

type mVictim struct {
	addr    ip.Addr
	origin  Origin
	nextHop rtable.NextHop
	touched int
}

func newModel(cfg Config) *model {
	m := &model{cfg: cfg}
	for i := 0; i < cfg.Blocks/cfg.Assoc; i++ {
		m.sets = append(m.sets, map[ip.Addr]*mEntry{})
	}
	return m
}

func (m *model) set(a ip.Addr) map[ip.Addr]*mEntry {
	return m.sets[int(a)&(len(m.sets)-1)]
}

func (m *model) classCount(set map[ip.Addr]*mEntry, o Origin) int {
	n := 0
	for _, e := range set {
		if e.origin == o {
			n++
		}
	}
	return n
}

// lruVictim returns the least recently touched non-waiting entry of the
// class (or of any class when restrict is false), or zero when none.
func (m *model) lruVictim(set map[ip.Addr]*mEntry, class Origin, restrict bool) (ip.Addr, bool) {
	var best ip.Addr
	bestT := int(^uint(0) >> 1)
	found := false
	for a, e := range set {
		if e.waiting || (restrict && e.origin != class) {
			continue
		}
		if e.touched < bestT {
			best, bestT, found = a, e.touched, true
		}
	}
	return best, found
}

func (m *model) quota(o Origin) int {
	remQ := m.cfg.Assoc * m.cfg.MixPercent / 100
	if o == REM {
		return remQ
	}
	return m.cfg.Assoc - remQ
}

// chooseSlot mirrors Cache.chooseVictim: returns the address to evict
// (evict=true) or indicates a free slot (evict=false), or ok=false when
// the insert must be declined.
func (m *model) chooseSlot(set map[ip.Addr]*mEntry, class Origin) (victim ip.Addr, evict, ok bool) {
	if m.classCount(set, class) >= m.quota(class) {
		v, found := m.lruVictim(set, class, true)
		return v, true, found
	}
	if len(set) < m.cfg.Assoc {
		return 0, false, true
	}
	other := LOC
	if class == LOC {
		other = REM
	}
	if m.classCount(set, other) > m.quota(other) {
		if v, found := m.lruVictim(set, other, true); found {
			return v, true, found
		}
	}
	v, found := m.lruVictim(set, 0, false)
	return v, true, found
}

func (m *model) evictToVictim(a ip.Addr, e *mEntry) {
	if m.cfg.VictimBlocks == 0 {
		return
	}
	m.clock++
	v := mVictim{addr: a, origin: e.origin, nextHop: e.nextHop, touched: m.clock}
	if len(m.victim) < m.cfg.VictimBlocks {
		m.victim = append(m.victim, v)
		return
	}
	oldest := 0
	for i := range m.victim {
		if m.victim[i].touched < m.victim[oldest].touched {
			oldest = i
		}
	}
	m.victim[oldest] = v
}

func (m *model) probe(a ip.Addr) ProbeResult {
	set := m.set(a)
	if e, ok := set[a]; ok {
		if e.waiting {
			return ProbeResult{Kind: HitWaiting}
		}
		m.clock++
		e.touched = m.clock
		return ProbeResult{Kind: Hit, NextHop: e.nextHop, Origin: e.origin}
	}
	for i := range m.victim {
		if m.victim[i].addr == a {
			v := m.victim[i]
			res := ProbeResult{Kind: HitVictim, NextHop: v.nextHop, Origin: v.origin}
			// Promote: insert back, demoting the chosen slot into this
			// victim position.
			victim, evict, ok := m.chooseSlot(set, v.origin)
			if !ok {
				m.clock++
				m.victim[i].touched = m.clock
				return res
			}
			if evict {
				e := set[victim]
				delete(set, victim)
				m.clock++
				m.victim[i] = mVictim{addr: victim, origin: e.origin, nextHop: e.nextHop, touched: m.clock}
			} else {
				m.victim = append(m.victim[:i], m.victim[i+1:]...)
			}
			m.clock++
			set[a] = &mEntry{origin: v.origin, nextHop: v.nextHop, touched: m.clock}
			return res
		}
	}
	return ProbeResult{Kind: Miss}
}

func (m *model) recordMiss(a ip.Addr, origin Origin, waiter int64) bool {
	set := m.set(a)
	victim, evict, ok := m.chooseSlot(set, origin)
	if !ok {
		return false
	}
	if evict {
		e := set[victim]
		delete(set, victim)
		m.evictToVictim(victim, e)
	}
	m.clock++
	set[a] = &mEntry{waiting: true, origin: origin, waiters: []int64{waiter}, touched: m.clock}
	return true
}

func (m *model) addWaiter(a ip.Addr, w int64) {
	m.set(a)[a].waiters = append(m.set(a)[a].waiters, w)
}

func (m *model) fill(a ip.Addr, nh rtable.NextHop, origin Origin) []int64 {
	set := m.set(a)
	if e, ok := set[a]; ok {
		if !e.waiting {
			e.nextHop = nh
			e.origin = origin
			return nil
		}
		w := e.waiters
		e.waiting = false
		e.waiters = nil
		e.nextHop = nh
		e.origin = origin
		m.clock++
		e.touched = m.clock
		return w
	}
	if victim, evict, ok := m.chooseSlot(set, origin); ok {
		if evict {
			e := set[victim]
			delete(set, victim)
			m.evictToVictim(victim, e)
		}
		m.clock++
		set[a] = &mEntry{origin: origin, nextHop: nh, touched: m.clock}
	}
	return nil
}

func (m *model) flush() {
	for i := range m.sets {
		m.sets[i] = map[ip.Addr]*mEntry{}
	}
	m.victim = nil
}

// TestModelEquivalence drives Cache and the naive model with the same
// random operation stream and demands identical observable outcomes.
func TestModelEquivalence(t *testing.T) {
	for _, mix := range []int{0, 25, 50, 100} {
		for _, victims := range []int{0, 2} {
			cfg := Config{Blocks: 16, Assoc: 4, VictimBlocks: victims, MixPercent: mix, Policy: LRU}
			c := New(cfg)
			m := newModel(cfg)
			rng := stats.NewRNG(uint64(mix*7 + victims))
			pendingC := map[ip.Addr]bool{}
			for op := 0; op < 30000; op++ {
				a := ip.Addr(rng.Intn(48))
				switch rng.Intn(10) {
				case 9:
					if rng.Intn(50) == 0 { // occasional flush
						c.Flush()
						m.flush()
						for k := range pendingC {
							delete(pendingC, k)
						}
						continue
					}
					fallthrough
				default:
					rc := c.Probe(a)
					rm := m.probe(a)
					if rc.Kind != rm.Kind || rc.NextHop != rm.NextHop || rc.Origin != rm.Origin {
						t.Fatalf("mix=%d vic=%d op %d addr %d: probe %+v != model %+v",
							mix, victims, op, a, rc, rm)
					}
					switch rc.Kind {
					case Miss:
						origin := Origin(rng.Intn(2))
						okC := c.RecordMiss(a, origin, int64(op))
						okM := m.recordMiss(a, origin, int64(op))
						if okC != okM {
							t.Fatalf("mix=%d vic=%d op %d: RecordMiss %v != %v", mix, victims, op, okC, okM)
						}
						if okC {
							pendingC[a] = true
							// Fill immediately half the time, later otherwise.
							if rng.Bool(0.5) {
								nh := rtable.NextHop(rng.Intn(9))
								fo := Origin(rng.Intn(2))
								wc := c.Fill(a, nh, fo)
								wm := m.fill(a, nh, fo)
								if len(wc) != len(wm) {
									t.Fatalf("fill waiters %v != %v", wc, wm)
								}
								delete(pendingC, a)
							}
						}
					case HitWaiting:
						c.AddWaiter(a, int64(op))
						m.addWaiter(a, int64(op))
						if rng.Bool(0.3) {
							nh := rtable.NextHop(rng.Intn(9))
							fo := Origin(rng.Intn(2))
							wc := c.Fill(a, nh, fo)
							wm := m.fill(a, nh, fo)
							if len(wc) != len(wm) {
								t.Fatalf("fill waiters %v != %v", wc, wm)
							}
							delete(pendingC, a)
						}
					}
				}
			}
		}
	}
}
