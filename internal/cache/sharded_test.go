package cache

import (
	"testing"

	"spal/internal/ip"
	"spal/internal/metrics"
	"spal/internal/rtable"
	"spal/internal/stats"
)

func TestShardedBasicFlow(t *testing.T) {
	cfg := DefaultConfig()
	s := NewSharded(cfg, 4)
	if s.NumShards() != 4 {
		t.Fatalf("NumShards = %d", s.NumShards())
	}
	a := ip.Addr(0x0a000001)
	if got := s.Probe(a); got.Kind != Miss {
		t.Fatalf("cold probe: %v", got.Kind)
	}
	if !s.RecordMiss(a, LOC, 1) {
		t.Fatal("RecordMiss declined on an empty cache")
	}
	if got := s.Probe(a); got.Kind != HitWaiting {
		t.Fatalf("probe after RecordMiss: %v", got.Kind)
	}
	if w := s.Fill(a, 7, LOC); len(w) != 1 || w[0] != 1 {
		t.Fatalf("Fill returned waiters %v", w)
	}
	if got := s.Probe(a); got.Kind != Hit || got.NextHop != 7 || got.Origin != LOC {
		t.Fatalf("probe after Fill: %+v", got)
	}
	// The same address with different low bits must land in a different
	// shard yet stay independent.
	b := a ^ 1
	if got := s.Probe(b); got.Kind != Miss {
		t.Fatalf("sibling address hit unexpectedly: %v", got.Kind)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Fills != 1 {
		t.Fatalf("aggregate stats: %+v", st)
	}
	if orphans := s.Flush(); len(orphans) != 0 {
		t.Fatalf("Flush orphans: %v", orphans)
	}
	if got := s.Probe(a); got.Kind != Miss {
		t.Fatalf("probe after Flush: %v", got.Kind)
	}
}

// TestShardedMatchesSingleCache drives an identical miss/fill/probe
// workload through one Cache and through a Sharded with the same total
// capacity, checking every verdict agrees. The two layouts only behave
// identically while no set exceeds its class quota (eviction order then
// depends on the set mapping), so the addresses are consecutive: that
// puts at most one entry in any set of either layout.
func TestShardedMatchesSingleCache(t *testing.T) {
	cfg := Config{Blocks: 1024, Assoc: 4, VictimBlocks: 8, MixPercent: 50, Policy: LRU}
	single := New(cfg)
	shardedStore := NewSharded(cfg, 8)
	rng := stats.NewRNG(77)
	addrs := make([]ip.Addr, 200)
	for i := range addrs {
		addrs[i] = ip.Addr(i)
	}
	for i := len(addrs) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		addrs[i], addrs[j] = addrs[j], addrs[i]
	}
	for _, st := range []Store{single, shardedStore} {
		for _, a := range addrs {
			if st.Probe(a).Kind == Miss {
				st.RecordMiss(a, REM, 0)
				st.Fill(a, rtable.NextHop(a&0xff), REM)
			}
		}
	}
	for _, a := range addrs {
		got := shardedStore.Probe(a)
		want := single.Probe(a)
		if got.Kind != want.Kind || got.NextHop != want.NextHop {
			t.Fatalf("Probe(%#x): sharded %+v, single %+v", a, got, want)
		}
	}
	loc, rem, waiting := shardedStore.Occupancy()
	if loc != 0 || waiting != 0 || rem != len(dedup(addrs)) {
		t.Fatalf("occupancy loc=%d rem=%d waiting=%d, want rem=%d", loc, rem, waiting, len(dedup(addrs)))
	}
}

func dedup(addrs []ip.Addr) []ip.Addr {
	seen := map[ip.Addr]bool{}
	var out []ip.Addr
	for _, a := range addrs {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

func TestShardedMetricsAggregate(t *testing.T) {
	s := NewSharded(DefaultConfig(), 2)
	a := ip.Addr(42)
	s.Probe(a)
	s.RecordMiss(a, LOC, 0)
	s.Fill(a, 3, LOC)
	s.Probe(a)
	var sn metrics.Snapshot
	s.MetricsInto(&sn, metrics.L("lc", "0"))
	if v, ok := sn.Value(MetricProbes, metrics.L("lc", "0")); !ok || v != 2 {
		t.Fatalf("probes metric = %v ok=%v", v, ok)
	}
	if v, ok := sn.Value(MetricHits, metrics.L("lc", "0")); !ok || v != 1 {
		t.Fatalf("hits metric = %v ok=%v", v, ok)
	}
}

func TestShardedPanicsOnBadGeometry(t *testing.T) {
	for _, tc := range []struct {
		name   string
		shards int
		blocks int
	}{
		{"not-power-of-two", 3, 4096},
		{"too-few", 1, 4096},
		{"indivisible", 8, 4100},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewSharded did not panic", tc.name)
				}
			}()
			cfg := DefaultConfig()
			cfg.Blocks = tc.blocks
			NewSharded(cfg, tc.shards)
		}()
	}
}
