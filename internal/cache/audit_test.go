package cache

import (
	"strings"
	"testing"

	"spal/internal/ip"
	"spal/internal/rtable"
)

// TestAuditEntriesVisitsAndEvicts: the audit sees every complete entry
// (sets and victim) with its stored value, skips waiting blocks, and
// evicts exactly the entries the visitor rejects.
func TestAuditEntriesVisitsAndEvicts(t *testing.T) {
	c := New(corruptTestConfig())
	addrs := []ip.Addr{0x0a000001, 0x0a000002, 0x0b000003}
	for i, a := range addrs {
		c.Fill(a, rtable.NextHop(10+i), LOC)
	}
	waiting := ip.Addr(0x0c000004)
	c.RecordMiss(waiting, LOC, 99) // waiting block: value undecided, must be skipped

	seen := map[ip.Addr]rtable.NextHop{}
	if n := c.AuditEntries(func(a ip.Addr, nh rtable.NextHop) bool {
		seen[a] = nh
		return true
	}); n != 0 {
		t.Fatalf("always-true visitor evicted %d entries", n)
	}
	if len(seen) != len(addrs) {
		t.Fatalf("audit saw %d entries, want %d (waiting block must be skipped)", len(seen), len(addrs))
	}
	for i, a := range addrs {
		if seen[a] != rtable.NextHop(10+i) {
			t.Fatalf("audit saw %v -> %d, want %d", a, seen[a], 10+i)
		}
	}

	// Reject exactly one address: it must be evicted, the rest must stay.
	evict := addrs[1]
	if n := c.AuditEntries(func(a ip.Addr, nh rtable.NextHop) bool { return a != evict }); n != 1 {
		t.Fatalf("single-reject audit evicted %d entries, want 1", n)
	}
	if got := c.Probe(evict); got.Kind != Miss {
		t.Fatalf("rejected entry still resident: %+v", got)
	}
	if got := c.Probe(addrs[0]); got.Kind != Hit {
		t.Fatalf("surviving entry lost: %+v", got)
	}
	// The waiting block is untouched by audits.
	if got := c.Probe(waiting); got.Kind != HitWaiting {
		t.Fatalf("waiting block disturbed by audit: %+v", got)
	}
}

// TestAuditEntriesVictimCache: entries demoted into the victim cache are
// audited (and evictable) too.
func TestAuditEntriesVictimCache(t *testing.T) {
	cfg := Config{Blocks: 8, Assoc: 2, VictimBlocks: 4, MixPercent: 50, Policy: LRU}
	c := New(cfg)
	// Overfill one set so a demotion lands in the victim cache: addresses
	// with identical index bits conflict.
	var conflict []ip.Addr
	for i := 0; i < 3; i++ {
		conflict = append(conflict, ip.Addr(uint32(i)<<16)) // same low bits, same set
	}
	for i, a := range conflict {
		c.Fill(a, rtable.NextHop(20+i), LOC)
	}
	total := 0
	c.AuditEntries(func(a ip.Addr, nh rtable.NextHop) bool {
		total++
		return true
	})
	if total != len(conflict) {
		t.Fatalf("audit saw %d entries across sets+victim, want %d", total, len(conflict))
	}
	// Reject everything: every entry in both structures is evicted.
	if n := c.AuditEntries(func(ip.Addr, rtable.NextHop) bool { return false }); n != len(conflict) {
		t.Fatalf("reject-all evicted %d, want %d", n, len(conflict))
	}
	for _, a := range conflict {
		if got := c.Probe(a); got.Kind != Miss {
			t.Fatalf("entry %v survived reject-all audit: %+v", a, got)
		}
	}
}

// TestShardedAuditReconstructsAddresses: the sharded store's audit must
// report original (pre-shard-split) addresses, so the scrubber compares
// the right oracle verdicts.
func TestShardedAuditReconstructsAddresses(t *testing.T) {
	s := NewSharded(DefaultConfig(), 4)
	addrs := []ip.Addr{0x0a000000, 0x0a000001, 0x0a000002, 0x0a000003, 0x0bff1234}
	for i, a := range addrs {
		s.Fill(a, rtable.NextHop(i), LOC)
	}
	seen := map[ip.Addr]rtable.NextHop{}
	s.AuditEntries(func(a ip.Addr, nh rtable.NextHop) bool {
		seen[a] = nh
		return true
	})
	if len(seen) != len(addrs) {
		t.Fatalf("audit saw %d entries, want %d", len(seen), len(addrs))
	}
	for i, a := range addrs {
		nh, ok := seen[a]
		if !ok {
			t.Fatalf("address %v missing from audit (shard bits not restored?)", a)
		}
		if nh != rtable.NextHop(i) {
			t.Fatalf("audit saw %v -> %d, want %d", a, nh, i)
		}
	}
	// Evicting through the audit works across shards.
	if n := s.AuditEntries(func(a ip.Addr, nh rtable.NextHop) bool { return a != addrs[4] }); n != 1 {
		t.Fatalf("sharded targeted evict removed %d, want 1", n)
	}
	if got := s.Probe(addrs[4]); got.Kind != Miss {
		t.Fatalf("evicted sharded entry still resident: %+v", got)
	}
}

// TestNewShardedErrGeometry: every bad-geometry path reports a diagnostic
// error instead of panicking, and the messages identify the failure.
func TestNewShardedErrGeometry(t *testing.T) {
	base := DefaultConfig()
	cases := []struct {
		name    string
		cfg     Config
		shards  int
		wantSub string
	}{
		{"zero shards", base, 0, "not a power of two"},
		{"one shard", base, 1, "not a power of two"},
		{"three shards", base, 3, "not a power of two"},
		{"negative shards", base, -4, "not a power of two"},
		{"blocks not divisible", Config{Blocks: 100, Assoc: 4, MixPercent: 50}, 8, "not divisible"},
		{"per-shard geometry", Config{Blocks: 96, Assoc: 4, MixPercent: 50}, 8, "per-shard geometry"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewShardedErr(tc.cfg, tc.shards)
			if err == nil {
				t.Fatalf("NewShardedErr(%+v, %d) accepted bad geometry", tc.cfg, tc.shards)
			}
			if s != nil {
				t.Fatal("non-nil store returned alongside an error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
	// And the happy path still works.
	s, err := NewShardedErr(base, 4)
	if err != nil || s == nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
}
