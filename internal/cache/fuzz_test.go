package cache_test

import (
	"testing"

	"spal/internal/cache"
	"spal/internal/ip"
	"spal/internal/rtable"
)

// FuzzInvalidateRange checks the range-invalidation boundary math on both
// store shapes: after InvalidateRange(lo, hi), exactly the resident
// entries with lo <= addr <= hi are gone, everything else survives with
// its value intact, and the return value counts the evictions. An
// inverted range (lo > hi) must evict nothing. The seeds cover the
// boundary cases: inverted, full-range, and single-address.
func FuzzInvalidateRange(f *testing.F) {
	f.Add(uint32(0x0a000010), uint32(0x0a000001), uint64(1)) // lo > hi: no-op
	f.Add(uint32(0), ^uint32(0), uint64(2))                  // full range: flush-equivalent
	f.Add(uint32(0x0a000003), uint32(0x0a000003), uint64(3)) // single address
	f.Add(uint32(0x0a000000), uint32(0x0b000000), uint64(4))
	f.Fuzz(func(t *testing.T, lo, hi uint32, seed uint64) {
		cfg := cache.Config{Blocks: 64, Assoc: 4, VictimBlocks: 4, MixPercent: 50, Policy: cache.LRU, Seed: seed}
		stores := map[string]cache.Store{
			"single":  cache.New(cfg),
			"sharded": cache.NewSharded(cfg, 4),
		}
		for name, s := range stores {
			// Populate with a seed-derived working set, then snapshot what
			// is actually resident (fills can evict one another).
			x := seed
			for i := 0; i < 48; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				s.Fill(ip.Addr(x>>32), rtable.NextHop(i), cache.LOC)
			}
			before := map[ip.Addr]rtable.NextHop{}
			s.AuditEntries(func(a ip.Addr, nh rtable.NextHop) bool {
				before[a] = nh
				return true
			})

			evicted := s.InvalidateRange(lo, hi)

			after := map[ip.Addr]rtable.NextHop{}
			s.AuditEntries(func(a ip.Addr, nh rtable.NextHop) bool {
				after[a] = nh
				return true
			})

			wantEvicted := 0
			for a, nh := range before {
				inRange := lo <= hi && a >= ip.Addr(lo) && a <= ip.Addr(hi)
				if inRange {
					wantEvicted++
					if _, still := after[a]; still {
						t.Fatalf("%s: entry %v inside [%v,%v] survived", name, a, lo, hi)
					}
					continue
				}
				got, ok := after[a]
				if !ok {
					t.Fatalf("%s: entry %v outside [%v,%v] was evicted", name, a, lo, hi)
				}
				if got != nh {
					t.Fatalf("%s: entry %v changed value %d -> %d across invalidation", name, a, nh, got)
				}
			}
			if evicted != wantEvicted {
				t.Fatalf("%s: InvalidateRange(%v,%v) returned %d, actual evictions %d",
					name, lo, hi, evicted, wantEvicted)
			}
			if len(after) != len(before)-wantEvicted {
				t.Fatalf("%s: %d entries after, want %d", name, len(after), len(before)-wantEvicted)
			}
		}
	})
}
