// Package fabric models the switching fabric interconnecting line cards
// (Fig. 1). The paper deliberately abstracts the fabric to a latency that
// depends on its size — a few nanoseconds for recent crossbars, a
// multistage structure for larger ψ — and that is what this package
// provides: a latency model per fabric kind plus an in-order delay pipe
// that carries request/reply messages between LCs.
//
// Injection bandwidth (one message per cycle per port) is enforced by the
// line card's outgoing queue in the simulator, not here; the pipe itself
// is non-blocking, as a crossbar with per-port queues would be.
package fabric

import (
	"fmt"

	"spal/internal/ip"
	"spal/internal/rtable"
)

// Kind selects a fabric organization.
type Kind uint8

// Fabric organizations.
const (
	// Bus is a shared bus: cheap at small ψ, latency grows linearly.
	Bus Kind = iota
	// Crossbar is a single-stage crossbar: flat low latency up to its
	// port count (the paper cites 10-port crossbars at 133 MHz).
	Crossbar
	// Multistage is a network of small crossbars: latency grows with
	// log2(ψ) stage count.
	Multistage
)

// String names the fabric kind.
func (k Kind) String() string {
	switch k {
	case Bus:
		return "bus"
	case Crossbar:
		return "crossbar"
	case Multistage:
		return "multistage"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Latency returns the one-way message latency in cycles for a fabric of
// the given kind connecting numLCs line cards. The numbers target the
// paper's regime: "packet latency over the fabric being 10 ns or less"
// (<= 2 cycles of 5 ns) for a moderate number of LCs.
func Latency(k Kind, numLCs int) int {
	if numLCs <= 1 {
		return 0
	}
	switch k {
	case Bus:
		// Arbitration plus transfer; degrades with contention domain size.
		return 1 + numLCs/4
	case Crossbar:
		// One switching hop: 2 cycles (10 ns) regardless of size, valid
		// up to a 16-port part.
		return 2
	default: // Multistage
		// One cycle per stage of 4x4 crossbars plus injection.
		stages := 0
		for n := 1; n < numLCs; n *= 4 {
			stages++
		}
		return 1 + stages
	}
}

// MsgKind distinguishes lookup requests from replies and liveness
// heartbeats.
type MsgKind uint8

// Message kinds.
const (
	Request MsgKind = iota // packet forwarded to its home LC for lookup
	Reply                  // lookup result returned to the arrival LC
	// Heartbeat is a liveness beat from a line card to the chassis
	// control plane. The paper has no failure model, so it never needs
	// one; the concurrent router's LC lifecycle machinery does — each LC
	// emits a heartbeat per deadline-ticker period, and the health
	// monitor demotes an LC to Suspect when several in a row go missing.
	// Heartbeats carry no address or next hop.
	Heartbeat
)

// String names the message kind.
func (k MsgKind) String() string {
	switch k {
	case Request:
		return "request"
	case Reply:
		return "reply"
	case Heartbeat:
		return "heartbeat"
	default:
		return fmt.Sprintf("msgkind(%d)", uint8(k))
	}
}

// Message is one unit crossing the fabric.
type Message struct {
	Kind     MsgKind
	Src, Dst int
	PacketID int64
	Addr     ip.Addr
	NextHop  rtable.NextHop // valid for Reply
}

type inflight struct {
	arrival int64
	msg     Message
}

// Pipe is a fixed-latency, in-order message channel. Sends must use
// non-decreasing timestamps (the simulator's cycle counter).
type Pipe struct {
	latency  int64
	queue    []inflight // FIFO; arrival times are non-decreasing
	head     int
	sent     int64
	lastSend int64 // timestamp of the most recent Send, for the order guard
}

// NewPipe builds a pipe with the given one-way latency in cycles.
func NewPipe(latencyCycles int) *Pipe {
	if latencyCycles < 0 {
		panic("fabric: negative latency")
	}
	return &Pipe{latency: int64(latencyCycles)}
}

// Latency returns the pipe's one-way latency in cycles.
func (p *Pipe) Latency() int64 { return p.latency }

// Send injects a message at cycle now; it will arrive at now+latency.
// Sends must use non-decreasing timestamps; the guard compares against
// the last Send directly (not the tail of the queue), so it also catches
// a time-travelling send issued after the queue fully drained.
func (p *Pipe) Send(now int64, m Message) {
	p.SendDelayed(now, 0, m)
}

// SendDelayed injects a message at cycle now with extra cycles of added
// latency beyond the pipe's base, modelling a degraded link to or from a
// browned-out line card. Because the extra delay can land this message
// behind later clean sends — and clean sends can in turn land ahead of
// earlier delayed ones — every send is insertion-sorted into the queue
// by arrival time so Deliver's in-order scan stays valid. The walk-back
// is O(1) when no delayed traffic is in flight (arrivals are monotone)
// and bounded by the number of queued slower messages otherwise. Equal
// arrivals keep send order, so same-link FIFO behaviour is unchanged.
func (p *Pipe) SendDelayed(now int64, extra int64, m Message) {
	if extra < 0 {
		extra = 0
	}
	if p.sent > 0 && now < p.lastSend {
		panic("fabric: out-of-order send")
	}
	p.lastSend = now
	in := inflight{arrival: now + p.latency + extra, msg: m}
	p.queue = append(p.queue, in)
	i := len(p.queue) - 1
	for i > p.head && p.queue[i-1].arrival > in.arrival {
		p.queue[i] = p.queue[i-1]
		i--
	}
	p.queue[i] = in
	p.sent++
}

// Deliver pops every message whose arrival time is <= now.
func (p *Pipe) Deliver(now int64) []Message {
	var out []Message
	for p.head < len(p.queue) && p.queue[p.head].arrival <= now {
		out = append(out, p.queue[p.head].msg)
		p.head++
	}
	// Compact once the consumed prefix dominates, keeping amortized O(1).
	if p.head > 1024 && p.head*2 > len(p.queue) {
		p.queue = append(p.queue[:0], p.queue[p.head:]...)
		p.head = 0
	}
	return out
}

// Pending returns the number of undelivered messages.
func (p *Pipe) Pending() int { return len(p.queue) - p.head }

// Sent returns the total number of messages injected.
func (p *Pipe) Sent() int64 { return p.sent }
